#include <gtest/gtest.h>

#include "atpg/podem.hpp"
#include "fault/universe.hpp"
#include "fsim/fsim.hpp"
#include "netlist/wordops.hpp"
#include "util/rng.hpp"

namespace olfui {
namespace {

/// Converts a PODEM pattern into the pattern form comb_detects expects.
std::vector<std::pair<NetId, bool>> to_assignment(const AtpgPattern& pat,
                                                  const std::vector<NetId>& pis) {
  std::vector<std::pair<NetId, bool>> out;
  for (NetId n : pis) {
    const auto it = pat.assignment.find(n);
    out.emplace_back(n, it != pat.assignment.end() && it->second);
  }
  return out;
}

TEST(Podem, GeneratesTestForAndGate) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = w.and2(a, b, "y");
  nl.add_output("o", y);
  const FaultUniverse u(nl);
  Podem podem(nl, u);
  const CellId g = nl.net(y).driver;
  // Output s-a-0 requires a=b=1.
  const AtpgResult r = podem.run(Fault{{g, 0}, false});
  ASSERT_EQ(r.outcome, AtpgOutcome::kTestFound);
  EXPECT_TRUE(r.pattern->assignment.at(a));
  EXPECT_TRUE(r.pattern->assignment.at(b));
}

TEST(Podem, ProvesRedundantFaultUntestable) {
  // y = a | (a & b): the AND cone is redundant for y==1 when a==1;
  // classic redundancy: s-a-0 on the AND output is untestable.
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId ab = w.and2(a, b, "ab");
  const NetId y = w.or2(a, ab, "y");
  nl.add_output("o", y);
  const FaultUniverse u(nl);
  Podem podem(nl, u);
  const CellId g = nl.net(ab).driver;
  const AtpgResult r = podem.run(Fault{{g, 0}, false});
  EXPECT_EQ(r.outcome, AtpgOutcome::kUntestable);
}

TEST(Podem, DetectsInputBranchFaultDistinctFromStem) {
  // Stem a fans out to two XOR consumers; a branch fault is testable even
  // though the two branch faults differ.
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y1 = w.xor2(a, b, "y1");
  const NetId y2 = w.xor2(a, y1, "y2");
  nl.add_output("o1", y1);
  nl.add_output("o2", y2);
  const FaultUniverse u(nl);
  Podem podem(nl, u);
  const CellId g2 = nl.net(y2).driver;
  const AtpgResult r = podem.run(Fault{{g2, 1}, true});  // branch of a into y2
  ASSERT_EQ(r.outcome, AtpgOutcome::kTestFound);
}

TEST(Podem, FullScanFrameTreatsFlopsAsBoundary) {
  // q -> inverter -> d of the same flop: combinationally the inverter is
  // controllable from the pseudo-PI (q) and observable at the pseudo-PO (d).
  Netlist nl("t");
  WordOps w(nl, "m");
  RegWord reg = w.reg_declare(1, "ff");
  const NetId d = w.not_(reg.q[0], "inv");
  w.reg_connect(reg, {d});
  nl.add_output("o", reg.q[0]);
  const FaultUniverse u(nl);
  Podem podem(nl, u);
  const CellId inv = nl.net(d).driver;
  for (bool sa1 : {false, true}) {
    const AtpgResult r = podem.run(Fault{{inv, 0}, sa1});
    EXPECT_EQ(r.outcome, AtpgOutcome::kTestFound) << sa1;
  }
}

TEST(Podem, MissionConstantsRestrictTheFrame) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId en = nl.add_input("en");
  const NetId y = w.and2(a, en, "y");
  nl.add_output("o", y);
  const FaultUniverse u(nl);
  const CellId g = nl.net(y).driver;
  // Unrestricted: testable.
  {
    Podem podem(nl, u);
    EXPECT_EQ(podem.run(Fault{{g, 1}, true}).outcome, AtpgOutcome::kTestFound);
  }
  // en tied 0 in mission mode: the a-branch becomes untestable.
  MissionConfig cfg;
  cfg.tie(en, false);
  Podem podem(nl, u, {.mission = &cfg});
  EXPECT_EQ(podem.run(Fault{{g, 1}, true}).outcome, AtpgOutcome::kUntestable);
}

TEST(Podem, UnobservedOutputMakesPrivateConeUntestable) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId y = w.buf(a, "y");
  const CellId port = nl.add_output("dbg", y);
  const FaultUniverse u(nl);
  MissionConfig cfg;
  cfg.unobserve(port);
  Podem podem(nl, u, {.mission = &cfg});
  const CellId b = nl.net(y).driver;
  EXPECT_EQ(podem.run(Fault{{b, 0}, true}).outcome, AtpgOutcome::kUntestable);
}

// Cross-validation: every PODEM-generated test must actually detect its
// fault under fault simulation, and PODEM-untestable faults must escape
// full random pattern sets.
TEST(Podem, AgreesWithFaultSimulationOnRandomCones) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    Netlist nl("t");
    WordOps w(nl, "m");
    std::vector<NetId> pis, pool;
    for (int i = 0; i < 6; ++i) {
      pis.push_back(nl.add_input("i" + std::to_string(i)));
      pool.push_back(pis.back());
    }
    for (int g = 0; g < 25; ++g) {
      const CellType types[] = {CellType::kAnd2, CellType::kOr2,
                                CellType::kXor2, CellType::kNand2,
                                CellType::kNor2, CellType::kMux2,
                                CellType::kNot,  CellType::kBuf};
      const CellType t = types[rng.next_below(8)];
      std::vector<NetId> ins;
      for (int k = 0; k < num_inputs(t); ++k)
        ins.push_back(pool[rng.next_below(pool.size())]);
      pool.push_back(w.gate(t, "g" + std::to_string(g), ins));
    }
    std::vector<CellId> observed;
    observed.push_back(nl.add_output("o", pool.back()));
    const FaultUniverse u(nl);
    Podem podem(nl, u);

    // Exhaustive pattern set over 6 inputs (64 patterns = one packed pass).
    std::vector<std::vector<std::pair<NetId, bool>>> all_patterns;
    for (int v = 0; v < 64; ++v) {
      std::vector<std::pair<NetId, bool>> pat;
      for (int i = 0; i < 6; ++i) pat.emplace_back(pis[i], (v >> i) & 1);
      all_patterns.push_back(std::move(pat));
    }

    for (FaultId f = 0; f < u.size(); f += 7) {  // sample the universe
      const AtpgResult r = podem.run(f);
      const bool sim_detects = comb_detects(nl, u, f, all_patterns, observed);
      if (r.outcome == AtpgOutcome::kTestFound) {
        EXPECT_TRUE(sim_detects) << u.fault_name(f) << " trial " << trial;
        // And the concrete generated pattern works:
        const auto pat = to_assignment(*r.pattern, pis);
        EXPECT_TRUE(comb_detects(nl, u, f, std::span(&pat, 1), observed))
            << u.fault_name(f);
      } else if (r.outcome == AtpgOutcome::kUntestable) {
        EXPECT_FALSE(sim_detects) << u.fault_name(f) << " trial " << trial;
      }
    }
  }
}

TEST(Podem, ReportsBacktrackLimitAsAborted) {
  // A wide XOR tree with a tiny backtrack budget aborts rather than lies.
  Netlist nl("t");
  WordOps w(nl, "m");
  std::vector<NetId> xs;
  for (int i = 0; i < 12; ++i) xs.push_back(nl.add_input("x" + std::to_string(i)));
  NetId acc = xs[0];
  for (int i = 1; i < 12; ++i) acc = w.xor2(acc, xs[i], "t" + std::to_string(i));
  // A redundant cone that needs exhaustive search to prove untestable:
  const NetId anda = w.and2(xs[0], xs[1], "aa");
  const NetId y = w.or2(xs[0], anda, "y");
  const NetId both = w.xor2(acc, y, "both");
  nl.add_output("o", both);
  const FaultUniverse u(nl);
  Podem podem(nl, u, {.backtrack_limit = 1});
  const CellId g = nl.net(anda).driver;
  const AtpgResult r = podem.run(Fault{{g, 0}, false});
  EXPECT_EQ(r.outcome, AtpgOutcome::kAborted);
  EXPECT_GE(r.backtracks, 1u);
}

}  // namespace
}  // namespace olfui
