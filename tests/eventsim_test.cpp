// Event-driven kernel equivalence suite.
//
// The event-driven eval() is a pure work-skipping optimisation: for any
// netlist, stimulus, and injection set it must produce exactly the word
// the levelized full sweep produces on every net. These tests drive
// randomized netlists and stimuli through an event-mode simulator and a
// forced-full-sweep oracle in lockstep and compare net-for-net, then
// check campaign determinism across worker-pool sizes with the kernel
// switched either way.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "fsim/fsim.hpp"
#include "netlist/wordops.hpp"
#include "sim/packed.hpp"
#include "util/rng.hpp"

namespace olfui {
namespace {

// ---------------------------------------------------------------------------
// Random netlist generation: inputs and declared flops first (so feedback
// paths exist), then a DAG of random gates over any existing net, then
// outputs and the flop D connections.

struct RandomDesign {
  Netlist nl{"rand"};
  std::vector<NetId> input_nets;
  std::vector<CellId> output_cells;
};

RandomDesign random_design(Rng& rng, int n_inputs, int n_flops, int n_gates) {
  RandomDesign d;
  std::vector<NetId> nets;
  for (int i = 0; i < n_inputs; ++i) {
    const NetId n = d.nl.add_input("in" + std::to_string(i));
    d.input_nets.push_back(n);
    nets.push_back(n);
  }
  nets.push_back(d.nl.add_cell(CellType::kTie0, "u_t0", d.nl.add_net("t0"), {}));
  nets.push_back(d.nl.add_cell(CellType::kTie1, "u_t1", d.nl.add_net("t1"), {}));
  // rstn for DFFR flops is always the first input.
  const NetId rstn = d.input_nets[0];

  std::vector<CellId> flops;
  for (int f = 0; f < n_flops; ++f) {
    const NetId q = d.nl.add_net("q" + std::to_string(f));
    const bool with_reset = rng.next_bool();
    const CellId cell =
        with_reset
            ? d.nl.add_cell(CellType::kDffR, "u_ff" + std::to_string(f), q,
                            {kInvalidId, rstn})
            : d.nl.add_cell(CellType::kDff, "u_ff" + std::to_string(f), q,
                            {kInvalidId});
    flops.push_back(cell);
    nets.push_back(q);
  }

  const CellType kGateTypes[] = {
      CellType::kBuf,   CellType::kNot,   CellType::kAnd2,  CellType::kAnd3,
      CellType::kAnd4,  CellType::kOr2,   CellType::kOr3,   CellType::kOr4,
      CellType::kNand2, CellType::kNand3, CellType::kNand4, CellType::kNor2,
      CellType::kNor3,  CellType::kNor4,  CellType::kXor2,  CellType::kXnor2,
      CellType::kMux2};
  for (int g = 0; g < n_gates; ++g) {
    const CellType t =
        kGateTypes[rng.next_below(sizeof kGateTypes / sizeof kGateTypes[0])];
    std::vector<NetId> ins(static_cast<std::size_t>(num_inputs(t)));
    for (NetId& in : ins) in = nets[rng.next_below(nets.size())];
    const NetId out = d.nl.add_net("g" + std::to_string(g));
    d.nl.add_cell(t, "u_g" + std::to_string(g), out, std::move(ins));
    nets.push_back(out);
  }

  // Feedback: every flop D comes from anywhere in the design.
  for (CellId f : flops)
    d.nl.connect_input(f, 0, nets[rng.next_below(nets.size())]);

  for (int o = 0; o < 8; ++o)
    d.output_cells.push_back(d.nl.add_output(
        "out" + std::to_string(o), nets[rng.next_below(nets.size())]));

  EXPECT_TRUE(d.nl.validate().empty());
  return d;
}

/// Drives identical random stimuli through both simulators and asserts
/// every net carries the identical word after every operation. With
/// `power_on` false the run continues from the current state (exercising
/// mid-run invalidation paths).
void run_lockstep(RandomDesign& d, PackedSim& evt, PackedSim& oracle, Rng& rng,
                  int steps, bool power_on = true) {
  const auto compare_all = [&](int step) {
    for (NetId n = 0; n < d.nl.num_nets(); ++n)
      ASSERT_EQ(evt.value(n), oracle.value(n))
          << "net " << d.nl.net(n).name << " diverged at step " << step;
    for (CellId oc : d.output_cells)
      ASSERT_EQ(evt.observed(oc), oracle.observed(oc))
          << "output " << d.nl.cell(oc).name << " diverged at step " << step;
  };

  if (power_on) {
    evt.power_on();
    oracle.power_on();
  }
  for (int step = 0; step < steps; ++step) {
    for (NetId in : d.input_nets) {
      if (rng.next_below(3) == 0) continue;  // leave some inputs unchanged
      const std::uint64_t w = rng.next_u64();
      evt.set_input_lanes(in, w);
      oracle.set_input_lanes(in, w);
    }
    if (rng.next_below(4) == 0) {
      evt.clock();
      oracle.clock();
    } else {
      evt.eval();
      oracle.eval();
    }
    compare_all(step);
    if (::testing::Test::HasFailure()) return;
  }
  // The settled event state must be a fixed point of the full sweep.
  evt.full_eval();
  compare_all(steps);
}

TEST(EventSim, RandomNetlistsMatchFullSweepOracle) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    RandomDesign d = random_design(rng, 10, 24, 220);
    PackedSim evt(d.nl);
    PackedSim oracle(d.nl);
    oracle.set_eval_mode(PackedEvalMode::kFullSweep);
    ASSERT_EQ(evt.eval_mode(), PackedEvalMode::kEventDriven);
    run_lockstep(d, evt, oracle, rng, 60);
    // The point of the kernel: strictly less work than sweeping.
    EXPECT_LT(evt.activity().cells_evaluated, oracle.activity().cells_evaluated)
        << "seed " << seed;
  }
}

TEST(EventSim, InjectionsMatchFullSweepOracle) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    Rng rng(seed);
    RandomDesign d = random_design(rng, 8, 16, 160);
    auto topo = PackedTopology::build(d.nl);
    PackedSim evt(topo);
    PackedSim oracle(topo);
    oracle.set_eval_mode(PackedEvalMode::kFullSweep);

    const auto random_injection = [&] {
      const CellId cell = static_cast<CellId>(rng.next_below(d.nl.num_cells()));
      const CellType t = d.nl.cell(cell).type;
      int pin = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(num_inputs(t)) + 1));
      if (t == CellType::kOutput) pin = 1;  // kOutput has no output pin
      return PackedInjection{cell, static_cast<std::uint8_t>(pin),
                             rng.next_bool(), rng.next_u64()};
    };

    for (int i = 0; i < 12; ++i) {
      const PackedInjection inj = random_injection();
      evt.add_injection(inj);
      oracle.add_injection(inj);
    }
    run_lockstep(d, evt, oracle, rng, 40);

    // Changing injections mid-run (no power-on) must invalidate event
    // state (the needs-full path) and still match the oracle.
    const PackedInjection late = random_injection();
    evt.add_injection(late);
    oracle.add_injection(late);
    run_lockstep(d, evt, oracle, rng, 20, /*power_on=*/false);

    evt.clear_injections();
    oracle.clear_injections();
    run_lockstep(d, evt, oracle, rng, 20, /*power_on=*/false);
  }
}

// ---------------------------------------------------------------------------
// Campaign determinism on the persistent worker pool, kernel switched
// either way. Small counter rig (mirrors campaign_test's) graded at
// 1/2/4/8 threads.

constexpr int kBits = 10;
constexpr int kCycles = 30;

struct CounterRig {
  Netlist nl{"t"};
  NetId en;
  std::vector<CellId> outputs;

  CounterRig() {
    WordOps w(nl, "m");
    en = nl.add_input("en");
    RegWord cnt = w.reg_declare(kBits, "cnt");
    const auto inc = w.add_word(cnt.q, w.constant(1, kBits), w.lit(false), "inc");
    const Bus d = w.mux_word(en, cnt.q, inc.sum, "d");
    w.reg_connect(cnt, d);
    for (int i = 0; i < kBits; ++i)
      outputs.push_back(nl.add_output("o" + std::to_string(i), cnt.q[i]));
  }
};

class CounterEnv : public FsimEnvironment {
 public:
  explicit CounterEnv(NetId en) : en_(en) {}
  void reset(PackedSim& sim) override {
    sim.set_input_all(en_, false);
    sim.eval();
  }
  bool step(PackedSim& sim, int) override {
    sim.set_input_all(en_, true);
    sim.eval();
    return true;
  }

 private:
  NetId en_;
};

class RigBatchRunner final : public FaultBatchRunner {
 public:
  RigBatchRunner(const CounterRig& rig, const FaultUniverse& u,
                 std::shared_ptr<const GoodTrace> trace, bool event_driven)
      : env_(rig.en),
        fsim_(rig.nl, u,
              {.max_cycles = kCycles, .event_driven = event_driven}),
        trace_(std::move(trace)) {
    fsim_.set_observed(rig.outputs);
  }
  std::uint64_t run_batch(std::span<const FaultId> faults) override {
    return fsim_.run_batch(faults, env_, trace_.get());
  }

 private:
  CounterEnv env_;
  SequentialFaultSimulator fsim_;
  std::shared_ptr<const GoodTrace> trace_;
};

CampaignTest make_rig_test(const CounterRig& rig, const FaultUniverse& u,
                           bool event_driven) {
  CounterEnv trace_env(rig.en);
  SequentialFaultSimulator tracer(
      rig.nl, u, {.max_cycles = kCycles, .event_driven = event_driven});
  tracer.set_observed(rig.outputs);
  auto trace =
      std::make_shared<const GoodTrace>(tracer.record_good_trace(trace_env));
  CampaignTest test;
  test.name = event_driven ? "event" : "sweep";
  test.good_cycles = kCycles;
  test.make_runner = [&rig, &u, trace = std::move(trace), event_driven]() {
    return std::make_unique<RigBatchRunner>(rig, u, trace, event_driven);
  };
  return test;
}

TEST(EventSim, CampaignDeterministicAcrossPoolSizesAndKernels) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  ASSERT_GT(u.size(), 63u * 4) << "rig too small to shard meaningfully";

  CampaignResult reference;
  for (const bool event_driven : {true, false}) {
    std::vector<CampaignTest> tests;
    tests.push_back(make_rig_test(rig, u, event_driven));
    for (const int threads : {1, 2, 4, 8}) {
      FaultList fl(u);
      const CampaignResult r =
          CampaignEngine(u, {.threads = threads}).run(fl, tests);
      if (event_driven && threads == 1) {
        reference = r;
        EXPECT_GT(r.total_new_detections, 0u);
      } else {
        // Same detection payload regardless of pool size AND kernel.
        EXPECT_EQ(r.detected, reference.detected)
            << "kernel=" << (event_driven ? "event" : "sweep")
            << " threads=" << threads;
        EXPECT_EQ(r.total_new_detections, reference.total_new_detections);
      }
      // Per-shard wall times landed for every shard of every test.
      std::size_t shards = 0;
      for (const auto& pt : r.tests) shards += pt.batches;
      EXPECT_EQ(r.stats.shard_seconds.size(), shards);
    }
  }
}

/// The same engine (and therefore the same parked pool) must survive many
/// grade() calls — the scan-ATPG usage pattern that motivated the pool.
TEST(EventSim, PersistentPoolSurvivesRepeatedGrades) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  const CampaignTest test = make_rig_test(rig, u, true);
  const CampaignEngine engine(u, {.threads = 4});

  std::vector<FaultId> targets;
  for (FaultId f = 0; f < u.size(); ++f) targets.push_back(f);
  const BitVec first = engine.grade(targets, test);
  EXPECT_GT(first.count(), 0u);
  for (int i = 0; i < 10; ++i)
    ASSERT_EQ(engine.grade(targets, test), first) << "grade call " << i;
}

}  // namespace
}  // namespace olfui
