// Event-driven kernel equivalence suite.
//
// The event-driven eval() and incremental (dirty-D) clock() are pure
// work-skipping optimisations: for any netlist, stimulus, and injection
// set they must produce exactly the words the levelized full sweep and
// the full-latch clock produce on every net. These tests drive
// randomized netlists and stimuli through an event-mode simulator and a
// forced-full-sweep oracle in lockstep and compare net-for-net (at every
// instantiated lane width for the clocking suite), then check campaign
// determinism across worker-pool sizes with the kernel and the clocking
// mode switched either way.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "util/lanes.hpp"

#include "campaign/campaign.hpp"
#include "fault/fault_list.hpp"
#include "fault/tdf.hpp"
#include "fault/universe.hpp"
#include "fsim/fsim.hpp"
#include "netlist/wordops.hpp"
#include "sim/packed.hpp"
#include "util/rng.hpp"

namespace olfui {
namespace {

// ---------------------------------------------------------------------------
// Random netlist generation: inputs and declared flops first (so feedback
// paths exist), then a DAG of random gates over any existing net, then
// outputs and the flop D connections.

struct RandomDesign {
  Netlist nl{"rand"};
  std::vector<NetId> input_nets;
  std::vector<CellId> output_cells;
};

RandomDesign random_design(Rng& rng, int n_inputs, int n_flops, int n_gates) {
  RandomDesign d;
  std::vector<NetId> nets;
  for (int i = 0; i < n_inputs; ++i) {
    const NetId n = d.nl.add_input("in" + std::to_string(i));
    d.input_nets.push_back(n);
    nets.push_back(n);
  }
  nets.push_back(d.nl.add_cell(CellType::kTie0, "u_t0", d.nl.add_net("t0"), {}));
  nets.push_back(d.nl.add_cell(CellType::kTie1, "u_t1", d.nl.add_net("t1"), {}));
  // rstn for DFFR flops is always the first input.
  const NetId rstn = d.input_nets[0];

  std::vector<CellId> flops;
  for (int f = 0; f < n_flops; ++f) {
    const NetId q = d.nl.add_net("q" + std::to_string(f));
    const bool with_reset = rng.next_bool();
    const CellId cell =
        with_reset
            ? d.nl.add_cell(CellType::kDffR, "u_ff" + std::to_string(f), q,
                            {kInvalidId, rstn})
            : d.nl.add_cell(CellType::kDff, "u_ff" + std::to_string(f), q,
                            {kInvalidId});
    flops.push_back(cell);
    nets.push_back(q);
  }

  const CellType kGateTypes[] = {
      CellType::kBuf,   CellType::kNot,   CellType::kAnd2,  CellType::kAnd3,
      CellType::kAnd4,  CellType::kOr2,   CellType::kOr3,   CellType::kOr4,
      CellType::kNand2, CellType::kNand3, CellType::kNand4, CellType::kNor2,
      CellType::kNor3,  CellType::kNor4,  CellType::kXor2,  CellType::kXnor2,
      CellType::kMux2};
  for (int g = 0; g < n_gates; ++g) {
    const CellType t =
        kGateTypes[rng.next_below(sizeof kGateTypes / sizeof kGateTypes[0])];
    std::vector<NetId> ins(static_cast<std::size_t>(num_inputs(t)));
    for (NetId& in : ins) in = nets[rng.next_below(nets.size())];
    const NetId out = d.nl.add_net("g" + std::to_string(g));
    d.nl.add_cell(t, "u_g" + std::to_string(g), out, std::move(ins));
    nets.push_back(out);
  }

  // Feedback: every flop D comes from anywhere in the design.
  for (CellId f : flops)
    d.nl.connect_input(f, 0, nets[rng.next_below(nets.size())]);

  for (int o = 0; o < 8; ++o)
    d.output_cells.push_back(d.nl.add_output(
        "out" + std::to_string(o), nets[rng.next_below(nets.size())]));

  EXPECT_TRUE(d.nl.validate().empty());
  return d;
}

/// Drives identical random stimuli through both simulators and asserts
/// every net carries the identical word after every operation. With
/// `power_on` false the run continues from the current state (exercising
/// mid-run invalidation paths).
void run_lockstep(RandomDesign& d, PackedSim& evt, PackedSim& oracle, Rng& rng,
                  int steps, bool power_on = true) {
  const auto compare_all = [&](int step) {
    for (NetId n = 0; n < d.nl.num_nets(); ++n)
      ASSERT_EQ(evt.value(n), oracle.value(n))
          << "net " << d.nl.net(n).name << " diverged at step " << step;
    for (CellId oc : d.output_cells)
      ASSERT_EQ(evt.observed(oc), oracle.observed(oc))
          << "output " << d.nl.cell(oc).name << " diverged at step " << step;
  };

  if (power_on) {
    evt.power_on();
    oracle.power_on();
  }
  for (int step = 0; step < steps; ++step) {
    for (NetId in : d.input_nets) {
      if (rng.next_below(3) == 0) continue;  // leave some inputs unchanged
      const std::uint64_t w = rng.next_u64();
      evt.set_input_lanes(in, w);
      oracle.set_input_lanes(in, w);
    }
    if (rng.next_below(4) == 0) {
      evt.clock();
      oracle.clock();
    } else {
      evt.eval();
      oracle.eval();
    }
    compare_all(step);
    if (::testing::Test::HasFailure()) return;
  }
  // The settled event state must be a fixed point of the full sweep.
  evt.full_eval();
  compare_all(steps);
}

TEST(EventSim, RandomNetlistsMatchFullSweepOracle) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    RandomDesign d = random_design(rng, 10, 24, 220);
    PackedSim evt(d.nl);
    PackedSim oracle(d.nl);
    oracle.set_eval_mode(PackedEvalMode::kFullSweep);
    ASSERT_EQ(evt.eval_mode(), PackedEvalMode::kEventDriven);
    run_lockstep(d, evt, oracle, rng, 60);
    // The point of the kernel: strictly less work than sweeping.
    EXPECT_LT(evt.activity().cells_evaluated, oracle.activity().cells_evaluated)
        << "seed " << seed;
  }
}

TEST(EventSim, InjectionsMatchFullSweepOracle) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    Rng rng(seed);
    RandomDesign d = random_design(rng, 8, 16, 160);
    auto topo = PackedTopology::build(d.nl);
    PackedSim evt(topo);
    PackedSim oracle(topo);
    oracle.set_eval_mode(PackedEvalMode::kFullSweep);

    const auto random_injection = [&] {
      const CellId cell = static_cast<CellId>(rng.next_below(d.nl.num_cells()));
      const CellType t = d.nl.cell(cell).type;
      int pin = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(num_inputs(t)) + 1));
      if (t == CellType::kOutput) pin = 1;  // kOutput has no output pin
      return PackedInjection{cell, static_cast<std::uint8_t>(pin),
                             rng.next_bool(), rng.next_u64()};
    };

    for (int i = 0; i < 12; ++i) {
      const PackedInjection inj = random_injection();
      evt.add_injection(inj);
      oracle.add_injection(inj);
    }
    run_lockstep(d, evt, oracle, rng, 40);

    // Changing injections mid-run (no power-on) must invalidate event
    // state (the needs-full path) and still match the oracle.
    const PackedInjection late = random_injection();
    evt.add_injection(late);
    oracle.add_injection(late);
    run_lockstep(d, evt, oracle, rng, 20, /*power_on=*/false);

    evt.clear_injections();
    oracle.clear_injections();
    run_lockstep(d, evt, oracle, rng, 20, /*power_on=*/false);
  }
}

// ---------------------------------------------------------------------------
// Incremental (dirty-D) clocking vs the full-latch and full-sweep
// oracles. Three simulators run the same stimulus in lockstep — event
// kernel with incremental clocking (the default), event kernel with
// every-flop latching, and the levelized full sweep — with injections
// added and cleared mid-run (the invalidation paths must re-arm the
// dirty tracking without a power-on). Width-parametric: faults diverge
// per lane through random injection masks, so the wide kernels exercise
// the same dirty-D bookkeeping over vector words.

/// Returns the incremental sim's flops_skipped count (0 on failure), so
/// the caller can assert the optimisation actually skipped work
/// somewhere across the seed sweep without betting on any single seed.
template <int W>
std::uint64_t clocking_lockstep(std::uint64_t seed) {
  Rng rng(seed);
  RandomDesign d = random_design(rng, 8, 18, 150);
  const auto topo = PackedTopology::build(d.nl);
  PackedSimT<W> incr(topo);
  PackedSimT<W> full(topo);
  PackedSimT<W> sweep(topo);
  EXPECT_EQ(incr.clock_mode(), PackedClockMode::kIncremental);
  full.set_clock_mode(PackedClockMode::kFullLatch);
  sweep.set_eval_mode(PackedEvalMode::kFullSweep);
  PackedSimT<W>* const sims[] = {&incr, &full, &sweep};

  const auto compare_all = [&](int step) {
    for (NetId n = 0; n < d.nl.num_nets(); ++n) {
      ASSERT_FALSE(lane_neq(incr.value(n), full.value(n)))
          << "W=" << W << " seed " << seed << ": net " << d.nl.net(n).name
          << " diverged from the full-latch oracle at step " << step;
      ASSERT_FALSE(lane_neq(incr.value(n), sweep.value(n)))
          << "W=" << W << " seed " << seed << ": net " << d.nl.net(n).name
          << " diverged from the sweep oracle at step " << step;
    }
    for (CellId oc : d.output_cells)
      ASSERT_FALSE(lane_neq(incr.observed(oc), full.observed(oc)))
          << "W=" << W << " seed " << seed << ": output "
          << d.nl.cell(oc).name << " diverged at step " << step;
  };

  const auto random_injection = [&] {
    const CellId cell = static_cast<CellId>(rng.next_below(d.nl.num_cells()));
    const CellType t = d.nl.cell(cell).type;
    int pin = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(num_inputs(t)) + 1));
    if (t == CellType::kOutput) pin = 1;  // kOutput has no output pin
    LaneWord<W> mask{};
    for (int k = 0; k < W / 64; ++k) set_word_of(mask, k, rng.next_u64());
    return PackedInjectionT<W>{cell, static_cast<std::uint8_t>(pin),
                               rng.next_bool(), mask};
  };

  for (auto* s : sims) s->power_on();
  for (int step = 0; step < 70; ++step) {
    // Injection churn without power-on: add at 20/21, clear at 45 — the
    // invalidation paths must fall back to a full latch and re-arm.
    if (step == 20 || step == 21) {
      const PackedInjectionT<W> inj = random_injection();
      for (auto* s : sims) s->add_injection(inj);
    }
    if (step == 45)
      for (auto* s : sims) s->clear_injections();
    if (step == 55)  // mid-run power-on resets the tracked state everywhere
      for (auto* s : sims) s->power_on();
    for (NetId in : d.input_nets) {
      if (rng.next_below(3) == 0) continue;  // leave some inputs unchanged
      const bool bit = rng.next_bool();
      for (auto* s : sims) s->set_input_all(in, bit);
    }
    if (rng.next_below(3) == 0) {
      for (auto* s : sims) s->clock();
    } else {
      for (auto* s : sims) s->eval();
    }
    compare_all(step);
    if (::testing::Test::HasFailure()) return 0;
  }

  // Edge accounting: each clock() latches or skips every flop exactly
  // once, so the incremental split must sum to the oracle's total; the
  // full-latch oracle never skips.
  const PackedActivity& ai = incr.activity();
  const PackedActivity& af = full.activity();
  EXPECT_EQ(af.flops_skipped, 0u);
  EXPECT_EQ(ai.flops_latched + ai.flops_skipped, af.flops_latched)
      << "W=" << W << " seed " << seed;
  return ai.flops_skipped;
}

TEST(EventSim, IncrementalClockingMatchesFullLatchAndSweepOracles) {
  std::uint64_t skipped = 0;
  for (std::uint64_t seed = 51; seed <= 54; ++seed)
    skipped += clocking_lockstep<64>(seed);
  EXPECT_GT(skipped, 0u) << "incremental clocking never skipped a latch";
}

#if OLFUI_HAS_WIDE_LANES
TEST(EventSim, IncrementalClockingMatchesOraclesAtWideWidths) {
  std::uint64_t skipped = 0;
  for (std::uint64_t seed = 55; seed <= 56; ++seed) {
    skipped += clocking_lockstep<128>(seed);
    skipped += clocking_lockstep<256>(seed);
  }
  EXPECT_GT(skipped, 0u) << "incremental clocking never skipped a latch";
}
#endif

// ---------------------------------------------------------------------------
// Transition-delay batches vs a naive two-cycle oracle. The oracle runs
// one fault at a time through two plain simulators: a good run recording
// the site's value and every observed output per cycle, then a faulty run
// that re-injects the full stuck record from scratch (clear + add, the
// always-full-sweep path) on exactly the capture cycles the good run
// launched. run_tdf_batch must reproduce its verdict fault-for-fault with
// either kernel, with and without a ReferenceTrace checkpoint (the traced
// path reads its launch schedules out of the shared all-net trace instead
// of running pass 1 — same verdicts, one good pass fewer).

/// Replays a fixed per-cycle stimulus (identical on all lanes), so every
/// pass of every engine sees the same test "program".
class ScriptedEnv : public FsimEnvironment {
 public:
  ScriptedEnv(const std::vector<NetId>& inputs,
              const std::vector<std::vector<bool>>& words)
      : inputs_(&inputs), words_(&words) {}
  void reset(PackedSim& sim) override {
    for (NetId in : *inputs_) sim.set_input_all(in, false);
    sim.eval();
  }
  bool step(PackedSim& sim, int cycle) override {
    if (cycle >= static_cast<int>(words_->size())) return false;
    const std::vector<bool>& w = (*words_)[static_cast<std::size_t>(cycle)];
    for (std::size_t i = 0; i < inputs_->size(); ++i)
      sim.set_input_all((*inputs_)[i], w[i]);
    sim.eval();
    return true;
  }

 private:
  const std::vector<NetId>* inputs_;
  const std::vector<std::vector<bool>>* words_;
};

/// Single-fault TDF oracle over the scripted stimulus; returns detected.
bool naive_tdf_detects(const RandomDesign& d, const FaultUniverse& u,
                       FaultId id, const std::vector<std::vector<bool>>& words) {
  const Fault& f = u.fault(id);
  const NetId site = tdf_site_net(d.nl, f);
  const bool rise = tdf_slow_to_rise(f);

  const auto drive = [&](PackedSim& sim, const std::vector<bool>& w) {
    for (std::size_t i = 0; i < d.input_nets.size(); ++i)
      sim.set_input_all(d.input_nets[i], w[i]);
  };

  // Good run: per-cycle site value and observed outputs.
  PackedSim good(d.nl);
  good.power_on();
  for (NetId in : d.input_nets) good.set_input_all(in, false);
  good.eval();
  std::vector<bool> site_good;
  std::vector<std::vector<bool>> out_good;
  for (const std::vector<bool>& w : words) {
    drive(good, w);
    good.eval();
    site_good.push_back((good.value(site) & 1ULL) != 0);
    std::vector<bool> outs;
    for (CellId oc : d.output_cells)
      outs.push_back((good.observed(oc) & 1ULL) != 0);
    out_good.push_back(std::move(outs));
    good.clock();
  }

  // Faulty run: rebuild the injection set from scratch every cycle.
  PackedSim bad(d.nl);
  bad.power_on();
  for (NetId in : d.input_nets) bad.set_input_all(in, false);
  bad.eval();
  for (std::size_t c = 0; c < words.size(); ++c) {
    const bool launched =
        c > 0 && (rise ? (!site_good[c - 1] && site_good[c])
                       : (site_good[c - 1] && !site_good[c]));
    bad.clear_injections();
    if (launched) bad.add_injection({f.pin.cell, f.pin.pin, f.sa1, ~0ULL});
    drive(bad, words[c]);
    bad.eval();
    for (std::size_t k = 0; k < d.output_cells.size(); ++k)
      if (((bad.observed(d.output_cells[k]) & 1ULL) != 0) != out_good[c][k])
        return true;
    bad.clock();
  }
  return false;
}

TEST(TdfSim, BatchMatchesNaiveTwoCycleOracle) {
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    Rng rng(seed);
    RandomDesign d = random_design(rng, 6, 10, 70);
    const FaultUniverse u(d.nl);

    const int cycles = 24;
    std::vector<std::vector<bool>> words(static_cast<std::size_t>(cycles));
    for (auto& w : words) {
      w.resize(d.input_nets.size());
      for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.next_bool();
    }
    ScriptedEnv env(d.input_nets, words);

    SeqFsimOptions opts{.max_cycles = cycles, .event_driven = true};
    SequentialFaultSimulator evt(d.nl, u, opts);
    evt.set_observed(d.output_cells);
    SeqFsimOptions sweep_opts = opts;
    sweep_opts.event_driven = false;
    SequentialFaultSimulator sweep(d.nl, u, sweep_opts);
    sweep.set_observed(d.output_cells);
    const ReferenceTrace trace = evt.record_reference_trace(env);

    for (FaultId base = 0; base < u.size(); base += 63) {
      const std::size_t n = std::min<std::size_t>(63, u.size() - base);
      std::vector<FaultId> batch(n);
      std::iota(batch.begin(), batch.end(), base);

      const LaneMask det_evt = evt.run_tdf_batch(batch, env);
      const LaneMask det_sweep = sweep.run_tdf_batch(batch, env);
      const LaneMask det_traced = evt.run_tdf_batch(batch, env, &trace);
      ASSERT_EQ(det_evt, det_sweep) << "seed " << seed << " base " << base;
      ASSERT_EQ(det_evt, det_traced) << "seed " << seed << " base " << base;

      for (std::size_t i = 0; i < n; ++i) {
        const bool oracle = naive_tdf_detects(d, u, batch[i], words);
        ASSERT_EQ(det_evt.bit(static_cast<int>(i)), oracle)
            << "seed " << seed << " " << tdf_fault_name(u, batch[i]);
      }
    }
  }
}

TEST(EventSim, GradingInvariantAcrossClockingModes) {
  // The fsim layer above the kernel: stuck-at batches (set_injection_lanes
  // rearming included — early exit retires lanes mid-run) and TDF batches
  // (per-cycle arming at launch edges) must grade identically whichever
  // clocking mode the options pick, on both kernels.
  for (std::uint64_t seed = 61; seed <= 63; ++seed) {
    Rng rng(seed);
    RandomDesign d = random_design(rng, 6, 10, 70);
    const FaultUniverse u(d.nl);

    const int cycles = 24;
    std::vector<std::vector<bool>> words(static_cast<std::size_t>(cycles));
    for (auto& w : words) {
      w.resize(d.input_nets.size());
      for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.next_bool();
    }
    ScriptedEnv env(d.input_nets, words);

    const auto grade_all = [&](bool event_driven, bool incremental,
                               bool tdf) {
      SequentialFaultSimulator fsim(d.nl, u,
                                    {.max_cycles = cycles,
                                     .event_driven = event_driven,
                                     .incremental_clocking = incremental});
      fsim.set_observed(d.output_cells);
      std::vector<bool> verdicts;
      verdicts.reserve(u.size());
      for (FaultId base = 0; base < u.size(); base += 63) {
        const std::size_t n = std::min<std::size_t>(63, u.size() - base);
        std::vector<FaultId> batch(n);
        std::iota(batch.begin(), batch.end(), base);
        const LaneMask det = tdf ? fsim.run_tdf_batch(batch, env)
                                 : fsim.run_batch(batch, env);
        for (std::size_t i = 0; i < n; ++i)
          verdicts.push_back(det.bit(static_cast<int>(i)));
      }
      return verdicts;
    };

    for (const bool tdf : {false, true}) {
      const std::vector<bool> baseline = grade_all(true, true, tdf);
      EXPECT_EQ(grade_all(true, false, tdf), baseline)
          << "seed " << seed << (tdf ? " tdf" : " sa") << " event/full-latch";
      // The sweep kernel ignores the clocking knob — both settings must
      // reduce to the same (already oracle-checked) behaviour.
      EXPECT_EQ(grade_all(false, true, tdf), baseline)
          << "seed " << seed << (tdf ? " tdf" : " sa") << " sweep/incremental";
      EXPECT_EQ(grade_all(false, false, tdf), baseline)
          << "seed " << seed << (tdf ? " tdf" : " sa") << " sweep/full-latch";
    }
  }
}

// ---------------------------------------------------------------------------
// Campaign determinism on the persistent worker pool, kernel switched
// either way. Small counter rig (mirrors campaign_test's) graded at
// 1/2/4/8 threads.

constexpr int kBits = 10;
constexpr int kCycles = 30;

struct CounterRig {
  Netlist nl{"t"};
  NetId en;
  std::vector<CellId> outputs;

  CounterRig() {
    WordOps w(nl, "m");
    en = nl.add_input("en");
    RegWord cnt = w.reg_declare(kBits, "cnt");
    const auto inc = w.add_word(cnt.q, w.constant(1, kBits), w.lit(false), "inc");
    const Bus d = w.mux_word(en, cnt.q, inc.sum, "d");
    w.reg_connect(cnt, d);
    for (int i = 0; i < kBits; ++i)
      outputs.push_back(nl.add_output("o" + std::to_string(i), cnt.q[i]));
  }
};

class CounterEnv : public FsimEnvironment {
 public:
  explicit CounterEnv(NetId en) : en_(en) {}
  void reset(PackedSim& sim) override {
    sim.set_input_all(en_, false);
    sim.eval();
  }
  bool step(PackedSim& sim, int) override {
    sim.set_input_all(en_, true);
    sim.eval();
    return true;
  }

 private:
  NetId en_;
};

class RigBatchRunner final : public FaultBatchRunner {
 public:
  RigBatchRunner(const CounterRig& rig, const FaultUniverse& u,
                 std::shared_ptr<const ReferenceTrace> trace, bool event_driven,
                 FaultModel model, bool incremental)
      : env_(rig.en),
        fsim_(rig.nl, u,
              {.max_cycles = kCycles,
               .event_driven = event_driven,
               .incremental_clocking = incremental}),
        trace_(std::move(trace)),
        model_(model) {
    fsim_.set_observed(rig.outputs);
  }
  LaneMask run_batch(std::span<const FaultId> faults) override {
    return model_ == FaultModel::kTransition
               ? fsim_.run_tdf_batch(faults, env_, trace_.get())
               : fsim_.run_batch(faults, env_, trace_.get());
  }

 private:
  CounterEnv env_;
  SequentialFaultSimulator fsim_;
  std::shared_ptr<const ReferenceTrace> trace_;
  FaultModel model_;
};

CampaignTest make_rig_test(const CounterRig& rig, const FaultUniverse& u,
                           bool event_driven,
                           FaultModel model = FaultModel::kStuckAt,
                           bool incremental = true) {
  CounterEnv trace_env(rig.en);
  SequentialFaultSimulator tracer(
      rig.nl, u, {.max_cycles = kCycles, .event_driven = event_driven});
  tracer.set_observed(rig.outputs);
  auto trace = std::make_shared<const ReferenceTrace>(
      tracer.record_reference_trace(trace_env));
  CampaignTest test;
  test.name = event_driven ? "event" : "sweep";
  test.good_cycles = kCycles;
  test.make_runner = [&rig, &u, trace = std::move(trace), event_driven, model,
                      incremental]() {
    return std::make_unique<RigBatchRunner>(rig, u, trace, event_driven,
                                            model, incremental);
  };
  return test;
}

TEST(EventSim, CampaignDeterministicAcrossPoolSizesAndKernels) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  ASSERT_GT(u.size(), 63u * 4) << "rig too small to shard meaningfully";

  CampaignResult reference;
  for (const bool event_driven : {true, false}) {
    std::vector<CampaignTest> tests;
    tests.push_back(make_rig_test(rig, u, event_driven));
    for (const int threads : {1, 2, 4, 8}) {
      FaultList fl(u);
      const CampaignResult r =
          CampaignEngine(u, {.threads = threads}).run(fl, tests);
      if (event_driven && threads == 1) {
        reference = r;
        EXPECT_GT(r.total_new_detections, 0u);
      } else {
        // Same detection payload regardless of pool size AND kernel.
        EXPECT_EQ(r.detected, reference.detected)
            << "kernel=" << (event_driven ? "event" : "sweep")
            << " threads=" << threads;
        EXPECT_EQ(r.total_new_detections, reference.total_new_detections);
      }
      // Per-shard wall times landed for every shard of every test.
      std::size_t shards = 0;
      for (const auto& pt : r.tests) shards += pt.batches;
      EXPECT_EQ(r.stats.shard_seconds.size(), shards);
    }
  }
}

TEST(TdfSim, CampaignDeterministicAcrossPoolSizesAndKernels) {
  // The acceptance bar for the TDF runner: bit-identical campaign results
  // across 1/2/4/8 threads AND both kernels, exactly like stuck-at.
  CounterRig rig;
  const FaultUniverse u(rig.nl);

  CampaignResult reference;
  for (const bool event_driven : {true, false}) {
    std::vector<CampaignTest> tests;
    tests.push_back(
        make_rig_test(rig, u, event_driven, FaultModel::kTransition));
    for (const int threads : {1, 2, 4, 8}) {
      FaultList fl(u);
      const CampaignResult r =
          CampaignEngine(u, {.threads = threads,
                             .fault_model = FaultModel::kTransition})
              .run(fl, tests);
      EXPECT_EQ(r.fault_model, FaultModel::kTransition);
      if (event_driven && threads == 1) {
        reference = r;
        EXPECT_GT(r.total_new_detections, 0u);
      } else {
        // Same detection payload regardless of pool size AND kernel (the
        // tests differ by display name, so compare the payload fields).
        EXPECT_EQ(r.detected, reference.detected)
            << "kernel=" << (event_driven ? "event" : "sweep")
            << " threads=" << threads;
        EXPECT_EQ(r.total_new_detections, reference.total_new_detections);
        EXPECT_EQ(r.classes, reference.classes);
      }
    }
  }
  // Empirical sanity check on this fixed rig: TDF detects no more than
  // stuck-at. NOT a theorem — an always-armed stuck fault corrupts state
  // from cycle 0 and can be sequentially masked where the single-capture
  // TDF effect is not — but on this deterministic rig the counts hold,
  // and a TDF runner suddenly out-detecting stuck-at here would almost
  // certainly be an arming bug.
  std::vector<CampaignTest> sa_tests;
  sa_tests.push_back(make_rig_test(rig, u, true));
  FaultList sa_fl(u);
  const CampaignResult sa =
      CampaignEngine(u, {.threads = 2}).run(sa_fl, sa_tests);
  EXPECT_LE(reference.total_new_detections, sa.total_new_detections);
}

TEST(EventSim, CampaignDeterministicAcrossClockingModes) {
  // The campaign acceptance bar extended to the clocking knob: full-latch
  // runners at any pool size must reproduce the incremental reference
  // bit for bit, for both fault models.
  CounterRig rig;
  const FaultUniverse u(rig.nl);

  for (const FaultModel model :
       {FaultModel::kStuckAt, FaultModel::kTransition}) {
    std::vector<CampaignTest> incr_tests;
    incr_tests.push_back(make_rig_test(rig, u, true, model, true));
    FaultList ref_fl(u);
    const CampaignResult reference =
        CampaignEngine(u, {.threads = 1, .fault_model = model})
            .run(ref_fl, incr_tests);
    EXPECT_GT(reference.total_new_detections, 0u);

    std::vector<CampaignTest> full_tests;
    full_tests.push_back(make_rig_test(rig, u, true, model, false));
    for (const int threads : {1, 4}) {
      FaultList fl(u);
      const CampaignResult r =
          CampaignEngine(u, {.threads = threads, .fault_model = model})
              .run(fl, full_tests);
      EXPECT_EQ(r.detected, reference.detected)
          << "model=" << (model == FaultModel::kTransition ? "tdf" : "sa")
          << " threads=" << threads;
      EXPECT_EQ(r.total_new_detections, reference.total_new_detections);
      EXPECT_EQ(r.classes, reference.classes);
    }
  }
}

/// The same engine (and therefore the same parked pool) must survive many
/// grade() calls — the scan-ATPG usage pattern that motivated the pool.
TEST(EventSim, PersistentPoolSurvivesRepeatedGrades) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  const CampaignTest test = make_rig_test(rig, u, true);
  const CampaignEngine engine(u, {.threads = 4});

  std::vector<FaultId> targets;
  for (FaultId f = 0; f < u.size(); ++f) targets.push_back(f);
  const BitVec first = engine.grade(targets, test);
  EXPECT_GT(first.count(), 0u);
  for (int i = 0; i < 10; ++i)
    ASSERT_EQ(engine.grade(targets, test), first) << "grade call " << i;
}

}  // namespace
}  // namespace olfui
