#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "netlist/wordops.hpp"
#include "scan/scan.hpp"
#include "sim/packed.hpp"
#include "sta/sta.hpp"

namespace olfui {
namespace {

/// A little sequential design: 6 flops of assorted kinds with some logic.
struct Design {
  Netlist nl{"t"};
  NetId rstn, a, b;
  std::vector<RegWord> regs;

  Design() {
    WordOps w(nl, "core");
    rstn = nl.add_input("rstn");
    a = nl.add_input("a");
    b = nl.add_input("b");
    RegWord r0 = w.reg_word({w.and2(a, b, "x0")}, "r0");
    RegWord r1 = w.reg_word({w.xor2(r0.q[0], a, "x1")}, "r1", rstn);
    RegWord r2 = w.reg_word({w.or2(r1.q[0], b, "x2")}, "r2");
    RegWord r3 = w.reg_word({w.not_(r2.q[0], "x3")}, "r3", rstn);
    RegWord r4 = w.reg_word({w.mux(a, r3.q[0], b, "x4")}, "r4");
    RegWord r5 = w.reg_word({w.buf(r4.q[0], "x5")}, "r5");
    nl.add_output("o", r5.q[0]);
    for (auto& r : {r0, r1, r2, r3, r4, r5}) regs.push_back(r);
  }
};

TEST(ScanInsert, AddsPortsAndMuxes) {
  Design d;
  const auto before = d.nl.stats();
  const ScanChains chains = insert_scan(d.nl, {.num_chains = 2,
                                               .buffers_per_link = 1});
  const auto after = d.nl.stats();
  EXPECT_EQ(chains.chains.size(), 2u);
  EXPECT_EQ(chains.num_flops(), before.flops);
  EXPECT_EQ(after.inputs, before.inputs + 3);   // scan_en + 2 scan_in
  EXPECT_EQ(after.outputs, before.outputs + 2); // 2 scan_out
  // One mux per flop, plus link+tail buffers.
  EXPECT_EQ(after.gates, before.gates + before.flops /*mux*/ +
                             before.flops /*link bufs*/ + 2 /*tail bufs*/);
  EXPECT_TRUE(d.nl.validate().empty());
}

TEST(ScanInsert, FunctionalBehaviourUnchangedInMissionMode) {
  // With SE = functional value the scanned design must compute exactly
  // what the original computed.
  Design ref, dut;
  const ScanChains chains = insert_scan(dut.nl, {.num_chains = 1,
                                                 .buffers_per_link = 2});
  PackedSim ps_ref(ref.nl), ps_dut(dut.nl);
  ps_ref.power_on();
  ps_dut.power_on();
  ps_dut.set_input_all(chains.se_net, false);
  for (const ScanChain& c : chains.chains)
    ps_dut.set_input_all(c.scan_in_net, false);
  std::uint64_t lfsr = 0x12345;
  for (int cyc = 0; cyc < 30; ++cyc) {
    const bool av = lfsr & 1, bv = lfsr & 2, rv = cyc > 2;
    lfsr = lfsr * 6364136223846793005ULL + 1442695040888963407ULL;
    for (PackedSim* s : {&ps_ref, &ps_dut}) {
      s->set_input_all(ref.a, av);  // same net ids in both netlists
      s->set_input_all(ref.b, bv);
      s->set_input_all(ref.rstn, rv);
      s->eval();
    }
    const CellId oref = ref.nl.find_output("o");
    const CellId odut = dut.nl.find_output("o");
    EXPECT_EQ(ps_ref.observed(oref) & 1, ps_dut.observed(odut) & 1) << cyc;
    ps_ref.clock();
    ps_dut.clock();
  }
}

TEST(ScanInsert, ShiftModeMovesDataThroughChain) {
  // In scan mode (SE=1) the chain is one long shift register.
  Design d;
  const ScanChains chains = insert_scan(d.nl, {.num_chains = 1,
                                               .buffers_per_link = 0});
  PackedSim ps(d.nl);
  ps.power_on();
  ps.set_input_all(chains.se_net, true);
  ps.set_input_all(d.a, false);
  ps.set_input_all(d.b, false);
  ps.set_input_all(d.rstn, true);
  const ScanChain& chain = chains.chains[0];
  // Shift in the pattern 1,0,1,1,0,1 (LSB first reaches the last flop).
  const int n = static_cast<int>(chain.elements.size());
  std::vector<int> pattern = {1, 0, 1, 1, 0, 1};
  for (int i = 0; i < n; ++i) {
    ps.set_input_all(chain.scan_in_net, pattern[static_cast<std::size_t>(i)] != 0);
    ps.eval();
    ps.clock();
  }
  // After n shifts flop k holds pattern[n-1-k].
  for (int k = 0; k < n; ++k) {
    const CellId flop = chain.elements[static_cast<std::size_t>(k)].flop;
    EXPECT_EQ(ps.value(d.nl.cell(flop).out) & 1,
              static_cast<std::uint64_t>(pattern[static_cast<std::size_t>(n - 1 - k)]))
        << k;
  }
}

TEST(ScanTrace, RecoversInsertedChains) {
  Design d;
  const ScanChains inserted = insert_scan(d.nl, {.num_chains = 2,
                                                 .buffers_per_link = 1});
  const ScanChains traced = trace_scan(d.nl);
  ASSERT_EQ(traced.chains.size(), inserted.chains.size());
  EXPECT_EQ(traced.se_net, inserted.se_net);
  for (std::size_t c = 0; c < traced.chains.size(); ++c) {
    const ScanChain& ti = traced.chains[c];
    const ScanChain& ii = inserted.chains[c];
    ASSERT_EQ(ti.elements.size(), ii.elements.size()) << c;
    for (std::size_t k = 0; k < ti.elements.size(); ++k) {
      EXPECT_EQ(ti.elements[k].flop, ii.elements[k].flop);
      EXPECT_EQ(ti.elements[k].mux, ii.elements[k].mux);
      EXPECT_EQ(ti.elements[k].link_buffers, ii.elements[k].link_buffers);
    }
    EXPECT_EQ(ti.scan_out_port, ii.scan_out_port);
    EXPECT_EQ(ti.tail_buffers, ii.tail_buffers);
  }
}

TEST(ScanTrace, ThrowsWithoutScanEnable) {
  Design d;
  EXPECT_THROW(trace_scan(d.nl), std::runtime_error);
}

TEST(ScanPrune, Fig2FaultSetExactlyPruned) {
  Design d;
  const ScanChains chains = insert_scan(d.nl, {.num_chains = 1,
                                               .buffers_per_link = 1});
  const FaultUniverse u(d.nl);
  FaultList fl(u);
  const std::size_t pruned = prune_scan_faults(chains, u, fl);
  EXPECT_EQ(fl.count_source(OnlineSource::kScan), pruned);

  const ScanChain& chain = chains.chains[0];
  const std::size_t flops = chain.elements.size();
  // Per element: SI s-a-0/1 + SE s-a-func (3); per link buffer: 4 faults;
  // scan-in stem: 2; scan-out port: 2; tail buffer: 4; SE stem: 1.
  const std::size_t buffers = flops + 1;  // one per link + tail
  EXPECT_EQ(pruned, flops * 3 + buffers * 4 + 2 + 2 + 1);

  for (const ScanElement& e : chain.elements) {
    const Pin si{e.mux, kMuxB + 1};
    const Pin se{e.mux, kMuxS + 1};
    const Pin fi{e.mux, kMuxA + 1};
    EXPECT_EQ(fl.online_source(u.id_of(si, false)), OnlineSource::kScan);
    EXPECT_EQ(fl.online_source(u.id_of(si, true)), OnlineSource::kScan);
    EXPECT_EQ(fl.online_source(u.id_of(se, false)), OnlineSource::kScan);
    // "The only fault that needs to be taken into consideration is the
    // stuck-at-1 on SE" (paper §3.1): it must NOT be pruned.
    EXPECT_EQ(fl.online_source(u.id_of(se, true)), OnlineSource::kNone);
    // Functional path fully kept.
    EXPECT_EQ(fl.online_source(u.id_of(fi, false)), OnlineSource::kNone);
    EXPECT_EQ(fl.online_source(u.id_of(fi, true)), OnlineSource::kNone);
  }
}

TEST(ScanPrune, AgreesWithStructuralEngine) {
  // Cross-validation (paper §4: Tetramax classifies the tied-SE faults as
  // "untestable due to tied value"): every fault the tracer prunes must
  // also be proven untestable by the structural engine under the scan
  // mission config.
  Design d;
  const ScanChains chains = insert_scan(d.nl, {.num_chains = 2,
                                               .buffers_per_link = 1});
  const FaultUniverse u(d.nl);
  FaultList direct(u), structural(u);
  prune_scan_faults(chains, u, direct);

  const StructuralAnalyzer sta(d.nl, u);
  sta.classify_faults(sta.analyze(scan_mission_config(d.nl, chains)),
                      structural, OnlineSource::kScan);

  for (FaultId f = 0; f < u.size(); ++f) {
    if (direct.untestable_kind(f) != UntestableKind::kNone) {
      EXPECT_NE(structural.untestable_kind(f), UntestableKind::kNone)
          << u.fault_name(f);
    }
  }
}

TEST(ScanPrune, SeStuckAtScanValueRemainsDetectable) {
  // Ground truth for keeping SE s-a-1: inject it and watch the mission-mode
  // machine diverge (the flop loads serial data instead of its D cone).
  Design d;
  const ScanChains chains = insert_scan(d.nl, {.num_chains = 1,
                                               .buffers_per_link = 0});
  const FaultUniverse u(d.nl);
  const ScanElement& e = chains.chains[0].elements[1];
  PackedSim good(d.nl), bad(d.nl);
  bad.add_injection({e.mux, kMuxS + 1, true, ~0ULL});
  bool diverged = false;
  for (PackedSim* s : {&good, &bad}) {
    s->power_on();
    s->set_input_all(chains.se_net, false);
    s->set_input_all(chains.chains[0].scan_in_net, false);
    s->set_input_all(d.rstn, true);
  }
  for (int cyc = 0; cyc < 10 && !diverged; ++cyc) {
    for (PackedSim* s : {&good, &bad}) {
      s->set_input_all(d.a, cyc % 2 == 0);
      s->set_input_all(d.b, cyc % 3 == 0);
      s->eval();
    }
    const CellId o = d.nl.find_output("o");
    if ((good.observed(o) ^ bad.observed(o)) & 1) diverged = true;
    good.clock();
    bad.clock();
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace olfui
