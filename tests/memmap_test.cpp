#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "memmap/memmap.hpp"
#include "netlist/wordops.hpp"
#include "sta/sta.hpp"

namespace olfui {
namespace {

MemoryMap case_study_map() {
  // The paper's §4 configuration.
  MemoryMap map;
  map.add_range("flash", 0x0007'8000, 0x8000);
  map.add_range("ram", 0x4000'0000, 0x2'0000);
  return map;
}

TEST(MemoryMap, BitCanBeWithinSingleRange) {
  MemoryMap map;
  map.add_range("r", 0x100, 0x10);  // 0x100..0x10F
  // Bits 0..3 vary, bit 8 is constant 1, bit 4 constant 0.
  EXPECT_TRUE(map.bit_can_be(0, false));
  EXPECT_TRUE(map.bit_can_be(0, true));
  EXPECT_TRUE(map.bit_can_be(3, true));
  EXPECT_FALSE(map.bit_can_be(4, true));
  EXPECT_TRUE(map.bit_can_be(8, true));
  EXPECT_FALSE(map.bit_can_be(8, false));
  EXPECT_FALSE(map.bit_can_be(31, true));
}

TEST(MemoryMap, BitWrapsAcrossPrefixBoundary) {
  MemoryMap map;
  map.add_range("r", 0x0FE, 0x4);  // 0xFE,0xFF,0x100,0x101: bit 8 varies
  EXPECT_TRUE(map.bit_can_be(8, false));
  EXPECT_TRUE(map.bit_can_be(8, true));
  EXPECT_TRUE(map.bit_can_be(1, true));
}

TEST(MemoryMap, CaseStudyVaryingBits) {
  // With Flash 0x78000-0x7FFFF and RAM 0x40000000-0x4001FFFF the varying
  // bits over the union are 0..18 and 30; bits 19..29 and 31 are constant 0.
  const AddressBitInfo info = case_study_map().analyze(32);
  for (int b = 0; b <= 18; ++b) EXPECT_TRUE(info.varying[b]) << b;
  EXPECT_TRUE(info.varying[30]);
  for (int b = 19; b <= 29; ++b) {
    EXPECT_FALSE(info.varying[b]) << b;
    EXPECT_FALSE(info.value[b]) << b;  // constant 0
  }
  EXPECT_FALSE(info.varying[31]);
  EXPECT_EQ(info.num_constant(), 12u);
}

TEST(MemoryMap, FlashOnlyMapHasConstantOneBits) {
  MemoryMap map;
  map.add_range("flash", 0x0007'8000, 0x8000);
  const AddressBitInfo info = map.analyze(32);
  // Inside the flash range bits 15..18 are always 1.
  for (int b = 15; b <= 18; ++b) {
    EXPECT_FALSE(info.varying[b]) << b;
    EXPECT_TRUE(info.value[b]) << b;
  }
  for (int b = 0; b <= 14; ++b) EXPECT_TRUE(info.varying[b]) << b;
}

TEST(MemoryMap, ContainsChecksAllRanges) {
  const MemoryMap map = case_study_map();
  EXPECT_TRUE(map.contains(0x78000));
  EXPECT_TRUE(map.contains(0x7FFFF));
  EXPECT_FALSE(map.contains(0x80000));
  EXPECT_TRUE(map.contains(0x4001FFFF));
  EXPECT_FALSE(map.contains(0x40020000));
  EXPECT_FALSE(map.contains(0x0));
}

TEST(MemoryMap, ToStringListsConstants) {
  const AddressBitInfo info = case_study_map().analyze(32);
  const std::string s = info.to_string();
  EXPECT_NE(s.find("19=0"), std::string::npos);
  EXPECT_NE(s.find("31=0"), std::string::npos);
}

struct AddrRig {
  Netlist nl{"t"};
  RegWord mar;   // tagged addr:data
  RegWord misc;  // untagged register

  AddrRig() {
    WordOps w(nl, "core");
    const NetId a = nl.add_input("a");
    Bus d(4);
    for (int i = 0; i < 4; ++i) d[i] = w.buf(a, "d" + std::to_string(i));
    mar = w.reg_word(d, "mar");
    w.tag_reg(mar, "addr:data");
    misc = w.reg_word(d, "misc");
    for (int i = 0; i < 4; ++i) {
      nl.add_output("m" + std::to_string(i), mar.q[i]);
      nl.add_output("x" + std::to_string(i), misc.q[i]);
    }
  }
};

TEST(AddrRegisters, FoundByTag) {
  AddrRig rig;
  const auto regs = find_address_registers(rig.nl);
  ASSERT_EQ(regs.size(), 4u);
  for (const AddrRegBit& r : regs) {
    EXPECT_EQ(r.cls, "data");
    EXPECT_GE(r.bit, 0);
    EXPECT_LT(r.bit, 4);
  }
}

TEST(AddrRegisters, ConfigTiesConstantBitsOnly) {
  AddrRig rig;
  MemoryMap map;
  map.add_range("r", 0x0, 0x4);  // bits 0..1 vary, bits 2..3 constant 0
  const MissionConfig cfg = memmap_config(rig.nl, map, 4);
  // Two constant bits x (D net + Q net) = 4 ties.
  EXPECT_EQ(cfg.constants.size(), 4u);
  for (auto [net, v] : cfg.constants) EXPECT_FALSE(v);
  // The tied nets belong to the tagged register, not the untagged one.
  for (auto [net, v] : cfg.constants) {
    const std::string& name = rig.nl.net(net).name;
    EXPECT_EQ(name.find("misc"), std::string::npos) << name;
  }
}

TEST(AddrRegisters, ClassFilterSelectsSubset) {
  AddrRig rig;
  MemoryMap map;
  map.add_range("r", 0x0, 0x4);
  EXPECT_TRUE(memmap_config(rig.nl, map, 4, {"code"}).constants.empty());
  EXPECT_EQ(memmap_config(rig.nl, map, 4, {"data"}).constants.size(), 4u);
}

TEST(AddrRegisters, TiesMakeDownstreamAdderPartiallyUntestable) {
  // Paper Fig. 6 / §3.3: constants tied at an address register propagate
  // into the branch-calculation adder and expose untestable faults there.
  Netlist nl("t");
  WordOps w(nl, "core");
  const NetId a = nl.add_input("a");
  Bus d(4);
  for (int i = 0; i < 4; ++i) d[i] = w.buf(a, "d" + std::to_string(i));
  RegWord pc = w.reg_word(d, "pc");
  w.tag_reg(pc, "addr:code");
  Bus off(4);
  for (int i = 0; i < 4; ++i) off[i] = nl.add_input("off" + std::to_string(i));
  const auto sum = w.add_word(pc.q, off, w.lit(false), "bradd");
  for (int i = 0; i < 4; ++i) nl.add_output("t" + std::to_string(i), sum.sum[i]);

  MemoryMap map;
  map.add_range("rom", 0x0, 0x4);  // bits 2..3 of the PC constant 0
  const FaultUniverse u(nl);
  const StructuralAnalyzer sta(nl, u);
  FaultList fl(u);
  const MissionConfig cfg = memmap_config(nl, map, 4);
  const std::size_t n =
      sta.classify_faults(sta.analyze(cfg), fl, OnlineSource::kMemoryMap);
  EXPECT_GT(n, 0u);
  // Specifically, the s-a-0 on the PC's high Q bit is tied-untestable.
  EXPECT_EQ(fl.untestable_kind(u.id_of({pc.flops[3], 0}, false)),
            UntestableKind::kTied);
  // And some fault inside the adder cone got proven untestable too.
  std::size_t adder_untestable = 0;
  for (FaultId f = 0; f < u.size(); ++f) {
    if (fl.untestable_kind(f) == UntestableKind::kNone) continue;
    const std::string name = u.fault_name(f);
    if (name.find("bradd") != std::string::npos) ++adder_untestable;
  }
  EXPECT_GT(adder_untestable, 0u);
}

TEST(AddrRegisters, EmptyMapTiesEveryBit) {
  // Degenerate guard: with no reachable addresses every bit is "constant";
  // the value defaults to the reset state 0.
  AddrRig rig;
  MemoryMap map;
  const MissionConfig cfg = memmap_config(rig.nl, map, 4);
  EXPECT_EQ(cfg.constants.size(), 8u);  // 4 bits x (D + Q)
}

}  // namespace
}  // namespace olfui
