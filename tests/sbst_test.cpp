#include <gtest/gtest.h>

#include "sbst/sbst.hpp"

namespace olfui {
namespace {

SocConfig lean_config() {
  SocConfig cfg;
  cfg.cpu.btb_entries = 2;
  cfg.cpu.with_multiplier = false;
  cfg.scan.num_chains = 2;
  return cfg;
}

TEST(SbstSuite, EveryProgramHaltsOnTheFullSoc) {
  SocConfig cfg;  // full case-study configuration, multiplier included
  auto soc = build_soc(cfg);
  auto suite = build_sbst_suite(cfg);
  ASSERT_GE(suite.size(), 8u);
  for (SbstProgram& sp : suite) {
    SocSimulator sim(*soc);
    sim.load_program(sp.program);
    const int cycles = sim.run(5000);
    EXPECT_TRUE(sim.halted()) << sp.name;
    EXPECT_GT(cycles, 5) << sp.name;
    EXPECT_LT(cycles, 5000) << sp.name;
  }
}

TEST(SbstSuite, MulProgramOnlyWithMultiplier) {
  SocConfig with = {};
  SocConfig without = lean_config();
  const auto names = [](const std::vector<SbstProgram>& s) {
    std::vector<std::string> n;
    for (const auto& p : s) n.push_back(p.name);
    return n;
  };
  const auto w = names(build_sbst_suite(with));
  const auto wo = names(build_sbst_suite(without));
  EXPECT_NE(std::find(w.begin(), w.end(), "mul"), w.end());
  EXPECT_EQ(std::find(wo.begin(), wo.end(), "mul"), wo.end());
}

TEST(SbstSuite, AluArithSignaturesMatchReference) {
  SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  auto suite = build_sbst_suite(cfg);
  SocSimulator sim(*soc);
  sim.load_program(suite[0].program);  // alu_arith
  sim.run(3000);
  ASSERT_TRUE(sim.halted());
  const std::uint64_t ram = cfg.ram_base;
  EXPECT_EQ(sim.ram_word(ram + 0), 0xAAAA5555u + 0xFFu);
  EXPECT_EQ(sim.ram_word(ram + 4), 0xAAAA5555u - 0xFFu);
  EXPECT_EQ(sim.ram_word(ram + 8), 0xFFFFFFFEu);  // -1 + -1
  EXPECT_EQ(sim.ram_word(ram + 12), 0xFFu - 0xAAAA5555u);
  EXPECT_EQ(sim.ram_word(ram + 16), 1u);  // 0xFF < 0xAAAA5555
  EXPECT_EQ(sim.ram_word(ram + 20), 0u);
  EXPECT_EQ(sim.ram_word(ram + 24), 0u);  // equal operands
  EXPECT_EQ(sim.ram_word(ram + 28), 0xFFFFFFFFu);  // sum of walking ones
  EXPECT_EQ(sim.ram_word(ram + 32), 0x55555555u + 0x33333333u);
}

TEST(SbstSuite, ShiftSignatures) {
  SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  auto suite = build_sbst_suite(cfg);
  SocSimulator sim(*soc);
  sim.load_program(suite[2].program);  // shift
  sim.run(3000);
  ASSERT_TRUE(sim.halted());
  const std::uint64_t base = cfg.ram_base + 0x200;
  const std::uint32_t v = 0x80000003u;
  for (int n = 0; n < 32; ++n) {
    const std::uint32_t expect = (v << n) ^ (v >> n);
    EXPECT_EQ(sim.ram_word(base + 4u * static_cast<std::uint32_t>(n)), expect)
        << "amount " << n;
  }
}

TEST(SbstSuite, MulSignatures) {
  SocConfig cfg;  // multiplier on
  auto soc = build_soc(cfg);
  auto suite = build_sbst_suite(cfg);
  std::size_t mul_idx = 0;
  for (std::size_t i = 0; i < suite.size(); ++i)
    if (suite[i].name == "mul") mul_idx = i;
  SocSimulator sim(*soc);
  sim.load_program(suite[mul_idx].program);
  sim.run(5000);
  ASSERT_TRUE(sim.halted());
  const std::uint64_t base = cfg.ram_base + 0x700;
  EXPECT_EQ(sim.ram_word(base + 0), 15u);
  EXPECT_EQ(sim.ram_word(base + 4), 1u);  // (-1)^2 mod 2^32
  EXPECT_EQ(sim.ram_word(base + 8), 0x0001'0001u * 0xFFFFu);
  std::uint32_t acc = 0;
  for (int b = 0; b < 32; ++b)
    acc += static_cast<std::uint32_t>((1ULL << b) * (1ULL << b));
  EXPECT_EQ(sim.ram_word(base + 12), acc);
  EXPECT_EQ(sim.ram_word(base + 16), 0xAAAAAAAAu * 0x55555555u);
  EXPECT_EQ(sim.ram_word(base + 20), 0x55555555u * 0x55555555u);
}

TEST(SbstSuite, LoadStoreWalksTheRamRange) {
  SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  auto suite = build_sbst_suite(cfg);
  std::size_t ls_idx = 0;
  for (std::size_t i = 0; i < suite.size(); ++i)
    if (suite[i].name == "loadstore") ls_idx = i;
  SocSimulator sim(*soc);
  sim.load_program(suite[ls_idx].program);
  sim.run(4000);
  ASSERT_TRUE(sim.halted());
  // The walk stored at every power-of-two offset inside RAM.
  std::uint32_t data = 0xDEADBEEFu;
  std::uint64_t sum = 0;
  for (std::uint64_t off = 4; off < cfg.ram_size; off *= 2) {
    // Offsets 8 and 64 are overwritten by the program's later stores
    // (flash read-back and offset-form addressing checks).
    if (off != 8 && off != 64) {
      EXPECT_EQ(sim.ram_word(cfg.ram_base + off), data) << off;
    }
    sum += data;
    data += static_cast<std::uint32_t>(off);
  }
  EXPECT_EQ(sim.ram_word(cfg.ram_base),
            static_cast<std::uint32_t>(sum));
  // Flash read-back stored the program's first word.
  EXPECT_EQ(sim.ram_word(cfg.ram_base + 8), suite[ls_idx].program.words()[0]);
}

TEST(SbstSuite, FunctionalRunnerReportsCyclesAndActivity) {
  SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  auto suite = build_sbst_suite(cfg);
  ToggleRecorder rec(soc->netlist);
  const auto cycles = run_suite_functional(*soc, suite, 5000, &rec);
  ASSERT_EQ(cycles.size(), suite.size());
  for (std::size_t i = 0; i < cycles.size(); ++i)
    EXPECT_GT(cycles[i], 5) << suite[i].name;
  EXPECT_GT(rec.cycles(), 100u);
  // The PC low bits toggle during any run; debug inputs never do.
  EXPECT_GT(rec.toggles(soc->cpu.pc.q[2]), 0u);
  for (NetId n : soc->debug.control_inputs) EXPECT_EQ(rec.toggles(n), 0u);
}

TEST(SbstCampaign, DetectsASubstantialFractionAndDropsFaults) {
  // Lean SoC + two programs keeps this in unit-test time while still
  // exercising the whole campaign machinery.
  SocConfig cfg = lean_config();
  cfg.scan.num_chains = 1;
  auto soc = build_soc(cfg);
  auto suite = build_sbst_suite(cfg);
  suite.erase(suite.begin() + 2, suite.end());  // alu_arith + alu_logic
  const FaultUniverse u(soc->netlist);
  FaultList fl(u);
  const auto result = run_sbst_campaign(*soc, suite, fl);
  ASSERT_EQ(result.programs.size(), 2u);
  EXPECT_EQ(result.total_detected, fl.count_detected());
  EXPECT_GT(fl.raw_coverage(), 0.15);
  // Fault dropping: the second program targets fewer faults, so its new
  // detections are fewer than the first's.
  EXPECT_GT(result.programs[0].new_detections,
            result.programs[1].new_detections);
}

TEST(SbstCampaign, TransitionModelGradesThroughTheOrchestrator) {
  // The §5 extension end-to-end: the same suite, graded for TDF coverage
  // through the same engine. One short program on the lean SoC keeps the
  // two-pass TDF batches in unit-test time.
  SocConfig cfg = lean_config();
  cfg.scan.num_chains = 1;
  auto soc = build_soc(cfg);
  auto suite = build_sbst_suite(cfg);
  suite.erase(suite.begin() + 1, suite.end());  // alu_arith only
  const FaultUniverse u(soc->netlist);

  CampaignOptions opts;
  opts.fault_model = FaultModel::kTransition;
  opts.threads = 1;
  FaultList fl1(u);
  const auto r1 = run_sbst_campaign(*soc, suite, fl1, {}, opts);
  EXPECT_EQ(r1.campaign.fault_model, FaultModel::kTransition);
  EXPECT_GT(r1.total_detected, 0u);
  EXPECT_EQ(r1.total_detected, fl1.count_detected());

  // Thread count never shows through the deterministic payload.
  opts.threads = 4;
  FaultList fl4(u);
  const auto r4 = run_sbst_campaign(*soc, suite, fl4, {}, opts);
  EXPECT_EQ(r4.campaign, r1.campaign);
  EXPECT_EQ(r4.campaign.detected, r1.campaign.detected);

  // Both kernels through the engine: the full-sweep oracle grades the
  // identical TDF payload (run_sbst_campaign itself always uses the
  // event kernel, so go through build_sbst_campaign_tests directly).
  const auto sweep_tests = build_sbst_campaign_tests(
      *soc, suite, u, kSbstCampaignMargin, /*event_driven=*/false,
      FaultModel::kTransition);
  FaultList fls(u);
  const CampaignResult rs =
      CampaignEngine(u, {.threads = 2, .fault_model = FaultModel::kTransition})
          .run(fls, sweep_tests);
  EXPECT_EQ(rs.detected, r1.campaign.detected);
  EXPECT_EQ(rs.total_new_detections, r1.campaign.total_new_detections);

  // Empirical for this fixed program (not a theorem — sequential masking
  // of the always-armed stuck fault could break it in general): TDF
  // coverage stays at or below stuck-at coverage.
  FaultList sa(u);
  const auto rsa = run_sbst_campaign(*soc, suite, sa, {});
  EXPECT_EQ(rsa.campaign.fault_model, FaultModel::kStuckAt);
  EXPECT_LE(r1.total_detected, rsa.total_detected);
}

}  // namespace
}  // namespace olfui
