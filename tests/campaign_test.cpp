#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <stdexcept>

#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "campaign/json.hpp"
#include "campaign/report.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/shard_queue.hpp"
#include "campaign/worker_pool.hpp"
#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "fsim/fsim.hpp"
#include "netlist/wordops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sbst/sbst.hpp"

namespace olfui {
namespace {

// ---------------------------------------------------------------------------
// Rig: a 12-bit enabled counter. Big enough for a few dozen 63-fault
// shards (so the work-stealing pool actually distributes work), small
// enough for unit-test time.

class CounterEnv : public FsimEnvironment {
 public:
  explicit CounterEnv(NetId en) : en_(en) {}
  void reset(PackedSim& sim) override {
    sim.set_input_all(en_, false);
    sim.eval();
  }
  bool step(PackedSim& sim, int) override {
    sim.set_input_all(en_, true);
    sim.eval();
    return true;
  }

 private:
  NetId en_;
};

constexpr int kBits = 12;
constexpr int kCycles = 40;

struct CounterRig {
  Netlist nl{"t"};
  NetId en;
  RegWord cnt;
  std::vector<CellId> outputs;

  CounterRig() {
    WordOps w(nl, "m");
    en = nl.add_input("en");
    cnt = w.reg_declare(kBits, "cnt");
    const auto inc = w.add_word(cnt.q, w.constant(1, kBits), w.lit(false), "inc");
    const Bus d = w.mux_word(en, cnt.q, inc.sum, "d");
    w.reg_connect(cnt, d);
    for (int i = 0; i < kBits; ++i)
      outputs.push_back(nl.add_output("o" + std::to_string(i), cnt.q[i]));
  }
};

/// Per-worker runner over the rig; shares one recorded good trace.
class RigBatchRunner final : public FaultBatchRunner {
 public:
  RigBatchRunner(const CounterRig& rig, const FaultUniverse& u,
                 std::vector<CellId> observed,
                 std::shared_ptr<const ReferenceTrace> trace,
                 FaultModel model = FaultModel::kStuckAt)
      : env_(rig.en),
        fsim_(rig.nl, u, {.max_cycles = kCycles}),
        trace_(std::move(trace)),
        model_(model) {
    fsim_.set_observed(std::move(observed));
  }
  LaneMask run_batch(std::span<const FaultId> faults) override {
    return model_ == FaultModel::kTransition
               ? fsim_.run_tdf_batch(faults, env_, trace_.get())
               : fsim_.run_batch(faults, env_, trace_.get());
  }

 private:
  CounterEnv env_;
  SequentialFaultSimulator fsim_;
  std::shared_ptr<const ReferenceTrace> trace_;
  FaultModel model_;
};

CampaignTest make_rig_test(const CounterRig& rig, const FaultUniverse& u,
                           std::vector<CellId> observed, std::string name,
                           FaultModel model = FaultModel::kStuckAt) {
  CounterEnv trace_env(rig.en);
  SequentialFaultSimulator tracer(rig.nl, u, {.max_cycles = kCycles});
  tracer.set_observed(observed);
  auto trace = std::make_shared<const ReferenceTrace>(
      tracer.record_reference_trace(trace_env));
  CampaignTest test;
  test.name = std::move(name);
  test.good_cycles = kCycles;
  test.make_runner = [&rig, &u, observed = std::move(observed),
                      trace = std::move(trace), model]() {
    return std::make_unique<RigBatchRunner>(rig, u, observed, trace, model);
  };
  return test;
}

/// Suite of two tests with growing observability, so the second test sees
/// faults the first one missed (exercises between-test fault dropping).
std::vector<CampaignTest> make_rig_suite(const CounterRig& rig,
                                         const FaultUniverse& u) {
  std::vector<CampaignTest> tests;
  tests.push_back(make_rig_test(
      rig, u,
      std::vector<CellId>(rig.outputs.begin(), rig.outputs.begin() + 4),
      "low_bits"));
  tests.push_back(make_rig_test(rig, u, rig.outputs, "all_bits"));
  return tests;
}

// ---------------------------------------------------------------------------
// ShardQueue

TEST(ShardQueue, EveryShardHandedOutExactlyOnce) {
  ShardQueue queue(101, 4);
  std::multiset<std::size_t> seen;
  std::size_t shard;
  // Workers drain in a round-robin of pops; worker 3 exercises stealing
  // once its own stripe is dry.
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t w = 0; w < 4; ++w) {
      if (queue.pop(w, shard)) {
        seen.insert(shard);
        any = true;
      }
    }
  }
  ASSERT_EQ(seen.size(), 101u);
  for (std::size_t s = 0; s < 101; ++s) EXPECT_EQ(seen.count(s), 1u) << s;
}

TEST(ShardQueue, EmptyQueueReportsDry) {
  ShardQueue queue(0, 2);
  std::size_t shard;
  EXPECT_FALSE(queue.pop(0, shard));
  EXPECT_FALSE(queue.pop(1, shard));
}

// ---------------------------------------------------------------------------
// WorkerPool

TEST(WorkerPool, RunsEveryParticipantAndReusesParkedThreads) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  // Many dispatches through one pool: the scan-ATPG once-per-pattern shape.
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> mask{0};
    pool.run(4, [&](std::size_t w) {
      mask.fetch_or(1ULL << w, std::memory_order_relaxed);
    });
    EXPECT_EQ(mask.load(), 0xFULL) << round;
  }
  // Fewer participants than threads: only those indexes run.
  std::atomic<std::uint64_t> mask{0};
  pool.run(2, [&](std::size_t w) { mask.fetch_or(1ULL << w); });
  EXPECT_EQ(mask.load(), 0x3ULL);
}

TEST(WorkerPool, ClampsParticipantsAndSupportsZeroThreads) {
  WorkerPool inline_only(0);
  std::atomic<std::uint64_t> mask{0};
  // Clamped to size() + 1 == 1: everything runs on the caller.
  inline_only.run(8, [&](std::size_t w) { mask.fetch_or(1ULL << w); });
  EXPECT_EQ(mask.load(), 0x1ULL);
  inline_only.run(0, [&](std::size_t) { ADD_FAILURE() << "0 participants"; });
}

TEST(WorkerPool, PropagatesWorkerExceptionsToCaller) {
  WorkerPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run(3,
               [&](std::size_t w) {
                 if (w == 1) throw std::runtime_error("boom");
                 ++completed;
               }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 2);
  // The pool must still be usable after a failed job.
  std::atomic<std::uint64_t> mask{0};
  pool.run(3, [&](std::size_t w) { mask.fetch_or(1ULL << w); });
  EXPECT_EQ(mask.load(), 0x7ULL);
}

// ---------------------------------------------------------------------------
// Json

TEST(Json, RoundTripsDocument) {
  const std::string text =
      R"({"name":"campaign","count":42,"ratio":0.5,"ok":true,"none":null,)"
      R"("tags":["a","b\n\"c\""],"nested":{"x":-7}})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.at("name").as_string(), "campaign");
  EXPECT_EQ(doc.at("count").as_size(), 42u);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_number(), 0.5);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  EXPECT_EQ(doc.at("tags").size(), 2u);
  EXPECT_EQ(doc.at("tags").at(1).as_string(), "b\n\"c\"");
  EXPECT_EQ(doc.at("nested").at("x").as_int(), -7);
  // dump -> parse -> dump is a fixed point.
  const std::string once = doc.dump();
  EXPECT_EQ(Json::parse(once).dump(), once);
  const std::string pretty = doc.dump(2);
  EXPECT_EQ(Json::parse(pretty).dump(), once);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{\"a\"}"), JsonError);
  // Unbounded nesting must fail cleanly, not overflow the stack.
  EXPECT_THROW(Json::parse(std::string(100000, '[')), JsonError);
}

TEST(Json, MissingKeyAndKindMismatchThrow) {
  const Json doc = Json::parse(R"({"a":1})");
  EXPECT_THROW(doc.at("b"), JsonError);
  EXPECT_THROW(doc.at("a").as_string(), JsonError);
  EXPECT_THROW(doc.at(std::size_t{0}), JsonError);
  EXPECT_TRUE(doc.contains("a"));
  EXPECT_FALSE(doc.contains("b"));
}

TEST(Json, IntegerAccessorsRejectOutOfRangeValues) {
  // A corrupt import must throw, not hit UB in the double->int cast.
  EXPECT_THROW(Json::parse("-1").as_size(), JsonError);
  EXPECT_THROW(Json::parse("1e300").as_size(), JsonError);
  EXPECT_THROW(Json::parse("1.5").as_size(), JsonError);
  EXPECT_THROW(Json::parse("3000000000").as_int(), JsonError);
  EXPECT_THROW(Json::parse("-3000000000").as_int(), JsonError);
  EXPECT_EQ(Json::parse("9007199254740992").as_size(), 9007199254740992ull);
  EXPECT_EQ(Json::parse("-2147483648").as_int(), -2147483648);
  EXPECT_EQ(Json::parse("2147483647").as_int(), 2147483647);
}

TEST(BitVecHex, RoundTrips) {
  BitVec bits(131);
  for (std::size_t i = 0; i < bits.size(); i += 3) bits.set(i, true);
  bits.set(130, true);
  const std::string hex = bitvec_to_hex(bits);
  EXPECT_EQ(bitvec_from_hex(hex), bits);
  // Empty vector round-trips too.
  EXPECT_EQ(bitvec_from_hex(bitvec_to_hex(BitVec())), BitVec());
  EXPECT_THROW(bitvec_from_hex("12"), JsonError);
  EXPECT_THROW(bitvec_from_hex("65:00"), JsonError);
}

// ---------------------------------------------------------------------------
// ReferenceTrace checkpoint

TEST(ReferenceTrace, TracedBatchesMatchUntracedForBothModels) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  SequentialFaultSimulator fsim(rig.nl, u, {.max_cycles = kCycles});
  fsim.set_observed(rig.outputs);
  CounterEnv env(rig.en);
  const ReferenceTrace trace = fsim.record_reference_trace(env);
  EXPECT_EQ(trace.cycles, kCycles);
  EXPECT_EQ(trace.num_nets, rig.nl.num_nets());
  ASSERT_EQ(trace.columns.size(), (rig.nl.num_nets() + 63) / 64);

  std::vector<FaultId> batch(63);
  std::iota(batch.begin(), batch.end(), 0u);
  EXPECT_EQ(fsim.run_batch(batch, env), fsim.run_batch(batch, env, &trace));
  // TDF: the traced path reads launch schedules from the checkpoint (no
  // pass 1); it must grade exactly like the self-contained two-pass path.
  EXPECT_EQ(fsim.run_tdf_batch(batch, env),
            fsim.run_tdf_batch(batch, env, &trace));
}

TEST(ReferenceTrace, ColumnRleMatchesReplayOnEveryNet) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  SequentialFaultSimulator fsim(rig.nl, u, {.max_cycles = kCycles});
  fsim.set_observed(rig.outputs);
  CounterEnv env(rig.en);
  const ReferenceTrace trace = fsim.record_reference_trace(env);

  // Reference: replay the good machine and compare every net_bit readback.
  PackedSim sim(rig.nl);
  sim.power_on();
  env.reset(sim);
  for (int cycle = 0; cycle < trace.cycles; ++cycle) {
    ASSERT_TRUE(env.step(sim, cycle));
    for (NetId n = 0; n < rig.nl.num_nets(); ++n)
      ASSERT_EQ(trace.net_bit(cycle, n), (sim.value(n) & 1ULL) != 0)
          << "cycle " << cycle << " net " << n;
    sim.clock();
  }
  // net_history is the bulk form of net_bit — bit-for-bit the same view.
  std::vector<std::uint64_t> packed;
  for (NetId n = 0; n < rig.nl.num_nets(); ++n) {
    trace.net_history(n, packed);
    ASSERT_EQ(packed.size(),
              (static_cast<std::size_t>(trace.cycles) + 63) / 64);
    for (int cycle = 0; cycle < trace.cycles; ++cycle)
      ASSERT_EQ((packed[static_cast<std::size_t>(cycle) / 64] >>
                 (cycle % 64)) & 1ULL,
                trace.net_bit(cycle, n) ? 1ULL : 0ULL)
          << "net " << n << " cycle " << cycle;
  }
  // Column RLE: a column never stores more runs than cycles, and the
  // quiet columns (high counter bits, constant nets) collapse.
  EXPECT_LE(trace.run_count(),
            static_cast<std::size_t>(trace.cycles) * trace.columns.size());
  EXPECT_GT(trace.run_count(), 0u);
}

TEST(ReferenceTrace, JsonRoundTrips) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  SequentialFaultSimulator fsim(rig.nl, u, {.max_cycles = kCycles});
  fsim.set_observed(rig.outputs);
  CounterEnv env(rig.en);
  const ReferenceTrace trace = fsim.record_reference_trace(env);

  const Json doc = reference_trace_to_json(trace);
  const ReferenceTrace back = reference_trace_from_json(doc);
  EXPECT_EQ(back.cycles, trace.cycles);
  EXPECT_EQ(back.num_nets, trace.num_nets);
  ASSERT_EQ(back.columns.size(), trace.columns.size());
  for (std::size_t o = 0; o < trace.columns.size(); ++o) {
    EXPECT_EQ(back.columns[o].cycle, trace.columns[o].cycle);
    EXPECT_EQ(back.columns[o].value, trace.columns[o].value);
  }
  // dump -> parse -> import still matches bit-for-bit.
  const ReferenceTrace reparsed =
      reference_trace_from_json(Json::parse(doc.dump(2)));
  for (int cycle = 0; cycle < trace.cycles; ++cycle)
    for (NetId n = 0; n < rig.nl.num_nets(); ++n)
      ASSERT_EQ(reparsed.net_bit(cycle, n), trace.net_bit(cycle, n));

  // Corrupt documents must throw, not crash.
  Json bad = reference_trace_to_json(trace);
  bad.set("columns", Json::array());
  EXPECT_THROW(reference_trace_from_json(bad), std::exception);
}

// ---------------------------------------------------------------------------
// CampaignEngine

TEST(Campaign, SingleAndMultiThreadResultsAreIdentical) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  ASSERT_GT(u.size(), 63u * 4) << "rig too small to shard meaningfully";
  const std::vector<CampaignTest> tests = make_rig_suite(rig, u);

  FaultList fl1(u);
  const CampaignResult r1 =
      CampaignEngine(u, {.threads = 1}).run(fl1, tests);
  FaultList fl4(u);
  const CampaignResult r4 =
      CampaignEngine(u, {.threads = 4}).run(fl4, tests);

  EXPECT_GT(r1.total_new_detections, 0u);
  EXPECT_EQ(r1, r4);  // bit-identical deterministic payload
  EXPECT_EQ(r1.detected, r4.detected);
  EXPECT_EQ(r1.stats.threads, 1);
  EXPECT_EQ(r4.stats.threads, 4);
  for (FaultId f = 0; f < u.size(); ++f)
    ASSERT_EQ(fl1.detect_state(f), fl4.detect_state(f)) << f;

  // Odd batch size exercises the tail-shard path.
  FaultList fl3(u);
  const CampaignResult r3 =
      CampaignEngine(u, {.threads = 3, .batch_size = 17}).run(fl3, tests);
  EXPECT_EQ(r3.detected, r1.detected);
  EXPECT_GT(r3.stats.batches, r1.stats.batches);
}

TEST(Campaign, FaultDroppingMatchesNoDropBaseline) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  const std::vector<CampaignTest> tests = make_rig_suite(rig, u);

  FaultList drop(u);
  const CampaignResult rd =
      CampaignEngine(u, {.threads = 2}).run(drop, tests);
  FaultList keep(u);
  const CampaignResult rk =
      CampaignEngine(u, {.threads = 2, .fault_dropping = false})
          .run(keep, tests);

  // Dropping changes only how much work is done, never the outcome.
  EXPECT_EQ(rd.detected, rk.detected);
  EXPECT_EQ(rd.total_new_detections, rk.total_new_detections);
  ASSERT_EQ(rd.tests.size(), rk.tests.size());
  for (std::size_t i = 0; i < rd.tests.size(); ++i)
    EXPECT_EQ(rd.tests[i].new_detections, rk.tests[i].new_detections) << i;
  // The second test's queue shrank by the first test's detections.
  EXPECT_EQ(rd.tests[1].faults_targeted,
            rk.tests[1].faults_targeted - rd.tests[0].new_detections);
  EXPECT_LT(rd.stats.faults_simulated, rk.stats.faults_simulated);
}

TEST(Campaign, MarksFaultListAndSkipsUntestable) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  FaultList fl(u);
  const FaultId skip = u.id_of({rig.cnt.flops[0], 0}, false);
  fl.mark_untestable(skip, UntestableKind::kTied, OnlineSource::kMemoryMap);
  const std::vector<CampaignTest> tests = make_rig_suite(rig, u);
  const CampaignResult r = CampaignEngine(u, {.threads = 2}).run(fl, tests);
  EXPECT_GT(r.total_new_detections, 0u);
  EXPECT_EQ(fl.detect_state(skip), DetectState::kUndetected);
  EXPECT_EQ(fl.count_detected(), r.total_new_detections);
  EXPECT_EQ(r.detected.count(), r.total_new_detections);
  // Idempotent: nothing new on a second run.
  const CampaignResult again =
      CampaignEngine(u, {.threads = 2}).run(fl, tests);
  EXPECT_EQ(again.total_new_detections, 0u);
}

TEST(Campaign, ReportsClassCoverage) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  FaultList fl(u);
  const std::vector<CampaignTest> tests = make_rig_suite(rig, u);
  const CampaignResult r = CampaignEngine(u, {.threads = 1}).run(fl, tests);

  std::size_t sa_total = 0;
  bool saw_sa0 = false, saw_sa1 = false, saw_module = false;
  for (const auto& cc : r.classes) {
    if (cc.name == "sa0") { saw_sa0 = true; sa_total += cc.total; }
    if (cc.name == "sa1") { saw_sa1 = true; sa_total += cc.total; }
    if (cc.name.starts_with("module:")) saw_module = true;
    EXPECT_LE(cc.detected, cc.total) << cc.name;
  }
  EXPECT_TRUE(saw_sa0);
  EXPECT_TRUE(saw_sa1);
  EXPECT_TRUE(saw_module);
  EXPECT_EQ(sa_total, u.size());
}

TEST(Campaign, ProgressCoversEveryTargetedFault) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  FaultList fl(u);
  const std::vector<CampaignTest> tests = make_rig_suite(rig, u);
  std::map<std::string, std::size_t> last_done, totals;
  const CampaignResult r =
      CampaignEngine(u, {.threads = 4})
          .run(fl, tests,
               [&](const std::string& name, std::size_t done,
                   std::size_t total) {
                 last_done[name] = std::max(last_done[name], done);
                 totals[name] = total;
               });
  ASSERT_EQ(last_done.size(), 2u);
  for (const auto& pt : r.tests) {
    EXPECT_EQ(last_done[pt.name], pt.faults_targeted);
    EXPECT_EQ(totals[pt.name], pt.faults_targeted);
  }
}

TEST(Campaign, ResultJsonRoundTrips) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  FaultList fl(u);
  const std::vector<CampaignTest> tests = make_rig_suite(rig, u);
  const CampaignResult r = CampaignEngine(u, {.threads = 2}).run(fl, tests);

  const std::string json = campaign_result_to_json_string(r);
  const CampaignResult back = campaign_result_from_json_string(json);
  EXPECT_EQ(back, r);  // deterministic payload
  EXPECT_EQ(back.detected, r.detected);
  // Runtime stats travel too (compared manually: operator== skips them).
  EXPECT_EQ(back.stats.threads, r.stats.threads);
  EXPECT_EQ(back.stats.batches, r.stats.batches);
  EXPECT_EQ(back.stats.faults_simulated, r.stats.faults_simulated);
  EXPECT_DOUBLE_EQ(back.stats.wall_seconds, r.stats.wall_seconds);
  // Compact and pretty dumps parse to the same document.
  EXPECT_EQ(campaign_result_from_json_string(
                campaign_result_to_json(r).dump(0)),
            r);
}

TEST(Campaign, TransitionModelLabelsClassesAndRoundTrips) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  FaultList fl(u);
  std::vector<CampaignTest> tests;
  tests.push_back(make_rig_test(rig, u, rig.outputs, "tdf_all_bits",
                                FaultModel::kTransition));
  const CampaignResult r =
      CampaignEngine(u, {.threads = 2, .fault_model = FaultModel::kTransition})
          .run(fl, tests);
  EXPECT_EQ(r.fault_model, FaultModel::kTransition);
  EXPECT_GT(r.total_new_detections, 0u);

  // Polarity classes carry transition labels; the stuck-at ones are gone.
  std::size_t tdf_total = 0;
  bool saw_str = false, saw_stf = false;
  for (const auto& cc : r.classes) {
    EXPECT_NE(cc.name, "sa0");
    EXPECT_NE(cc.name, "sa1");
    if (cc.name == "str") { saw_str = true; tdf_total += cc.total; }
    if (cc.name == "stf") { saw_stf = true; tdf_total += cc.total; }
  }
  EXPECT_TRUE(saw_str);
  EXPECT_TRUE(saw_stf);
  EXPECT_EQ(tdf_total, u.size());

  // The model travels through the JSON report and back.
  const CampaignResult back =
      campaign_result_from_json_string(campaign_result_to_json_string(r));
  EXPECT_EQ(back, r);
  EXPECT_EQ(back.fault_model, FaultModel::kTransition);

  // Unknown model strings are a malformed document, not a silent default.
  Json doc = campaign_result_to_json(r);
  doc.set("fault_model", "bogus");
  EXPECT_THROW(campaign_result_from_json(doc), JsonError);
}

TEST(Campaign, UntestableTransitionFaultsAreSkipped) {
  // A fault pruned by classify_transition_faults-style marking never
  // reaches a TDF batch: the engine's target selection is model-agnostic.
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  FaultList fl(u);
  const FaultId skip0 = u.id_of({rig.cnt.flops[1], 0}, false);
  const FaultId skip1 = u.id_of({rig.cnt.flops[1], 0}, true);
  fl.mark_untestable(skip0, UntestableKind::kTied, OnlineSource::kStructural);
  fl.mark_untestable(skip1, UntestableKind::kTied, OnlineSource::kStructural);
  std::vector<CampaignTest> tests;
  tests.push_back(make_rig_test(rig, u, rig.outputs, "tdf",
                                FaultModel::kTransition));
  const CampaignResult r =
      CampaignEngine(u, {.threads = 2, .fault_model = FaultModel::kTransition})
          .run(fl, tests);
  EXPECT_GT(r.total_new_detections, 0u);
  EXPECT_EQ(fl.detect_state(skip0), DetectState::kUndetected);
  EXPECT_EQ(fl.detect_state(skip1), DetectState::kUndetected);
  EXPECT_FALSE(r.detected.get(skip0));
  EXPECT_FALSE(r.detected.get(skip1));
}

TEST(Campaign, ShardTimingsCoverEveryShardAtEveryThreadCount) {
  // The report's timing layout: one strictly positive wall time per
  // shard, at every thread count. The stronger property — slot s holds
  // shard s's time, not the s-th completion (grade() writes
  // timings[shard], see campaign.cpp) — is not assertable from the
  // values without a load-sensitive duration probe, which is exactly the
  // kind of check this suite bans; this test pins the layout's shape so
  // a completion-order append that drops or double-writes slots fails.
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  const std::vector<CampaignTest> tests = make_rig_suite(rig, u);
  for (const int threads : {1, 4}) {
    FaultList fl(u);
    const CampaignResult r =
        CampaignEngine(u, {.threads = threads}).run(fl, tests);
    std::size_t shards = 0;
    for (const auto& pt : r.tests) shards += pt.batches;
    ASSERT_EQ(r.stats.shard_seconds.size(), shards) << threads;
    for (std::size_t s = 0; s < shards; ++s)
      EXPECT_GT(r.stats.shard_seconds[s], 0.0)
          << "threads " << threads << " shard " << s;
  }
}

/// Enables the global tracer + metrics for one scope and restores the
/// disabled-and-empty state on exit (pass or fail), so observability
/// tests can never leak state into the rest of the suite.
struct ScopedObservability {
  ScopedObservability() {
    obs::tracer().set_enabled(true);
    obs::metrics().set_enabled(true);
  }
  ~ScopedObservability() {
    obs::tracer().set_enabled(false);
    obs::tracer().clear();
    obs::metrics().set_enabled(false);
    obs::metrics().reset_values();
  }
};

TEST(Campaign, WallSecondsBoundsTheShardTimes) {
  // RuntimeStats.wall_seconds is a sum of per-test monotonic clock pairs
  // bracketing grade(); every shard window nests inside one of those
  // pairs, so with one thread the shard times are disjoint sub-intervals
  // and can never sum past the wall time. This is a structural nesting
  // invariant, not a duration claim — it holds at any machine load.
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  const std::vector<CampaignTest> tests = make_rig_suite(rig, u);
  FaultList fl(u);
  const CampaignResult r = CampaignEngine(u, {.threads = 1}).run(fl, tests);
  EXPECT_GT(r.stats.wall_seconds, 0.0);
  std::size_t shards = 0;
  for (const auto& pt : r.tests) shards += pt.batches;
  ASSERT_EQ(r.stats.shard_seconds.size(), shards);
  double sum = 0.0;
  for (double s : r.stats.shard_seconds) {
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  EXPECT_LE(sum, r.stats.wall_seconds + 1e-9);
}

TEST(Campaign, TracingOnLeavesResultsByteIdentical) {
  // The observability contract: telemetry is strictly side-band. The
  // same campaign with tracing + metrics enabled must produce the same
  // CampaignResult and the same deterministic JSON document (modulo the
  // stats section, which carries wall times) as a silent run.
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  const std::vector<CampaignTest> tests = make_rig_suite(rig, u);

  FaultList fl_off(u);
  const CampaignResult off =
      CampaignEngine(u, {.threads = 2}).run(fl_off, tests);
  const std::string off_json = campaign_result_to_json_string(off, 2, false);

  CampaignResult on;
  std::string on_json;
  {
    ScopedObservability guard;
    FaultList fl_on(u);
    on = CampaignEngine(u, {.threads = 2}).run(fl_on, tests);
    on_json = campaign_result_to_json_string(on, 2, false);
    // The run was actually observed, not silently skipped.
    EXPECT_GT(obs::tracer().event_count(), 0u);
    EXPECT_GT(obs::metrics().counter("kernel.evals").value(), 0u);
    EXPECT_GT(obs::metrics().counter("fsim.trace_cache_hits").value(), 0u);
  }
  EXPECT_EQ(on, off);
  EXPECT_EQ(on.detected, off.detected);
  EXPECT_EQ(on_json, off_json);
}

TEST(Campaign, ExceptionsCarryTestAndShardContext) {
  // A runner failure must name the work item that died, not just rethrow
  // the bare error: the caller sees test name + shard id (and, through a
  // pool, the participant index) prefixed onto the original message.
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  std::vector<FaultId> targets(100);
  std::iota(targets.begin(), targets.end(), 0u);
  const CampaignTest bad = make_function_test(
      "explodes", [](std::span<const FaultId> faults) -> std::uint64_t {
        for (FaultId f : faults)
          if (f == 70) throw std::runtime_error("boom");
        return 0;
      });
  for (const int threads : {1, 2}) {
    try {
      CampaignEngine(u, {.threads = threads}).grade(targets, bad);
      FAIL() << "runner exception swallowed at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      // Fault 70 lands in shard 1 of the fixed 63-lane plan.
      EXPECT_NE(msg.find("campaign test 'explodes'"), std::string::npos) << msg;
      EXPECT_NE(msg.find("shard 1"), std::string::npos) << msg;
      EXPECT_NE(msg.find("boom"), std::string::npos) << msg;
      if (threads > 1)
        EXPECT_NE(msg.find("worker pool participant"), std::string::npos)
            << msg;
    }
  }
}

TEST(Campaign, GradeEdgeCasesAcrossAllPolicies) {
  // Empty target list, a single-fault list, and targets == exactly one
  // full batch, under every scheduling policy: same detections, and the
  // one-batch shapes really plan one shard.
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  ASSERT_GE(u.size(), 63u);
  const CampaignTest test = make_rig_test(rig, u, rig.outputs, "all_bits");
  std::vector<FaultId> batch63(63);
  std::iota(batch63.begin(), batch63.end(), 0u);

  const std::vector<std::shared_ptr<const BatchScheduler>> policies = {
      nullptr, std::make_shared<const ConeScheduler>(u),
      std::make_shared<const AdaptiveScheduler>()};
  BitVec expect_single, expect_batch;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const CampaignEngine engine(u, {.threads = 2, .scheduler = policies[p]});

    EXPECT_EQ(engine.grade({}, test).size(), 0u) << p;

    std::vector<double> single_seconds;
    const BitVec single = engine.grade(std::span(batch63).first(1), test, {},
                                       &single_seconds);
    EXPECT_EQ(single_seconds.size(), 1u) << p;

    std::vector<double> batch_seconds;
    const BitVec full = engine.grade(batch63, test, {}, &batch_seconds);
    EXPECT_EQ(batch_seconds.size(), 1u) << p;  // 63 targets = one shard
    EXPECT_EQ(full.get(0), single.get(0)) << p;

    if (p == 0) {
      expect_single = single;
      expect_batch = full;
      EXPECT_GT(full.count(), 0u);
    } else {
      EXPECT_EQ(single, expect_single) << p;
      EXPECT_EQ(full, expect_batch) << p;
    }
  }
}

TEST(Campaign, TinyUniverseRunsIdenticallyUnderEveryPolicy) {
  // A universe far smaller than one batch: run() must behave across all
  // policies and thread counts (the degenerate end of the sharding
  // spectrum, where every plan collapses to a single shard per test).
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId en = nl.add_input("en");
  nl.add_output("o", w.and2(a, en, "y"));
  const FaultUniverse u(nl);
  ASSERT_LT(u.size(), 63u);
  std::vector<CampaignTest> tests;
  tests.push_back(make_function_test(
      "parity", [](std::span<const FaultId> faults) {
        std::uint64_t mask = 0;
        for (std::size_t i = 0; i < faults.size(); ++i)
          if (faults[i] % 2) mask |= 1ULL << i;
        return mask;
      }));

  CampaignResult first;
  bool have_first = false;
  for (const auto& policy :
       {std::shared_ptr<const BatchScheduler>{},
        std::shared_ptr<const BatchScheduler>{
            std::make_shared<const ConeScheduler>(u)},
        std::shared_ptr<const BatchScheduler>{
            std::make_shared<const AdaptiveScheduler>()}}) {
    for (const int threads : {1, 2}) {
      FaultList fl(u);
      const CampaignResult r =
          CampaignEngine(u, {.threads = threads, .scheduler = policy})
              .run(fl, tests);
      EXPECT_EQ(r.tests.at(0).batches, 1u);
      EXPECT_GT(r.total_new_detections, 0u);
      if (!have_first) {
        first = r;
        have_first = true;
      } else {
        EXPECT_EQ(r, first);
        EXPECT_EQ(r.detected, first.detected);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Worker protocol (campaign/executor.hpp)

TEST(WorkerProtocol, RequestRoundTripsAndValidates) {
  BatchPlan plan;
  plan.order = {3, 2, 1, 0};
  plan.batch_start = {0, 2, 4};
  const std::vector<FaultId> targets{10, 11, 12, 13};
  const std::vector<std::uint32_t> shards{1};
  CampaignTest test;
  test.name = "t";
  test.spec = Json::object();
  test.spec.set("marker", 42);
  const ShardWork work{plan,  targets,  targets, shards,
                       test,  FaultModel::kTransition, 99, {}};

  const Json doc = shard_request_to_json(work);
  const ShardRequest req = shard_request_from_json(doc);
  EXPECT_EQ(req.test, "t");
  EXPECT_EQ(req.fault_model, FaultModel::kTransition);
  EXPECT_EQ(req.spec.at("marker").as_int(), 42);
  EXPECT_EQ(req.plan.order, plan.order);
  EXPECT_EQ(req.plan.batch_start, plan.batch_start);
  EXPECT_EQ(req.targets, targets);
  EXPECT_EQ(req.shards, shards);
  // Gathered on import: planned[i] = targets[order[i]].
  EXPECT_EQ(req.planned, (std::vector<FaultId>{13, 12, 11, 10}));

  {  // protocol version mismatches are rejected, not guessed at
    Json bad = doc;
    bad.set("protocol", kWorkerProtocolVersion + 1);
    EXPECT_THROW(shard_request_from_json(bad), JsonError);
  }
  {  // shard ids outside the plan are rejected
    Json bad = doc;
    Json ids = Json::array();
    ids.push_back(std::size_t{7});
    bad.set("shards", std::move(ids));
    EXPECT_THROW(shard_request_from_json(bad), JsonError);
  }
  {  // a plan that does not cover the targets is rejected
    Json bad = doc;
    Json few = Json::array();
    few.push_back(std::size_t{10});
    bad.set("targets", std::move(few));
    EXPECT_THROW(shard_request_from_json(bad), JsonError);
  }
}

/// Grades "fault id is odd" and reports a fixed state fingerprint — just
/// enough workload to drive serve_worker through memory streams.
class ParityWorkload final : public WorkerWorkload {
 public:
  std::size_t universe_size() override { return 77; }
  LaneMask run_batch(const ShardRequest&,
                     std::span<const FaultId> faults) override {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (faults[i] % 2) mask |= 1ULL << i;
    return mask;
  }
  std::uint64_t state_fingerprint(const ShardRequest&) override {
    return 0xfeedface;
  }
};

std::vector<Json> run_serve_worker(const std::string& input, int expect_exit) {
  std::string in_buf = input;
  std::FILE* in = fmemopen(in_buf.data(), in_buf.size(), "r");
  char* out_buf = nullptr;
  std::size_t out_len = 0;
  std::FILE* out = open_memstream(&out_buf, &out_len);
  ParityWorkload workload;
  EXPECT_EQ(serve_worker(in, out, workload), expect_exit);
  std::fclose(in);
  std::fclose(out);
  std::vector<Json> lines;
  std::string text(out_buf, out_len);
  std::free(out_buf);
  for (std::size_t pos = 0; pos < text.size();) {
    const std::size_t end = text.find('\n', pos);
    lines.push_back(Json::parse(text.substr(pos, end - pos)));
    pos = end + 1;
  }
  return lines;
}

TEST(WorkerProtocol, ServeWorkerGradesRequestedShardsOnly) {
  BatchPlan plan = BatchPlan::fixed(10, 4);  // shards of 4/4/2
  std::vector<FaultId> targets(10);
  std::iota(targets.begin(), targets.end(), 100u);
  const std::vector<std::uint32_t> shards{2, 0};  // shard 1 is not ours
  CampaignTest test;
  test.name = "parity";
  test.spec = Json::object();
  const ShardWork work{plan, targets, targets, shards,
                       test, FaultModel::kStuckAt, 77, {}};

  const std::vector<Json> lines =
      run_serve_worker(shard_request_to_json(work).dump() + "\n", 0);
  ASSERT_EQ(lines.size(), 4u);  // hello, 2 shards, done
  EXPECT_EQ(lines[0].at("type").as_string(), "hello");
  EXPECT_EQ(lines[0].at("protocol").as_int(), kWorkerProtocolVersion);
  // Replies come in request order (2 then 0), slot-tagged by shard id.
  EXPECT_EQ(lines[1].at("type").as_string(), "shard");
  EXPECT_EQ(lines[1].at("shard").as_size(), 2u);
  // Shard 2 grades targets {108, 109}: odd ids detect -> lane 1 only.
  EXPECT_EQ(lane_mask_from_json(lines[1].at("mask")), LaneMask(0x2ull));
  EXPECT_EQ(lines[2].at("shard").as_size(), 0u);
  // Shard 0 grades {100..103}: odd lanes 1 and 3.
  EXPECT_EQ(lane_mask_from_json(lines[2].at("mask")), LaneMask(0xAull));
  EXPECT_EQ(lines[3].at("type").as_string(), "done");
  EXPECT_EQ(lines[3].at("universe").as_size(), 77u);
  EXPECT_EQ(word_from_hex(lines[3].at("state_fp").as_string()), 0xfeedfaceull);
}

TEST(WorkerProtocol, ServeWorkerAnswersMalformedRequestsWithError) {
  const std::vector<Json> lines = run_serve_worker("{\"type\":\"grade\"}\n", 1);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].at("type").as_string(), "hello");
  EXPECT_EQ(lines[1].at("type").as_string(), "error");
  EXPECT_FALSE(lines[1].at("message").as_string().empty());
}

// ---------------------------------------------------------------------------
// SubprocessExecutor

TEST(SubprocessExecutor, RejectsTestsWithoutASpec) {
  SubprocessExecutor exec({"/bin/true"}, 1);
  const BatchPlan plan = BatchPlan::fixed(2, 2);
  const std::vector<FaultId> targets{0, 1};
  const std::vector<std::uint32_t> shards{0};
  CampaignTest test;
  test.name = "local_only";  // spec left null
  const ShardWork work{plan, targets, targets, shards,
                       test, FaultModel::kStuckAt, 2, {}};
  try {
    exec.execute(work);
    FAIL() << "null-spec test must not reach a remote worker";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("local_only"), std::string::npos);
  }
}

TEST(SubprocessExecutor, KilledWorkerIsDetectedAndReported) {
  // A fake worker that greets correctly, then dies without answering its
  // shards. With no respawn budget and no in-process fallback (the test
  // has no make_runner) the fleet collapses, and the thrown error must
  // name the worker, its exit, and the test — a lost shard is never
  // silently dropped.
  SubprocessExecutor exec(
      {"/bin/sh", "-c",
       "printf '{\"type\":\"hello\",\"protocol\":2}\\n'; read -r line; exit 7"},
      FleetOptions{.workers = 1, .max_respawns = 0});
  const BatchPlan plan = BatchPlan::fixed(4, 2);
  const std::vector<FaultId> targets{0, 1, 2, 3};
  const std::vector<std::uint32_t> shards{0, 1};
  CampaignTest test;
  test.name = "sbst_prog";
  test.spec = Json::object();
  const ShardWork work{plan, targets, targets, shards,
                       test, FaultModel::kStuckAt, 4, {}};
  try {
    exec.execute(work);
    FAIL() << "a dead worker's shards must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("worker 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("died"), std::string::npos) << msg;
    EXPECT_NE(msg.find("exited with status 7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sbst_prog"), std::string::npos) << msg;
  }
}

TEST(SubprocessExecutor, CrashedWorkerStderrLandsInTheError) {
  // A worker that prints a diagnostic to stderr and then dies: the thrown
  // error must carry the worker's last stderr lines, so the operator sees
  // the child's own words (assert text, exception message, sanitizer
  // report) instead of just an exit status.
  SubprocessExecutor exec(
      {"/bin/sh", "-c",
       "printf '{\"type\":\"hello\",\"protocol\":2}\\n';"
       " echo 'scratch line' >&2;"
       " echo 'fatal: reference trace fingerprint torched' >&2;"
       " read -r line; exit 9"},
      FleetOptions{.workers = 1, .max_respawns = 0});
  const BatchPlan plan = BatchPlan::fixed(4, 2);
  const std::vector<FaultId> targets{0, 1, 2, 3};
  const std::vector<std::uint32_t> shards{0, 1};
  CampaignTest test;
  test.name = "sbst_prog";
  test.spec = Json::object();
  const ShardWork work{plan, targets, targets, shards,
                       test, FaultModel::kStuckAt, 4, {}};
  try {
    exec.execute(work);
    FAIL() << "a dead worker's shards must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("exited with status 9"), std::string::npos) << msg;
    EXPECT_NE(msg.find("worker stderr"), std::string::npos) << msg;
    EXPECT_NE(msg.find("reference trace fingerprint torched"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("scratch line"), std::string::npos) << msg;
  }
}

TEST(SubprocessExecutor, WorkerWithoutHelloFailsTheHandshake) {
  SubprocessExecutor exec({"/bin/true"},
                          FleetOptions{.workers = 1, .max_respawns = 0});
  const BatchPlan plan = BatchPlan::fixed(2, 2);
  const std::vector<FaultId> targets{0, 1};
  const std::vector<std::uint32_t> shards{0};
  CampaignTest test;
  test.name = "t";
  test.spec = Json::object();
  const ShardWork work{plan, targets, targets, shards,
                       test, FaultModel::kStuckAt, 2, {}};
  try {
    exec.execute(work);
    FAIL() << "helloless worker must fail the handshake";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("hello"), std::string::npos)
        << e.what();
  }
}

TEST(SubprocessExecutor, BitIdenticalToInProcessOnSbstWorkload) {
  // The acceptance check: coordinator + subprocess workers produce the
  // same detection BitVec and the same deterministic CampaignResult JSON
  // as the in-process pool on the SBST workload, for 1 and 2 workers
  // under the fixed and cone policies.
  if (::access("./olfui_cli", X_OK) != 0)
    GTEST_SKIP() << "./olfui_cli not in the working directory";
  const std::vector<std::string> worker_cmd{"./olfui_cli", "--worker"};

  auto soc = build_soc({});
  auto suite = build_sbst_suite(soc->config);
  suite.erase(suite.begin() + 2, suite.end());  // alu_arith + alu_logic
  const FaultUniverse u(soc->netlist);
  std::vector<CampaignTest> tests = build_sbst_campaign_tests(*soc, suite, u);
  ASSERT_FALSE(tests[0].spec.is_null());

  // A spread slice of the universe, wide enough for several shards.
  std::vector<FaultId> slice;
  for (FaultId f = 0; f < u.size() && slice.size() < 200; f += 301)
    slice.push_back(f);

  const auto exec1 = std::make_shared<SubprocessExecutor>(worker_cmd, 1);
  const auto exec2 = std::make_shared<SubprocessExecutor>(worker_cmd, 2);
  const std::vector<std::shared_ptr<const BatchScheduler>> policies = {
      nullptr, std::make_shared<const ConeScheduler>(u),
      std::make_shared<const AdaptiveScheduler>()};

  for (const auto& policy : policies) {
    // grade(): empty, single-fault, one-full-batch, and multi-shard
    // target lists (the executor-side edge cases).
    const CampaignEngine inproc(u, {.threads = 2, .scheduler = policy});
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{63}, slice.size()}) {
      const auto targets = std::span(slice).first(n);
      const BitVec expect = inproc.grade(targets, tests[0]);
      for (const auto& exec : {exec1, exec2}) {
        CampaignOptions o{.threads = 2, .scheduler = policy, .executor = exec};
        const BitVec got = CampaignEngine(u, o).grade(targets, tests[0]);
        EXPECT_EQ(got, expect)
            << "policy " << (policy ? policy->name() : "fixed") << " workers "
            << (exec == exec1 ? 1 : 2) << " n " << n;
      }
    }

    // run(): the merged result (and its deterministic JSON form) must be
    // byte-identical between executors.
    CampaignOptions base{.threads = 2, .scheduler = policy,
                         .target_limit = 200};
    FaultList fl_in(u);
    const CampaignResult r_in = CampaignEngine(u, base).run(fl_in, tests);
    CampaignOptions sub = base;
    sub.executor = exec2;
    FaultList fl_sub(u);
    const CampaignResult r_sub = CampaignEngine(u, sub).run(fl_sub, tests);
    EXPECT_GT(r_in.total_new_detections, 0u);
    EXPECT_EQ(r_in, r_sub);
    EXPECT_EQ(r_in.detected, r_sub.detected);
    EXPECT_EQ(campaign_result_to_json_string(r_in, 2, false),
              campaign_result_to_json_string(r_sub, 2, false));
    EXPECT_EQ(r_in.stats.executor, "inproc");
    EXPECT_EQ(r_sub.stats.executor, "subprocess");
    // Worker-reported shard timings land slot-indexed, one per batch.
    // Shape and parse sanity only — no duration claims in the unit suite
    // (wall-clock assertions live in bench_runtime).
    EXPECT_EQ(r_sub.stats.shard_seconds.size(), r_sub.stats.batches);
    for (double s : r_sub.stats.shard_seconds) EXPECT_GE(s, 0.0);
  }
}

TEST(SubprocessExecutor, TracedRunMergesWorkerLanesWithoutPerturbingPayload) {
  // The distributed half of the side-band contract: a traced 2-worker
  // subprocess grade returns the exact detection mask of an untraced one,
  // while the coordinator trace gains per-shard spans from both worker
  // processes on their own pid lanes (clock-shifted by the hello
  // handshake) and the merged counters include worker kernel activity.
  if (::access("./olfui_cli", X_OK) != 0)
    GTEST_SKIP() << "./olfui_cli not in the working directory";

  auto soc = build_soc({});
  auto suite = build_sbst_suite(soc->config);
  suite.erase(suite.begin() + 1, suite.end());  // alu_arith only
  const FaultUniverse u(soc->netlist);
  std::vector<CampaignTest> tests = build_sbst_campaign_tests(*soc, suite, u);
  std::vector<FaultId> slice;
  for (FaultId f = 0; f < u.size() && slice.size() < 200; f += 301)
    slice.push_back(f);

  const auto exec =
      std::make_shared<SubprocessExecutor>(
          std::vector<std::string>{"./olfui_cli", "--worker"}, 2);
  const CampaignEngine engine(u, {.threads = 2, .executor = exec});
  const BitVec off = engine.grade(slice, tests[0]);

  BitVec on;
  Json trace;
  std::uint64_t worker_evals = 0;
  {
    ScopedObservability guard;
    on = engine.grade(slice, tests[0]);
    trace = obs::tracer().to_json();
    worker_evals = obs::metrics().counter("kernel.evals").value();
  }
  EXPECT_EQ(on, off);

  // 200 targets = 4 shards, striped shard i -> worker i mod 2: both
  // workers grade, so the trace shows exactly three pid lanes —
  // coordinator + two workers — and worker-side shard spans.
  std::set<int> pids;
  bool worker_shard_span = false;
  const Json& events = trace.at("traceEvents");
  ASSERT_GT(events.size(), 0u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    if (e.at("ph").as_string() != "X") continue;
    pids.insert(e.at("pid").as_int());
    if (e.at("name").as_string() == "shard" &&
        e.at("pid").as_int() != ::getpid())
      worker_shard_span = true;
    EXPECT_GE(e.at("ts").as_number(), 0.0) << i;
    EXPECT_GE(e.at("dur").as_number(), 0.0) << i;
  }
  EXPECT_EQ(pids.size(), 3u);
  EXPECT_EQ(pids.count(::getpid()), 1u);
  EXPECT_TRUE(worker_shard_span);
  // The coordinator graded nothing itself: every kernel eval it reports
  // was merged out of worker telemetry.
  EXPECT_GT(worker_evals, 0u);
}

TEST(Campaign, GradeMatchesLegacySequentialCampaign) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);

  // Legacy path: SequentialFaultSimulator::run_campaign, one thread.
  FaultList legacy(u);
  SequentialFaultSimulator fsim(rig.nl, u, {.max_cycles = kCycles});
  fsim.set_observed(rig.outputs);
  CounterEnv env(rig.en);
  const std::size_t legacy_found = fsim.run_campaign(legacy, env);

  // Orchestrated path, multithreaded.
  FaultList fl(u);
  std::vector<CampaignTest> tests;
  tests.push_back(make_rig_test(rig, u, rig.outputs, "all_bits"));
  const CampaignResult r = CampaignEngine(u, {.threads = 4}).run(fl, tests);

  EXPECT_EQ(r.total_new_detections, legacy_found);
  for (FaultId f = 0; f < u.size(); ++f)
    ASSERT_EQ(fl.detect_state(f), legacy.detect_state(f)) << f;
}

}  // namespace
}  // namespace olfui
