#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "campaign/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace olfui::obs {
namespace {

// ---------------------------------------------------------------------------
// Tracer
//
// These tests use standalone Tracer/MetricsRegistry instances, not the
// process-wide singletons, so they cannot pollute (or be polluted by) the
// campaign tests that exercise the global instrumentation path.

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer t;
  ASSERT_FALSE(t.enabled());
  {
    Tracer::Span s = t.span("work", "test");
    s.arg("k", Json(1));
  }
  t.complete("manual", "test", 0);
  EXPECT_EQ(t.event_count(), 0u);
  const Json doc = t.to_json();
  ASSERT_TRUE(doc.contains("traceEvents"));
  EXPECT_EQ(doc.at("traceEvents").size(), 0u);
}

TEST(Tracer, SpansBecomeWellFormedCompleteEvents) {
  Tracer t;
  t.set_enabled(true);
  {
    Tracer::Span s = t.span("outer", "test");
    s.arg("shard", Json(std::size_t{7}));
    Tracer::Span inner = t.span("inner", "test");
    inner.end();
    inner.end();  // idempotent
  }
  ASSERT_EQ(t.event_count(), 2u);

  const Json doc = t.to_json();
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first; every X event carries the full field set.
  EXPECT_EQ(events.at(0).at("name").as_string(), "inner");
  EXPECT_EQ(events.at(1).at("name").as_string(), "outer");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    EXPECT_EQ(e.at("ph").as_string(), "X") << i;
    EXPECT_EQ(e.at("cat").as_string(), "test") << i;
    EXPECT_GE(e.at("ts").as_number(), 0.0) << i;
    EXPECT_GE(e.at("dur").as_number(), 0.0) << i;
    // pid 0 is replaced by the exporting process's id.
    EXPECT_EQ(e.at("pid").as_int(), ::getpid()) << i;
    EXPECT_TRUE(e.contains("tid")) << i;
  }
  // The outer span's arg survives as an args member.
  EXPECT_EQ(events.at(1).at("args").at("shard").as_size(), 7u);
  // Spans nest on the timeline: inner starts at or after outer.
  EXPECT_GE(events.at(0).at("ts").as_number(), events.at(1).at("ts").as_number());
}

TEST(Tracer, ThreadsGetStableDistinctLanes) {
  Tracer t;
  t.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 8;
  std::vector<std::thread> pool;
  for (int i = 0; i < kThreads; ++i)
    pool.emplace_back([&t] {
      for (int s = 0; s < kSpans; ++s) t.span("tick", "test");
    });
  for (auto& th : pool) th.join();
  ASSERT_EQ(t.event_count(), std::size_t{kThreads} * kSpans);

  // Each thread's events share one lane, and lanes don't collide: the
  // per-(tid) event counts must come out exactly kSpans each.
  std::map<std::int64_t, int> per_lane;
  const Json events = t.to_json().at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i)
    ++per_lane[static_cast<std::int64_t>(events.at(i).at("tid").as_number())];
  ASSERT_EQ(per_lane.size(), std::size_t{kThreads});
  for (const auto& [lane, n] : per_lane) EXPECT_EQ(n, kSpans) << lane;
}

TEST(Tracer, MergeForeignShiftsClockAndStampsPid) {
  Tracer t;
  t.set_enabled(true);
  std::vector<TraceEvent> foreign;
  foreign.push_back({"w", "worker", 1000, 50, 0, 3, {}});
  foreign.push_back({"early", "worker", 10, 5, 0, 0, {}});
  t.set_process_label(4242, "worker 0");
  t.merge_foreign(std::move(foreign), 4242, 500);

  const Json events = t.to_json().at("traceEvents");
  // Label first (ph:"M" process_name), then the two shifted events.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.at(0).at("ph").as_string(), "M");
  EXPECT_EQ(events.at(0).at("name").as_string(), "process_name");
  EXPECT_EQ(events.at(0).at("pid").as_int(), 4242);
  EXPECT_EQ(events.at(0).at("args").at("name").as_string(), "worker 0");
  EXPECT_EQ(events.at(1).at("pid").as_int(), 4242);
  EXPECT_EQ(events.at(1).at("ts").as_number(), 1500.0);
  // A negative offset can never push a timestamp before the epoch.
  Tracer t2;
  t2.set_enabled(true);
  t2.merge_foreign({{"w", "worker", 10, 5, 0, 0, {}}}, 7, -100);
  EXPECT_EQ(t2.to_json().at("traceEvents").at(0).at("ts").as_number(), 0.0);
}

TEST(Tracer, WireRoundTripPreservesEvents) {
  std::vector<TraceEvent> events;
  events.push_back({"shard", "worker", 123, 45, 0, 2, {{"shard", Json(std::size_t{9})}}});
  events.push_back({"rebuild_state", "worker", 7, 1, 0, 0, {}});
  const Json wire = trace_events_to_json(events);
  const std::vector<TraceEvent> back =
      trace_events_from_json(Json::parse(wire.dump()));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "shard");
  EXPECT_EQ(back[0].cat, "worker");
  EXPECT_EQ(back[0].ts_us, 123);
  EXPECT_EQ(back[0].dur_us, 45);
  EXPECT_EQ(back[0].tid, 2);
  ASSERT_EQ(back[0].args.size(), 1u);
  EXPECT_EQ(back[0].args[0].first, "shard");
  EXPECT_EQ(back[0].args[0].second.as_size(), 9u);
  EXPECT_EQ(back[1].name, "rebuild_state");
}

TEST(Tracer, DrainMovesEventsButKeepsLabels) {
  Tracer t;
  t.set_enabled(true);
  t.set_process_label(0, "coordinator");
  t.span("a", "test");
  const std::vector<TraceEvent> drained = t.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].name, "a");
  EXPECT_EQ(t.event_count(), 0u);
  // The label still exports after the drain (workers drain per request).
  const Json events = t.to_json().at("traceEvents");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.at(0).at("name").as_string(), "process_name");
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(Metrics, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 20000;
  std::vector<std::thread> pool;
  for (int i = 0; i < kThreads; ++i)
    pool.emplace_back([&reg, i] {
      // Half the threads cache the reference (the hot-loop idiom), half
      // re-look it up each time (the casual idiom): totals must be exact
      // either way.
      if (i % 2 == 0) {
        Counter& c = reg.counter("test.hits");
        Histogram& h = reg.histogram("test.lat", {1.0, 10.0});
        for (std::uint64_t n = 0; n < kAdds; ++n) {
          c.add();
          h.observe(static_cast<double>(n % 20));
        }
      } else {
        for (std::uint64_t n = 0; n < kAdds; ++n) {
          reg.counter("test.hits").add();
          reg.histogram("test.lat", {1.0, 10.0}).observe(
              static_cast<double>(n % 20));
        }
      }
    });
  for (auto& th : pool) th.join();

  EXPECT_EQ(reg.counter("test.hits").value(), kThreads * kAdds);
  Histogram& h = reg.histogram("test.lat", {1.0, 10.0});
  EXPECT_EQ(h.count(), kThreads * kAdds);
  // Per thread, n%20 sums to 190 per 20 observations.
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * (kAdds / 20.0) * 190.0);
  // n%20 in [0,1] -> bucket 0 (2 of 20), (1,10] -> bucket 1 (9 of 20),
  // rest overflow.
  EXPECT_EQ(h.bucket_count(0), kThreads * kAdds * 2 / 20);
  EXPECT_EQ(h.bucket_count(1), kThreads * kAdds * 9 / 20);
  EXPECT_EQ(h.bucket_count(2), kThreads * kAdds * 9 / 20);
}

TEST(Metrics, ExportIsSortedAndDeterministic) {
  MetricsRegistry reg;
  // Register deliberately out of name order.
  reg.counter("z.last").add(3);
  reg.counter("a.first").add(1);
  reg.gauge("m.depth").set(5);
  reg.gauge("m.depth").set(2);
  reg.histogram("h.lat", {1.0}).observe(0.5);

  const Json doc = reg.to_json();
  const Json& counters = doc.at("counters");
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters.key(0), "a.first");
  EXPECT_EQ(counters.key(1), "z.last");
  EXPECT_EQ(counters.value(1).as_size(), 3u);
  const Json& g = doc.at("gauges").at("m.depth");
  EXPECT_EQ(g.at("value").as_int(), 2);
  EXPECT_EQ(g.at("high_water").as_int(), 5);
  const Json& h = doc.at("histograms").at("h.lat");
  EXPECT_EQ(h.at("count").as_size(), 1u);
  EXPECT_EQ(h.at("buckets").at(0).as_size(), 1u);
  EXPECT_EQ(h.at("buckets").at(1).as_size(), 0u);
  // Same registrations, same values -> byte-identical documents.
  EXPECT_EQ(reg.to_json().dump(2), doc.dump(2));
}

TEST(Metrics, MergeCountersAddsWorkerDeltas) {
  MetricsRegistry reg;
  reg.counter("kernel.evals").add(10);
  MetricsRegistry worker;
  worker.counter("kernel.evals").add(5);
  worker.counter("fsim.trace_cache_hits").add(2);
  reg.merge_counters(worker.counters_to_json());
  EXPECT_EQ(reg.counter("kernel.evals").value(), 15u);
  EXPECT_EQ(reg.counter("fsim.trace_cache_hits").value(), 2u);
}

TEST(Metrics, ResetValuesKeepsRegistrationsValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.n");
  c.add(9);
  Gauge& g = reg.gauge("test.g");
  g.set(4);
  Histogram& h = reg.histogram("test.h", {1.0});
  h.observe(0.5);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.high_water(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  // The instruments survive: the cached references keep working.
  c.add(1);
  EXPECT_EQ(reg.counter("test.n").value(), 1u);
}

}  // namespace
}  // namespace olfui::obs
