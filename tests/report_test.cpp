#include <gtest/gtest.h>

#include "campaign/executor.hpp"
#include "campaign/report.hpp"
#include "campaign/scheduler.hpp"
#include "core/analyzer.hpp"
#include "fault/report.hpp"
#include "netlist/wordops.hpp"

namespace olfui {
namespace {

struct SmallRig {
  Netlist nl{"t"};
  std::unique_ptr<FaultUniverse> universe;
  std::unique_ptr<FaultList> fl;

  SmallRig() {
    WordOps w(nl, "alu");
    const NetId a = nl.add_input("a");
    const NetId en = nl.add_input("en");
    const NetId y = w.and2(a, en, "y");
    nl.add_output("o", y);
    universe = std::make_unique<FaultUniverse>(nl);
    fl = std::make_unique<FaultList>(*universe);
    fl->set_detected(0);
    fl->mark_untestable(3, UntestableKind::kTied, OnlineSource::kScan);
  }
};

TEST(CsvExport, HasHeaderAndOneRowPerFault) {
  SmallRig rig;
  const std::string csv = to_csv(*rig.fl);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, rig.universe->size() + 1);
  EXPECT_EQ(csv.substr(0, 8), "fault_id");
  EXPECT_NE(csv.find(",tied,scan"), std::string::npos);
}

TEST(CsvExport, UntestableOnlyFiltersRows) {
  SmallRig rig;
  const std::string csv = to_csv(*rig.fl, /*untestable_only=*/true);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 2u);  // header + the single untestable fault
}

TEST(JsonSummary, ContainsCountsAndCoverage) {
  SmallRig rig;
  const std::string json = to_json_summary(*rig.fl);
  EXPECT_NE(json.find("\"universe\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"detected\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"untestable\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"scan\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tied\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"raw_coverage\""), std::string::npos);
}

TEST(ModuleBreakdown, GroupsByHierarchyPrefix) {
  SmallRig rig;
  const auto rows = module_breakdown(*rig.fl);
  ASSERT_FALSE(rows.empty());
  bool found_alu = false;
  std::size_t total = 0;
  for (const auto& row : rows) {
    total += row.faults;
    if (row.module.rfind("alu", 0) == 0) found_alu = true;
  }
  EXPECT_TRUE(found_alu);
  EXPECT_EQ(total, rig.universe->size());
}

TEST(ModuleBreakdown, SortedByUntestableDescending) {
  auto soc = build_soc({});
  const FaultUniverse u(soc->netlist);
  FaultList fl(u);
  OnlineUntestabilityAnalyzer az(*soc, u);
  az.run(fl);
  const auto rows = module_breakdown(fl);
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_GE(rows[i - 1].untestable, rows[i].untestable);
  // The scan wrapper and debug unit must rank near the top.
  ASSERT_GE(rows.size(), 3u);
  bool dft_on_top = false;
  for (std::size_t i = 0; i < 3; ++i)
    if (rows[i].module.rfind("scan", 0) == 0 || rows[i].module.rfind("dbg", 0) == 0)
      dft_on_top = true;
  EXPECT_TRUE(dft_on_top);
}

TEST(ModuleBreakdown, TableIsAligned) {
  SmallRig rig;
  const std::string table = module_breakdown_table(*rig.fl);
  EXPECT_NE(table.find("module"), std::string::npos);
  EXPECT_NE(table.find("untestable"), std::string::npos);
}

TEST(BatchPlanJson, RoundTripsEveryPolicyShape) {
  // A permuted, ragged plan (the cone/adaptive shape): order reversed,
  // batches of 3/1/3.
  BatchPlan plan;
  plan.order = {6, 5, 4, 3, 2, 1, 0};
  plan.batch_start = {0, 3, 4, 7};
  plan.validate(7, 63);

  const Json doc = batch_plan_to_json(plan, "cone");
  EXPECT_EQ(doc.at("policy").as_string(), "cone");
  const BatchPlan back = batch_plan_from_json(doc);
  EXPECT_EQ(back.order, plan.order);
  EXPECT_EQ(back.batch_start, plan.batch_start);

  // The identity plan (fixed policy) and dump -> parse -> rebuild.
  const BatchPlan fixed = BatchPlan::fixed(130, 63);
  const BatchPlan fixed_back =
      batch_plan_from_json(Json::parse(batch_plan_to_json(fixed, "fixed").dump()));
  EXPECT_EQ(fixed_back.order, fixed.order);
  EXPECT_EQ(fixed_back.batch_start, fixed.batch_start);

  // The empty plan round-trips too (grade() never sends one, but the
  // wire format must not choke on it).
  BatchPlan empty;
  empty.batch_start = {0};
  EXPECT_EQ(batch_plan_from_json(batch_plan_to_json(empty, "fixed")).batches(),
            0u);
}

TEST(BatchPlanJson, RejectsMalformedDocuments) {
  const BatchPlan plan = BatchPlan::fixed(7, 3);
  const Json good = batch_plan_to_json(plan, "fixed");

  {  // a repeated order index is not a permutation
    Json bad = good;
    Json order = Json::array();
    for (std::size_t i = 0; i < 7; ++i) order.push_back(std::size_t{0});
    bad.set("order", std::move(order));
    EXPECT_THROW(batch_plan_from_json(bad), JsonError);
  }
  {  // batch sizes that overrun the target count
    Json bad = good;
    Json sizes = Json::array();
    sizes.push_back(std::size_t{100});
    bad.set("batch_sizes", std::move(sizes));
    bad.set("batches", std::size_t{1});
    EXPECT_THROW(batch_plan_from_json(bad), JsonError);
  }
  {  // order length disagreeing with the declared target count
    Json bad = good;
    bad.set("targets", std::size_t{3});
    EXPECT_THROW(batch_plan_from_json(bad), JsonError);
  }
  {  // batches field disagreeing with batch_sizes
    Json bad = good;
    bad.set("batches", std::size_t{1});
    EXPECT_THROW(batch_plan_from_json(bad), JsonError);
  }
  // Missing keys are malformed, not defaulted.
  EXPECT_THROW(batch_plan_from_json(Json::object()), JsonError);
}

TEST(SeqFsimOptionsJson, RoundTripsAndRejectsBadBudgets) {
  SeqFsimOptions opts;
  opts.max_cycles = 1234;
  opts.early_exit = false;
  opts.event_driven = false;
  const SeqFsimOptions back =
      seq_fsim_options_from_json(seq_fsim_options_to_json(opts));
  EXPECT_EQ(back.max_cycles, 1234);
  EXPECT_FALSE(back.early_exit);
  EXPECT_FALSE(back.event_driven);

  Json bad = seq_fsim_options_to_json(opts);
  bad.set("max_cycles", 0);
  EXPECT_THROW(seq_fsim_options_from_json(bad), JsonError);
  EXPECT_THROW(seq_fsim_options_from_json(Json::object()), JsonError);
}

TEST(SeqFsimOptionsJson, ClockingModeRoundTripsNonDefaultOnly) {
  // Full-latch serializes explicitly; the incremental default stays off
  // the wire, so documents from older coordinators parse unchanged.
  SeqFsimOptions opts;
  opts.max_cycles = 10;
  opts.incremental_clocking = false;
  const Json doc = seq_fsim_options_to_json(opts);
  EXPECT_EQ(doc.at("clocking").as_string(), "full");
  EXPECT_FALSE(seq_fsim_options_from_json(doc).incremental_clocking);

  opts.incremental_clocking = true;
  const Json plain = seq_fsim_options_to_json(opts);
  EXPECT_FALSE(plain.contains("clocking"));
  EXPECT_TRUE(seq_fsim_options_from_json(plain).incremental_clocking);

  Json bad = seq_fsim_options_to_json(opts);
  bad.set("clocking", "sometimes");
  EXPECT_THROW(seq_fsim_options_from_json(bad), JsonError);
}

TEST(LaneMaskJson, RoundTripsArrayAndLegacyString) {
  LaneMask mask;
  mask.set_word(0, 0x0123456789ABCDEFull);
  mask.set_word(1, 0xFEDCBA9876543210ull);
  mask.set_word(2, 0x00000000DEADBEEFull);
  mask.set_word(3, 0x8000000000000001ull);
  // Dump -> parse -> decode, the full wire path.
  const Json doc = Json::parse(lane_mask_to_json(mask).dump());
  EXPECT_EQ(lane_mask_from_json(doc), mask);
  // The wire form is a fixed-order array of kWords 16-digit hex words,
  // least-significant word first.
  ASSERT_EQ(doc.size(), static_cast<std::size_t>(LaneMask::kWords));
  for (int k = 0; k < LaneMask::kWords; ++k)
    EXPECT_EQ(doc.at(static_cast<std::size_t>(k)).as_string().size(), 16u);
  EXPECT_EQ(doc.at(std::size_t{0}).as_string(), "0123456789abcdef");

  // The legacy lone-string form (a pre-width 63-fault shard) still
  // decodes as the low word.
  EXPECT_EQ(lane_mask_from_json(Json::parse("\"000000000000000a\"")),
            LaneMask(0xAull));
}

TEST(LaneMaskJson, RejectsMalformedWordsWithSourceOffsets) {
  // Wrong array length: a 3-word mask is a protocol error, not a short
  // read to zero-fill.
  EXPECT_THROW(lane_mask_from_json(Json::parse(
                   "[\"0000000000000000\", \"0000000000000000\", "
                   "\"0000000000000000\"]")),
               JsonError);
  {  // a 15-digit word
    const std::string text =
        "[\"0000000000000001\", \"000000000000002\", "
        "\"0000000000000000\", \"0000000000000000\"]";
    try {
      lane_mask_from_json(Json::parse(text));
      FAIL() << "15-digit word accepted";
    } catch (const JsonError& e) {
      EXPECT_GT(e.offset(), 0u);
      EXPECT_LT(e.offset(), text.size());
    }
  }
  {  // a non-hex digit: the offset points at the offending character
    const std::string text =
        "[\"0000000000000001\", \"00000000000000g0\", "
        "\"0000000000000000\", \"0000000000000000\"]";
    const std::size_t gpos = text.find('g');
    try {
      lane_mask_from_json(Json::parse(text));
      FAIL() << "non-hex digit accepted";
    } catch (const JsonError& e) {
      EXPECT_GE(e.offset() + 1, gpos);
      EXPECT_LE(e.offset(), gpos + 1);
    }
  }
  // Legacy string form gets the same digit-count strictness.
  EXPECT_THROW(lane_mask_from_json(Json::parse("\"abc\"")), JsonError);
}

TEST(BatchPlanJson, MaxBatchFollowsNegotiatedWidth) {
  // A 100-fault batch is over the 64-lane limit (63) but fits 128 lanes
  // (127): the same document parses or is refused depending on the
  // max_batch the caller negotiated.
  const Json doc = batch_plan_to_json(BatchPlan::fixed(200, 100), "fixed");
  const BatchPlan wide = batch_plan_from_json(doc, /*max_batch=*/127);
  EXPECT_EQ(wide.batches(), 2u);
  EXPECT_THROW(batch_plan_from_json(doc), JsonError);  // default: 63
}

/// Minimal well-formed grade request document for the guard tests.
Json make_grade_doc(std::size_t targets, std::size_t batch) {
  Json doc = Json::object();
  doc.set("type", "grade");
  doc.set("protocol", kWorkerProtocolVersion);
  doc.set("test", "t");
  doc.set("fault_model", std::string(to_string(FaultModel::kStuckAt)));
  doc.set("spec", Json::object());
  doc.set("plan", batch_plan_to_json(BatchPlan::fixed(targets, batch), "fixed"));
  Json tg = Json::array();
  for (std::size_t i = 0; i < targets; ++i) tg.push_back(i);
  doc.set("targets", std::move(tg));
  Json sh = Json::array();
  sh.push_back(std::size_t{0});
  doc.set("shards", std::move(sh));
  return doc;
}

TEST(ShardRequestJson, LanesGateThePlanWidth) {
  // Absent "lanes" means the pre-width protocol: 64 lanes, 63-fault cap.
  EXPECT_EQ(shard_request_from_json(make_grade_doc(60, 60)).lanes, 64);
  EXPECT_THROW(shard_request_from_json(make_grade_doc(100, 100)), JsonError);

  if (lane_width_supported(128)) {
    Json doc = make_grade_doc(100, 100);
    doc.set("lanes", 128);
    const ShardRequest req = shard_request_from_json(doc);
    EXPECT_EQ(req.lanes, 128);
    EXPECT_EQ(req.plan.batches(), 1u);
    // ... but 128 lanes still refuse a batch over 127 faults.
    Json over = make_grade_doc(140, 140);
    over.set("lanes", 128);
    EXPECT_THROW(shard_request_from_json(over), JsonError);
  }

  // A width outside {64, 128, 256} is a protocol error.
  Json odd = make_grade_doc(10, 10);
  odd.set("lanes", 96);
  EXPECT_THROW(shard_request_from_json(odd), JsonError);

  // A width this build does not instantiate is refused at parse time,
  // mirroring the coordinator's max_lanes check at hello.
  if (!lane_width_supported(256)) {
    Json wide = make_grade_doc(10, 10);
    wide.set("lanes", 256);
    EXPECT_THROW(shard_request_from_json(wide), JsonError);
  }
}

TEST(SeqFsimOptionsJson, LanesRoundTripAndValidation) {
  SeqFsimOptions opts;
  opts.max_cycles = 99;
  opts.lanes = 128;
  const Json doc = seq_fsim_options_to_json(opts);
  EXPECT_EQ(doc.at("lanes").as_int(), 128);
  EXPECT_EQ(seq_fsim_options_from_json(doc).lanes, 128);

  // 64 is the wire default and stays off the wire entirely.
  opts.lanes = 64;
  const Json plain = seq_fsim_options_to_json(opts);
  EXPECT_FALSE(plain.contains("lanes"));
  EXPECT_EQ(seq_fsim_options_from_json(plain).lanes, 64);

  Json bad = seq_fsim_options_to_json(opts);
  bad.set("lanes", 96);
  EXPECT_THROW(seq_fsim_options_from_json(bad), JsonError);
}

TEST(TransitionModel, StrictlyMorePruningThanStuckAt) {
  // The extension result: everything stuck-at-untestable stays untestable
  // for transitions, and constant-value sites add their second polarity.
  auto soc = build_soc({});
  const FaultUniverse u(soc->netlist);
  OnlineUntestabilityAnalyzer az(*soc, u);
  FaultList sa(u), tdf(u);
  const AnalysisReport sa_rep = az.run(sa);
  AnalyzerOptions topts;
  topts.fault_model = FaultModel::kTransition;
  const AnalysisReport tdf_rep = az.run(tdf, topts);
  EXPECT_GT(tdf_rep.total_online() + tdf_rep.structural_baseline,
            sa_rep.total_online() + sa_rep.structural_baseline);
  for (FaultId f = 0; f < u.size(); ++f) {
    if (sa.untestable_kind(f) == UntestableKind::kTied) {
      EXPECT_NE(tdf.untestable_kind(f), UntestableKind::kNone)
          << u.fault_name(f);
    }
  }
}

TEST(TransitionModel, ConstantSiteLosesBothTransitions) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId en = nl.add_input("en");
  const NetId y = w.and2(a, en, "y");
  nl.add_output("o", y);
  const FaultUniverse u(nl);
  const StructuralAnalyzer sta(nl, u);
  MissionConfig cfg;
  cfg.tie(en, true);  // en constant 1: non-controlling, y follows a
  FaultList fl(u);
  sta.classify_transition_faults(sta.analyze(cfg), fl, OnlineSource::kScan);
  const CellId g = nl.net(y).driver;
  // Both transition faults on the tied side input die; the data side keeps
  // both (it can rise and fall, and propagates).
  EXPECT_NE(fl.untestable_kind(u.id_of({g, 2}, false)), UntestableKind::kNone);
  EXPECT_NE(fl.untestable_kind(u.id_of({g, 2}, true)), UntestableKind::kNone);
  EXPECT_EQ(fl.untestable_kind(u.id_of({g, 1}, false)), UntestableKind::kNone);
  EXPECT_EQ(fl.untestable_kind(u.id_of({g, 1}, true)), UntestableKind::kNone);
}

}  // namespace
}  // namespace olfui
