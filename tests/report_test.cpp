#include <gtest/gtest.h>

#include "campaign/report.hpp"
#include "campaign/scheduler.hpp"
#include "core/analyzer.hpp"
#include "fault/report.hpp"
#include "netlist/wordops.hpp"

namespace olfui {
namespace {

struct SmallRig {
  Netlist nl{"t"};
  std::unique_ptr<FaultUniverse> universe;
  std::unique_ptr<FaultList> fl;

  SmallRig() {
    WordOps w(nl, "alu");
    const NetId a = nl.add_input("a");
    const NetId en = nl.add_input("en");
    const NetId y = w.and2(a, en, "y");
    nl.add_output("o", y);
    universe = std::make_unique<FaultUniverse>(nl);
    fl = std::make_unique<FaultList>(*universe);
    fl->set_detected(0);
    fl->mark_untestable(3, UntestableKind::kTied, OnlineSource::kScan);
  }
};

TEST(CsvExport, HasHeaderAndOneRowPerFault) {
  SmallRig rig;
  const std::string csv = to_csv(*rig.fl);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, rig.universe->size() + 1);
  EXPECT_EQ(csv.substr(0, 8), "fault_id");
  EXPECT_NE(csv.find(",tied,scan"), std::string::npos);
}

TEST(CsvExport, UntestableOnlyFiltersRows) {
  SmallRig rig;
  const std::string csv = to_csv(*rig.fl, /*untestable_only=*/true);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 2u);  // header + the single untestable fault
}

TEST(JsonSummary, ContainsCountsAndCoverage) {
  SmallRig rig;
  const std::string json = to_json_summary(*rig.fl);
  EXPECT_NE(json.find("\"universe\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"detected\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"untestable\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"scan\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tied\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"raw_coverage\""), std::string::npos);
}

TEST(ModuleBreakdown, GroupsByHierarchyPrefix) {
  SmallRig rig;
  const auto rows = module_breakdown(*rig.fl);
  ASSERT_FALSE(rows.empty());
  bool found_alu = false;
  std::size_t total = 0;
  for (const auto& row : rows) {
    total += row.faults;
    if (row.module.rfind("alu", 0) == 0) found_alu = true;
  }
  EXPECT_TRUE(found_alu);
  EXPECT_EQ(total, rig.universe->size());
}

TEST(ModuleBreakdown, SortedByUntestableDescending) {
  auto soc = build_soc({});
  const FaultUniverse u(soc->netlist);
  FaultList fl(u);
  OnlineUntestabilityAnalyzer az(*soc, u);
  az.run(fl);
  const auto rows = module_breakdown(fl);
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_GE(rows[i - 1].untestable, rows[i].untestable);
  // The scan wrapper and debug unit must rank near the top.
  ASSERT_GE(rows.size(), 3u);
  bool dft_on_top = false;
  for (std::size_t i = 0; i < 3; ++i)
    if (rows[i].module.rfind("scan", 0) == 0 || rows[i].module.rfind("dbg", 0) == 0)
      dft_on_top = true;
  EXPECT_TRUE(dft_on_top);
}

TEST(ModuleBreakdown, TableIsAligned) {
  SmallRig rig;
  const std::string table = module_breakdown_table(*rig.fl);
  EXPECT_NE(table.find("module"), std::string::npos);
  EXPECT_NE(table.find("untestable"), std::string::npos);
}

TEST(BatchPlanJson, RoundTripsEveryPolicyShape) {
  // A permuted, ragged plan (the cone/adaptive shape): order reversed,
  // batches of 3/1/3.
  BatchPlan plan;
  plan.order = {6, 5, 4, 3, 2, 1, 0};
  plan.batch_start = {0, 3, 4, 7};
  plan.validate(7, 63);

  const Json doc = batch_plan_to_json(plan, "cone");
  EXPECT_EQ(doc.at("policy").as_string(), "cone");
  const BatchPlan back = batch_plan_from_json(doc);
  EXPECT_EQ(back.order, plan.order);
  EXPECT_EQ(back.batch_start, plan.batch_start);

  // The identity plan (fixed policy) and dump -> parse -> rebuild.
  const BatchPlan fixed = BatchPlan::fixed(130, 63);
  const BatchPlan fixed_back =
      batch_plan_from_json(Json::parse(batch_plan_to_json(fixed, "fixed").dump()));
  EXPECT_EQ(fixed_back.order, fixed.order);
  EXPECT_EQ(fixed_back.batch_start, fixed.batch_start);

  // The empty plan round-trips too (grade() never sends one, but the
  // wire format must not choke on it).
  BatchPlan empty;
  empty.batch_start = {0};
  EXPECT_EQ(batch_plan_from_json(batch_plan_to_json(empty, "fixed")).batches(),
            0u);
}

TEST(BatchPlanJson, RejectsMalformedDocuments) {
  const BatchPlan plan = BatchPlan::fixed(7, 3);
  const Json good = batch_plan_to_json(plan, "fixed");

  {  // a repeated order index is not a permutation
    Json bad = good;
    Json order = Json::array();
    for (std::size_t i = 0; i < 7; ++i) order.push_back(std::size_t{0});
    bad.set("order", std::move(order));
    EXPECT_THROW(batch_plan_from_json(bad), JsonError);
  }
  {  // batch sizes that overrun the target count
    Json bad = good;
    Json sizes = Json::array();
    sizes.push_back(std::size_t{100});
    bad.set("batch_sizes", std::move(sizes));
    bad.set("batches", std::size_t{1});
    EXPECT_THROW(batch_plan_from_json(bad), JsonError);
  }
  {  // order length disagreeing with the declared target count
    Json bad = good;
    bad.set("targets", std::size_t{3});
    EXPECT_THROW(batch_plan_from_json(bad), JsonError);
  }
  {  // batches field disagreeing with batch_sizes
    Json bad = good;
    bad.set("batches", std::size_t{1});
    EXPECT_THROW(batch_plan_from_json(bad), JsonError);
  }
  // Missing keys are malformed, not defaulted.
  EXPECT_THROW(batch_plan_from_json(Json::object()), JsonError);
}

TEST(SeqFsimOptionsJson, RoundTripsAndRejectsBadBudgets) {
  SeqFsimOptions opts;
  opts.max_cycles = 1234;
  opts.early_exit = false;
  opts.event_driven = false;
  const SeqFsimOptions back =
      seq_fsim_options_from_json(seq_fsim_options_to_json(opts));
  EXPECT_EQ(back.max_cycles, 1234);
  EXPECT_FALSE(back.early_exit);
  EXPECT_FALSE(back.event_driven);

  Json bad = seq_fsim_options_to_json(opts);
  bad.set("max_cycles", 0);
  EXPECT_THROW(seq_fsim_options_from_json(bad), JsonError);
  EXPECT_THROW(seq_fsim_options_from_json(Json::object()), JsonError);
}

TEST(TransitionModel, StrictlyMorePruningThanStuckAt) {
  // The extension result: everything stuck-at-untestable stays untestable
  // for transitions, and constant-value sites add their second polarity.
  auto soc = build_soc({});
  const FaultUniverse u(soc->netlist);
  OnlineUntestabilityAnalyzer az(*soc, u);
  FaultList sa(u), tdf(u);
  const AnalysisReport sa_rep = az.run(sa);
  AnalyzerOptions topts;
  topts.fault_model = FaultModel::kTransition;
  const AnalysisReport tdf_rep = az.run(tdf, topts);
  EXPECT_GT(tdf_rep.total_online() + tdf_rep.structural_baseline,
            sa_rep.total_online() + sa_rep.structural_baseline);
  for (FaultId f = 0; f < u.size(); ++f) {
    if (sa.untestable_kind(f) == UntestableKind::kTied) {
      EXPECT_NE(tdf.untestable_kind(f), UntestableKind::kNone)
          << u.fault_name(f);
    }
  }
}

TEST(TransitionModel, ConstantSiteLosesBothTransitions) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId en = nl.add_input("en");
  const NetId y = w.and2(a, en, "y");
  nl.add_output("o", y);
  const FaultUniverse u(nl);
  const StructuralAnalyzer sta(nl, u);
  MissionConfig cfg;
  cfg.tie(en, true);  // en constant 1: non-controlling, y follows a
  FaultList fl(u);
  sta.classify_transition_faults(sta.analyze(cfg), fl, OnlineSource::kScan);
  const CellId g = nl.net(y).driver;
  // Both transition faults on the tied side input die; the data side keeps
  // both (it can rise and fall, and propagates).
  EXPECT_NE(fl.untestable_kind(u.id_of({g, 2}, false)), UntestableKind::kNone);
  EXPECT_NE(fl.untestable_kind(u.id_of({g, 2}, true)), UntestableKind::kNone);
  EXPECT_EQ(fl.untestable_kind(u.id_of({g, 1}, false)), UntestableKind::kNone);
  EXPECT_EQ(fl.untestable_kind(u.id_of({g, 1}, true)), UntestableKind::kNone);
}

}  // namespace
}  // namespace olfui
