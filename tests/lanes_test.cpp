// Width-parametric kernel equivalence suite.
//
// The 128/256-lane packed words are pure throughput: for any netlist,
// stimulus, fault model, kernel, and trace mode, every width must grade
// every fault exactly as the scalar 64-lane kernel does — lane count only
// changes how many faulty machines ride in one pass. These tests drive
// randomized sequential netlists through every instantiated width and
// compare the per-fault verdict vectors bit for bit, against both the
// 64-lane baseline and the full-sweep oracle, then push wide widths
// through the campaign orchestrator across thread counts and scheduling
// policies.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/scheduler.hpp"
#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "fsim/fsim.hpp"
#include "netlist/netlist.hpp"
#include "sim/packed.hpp"
#include "util/lanes.hpp"
#include "util/rng.hpp"

namespace olfui {
namespace {

// ---------------------------------------------------------------------------
// Random netlist generation (the eventsim_test recipe): inputs and
// declared flops first so feedback paths exist, then a DAG of random
// gates, then outputs and the flop D connections.

struct RandomDesign {
  Netlist nl{"rand"};
  std::vector<NetId> input_nets;
  std::vector<CellId> output_cells;
};

RandomDesign random_design(Rng& rng, int n_inputs, int n_flops, int n_gates) {
  RandomDesign d;
  std::vector<NetId> nets;
  for (int i = 0; i < n_inputs; ++i) {
    const NetId n = d.nl.add_input("in" + std::to_string(i));
    d.input_nets.push_back(n);
    nets.push_back(n);
  }
  nets.push_back(d.nl.add_cell(CellType::kTie0, "u_t0", d.nl.add_net("t0"), {}));
  nets.push_back(d.nl.add_cell(CellType::kTie1, "u_t1", d.nl.add_net("t1"), {}));
  const NetId rstn = d.input_nets[0];

  std::vector<CellId> flops;
  for (int f = 0; f < n_flops; ++f) {
    const NetId q = d.nl.add_net("q" + std::to_string(f));
    const CellId cell =
        rng.next_bool()
            ? d.nl.add_cell(CellType::kDffR, "u_ff" + std::to_string(f), q,
                            {kInvalidId, rstn})
            : d.nl.add_cell(CellType::kDff, "u_ff" + std::to_string(f), q,
                            {kInvalidId});
    flops.push_back(cell);
    nets.push_back(q);
  }

  const CellType kGateTypes[] = {
      CellType::kBuf,   CellType::kNot,   CellType::kAnd2,  CellType::kAnd3,
      CellType::kOr2,   CellType::kOr3,   CellType::kNand2, CellType::kNor2,
      CellType::kXor2,  CellType::kXnor2, CellType::kMux2};
  for (int g = 0; g < n_gates; ++g) {
    const CellType t =
        kGateTypes[rng.next_below(sizeof kGateTypes / sizeof kGateTypes[0])];
    std::vector<NetId> ins(static_cast<std::size_t>(num_inputs(t)));
    for (NetId& in : ins) in = nets[rng.next_below(nets.size())];
    const NetId out = d.nl.add_net("g" + std::to_string(g));
    d.nl.add_cell(t, "u_g" + std::to_string(g), out, std::move(ins));
    nets.push_back(out);
  }
  for (CellId f : flops)
    d.nl.connect_input(f, 0, nets[rng.next_below(nets.size())]);
  for (int o = 0; o < 8; ++o)
    d.output_cells.push_back(d.nl.add_output(
        "out" + std::to_string(o), nets[rng.next_below(nets.size())]));

  EXPECT_TRUE(d.nl.validate().empty());
  return d;
}

/// Replays a fixed per-cycle stimulus (identical on all lanes) at any
/// width, so every pass of every engine sees the same test "program".
template <int W>
class ScriptedEnvT : public FsimEnvironmentT<W> {
 public:
  ScriptedEnvT(const std::vector<NetId>& inputs,
               const std::vector<std::vector<bool>>& words)
      : inputs_(&inputs), words_(&words) {}
  void reset(PackedSimT<W>& sim) override {
    for (NetId in : *inputs_) sim.set_input_all(in, false);
    sim.eval();
  }
  bool step(PackedSimT<W>& sim, int cycle) override {
    if (cycle >= static_cast<int>(words_->size())) return false;
    const std::vector<bool>& w = (*words_)[static_cast<std::size_t>(cycle)];
    for (std::size_t i = 0; i < inputs_->size(); ++i)
      sim.set_input_all((*inputs_)[i], w[i]);
    sim.eval();
    return true;
  }

 private:
  const std::vector<NetId>* inputs_;
  const std::vector<std::vector<bool>>* words_;
};

struct GradeConfig {
  bool event_driven = true;
  bool tdf = false;
  bool traced = false;
};

std::string describe(const GradeConfig& c) {
  return std::string(c.tdf ? "tdf" : "sa") +
         (c.event_driven ? "/event" : "/sweep") +
         (c.traced ? "/traced" : "/untraced");
}

/// Grades the whole universe in (W-1)-fault batches and flattens the
/// masks into one per-fault verdict vector.
template <int W>
std::vector<bool> grade_all(const RandomDesign& d, const FaultUniverse& u,
                            const std::vector<std::vector<bool>>& words,
                            const GradeConfig& cfg) {
  SequentialFaultSimulatorT<W> fsim(
      d.nl, u,
      {.max_cycles = static_cast<int>(words.size()),
       .event_driven = cfg.event_driven});
  fsim.set_observed(d.output_cells);
  ScriptedEnvT<W> env(d.input_nets, words);
  ReferenceTrace trace;
  if (cfg.traced) trace = fsim.record_reference_trace(env);
  const ReferenceTrace* tp = cfg.traced ? &trace : nullptr;

  std::vector<bool> verdicts;
  verdicts.reserve(u.size());
  constexpr std::size_t kBatch = W - 1;
  for (FaultId base = 0; base < u.size();
       base += static_cast<FaultId>(kBatch)) {
    const std::size_t n = std::min<std::size_t>(kBatch, u.size() - base);
    std::vector<FaultId> batch(n);
    std::iota(batch.begin(), batch.end(), base);
    const LaneMask det = cfg.tdf ? fsim.run_tdf_batch(batch, env, tp)
                                 : fsim.run_batch(batch, env, tp);
    for (std::size_t i = 0; i < n; ++i)
      verdicts.push_back(det.bit(static_cast<int>(i)));
  }
  return verdicts;
}

TEST(LaneWidth, AllWidthsMatchScalarBaselineAndSweepOracle) {
  for (std::uint64_t seed = 31; seed <= 33; ++seed) {
    Rng rng(seed);
    RandomDesign d = random_design(rng, 6, 10, 70);
    const FaultUniverse u(d.nl);

    const int cycles = 24;
    std::vector<std::vector<bool>> words(static_cast<std::size_t>(cycles));
    for (auto& w : words) {
      w.resize(d.input_nets.size());
      for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.next_bool();
    }

    for (const bool tdf : {false, true}) {
      // The scalar event kernel is the baseline every (width, kernel,
      // trace) combination must reproduce; the full-sweep oracle guards
      // the baseline itself.
      const std::vector<bool> baseline = grade_all<64>(
          d, u, words, {.event_driven = true, .tdf = tdf, .traced = false});
      for (const bool event_driven : {true, false}) {
        for (const bool traced : {false, true}) {
          const GradeConfig cfg{event_driven, tdf, traced};
          EXPECT_EQ(grade_all<64>(d, u, words, cfg), baseline)
              << "seed " << seed << " W=64 " << describe(cfg);
#if OLFUI_HAS_WIDE_LANES
          EXPECT_EQ(grade_all<128>(d, u, words, cfg), baseline)
              << "seed " << seed << " W=128 " << describe(cfg);
          EXPECT_EQ(grade_all<256>(d, u, words, cfg), baseline)
              << "seed " << seed << " W=256 " << describe(cfg);
#endif
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Campaign-level width equivalence: wide batches flow through the
// scheduler's plan, the executor, and the multi-word mask merge. The
// shard count legitimately shrinks with width, so the comparison is the
// detection state and coverage, not the per-test batch totals.

template <int W>
class DesignBatchRunner final : public FaultBatchRunner {
 public:
  DesignBatchRunner(const RandomDesign& d, const FaultUniverse& u,
                    const std::vector<std::vector<bool>>& words)
      : env_(d.input_nets, words),
        fsim_(d.nl, u, {.max_cycles = static_cast<int>(words.size())}) {
    fsim_.set_observed(d.output_cells);
  }
  LaneMask run_batch(std::span<const FaultId> faults) override {
    return fsim_.run_batch(faults, env_);
  }

 private:
  ScriptedEnvT<W> env_;
  SequentialFaultSimulatorT<W> fsim_;
};

CampaignTest make_design_test(const RandomDesign& d, const FaultUniverse& u,
                              const std::vector<std::vector<bool>>& words,
                              int lanes) {
  CampaignTest test;
  test.name = "rand";
  test.good_cycles = static_cast<int>(words.size());
  test.make_runner = [&d, &u, &words,
                      lanes]() -> std::unique_ptr<FaultBatchRunner> {
#if OLFUI_HAS_WIDE_LANES
    if (lanes == 128)
      return std::make_unique<DesignBatchRunner<128>>(d, u, words);
    if (lanes == 256)
      return std::make_unique<DesignBatchRunner<256>>(d, u, words);
#endif
    return std::make_unique<DesignBatchRunner<64>>(d, u, words);
  };
  return test;
}

TEST(LaneWidth, CampaignDetectionsInvariantAcrossWidthsThreadsAndPolicies) {
  Rng rng(41);
  RandomDesign d = random_design(rng, 6, 12, 90);
  const FaultUniverse u(d.nl);
  const int cycles = 20;
  std::vector<std::vector<bool>> words(static_cast<std::size_t>(cycles));
  for (auto& w : words) {
    w.resize(d.input_nets.size());
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.next_bool();
  }

  BitVec expect_detected;
  bool have_expect = false;
  for (const int lanes : {64, 128, 256}) {
    if (!lane_width_supported(lanes)) continue;
    std::vector<CampaignTest> tests{make_design_test(d, u, words, lanes)};
    for (const auto& policy :
         {std::shared_ptr<const BatchScheduler>{},
          std::shared_ptr<const BatchScheduler>{
              std::make_shared<const ConeScheduler>(u)}}) {
      for (const int threads : {1, 4}) {
        FaultList fl(u);
        const CampaignOptions opts{
            .threads = threads, .lane_width = lanes, .scheduler = policy};
        const CampaignResult r = CampaignEngine(u, opts).run(fl, tests);
        if (!have_expect) {
          expect_detected = r.detected;
          have_expect = true;
          EXPECT_GT(r.total_new_detections, 0u);
        }
        EXPECT_EQ(r.detected, expect_detected)
            << lanes << " lanes, " << threads << " threads, "
            << (policy ? policy->name() : "default");
        // One wide shard holds what several scalar shards held.
        if (lanes > 64 && u.size() > 63)
          EXPECT_LT(r.tests.at(0).batches, (u.size() + 62) / 63);
      }
    }
  }
}

TEST(LaneWidth, ResolveFallsBackToScalar) {
  EXPECT_EQ(resolve_lane_width(64), 64);
  EXPECT_EQ(resolve_lane_width(0), 64);
  EXPECT_EQ(resolve_lane_width(63), 64);
#if OLFUI_HAS_WIDE_LANES
  EXPECT_EQ(resolve_lane_width(128), 128);
  EXPECT_EQ(resolve_lane_width(256), 256);
  EXPECT_EQ(kMaxLaneWidth, 256);
#else
  EXPECT_EQ(resolve_lane_width(128), 64);
  EXPECT_EQ(resolve_lane_width(256), 64);
  EXPECT_EQ(kMaxLaneWidth, 64);
#endif
  EXPECT_EQ(resolve_lane_width(512), 64);
}

TEST(LaneWidth, EngineDerivesBatchSizeFromWidth) {
  // batch_size == 0 asks for the width's natural maximum (lanes - 1);
  // explicit values clamp into [1, lanes - 1].
  Rng rng(47);
  RandomDesign d = random_design(rng, 4, 6, 30);
  const FaultUniverse u(d.nl);
  const std::vector<std::vector<bool>> words(
      8, std::vector<bool>(d.input_nets.size(), true));

  for (const int lanes : {64, 128, 256}) {
    if (!lane_width_supported(lanes)) continue;
    std::vector<CampaignTest> tests{make_design_test(d, u, words, lanes)};
    FaultList fl(u);
    const CampaignResult r =
        CampaignEngine(u, {.lane_width = lanes}).run(fl, tests);
    const std::size_t batch = static_cast<std::size_t>(lanes) - 1;
    EXPECT_EQ(r.tests.at(0).batches, (u.size() + batch - 1) / batch) << lanes;
  }
}

}  // namespace
}  // namespace olfui
