// Grade-result cache + incremental re-grade suite (campaign/cache.hpp):
// the LRU/disk tiers and their corruption fallbacks, the canonical
// options hash and cache-key sensitivity properties, the engine-level
// guarantee that a warm full hit executes ZERO shards (asserted against
// kernel counters and an executor whose worker binary does not exist),
// and the incremental re-grade's bit-identity against a full re-grade of
// a genuinely perturbed netlist.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "campaign/report.hpp"
#include "campaign/scheduler.hpp"
#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "fsim/fsim.hpp"
#include "netlist/wordops.hpp"
#include "obs/metrics.hpp"
#include "sim/packed.hpp"

namespace olfui {
namespace {

namespace fs = std::filesystem;

/// Fresh temp directory under the test's working directory; removed by
/// the destructor so repeated runs stay clean.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "cache_test_XXXXXX";
    if (!mkdtemp(tmpl)) throw std::runtime_error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Minimal decodable CampaignResult whose payload varies with `seed`.
CampaignResult tiny_result(std::size_t universe, std::size_t seed) {
  CampaignResult r;
  r.universe = universe;
  r.detected = BitVec(universe);
  r.detected.set(seed % universe, true);
  r.total_new_detections = 1;
  r.raw_coverage = 0.25;
  r.pruned_coverage = 0.5;
  CampaignResult::PerTest pt;
  pt.name = "t";
  pt.good_cycles = 3;
  pt.faults_targeted = universe;
  pt.batches = 1;
  pt.new_detections = 1;
  r.tests.push_back(pt);
  r.classes.push_back({"sa0", universe, 1});
  return r;
}

CacheKey key_n(std::uint64_t n) {
  CacheKey k;
  k.universe_fp = n;
  k.trace_fp = 0x1111;
  k.plan_hash = 0x2222;
  k.options_hash = 0x3333;
  return k;
}

// ---------------------------------------------------------------------------
// LRU tier

TEST(ResultCache, LruEvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  cache.store(key_n(1), tiny_result(8, 1));
  cache.store(key_n(2), tiny_result(8, 2));
  // Touch 1 so 2 becomes the LRU entry, then push it out.
  EXPECT_TRUE(cache.lookup(key_n(1)).has_value());
  cache.store(key_n(3), tiny_result(8, 3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup(key_n(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_n(2)).has_value());
  const std::optional<CampaignResult> got = cache.lookup(key_n(3));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->detected == tiny_result(8, 3).detected);
  EXPECT_EQ(cache.stats().hits, 3u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().stores, 3u);
}

TEST(ResultCache, StoreOverwritesInPlace) {
  ResultCache cache(2);
  cache.store(key_n(1), tiny_result(8, 1));
  cache.store(key_n(1), tiny_result(8, 5));
  EXPECT_EQ(cache.size(), 1u);
  const std::optional<CampaignResult> got = cache.lookup(key_n(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->detected == tiny_result(8, 5).detected);
}

// ---------------------------------------------------------------------------
// Disk tier

TEST(ResultCache, DiskTierSurvivesProcessBoundaries) {
  TempDir dir;
  {
    ResultCache writer(4, dir.path);
    writer.store(key_n(7), tiny_result(16, 7));
  }
  // A fresh instance (cold memory tier) finds the entry on disk.
  ResultCache reader(4, dir.path);
  const std::optional<CampaignResult> got = reader.lookup(key_n(7));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->detected == tiny_result(16, 7).detected);
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  // Promoted into memory: the second lookup never touches disk again.
  EXPECT_TRUE(reader.lookup(key_n(7)).has_value());
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_EQ(reader.stats().hits, 2u);
  // A different key stays a plain miss, not corruption.
  EXPECT_FALSE(reader.lookup(key_n(8)).has_value());
  EXPECT_EQ(reader.stats().corrupt, 0u);
}

TEST(ResultCache, CorruptDiskEntryCountsAndHeals) {
  TempDir dir;
  {
    ResultCache writer(4, dir.path);
    writer.store(key_n(9), tiny_result(8, 9));
  }
  // Smash the single on-disk entry.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    std::ofstream(entry.path()) << "garbage";
    ++files;
  }
  ASSERT_EQ(files, 1u);

  ResultCache reader(4, dir.path);
  EXPECT_FALSE(reader.lookup(key_n(9)).has_value());
  EXPECT_EQ(reader.stats().corrupt, 1u);
  EXPECT_EQ(reader.stats().misses, 1u);
  // The fallback re-grade's store overwrites the damaged file...
  reader.store(key_n(9), tiny_result(8, 9));
  // ...so the next cold instance reads it cleanly again.
  ResultCache healed(4, dir.path);
  EXPECT_TRUE(healed.lookup(key_n(9)).has_value());
  EXPECT_EQ(healed.stats().corrupt, 0u);
}

TEST(ResultCache, DiskEntryWithMismatchedKeyIsRejected) {
  TempDir dir;
  ResultCache cache(4, dir.path);
  cache.store(key_n(1), tiny_result(8, 1));
  // Masquerade key 1's entry as key 2's: copy it to key 2's digest path.
  // The stored canonical key cannot match, so a digest collision (here,
  // a forced one) can never serve the wrong payload.
  const std::string src =
      dir.path + "/" + word_to_hex(key_n(1).digest()) + ".json";
  const std::string dst =
      dir.path + "/" + word_to_hex(key_n(2).digest()) + ".json";
  fs::copy_file(src, dst);
  ResultCache reader(4, dir.path);
  EXPECT_FALSE(reader.lookup(key_n(2)).has_value());
  EXPECT_EQ(reader.stats().corrupt, 1u);
  EXPECT_TRUE(reader.lookup(key_n(1)).has_value());
}

// ---------------------------------------------------------------------------
// Canonical options hash + cache key sensitivity

TEST(CacheKey, CanonicalOptionsFormIsPinned) {
  // The exact grammar is load-bearing: any accidental change (field
  // rename, reorder, implicit default) would silently invalidate every
  // existing cache — or worse, alias two different configurations.
  EXPECT_EQ(campaign_options_canonical(CampaignOptions{}),
            "campaign_options/v1|batch_size=0|fault_dropping=1|"
            "fault_model=stuck_at|lane_width=64|target_limit=0");
}

TEST(CacheKey, OptionsHashTracksPayloadAffectingFieldsOnly) {
  const CampaignOptions base;
  const std::uint64_t h = campaign_options_hash(base);

  // Every payload-affecting field moves the hash...
  CampaignOptions o = base;
  o.batch_size = 17;
  EXPECT_NE(campaign_options_hash(o), h);
  o = base;
  o.fault_dropping = false;
  EXPECT_NE(campaign_options_hash(o), h);
  o = base;
  o.fault_model = FaultModel::kTransition;
  EXPECT_NE(campaign_options_hash(o), h);
  o = base;
  o.lane_width = 128;
  EXPECT_NE(campaign_options_hash(o), h);
  o = base;
  o.target_limit = 5;
  EXPECT_NE(campaign_options_hash(o), h);

  // ...and every payload-neutral knob does not (they must not fragment
  // the cache across executors, thread counts, or clocking modes).
  o = base;
  o.threads = 7;
  EXPECT_EQ(campaign_options_hash(o), h);
  o = base;
  o.shard_timeout = 9.5;
  EXPECT_EQ(campaign_options_hash(o), h);
  o = base;
  o.incremental_clocking = false;
  EXPECT_EQ(campaign_options_hash(o), h);
  o = base;
  o.executor = std::make_shared<InProcessExecutor>(1);
  EXPECT_EQ(campaign_options_hash(o), h);
  o = base;
  o.cache = std::make_shared<ResultCache>(1);
  EXPECT_EQ(campaign_options_hash(o), h);
}

TEST(CacheKey, EveryComponentMovesTheDigest) {
  const CacheKey base = key_n(1);
  EXPECT_EQ(base.digest(), key_n(1).digest());
  CacheKey k = base;
  k.universe_fp ^= 1;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.trace_fp ^= 1;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.plan_hash ^= 1;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.options_hash ^= 1;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.fault_model = "transition";
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.lane_width = 128;
  EXPECT_NE(k.digest(), base.digest());
}

// ---------------------------------------------------------------------------
// Key-component fingerprints on a real netlist

/// Two-cone test circuit; `variant` flips one gate type (AND <-> OR) in
/// the first cone, leaving the second cone untouched — the minimal
/// "netlist perturbation" the incremental re-grade must handle.
struct TwoConeDesign {
  Netlist nl{"twocone"};
  std::vector<NetId> inputs;
  std::vector<CellId> outputs;
  NetId changed_net = kInvalidId;  ///< output net of the variant gate

  explicit TwoConeDesign(bool variant) {
    WordOps w(nl, "m");
    const NetId a = nl.add_input("a");
    const NetId b = nl.add_input("b");
    const NetId c = nl.add_input("c");
    const NetId d = nl.add_input("d");
    inputs = {a, b, c, d};
    // Cone 1: g feeds o1 (g is the perturbation site).
    changed_net = variant ? w.or2(a, b, "g") : w.and2(a, b, "g");
    const NetId h = w.xor2(changed_net, c, "h");
    // Cone 2: independent of g entirely.
    const NetId k = w.not_(d, "k");
    const NetId m = w.and2(k, c, "m");
    const NetId p = w.or2(m, d, "p");
    outputs.push_back(nl.add_output("o1", h));
    outputs.push_back(nl.add_output("o2", p));
    EXPECT_TRUE(nl.validate().empty());
  }
};

/// Open-loop environment: inputs follow a fixed per-cycle bit pattern,
/// never a function of outputs (the env_feedback=false precondition).
class PatternEnv final : public FsimEnvironment {
 public:
  explicit PatternEnv(std::vector<NetId> inputs)
      : inputs_(std::move(inputs)) {}
  void reset(PackedSim& sim) override {
    for (const NetId n : inputs_) sim.set_input_all(n, false);
    sim.eval();
  }
  bool step(PackedSim& sim, int cycle) override {
    for (std::size_t i = 0; i < inputs_.size(); ++i)
      sim.set_input_all(inputs_[i],
                        ((static_cast<unsigned>(cycle) >> i) ^
                         static_cast<unsigned>(cycle)) & 1u);
    sim.eval();
    return true;
  }

 private:
  std::vector<NetId> inputs_;
};

constexpr int kPatternCycles = 24;

class PatternRunner final : public FaultBatchRunner {
 public:
  PatternRunner(const TwoConeDesign& d, const FaultUniverse& u)
      : env_(d.inputs), fsim_(d.nl, u, {.max_cycles = kPatternCycles}) {
    fsim_.set_observed(d.outputs);
  }
  LaneMask run_batch(std::span<const FaultId> faults) override {
    return fsim_.run_batch(faults, env_, nullptr);
  }

 private:
  PatternEnv env_;
  SequentialFaultSimulator fsim_;
};

/// `d` and `u` must outlive every run over the returned test. The spec is
/// set (cache keys require one); its state_fp folds the design variant so
/// the two variants can never alias in the cache.
CampaignTest make_pattern_test(const TwoConeDesign& d,
                               const FaultUniverse& u) {
  CampaignTest test;
  test.name = "pattern";
  test.good_cycles = kPatternCycles;
  test.make_runner = [&d, &u]() {
    return std::make_unique<PatternRunner>(d, u);
  };
  test.spec = Json::object();
  test.spec.set("workload", std::string("cache_test"));
  test.spec.set("state_fp", word_to_hex(universe_fingerprint(u)));
  return test;
}

TEST(CacheKey, FingerprintsTrackTheirInputs) {
  const TwoConeDesign base(false), variant(true);
  const FaultUniverse u0(base.nl), u1(variant.nl);
  EXPECT_NE(universe_fingerprint(u0), universe_fingerprint(u1));

  FaultList fl(u0);
  const std::uint64_t fl_fp = fault_list_fingerprint(fl);
  fl.set_detected(0);
  EXPECT_NE(fault_list_fingerprint(fl), fl_fp);

  std::vector<CampaignTest> tests;
  tests.push_back(make_pattern_test(base, u0));
  const std::uint64_t tests_fp = campaign_tests_fingerprint(tests);
  EXPECT_NE(tests_fp, 0u);
  tests[0].good_cycles = kPatternCycles + 1;
  EXPECT_NE(campaign_tests_fingerprint(tests), tests_fp);
  tests[0].good_cycles = kPatternCycles;
  tests[0].spec.set("state_fp", std::string("0000000000000000"));
  EXPECT_NE(campaign_tests_fingerprint(tests), tests_fp);
  // A spec-less test cannot be keyed: the whole list reports 0.
  tests[0].spec = Json();
  EXPECT_EQ(campaign_tests_fingerprint(tests), 0u);
}

// ---------------------------------------------------------------------------
// Engine-level: warm full hit executes zero shards

TEST(ResultCache, WarmHitExecutesZeroShardsAndIsByteIdentical) {
  const TwoConeDesign d(false);
  const FaultUniverse u(d.nl);
  std::vector<CampaignTest> tests;
  tests.push_back(make_pattern_test(d, u));

  CampaignOptions opts;
  opts.threads = 1;
  opts.cache = std::make_shared<ResultCache>(4);

  FaultList fl_cold(u);
  const CampaignResult cold = CampaignEngine(u, opts).run(fl_cold, tests);
  EXPECT_EQ(cold.stats.cache, "miss");
  EXPECT_GT(cold.stats.batches, 0u);
  EXPECT_GT(cold.total_new_detections, 0u);
  EXPECT_EQ(opts.cache->stats().stores, 1u);
  EXPECT_NE(cold.stats.options_hash, 0u);

  // The warm run rides an executor whose worker binary does not exist:
  // if the hit path ever reached execute(), the lazy spawn would throw.
  // Kernel counters prove no simulation ran either.
  CampaignOptions warm_opts = opts;
  warm_opts.executor = std::make_shared<SubprocessExecutor>(
      std::vector<std::string>{"./no-such-worker-binary"}, 1);
  obs::metrics().set_enabled(true);
  obs::metrics().reset_values();
  FaultList fl_warm(u);
  const CampaignResult warm =
      CampaignEngine(u, warm_opts).run(fl_warm, tests);
  const std::uint64_t kernel_evals =
      obs::metrics().counter("kernel.evals").value();
  const std::uint64_t cache_hits =
      obs::metrics().counter("cache.hits").value();
  obs::metrics().set_enabled(false);
  obs::metrics().reset_values();

  EXPECT_EQ(warm.stats.cache, "hit");
  EXPECT_EQ(kernel_evals, 0u);
  EXPECT_EQ(cache_hits, 1u);
  EXPECT_EQ(warm.stats.batches, 0u);
  EXPECT_EQ(warm.stats.shard_seconds.size(), 0u);
  // The decoded payload re-serializes byte-identical to the cold run's
  // deterministic JSON — the cache can never drift a result.
  EXPECT_EQ(campaign_result_to_json_string(warm, 2, false),
            campaign_result_to_json_string(cold, 2, false));
  // And the fault list replays to the same detection state.
  EXPECT_EQ(fl_warm.count_detected(), fl_cold.count_detected());

  // The same campaign under changed options misses: no stale payloads.
  CampaignOptions sliced = opts;
  sliced.target_limit = 3;
  FaultList fl_sliced(u);
  const CampaignResult miss = CampaignEngine(u, sliced).run(fl_sliced, tests);
  EXPECT_EQ(miss.stats.cache, "miss");
}

TEST(ResultCache, MaskedAndSpecLessRunsBypassTheCache) {
  const TwoConeDesign d(false);
  const FaultUniverse u(d.nl);

  CampaignOptions opts;
  opts.threads = 1;
  opts.cache = std::make_shared<ResultCache>(4);

  // Null spec: not fingerprintable, the run bypasses (and stores nothing).
  std::vector<CampaignTest> unspecced;
  unspecced.push_back(make_pattern_test(d, u));
  unspecced[0].spec = Json();
  FaultList fl1(u);
  const CampaignResult r1 = CampaignEngine(u, opts).run(fl1, unspecced);
  EXPECT_EQ(r1.stats.cache, "bypass");
  EXPECT_EQ(opts.cache->stats().stores, 0u);

  // Target mask set (the incremental path's internal runs): bypass too.
  std::vector<CampaignTest> tests;
  tests.push_back(make_pattern_test(d, u));
  BitVec mask(u.size());
  for (FaultId f = 0; f < u.size(); f += 2) mask.set(f, true);
  CampaignOptions masked = opts;
  masked.target_mask = std::make_shared<const BitVec>(std::move(mask));
  FaultList fl2(u);
  const CampaignResult r2 = CampaignEngine(u, masked).run(fl2, tests);
  EXPECT_EQ(r2.stats.cache, "bypass");
  EXPECT_EQ(opts.cache->stats().stores, 0u);
  // Cache off entirely: the stats label says so.
  CampaignOptions off;
  off.threads = 1;
  FaultList fl3(u);
  EXPECT_EQ(CampaignEngine(u, off).run(fl3, tests).stats.cache, "off");
}

// ---------------------------------------------------------------------------
// Incremental re-grade

TEST(IncrementalRegrade, EmptyDiffSplicesEverything) {
  const TwoConeDesign d(false);
  const FaultUniverse u(d.nl);
  const auto topo = PackedTopology::build(d.nl);
  const ConeAnalysis cones = ConeAnalysis::build(*topo, 256);
  const IncrementalPlan plan = plan_incremental_regrade(u, cones, {}, true);
  EXPECT_FALSE(plan.full);
  EXPECT_EQ(plan.regrade.count(), 0u);
  EXPECT_FALSE(plan.diff_sig.any());
}

TEST(IncrementalRegrade, ClosedLoopDiffReachingOutputsForcesFullRegrade) {
  const TwoConeDesign d(false);
  const FaultUniverse u(d.nl);
  const auto topo = PackedTopology::build(d.nl);
  const ConeAnalysis cones = ConeAnalysis::build(*topo, 256);
  // Every net here reaches an output port, so under a closed-loop
  // environment ANY diff must fall back to a full re-grade...
  const std::vector<NetId> changed{d.changed_net};
  const IncrementalPlan closed =
      plan_incremental_regrade(u, cones, changed, true);
  EXPECT_TRUE(closed.full);
  EXPECT_EQ(closed.regrade.count(), u.size());
  // ...while the open-loop plan keeps cone 2 spliceable.
  const IncrementalPlan open =
      plan_incremental_regrade(u, cones, changed, false);
  EXPECT_FALSE(open.full);
  EXPECT_GT(open.regrade.count(), 0u);
  EXPECT_LT(open.regrade.count(), u.size());
}

TEST(IncrementalRegrade, SeededRegradeIsBitIdenticalToFullRegrade) {
  // Grade the baseline design, perturb one gate (AND -> OR), then
  // re-grade incrementally from the baseline result. The splice +
  // re-grade must land on exactly the detection state a from-scratch
  // grade of the perturbed design produces.
  const TwoConeDesign base(false), pert(true);
  const FaultUniverse u_base(base.nl), u_pert(pert.nl);
  ASSERT_EQ(u_base.size(), u_pert.size());

  CampaignOptions opts;
  opts.threads = 1;

  std::vector<CampaignTest> base_tests, pert_tests;
  base_tests.push_back(make_pattern_test(base, u_base));
  pert_tests.push_back(make_pattern_test(pert, u_pert));

  FaultList fl_prev(u_base);
  const CampaignResult previous =
      CampaignEngine(u_base, opts).run(fl_prev, base_tests);
  ASSERT_GT(previous.total_new_detections, 0u);

  FaultList fl_full(u_pert);
  const CampaignResult full =
      CampaignEngine(u_pert, opts).run(fl_full, pert_tests);

  // The pattern environment is open-loop, so env_feedback=false is sound
  // and the unchanged cone actually splices.
  FaultList fl_seeded(u_pert);
  const std::vector<NetId> changed{pert.changed_net};
  const CampaignResult seeded =
      seed_from_previous(u_pert, opts, fl_seeded, pert_tests, previous,
                         changed, nullptr, /*env_feedback=*/false);

  EXPECT_TRUE(seeded.detected == full.detected)
      << "incremental re-grade diverged from the full re-grade";
  EXPECT_EQ(seeded.total_new_detections, full.total_new_detections);
  EXPECT_TRUE(seeded.classes == full.classes);
  EXPECT_DOUBLE_EQ(seeded.raw_coverage, full.raw_coverage);
  EXPECT_DOUBLE_EQ(seeded.pruned_coverage, full.pruned_coverage);
  EXPECT_EQ(fl_seeded.count_detected(), fl_full.count_detected());

  EXPECT_EQ(seeded.stats.cache, "partial");
  EXPECT_GT(seeded.stats.regraded_faults, 0u);
  EXPECT_LT(seeded.stats.regrade_fraction, 1.0);
  EXPECT_GT(seeded.stats.regrade_fraction, 0.0);

  // Provenance survives the JSON round trip (tolerantly absent in old
  // dumps, exact in new ones).
  const CampaignResult back = campaign_result_from_json_string(
      campaign_result_to_json_string(seeded));
  EXPECT_EQ(back.stats.cache, "partial");
  EXPECT_EQ(back.stats.cache_spliced, seeded.stats.cache_spliced);
  EXPECT_EQ(back.stats.regraded_faults, seeded.stats.regraded_faults);
  EXPECT_DOUBLE_EQ(back.stats.regrade_fraction,
                   seeded.stats.regrade_fraction);
}

TEST(IncrementalRegrade, MismatchedInputsThrow) {
  const TwoConeDesign d(false);
  const FaultUniverse u(d.nl);
  std::vector<CampaignTest> tests;
  tests.push_back(make_pattern_test(d, u));
  CampaignOptions opts;
  opts.threads = 1;

  CampaignResult wrong_universe = tiny_result(3, 1);
  FaultList fl(u);
  EXPECT_THROW(seed_from_previous(u, opts, fl, tests, wrong_universe, {}),
               std::invalid_argument);

  CampaignResult wrong_model = tiny_result(u.size(), 1);
  wrong_model.universe = u.size();
  wrong_model.fault_model = FaultModel::kTransition;
  EXPECT_THROW(seed_from_previous(u, opts, fl, tests, wrong_model, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace olfui
