#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "netlist/wordops.hpp"

namespace olfui {
namespace {

Netlist tiny() {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = w.and2(a, b, "y");
  nl.add_output("o", y);
  return nl;
}

TEST(FaultUniverse, TwoFaultsPerPin) {
  const Netlist nl = tiny();
  const FaultUniverse u(nl);
  // Pins: 2 input-cell outputs + AND(Y,A,B) + output-port input = 6 pins.
  EXPECT_EQ(u.size(), 12u);
  EXPECT_EQ(u.size(), nl.stats().pins * 2);
}

TEST(FaultUniverse, IdOfInvertsFaultLookup) {
  const Netlist nl = tiny();
  const FaultUniverse u(nl);
  for (FaultId f = 0; f < u.size(); ++f) {
    const Fault& fault = u.fault(f);
    EXPECT_EQ(u.id_of(fault.pin, fault.sa1), f);
  }
}

TEST(FaultUniverse, IdsAtReturnsAdjacentPair) {
  const Netlist nl = tiny();
  const FaultUniverse u(nl);
  const CellId g = nl.find_cell("m/u_y");
  const auto [f0, f1] = u.ids_at({g, 1});
  EXPECT_EQ(f1, f0 + 1);
  EXPECT_FALSE(u.fault(f0).sa1);
  EXPECT_TRUE(u.fault(f1).sa1);
}

TEST(FaultUniverse, FaultNameIsReadable) {
  const Netlist nl = tiny();
  const FaultUniverse u(nl);
  const CellId g = nl.find_cell("m/u_y");
  EXPECT_EQ(u.fault_name(u.id_of({g, 0}, true)), "m/u_y/Y s-a-1");
  EXPECT_EQ(u.fault_name(u.id_of({g, 2}, false)), "m/u_y/B s-a-0");
}

TEST(FaultUniverse, FaultsOfCellCoversAllPins) {
  const Netlist nl = tiny();
  const FaultUniverse u(nl);
  std::vector<FaultId> ids;
  u.faults_of_cell(nl.find_cell("m/u_y"), ids);
  EXPECT_EQ(ids.size(), 6u);  // Y, A, B x 2 polarities
}

TEST(FaultCollapse, AndGateEquivalences) {
  const Netlist nl = tiny();
  const FaultUniverse u(nl);
  const CellId g = nl.find_cell("m/u_y");
  const auto map = u.collapse_map();
  // AND: input s-a-0 == output s-a-0.
  EXPECT_EQ(map[u.id_of({g, 1}, false)], map[u.id_of({g, 0}, false)]);
  EXPECT_EQ(map[u.id_of({g, 2}, false)], map[u.id_of({g, 0}, false)]);
  // but s-a-1 on inputs are distinct.
  EXPECT_NE(map[u.id_of({g, 1}, true)], map[u.id_of({g, 2}, true)]);
  EXPECT_LT(u.collapsed_count(), u.size());
}

TEST(FaultCollapse, InverterChainCollapsesToOneClassPerPolarity) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId n1 = w.not_(a, "n1");
  const NetId n2 = w.not_(n1, "n2");
  nl.add_output("o", n2);
  const FaultUniverse u(nl);
  const auto map = u.collapse_map();
  const CellId c1 = nl.net(n1).driver, c2 = nl.net(n2).driver;
  // NOT: in s-a-0 == out s-a-1; chain + single-fanout wire equivalence
  // collapses a->n1->n2 into two classes overall.
  EXPECT_EQ(map[u.id_of({c1, 1}, false)], map[u.id_of({c1, 0}, true)]);
  EXPECT_EQ(map[u.id_of({c1, 0}, true)], map[u.id_of({c2, 1}, true)]);
  EXPECT_EQ(map[u.id_of({c2, 1}, true)], map[u.id_of({c2, 0}, false)]);
}

TEST(FaultCollapse, FanoutStemsStayDistinct) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId y1 = w.buf(a, "y1");
  const NetId y2 = w.buf(a, "y2");
  nl.add_output("o1", y1);
  nl.add_output("o2", y2);
  const FaultUniverse u(nl);
  const auto map = u.collapse_map();
  const CellId b1 = nl.net(y1).driver, b2 = nl.net(y2).driver;
  const CellId src = nl.net(a).driver;
  // Multi-fanout stem: branch faults do NOT merge with the stem.
  EXPECT_NE(map[u.id_of({b1, 1}, false)], map[u.id_of({src, 0}, false)]);
  EXPECT_NE(map[u.id_of({b1, 1}, false)], map[u.id_of({b2, 1}, false)]);
}

TEST(FaultList, StatusLifecycle) {
  const Netlist nl = tiny();
  const FaultUniverse u(nl);
  FaultList fl(u);
  EXPECT_EQ(fl.count_detected(), 0u);
  EXPECT_EQ(fl.count_untestable(), 0u);
  fl.set_detected(0);
  fl.mark_untestable(1, UntestableKind::kTied, OnlineSource::kScan);
  EXPECT_EQ(fl.count_detected(), 1u);
  EXPECT_EQ(fl.count_untestable(), 1u);
  EXPECT_EQ(fl.untestable_kind(1), UntestableKind::kTied);
  EXPECT_EQ(fl.online_source(1), OnlineSource::kScan);
}

TEST(FaultList, FirstSourceWins) {
  const Netlist nl = tiny();
  const FaultUniverse u(nl);
  FaultList fl(u);
  fl.mark_untestable(2, UntestableKind::kTied, OnlineSource::kScan);
  fl.mark_untestable(2, UntestableKind::kUnobservable, OnlineSource::kMemoryMap);
  EXPECT_EQ(fl.untestable_kind(2), UntestableKind::kTied);
  EXPECT_EQ(fl.online_source(2), OnlineSource::kScan);
  EXPECT_EQ(fl.count_source(OnlineSource::kScan), 1u);
  EXPECT_EQ(fl.count_source(OnlineSource::kMemoryMap), 0u);
}

TEST(FaultList, MasksAndCounts) {
  const Netlist nl = tiny();
  const FaultUniverse u(nl);
  FaultList fl(u);
  fl.mark_untestable(0, UntestableKind::kTied, OnlineSource::kScan);
  fl.mark_untestable(5, UntestableKind::kUnobservable, OnlineSource::kDebugObserve);
  const BitVec m = fl.untestable_mask();
  EXPECT_TRUE(m.get(0));
  EXPECT_TRUE(m.get(5));
  EXPECT_EQ(m.count(), 2u);
  EXPECT_EQ(fl.source_mask(OnlineSource::kScan).count(), 1u);
}

TEST(FaultList, CoverageRisesWhenPruning) {
  // The paper's headline effect: detected/total < detected/(total-untestable).
  const Netlist nl = tiny();
  const FaultUniverse u(nl);
  FaultList fl(u);
  for (FaultId f = 0; f < 6; ++f) fl.set_detected(f);
  for (FaultId f = 8; f < 12; ++f)
    fl.mark_untestable(f, UntestableKind::kTied, OnlineSource::kScan);
  EXPECT_DOUBLE_EQ(fl.raw_coverage(), 6.0 / 12.0);
  EXPECT_DOUBLE_EQ(fl.pruned_coverage(), 6.0 / 8.0);
  EXPECT_GT(fl.pruned_coverage(), fl.raw_coverage());
}

TEST(FaultList, SummaryMentionsEverySource) {
  const Netlist nl = tiny();
  const FaultUniverse u(nl);
  FaultList fl(u);
  const std::string s = fl.summary();
  for (const char* key : {"scan", "debug-control", "debug-observe",
                          "memory-map", "structural", "TOTAL"})
    EXPECT_NE(s.find(key), std::string::npos) << key;
}

}  // namespace
}  // namespace olfui
