#include <gtest/gtest.h>

#include <cstdlib>

#include "core/analyzer.hpp"

namespace olfui {
namespace {

struct Case {
  std::unique_ptr<Soc> soc;
  std::unique_ptr<FaultUniverse> universe;

  explicit Case(SocConfig cfg = {}) {
    soc = build_soc(cfg);
    universe = std::make_unique<FaultUniverse>(soc->netlist);
  }
};

TEST(Analyzer, FullFlowFindsAllFourSources) {
  Case c;
  FaultList fl(*c.universe);
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  const AnalysisReport rep = az.run(fl);

  EXPECT_EQ(rep.universe, c.universe->size());
  EXPECT_GT(rep.scan, 0u);
  EXPECT_GT(rep.debug_control, 0u);
  EXPECT_GT(rep.debug_observe, 0u);
  EXPECT_GT(rep.memmap, 0u);
  EXPECT_GT(rep.structural_baseline, 0u);
  // Counts agree with the fault-list labels.
  EXPECT_EQ(rep.scan, fl.count_source(OnlineSource::kScan));
  EXPECT_EQ(rep.debug_control, fl.count_source(OnlineSource::kDebugControl));
  EXPECT_EQ(rep.debug_observe, fl.count_source(OnlineSource::kDebugObserve));
  EXPECT_EQ(rep.memmap, fl.count_source(OnlineSource::kMemoryMap));
  EXPECT_EQ(rep.total_online() + rep.structural_baseline, fl.count_untestable());
}

TEST(Analyzer, PaperShapeScanDominatesDebugThenMemory) {
  // Table I shape: scan is by far the largest class, debug next, memory
  // smallest; the total lands in the paper's low-to-mid teens percent.
  Case c;
  FaultList fl(*c.universe);
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  const AnalysisReport rep = az.run(fl);
  EXPECT_GT(rep.scan, rep.debug_control + rep.debug_observe);
  EXPECT_GT(rep.debug_control + rep.debug_observe, rep.memmap);
  EXPECT_GT(rep.online_pct(), 8.0);
  EXPECT_LT(rep.online_pct(), 25.0);
}

TEST(Analyzer, AnalysisRecordsRuntime) {
  // The functional half of the old wall-clock test: the flow records a
  // positive structural-analysis time in the report.
  Case c;
  FaultList fl(*c.universe);
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  const AnalysisReport rep = az.run(fl);
  EXPECT_GT(rep.analysis_seconds, 0.0);
}

TEST(Analyzer, AnalysisCompletesWellUnderOneSecond) {
  // §4: "the modified circuit is analyzed by Tetramax in less than 1
  // second" — the structural engine must match that on the full SoC.
  // Wall-clock assertions are load-sensitive (this one failed at ~1.9 s
  // whenever `ctest -j` oversubscribed the 1-core container), so the claim
  // is env-gated: skipped by default, asserted when the machine is known
  // quiet. bench_runtime asserts the same bound unconditionally in its
  // isolated process.
  const char* gate = std::getenv("OLFUI_ASSERT_WALLCLOCK");
  if (gate == nullptr || *gate == '\0' || *gate == '0')
    GTEST_SKIP() << "set OLFUI_ASSERT_WALLCLOCK=1 on a quiet machine; "
                    "bench_runtime checks the <1 s claim in isolation";
  Case c;
  FaultList fl(*c.universe);
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  const AnalysisReport rep = az.run(fl);
  EXPECT_LT(rep.analysis_seconds, 1.0);
}

TEST(Analyzer, SourcesAreDisjoint) {
  Case c;
  FaultList fl(*c.universe);
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  az.run(fl);
  std::size_t sum = 0;
  for (OnlineSource s : {OnlineSource::kStructural, OnlineSource::kScan,
                         OnlineSource::kDebugControl, OnlineSource::kDebugObserve,
                         OnlineSource::kMemoryMap})
    sum += fl.count_source(s);
  EXPECT_EQ(sum, fl.count_untestable());
}

TEST(Analyzer, OptionsDisableIndividualPasses) {
  Case c;
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  {
    FaultList fl(*c.universe);
    AnalyzerOptions opts;
    opts.run_scan = false;
    const AnalysisReport rep = az.run(fl, opts);
    EXPECT_EQ(rep.scan, 0u);
    EXPECT_GT(rep.debug_control, 0u);
  }
  {
    FaultList fl(*c.universe);
    AnalyzerOptions opts;
    opts.run_debug_control = false;
    opts.run_debug_observe = false;
    opts.run_memmap = false;
    const AnalysisReport rep = az.run(fl, opts);
    EXPECT_GT(rep.scan, 0u);
    EXPECT_EQ(rep.debug_control, 0u);
    EXPECT_EQ(rep.debug_observe, 0u);
    EXPECT_EQ(rep.memmap, 0u);
  }
}

TEST(Analyzer, SocWithoutDftHasNoOnlineUntestables) {
  SocConfig cfg;
  cfg.with_debug = false;
  cfg.with_scan = false;
  cfg.cpu.with_multiplier = false;
  Case c(cfg);
  FaultList fl(*c.universe);
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  const AnalysisReport rep = az.run(fl);
  EXPECT_EQ(rep.scan, 0u);
  EXPECT_EQ(rep.debug_control, 0u);
  EXPECT_EQ(rep.debug_observe, 0u);
  EXPECT_GT(rep.memmap, 0u);  // the memory map restriction always applies
}

TEST(Analyzer, Table1FormatMatchesPaperLayout) {
  Case c;
  FaultList fl(*c.universe);
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  const AnalysisReport rep = az.run(fl);
  const std::string t = rep.table1();
  for (const char* key :
       {"On-line functionally untestable faults", "Original", "Scan", "Debug",
        "Memory", "TOTAL", "[#]", "[%]"})
    EXPECT_NE(t.find(key), std::string::npos) << key;
  // Debug row uses the paper's "control+observe" split format.
  EXPECT_NE(t.find("+"), std::string::npos);
}

TEST(Analyzer, MissionConfigAccumulatesAllPasses) {
  Case c;
  FaultList fl(*c.universe);
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  az.run(fl);
  const MissionConfig& cfg = az.mission_config();
  // scan-enable + 17 debug controls + memmap ties.
  EXPECT_GT(cfg.constants.size(), 18u);
  // scan-outs + debug observation ports.
  EXPECT_GT(cfg.unobserved_outputs.size(), 4u);
}

TEST(Analyzer, RunIsDeterministic) {
  Case c;
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  FaultList fl1(*c.universe), fl2(*c.universe);
  const AnalysisReport r1 = az.run(fl1);
  const AnalysisReport r2 = az.run(fl2);
  EXPECT_EQ(r1.scan, r2.scan);
  EXPECT_EQ(r1.debug_control, r2.debug_control);
  EXPECT_EQ(r1.debug_observe, r2.debug_observe);
  EXPECT_EQ(r1.memmap, r2.memmap);
  for (FaultId f = 0; f < fl1.size(); ++f)
    ASSERT_EQ(fl1.online_source(f), fl2.online_source(f)) << f;
}

TEST(Analyzer, TransitionModelRunsTheFullFlow) {
  Case c;
  FaultList fl(*c.universe);
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  AnalyzerOptions opts;
  opts.fault_model = FaultModel::kTransition;
  const AnalysisReport rep = az.run(fl, opts);
  EXPECT_GT(rep.scan, 0u);
  EXPECT_GT(rep.debug_control, 0u);
  EXPECT_GT(rep.memmap, 0u);
  // A transition fault on a constant site dies in both polarities, so the
  // tied class must contain even-odd sibling pairs.
  std::size_t paired = 0;
  for (FaultId f = 0; f + 1 < fl.size(); f += 2) {
    if (fl.untestable_kind(f) == UntestableKind::kTied &&
        fl.untestable_kind(f + 1) == UntestableKind::kTied)
      ++paired;
  }
  EXPECT_GT(paired, 0u);
}

TEST(Analyzer, CoverageAccountingUsesPrunedDenominator) {
  Case c;
  FaultList fl(*c.universe);
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  const AnalysisReport rep = az.run(fl);
  // Mark an arbitrary detected set and check the arithmetic identity
  // pruned = detected_testable / (universe - untestable).
  std::size_t detected_testable = 0;
  for (FaultId f = 0; f < fl.size(); f += 3) {
    if (fl.untestable_kind(f) == UntestableKind::kNone) {
      fl.set_detected(f);
      ++detected_testable;
    }
  }
  const double expect =
      static_cast<double>(detected_testable) /
      static_cast<double>(c.universe->size() - fl.count_untestable());
  EXPECT_DOUBLE_EQ(fl.pruned_coverage(), expect);
  EXPECT_GT(fl.pruned_coverage(), fl.raw_coverage());
  (void)rep;
}

TEST(Analyzer, Fig1ContainmentHolds) {
  // On-line functionally untestable ⊇ functionally untestable ⊇
  // structurally untestable (Fig. 1). The baseline structural set must be
  // untestable in every mission configuration too: re-running the flow
  // can only add labels, never remove the structural ones.
  Case c;
  FaultList fl(*c.universe);
  OnlineUntestabilityAnalyzer az(*c.soc, *c.universe);
  az.run(fl);
  FaultList base(*c.universe);
  AnalyzerOptions only_base;
  only_base.run_scan = only_base.run_debug_control = false;
  only_base.run_debug_observe = only_base.run_memmap = false;
  az.run(base, only_base);
  for (FaultId f = 0; f < fl.size(); ++f) {
    if (base.untestable_kind(f) != UntestableKind::kNone) {
      EXPECT_NE(fl.untestable_kind(f), UntestableKind::kNone)
          << c.universe->fault_name(f);
    }
  }
}

}  // namespace
}  // namespace olfui
