#include <gtest/gtest.h>

#include "cpu/asm.hpp"
#include "cpu/soc.hpp"

namespace olfui {
namespace {

TEST(Assembler, BasicInstructions) {
  Program p = assemble(R"(
    .org 0x1000
    nop
    add r1, r2, r3
    sub r4, r5, r6
    addi r1, r0, 42
    lui r2, 0x4000
    halt
  )");
  EXPECT_EQ(p.base(), 0x1000u);
  const auto& w = p.words();
  ASSERT_EQ(w.size(), 6u);
  EXPECT_EQ(disassemble(w[0]), "nop");
  EXPECT_EQ(disassemble(w[1]), "add r1, r2, r3");
  EXPECT_EQ(disassemble(w[2]), "sub r4, r5, r6");
  EXPECT_EQ(disassemble(w[3]), "addi r1, r0, 42");
  EXPECT_EQ(disassemble(w[5]), "halt");
}

TEST(Assembler, MemoryOperandsAndNegativeOffsets) {
  Program p = assemble(R"(
    lw r1, 8(r7)
    sw r2, -4(r3)
  )");
  const auto& w = p.words();
  EXPECT_EQ(disassemble(w[0]), "lw r1, 8(r7)");
  const Instr i = decode(w[1]);
  EXPECT_EQ(i.op, Opcode::kSw);
  EXPECT_EQ(i.rs2, 2);
  EXPECT_EQ(i.rs1, 3);
  EXPECT_EQ(static_cast<std::int16_t>(i.imm), -4);
}

TEST(Assembler, LabelsAndBranches) {
  Program p = assemble(R"(
    .org 0x100
    li r1, 3
  loop:
    addi r1, r1, -1
    bne r1, r0, loop
    beq r0, r0, done
    nop
  done:
    halt
  )");
  const auto& w = p.words();
  // li expands to lui+ori.
  const Instr bne_i = decode(w[3]);
  EXPECT_EQ(bne_i.op, Opcode::kBne);
  EXPECT_EQ(static_cast<std::int16_t>(bne_i.imm), -2);
  const Instr beq_i = decode(w[4]);
  EXPECT_EQ(static_cast<std::int16_t>(beq_i.imm), 1);  // skip the nop
}

TEST(Assembler, LiPseudoInstructionExpands) {
  Program p = assemble("li r3, 0x12345678\nhalt\n");
  const auto& w = p.words();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(decode(w[0]).op, Opcode::kLui);
  EXPECT_EQ(decode(w[1]).op, Opcode::kOri);
}

TEST(Assembler, CommentsAndBlankLines) {
  Program p = assemble(R"(
    ; full-line comment
    # another style
    nop        // trailing comment
    nop        ; trailing
  )");
  EXPECT_EQ(p.words().size(), 2u);
}

TEST(Assembler, WordDirectiveEmitsRawData) {
  Program p = assemble(".word 0xDEADBEEF\n.word 7\n");
  const auto& w = p.words();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], 0xDEADBEEFu);
  EXPECT_EQ(w[1], 7u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nfrobnicate r1, r2\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("unknown mnemonic"), std::string::npos);
  }
}

TEST(Assembler, RejectsBadRegister) {
  EXPECT_THROW(assemble("add r1, r9, r2\n"), AsmError);
}

TEST(Assembler, RejectsImmediateOutOfRange) {
  EXPECT_THROW(assemble("addi r1, r0, 100000\n"), AsmError);
}

TEST(Assembler, RejectsLateOrg) {
  EXPECT_THROW(assemble("nop\n.org 0x100\n"), AsmError);
}

TEST(Assembler, RejectsUndefinedLabel) {
  EXPECT_THROW(assemble("beq r0, r0, nowhere\n"), AsmError);
}

TEST(Assembler, RejectsTrailingGarbage) {
  EXPECT_THROW(assemble("nop nop\n"), AsmError);
}

TEST(Assembler, AssembledProgramRunsOnTheSoc) {
  SocConfig cfg;
  cfg.with_debug = false;
  cfg.with_scan = false;
  cfg.cpu.with_multiplier = false;
  cfg.cpu.btb_entries = 1;
  auto soc = build_soc(cfg);
  Program p = assemble(R"(
    .org 0x78000
    li r7, 0x40000000
    li r1, 5
    li r2, 0
  loop:
    add r2, r2, r1
    addi r1, r1, -1
    bne r1, r0, loop
    sw r2, 0(r7)
    halt
  )");
  // r0 is general-purpose: zero it explicitly like the suite does.
  Program full = assemble(R"(
    .org 0x78000
    li r0, 0
    li r7, 0x40000000
    li r1, 5
    li r2, 0
  loop:
    add r2, r2, r1
    addi r1, r1, -1
    bne r1, r0, loop
    sw r2, 0(r7)
    halt
  )");
  SocSimulator sim(*soc);
  sim.load_program(full);
  sim.run(1000);
  ASSERT_TRUE(sim.halted());
  EXPECT_EQ(sim.ram_word(0x40000000), 15u);  // 5+4+3+2+1
  (void)p;
}

TEST(Assembler, MulMnemonic) {
  Program p = assemble("mul r3, r1, r2\nhalt\n");
  EXPECT_EQ(decode(p.words()[0]).op, Opcode::kMul);
}

TEST(Assembler, MultipleLabelsSameAddress) {
  Program p = assemble(R"(
  a:
  b:
    nop
    beq r0, r0, a
    bne r0, r1, b
  )");
  const auto& w = p.words();
  // w[2] sits one instruction later, so its backward offset is one larger.
  EXPECT_EQ(static_cast<std::int16_t>(decode(w[1]).imm),
            static_cast<std::int16_t>(decode(w[2]).imm) + 1);
}

}  // namespace
}  // namespace olfui
