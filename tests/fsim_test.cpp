#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "fsim/fsim.hpp"
#include "netlist/wordops.hpp"

namespace olfui {
namespace {

TEST(LaneTranspose, RoundTrip) {
  Netlist nl("t");
  Bus bus(8);
  for (int i = 0; i < 8; ++i) bus[i] = nl.add_input("b" + std::to_string(i));
  nl.add_output("o", bus[0]);
  PackedSim sim(nl);
  std::array<std::uint64_t, 64> lanes{};
  for (int l = 0; l < 64; ++l) lanes[l] = static_cast<std::uint64_t>(l * 3 % 256);
  drive_bus_lanes(sim, bus, lanes);
  sim.eval();
  const auto back = read_bus_lanes(sim, bus);
  for (int l = 0; l < 64; ++l) EXPECT_EQ(back[l], lanes[l]) << l;
}

/// Environment driving a 2-bit counter circuit with an enable input; the
/// counter value is the observed "bus".
class CounterEnv : public FsimEnvironment {
 public:
  explicit CounterEnv(NetId en) : en_(en) {}
  void reset(PackedSim& sim) override {
    sim.set_input_all(en_, false);
    sim.eval();
  }
  bool step(PackedSim& sim, int) override {
    sim.set_input_all(en_, true);
    sim.eval();
    return true;
  }

 private:
  NetId en_;
};

struct CounterRig {
  Netlist nl{"t"};
  NetId en;
  RegWord cnt;
  std::vector<CellId> outputs;

  CounterRig() {
    WordOps w(nl, "m");
    en = nl.add_input("en");
    cnt = w.reg_declare(4, "cnt");
    const auto inc = w.add_word(cnt.q, w.constant(1, 4), w.lit(false), "inc");
    const Bus d = w.mux_word(en, cnt.q, inc.sum, "d");
    w.reg_connect(cnt, d);
    for (int i = 0; i < 4; ++i)
      outputs.push_back(nl.add_output("o" + std::to_string(i), cnt.q[i]));
  }
};

TEST(SeqFsim, DetectsStuckCounterBit) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  SequentialFaultSimulator fsim(rig.nl, u, {.max_cycles = 20});
  fsim.set_observed(rig.outputs);
  CounterEnv env(rig.en);
  // s-a-0 on counter bit 1 output: wrong count value after a few cycles.
  const FaultId f = u.id_of({rig.cnt.flops[1], 0}, false);
  const LaneMask det = fsim.run_batch(std::span(&f, 1), env);
  EXPECT_EQ(det, 1u);
}

TEST(SeqFsim, MissesFaultWhenOutputsNotObserved) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  SequentialFaultSimulator fsim(rig.nl, u, {.max_cycles = 20});
  fsim.set_observed({rig.outputs[0]});  // only bit 0 visible
  CounterEnv env(rig.en);
  // A stuck bit-3 never shows on bit 0 within 20 cycles... bit3 influences
  // nothing else in this circuit, so it must go undetected.
  const FaultId f = u.id_of({rig.cnt.flops[3], 0}, false);
  const LaneMask det = fsim.run_batch(std::span(&f, 1), env);
  EXPECT_EQ(det, 0u);
}

TEST(SeqFsim, BatchesAreIndependent) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  SequentialFaultSimulator fsim(rig.nl, u, {.max_cycles = 20});
  fsim.set_observed(rig.outputs);
  CounterEnv env(rig.en);
  // Fill a batch with all flop output faults; every stuck counter bit is
  // detectable when the full count is observed.
  std::vector<FaultId> faults;
  for (int b = 0; b < 4; ++b) {
    faults.push_back(u.id_of({rig.cnt.flops[b], 0}, false));
    faults.push_back(u.id_of({rig.cnt.flops[b], 0}, true));
  }
  const LaneMask det = fsim.run_batch(faults, env);
  EXPECT_EQ(det, (1ULL << faults.size()) - 1);
}

TEST(SeqFsim, CampaignMarksDetectedAndSkipsUntestable) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  FaultList fl(u);
  // Pretend one fault is already proven untestable: it must be skipped.
  const FaultId skip = u.id_of({rig.cnt.flops[0], 0}, false);
  fl.mark_untestable(skip, UntestableKind::kTied, OnlineSource::kMemoryMap);
  SequentialFaultSimulator fsim(rig.nl, u, {.max_cycles = 20});
  fsim.set_observed(rig.outputs);
  CounterEnv env(rig.en);
  std::size_t calls = 0;
  const std::size_t detected = fsim.run_campaign(
      fl, env, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_GT(detected, 0u);
  EXPECT_GT(calls, 0u);
  EXPECT_EQ(fl.detect_state(skip), DetectState::kUndetected);
  EXPECT_EQ(fl.count_detected(), detected);
  // Campaign is idempotent: a second run detects nothing new.
  EXPECT_EQ(fsim.run_campaign(fl, env), 0u);
}

TEST(SeqFsim, EnvironmentEndsRunEarly) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);

  class OneCycleEnv : public CounterEnv {
   public:
    using CounterEnv::CounterEnv;
    bool step(PackedSim& sim, int cycle) {
      if (cycle >= 1) return false;
      return CounterEnv::step(sim, cycle);
    }
  };
  SequentialFaultSimulator fsim(rig.nl, u, {.max_cycles = 50});
  fsim.set_observed(rig.outputs);
  OneCycleEnv env(rig.en);
  // A fault needing two increments to show (bit 1 stuck at 0) escapes a
  // one-cycle run.
  const FaultId f = u.id_of({rig.cnt.flops[1], 0}, false);
  EXPECT_EQ(fsim.run_batch(std::span(&f, 1), env), 0u);
}

TEST(CombDetect, MatchesTruthTableForAndGate) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = w.and2(a, b, "y");
  std::vector<CellId> observed{nl.add_output("o", y)};
  const FaultUniverse u(nl);
  const CellId g = nl.net(y).driver;

  std::vector<std::vector<std::pair<NetId, bool>>> pat11{{{a, true}, {b, true}}};
  std::vector<std::vector<std::pair<NetId, bool>>> pat01{{{a, false}, {b, true}}};
  // Output s-a-0 detected by (1,1) only.
  EXPECT_TRUE(comb_detects(nl, u, u.id_of({g, 0}, false), pat11, observed));
  EXPECT_FALSE(comb_detects(nl, u, u.id_of({g, 0}, false), pat01, observed));
  // A-branch s-a-1 detected by (0,1).
  EXPECT_TRUE(comb_detects(nl, u, u.id_of({g, 1}, true), pat01, observed));
  EXPECT_FALSE(comb_detects(nl, u, u.id_of({g, 1}, true), pat11, observed));
}

// ---------------------------------------------------------------------------
// ReferenceTrace::fingerprint — the trace component of the grade-result
// cache key (campaign/cache.hpp) and the worker-drift check in the
// subprocess executor. It must move on ANY single-bit divergence of the
// recorded good machine, and must NOT move with how the trace was
// recorded (lane width, clocking mode): those are payload-neutral.

/// CounterEnv at any lane width (the scalar CounterEnv above is 64-only).
template <int W>
class CounterEnvT : public FsimEnvironmentT<W> {
 public:
  explicit CounterEnvT(NetId en) : en_(en) {}
  void reset(PackedSimT<W>& sim) override {
    sim.set_input_all(en_, false);
    sim.eval();
  }
  bool step(PackedSimT<W>& sim, int) override {
    sim.set_input_all(en_, true);
    sim.eval();
    return true;
  }

 private:
  NetId en_;
};

template <int W>
ReferenceTrace record_counter_trace(const CounterRig& rig,
                                    const FaultUniverse& u,
                                    bool event_driven) {
  SequentialFaultSimulatorT<W> fsim(
      rig.nl, u, {.max_cycles = 20, .event_driven = event_driven});
  fsim.set_observed(rig.outputs);
  CounterEnvT<W> env(rig.en);
  return fsim.record_reference_trace(env);
}

TEST(ReferenceTraceFingerprint, AnySingleBitPerturbationChangesIt) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  const ReferenceTrace trace = record_counter_trace<64>(rig, u, true);
  const std::uint64_t fp = trace.fingerprint();
  ASSERT_NE(fp, 0u);
  EXPECT_EQ(trace.fingerprint(), fp);  // pure function of the contents

  // Flip every bit of every run value, one at a time: each divergent
  // good-machine state must produce a distinct checkpoint identity.
  for (std::size_t c = 0; c < trace.columns.size(); ++c) {
    for (std::size_t r = 0; r < trace.columns[c].value.size(); ++r) {
      for (int bit = 0; bit < 64; ++bit) {
        ReferenceTrace poked = trace;
        poked.columns[c].value[r] ^= 1ULL << bit;
        EXPECT_NE(poked.fingerprint(), fp)
            << "column " << c << " run " << r << " bit " << bit;
      }
    }
  }

  // Shape and run-boundary perturbations count as divergence too: the
  // same values starting one cycle later are a different good machine.
  ReferenceTrace poked = trace;
  poked.cycles += 1;
  EXPECT_NE(poked.fingerprint(), fp);
  poked = trace;
  poked.num_nets += 1;
  EXPECT_NE(poked.fingerprint(), fp);
  poked = trace;
  for (auto& col : poked.columns) {
    for (std::uint32_t& start : col.cycle) {
      if (start == 0) continue;
      start += 1;
      EXPECT_NE(poked.fingerprint(), fp);
      start -= 1;
    }
  }
}

TEST(ReferenceTraceFingerprint, StableAcrossLaneWidthsAndClockingModes) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  const std::uint64_t fp = record_counter_trace<64>(rig, u, true).fingerprint();
  // Clocking mode is a speed knob, not a semantic one: the event-driven
  // and full-sweep kernels must record bit-identical good machines.
  EXPECT_EQ(record_counter_trace<64>(rig, u, false).fingerprint(), fp);
#if OLFUI_HAS_WIDE_LANES
  // Lane 0 is the good machine at every width, so the recorded trace —
  // and therefore the cache key built from it — is width-invariant.
  EXPECT_EQ(record_counter_trace<128>(rig, u, true).fingerprint(), fp);
  EXPECT_EQ(record_counter_trace<256>(rig, u, true).fingerprint(), fp);
  EXPECT_EQ(record_counter_trace<256>(rig, u, false).fingerprint(), fp);
#endif
}

}  // namespace
}  // namespace olfui
