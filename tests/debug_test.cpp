#include <gtest/gtest.h>

#include "debug/debug.hpp"
#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "netlist/wordops.hpp"
#include "sim/packed.hpp"
#include "sta/sta.hpp"

namespace olfui {
namespace {

/// A toy "core": two architected registers with simple next-state logic.
struct Core {
  Netlist nl{"t"};
  NetId rstn, in0;
  RegWord ra, rb, pc;

  Core() {
    WordOps w(nl, "core");
    rstn = nl.add_input("rstn");
    in0 = nl.add_input("in0");
    ra = w.reg_declare(8, "ra");
    rb = w.reg_declare(8, "rb");
    pc = w.reg_declare(8, "pc");
    Bus ra_d(8), rb_d(8), pc_d(8);
    for (int i = 0; i < 8; ++i) {
      ra_d[i] = w.xor2(ra.q[i], i == 0 ? in0 : rb.q[i - 1],
                       "ra_d_" + std::to_string(i));
      rb_d[i] = w.mux(in0, rb.q[i], ra.q[i], "rb_d_" + std::to_string(i));
    }
    const auto inc = w.add_word(pc.q, w.constant(1, 8), w.lit(false), "pcinc");
    pc_d = inc.sum;
    w.reg_connect(ra, ra_d);
    w.reg_connect(rb, rb_d);
    w.reg_connect(pc, pc_d);
    for (int i = 0; i < 8; ++i)
      nl.add_output("bus" + std::to_string(i), ra.q[i]);
  }

  DebugPorts attach_debug() {
    DebugSpec spec;
    spec.writable_regs = {&ra, &rb};
    spec.bus_a_words = {ra.q, rb.q};
    spec.bus_b_words = {pc.q};
    spec.hold_reg = &pc;
    spec.width = 8;
    return insert_debug(nl, spec);
  }
};

TEST(DebugInsert, SeventeenControlSignals) {
  Core core;
  const DebugPorts ports = core.attach_debug();
  // The case study's count: 9 discrete controls + 8 select lines.
  EXPECT_EQ(ports.control_inputs.size(), 17u);
  EXPECT_EQ(ports.control_values.size(), 17u);
  EXPECT_TRUE(core.nl.validate().empty());
}

TEST(DebugInsert, ObservationBusesBecomeOutputs) {
  Core core;
  const std::size_t before = core.nl.output_cells().size();
  const DebugPorts ports = core.attach_debug();
  // bus_a (8 bits) + bus_b (8 bits) observation ports.
  EXPECT_EQ(ports.observe_outputs.size(), 16u);
  EXPECT_EQ(core.nl.output_cells().size(), before + 16u);
}

TEST(DebugInsert, MissionModeKeepsFunctionalBehaviour) {
  Core ref, dut;
  const DebugPorts ports = dut.attach_debug();
  PackedSim ps_ref(ref.nl), ps_dut(dut.nl);
  ps_ref.power_on();
  ps_dut.power_on();
  for (std::size_t i = 0; i < ports.control_inputs.size(); ++i)
    ps_dut.set_input_all(ports.control_inputs[i], ports.control_values[i]);
  for (int cyc = 0; cyc < 20; ++cyc) {
    for (PackedSim* s : {&ps_ref, &ps_dut}) {
      s->set_input_all(ref.rstn, true);
      s->set_input_all(ref.in0, cyc % 3 == 1);
      s->eval();
    }
    for (int i = 0; i < 8; ++i) {
      const std::string port = "bus" + std::to_string(i);
      EXPECT_EQ(ps_ref.observed(ref.nl.find_output(port)) & 1,
                ps_dut.observed(dut.nl.find_output(port)) & 1)
          << cyc << " " << port;
    }
    ps_ref.clock();
    ps_dut.clock();
  }
}

TEST(DebugInsert, DebuggerCanWriteRegisterThroughShiftChain) {
  // Drive the debug port like an external Nexus/JTAG controller: arm the
  // TAP, shift a value into the shift register, then write it into ra.
  Core core;
  const DebugPorts ports = core.attach_debug();
  const Netlist& nl = core.nl;
  PackedSim ps(nl);
  ps.power_on();
  const auto set = [&](const char* name, bool v) {
    ps.set_input_all(nl.find_input(name), v);
  };
  ps.set_input_all(core.rstn, true);
  ps.set_input_all(core.in0, false);
  for (std::size_t i = 0; i < ports.control_inputs.size(); ++i)
    ps.set_input_all(ports.control_inputs[i], false);
  set("jtag_trstn", true);
  // 4 cycles of TMS=1 arm the TAP.
  set("jtag_tms", true);
  for (int i = 0; i < 4; ++i) {
    ps.eval();
    ps.clock();
  }
  // Arm shifting: sel[4..7] = 0x5 pattern (bits 4 and 6).
  set("dbg_sel4", true);
  set("dbg_sel6", true);
  set("dbg_shift", true);
  // Shift 0xA5 into the 8-bit shift register, LSB-first via TDI (data
  // enters at the top bit and moves down one position per clock).
  for (int b = 0; b < 8; ++b) {
    set("jtag_tdi", (0xA5 >> b) & 1);
    ps.eval();
    ps.clock();
  }
  set("dbg_shift", false);
  // Write into ra (select 0) with debug enabled.
  set("dbg_en", true);
  set("dbg_wen", true);
  ps.eval();
  ps.clock();
  std::uint64_t ra_val = 0;
  for (int i = 0; i < 8; ++i) ra_val |= (ps.value(core.ra.q[i]) & 1) << i;
  EXPECT_EQ(ra_val, 0xA5u);
}

TEST(DebugInsert, HaltFreezesHoldRegister) {
  Core core;
  const DebugPorts ports = core.attach_debug();
  const Netlist& nl = core.nl;
  PackedSim ps(nl);
  ps.power_on();
  for (std::size_t i = 0; i < ports.control_inputs.size(); ++i)
    ps.set_input_all(ports.control_inputs[i], false);
  ps.set_input_all(core.rstn, true);
  ps.set_input_all(core.in0, false);
  const auto pc_val = [&] {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= (ps.value(core.pc.q[i]) & 1) << i;
    return v;
  };
  ps.eval();
  ps.clock();
  ps.clock();
  EXPECT_EQ(pc_val(), 2u);  // counting
  // Engage halt.
  ps.set_input_all(nl.find_input("dbg_en"), true);
  ps.set_input_all(nl.find_input("dbg_halt"), true);
  ps.eval();
  ps.clock();  // halted latch sets
  const std::uint64_t frozen = pc_val();
  ps.eval();
  ps.clock();
  ps.clock();
  EXPECT_EQ(pc_val(), frozen);  // PC held
  // Resume.
  ps.set_input_all(nl.find_input("dbg_halt"), false);
  ps.set_input_all(nl.find_input("dbg_resume"), true);
  ps.eval();
  ps.clock();  // halted latch clears
  ps.eval();
  ps.clock();
  EXPECT_GT(pc_val(), frozen);
}

TEST(DebugAnalysis, QuietInputScreeningFindsDebugPorts) {
  Core core;
  const DebugPorts ports = core.attach_debug();
  Simulator sim(core.nl);
  ToggleRecorder rec(core.nl);
  sim.power_on();
  // Mission run: debug inputs tied quiet, functional inputs active.
  for (int cyc = 0; cyc < 16; ++cyc) {
    sim.set_input(core.rstn, true);
    sim.set_input(core.in0, cyc % 2 == 0);
    for (std::size_t i = 0; i < ports.control_inputs.size(); ++i)
      sim.set_input(ports.control_inputs[i], ports.control_values[i]);
    sim.eval();
    rec.sample(sim);
    sim.clock();
  }
  const auto quiet = find_quiet_inputs(core.nl, rec);
  // Every debug control input is quiet; the toggling functional input isn't.
  for (NetId n : ports.control_inputs)
    EXPECT_TRUE(std::find(quiet.begin(), quiet.end(), n) != quiet.end());
  EXPECT_TRUE(std::find(quiet.begin(), quiet.end(), core.in0) == quiet.end());
}

TEST(DebugAnalysis, ControlConfigProducesUntestables) {
  Core core;
  const DebugPorts ports = core.attach_debug();
  const FaultUniverse u(core.nl);
  const StructuralAnalyzer sta(core.nl, u);
  FaultList fl(u);
  const std::size_t n = sta.classify_faults(
      sta.analyze(debug_control_config(ports)), fl, OnlineSource::kDebugControl);
  EXPECT_GT(n, 0u);
  // The TAP state machine is dead once TRSTN is grounded.
  const CellId tap0 = core.nl.find_cell("dbg/u_tap_state_q_0_reg");
  ASSERT_NE(tap0, kInvalidId);
  std::vector<FaultId> ids;
  u.faults_of_cell(tap0, ids);
  bool any = false;
  for (FaultId f : ids)
    any |= fl.untestable_kind(f) != UntestableKind::kNone;
  EXPECT_TRUE(any);
}

TEST(DebugAnalysis, ObserveConfigKillsObservationCone) {
  Core core;
  const DebugPorts ports = core.attach_debug();
  const FaultUniverse u(core.nl);
  const StructuralAnalyzer sta(core.nl, u);
  FaultList fl(u);
  MissionConfig cfg = debug_control_config(ports);
  cfg.merge(debug_observe_config(ports));
  sta.classify_faults(sta.analyze(cfg), fl, OnlineSource::kDebugObserve);
  // Every observation port pin is untestable once floating.
  for (CellId port : ports.observe_outputs) {
    std::vector<FaultId> ids;
    u.faults_of_cell(port, ids);
    for (FaultId f : ids)
      EXPECT_NE(fl.untestable_kind(f), UntestableKind::kNone)
          << u.fault_name(f);
  }
  // The architected registers stay testable through the system bus.
  std::vector<FaultId> ids;
  u.faults_of_cell(core.ra.flops[0], ids);
  bool all_untestable = true;
  for (FaultId f : ids)
    all_untestable &= fl.untestable_kind(f) != UntestableKind::kNone;
  EXPECT_FALSE(all_untestable);
}

}  // namespace
}  // namespace olfui
