// Property-based sweeps (TEST_P) over randomized netlists.
//
// The central invariant of the whole methodology: whatever the structural
// engine classifies as untestable must be genuinely undetectable. On
// random combinational netlists this is checked against *exhaustive*
// pattern sets — a complete ground truth, not another heuristic.
#include <gtest/gtest.h>

#include "atpg/podem.hpp"
#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "fsim/fsim.hpp"
#include "netlist/wordops.hpp"
#include "sta/sta.hpp"
#include "scan/scan.hpp"
#include "util/rng.hpp"
#include "verilog/verilog.hpp"

namespace olfui {
namespace {

constexpr int kNumInputs = 8;

struct RandomDesign {
  Netlist nl{"t"};
  std::vector<NetId> inputs;
  std::vector<CellId> outputs;
};

RandomDesign make_random_comb(std::uint64_t seed, int gates) {
  RandomDesign d;
  WordOps w(d.nl, "m");
  Rng rng(seed);
  std::vector<NetId> pool;
  for (int i = 0; i < kNumInputs; ++i) {
    d.inputs.push_back(d.nl.add_input("i" + std::to_string(i)));
    pool.push_back(d.inputs.back());
  }
  // A couple of tie cells make structural UT faults reachable.
  pool.push_back(w.lit(false));
  pool.push_back(w.lit(true));
  for (int g = 0; g < gates; ++g) {
    const CellType types[] = {CellType::kAnd2,  CellType::kOr2,
                              CellType::kXor2,  CellType::kNand2,
                              CellType::kNor2,  CellType::kXnor2,
                              CellType::kMux2,  CellType::kAnd3,
                              CellType::kOr3,   CellType::kNot,
                              CellType::kBuf};
    const CellType t = types[rng.next_below(11)];
    std::vector<NetId> ins;
    for (int k = 0; k < num_inputs(t); ++k)
      ins.push_back(pool[rng.next_below(pool.size())]);
    pool.push_back(w.gate(t, "g" + std::to_string(g), ins));
  }
  // Observe the last few cones.
  for (int o = 0; o < 3; ++o) {
    d.outputs.push_back(
        d.nl.add_output("o" + std::to_string(o), pool[pool.size() - 1 - o]));
  }
  return d;
}

/// Exhaustive detection over all 2^kNumInputs assignments, honouring tied
/// inputs (they keep their mission value in every pattern).
bool exhaustively_detected(const RandomDesign& d, const FaultUniverse& u,
                           FaultId f, const MissionConfig& cfg) {
  std::vector<std::pair<NetId, bool>> tied;
  for (auto [net, v] : cfg.constants) tied.emplace_back(net, v);
  std::vector<std::vector<std::pair<NetId, bool>>> block;
  std::vector<CellId> observed;
  std::vector<std::uint8_t> unobs(d.nl.num_cells(), 0);
  for (CellId c : cfg.unobserved_outputs) unobs[c] = 1;
  for (CellId c : d.outputs)
    if (!unobs[c]) observed.push_back(c);
  if (observed.empty()) return false;

  for (int v = 0; v < (1 << kNumInputs); ++v) {
    std::vector<std::pair<NetId, bool>> pat = tied;
    for (int i = 0; i < kNumInputs; ++i) {
      bool is_tied = false;
      for (auto [net, tv] : tied)
        if (net == d.inputs[static_cast<std::size_t>(i)]) is_tied = true;
      if (!is_tied)
        pat.emplace_back(d.inputs[static_cast<std::size_t>(i)], (v >> i) & 1);
    }
    block.push_back(std::move(pat));
    if (block.size() == 64) {
      if (comb_detects(d.nl, u, f, block, observed)) return true;
      block.clear();
    }
  }
  return !block.empty() && comb_detects(d.nl, u, f, block, observed);
}

MissionConfig random_mission(const RandomDesign& d, std::uint64_t seed) {
  Rng rng(seed * 977 + 13);
  MissionConfig cfg;
  for (NetId in : d.inputs)
    if (rng.next_below(3) == 0) cfg.tie(in, rng.next_bool());
  for (CellId out : d.outputs)
    if (rng.next_below(4) == 0) cfg.unobserve(out);
  return cfg;
}

class StaSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StaSoundness, UntestableFaultsAreUndetectableExhaustively) {
  const std::uint64_t seed = GetParam();
  const RandomDesign d = make_random_comb(seed, 40);
  const FaultUniverse u(d.nl);
  const StructuralAnalyzer sta(d.nl, u);
  const MissionConfig cfg = random_mission(d, seed);
  FaultList fl(u);
  sta.classify_faults(sta.analyze(cfg), fl, OnlineSource::kScan);
  std::size_t checked = 0;
  for (FaultId f = 0; f < u.size(); ++f) {
    if (fl.untestable_kind(f) == UntestableKind::kNone) continue;
    ++checked;
    EXPECT_FALSE(exhaustively_detected(d, u, f, cfg))
        << "seed " << seed << ": " << u.fault_name(f) << " classified "
        << to_string(fl.untestable_kind(f)) << " but detectable";
  }
  EXPECT_GT(checked, 0u) << "seed " << seed;
}

TEST_P(StaSoundness, BaselineClassificationSoundWithFullAccess) {
  const std::uint64_t seed = GetParam();
  const RandomDesign d = make_random_comb(seed, 60);
  const FaultUniverse u(d.nl);
  const StructuralAnalyzer sta(d.nl, u);
  FaultList fl(u);
  sta.classify_faults(sta.analyze({}), fl, OnlineSource::kStructural);
  for (FaultId f = 0; f < u.size(); ++f) {
    if (fl.untestable_kind(f) == UntestableKind::kNone) continue;
    EXPECT_FALSE(exhaustively_detected(d, u, f, {}))
        << "seed " << seed << ": " << u.fault_name(f);
  }
}

TEST_P(StaSoundness, MoreRestrictionsNeverShrinkTheUntestableSet) {
  // Fig. 1 containment as a property: on-line untestable ⊇ untestable.
  const std::uint64_t seed = GetParam();
  const RandomDesign d = make_random_comb(seed, 50);
  const FaultUniverse u(d.nl);
  const StructuralAnalyzer sta(d.nl, u);
  FaultList base(u), mission(u);
  sta.classify_faults(sta.analyze({}), base, OnlineSource::kStructural);
  sta.classify_faults(sta.analyze(random_mission(d, seed)), mission,
                      OnlineSource::kScan);
  for (FaultId f = 0; f < u.size(); ++f) {
    if (base.untestable_kind(f) != UntestableKind::kNone) {
      EXPECT_NE(mission.untestable_kind(f), UntestableKind::kNone)
          << "seed " << seed << ": " << u.fault_name(f);
    }
  }
}

TEST_P(StaSoundness, PodemNeverFindsTestsForStaUntestables) {
  const std::uint64_t seed = GetParam();
  const RandomDesign d = make_random_comb(seed, 40);
  const FaultUniverse u(d.nl);
  const StructuralAnalyzer sta(d.nl, u);
  const MissionConfig cfg = random_mission(d, seed);
  FaultList fl(u);
  sta.classify_faults(sta.analyze(cfg), fl, OnlineSource::kScan);
  Podem podem(d.nl, u, {.backtrack_limit = 3000, .mission = &cfg});
  for (FaultId f = 0; f < u.size(); ++f) {
    if (fl.untestable_kind(f) == UntestableKind::kNone) continue;
    EXPECT_NE(podem.run(f).outcome, AtpgOutcome::kTestFound)
        << "seed " << seed << ": " << u.fault_name(f);
  }
}

TEST_P(StaSoundness, CollapsedClassesShareDetectability) {
  const std::uint64_t seed = GetParam();
  const RandomDesign d = make_random_comb(seed, 30);
  const FaultUniverse u(d.nl);
  const auto map = u.collapse_map();
  Rng rng(seed + 1);
  // For a sample of equivalence pairs, exhaustive detectability agrees.
  std::size_t pairs = 0;
  for (FaultId f = 0; f < u.size() && pairs < 12; ++f) {
    if (map[f] == f || rng.next_below(4) != 0) continue;
    ++pairs;
    EXPECT_EQ(exhaustively_detected(d, u, f, {}),
              exhaustively_detected(d, u, map[f], {}))
        << "seed " << seed << ": " << u.fault_name(f) << " vs "
        << u.fault_name(map[f]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaSoundness,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

class PodemCompleteness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PodemCompleteness, VerdictMatchesExhaustiveSimulation) {
  // PODEM's testable/untestable verdicts agree with exhaustive ground
  // truth on every sampled fault (no false proofs in either direction).
  const std::uint64_t seed = GetParam();
  const RandomDesign d = make_random_comb(seed + 1000, 35);
  const FaultUniverse u(d.nl);
  Podem podem(d.nl, u, {.backtrack_limit = 50000});
  for (FaultId f = 0; f < u.size(); f += 5) {
    const AtpgResult r = podem.run(f);
    if (r.outcome == AtpgOutcome::kAborted) continue;  // honest, just slow
    EXPECT_EQ(r.outcome == AtpgOutcome::kTestFound,
              exhaustively_detected(d, u, f, {}))
        << "seed " << seed << ": " << u.fault_name(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PodemCompleteness,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

// ---- sequential properties --------------------------------------------------

struct RandomSeqDesign {
  Netlist nl{"t"};
  std::vector<NetId> inputs;
  std::vector<CellId> outputs;
  NetId rstn = kInvalidId;
};

RandomSeqDesign make_random_seq(std::uint64_t seed, int gates, int flops) {
  RandomSeqDesign d;
  WordOps w(d.nl, "m");
  Rng rng(seed);
  d.rstn = d.nl.add_input("rstn");
  std::vector<NetId> pool;
  for (int i = 0; i < 5; ++i) {
    d.inputs.push_back(d.nl.add_input("i" + std::to_string(i)));
    pool.push_back(d.inputs.back());
  }
  // Declare flops up front so combinational logic can read them.
  std::vector<RegWord> regs;
  for (int f = 0; f < flops; ++f) {
    regs.push_back(w.reg_declare(1, "r" + std::to_string(f),
                                 rng.next_below(2) ? d.rstn : kInvalidId));
    pool.push_back(regs.back().q[0]);
  }
  for (int g = 0; g < gates; ++g) {
    const CellType types[] = {CellType::kAnd2, CellType::kOr2, CellType::kXor2,
                              CellType::kNand2, CellType::kNor2, CellType::kMux2,
                              CellType::kNot};
    const CellType t = types[rng.next_below(7)];
    std::vector<NetId> ins;
    for (int k = 0; k < num_inputs(t); ++k)
      ins.push_back(pool[rng.next_below(pool.size())]);
    pool.push_back(w.gate(t, "g" + std::to_string(g), ins));
  }
  for (auto& reg : regs) {
    Bus dnet{pool[rng.next_below(pool.size())]};
    w.reg_connect(reg, dnet);
  }
  for (int o = 0; o < 2; ++o)
    d.outputs.push_back(
        d.nl.add_output("o" + std::to_string(o), pool[pool.size() - 1 - o]));
  return d;
}

class SeqProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeqProperties, UntestableSetGrowsWithMissionRestrictions) {
  const std::uint64_t seed = GetParam();
  RandomSeqDesign d = make_random_seq(seed, 40, 6);
  ASSERT_TRUE(d.nl.validate().empty());
  const FaultUniverse u(d.nl);
  const StructuralAnalyzer sta(d.nl, u);
  Rng rng(seed + 5);
  MissionConfig small, big;
  for (NetId in : d.inputs) {
    if (rng.next_below(3) == 0) {
      const bool v = rng.next_bool();
      small.tie(in, v);
      big.tie(in, v);
    } else if (rng.next_below(2) == 0) {
      big.tie(in, rng.next_bool());
    }
  }
  big.unobserve(d.outputs[0]);
  FaultList fs(u), fb(u);
  sta.classify_faults(sta.analyze(small), fs, OnlineSource::kScan);
  sta.classify_faults(sta.analyze(big), fb, OnlineSource::kScan);
  for (FaultId f = 0; f < u.size(); ++f) {
    if (fs.untestable_kind(f) != UntestableKind::kNone) {
      EXPECT_NE(fb.untestable_kind(f), UntestableKind::kNone)
          << "seed " << seed << ": " << u.fault_name(f);
    }
  }
}

TEST_P(SeqProperties, ScanInsertionPreservesMissionBehaviour) {
  const std::uint64_t seed = GetParam();
  RandomSeqDesign ref = make_random_seq(seed, 35, 5);
  RandomSeqDesign dut = make_random_seq(seed, 35, 5);
  ScanConfig scfg;
  scfg.num_chains = 1 + static_cast<int>(seed % 3);
  scfg.buffers_per_link = static_cast<int>(seed % 2);
  const ScanChains chains = insert_scan(dut.nl, scfg);
  PackedSim a(ref.nl), b(dut.nl);
  a.power_on();
  b.power_on();
  b.set_input_all(chains.se_net, chains.se_functional_value);
  for (const ScanChain& c : chains.chains) b.set_input_all(c.scan_in_net, false);
  Rng rng(seed * 3 + 1);
  for (int cyc = 0; cyc < 25; ++cyc) {
    const bool rv = cyc > 1;
    for (std::size_t i = 0; i < ref.inputs.size(); ++i) {
      const bool v = rng.next_bool();
      a.set_input_all(ref.inputs[i], v);
      b.set_input_all(dut.inputs[i], v);
    }
    a.set_input_all(ref.rstn, rv);
    b.set_input_all(dut.rstn, rv);
    a.eval();
    b.eval();
    for (std::size_t o = 0; o < ref.outputs.size(); ++o) {
      ASSERT_EQ(a.observed(ref.outputs[o]) & 1, b.observed(dut.outputs[o]) & 1)
          << "seed " << seed << " cycle " << cyc << " output " << o;
    }
    a.clock();
    b.clock();
  }
}

TEST_P(SeqProperties, VerilogRoundTripPreservesSimulation) {
  const std::uint64_t seed = GetParam();
  RandomSeqDesign d = make_random_seq(seed, 30, 4);
  const Netlist back = parse_verilog(write_verilog(d.nl));
  ASSERT_TRUE(back.validate().empty());
  EXPECT_EQ(d.nl.stats().pins, back.stats().pins);
  PackedSim a(d.nl), b(back);
  a.power_on();
  b.power_on();
  Rng rng(seed + 77);
  for (int cyc = 0; cyc < 20; ++cyc) {
    for (CellId c : d.nl.input_cells()) {
      const bool v = rng.next_bool();
      a.set_input_all(d.nl.cell(c).out, v);
      b.set_input_all(back.find_input(d.nl.cell(c).name), v);
    }
    a.eval();
    b.eval();
    for (CellId oc : d.nl.output_cells()) {
      ASSERT_EQ(a.observed(oc) & 1,
                b.observed(back.find_output(d.nl.cell(oc).name)) & 1)
          << "seed " << seed << " cycle " << cyc;
    }
    a.clock();
    b.clock();
  }
}

TEST_P(SeqProperties, TransitionUntestablesIncludeStuckAtTied) {
  const std::uint64_t seed = GetParam();
  RandomSeqDesign d = make_random_seq(seed, 40, 6);
  const FaultUniverse u(d.nl);
  const StructuralAnalyzer sta(d.nl, u);
  Rng rng(seed ^ 0xBEEF);
  MissionConfig cfg;
  for (NetId in : d.inputs)
    if (rng.next_below(2) == 0) cfg.tie(in, rng.next_bool());
  const StaResult r = sta.analyze(cfg);
  FaultList sa(u), tdf(u);
  sta.classify_faults(r, sa, OnlineSource::kScan);
  sta.classify_transition_faults(r, tdf, OnlineSource::kScan);
  for (FaultId f = 0; f < u.size(); ++f) {
    if (sa.untestable_kind(f) == UntestableKind::kTied) {
      EXPECT_NE(tdf.untestable_kind(f), UntestableKind::kNone)
          << "seed " << seed << ": " << u.fault_name(f);
    }
  }
  EXPECT_GE(tdf.count_untestable(), sa.count_untestable()) << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqProperties,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38, 39,
                                           40, 41, 42));

}  // namespace
}  // namespace olfui
