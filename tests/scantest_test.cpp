// Manufacturing-mode scan testing — the other half of the paper's claim:
// faults that are on-line functionally untestable ARE testable while the
// scan/debug structures are still accessible.
#include <gtest/gtest.h>

#include "atpg/podem.hpp"
#include "core/analyzer.hpp"
#include "netlist/wordops.hpp"
#include "scan/pattern_io.hpp"
#include "scan/scan_atpg.hpp"
#include "scan/scan_test.hpp"
#include "util/rng.hpp"

namespace olfui {
namespace {

struct Rig {
  std::unique_ptr<Soc> soc;
  std::unique_ptr<FaultUniverse> universe;
  ScanChains chains;

  Rig() {
    SocConfig cfg;
    cfg.cpu.with_multiplier = false;
    cfg.cpu.btb_entries = 1;
    cfg.scan.num_chains = 2;
    cfg.with_debug = false;
    soc = build_soc(cfg);
    universe = std::make_unique<FaultUniverse>(soc->netlist);
    chains = trace_scan(soc->netlist);
  }

  ScanTestRunner make_runner() const {
    ScanTestRunner runner(soc->netlist, chains);
    // Release reset during test so DFFR chain positions can hold data.
    runner.set_pin_constraint(soc->cpu.rstn, true);
    return runner;
  }
};

TEST(ScanPatternFromAtpg, SplitsPiAndChainState) {
  Rig rig;
  AtpgPattern atpg;
  // One PI and one flop assignment.
  const NetId pi = rig.soc->netlist.find_input("rstn");
  const CellId flop = rig.chains.chains[0].elements[3].flop;
  atpg.assignment[pi] = true;
  atpg.assignment[rig.soc->netlist.cell(flop).out] = true;
  const ScanPattern pat =
      scan_pattern_from_atpg(rig.soc->netlist, rig.chains, atpg);
  EXPECT_EQ(pat.pi.at(pi), true);
  EXPECT_TRUE(pat.chain_state[0][3]);
  EXPECT_FALSE(pat.chain_state[0][2]);
}

TEST(ScanTest, ChainTestDetectsSerialPathFaults) {
  Rig rig;
  ScanTestRunner runner = rig.make_runner();
  // Every SI-branch fault of the first chain must fail the flush test.
  std::vector<FaultId> faults;
  for (const ScanElement& e : rig.chains.chains[0].elements) {
    faults.push_back(rig.universe->id_of({e.mux, kMuxB + 1}, false));
    faults.push_back(rig.universe->id_of({e.mux, kMuxB + 1}, true));
    if (faults.size() >= 60) break;
  }
  const std::uint64_t det = runner.run_chain_test(faults, *rig.universe);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_TRUE(det & (1ULL << i)) << rig.universe->fault_name(faults[i]);
}

TEST(ScanTest, ChainTestDetectsBufferAndScanOutFaults) {
  Rig rig;
  ScanTestRunner runner = rig.make_runner();
  std::vector<FaultId> faults;
  for (const ScanChain& chain : rig.chains.chains) {
    for (const ScanElement& e : chain.elements)
      for (CellId buf : e.link_buffers) {
        faults.push_back(rig.universe->id_of({buf, 0}, false));
        faults.push_back(rig.universe->id_of({buf, 0}, true));
      }
    for (CellId buf : chain.tail_buffers) {
      faults.push_back(rig.universe->id_of({buf, 1}, false));
      faults.push_back(rig.universe->id_of({buf, 1}, true));
    }
    faults.push_back(rig.universe->id_of({chain.scan_out_port, 1}, false));
    faults.push_back(rig.universe->id_of({chain.scan_out_port, 1}, true));
  }
  std::size_t missed = 0;
  for (std::size_t i = 0; i < faults.size(); i += 60) {
    const std::size_t n = std::min<std::size_t>(60, faults.size() - i);
    const std::uint64_t det =
        runner.run_chain_test(std::span(faults).subspan(i, n), *rig.universe);
    for (std::size_t j = 0; j < n; ++j)
      if (!(det & (1ULL << j))) ++missed;
  }
  EXPECT_EQ(missed, 0u);
}

TEST(ScanTest, ChainTestDetectsScanEnableStuckFunctional) {
  // SE stuck at the functional value stops the chain from shifting at that
  // flop: the flush pattern never reaches scan-out intact.
  Rig rig;
  ScanTestRunner runner = rig.make_runner();
  std::vector<FaultId> faults;
  for (const ScanElement& e : rig.chains.chains[0].elements) {
    faults.push_back(rig.universe->id_of(
        {e.mux, kMuxS + 1}, rig.chains.se_functional_value));
    if (faults.size() >= 50) break;
  }
  const std::uint64_t det = runner.run_chain_test(faults, *rig.universe);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_TRUE(det & (1ULL << i)) << rig.universe->fault_name(faults[i]);
}

TEST(ScanTest, FullScanPatternDetectsFunctionalLogicFault) {
  // PODEM test for an ALU-cone fault, applied through the chains.
  Rig rig;
  Podem podem(rig.soc->netlist, *rig.universe, {.backtrack_limit = 50000});
  // Pick the first adder cell of the ALU.
  CellId target = kInvalidId;
  for (CellId c = 0; c < rig.soc->netlist.num_cells(); ++c) {
    if (rig.soc->netlist.cell(c).name.find("alu/adder_sum") != std::string::npos) {
      target = c;
      break;
    }
  }
  ASSERT_NE(target, kInvalidId);
  std::size_t applied = 0, detected = 0;
  std::vector<FaultId> ids;
  rig.universe->faults_of_cell(target, ids);
  ScanTestRunner runner = rig.make_runner();
  for (FaultId f : ids) {
    const AtpgResult r = podem.run(f);
    if (r.outcome != AtpgOutcome::kTestFound) continue;
    ++applied;
    const ScanPattern pat =
        scan_pattern_from_atpg(rig.soc->netlist, rig.chains, *r.pattern);
    const std::uint64_t det =
        runner.run_pattern(std::span(&f, 1), *rig.universe, pat);
    detected += det & 1;
  }
  ASSERT_GT(applied, 0u);
  EXPECT_EQ(detected, applied);
}

TEST(ScanTest, OnlineUntestableScanFaultsAreManufacturingTestable) {
  // The paper's central statement, demonstrated end to end: sample faults
  // the on-line flow prunes as scan-class and show the manufacturing
  // chain test catches them.
  Rig rig;
  FaultList fl(*rig.universe);
  prune_scan_faults(rig.chains, *rig.universe, fl);
  Rng rng(99);
  std::vector<FaultId> pruned;
  for (FaultId f = 0; f < fl.size(); ++f)
    if (fl.online_source(f) == OnlineSource::kScan) pruned.push_back(f);
  ASSERT_FALSE(pruned.empty());

  // SE-branch ties are untestable-by-definition even for the tester (the
  // fault value equals the tied value only in mission mode; during scan
  // test SE toggles, so they are detectable). Chain-test a random sample.
  ScanTestRunner runner = rig.make_runner();
  std::vector<FaultId> sample;
  for (int i = 0; i < 50; ++i)
    sample.push_back(pruned[rng.next_below(pruned.size())]);
  const std::uint64_t det = runner.run_chain_test(sample, *rig.universe);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < sample.size(); ++i)
    if (det & (1ULL << i)) ++hits;
  // The flush test alone catches the overwhelming majority; SE stem-style
  // faults may need capture patterns, so allow a small remainder.
  EXPECT_GT(hits, sample.size() * 8 / 10)
      << "only " << hits << "/" << sample.size()
      << " pruned scan faults caught by the chain test";
}

TEST(ScanAtpg, FlowReachesHighCoverageOnSmallCore) {
  // Full manufacturing flow on a lean netlist: chain test + random +
  // deterministic phases must together cover most of the universe.
  SocConfig cfg;
  cfg.cpu.with_multiplier = false;
  cfg.cpu.btb_entries = 1;
  cfg.scan.num_chains = 8;
  cfg.with_debug = false;
  auto soc = build_soc(cfg);
  const FaultUniverse u(soc->netlist);
  FaultList fl(u);
  const ScanChains chains = trace_scan(soc->netlist);
  ScanAtpgOptions opts;
  opts.random_patterns = 24;
  opts.max_deterministic_targets = 200;
  opts.pin_constraints = {{soc->cpu.rstn, true}};
  const ScanAtpgResult r = generate_scan_tests(soc->netlist, chains, u, fl, opts);
  EXPECT_GT(r.detected_by_chain_test, 1000u);
  EXPECT_GT(r.detected_by_random, 5000u);
  EXPECT_GT(fl.raw_coverage(), 0.5);
  EXPECT_FALSE(r.patterns.empty());
  EXPECT_EQ(r.total_detected(), fl.count_detected());
}

TEST(ScanAtpg, ComposesWithPriorDetections) {
  SocConfig cfg;
  cfg.cpu.with_multiplier = false;
  cfg.cpu.btb_entries = 1;
  cfg.scan.num_chains = 8;
  cfg.with_debug = false;
  auto soc = build_soc(cfg);
  const FaultUniverse u(soc->netlist);
  FaultList fl(u);
  // Pre-mark a slab of faults detected: the flow must not count them again.
  for (FaultId f = 0; f < 500; ++f) fl.set_detected(f);
  ScanAtpgOptions opts;
  opts.random_patterns = 4;
  opts.max_deterministic_targets = 0;
  opts.pin_constraints = {{soc->cpu.rstn, true}};
  const ScanChains chains = trace_scan(soc->netlist);
  const ScanAtpgResult r = generate_scan_tests(soc->netlist, chains, u, fl, opts);
  EXPECT_EQ(fl.count_detected(), 500u + r.total_detected());
}

TEST(ScanAtpg, RedundancyProofsLandInFaultList) {
  // A netlist with a known redundant cone: y = a | (a & b).
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId ab = w.and2(a, b, "ab");
  const NetId y = w.or2(a, ab, "y");
  RegWord r0 = w.reg_word({y}, "r0");
  nl.add_output("o", r0.q[0]);
  const ScanChains chains = insert_scan(nl, {.num_chains = 1});
  const FaultUniverse u(nl);
  FaultList fl(u);
  const ScanAtpgResult r = generate_scan_tests(nl, chains, u, fl,
                                               ScanAtpgOptions{.random_patterns = 8, .seed = 1, .max_deterministic_targets = 4000, .backtrack_limit = 2000, .pin_constraints = {}});
  EXPECT_GE(r.proven_untestable, 1u);
  const CellId g = nl.net(ab).driver;
  // The redundant s-a-0 is either detected-never nor testable: it must be
  // marked redundant (or remain open if collapsing chose a sibling rep).
  bool redundant_found = false;
  for (FaultId f = 0; f < u.size(); ++f)
    redundant_found |= fl.untestable_kind(f) == UntestableKind::kRedundant;
  EXPECT_TRUE(redundant_found);
  (void)g;
}

TEST(PatternIo, RoundTripPreservesPatterns) {
  Rig rig;
  Rng rng(4);
  std::vector<ScanPattern> pats;
  for (int p = 0; p < 3; ++p) {
    ScanPattern pat;
    pat.pi[rig.soc->netlist.find_input("rstn")] = rng.next_bool();
    pat.pi[rig.soc->netlist.find_input("instr_i3")] = rng.next_bool();
    for (const ScanChain& chain : rig.chains.chains) {
      std::vector<bool> bits(chain.elements.size());
      for (std::size_t k = 0; k < bits.size(); ++k) bits[k] = rng.next_bool();
      pat.chain_state.push_back(std::move(bits));
    }
    pats.push_back(std::move(pat));
  }
  const std::string text = write_patterns(rig.soc->netlist, pats);
  const auto back = read_patterns(rig.soc->netlist, text);
  ASSERT_EQ(back.size(), pats.size());
  for (std::size_t p = 0; p < pats.size(); ++p) {
    EXPECT_EQ(back[p].pi, pats[p].pi) << p;
    EXPECT_EQ(back[p].chain_state, pats[p].chain_state) << p;
  }
}

TEST(PatternIo, ReplayedPatternDetectsSameFault) {
  Rig rig;
  Podem podem(rig.soc->netlist, *rig.universe, {.backtrack_limit = 20000});
  // Find a testable fault and its pattern.
  FaultId target = 0;
  ScanPattern pat;
  bool found = false;
  for (FaultId f = 100; f < rig.universe->size() && !found; f += 17) {
    const AtpgResult r = podem.run(f);
    if (r.outcome == AtpgOutcome::kTestFound) {
      target = f;
      pat = scan_pattern_from_atpg(rig.soc->netlist, rig.chains, *r.pattern);
      found = true;
    }
  }
  ASSERT_TRUE(found);
  const std::string text = write_patterns(rig.soc->netlist, {pat});
  const auto back = read_patterns(rig.soc->netlist, text);
  ScanTestRunner runner = rig.make_runner();
  const std::uint64_t d1 =
      runner.run_pattern(std::span(&target, 1), *rig.universe, pat);
  const std::uint64_t d2 =
      runner.run_pattern(std::span(&target, 1), *rig.universe, back[0]);
  EXPECT_EQ(d1 & 1, d2 & 1);
}

TEST(PatternIo, ErrorsCarryLineNumbers) {
  Rig rig;
  try {
    read_patterns(rig.soc->netlist, "pattern 0\n  pi nonexistent 1\nend\n");
    FAIL() << "expected PatternIoError";
  } catch (const PatternIoError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(read_patterns(rig.soc->netlist, "end\n"), PatternIoError);
  EXPECT_THROW(read_patterns(rig.soc->netlist, "pattern 0\n"), PatternIoError);
  EXPECT_THROW(read_patterns(rig.soc->netlist, "pattern 0\n  chain 0 012\nend\n"),
               PatternIoError);
}

}  // namespace
}  // namespace olfui
