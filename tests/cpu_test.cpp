#include <gtest/gtest.h>

#include "cpu/cpu.hpp"
#include "cpu/isa.hpp"
#include "cpu/soc.hpp"

namespace olfui {
namespace {

TEST(Isa, EncodeDecodeRoundTrip) {
  for (int op = 0; op < kNumOpcodes; ++op) {
    Instr i{static_cast<Opcode>(op), 3, 5, 7, 0x1234};
    const Instr back = decode(encode(i));
    EXPECT_EQ(back.op, i.op);
    EXPECT_EQ(back.rd, i.rd);
    EXPECT_EQ(back.rs1, i.rs1);
    EXPECT_EQ(back.rs2, i.rs2);
    EXPECT_EQ(back.imm, i.imm);
  }
}

TEST(Isa, NegativeImmediatesEncodeAs16Bit) {
  Instr i{Opcode::kAddi, 1, 2, 0, -1};
  const Instr back = decode(encode(i));
  EXPECT_EQ(back.imm, 0xFFFF);  // raw field; consumer sign-extends
}

TEST(Isa, DisassembleSmoke) {
  EXPECT_EQ(disassemble(encode({Opcode::kAdd, 1, 2, 3})), "add r1, r2, r3");
  EXPECT_EQ(disassemble(encode({Opcode::kHalt})), "halt");
  EXPECT_EQ(disassemble(encode({Opcode::kLw, 4, 5, 0, 8})), "lw r4, 8(r5)");
}

TEST(Program, LabelsResolveBackwardAndForward) {
  Program p(0x1000);
  p.label("start");
  p.nop();                    // 0x1000
  p.beq(1, 2, "fwd");         // 0x1004 -> target 0x100C: (0x100C-0x1008)/4 = 1
  p.nop();                    // 0x1008
  p.label("fwd");
  p.bne(1, 2, "start");       // 0x100C -> 0x1000
  const auto& words = p.words();
  EXPECT_EQ(decode(words[1]).imm & 0xFFFF, 0x0001);
  EXPECT_EQ(decode(words[3]).imm & 0xFFFF, 0xFFFC);  // -4 words
}

TEST(Program, UndefinedLabelThrows) {
  Program p(0);
  p.beq(0, 0, "nowhere");
  EXPECT_THROW(p.words(), std::runtime_error);
}

TEST(Program, DuplicateLabelThrows) {
  Program p(0);
  p.label("x");
  EXPECT_THROW(p.label("x"), std::runtime_error);
}

class CpuFixture : public ::testing::Test {
 protected:
  // Small BTB keeps the netlist lean; debug/scan exercised elsewhere.
  static SocConfig config() {
    SocConfig cfg;
    cfg.with_debug = false;
    cfg.with_scan = false;
    cfg.cpu.btb_entries = 2;
    return cfg;
  }

  /// Runs `p` to HALT and returns the simulator for state inspection.
  static std::unique_ptr<SocSimulator> run(const Soc& soc, Program& p,
                                           int max_cycles = 2000) {
    auto sim = std::make_unique<SocSimulator>(soc);
    sim->load_program(p);
    sim->run(max_cycles);
    return sim;
  }
};

TEST_F(CpuFixture, NetlistIsValid) {
  auto soc = build_soc(config());
  EXPECT_TRUE(soc->netlist.validate().empty());
  const NetlistStats s = soc->netlist.stats();
  EXPECT_GT(s.flops, 400u);   // regfile + pipeline + BTB + bus unit
  EXPECT_GT(s.gates, 3000u);
}

TEST_F(CpuFixture, HaltsOnHaltInstruction) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.nop();
  p.halt();
  auto sim = run(*soc, p);
  EXPECT_TRUE(sim->halted());
}

TEST_F(CpuFixture, AluImmediateAndRegisterOps) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.li(0, 0);
  p.li(1, 100);
  p.addi(2, 1, 23);      // r2 = 123
  p.add(3, 2, 1);        // r3 = 223
  p.sub(4, 3, 1);        // r4 = 123
  p.li(5, 0xF0F0);
  p.andi(6, 5, 0xFF00);  // r6 = 0xF000
  p.ori(6, 6, 0x000F);   // r6 = 0xF00F
  p.xori(6, 6, 0x0FF0);  // r6 = 0xFFFF
  p.halt();
  auto sim = run(*soc, p);
  ASSERT_TRUE(sim->halted());
  EXPECT_EQ(sim->gpr(2), 123u);
  EXPECT_EQ(sim->gpr(3), 223u);
  EXPECT_EQ(sim->gpr(4), 123u);
  EXPECT_EQ(sim->gpr(6), 0xFFFFu);
}

TEST_F(CpuFixture, LuiBuildsUpper16) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.lui(1, 0x4000);
  p.ori(1, 1, 0x1234);
  p.halt();
  auto sim = run(*soc, p);
  EXPECT_EQ(sim->gpr(1), 0x40001234u);
}

TEST_F(CpuFixture, SignExtensionOfAddiImmediate) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.li(1, 10);
  p.addi(1, 1, -3);
  p.li(2, 0);
  p.addi(2, 2, -1);  // r2 = 0xFFFFFFFF
  p.halt();
  auto sim = run(*soc, p);
  EXPECT_EQ(sim->gpr(1), 7u);
  EXPECT_EQ(sim->gpr(2), 0xFFFFFFFFu);
}

TEST_F(CpuFixture, SltuComparesUnsigned) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.li(1, 5);
  p.li(2, 0xFFFFFFFF);
  p.sltu(3, 1, 2);  // 5 < huge -> 1
  p.sltu(4, 2, 1);  // huge < 5 -> 0
  p.sltu(5, 1, 1);  // equal -> 0
  p.halt();
  auto sim = run(*soc, p);
  EXPECT_EQ(sim->gpr(3), 1u);
  EXPECT_EQ(sim->gpr(4), 0u);
  EXPECT_EQ(sim->gpr(5), 0u);
}

TEST_F(CpuFixture, ShiftsByRegisterAmount) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.li(1, 0x00000081);
  p.li(2, 4);
  p.sll(3, 1, 2);  // 0x810
  p.srl(4, 1, 2);  // 0x8
  p.li(2, 31);
  p.sll(5, 1, 2);  // bit0 -> bit31
  p.halt();
  auto sim = run(*soc, p);
  EXPECT_EQ(sim->gpr(3), 0x810u);
  EXPECT_EQ(sim->gpr(4), 0x8u);
  EXPECT_EQ(sim->gpr(5), 0x80000000u);
}

TEST_F(CpuFixture, StoreThenLoadRoundTrip) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(soc->config.ram_base);
  p.li(7, ram);
  p.li(1, 0xCAFEBABE);
  p.sw(1, 7, 0x10);
  p.lw(2, 7, 0x10);
  p.halt();
  auto sim = run(*soc, p);
  EXPECT_EQ(sim->ram_word(ram + 0x10), 0xCAFEBABEu);
  EXPECT_EQ(sim->gpr(2), 0xCAFEBABEu);
}

TEST_F(CpuFixture, LoadFromFlashReadsCode) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.li(1, static_cast<std::uint32_t>(soc->config.flash_base));
  p.lw(2, 1, 0);  // first instruction word of this very program
  p.halt();
  auto sim = run(*soc, p);
  EXPECT_EQ(sim->gpr(2), p.words()[0]);
}

TEST_F(CpuFixture, TakenAndNotTakenBranches) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.li(0, 0);
  p.li(1, 1);
  p.li(2, 0);
  p.beq(1, 0, "bad");   // not taken
  p.addi(2, 2, 5);
  p.bne(1, 0, "good");  // taken
  p.label("bad");
  p.addi(2, 2, 100);
  p.label("good");
  p.halt();
  auto sim = run(*soc, p);
  EXPECT_EQ(sim->gpr(2), 5u);
}

TEST_F(CpuFixture, LoopExecutesExactTripCount) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.li(0, 0);
  p.li(1, 10);
  p.li(2, 0);
  p.label("loop");
  p.addi(2, 2, 3);
  p.addi(1, 1, -1);
  p.bne(1, 0, "loop");
  p.halt();
  auto sim = run(*soc, p);
  EXPECT_EQ(sim->gpr(2), 30u);
  EXPECT_EQ(sim->gpr(1), 0u);
}

TEST_F(CpuFixture, JalLinksAndJrReturns) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.li(0, 0);
  p.li(2, 0);
  p.jal(5, "sub");
  p.addi(2, 2, 1);  // after return
  p.halt();
  p.label("sub");
  p.addi(2, 2, 10);
  p.jr(5);
  auto sim = run(*soc, p);
  ASSERT_TRUE(sim->halted());
  EXPECT_EQ(sim->gpr(2), 11u);
}

TEST_F(CpuFixture, BtbSpeedsUpHotLoop) {
  auto soc = build_soc(config());
  Program p1(soc->config.cpu.reset_vector);
  p1.li(0, 0);
  p1.li(1, 50);
  p1.li(2, 0);
  p1.label("loop");
  p1.addi(2, 2, 1);
  p1.addi(1, 1, -1);
  p1.bne(1, 0, "loop");
  p1.halt();
  auto sim = std::make_unique<SocSimulator>(*soc);
  sim->load_program(p1);
  const int cycles = sim->run(5000);
  ASSERT_TRUE(sim->halted());
  EXPECT_EQ(sim->gpr(2), 50u);
  // With a trained BTB the loop back-edge stops costing a redirect bubble,
  // so the run must beat the 4-cycles-per-iteration no-BTB bound.
  EXPECT_LT(cycles, 50 * 4);
}

TEST_F(CpuFixture, RegisterFileHoldsAllEight) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  for (int r = 0; r < 8; ++r) p.li(r, 0x1000u + static_cast<std::uint32_t>(r));
  p.halt();
  auto sim = run(*soc, p);
  for (int r = 0; r < 8; ++r)
    EXPECT_EQ(sim->gpr(r), 0x1000u + static_cast<std::uint32_t>(r)) << r;
}

TEST_F(CpuFixture, ResetVectorRespected) {
  SocConfig cfg = config();
  cfg.cpu.reset_vector = 0x0007'8100;
  auto soc = build_soc(cfg);
  Program p(0x78100);
  p.li(1, 77);
  p.halt();
  auto sim = run(*soc, p);
  ASSERT_TRUE(sim->halted());
  EXPECT_EQ(sim->gpr(1), 77u);
}

TEST_F(CpuFixture, SocWithDebugAndScanStillExecutes) {
  SocConfig cfg = config();
  cfg.with_debug = true;
  cfg.with_scan = true;
  auto soc = build_soc(cfg);
  EXPECT_TRUE(soc->netlist.validate().empty());
  Program p(soc->config.cpu.reset_vector);
  p.li(0, 0);
  p.li(1, 6);
  p.li(2, 1);
  p.label("l");
  p.add(2, 2, 2);
  p.addi(1, 1, -1);
  p.bne(1, 0, "l");
  p.halt();
  auto sim = run(*soc, p);
  ASSERT_TRUE(sim->halted());
  EXPECT_EQ(sim->gpr(2), 64u);
}

TEST_F(CpuFixture, LoadUseBackToBack) {
  // The LW stalls one cycle; the instruction immediately after it must see
  // the loaded value through the register file.
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(soc->config.ram_base);
  p.li(7, ram);
  p.li(1, 41);
  p.sw(1, 7, 0);
  p.lw(2, 7, 0);
  p.addi(3, 2, 1);   // immediate consumer of the load
  p.add(4, 2, 2);    // and a second one
  p.halt();
  auto sim = run(*soc, p);
  ASSERT_TRUE(sim->halted());
  EXPECT_EQ(sim->gpr(2), 41u);
  EXPECT_EQ(sim->gpr(3), 42u);
  EXPECT_EQ(sim->gpr(4), 82u);
}

TEST_F(CpuFixture, BackToBackLoads) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(soc->config.ram_base);
  p.li(7, ram);
  p.li(1, 11);
  p.li(2, 22);
  p.sw(1, 7, 0);
  p.sw(2, 7, 4);
  p.lw(3, 7, 0);
  p.lw(4, 7, 4);
  p.add(5, 3, 4);
  p.halt();
  auto sim = run(*soc, p);
  EXPECT_EQ(sim->gpr(5), 33u);
}

TEST_F(CpuFixture, HaltQuietsTheBus) {
  // After HALT the bus strobes must stay deasserted (the checker in the
  // field relies on a quiet bus from a halted core).
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(soc->config.ram_base);
  p.li(7, ram);
  p.li(1, 1);
  p.sw(1, 7, 0);
  p.halt();
  SocSimulator sim(*soc);
  sim.load_program(p);
  sim.run(2000);
  ASSERT_TRUE(sim.halted());
  // Keep clocking past the halt: no further bus activity.
  for (int i = 0; i < 5; ++i) {
    sim.sim().clock();
    EXPECT_NE(sim.sim().value(soc->cpu.bwr), Logic::V1);
    EXPECT_NE(sim.sim().value(soc->cpu.brd), Logic::V1);
  }
}

TEST_F(CpuFixture, JrWithChangingTargetOverridesStaleBtb) {
  // Train the BTB with one JR target, then change the register: the stale
  // prediction must be corrected and the architectural result stay right.
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.li(0, 0);
  p.li(2, 0);
  p.li(1, 2);       // two passes
  p.label("again");
  p.jal(5, "hop");  // first pass returns here; trains BTB for the JR
  p.addi(2, 2, 1);
  p.addi(1, 1, -1);
  p.bne(1, 0, "again");
  p.halt();
  p.label("hop");
  p.addi(2, 2, 10);
  p.jr(5);          // same JR, different link on each call? same site/target
  auto sim = run(*soc, p);
  ASSERT_TRUE(sim->halted());
  EXPECT_EQ(sim->gpr(2), 22u);
}

TEST_F(CpuFixture, MulInstructionEndToEnd) {
  SocConfig cfg = config();
  cfg.cpu.with_multiplier = true;
  auto soc = build_soc(cfg);
  Program p(cfg.cpu.reset_vector);
  p.li(1, 1234);
  p.li(2, 5678);
  p.mul(3, 1, 2);
  p.li(4, 0x10001);
  p.mul(5, 4, 4);  // 0x10001^2 = 0x2_0002_0001 -> low 32: 0x00020001
  p.halt();
  auto sim = run(*soc, p);
  EXPECT_EQ(sim->gpr(3), 1234u * 5678u);
  EXPECT_EQ(sim->gpr(5), 0x00020001u);
}

TEST_F(CpuFixture, StoreOutsideMapIsIgnored) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.li(7, 0x70000000);  // unmapped
  p.li(1, 99);
  p.sw(1, 7, 0);
  p.li(7, static_cast<std::uint32_t>(soc->config.ram_base));
  p.sw(1, 7, 0);
  p.halt();
  auto sim = run(*soc, p);
  ASSERT_TRUE(sim->halted());
  EXPECT_EQ(sim->ram_word(0x70000000), 0u);
  EXPECT_EQ(sim->ram_word(soc->config.ram_base), 99u);
}

TEST_F(CpuFixture, RunawayProgramHitsCycleLimit) {
  // No HALT anywhere: the core slides through NOPs (empty flash) forever
  // and the runner must stop at the cycle limit without halting.
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.li(1, 7);  // a couple of instructions, then NOP slide
  SocSimulator sim(*soc);
  sim.load_program(p);
  const int cycles = sim.run(100);
  EXPECT_EQ(cycles, 100);
  EXPECT_FALSE(sim.halted());
  EXPECT_EQ(sim.gpr(1), 7u);
}

TEST_F(CpuFixture, PcStaysWordAlignedAndInFlashWindow) {
  auto soc = build_soc(config());
  Program p(soc->config.cpu.reset_vector);
  p.li(0, 0);
  p.li(1, 3);
  p.label("l");
  p.addi(1, 1, -1);
  p.bne(1, 0, "l");
  p.halt();
  SocSimulator sim(*soc);
  sim.load_program(p);
  // Step manually and check every fetch address.
  auto& s = sim.sim();
  s.power_on();
  s.set_input(soc->cpu.rstn, false);
  s.set_input_word(soc->cpu.instr_in, 0);
  s.set_input_word(soc->cpu.rdata_in, 0);
  s.eval();
  s.clock();
  s.clock();
  for (int c = 0; c < 30; ++c) {
    s.set_input(soc->cpu.rstn, true);
    s.eval();
    const std::uint64_t pc = s.read_word(soc->cpu.iaddr);
    EXPECT_EQ(pc & 3, 0u) << c;
    EXPECT_GE(pc, soc->config.flash_base) << c;
    EXPECT_LT(pc, soc->config.flash_base + soc->config.flash_size) << c;
    s.set_input_word(soc->cpu.instr_in, sim.flash().read(pc));
    s.eval();
    s.set_input_word(soc->cpu.rdata_in, 0);
    s.eval();
    if (s.value(soc->cpu.halted) == Logic::V1) break;
    s.clock();
  }
}

TEST_F(CpuFixture, FlashImageOutOfRangeReadsNop) {
  FlashImage img(0x1000, 0x100);
  img.load(0x1000, {0xAABBCCDD});
  EXPECT_EQ(img.read(0x1000), 0xAABBCCDDu);
  EXPECT_EQ(img.read(0x1002), 0xAABBCCDDu);  // word-aligned lookup
  EXPECT_EQ(img.read(0x2000), 0u);
}

}  // namespace
}  // namespace olfui
