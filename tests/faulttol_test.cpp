// Fault-tolerance suite for the supervised subprocess fleet: every
// recovery path — crash, stall, truncated reply, fleet collapse — must
// complete the campaign with a detection payload and deterministic JSON
// byte-identical to an undisturbed in-process run, while the recovery
// odometer (ExecutorHealth / RuntimeStats) records what happened. Chaos
// is injected deterministically through the worker's --chaos flag (see
// ChaosSpec in executor.hpp), so each scenario is a reproducible unit
// test, not a flake lottery.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "campaign/json.hpp"
#include "campaign/report.hpp"
#include "campaign/scheduler.hpp"
#include "cpu/soc.hpp"
#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "sbst/sbst.hpp"

namespace olfui {
namespace {

// ---------------------------------------------------------------------------
// Chaos spec grammar.

TEST(ChaosSpec, ParsesEveryShape) {
  const ChaosSpec none = chaos_spec_from_string("");
  EXPECT_EQ(none.mode, ChaosSpec::Mode::kNone);

  const ChaosSpec crash = chaos_spec_from_string("7:crash@3");
  EXPECT_EQ(crash.mode, ChaosSpec::Mode::kCrash);
  EXPECT_EQ(crash.seed, 7u);
  EXPECT_EQ(crash.shard, 3);
  EXPECT_FALSE(crash.all_incarnations);

  const ChaosSpec all = chaos_spec_from_string("5:stall@2:all");
  EXPECT_EQ(all.mode, ChaosSpec::Mode::kStall);
  EXPECT_EQ(all.shard, 2);
  EXPECT_TRUE(all.all_incarnations);

  EXPECT_EQ(chaos_spec_from_string("1:trunc").mode, ChaosSpec::Mode::kTrunc);

  // No explicit index: one is drawn from the seeded RNG — reproducible
  // (same seed, same shard) and within the documented [1, 4] window.
  const ChaosSpec a = chaos_spec_from_string("42:crash");
  const ChaosSpec b = chaos_spec_from_string("42:crash");
  EXPECT_EQ(a.shard, b.shard);
  EXPECT_GE(a.shard, 1);
  EXPECT_LE(a.shard, 4);
  EXPECT_NE(chaos_spec_from_string("42:crash").shard, 0);
}

TEST(ChaosSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"crash", ":crash", "7", "7:", "x:crash",
                          "7:bogus", "7:crash@", "7:crash@0", "7:crash@x",
                          "7:crash:some"}) {
    EXPECT_THROW(chaos_spec_from_string(bad), std::invalid_argument) << bad;
  }
}

// ---------------------------------------------------------------------------
// Wire-format errors carry real byte offsets.

TEST(ShardRequestParsing, MalformedFieldErrorsPointIntoTheLine) {
  // Render a well-formed grade request, corrupt one deep field, and check
  // the JsonError names an offset inside the line — a coordinator log
  // quoting "at offset N" must point at the offending bytes, not 0.
  std::vector<FaultId> targets{10, 11, 12, 13};
  const BatchPlan plan = BatchPlan::fixed(targets.size(), 2);
  std::vector<FaultId> planned(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i)
    planned[i] = targets[plan.order[i]];
  std::vector<std::uint32_t> shards(plan.batches());
  std::iota(shards.begin(), shards.end(), 0u);
  CampaignTest test;
  test.name = "t";
  test.spec = Json::object();
  const ShardWork work{plan,   targets, planned,
                       shards, test,    FaultModel::kStuckAt,
                       100,    {},      0};
  const std::string line = shard_request_to_json(work).dump(0);

  // The pristine line round-trips.
  const ShardRequest req = shard_request_from_json(Json::parse(line));
  EXPECT_EQ(req.test, "t");
  EXPECT_EQ(req.planned, planned);

  const auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string s = line;
    const auto pos = s.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    s.replace(pos, from.size(), to);
    try {
      shard_request_from_json(Json::parse(s));
      FAIL() << "corruption " << from << " -> " << to << " was accepted";
    } catch (const JsonError& e) {
      EXPECT_GT(e.offset(), 0u) << e.what();
    }
  };
  corrupt("\"stuck_at\"", "\"bogus_model\"");  // unknown enum value
  corrupt("\"test\":\"t\"", "\"test\":42");    // type mismatch
}

// ---------------------------------------------------------------------------
// Recovery scenarios on the real SBST workload, driven through
// olfui_cli --worker with deterministic chaos. Each compares against an
// undisturbed in-process run of the identical campaign.

struct SbstRig {
  std::unique_ptr<Soc> soc = build_soc({});
  std::vector<SbstProgram> suite;
  std::unique_ptr<FaultUniverse> u;
  std::vector<CampaignTest> tests;

  explicit SbstRig(std::size_t keep_tests) {
    suite = build_sbst_suite(soc->config);
    if (suite.size() > keep_tests)
      suite.erase(suite.begin() + static_cast<std::ptrdiff_t>(keep_tests),
                  suite.end());
    u = std::make_unique<FaultUniverse>(soc->netlist);
    tests = build_sbst_campaign_tests(*soc, suite, *u);
  }
};

CampaignResult run_campaign(const FaultUniverse& u,
                            std::span<const CampaignTest> tests,
                            const CampaignOptions& opts) {
  FaultList fl(u);
  return CampaignEngine(u, opts).run(fl, tests);
}

std::vector<std::string> chaos_worker(const std::string& spec) {
  return {"./olfui_cli", "--worker", "--chaos", spec};
}

#define SKIP_WITHOUT_CLI()                                      \
  do {                                                          \
    if (::access("./olfui_cli", X_OK) != 0)                     \
      GTEST_SKIP() << "./olfui_cli not in the working directory"; \
  } while (0)

TEST(FaultTolerance, KilledWorkerShardsAreReissuedBitIdentically) {
  SKIP_WITHOUT_CLI();
  const SbstRig rig(2);
  const CampaignOptions base{.threads = 2, .target_limit = 200};
  const CampaignResult clean = run_campaign(*rig.u, rig.tests, base);
  const std::string clean_json =
      campaign_result_to_json_string(clean, 2, false);

  // Both workers SIGKILL themselves on the second shard they start (chaos
  // arms only in incarnation 0, so respawns recover); their in-flight
  // shards must be re-queued and the campaign must not notice.
  FleetOptions fleet;
  fleet.workers = 2;
  fleet.backoff_base = 0.01;  // keep the unit test snappy
  const auto exec = std::make_shared<SubprocessExecutor>(
      chaos_worker("7:crash@2"), fleet);
  CampaignOptions sub = base;
  sub.executor = exec;
  const CampaignResult r = run_campaign(*rig.u, rig.tests, sub);

  EXPECT_GT(clean.total_new_detections, 0u);
  EXPECT_EQ(r, clean);
  EXPECT_EQ(r.detected, clean.detected);
  EXPECT_EQ(campaign_result_to_json_string(r, 2, false), clean_json);

  const ExecutorHealth h = exec->health();
  EXPECT_GT(h.respawns, 0u);
  EXPECT_GT(h.shard_reissues, 0u);
  EXPECT_EQ(h.degraded_shards, 0u);
  // The run's RuntimeStats carry the same odometer delta.
  EXPECT_EQ(r.stats.respawns, h.respawns);
  EXPECT_EQ(r.stats.shard_reissues, h.shard_reissues);
  EXPECT_EQ(r.stats.executor, "subprocess");
}

TEST(FaultTolerance, StalledWorkerTripsTheDeadlineAndIsReplaced) {
  SKIP_WITHOUT_CLI();
  const SbstRig rig(1);
  // An explicit (short) per-shard deadline: the stalled worker heartbeats
  // its first shard, then wedges; only the progress rule can catch it.
  const CampaignOptions base{
      .threads = 2, .target_limit = 130, .shard_timeout = 1.5};
  const CampaignResult clean = run_campaign(*rig.u, rig.tests, base);

  FleetOptions fleet;
  fleet.workers = 2;
  fleet.backoff_base = 0.01;
  const auto exec = std::make_shared<SubprocessExecutor>(
      chaos_worker("5:stall@1"), fleet);
  CampaignOptions sub = base;
  sub.executor = exec;
  const CampaignResult r = run_campaign(*rig.u, rig.tests, sub);

  EXPECT_EQ(r, clean);
  EXPECT_EQ(campaign_result_to_json_string(r, 2, false),
            campaign_result_to_json_string(clean, 2, false));

  const ExecutorHealth h = exec->health();
  EXPECT_GT(h.timeouts, 0u);
  EXPECT_GT(h.shard_reissues, 0u);
  EXPECT_GT(h.respawns, 0u);
  EXPECT_GT(r.stats.timeouts, 0u);
}

TEST(FaultTolerance, TruncatedReplyLineIsDetectedAndReissued) {
  SKIP_WITHOUT_CLI();
  const SbstRig rig(2);
  const CampaignOptions base{.threads = 2, .target_limit = 200};
  const CampaignResult clean = run_campaign(*rig.u, rig.tests, base);

  // Workers emit half a shard reply and exit 0: EOF with a nonempty line
  // buffer. The partial line must be discarded — never parsed — and the
  // announced shard regraded elsewhere.
  FleetOptions fleet;
  fleet.workers = 2;
  fleet.backoff_base = 0.01;
  const auto exec = std::make_shared<SubprocessExecutor>(
      chaos_worker("3:trunc@1"), fleet);
  CampaignOptions sub = base;
  sub.executor = exec;
  const CampaignResult r = run_campaign(*rig.u, rig.tests, sub);

  EXPECT_EQ(r, clean);
  EXPECT_EQ(campaign_result_to_json_string(r, 2, false),
            campaign_result_to_json_string(clean, 2, false));

  const ExecutorHealth h = exec->health();
  EXPECT_GT(h.respawns, 0u);
  EXPECT_GT(h.shard_reissues, 0u);
  EXPECT_EQ(h.degraded_shards, 0u);
}

TEST(FaultTolerance, FleetCollapseDegradesToInProcessGrading) {
  SKIP_WITHOUT_CLI();
  const SbstRig rig(1);
  const CampaignOptions base{.threads = 2, .target_limit = 130};
  const CampaignResult clean = run_campaign(*rig.u, rig.tests, base);

  // ":all" keeps chaos armed across respawns: the lone worker crashes on
  // its first shard in every incarnation, the respawn budget burns down,
  // and the fleet collapses below min_workers. The campaign must degrade
  // to in-process grading — loudly, but without throwing and without
  // changing a single detection bit.
  FleetOptions fleet;
  fleet.workers = 1;
  fleet.max_respawns = 1;
  fleet.min_workers = 1;
  fleet.backoff_base = 0.01;
  const auto exec = std::make_shared<SubprocessExecutor>(
      chaos_worker("9:crash@1:all"), fleet);
  CampaignOptions sub = base;
  sub.executor = exec;
  const CampaignResult r = run_campaign(*rig.u, rig.tests, sub);

  EXPECT_EQ(r, clean);
  EXPECT_EQ(r.detected, clean.detected);
  EXPECT_EQ(campaign_result_to_json_string(r, 2, false),
            campaign_result_to_json_string(clean, 2, false));

  const ExecutorHealth h = exec->health();
  EXPECT_GT(h.degraded_shards, 0u);
  EXPECT_GT(h.shard_reissues, 0u);
  EXPECT_EQ(h.respawns, 1u);  // the whole budget, spent
  EXPECT_GT(r.stats.degraded_shards, 0u);
}

}  // namespace
}  // namespace olfui
