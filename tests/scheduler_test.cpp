// Scheduling-seam suite: the static cone analysis against a brute-force
// BFS reachability oracle on randomized netlists, the BatchPlan contract,
// the three shipped policies' plan shapes, and the campaign-level
// guarantee that batch formation never changes detection results — the
// same rig graded under fixed / cone / adaptive plans, across thread
// counts and both kernels, must produce the bit-identical detection set.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "campaign/scheduler.hpp"
#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "fsim/fsim.hpp"
#include "netlist/wordops.hpp"
#include "sim/packed.hpp"
#include "util/rng.hpp"

namespace olfui {
namespace {

// ---------------------------------------------------------------------------
// Random netlist generation (the eventsim_test recipe: inputs and declared
// flops first so feedback paths exist, then a DAG of random gates, then
// outputs and the flop D connections).

struct RandomDesign {
  Netlist nl{"rand"};
  std::vector<NetId> input_nets;
  std::vector<CellId> output_cells;
};

RandomDesign random_design(Rng& rng, int n_inputs, int n_flops, int n_gates) {
  RandomDesign d;
  std::vector<NetId> nets;
  for (int i = 0; i < n_inputs; ++i) {
    const NetId n = d.nl.add_input("in" + std::to_string(i));
    d.input_nets.push_back(n);
    nets.push_back(n);
  }
  nets.push_back(d.nl.add_cell(CellType::kTie0, "u_t0", d.nl.add_net("t0"), {}));
  nets.push_back(d.nl.add_cell(CellType::kTie1, "u_t1", d.nl.add_net("t1"), {}));
  const NetId rstn = d.input_nets[0];

  std::vector<CellId> flops;
  for (int f = 0; f < n_flops; ++f) {
    const NetId q = d.nl.add_net("q" + std::to_string(f));
    const CellId cell =
        rng.next_bool()
            ? d.nl.add_cell(CellType::kDffR, "u_ff" + std::to_string(f), q,
                            {kInvalidId, rstn})
            : d.nl.add_cell(CellType::kDff, "u_ff" + std::to_string(f), q,
                            {kInvalidId});
    flops.push_back(cell);
    nets.push_back(q);
  }

  const CellType kGateTypes[] = {
      CellType::kBuf,   CellType::kNot,   CellType::kAnd2,  CellType::kAnd3,
      CellType::kOr2,   CellType::kOr3,   CellType::kNand2, CellType::kNor2,
      CellType::kXor2,  CellType::kXnor2, CellType::kMux2};
  for (int g = 0; g < n_gates; ++g) {
    const CellType t =
        kGateTypes[rng.next_below(sizeof kGateTypes / sizeof kGateTypes[0])];
    std::vector<NetId> ins(static_cast<std::size_t>(num_inputs(t)));
    for (NetId& in : ins) in = nets[rng.next_below(nets.size())];
    const NetId out = d.nl.add_net("g" + std::to_string(g));
    d.nl.add_cell(t, "u_g" + std::to_string(g), out, std::move(ins));
    nets.push_back(out);
  }

  for (CellId f : flops)
    d.nl.connect_input(f, 0, nets[rng.next_below(nets.size())]);

  for (int o = 0; o < 6; ++o)
    d.output_cells.push_back(d.nl.add_output(
        "out" + std::to_string(o), nets[rng.next_below(nets.size())]));

  EXPECT_TRUE(d.nl.validate().empty());
  return d;
}

/// Brute-force oracle: every cell reachable from `net` through the
/// netlist fanout — combinational readers, flops (via Q), output ports.
std::vector<CellId> bfs_reachable(const Netlist& nl, NetId net) {
  std::vector<char> cell_seen(nl.num_cells(), 0), net_seen(nl.num_nets(), 0);
  std::vector<NetId> frontier{net};
  net_seen[net] = 1;
  std::vector<CellId> reachable;
  while (!frontier.empty()) {
    const NetId n = frontier.back();
    frontier.pop_back();
    for (const Pin& p : nl.net(n).fanout) {
      if (cell_seen[p.cell]) continue;
      cell_seen[p.cell] = 1;
      reachable.push_back(p.cell);
      const NetId out = nl.cell(p.cell).out;
      if (out != kInvalidId && !net_seen[out]) {
        net_seen[out] = 1;
        frontier.push_back(out);
      }
    }
  }
  return reachable;
}

// ---------------------------------------------------------------------------
// ConeAnalysis vs the BFS oracle

TEST(ConeAnalysis, SignaturesCoverBruteForceReachability) {
  // The Bloom contract: a reachable cell's bit is ALWAYS in the net's
  // signature (false positives allowed, false negatives never) — at every
  // supported filter width.
  for (std::uint64_t seed = 31; seed <= 35; ++seed) {
    Rng rng(seed);
    RandomDesign d = random_design(rng, 8, 14, 120);
    const auto topo = PackedTopology::build(d.nl);
    for (const int width : {64, 128, 256}) {
      const ConeAnalysis ca = ConeAnalysis::build(*topo, width);
      ASSERT_EQ(ca.net_sig.size(), d.nl.num_nets());
      ASSERT_EQ(ca.sig_bits, width);
      EXPECT_GT(ca.rounds, 0);
      for (NetId n = 0; n < d.nl.num_nets(); ++n) {
        for (CellId c : bfs_reachable(d.nl, n))
          ASSERT_TRUE(
              ca.net_sig[n].intersects(ConeAnalysis::cone_bit(c, width)))
              << "seed " << seed << " width " << width << ": cell "
              << d.nl.cell(c).name << " reachable from net "
              << d.nl.net(n).name << " but missing from its cone signature";
      }
    }
  }
}

TEST(ConeAnalysis, UnreadNetHasEmptySignature) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = w.and2(a, b, "y");
  nl.add_output("o", y);
  const NetId dangling = nl.add_input("unused");
  const auto topo = PackedTopology::build(nl);
  const ConeAnalysis ca = ConeAnalysis::build(*topo);
  EXPECT_FALSE(ca.net_sig[dangling].any());
  EXPECT_TRUE(ca.net_sig[a].any());
  // The AND's inputs see the gate and the output port downstream.
  const CellId gate = nl.net(y).driver;
  EXPECT_TRUE(ca.net_sig[a].intersects(ConeAnalysis::cone_bit(gate)));
}

TEST(ConeAnalysis, Width64MatchesHistoricalScalarFilter) {
  // The default width must reproduce the original single-word filter
  // exactly (same hash, same top-6-bit bucket), so width-64 plans —
  // and therefore cached plan fingerprints — never shift.
  for (CellId c : {CellId{0}, CellId{1}, CellId{17}, CellId{12345}}) {
    const std::uint64_t h = static_cast<std::uint64_t>(c) *
                            0x9E3779B97F4A7C15ULL;
    const ConeSig sig = ConeAnalysis::cone_bit(c, 64);
    EXPECT_EQ(sig.w[0], 1ULL << (h >> 58)) << "cell " << c;
    EXPECT_EQ(sig.w[1], 0u);
    EXPECT_EQ(sig.w[2], 0u);
    EXPECT_EQ(sig.w[3], 0u);
    EXPECT_EQ(sig.popcount(), 1);
  }
}

TEST(ConeAnalysis, WiderFiltersSaturateLess) {
  // The point of the width knob: on a design big enough to saturate the
  // 64-bucket filter, doubling the width strictly lowers the mean
  // occupied fraction (fewer collisions), while width_supported gates
  // the valid set and build() rejects the rest.
  EXPECT_TRUE(ConeAnalysis::width_supported(64));
  EXPECT_TRUE(ConeAnalysis::width_supported(128));
  EXPECT_TRUE(ConeAnalysis::width_supported(256));
  EXPECT_FALSE(ConeAnalysis::width_supported(32));
  EXPECT_FALSE(ConeAnalysis::width_supported(96));
  EXPECT_FALSE(ConeAnalysis::width_supported(512));

  Rng rng(41);
  RandomDesign d = random_design(rng, 8, 20, 400);
  const auto topo = PackedTopology::build(d.nl);
  EXPECT_THROW(ConeAnalysis::build(*topo, 96), std::invalid_argument);

  double prev_fraction = 2.0;
  for (const int width : {64, 128, 256}) {
    const ConeAnalysis ca = ConeAnalysis::build(*topo, width);
    double occupied = 0;
    std::size_t nonempty = 0;
    for (const ConeSig& sig : ca.net_sig) {
      if (!sig.any()) continue;
      ++nonempty;
      occupied += static_cast<double>(sig.popcount()) / width;
    }
    ASSERT_GT(nonempty, 0u);
    const double fraction = occupied / static_cast<double>(nonempty);
    EXPECT_LT(fraction, prev_fraction) << "width " << width;
    prev_fraction = fraction;
  }
}

// ---------------------------------------------------------------------------
// BatchPlan contract

TEST(BatchPlan, FixedTilesTargetsAndValidates) {
  const BatchPlan plan = BatchPlan::fixed(10, 3);
  EXPECT_EQ(plan.batches(), 4u);
  EXPECT_EQ(plan.batch_start, (std::vector<std::uint32_t>{0, 3, 6, 9, 10}));
  EXPECT_NO_THROW(plan.validate(10, 63));

  const BatchPlan empty = BatchPlan::fixed(0, 63);
  EXPECT_EQ(empty.batches(), 0u);
  EXPECT_NO_THROW(empty.validate(0, 63));
}

TEST(BatchPlan, ValidateRejectsMalformedPlans) {
  BatchPlan plan = BatchPlan::fixed(8, 4);
  plan.order[3] = 2;  // duplicate index
  EXPECT_THROW(plan.validate(8, 63), std::invalid_argument);

  plan = BatchPlan::fixed(8, 4);
  plan.batch_start.back() = 7;  // does not tile
  EXPECT_THROW(plan.validate(8, 63), std::invalid_argument);

  plan = BatchPlan::fixed(8, 4);
  EXPECT_THROW(plan.validate(8, 3), std::invalid_argument);  // batch too big
}

// ---------------------------------------------------------------------------
// Policy plan shapes

TEST(Scheduler, ConePlanIsADeterministicPermutationInBatchBounds) {
  Rng rng(7);
  RandomDesign d = random_design(rng, 6, 10, 80);
  const FaultUniverse u(d.nl);
  const ConeScheduler sched(u);
  EXPECT_EQ(sched.name(), "cone");
  EXPECT_EQ(sched.packing(), ConePacking::kGreedyUnion);

  std::vector<FaultId> targets(u.size());
  std::iota(targets.begin(), targets.end(), 0u);
  const ScheduleContext ctx{63, "t"};
  const BatchPlan plan = sched.plan(targets, ctx);
  EXPECT_NO_THROW(plan.validate(targets.size(), 63));
  for (std::size_t b = 0; b < plan.batches(); ++b)
    EXPECT_LE(plan.batch_size(b), 63u);
  // The greedy packer fills every batch to the cap, so the boundaries are
  // exactly the fixed plan's — only the order is rewritten.
  EXPECT_EQ(plan.batch_start, BatchPlan::fixed(targets.size(), 63).batch_start);

  // Pure function of the target list: same inputs, same plan.
  const BatchPlan again = sched.plan(targets, ctx);
  EXPECT_EQ(plan.order, again.order);
  EXPECT_EQ(plan.batch_start, again.batch_start);

  const std::vector<ConeSig> sigs = sched.signatures(targets);

  // Grouping actually happened: equal-cone faults land adjacent. A
  // signature group's run can only break where a batch filled to the cap
  // (the remainder then seeds or joins a later batch), and the group
  // drains sequentially, so its members keep target order globally.
  std::vector<std::vector<std::uint32_t>> positions_by_sig;
  std::map<ConeSig, std::size_t> sig_slot;
  for (std::size_t i = 0; i < plan.order.size(); ++i) {
    const auto [it, inserted] =
        sig_slot.try_emplace(sigs[plan.order[i]], positions_by_sig.size());
    if (inserted) positions_by_sig.emplace_back();
    positions_by_sig[it->second].push_back(static_cast<std::uint32_t>(i));
  }
  const auto is_batch_boundary = [&](std::uint32_t i) {
    return std::find(plan.batch_start.begin(), plan.batch_start.end(), i) !=
           plan.batch_start.end();
  };
  for (const std::vector<std::uint32_t>& pos : positions_by_sig) {
    for (std::size_t j = 1; j < pos.size(); ++j) {
      if (pos[j] != pos[j - 1] + 1)
        ASSERT_TRUE(is_batch_boundary(pos[j - 1] + 1))
            << "signature group split mid-batch at plan position "
            << pos[j - 1] + 1;
      // Target order preserved inside the group.
      ASSERT_LT(plan.order[pos[j - 1]], plan.order[pos[j]]);
    }
  }
}

TEST(Scheduler, RawSortPackingSortsBySignatureStably) {
  Rng rng(7);
  RandomDesign d = random_design(rng, 6, 10, 80);
  const FaultUniverse u(d.nl);
  const ConeScheduler sched(u, nullptr, ConePacking::kRawSort);
  EXPECT_EQ(sched.name(), "cone-raw");
  EXPECT_EQ(sched.packing(), ConePacking::kRawSort);

  std::vector<FaultId> targets(u.size());
  std::iota(targets.begin(), targets.end(), 0u);
  const ScheduleContext ctx{63, "t"};
  const BatchPlan plan = sched.plan(targets, ctx);
  EXPECT_NO_THROW(plan.validate(targets.size(), 63));
  EXPECT_EQ(plan.batch_start, BatchPlan::fixed(targets.size(), 63).batch_start);

  // The baseline packing is a stable sort by raw signature value: plans
  // are globally sorted, equal signatures keep target order.
  const std::vector<ConeSig> sigs = sched.signatures(targets);
  for (std::size_t i = 1; i < plan.order.size(); ++i) {
    EXPECT_FALSE(sigs[plan.order[i]] < sigs[plan.order[i - 1]]) << i;
    if (sigs[plan.order[i - 1]] == sigs[plan.order[i]])
      EXPECT_LT(plan.order[i - 1], plan.order[i]) << i;
  }

  const BatchPlan again = sched.plan(targets, ctx);
  EXPECT_EQ(plan.order, again.order);
}

TEST(Scheduler, BulkSignaturesMatchPerFaultLookup) {
  // The CLI's --dump-schedule path reads signatures through the bulk
  // accessor; it must agree with the per-fault lookup it replaced, so the
  // dump's cone stats and the plan can never disagree.
  Rng rng(11);
  RandomDesign d = random_design(rng, 6, 10, 80);
  const FaultUniverse u(d.nl);
  const ConeScheduler sched(u);
  std::vector<FaultId> targets(u.size());
  std::iota(targets.begin(), targets.end(), 0u);
  const std::vector<ConeSig> bulk = sched.signatures(targets);
  ASSERT_EQ(bulk.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i)
    ASSERT_TRUE(bulk[i] == sched.signature(targets[i]))
        << "fault " << targets[i];
}

TEST(Scheduler, AdaptiveSplitsHotShardsAndFallsBackOnStaleProfiles) {
  // Synthetic profile: one test, four fixed shards, the second ran hot.
  CampaignResult profile;
  CampaignResult::PerTest pt;
  pt.name = "t";
  pt.faults_targeted = 200;
  pt.batches = 4;  // 63 + 63 + 63 + 11
  profile.tests.push_back(pt);
  profile.stats.shard_seconds = {0.01, 0.50, 0.01, 0.01};

  const AdaptiveScheduler sched(profile);
  std::vector<FaultId> targets(200);
  std::iota(targets.begin(), targets.end(), 0u);

  const BatchPlan plan = sched.plan(targets, {63, "t"});
  EXPECT_NO_THROW(plan.validate(targets.size(), 63));
  // The hot shard [63, 126) split in half; order stays the identity.
  EXPECT_EQ(plan.batch_start,
            (std::vector<std::uint32_t>{0, 63, 94, 126, 189, 200}));
  for (std::size_t i = 0; i < plan.order.size(); ++i)
    ASSERT_EQ(plan.order[i], i);

  // Unknown test, or a target count the profile does not match: the plan
  // degrades to fixed, never to something wrong.
  const BatchPlan unknown = sched.plan(targets, {63, "other"});
  EXPECT_EQ(unknown.batch_start, BatchPlan::fixed(200, 63).batch_start);
  std::vector<FaultId> fewer(150);
  std::iota(fewer.begin(), fewer.end(), 0u);
  const BatchPlan stale = sched.plan(fewer, {63, "t"});
  EXPECT_EQ(stale.batch_start, BatchPlan::fixed(150, 63).batch_start);

  // Profile-less adaptive is the fixed plan everywhere.
  const AdaptiveScheduler cold;
  EXPECT_EQ(cold.plan(targets, {63, "t"}).batch_start,
            BatchPlan::fixed(200, 63).batch_start);
}

// ---------------------------------------------------------------------------
// Campaign-level equivalence: the rig from campaign_test, graded under
// every policy x thread count x kernel.

constexpr int kBits = 11;
constexpr int kCycles = 36;

struct CounterRig {
  Netlist nl{"t"};
  NetId en;
  std::vector<CellId> outputs;

  CounterRig() {
    WordOps w(nl, "m");
    en = nl.add_input("en");
    RegWord cnt = w.reg_declare(kBits, "cnt");
    const auto inc = w.add_word(cnt.q, w.constant(1, kBits), w.lit(false), "inc");
    const Bus d = w.mux_word(en, cnt.q, inc.sum, "d");
    w.reg_connect(cnt, d);
    for (int i = 0; i < kBits; ++i)
      outputs.push_back(nl.add_output("o" + std::to_string(i), cnt.q[i]));
  }
};

class CounterEnv : public FsimEnvironment {
 public:
  explicit CounterEnv(NetId en) : en_(en) {}
  void reset(PackedSim& sim) override {
    sim.set_input_all(en_, false);
    sim.eval();
  }
  bool step(PackedSim& sim, int) override {
    sim.set_input_all(en_, true);
    sim.eval();
    return true;
  }

 private:
  NetId en_;
};

class RigBatchRunner final : public FaultBatchRunner {
 public:
  RigBatchRunner(const CounterRig& rig, const FaultUniverse& u,
                 std::shared_ptr<const ReferenceTrace> trace,
                 bool event_driven)
      : env_(rig.en),
        fsim_(rig.nl, u, {.max_cycles = kCycles, .event_driven = event_driven}),
        trace_(std::move(trace)) {
    fsim_.set_observed(rig.outputs);
  }
  LaneMask run_batch(std::span<const FaultId> faults) override {
    return fsim_.run_batch(faults, env_, trace_.get());
  }

 private:
  CounterEnv env_;
  SequentialFaultSimulator fsim_;
  std::shared_ptr<const ReferenceTrace> trace_;
};

CampaignTest make_rig_test(const CounterRig& rig, const FaultUniverse& u,
                           bool event_driven) {
  CounterEnv trace_env(rig.en);
  SequentialFaultSimulator tracer(
      rig.nl, u, {.max_cycles = kCycles, .event_driven = event_driven});
  tracer.set_observed(rig.outputs);
  auto trace = std::make_shared<const ReferenceTrace>(
      tracer.record_reference_trace(trace_env));
  CampaignTest test;
  test.name = "rig";
  test.good_cycles = kCycles;
  test.make_runner = [&rig, &u, trace = std::move(trace), event_driven]() {
    return std::make_unique<RigBatchRunner>(rig, u, trace, event_driven);
  };
  return test;
}

TEST(Scheduler, AllPoliciesProduceIdenticalDetections) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  ASSERT_GT(u.size(), 63u * 4) << "rig too small to shard meaningfully";

  // Reference run: fixed policy, 1 thread, event kernel. Its result also
  // feeds the adaptive profile, exactly like a profile-guided re-run.
  std::vector<CampaignTest> ref_tests;
  ref_tests.push_back(make_rig_test(rig, u, true));
  FaultList ref_fl(u);
  const CampaignResult reference =
      CampaignEngine(u, {.threads = 1}).run(ref_fl, ref_tests);
  EXPECT_GT(reference.total_new_detections, 0u);
  EXPECT_EQ(reference.stats.schedule_policy, "fixed");

  const auto cone = std::make_shared<const ConeScheduler>(u);
  const auto cone_raw =
      std::make_shared<const ConeScheduler>(u, nullptr, ConePacking::kRawSort);
  const auto adaptive = std::make_shared<const AdaptiveScheduler>(reference);
  const std::pair<const char*, std::shared_ptr<const BatchScheduler>>
      policies[] = {{"fixed", nullptr},
                    {"cone", cone},
                    {"cone-raw", cone_raw},
                    {"adaptive", adaptive}};

  for (const auto& [name, scheduler] : policies) {
    for (const bool event_driven : {true, false}) {
      std::vector<CampaignTest> tests;
      tests.push_back(make_rig_test(rig, u, event_driven));
      for (const int threads : {1, 2, 4, 8}) {
        CampaignOptions opts;
        opts.threads = threads;
        opts.scheduler = scheduler;
        FaultList fl(u);
        const CampaignResult r = CampaignEngine(u, opts).run(fl, tests);
        // The whole point of the seam: batch formation is a performance
        // knob — the detection payload never moves.
        EXPECT_EQ(r.detected, reference.detected)
            << "policy=" << name
            << " kernel=" << (event_driven ? "event" : "sweep")
            << " threads=" << threads;
        EXPECT_EQ(r.total_new_detections, reference.total_new_detections);
        EXPECT_EQ(r.classes, reference.classes);
        EXPECT_EQ(r.stats.schedule_policy, scheduler ? name : "fixed");
        // One wall-time slot per planned shard, whatever the plan shape.
        std::size_t shards = 0;
        for (const auto& pt : r.tests) shards += pt.batches;
        EXPECT_EQ(r.stats.shard_seconds.size(), shards);
      }
    }
  }
}

TEST(Scheduler, PolicyLabelRoundTripsThroughJson) {
  CounterRig rig;
  const FaultUniverse u(rig.nl);
  std::vector<CampaignTest> tests;
  tests.push_back(make_rig_test(rig, u, true));
  CampaignOptions opts;
  opts.threads = 2;
  opts.scheduler = std::make_shared<const ConeScheduler>(u);
  FaultList fl(u);
  const CampaignResult r = CampaignEngine(u, opts).run(fl, tests);
  EXPECT_EQ(r.stats.schedule_policy, "cone");
  const CampaignResult back =
      campaign_result_from_json_string(campaign_result_to_json_string(r));
  EXPECT_EQ(back, r);
  EXPECT_EQ(back.stats.schedule_policy, "cone");
}

TEST(Scheduler, BatchPlanJsonReportsSizesAndConeStats) {
  Rng rng(9);
  RandomDesign d = random_design(rng, 6, 8, 60);
  const FaultUniverse u(d.nl);
  const ConeScheduler sched(u);
  std::vector<FaultId> targets(u.size());
  std::iota(targets.begin(), targets.end(), 0u);
  const BatchPlan plan = sched.plan(targets, {63, "dump"});
  std::vector<ConeSig> sigs;
  for (FaultId f : targets) sigs.push_back(sched.signature(f));

  const Json doc = batch_plan_to_json(plan, sched.name(), sigs);
  EXPECT_EQ(doc.at("policy").as_string(), "cone");
  EXPECT_EQ(doc.at("targets").as_size(), targets.size());
  EXPECT_EQ(doc.at("batches").as_size(), plan.batches());
  ASSERT_EQ(doc.at("batch_sizes").size(), plan.batches());
  std::size_t total = 0;
  for (std::size_t b = 0; b < plan.batches(); ++b)
    total += doc.at("batch_sizes").at(b).as_size();
  EXPECT_EQ(total, targets.size());
  ASSERT_TRUE(doc.contains("cone"));
  EXPECT_EQ(doc.at("cone").at("per_batch_union_bits").size(), plan.batches());
  EXPECT_LE(doc.at("cone").at("max_union_bits").as_size(), 64u);

  // The per-width saturation view covers all three filter widths, each
  // bounded by its own width, and a wider filter never saturates MORE.
  const auto topo = PackedTopology::build(d.nl);
  const Json sat = cone_saturation_to_json(plan, targets, u, *topo);
  for (const auto& [width, name] :
       {std::pair<std::size_t, const char*>{64, "64"},
        {128, "128"},
        {256, "256"}}) {
    ASSERT_TRUE(sat.contains(name));
    const Json& row = sat.at(name);
    EXPECT_LE(row.at("max_union_bits").as_size(), width);
    EXPECT_LE(row.at("mean_union_bits").as_number(),
              static_cast<double>(width));
    EXPECT_LE(row.at("saturated_batches").as_size(), plan.batches());
  }
  EXPECT_LE(sat.at("256").at("saturated_batches").as_size(),
            sat.at("64").at("saturated_batches").as_size());
}

}  // namespace
}  // namespace olfui
