#include <gtest/gtest.h>

#include "netlist/cell.hpp"
#include "netlist/netlist.hpp"
#include "netlist/wordops.hpp"
#include "sim/packed.hpp"
#include "sim/sim.hpp"

namespace olfui {
namespace {

TEST(CellLibrary, PinCounts) {
  EXPECT_EQ(num_inputs(CellType::kInput), 0);
  EXPECT_EQ(num_inputs(CellType::kOutput), 1);
  EXPECT_EQ(num_inputs(CellType::kTie0), 0);
  EXPECT_EQ(num_inputs(CellType::kBuf), 1);
  EXPECT_EQ(num_inputs(CellType::kAnd4), 4);
  EXPECT_EQ(num_inputs(CellType::kMux2), 3);
  EXPECT_EQ(num_inputs(CellType::kDff), 1);
  EXPECT_EQ(num_inputs(CellType::kDffR), 2);
}

TEST(CellLibrary, TypeNameRoundTrip) {
  for (int i = 0; i < kNumCellTypes; ++i) {
    const CellType t = static_cast<CellType>(i);
    CellType back;
    ASSERT_TRUE(type_from_name(type_name(t), back)) << type_name(t);
    EXPECT_EQ(back, t);
  }
  CellType dummy;
  EXPECT_FALSE(type_from_name("FROB3", dummy));
}

TEST(CellLibrary, PinNames) {
  EXPECT_EQ(pin_name(CellType::kAnd2, 0), "Y");
  EXPECT_EQ(pin_name(CellType::kAnd2, 1), "A");
  EXPECT_EQ(pin_name(CellType::kAnd2, 2), "B");
  EXPECT_EQ(pin_name(CellType::kMux2, 3), "S");
  EXPECT_EQ(pin_name(CellType::kDffR, 0), "Q");
  EXPECT_EQ(pin_name(CellType::kDffR, 2), "RSTN");
}

TEST(CellLibrary, EvalPackedTruthTables) {
  const std::uint64_t a = 0b1100, b = 0b1010;
  std::uint64_t in2[] = {a, b};
  EXPECT_EQ(eval_packed(CellType::kAnd2, in2, 2) & 0xF, 0b1000u);
  EXPECT_EQ(eval_packed(CellType::kOr2, in2, 2) & 0xF, 0b1110u);
  EXPECT_EQ(eval_packed(CellType::kNand2, in2, 2) & 0xF, 0b0111u);
  EXPECT_EQ(eval_packed(CellType::kNor2, in2, 2) & 0xF, 0b0001u);
  EXPECT_EQ(eval_packed(CellType::kXor2, in2, 2) & 0xF, 0b0110u);
  EXPECT_EQ(eval_packed(CellType::kXnor2, in2, 2) & 0xF, 0b1001u);
  std::uint64_t in1[] = {a};
  EXPECT_EQ(eval_packed(CellType::kBuf, in1, 1) & 0xF, a);
  EXPECT_EQ(eval_packed(CellType::kNot, in1, 1) & 0xF, 0b0011u);
  // MUX: inputs {A, B, S}; S=1 selects B. Per lane: (S&B) | (~S&A).
  std::uint64_t in3[] = {a, b, 0b0101};
  EXPECT_EQ(eval_packed(CellType::kMux2, in3, 3) & 0xF,
            ((0b0101u & b) | (~0b0101u & a)) & 0xF);
  EXPECT_EQ(eval_packed<std::uint64_t>(CellType::kTie0, nullptr, 0), 0u);
  EXPECT_EQ(eval_packed<std::uint64_t>(CellType::kTie1, nullptr, 0), ~0ULL);
}

TEST(Netlist, BuildAndQuery) {
  Netlist nl("t");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_net("y");
  const CellId g = nl.add_cell(CellType::kAnd2, "u_g", y, {a, b});
  nl.add_output("out", y);

  EXPECT_EQ(nl.num_cells(), 4u);  // 2 inputs + gate + output
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.find_input("a"), a);
  EXPECT_EQ(nl.find_input("zz"), kInvalidId);
  EXPECT_EQ(nl.find_cell("u_g"), g);
  EXPECT_EQ(nl.find_net("y"), y);
  EXPECT_EQ(nl.net(y).driver, g);
  ASSERT_EQ(nl.net(a).fanout.size(), 1u);
  EXPECT_EQ(nl.net(a).fanout[0].cell, g);
  EXPECT_EQ(nl.net(a).fanout[0].pin, 1);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Netlist, PinNetResolution) {
  Netlist nl("t");
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_net("y");
  const CellId g = nl.add_cell(CellType::kBuf, "u_b", y, {a});
  EXPECT_EQ(nl.pin_net({g, 0}), y);
  EXPECT_EQ(nl.pin_net({g, 1}), a);
}

TEST(Netlist, DuplicateNamesGetUniquified) {
  Netlist nl("t");
  const NetId n1 = nl.add_net("n");
  const NetId n2 = nl.add_net("n");
  EXPECT_NE(nl.net(n1).name, nl.net(n2).name);
}

TEST(Netlist, RewireInputMovesFanout) {
  Netlist nl("t");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_net("y");
  const CellId g = nl.add_cell(CellType::kBuf, "u_b", y, {a});
  nl.add_output("o", y);
  nl.rewire_input(g, 0, b);
  EXPECT_TRUE(nl.net(a).fanout.empty());
  ASSERT_EQ(nl.net(b).fanout.size(), 1u);
  EXPECT_EQ(nl.cell(g).ins[0], b);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Netlist, ValidateReportsUndrivenNet) {
  Netlist nl("t");
  const NetId y = nl.add_net("floating");
  nl.add_output("o", y);
  const auto problems = nl.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("no driver"), std::string::npos);
}

TEST(Netlist, ValidateReportsCombinationalLoop) {
  Netlist nl("t");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.add_cell(CellType::kNot, "u_1", b, {a});
  nl.add_cell(CellType::kNot, "u_2", a, {b});
  std::vector<CellId> order;
  EXPECT_FALSE(nl.levelize(order));
}

TEST(Netlist, FlopsCutLoops) {
  Netlist nl("t");
  const NetId q = nl.add_net("q");
  const NetId d = nl.add_net("d");
  nl.add_cell(CellType::kNot, "u_inv", d, {q});
  nl.add_cell(CellType::kDff, "u_ff", q, {d});
  std::vector<CellId> order;
  EXPECT_TRUE(nl.levelize(order));
  EXPECT_EQ(order.size(), 1u);  // only the inverter is combinational
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Netlist, LevelizeRespectsDependencies) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = w.and2(a, b, "x");
  const NetId y = w.or2(x, a, "y");
  const NetId z = w.xor2(y, x, "z");
  nl.add_output("o", z);
  std::vector<CellId> order;
  ASSERT_TRUE(nl.levelize(order));
  std::vector<int> pos(nl.num_cells(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<int>(i);
  EXPECT_LT(pos[nl.net(x).driver], pos[nl.net(y).driver]);
  EXPECT_LT(pos[nl.net(y).driver], pos[nl.net(z).driver]);
}

TEST(Netlist, StatsCountCategories) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId y = w.and2(a, w.lit(true), "y");
  RegWord r = w.reg_word({y}, "r");
  nl.add_output("o", r.q[0]);
  const NetlistStats s = nl.stats();
  EXPECT_EQ(s.inputs, 1u);
  EXPECT_EQ(s.outputs, 1u);
  EXPECT_EQ(s.flops, 1u);
  EXPECT_EQ(s.ties, 1u);
  EXPECT_EQ(s.gates, 1u);
  // pins: input(1) + output(1) + tie(1) + and(3) + dff(2)
  EXPECT_EQ(s.pins, 8u);
}

TEST(WordOps, ConstantSharesTieCells) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const Bus c = w.constant(0b1010, 4);
  EXPECT_EQ(c[1], c[3]);
  EXPECT_EQ(c[0], c[2]);
  EXPECT_NE(c[0], c[1]);
}

// Exhaustively verify the ripple adder against arithmetic for small widths.
TEST(WordOps, AdderMatchesArithmeticExhaustive4Bit) {
  Netlist nl("t");
  WordOps w(nl, "m");
  Bus a(4), b(4);
  for (int i = 0; i < 4; ++i) {
    a[i] = nl.add_input("a" + std::to_string(i));
    b[i] = nl.add_input("b" + std::to_string(i));
  }
  const NetId cin = nl.add_input("cin");
  const auto r = w.add_word(a, b, cin, "sum");
  for (int i = 0; i < 4; ++i) nl.add_output("s" + std::to_string(i), r.sum[i]);
  nl.add_output("co", r.carry_out);
  ASSERT_TRUE(nl.validate().empty());

  Simulator sim(nl);
  for (int av = 0; av < 16; ++av) {
    for (int bv = 0; bv < 16; ++bv) {
      for (int c = 0; c < 2; ++c) {
        sim.set_input_word(a, static_cast<std::uint64_t>(av));
        sim.set_input_word(b, static_cast<std::uint64_t>(bv));
        sim.set_input(cin, c == 1);
        sim.eval();
        const int expect = av + bv + c;
        EXPECT_EQ(sim.read_word(r.sum), static_cast<std::uint64_t>(expect & 0xF));
        EXPECT_EQ(sim.value(r.carry_out) == Logic::V1, expect > 15);
      }
    }
  }
}

TEST(WordOps, SubWordComputesDifference) {
  Netlist nl("t");
  WordOps w(nl, "m");
  Bus a(8), b(8);
  for (int i = 0; i < 8; ++i) {
    a[i] = nl.add_input("a" + std::to_string(i));
    b[i] = nl.add_input("b" + std::to_string(i));
  }
  const auto r = w.sub_word(a, b, "diff");
  nl.add_output("co", r.carry_out);
  Simulator sim(nl);
  for (auto [av, bv] : {std::pair{200, 13}, {13, 200}, {77, 77}, {255, 0}}) {
    sim.set_input_word(a, static_cast<std::uint64_t>(av));
    sim.set_input_word(b, static_cast<std::uint64_t>(bv));
    sim.eval();
    EXPECT_EQ(sim.read_word(r.sum), static_cast<std::uint64_t>((av - bv) & 0xFF));
    // carry_out == no borrow == av >= bv
    EXPECT_EQ(sim.value(r.carry_out) == Logic::V1, av >= bv);
  }
}

TEST(WordOps, DecodeProducesOneHot) {
  Netlist nl("t");
  WordOps w(nl, "m");
  Bus sel(3);
  for (int i = 0; i < 3; ++i) sel[i] = nl.add_input("s" + std::to_string(i));
  const Bus onehot = w.decode(sel, "dec");
  for (std::size_t i = 0; i < onehot.size(); ++i)
    nl.add_output("o" + std::to_string(i), onehot[i]);
  Simulator sim(nl);
  for (int v = 0; v < 8; ++v) {
    sim.set_input_word(sel, static_cast<std::uint64_t>(v));
    sim.eval();
    EXPECT_EQ(sim.read_word(onehot), 1ULL << v);
  }
}

TEST(WordOps, ShifterMatchesCppShifts) {
  Netlist nl("t");
  WordOps w(nl, "m");
  Bus a(16), amt(4);
  for (int i = 0; i < 16; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (int i = 0; i < 4; ++i) amt[i] = nl.add_input("n" + std::to_string(i));
  const Bus left = w.shift_word(a, amt, true, "sl");
  const Bus right = w.shift_word(a, amt, false, "sr");
  nl.add_output("l0", left[0]);
  Simulator sim(nl);
  const std::uint16_t pattern = 0x9C31;
  for (int n = 0; n < 16; ++n) {
    sim.set_input_word(a, pattern);
    sim.set_input_word(amt, static_cast<std::uint64_t>(n));
    sim.eval();
    EXPECT_EQ(sim.read_word(left), static_cast<std::uint64_t>(
                                       static_cast<std::uint16_t>(pattern << n)));
    EXPECT_EQ(sim.read_word(right),
              static_cast<std::uint64_t>(pattern >> n));
  }
}

TEST(WordOps, EqWordAndEqConst) {
  Netlist nl("t");
  WordOps w(nl, "m");
  Bus a(6), b(6);
  for (int i = 0; i < 6; ++i) {
    a[i] = nl.add_input("a" + std::to_string(i));
    b[i] = nl.add_input("b" + std::to_string(i));
  }
  const NetId eq = w.eq_word(a, b, "eq");
  const NetId eqc = w.eq_const(a, 0x2A, "eqc");
  nl.add_output("eq", eq);
  nl.add_output("eqc", eqc);
  Simulator sim(nl);
  for (int av : {0, 1, 0x2A, 0x3F}) {
    for (int bv : {0, 0x2A}) {
      sim.set_input_word(a, static_cast<std::uint64_t>(av));
      sim.set_input_word(b, static_cast<std::uint64_t>(bv));
      sim.eval();
      EXPECT_EQ(sim.value(eq) == Logic::V1, av == bv);
      EXPECT_EQ(sim.value(eqc) == Logic::V1, av == 0x2A);
    }
  }
}

TEST(WordOps, OnehotMuxSelectsWord) {
  Netlist nl("t");
  WordOps w(nl, "m");
  Bus sel(2);
  for (int i = 0; i < 2; ++i) sel[i] = nl.add_input("s" + std::to_string(i));
  std::vector<Bus> words;
  for (int k = 0; k < 4; ++k) words.push_back(w.constant(0x10 + k, 8));
  const Bus out = w.onehot_mux(w.decode(sel, "d"), words, "mx");
  nl.add_output("o0", out[0]);
  Simulator sim(nl);
  for (int v = 0; v < 4; ++v) {
    sim.set_input_word(sel, static_cast<std::uint64_t>(v));
    sim.eval();
    EXPECT_EQ(sim.read_word(out), static_cast<std::uint64_t>(0x10 + v));
  }
}

TEST(WordOps, MultiplierMatchesArithmetic) {
  Netlist nl("t");
  WordOps w(nl, "m");
  Bus a(8), b(8);
  for (int i = 0; i < 8; ++i) {
    a[i] = nl.add_input("a" + std::to_string(i));
    b[i] = nl.add_input("b" + std::to_string(i));
  }
  const Bus p = w.mul_word(a, b, "p");
  nl.add_output("p0", p[0]);
  ASSERT_TRUE(nl.validate().empty());
  Simulator sim(nl);
  for (auto [av, bv] : {std::pair{0, 0}, {1, 255}, {255, 255}, {17, 13},
                        {100, 200}, {85, 170}, {3, 7}, {128, 2}}) {
    sim.set_input_word(a, static_cast<std::uint64_t>(av));
    sim.set_input_word(b, static_cast<std::uint64_t>(bv));
    sim.eval();
    EXPECT_EQ(sim.read_word(p), static_cast<std::uint64_t>((av * bv) & 0xFF))
        << av << "*" << bv;
  }
}

TEST(WordOps, MultiplierExhaustive4Bit) {
  Netlist nl("t");
  WordOps w(nl, "m");
  Bus a(4), b(4);
  for (int i = 0; i < 4; ++i) {
    a[i] = nl.add_input("a" + std::to_string(i));
    b[i] = nl.add_input("b" + std::to_string(i));
  }
  const Bus p = w.mul_word(a, b, "p");
  nl.add_output("p0", p[0]);
  Simulator sim(nl);
  for (int av = 0; av < 16; ++av) {
    for (int bv = 0; bv < 16; ++bv) {
      sim.set_input_word(a, static_cast<std::uint64_t>(av));
      sim.set_input_word(b, static_cast<std::uint64_t>(bv));
      sim.eval();
      EXPECT_EQ(sim.read_word(p), static_cast<std::uint64_t>((av * bv) & 0xF));
    }
  }
}

TEST(WordOps, RegisterFeedbackViaDeclareConnect) {
  // A 4-bit counter: reg <= reg + 1.
  Netlist nl("t");
  WordOps w(nl, "m");
  RegWord r = w.reg_declare(4, "cnt");
  const auto inc = w.add_word(r.q, w.constant(1, 4), w.lit(false), "inc");
  w.reg_connect(r, inc.sum);
  nl.add_output("o", r.q[0]);
  ASSERT_TRUE(nl.validate().empty());

  Simulator sim(nl);
  sim.power_on();
  // Flops power up X; force a known state by clocking with DFFR? This
  // counter uses plain DFFs, so drive via packed 2-valued convention:
  PackedSim ps(nl);
  ps.power_on();
  ps.eval();
  for (int i = 1; i <= 20; ++i) {
    ps.clock();
    std::uint64_t v = 0;
    for (int b = 0; b < 4; ++b) v |= (ps.value(r.q[b]) & 1) << b;
    EXPECT_EQ(v, static_cast<std::uint64_t>(i & 0xF));
  }
}

TEST(WordOps, TagRegAppliesPerBitTags) {
  Netlist nl("t");
  WordOps w(nl, "m");
  RegWord r = w.reg_declare(2, "pc");
  w.reg_connect(r, w.constant(0, 2));
  w.tag_reg(r, "addr:code");
  EXPECT_EQ(nl.cell(r.flops[0]).tag, "addr:code:0");
  EXPECT_EQ(nl.cell(r.flops[1]).tag, "addr:code:1");
}

TEST(Netlist, ModuleHistogramGroupsByPrefix) {
  Netlist nl("t");
  WordOps a(nl, "alu");
  WordOps b(nl, "btb");
  a.lit(false);
  b.lit(false);
  b.lit(true);
  const auto hist = nl.module_histogram();
  EXPECT_EQ(hist.at("alu"), 1u);
  EXPECT_EQ(hist.at("btb"), 2u);
}

}  // namespace
}  // namespace olfui
