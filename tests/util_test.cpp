#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/bits.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace olfui {
namespace {

TEST(BitVec, StartsCleared) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.find_first(), 130u);
}

TEST(BitVec, SetGetAcrossWordBoundaries) {
  BitVec v(200);
  for (std::size_t i : {0u, 63u, 64u, 127u, 128u, 199u}) {
    v.set(i, true);
    EXPECT_TRUE(v.get(i)) << i;
  }
  EXPECT_EQ(v.count(), 6u);
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.count(), 5u);
}

TEST(BitVec, FindNextSkipsAndFinds) {
  BitVec v(300);
  v.set(5, true);
  v.set(100, true);
  v.set(299, true);
  EXPECT_EQ(v.find_first(), 5u);
  EXPECT_EQ(v.find_next(6), 100u);
  EXPECT_EQ(v.find_next(101), 299u);
  EXPECT_EQ(v.find_next(300), 300u);
}

TEST(BitVec, SetAllRespectsTailMasking) {
  BitVec v(70);
  v.set_all(true);
  EXPECT_EQ(v.count(), 70u);
  v.flip();
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVec, BooleanAlgebra) {
  BitVec a(100), b(100);
  a.set(1, true);
  a.set(50, true);
  b.set(50, true);
  b.set(99, true);
  BitVec o = a;
  o |= b;
  EXPECT_EQ(o.count(), 3u);
  BitVec n = a;
  n &= b;
  EXPECT_EQ(n.count(), 1u);
  EXPECT_TRUE(n.get(50));
  BitVec x = a;
  x ^= b;
  EXPECT_EQ(x.count(), 2u);
  BitVec s = a;
  s.subtract(b);
  EXPECT_TRUE(s.get(1));
  EXPECT_FALSE(s.get(50));
}

TEST(BitVec, CountMatchesNaive) {
  Rng rng(7);
  BitVec v(517);
  std::size_t expect = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const bool bit = rng.next_bool();
    v.set(i, bit);
    expect += bit ? 1 : 0;
  }
  EXPECT_EQ(v.count(), expect);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, RoughlyUniform) {
  Rng rng(2);
  int buckets[8] = {};
  for (int i = 0; i < 8000; ++i) ++buckets[rng.next_below(8)];
  for (int b = 0; b < 8; ++b) EXPECT_GT(buckets[b], 700) << b;
}

TEST(Strings, SplitDropsEmptyPieces) {
  const auto parts = split("a,,b c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ParseUintDecimalAndHex) {
  EXPECT_EQ(parse_uint("1234"), 1234u);
  EXPECT_EQ(parse_uint("0x1F"), 0x1Fu);
  EXPECT_EQ(parse_uint("0x0007_8000"), 0x78000u);
  EXPECT_FALSE(parse_uint("").has_value());
  EXPECT_FALSE(parse_uint("12z").has_value());
  EXPECT_FALSE(parse_uint("0x").has_value());
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(format("%04x", 0xAB), "00ab");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(214930), "214,930");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(Bits, Transpose64MatchesBitLoop) {
  std::uint64_t m[64], expect[64] = {};
  std::uint64_t x = 0x243F6A8885A308D3ULL;  // splitmix-ish fill
  for (auto& w : m) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    w = z ^ (z >> 27);
  }
  for (int i = 0; i < 64; ++i)
    for (int j = 0; j < 64; ++j)
      if ((m[i] >> j) & 1ULL) expect[j] |= 1ULL << i;
  std::uint64_t t[64];
  std::copy(std::begin(m), std::end(m), std::begin(t));
  transpose64(t);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(t[i], expect[i]) << i;
  // Involution: transposing twice restores the original.
  transpose64(t);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(t[i], m[i]) << i;
}

/// Deterministic splitmix-ish word stream shared by the transpose tests.
std::vector<std::uint64_t> splitmix_words(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> out(n);
  std::uint64_t x = seed;
  for (auto& w : out) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    w = z ^ (z >> 27);
  }
  return out;
}

/// Bit (row r, column c) of a row-major W x W matrix stored K = W/64
/// words per row.
template <int W>
bool matrix_bit(const std::uint64_t* a, int r, int c) {
  constexpr int K = W / 64;
  return (a[r * K + c / 64] >> (c % 64)) & 1ULL;
}

template <int W>
void check_transpose_bits(std::uint64_t seed) {
  constexpr int K = W / 64;
  const std::vector<std::uint64_t> m =
      splitmix_words(static_cast<std::size_t>(W) * K, seed);
  std::vector<std::uint64_t> t = m;
  transpose_bits<W>(t.data());
  // Every bit lands mirrored across the diagonal: (r, c) -> (c, r).
  for (int r = 0; r < W; ++r)
    for (int c = 0; c < W; ++c)
      ASSERT_EQ(matrix_bit<W>(t.data(), c, r), matrix_bit<W>(m.data(), r, c))
          << "W=" << W << " r=" << r << " c=" << c;
  // Involution: transposing twice restores the original words.
  transpose_bits<W>(t.data());
  EXPECT_EQ(t, m) << "W=" << W;
}

TEST(Bits, TransposeBitsMirrorsAndInverts) {
  check_transpose_bits<64>(0x243F6A8885A308D3ULL);
  check_transpose_bits<128>(0x13198A2E03707344ULL);
  check_transpose_bits<256>(0xA4093822299F31D0ULL);
}

TEST(Bits, TransposeBits64MatchesTranspose64) {
  const std::vector<std::uint64_t> m = splitmix_words(64, 0x082EFA98EC4E6C89ULL);
  std::vector<std::uint64_t> a = m, b = m;
  transpose_bits<64>(a.data());
  transpose64(b.data());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace olfui
