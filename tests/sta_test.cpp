// Structural testability analysis tests. Several cases reproduce the
// paper's figures directly:
//   Fig. 2 — mux-scan flop with SE tied to functional mode,
//   Fig. 4 — debug mux with DE tied and DO floating,
//   Fig. 5 — constant-value DFF leaving only two testable faults,
//   Fig. 6 — constants propagating through a flop into the downstream cone.
#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "netlist/wordops.hpp"
#include "sta/sta.hpp"

namespace olfui {
namespace {

struct Rig {
  Netlist nl{"t"};
  WordOps w{nl, "m"};
};

TEST(StaConstants, TieCellsPropagate) {
  Rig r;
  const NetId a = r.nl.add_input("a");
  const NetId y = r.w.and2(a, r.w.lit(false), "y");  // a & 0 == 0
  const NetId z = r.w.or2(y, r.w.lit(true), "z");    // 1
  r.nl.add_output("o", z);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  const StaResult res = sta.analyze({});
  EXPECT_EQ(res.net_value[y], Logic::V0);
  EXPECT_EQ(res.net_value[z], Logic::V1);
  EXPECT_EQ(res.net_value[a], Logic::VX);
}

TEST(StaConstants, MissionTiesOverrideFreeInputs) {
  Rig r;
  const NetId a = r.nl.add_input("a");
  const NetId b = r.nl.add_input("b");
  const NetId y = r.w.and2(a, b, "y");
  r.nl.add_output("o", y);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  MissionConfig cfg;
  cfg.tie(a, true);
  cfg.tie(b, true);
  const StaResult res = sta.analyze(cfg);
  EXPECT_EQ(res.net_value[y], Logic::V1);
}

TEST(StaConstants, PropagateThroughFlops) {
  // Paper Fig. 6: a constant reaching a flop's D makes Q constant at the
  // mission fixpoint, feeding constants onward.
  Rig r;
  const NetId d = r.nl.add_input("d");
  RegWord reg = r.w.reg_word({d}, "ff");
  const NetId y = r.w.not_(reg.q[0], "y");
  r.nl.add_output("o", y);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  MissionConfig cfg;
  cfg.tie(d, false);
  const StaResult res = sta.analyze(cfg);
  EXPECT_EQ(res.net_value[reg.q[0]], Logic::V0);
  EXPECT_EQ(res.net_value[y], Logic::V1);
}

TEST(StaConstants, FeedbackLoopsStayUnknown) {
  // A toggle flop has no mission constant: q must remain X.
  Rig r;
  RegWord reg = r.w.reg_declare(1, "ff");
  const NetId d = r.w.not_(reg.q[0], "inv");
  r.w.reg_connect(reg, {d});
  r.nl.add_output("o", reg.q[0]);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  const StaResult res = sta.analyze({});
  EXPECT_EQ(res.net_value[reg.q[0]], Logic::VX);
}

TEST(StaObservability, SideInputBlocking) {
  Rig r;
  const NetId a = r.nl.add_input("a");
  const NetId en = r.nl.add_input("en");
  const NetId y = r.w.and2(a, en, "y");
  r.nl.add_output("o", y);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  const CellId g = r.nl.net(y).driver;

  // Free enable: both inputs observable.
  StaResult res = sta.analyze({});
  EXPECT_TRUE(res.pin_observable[sta.pin_ordinal({g, 1})]);
  // en tied 0: the data pin is blocked.
  MissionConfig cfg;
  cfg.tie(en, false);
  res = sta.analyze(cfg);
  EXPECT_FALSE(res.pin_observable[sta.pin_ordinal({g, 1})]);
}

TEST(StaObservability, MuxSelectBlocking) {
  Rig r;
  const NetId a = r.nl.add_input("a");
  const NetId b = r.nl.add_input("b");
  const NetId s = r.nl.add_input("s");
  const NetId y = r.w.mux(s, a, b, "y");
  r.nl.add_output("o", y);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  const CellId g = r.nl.net(y).driver;
  MissionConfig cfg;
  cfg.tie(s, false);  // select A forever
  const StaResult res = sta.analyze(cfg);
  EXPECT_TRUE(res.pin_observable[sta.pin_ordinal({g, kMuxA + 1})]);
  EXPECT_FALSE(res.pin_observable[sta.pin_ordinal({g, kMuxB + 1})]);
}

TEST(StaObservability, UnobservedOutputKillsPrivateConeOnly) {
  Rig r;
  const NetId a = r.nl.add_input("a");
  const NetId y1 = r.w.buf(a, "y1");       // feeds the floating port only
  const NetId y2 = r.w.not_(a, "y2");      // feeds the kept port
  const CellId dead_port = r.nl.add_output("dbg", y1);
  r.nl.add_output("bus", y2);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  MissionConfig cfg;
  cfg.unobserve(dead_port);
  const StaResult res = sta.analyze(cfg);
  const CellId b1 = r.nl.net(y1).driver;
  const CellId b2 = r.nl.net(y2).driver;
  EXPECT_FALSE(res.pin_observable[sta.pin_ordinal({b1, 0})]);
  EXPECT_FALSE(res.pin_observable[sta.pin_ordinal({dead_port, 1})]);
  EXPECT_TRUE(res.pin_observable[sta.pin_ordinal({b2, 0})]);
  // The shared input stem is still observable through the kept cone.
  EXPECT_TRUE(res.pin_observable[sta.pin_ordinal({r.nl.net(a).driver, 0})]);
}

TEST(StaClassify, Fig5ConstantDffLeavesTwoTestableFaults) {
  // DFFR with active-low reset whose value is constant 0. The analysis
  // must leave exactly s-a-1 on D and s-a-1 on Q testable.
  Rig r;
  const NetId d = r.nl.add_input("d");
  const NetId rstn = r.nl.add_input("rstn");
  RegWord reg = r.w.reg_declare(1, "ff", rstn);
  r.w.reg_connect(reg, {d});
  r.nl.add_output("q", reg.q[0]);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  FaultList fl(u);
  MissionConfig cfg;
  cfg.tie(d, false);       // paper: tie the flop input...
  cfg.tie(reg.q[0], false);  // ...and its output
  const StaResult res = sta.analyze(cfg);
  sta.classify_faults(res, fl, OnlineSource::kMemoryMap);

  const CellId ff = reg.flops[0];
  // s-a-0 faults on D and Q: unexcitable (tied).
  EXPECT_EQ(fl.untestable_kind(u.id_of({ff, 1}, false)), UntestableKind::kTied);
  EXPECT_EQ(fl.untestable_kind(u.id_of({ff, 0}, false)), UntestableKind::kTied);
  // s-a-1 on D and on Q: the two faults the paper keeps testable.
  EXPECT_EQ(fl.untestable_kind(u.id_of({ff, 1}, true)), UntestableKind::kNone);
  EXPECT_EQ(fl.untestable_kind(u.id_of({ff, 0}, true)), UntestableKind::kNone);
  // RSTN pin: blocked by the constant-0 D (asserting reset is invisible).
  EXPECT_EQ(fl.untestable_kind(u.id_of({ff, 2}, false)),
            UntestableKind::kUnobservable);
  EXPECT_EQ(fl.untestable_kind(u.id_of({ff, 2}, true)),
            UntestableKind::kUnobservable);
}

TEST(StaClassify, Fig2ScanMuxFaults) {
  // Mux-scan structure with SE tied to functional mode (0): SI branch
  // untestable both ways, SE s-a-0 untestable, SE s-a-1 stays testable.
  Rig r;
  const NetId fi = r.nl.add_input("fi");
  const NetId si = r.nl.add_input("si");
  const NetId se = r.nl.add_input("se");
  const NetId md = r.w.mux(se, fi, si, "md");
  RegWord reg = r.w.reg_word({md}, "ff");
  r.nl.add_output("q", reg.q[0]);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  FaultList fl(u);
  MissionConfig cfg;
  cfg.tie(se, false);
  sta.classify_faults(sta.analyze(cfg), fl, OnlineSource::kScan);

  const CellId mux = r.nl.net(md).driver;
  const Pin si_pin{mux, kMuxB + 1};
  const Pin se_pin{mux, kMuxS + 1};
  const Pin fi_pin{mux, kMuxA + 1};
  EXPECT_NE(fl.untestable_kind(u.id_of(si_pin, false)), UntestableKind::kNone);
  EXPECT_NE(fl.untestable_kind(u.id_of(si_pin, true)), UntestableKind::kNone);
  EXPECT_EQ(fl.untestable_kind(u.id_of(se_pin, false)), UntestableKind::kTied);
  EXPECT_EQ(fl.untestable_kind(u.id_of(se_pin, true)), UntestableKind::kNone);
  EXPECT_EQ(fl.untestable_kind(u.id_of(fi_pin, false)), UntestableKind::kNone);
  EXPECT_EQ(fl.untestable_kind(u.id_of(fi_pin, true)), UntestableKind::kNone);
  // The SI input port stem is dead too.
  const CellId si_drv = r.nl.net(si).driver;
  EXPECT_NE(fl.untestable_kind(u.id_of({si_drv, 0}, false)), UntestableKind::kNone);
}

TEST(StaClassify, Fig4DebugMuxFaults) {
  // Debug-write mux: D = DE ? DI : FI, plus a debug observation output DO.
  // Mission: DE tied 0, DO floating.
  Rig r;
  const NetId fi = r.nl.add_input("fi");
  const NetId di = r.nl.add_input("di");
  const NetId de = r.nl.add_input("de");
  const NetId md = r.w.mux(de, fi, di, "md");
  RegWord reg = r.w.reg_word({md}, "ff");
  const NetId dout = r.w.buf(reg.q[0], "do");
  const CellId do_port = r.nl.add_output("dbg_do", dout);
  r.nl.add_output("q", reg.q[0]);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  FaultList fl(u);
  MissionConfig cfg;
  cfg.tie(de, false);
  cfg.unobserve(do_port);
  sta.classify_faults(sta.analyze(cfg), fl, OnlineSource::kDebugControl);

  const CellId mux = r.nl.net(md).driver;
  // DE s-a-0 untestable, DI both untestable (paper §3.2.1).
  EXPECT_EQ(fl.untestable_kind(u.id_of({mux, kMuxS + 1}, false)),
            UntestableKind::kTied);
  EXPECT_EQ(fl.untestable_kind(u.id_of({mux, kMuxS + 1}, true)),
            UntestableKind::kNone);
  EXPECT_NE(fl.untestable_kind(u.id_of({mux, kMuxB + 1}, false)),
            UntestableKind::kNone);
  EXPECT_NE(fl.untestable_kind(u.id_of({mux, kMuxB + 1}, true)),
            UntestableKind::kNone);
  // DO buffer: unobservable once the debugger is gone (§3.2.2).
  const CellId dob = r.nl.net(dout).driver;
  EXPECT_EQ(fl.untestable_kind(u.id_of({dob, 0}, false)),
            UntestableKind::kUnobservable);
  // The flop's functional path stays fully testable.
  EXPECT_EQ(fl.untestable_kind(u.id_of({mux, kMuxA + 1}, false)),
            UntestableKind::kNone);
}

TEST(StaClassify, NewlyMarkedCountIsIncremental) {
  Rig r;
  const NetId a = r.nl.add_input("a");
  const NetId en = r.nl.add_input("en");
  const NetId y = r.w.and2(a, en, "y");
  r.nl.add_output("o", y);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  FaultList fl(u);
  MissionConfig cfg;
  cfg.tie(en, false);
  const StaResult res = sta.analyze(cfg);
  const std::size_t first = sta.classify_faults(res, fl, OnlineSource::kScan);
  EXPECT_GT(first, 0u);
  const std::size_t second = sta.classify_faults(res, fl, OnlineSource::kMemoryMap);
  EXPECT_EQ(second, 0u);  // nothing new on the second pass
  EXPECT_EQ(fl.count_source(OnlineSource::kMemoryMap), 0u);
}

TEST(StaClassify, TieCellFaultsAreStructurallyUntestable) {
  Rig r;
  const NetId a = r.nl.add_input("a");
  const NetId y = r.w.or2(a, r.w.lit(false), "y");
  r.nl.add_output("o", y);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  FaultList fl(u);
  sta.classify_faults(sta.analyze({}), fl, OnlineSource::kStructural);
  const NetId tie_net = r.nl.cell(r.nl.find_cell("m/u_tie0")).out;
  const CellId tie_cell = r.nl.net(tie_net).driver;
  EXPECT_EQ(fl.untestable_kind(u.id_of({tie_cell, 0}, false)),
            UntestableKind::kTied);
  EXPECT_EQ(fl.untestable_kind(u.id_of({tie_cell, 0}, true)),
            UntestableKind::kNone);
}

TEST(StaClassify, XorPathNeverBlocked) {
  Rig r;
  const NetId a = r.nl.add_input("a");
  const NetId b = r.nl.add_input("b");
  const NetId y = r.w.xor2(a, b, "y");
  r.nl.add_output("o", y);
  const FaultUniverse u(r.nl);
  const StructuralAnalyzer sta(r.nl, u);
  MissionConfig cfg;
  cfg.tie(b, false);  // even a tied side input does not block an XOR
  const StaResult res = sta.analyze(cfg);
  const CellId g = r.nl.net(y).driver;
  EXPECT_TRUE(res.pin_observable[sta.pin_ordinal({g, 1})]);
}

TEST(StaConfig, MergeAccumulates) {
  MissionConfig a, b;
  a.tie(1, true);
  b.tie(2, false);
  b.unobserve(7);
  a.merge(b);
  EXPECT_EQ(a.constants.size(), 2u);
  EXPECT_EQ(a.unobserved_outputs.size(), 1u);
}

}  // namespace
}  // namespace olfui
