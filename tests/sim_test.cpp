#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "netlist/wordops.hpp"
#include "sim/logic.hpp"
#include "sim/packed.hpp"
#include "sim/sim.hpp"
#include "util/rng.hpp"

namespace olfui {
namespace {

TEST(Logic, NotTruthTable) {
  EXPECT_EQ(logic_not(Logic::V0), Logic::V1);
  EXPECT_EQ(logic_not(Logic::V1), Logic::V0);
  EXPECT_EQ(logic_not(Logic::VX), Logic::VX);
  EXPECT_EQ(logic_not(Logic::VZ), Logic::VX);
}

TEST(Logic, AndWithControllingZero) {
  EXPECT_EQ(logic_and(Logic::V0, Logic::VX), Logic::V0);
  EXPECT_EQ(logic_and(Logic::VX, Logic::V0), Logic::V0);
  EXPECT_EQ(logic_and(Logic::V1, Logic::VX), Logic::VX);
  EXPECT_EQ(logic_and(Logic::V1, Logic::V1), Logic::V1);
}

TEST(Logic, OrWithControllingOne) {
  EXPECT_EQ(logic_or(Logic::V1, Logic::VX), Logic::V1);
  EXPECT_EQ(logic_or(Logic::VX, Logic::V1), Logic::V1);
  EXPECT_EQ(logic_or(Logic::V0, Logic::VX), Logic::VX);
}

TEST(Logic, XorNeverResolvesX) {
  EXPECT_EQ(logic_xor(Logic::V1, Logic::VX), Logic::VX);
  EXPECT_EQ(logic_xor(Logic::V1, Logic::V0), Logic::V1);
  EXPECT_EQ(logic_xor(Logic::V1, Logic::V1), Logic::V0);
}

TEST(Logic, MuxResolvesWhenDataAgrees) {
  // MUX inputs {A, B, S} with unknown select but equal data.
  Logic in[3] = {Logic::V1, Logic::V1, Logic::VX};
  EXPECT_EQ(eval_ternary(CellType::kMux2, in, 3), Logic::V1);
  in[1] = Logic::V0;
  EXPECT_EQ(eval_ternary(CellType::kMux2, in, 3), Logic::VX);
  in[2] = Logic::V1;
  EXPECT_EQ(eval_ternary(CellType::kMux2, in, 3), Logic::V0);
}

TEST(Logic, FlopNextRespectsReset) {
  EXPECT_EQ(flop_next(CellType::kDff, Logic::V1, Logic::VX), Logic::V1);
  EXPECT_EQ(flop_next(CellType::kDffR, Logic::V1, Logic::V0), Logic::V0);
  EXPECT_EQ(flop_next(CellType::kDffR, Logic::V1, Logic::V1), Logic::V1);
  // Unknown reset: only a 0 data value is certain.
  EXPECT_EQ(flop_next(CellType::kDffR, Logic::V0, Logic::VX), Logic::V0);
  EXPECT_EQ(flop_next(CellType::kDffR, Logic::V1, Logic::VX), Logic::VX);
}

// Monotonicity property of eval_ternary: refining an X input never flips a
// known output (foundation of the STA constant fixpoint).
TEST(Logic, TernaryEvalIsMonotone) {
  Rng rng(3);
  const CellType types[] = {CellType::kAnd3, CellType::kOr3, CellType::kNand3,
                            CellType::kNor3, CellType::kXor2, CellType::kXnor2,
                            CellType::kMux2, CellType::kBuf, CellType::kNot};
  for (CellType t : types) {
    const int n = num_inputs(t);
    for (int trial = 0; trial < 200; ++trial) {
      Logic in[4], refined[4];
      for (int i = 0; i < n; ++i) {
        const int r = static_cast<int>(rng.next_below(3));
        in[i] = static_cast<Logic>(r);
        refined[i] = in[i] == Logic::VX
                         ? (rng.next_bool() ? Logic::V1 : Logic::V0)
                         : in[i];
      }
      const Logic before = eval_ternary(t, in, n);
      const Logic after = eval_ternary(t, refined, n);
      if (is_known(before)) {
        EXPECT_EQ(before, after) << type_name(t);
      }
    }
  }
}

TEST(Simulator, CombinationalSettling) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = w.xor2(w.and2(a, b, "ab"), w.or2(a, b, "o"), "y");
  nl.add_output("out", y);
  Simulator sim(nl);
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      sim.set_input(a, av == 1);
      sim.set_input(b, bv == 1);
      sim.eval();
      EXPECT_EQ(sim.value(y) == Logic::V1, ((av & bv) ^ (av | bv)) == 1);
    }
  }
}

TEST(Simulator, UnknownInputsPropagateX) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = w.and2(a, b, "y");
  nl.add_output("o", y);
  Simulator sim(nl);
  sim.power_on();
  sim.set_input(a, Logic::VX);
  sim.set_input(b, true);
  sim.eval();
  EXPECT_EQ(sim.value(y), Logic::VX);
  sim.set_input(b, false);  // controlling value resolves the X
  sim.eval();
  EXPECT_EQ(sim.value(y), Logic::V0);
}

TEST(Simulator, DffrResetSequence) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId rstn = nl.add_input("rstn");
  RegWord r = w.reg_declare(1, "ff", rstn);
  const NetId d = w.not_(r.q[0], "inv");  // toggle flop
  w.reg_connect(r, {d});
  nl.add_output("q", r.q[0]);
  Simulator sim(nl);
  sim.power_on();
  sim.set_input(rstn, false);
  sim.eval();
  EXPECT_EQ(sim.value(r.q[0]), Logic::VX);  // state unknown before the edge
  sim.clock();
  EXPECT_EQ(sim.value(r.q[0]), Logic::V0);  // reset captured
  sim.set_input(rstn, true);
  sim.eval();
  sim.clock();
  EXPECT_EQ(sim.value(r.q[0]), Logic::V1);  // toggling
  sim.clock();
  EXPECT_EQ(sim.value(r.q[0]), Logic::V0);
}

TEST(Simulator, ReadWordReportsX) {
  Netlist nl("t");
  Bus in(2);
  in[0] = nl.add_input("a0");
  in[1] = nl.add_input("a1");
  nl.add_output("o0", in[0]);
  Simulator sim(nl);
  sim.set_input(in[0], true);
  sim.set_input(in[1], Logic::VX);
  sim.eval();
  bool any_x = false;
  EXPECT_EQ(sim.read_word(in, &any_x), 1u);
  EXPECT_TRUE(any_x);
}

TEST(ToggleRecorder, CountsKnownTransitionsOnly) {
  Netlist nl("t");
  const NetId a = nl.add_input("a");
  nl.add_output("o", a);
  Simulator sim(nl);
  ToggleRecorder rec(nl);
  const Logic seq[] = {Logic::VX, Logic::V0, Logic::V1, Logic::V1, Logic::V0};
  for (Logic v : seq) {
    sim.set_input(a, v);
    sim.eval();
    rec.sample(sim);
  }
  // Transitions: X->0 (not counted), 0->1, 1->1 (no), 1->0 => 2 toggles.
  EXPECT_EQ(rec.toggles(a), 2u);
  EXPECT_EQ(rec.cycles(), 5u);
}

TEST(ToggleRecorder, QuietNetsListed) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = w.and2(a, b, "y");
  nl.add_output("o", y);
  Simulator sim(nl);
  ToggleRecorder rec(nl);
  sim.set_input(a, false);
  sim.set_input(b, false);
  sim.eval();
  rec.sample(sim);
  sim.set_input(a, true);
  sim.eval();
  rec.sample(sim);
  const auto quiet = rec.quiet_nets();
  // b never toggled; y stayed 0; a toggled.
  EXPECT_TRUE(std::find(quiet.begin(), quiet.end(), b) != quiet.end());
  EXPECT_TRUE(std::find(quiet.begin(), quiet.end(), y) != quiet.end());
  EXPECT_TRUE(std::find(quiet.begin(), quiet.end(), a) == quiet.end());
}

TEST(PackedSim, MatchesScalarSimulatorOnRandomLogic) {
  // Random combinational netlist, compare packed lanes against the
  // 4-valued simulator with known inputs.
  Rng rng(11);
  Netlist nl("t");
  WordOps w(nl, "m");
  std::vector<NetId> pool;
  Bus inputs(8);
  for (int i = 0; i < 8; ++i) {
    inputs[i] = nl.add_input("i" + std::to_string(i));
    pool.push_back(inputs[i]);
  }
  for (int g = 0; g < 60; ++g) {
    const CellType types[] = {CellType::kAnd2, CellType::kOr2, CellType::kXor2,
                              CellType::kNand2, CellType::kNor2, CellType::kXnor2,
                              CellType::kMux2, CellType::kNot};
    const CellType t = types[rng.next_below(8)];
    std::vector<NetId> ins;
    for (int k = 0; k < num_inputs(t); ++k)
      ins.push_back(pool[rng.next_below(pool.size())]);
    pool.push_back(w.gate(t, "g" + std::to_string(g), ins));
  }
  nl.add_output("o", pool.back());

  PackedSim ps(nl);
  Simulator ss(nl);
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t v = rng.next_u64() & 0xFF;
    ps.set_input_word(inputs, v);
    ss.set_input_word(inputs, v);
    ps.eval();
    ss.eval();
    for (NetId n : pool) {
      const Logic sv = ss.value(n);
      ASSERT_TRUE(is_known(sv));
      EXPECT_EQ(ps.value(n) & 1, sv == Logic::V1 ? 1u : 0u) << nl.net(n).name;
    }
  }
}

TEST(PackedSim, LanesAreIndependent) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId y = w.not_(a, "y");
  nl.add_output("o", y);
  PackedSim ps(nl);
  ps.set_input_lanes(a, 0xF0F0F0F0F0F0F0F0ULL);
  ps.eval();
  EXPECT_EQ(ps.value(y), ~0xF0F0F0F0F0F0F0F0ULL);
}

TEST(PackedSim, OutputPinInjectionVisibleOnlyViaObserved) {
  Netlist nl("t");
  const NetId a = nl.add_input("a");
  const CellId port = nl.add_output("o", a);
  PackedSim ps(nl);
  ps.add_injection({port, 1, /*sa1=*/true, /*lanes=*/0b10});
  ps.set_input_all(a, false);
  ps.eval();
  EXPECT_EQ(ps.value(a), 0u);            // net itself unaffected
  EXPECT_EQ(ps.observed(port), 0b10u);   // PO pin fault applied
}

TEST(PackedSim, GateInputInjectionAffectsSingleBranch) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId y1 = w.buf(a, "y1");
  const NetId y2 = w.buf(a, "y2");
  nl.add_output("o1", y1);
  nl.add_output("o2", y2);
  PackedSim ps(nl);
  const CellId b1 = nl.net(y1).driver;
  ps.add_injection({b1, 1, true, ~0ULL});  // s-a-1 on one buffer's input
  ps.set_input_all(a, false);
  ps.eval();
  EXPECT_EQ(ps.value(y1), ~0ULL);  // faulty branch
  EXPECT_EQ(ps.value(y2), 0u);     // sibling branch clean
}

TEST(PackedSim, FlopOutputInjectionForcesQNet) {
  Netlist nl("t");
  WordOps w(nl, "m");
  RegWord r = w.reg_declare(1, "ff");
  w.reg_connect(r, {w.lit(false)});
  nl.add_output("q", r.q[0]);
  PackedSim ps(nl);
  ps.add_injection({r.flops[0], 0, true, 0b100});
  ps.power_on();
  ps.eval();
  EXPECT_EQ(ps.value(r.q[0]), 0b100u);
  ps.clock();
  EXPECT_EQ(ps.value(r.q[0]), 0b100u);  // still forced after the edge
}

TEST(PackedSim, DffrPackedResetSemantics) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId rstn = nl.add_input("rstn");
  RegWord r = w.reg_declare(1, "ff", rstn);
  w.reg_connect(r, {w.lit(true)});
  nl.add_output("q", r.q[0]);
  PackedSim ps(nl);
  ps.power_on();
  ps.set_input_all(rstn, false);
  ps.eval();
  ps.clock();
  EXPECT_EQ(ps.value(r.q[0]), 0u);  // held in reset
  ps.set_input_all(rstn, true);
  ps.eval();
  ps.clock();
  EXPECT_EQ(ps.value(r.q[0]), ~0ULL);  // captures D=1 on all lanes
}

}  // namespace
}  // namespace olfui
