#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "netlist/sweep.hpp"
#include "netlist/wordops.hpp"
#include "sim/packed.hpp"
#include "util/rng.hpp"

namespace olfui {
namespace {

TEST(Sweep, FoldsConstantsAndDropsDeadLogic) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId y = w.and2(a, w.lit(false), "y");  // constant 0
  const NetId z = w.or2(y, a, "z");              // simplifies to BUF(a)
  const NetId dead = w.not_(a, "dead");          // feeds nothing
  (void)dead;
  nl.add_output("o", z);
  SweepStats st;
  const Netlist swept = constant_sweep(nl, &st);
  EXPECT_TRUE(swept.validate().empty());
  EXPECT_LT(swept.stats().gates, nl.stats().gates);
  EXPECT_GE(st.dead_removed, 1u);
  EXPECT_GE(st.folded_constant, 1u);
  EXPECT_GE(st.simplified, 1u);
  // The surviving driver of o is a buffer of a.
  const CellId oc = swept.find_output("o");
  const CellId drv = swept.net(swept.cell(oc).ins[0]).driver;
  EXPECT_EQ(swept.cell(drv).type, CellType::kBuf);
}

TEST(Sweep, AndWithConstantOneDropsInput) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = w.gate(CellType::kAnd3, "y", {a, w.lit(true), b});
  nl.add_output("o", y);
  const Netlist swept = constant_sweep(nl);
  const CellId drv = swept.net(swept.cell(swept.find_output("o")).ins[0]).driver;
  EXPECT_EQ(swept.cell(drv).type, CellType::kAnd2);
}

TEST(Sweep, NandCollapsesToNot) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId y = w.gate(CellType::kNand2, "y", {a, w.lit(true)});
  nl.add_output("o", y);
  const Netlist swept = constant_sweep(nl);
  const CellId drv = swept.net(swept.cell(swept.find_output("o")).ins[0]).driver;
  EXPECT_EQ(swept.cell(drv).type, CellType::kNot);
}

TEST(Sweep, XorWithConstantBecomesBufOrNot) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId y0 = w.gate(CellType::kXor2, "y0", {a, w.lit(false)});
  const NetId y1 = w.gate(CellType::kXor2, "y1", {a, w.lit(true)});
  const NetId n0 = w.gate(CellType::kXnor2, "n0", {a, w.lit(false)});
  nl.add_output("o0", y0);
  nl.add_output("o1", y1);
  nl.add_output("o2", n0);
  const Netlist swept = constant_sweep(nl);
  const auto type_of = [&](const char* port) {
    return swept.cell(swept.net(swept.cell(swept.find_output(port)).ins[0]).driver)
        .type;
  };
  EXPECT_EQ(type_of("o0"), CellType::kBuf);
  EXPECT_EQ(type_of("o1"), CellType::kNot);
  EXPECT_EQ(type_of("o2"), CellType::kNot);
}

TEST(Sweep, MuxWithConstantSelectFollowsData) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = w.mux(w.lit(true), a, b, "y");  // selects B
  nl.add_output("o", y);
  const Netlist swept = constant_sweep(nl);
  PackedSim sim(swept);
  sim.set_input_all(swept.find_input("a"), false);
  sim.set_input_all(swept.find_input("b"), true);
  sim.eval();
  EXPECT_EQ(sim.observed(swept.find_output("o")) & 1, 1u);
}

TEST(Sweep, PreservesFlopsAndTags) {
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId d = nl.add_input("d");
  const NetId rstn = nl.add_input("rstn");
  RegWord r = w.reg_word({d}, "pc", rstn);
  w.tag_reg(r, "addr:code");
  nl.add_output("q", r.q[0]);
  const Netlist swept = constant_sweep(nl);
  EXPECT_EQ(swept.stats().flops, 1u);
  const CellId ff = swept.find_cell("m/u_pc_q_0_reg");
  ASSERT_NE(ff, kInvalidId);
  EXPECT_EQ(swept.cell(ff).tag, "addr:code:0");
}

TEST(Sweep, KeepsUnusedInputPorts) {
  Netlist nl("t");
  const NetId a = nl.add_input("a");
  const NetId unused = nl.add_input("unused");
  (void)unused;
  nl.add_output("o", a);
  const Netlist swept = constant_sweep(nl);
  EXPECT_NE(swept.find_input("unused"), kInvalidId);
}

// The pass must be cycle-accurate equivalent from power-on — including
// reset transients — on randomized sequential designs.
class SweepEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SweepEquivalence, RandomSequentialDesignsMatchCycleByCycle) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  Netlist nl("t");
  WordOps w(nl, "m");
  const NetId rstn = nl.add_input("rstn");
  std::vector<NetId> inputs, pool;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back(nl.add_input("i" + std::to_string(i)));
    pool.push_back(inputs.back());
  }
  pool.push_back(w.lit(false));
  pool.push_back(w.lit(true));
  std::vector<RegWord> regs;
  for (int f = 0; f < 5; ++f) {
    regs.push_back(w.reg_declare(1, "r" + std::to_string(f),
                                 rng.next_below(2) ? rstn : kInvalidId));
    pool.push_back(regs.back().q[0]);
  }
  for (int g = 0; g < 45; ++g) {
    const CellType types[] = {CellType::kAnd2, CellType::kOr2,  CellType::kXor2,
                              CellType::kNand3, CellType::kNor2, CellType::kMux2,
                              CellType::kXnor2, CellType::kNot,  CellType::kAnd4};
    const CellType t = types[rng.next_below(9)];
    std::vector<NetId> ins;
    for (int k = 0; k < num_inputs(t); ++k)
      ins.push_back(pool[rng.next_below(pool.size())]);
    pool.push_back(w.gate(t, "g" + std::to_string(g), ins));
  }
  for (auto& reg : regs) {
    Bus dn{pool[rng.next_below(pool.size())]};
    w.reg_connect(reg, dn);
  }
  for (int o = 0; o < 3; ++o)
    nl.add_output("o" + std::to_string(o), pool[pool.size() - 1 - o]);

  SweepStats st;
  const Netlist swept = constant_sweep(nl, &st);
  ASSERT_TRUE(swept.validate().empty()) << seed;
  EXPECT_LE(st.cells_out, st.cells_in);

  PackedSim a(nl), b(swept);
  a.power_on();
  b.power_on();
  for (int cyc = 0; cyc < 30; ++cyc) {
    const bool rv = cyc > 1 || rng.next_bool();
    a.set_input_all(rstn, rv);
    b.set_input_all(swept.find_input("rstn"), rv);
    for (int i = 0; i < 5; ++i) {
      const bool v = rng.next_bool();
      a.set_input_all(inputs[static_cast<std::size_t>(i)], v);
      b.set_input_all(swept.find_input("i" + std::to_string(i)), v);
    }
    a.eval();
    b.eval();
    for (int o = 0; o < 3; ++o) {
      const std::string port = "o" + std::to_string(o);
      ASSERT_EQ(a.observed(nl.find_output(port)) & 1,
                b.observed(swept.find_output(port)) & 1)
          << "seed " << seed << " cycle " << cyc << " " << port;
    }
    a.clock();
    b.clock();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepEquivalence,
                         ::testing::Values(50, 51, 52, 53, 54, 55, 56, 57, 58,
                                           59, 60, 61, 62, 63));

TEST(Sweep, SocSweepRemovesStructuralUntestablesOnly) {
  // The ablation insight: sweeping kills the "Original" structural class
  // but the on-line classes survive — they live in logic the design needs.
  SocConfig cfg;
  cfg.cpu.with_multiplier = false;
  cfg.cpu.btb_entries = 2;
  auto soc = build_soc(cfg);
  SweepStats st;
  const Netlist swept = constant_sweep(soc->netlist, &st);
  EXPECT_TRUE(swept.validate().empty());
  EXPECT_LT(st.cells_out, st.cells_in);
  // Tags survive, so the memory-map pass still finds its registers.
  EXPECT_FALSE(find_address_registers(swept).empty());
}

}  // namespace
}  // namespace olfui
