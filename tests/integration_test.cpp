// End-to-end soundness of the identification flow, validated against
// ground truth: a fault the analyzer prunes as on-line functionally
// untestable must NEVER be detected by mission-mode fault simulation of
// the SBST suite (system-bus observability), and tied-class faults must be
// ATPG-untestable under the mission configuration.
#include <gtest/gtest.h>

#include "atpg/podem.hpp"
#include "core/analyzer.hpp"
#include "sbst/sbst.hpp"
#include "util/rng.hpp"

namespace olfui {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SocConfig cfg;
    cfg.cpu.btb_entries = 2;
    cfg.cpu.with_multiplier = false;  // keep fault-sim time test-friendly
    cfg.scan.num_chains = 2;
    soc_ = build_soc(cfg).release();
    universe_ = new FaultUniverse(soc_->netlist);
    fl_ = new FaultList(*universe_);
    analyzer_ = new OnlineUntestabilityAnalyzer(*soc_, *universe_);
    report_ = analyzer_->run(*fl_);
    suite_ = build_sbst_suite(cfg);
  }
  static void TearDownTestSuite() {
    delete analyzer_;
    delete fl_;
    delete universe_;
    delete soc_;
  }

  /// Fault-simulates `faults` against the whole SBST suite; returns the
  /// set of batch-local indices that some program detected.
  static std::vector<bool> simulate(const std::vector<FaultId>& faults) {
    std::vector<bool> detected(faults.size(), false);
    for (SbstProgram& sp : suite_) {
      SocSimulator good(*soc_);
      good.load_program(sp.program);
      const int cycles = good.run(5000);
      FlashImage flash(soc_->config.flash_base, soc_->config.flash_size);
      flash.load(sp.program.base(), sp.program.words());
      SocFsimEnvironment env(*soc_, flash, cycles + 8);
      SequentialFaultSimulator fsim(soc_->netlist, *universe_,
                                    {.max_cycles = cycles + 8});
      fsim.set_observed(soc_->cpu.bus_output_cells);
      for (std::size_t i = 0; i < faults.size(); i += 63) {
        const std::size_t n = std::min<std::size_t>(63, faults.size() - i);
        const LaneMask det =
            fsim.run_batch(std::span(faults).subspan(i, n), env);
        for (std::size_t j = 0; j < n; ++j)
          if (det.bit(static_cast<int>(j))) detected[i + j] = true;
      }
    }
    return detected;
  }

  static std::vector<FaultId> sample_pruned(OnlineSource s, std::size_t n) {
    Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(s));
    std::vector<FaultId> pool;
    for (FaultId f = 0; f < fl_->size(); ++f)
      if (fl_->online_source(f) == s) pool.push_back(f);
    std::vector<FaultId> out;
    for (std::size_t i = 0; i < n && !pool.empty(); ++i)
      out.push_back(pool[rng.next_below(pool.size())]);
    return out;
  }

  static Soc* soc_;
  static FaultUniverse* universe_;
  static FaultList* fl_;
  static OnlineUntestabilityAnalyzer* analyzer_;
  static AnalysisReport report_;
  static std::vector<SbstProgram> suite_;
};

Soc* IntegrationFixture::soc_ = nullptr;
FaultUniverse* IntegrationFixture::universe_ = nullptr;
FaultList* IntegrationFixture::fl_ = nullptr;
OnlineUntestabilityAnalyzer* IntegrationFixture::analyzer_ = nullptr;
AnalysisReport IntegrationFixture::report_;
std::vector<SbstProgram> IntegrationFixture::suite_;

TEST_F(IntegrationFixture, AnalyzerFoundEverySourceOnLeanSoc) {
  EXPECT_GT(report_.scan, 0u);
  EXPECT_GT(report_.debug_control, 0u);
  EXPECT_GT(report_.debug_observe, 0u);
  EXPECT_GT(report_.memmap, 0u);
}

TEST_F(IntegrationFixture, PrunedScanFaultsAreNeverDetected) {
  const auto faults = sample_pruned(OnlineSource::kScan, 60);
  ASSERT_FALSE(faults.empty());
  const auto det = simulate(faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_FALSE(det[i]) << universe_->fault_name(faults[i]);
}

TEST_F(IntegrationFixture, PrunedDebugControlFaultsAreNeverDetected) {
  const auto faults = sample_pruned(OnlineSource::kDebugControl, 60);
  ASSERT_FALSE(faults.empty());
  const auto det = simulate(faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_FALSE(det[i]) << universe_->fault_name(faults[i]);
}

TEST_F(IntegrationFixture, PrunedDebugObserveFaultsAreNeverDetected) {
  const auto faults = sample_pruned(OnlineSource::kDebugObserve, 60);
  ASSERT_FALSE(faults.empty());
  const auto det = simulate(faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_FALSE(det[i]) << universe_->fault_name(faults[i]);
}

TEST_F(IntegrationFixture, PrunedMemoryMapFaultsAreNeverDetected) {
  const auto faults = sample_pruned(OnlineSource::kMemoryMap, 60);
  ASSERT_FALSE(faults.empty());
  const auto det = simulate(faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_FALSE(det[i]) << universe_->fault_name(faults[i]);
}

TEST_F(IntegrationFixture, ManyKeptFaultsAreDetected) {
  // Sanity against over-pruning trivially: the suite must detect a healthy
  // fraction of the faults the analyzer kept.
  Rng rng(42);
  std::vector<FaultId> kept;
  for (FaultId f = 0; f < fl_->size() && kept.size() < 120; ++f) {
    if (fl_->untestable_kind(f) == UntestableKind::kNone &&
        rng.next_below(50) == 0)
      kept.push_back(f);
  }
  const auto det = simulate(kept);
  std::size_t hits = 0;
  for (bool b : det) hits += b ? 1 : 0;
  EXPECT_GT(hits, kept.size() / 4) << "suite detected only " << hits << "/"
                                   << kept.size();
}

TEST_F(IntegrationFixture, TiedFaultsAreAtpgUntestableUnderMission) {
  // Every tied-class fault must be unexcitable for PODEM too, given the
  // accumulated mission constants.
  Rng rng(7);
  std::vector<FaultId> tied;
  for (FaultId f = 0; f < fl_->size(); ++f)
    if (fl_->untestable_kind(f) == UntestableKind::kTied) tied.push_back(f);
  ASSERT_FALSE(tied.empty());
  Podem podem(soc_->netlist, *universe_,
              {.backtrack_limit = 5000, .mission = &analyzer_->mission_config()});
  for (int i = 0; i < 40; ++i) {
    const FaultId f = tied[rng.next_below(tied.size())];
    const AtpgResult r = podem.run(f);
    EXPECT_NE(r.outcome, AtpgOutcome::kTestFound) << universe_->fault_name(f);
  }
}

TEST_F(IntegrationFixture, CoverageGainMatchesPaperDirection) {
  // Simulate a light slice of the universe to estimate coverage before and
  // after pruning; pruning must raise coverage (the paper's ~13% effect).
  Rng rng(3);
  std::vector<FaultId> sampled;
  for (FaultId f = 0; f < universe_->size(); ++f)
    if (rng.next_below(40) == 0) sampled.push_back(f);
  const auto det = simulate(sampled);
  std::size_t detected = 0, testable = 0, detected_testable = 0;
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    detected += det[i] ? 1 : 0;
    if (fl_->untestable_kind(sampled[i]) == UntestableKind::kNone) {
      ++testable;
      detected_testable += det[i] ? 1 : 0;
    }
  }
  const double raw = static_cast<double>(detected) / sampled.size();
  const double pruned = static_cast<double>(detected_testable) / testable;
  EXPECT_GT(pruned, raw);
}

}  // namespace
}  // namespace olfui
