#include <gtest/gtest.h>

#include "cpu/soc.hpp"
#include "netlist/wordops.hpp"
#include "sim/packed.hpp"
#include "util/rng.hpp"
#include "verilog/verilog.hpp"

namespace olfui {
namespace {

Netlist small_design() {
  Netlist nl("demo");
  WordOps w(nl, "m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId rstn = nl.add_input("rstn");
  const NetId x = w.and2(a, b, "x");
  const NetId y = w.mux(a, x, w.lit(true), "y");
  RegWord r = w.reg_word({y}, "r", rstn);
  w.tag_reg(r, "addr:data");
  nl.add_output("q", r.q[0]);
  nl.add_output("comb", x);
  return nl;
}

TEST(VerilogWriter, EmitsModuleSkeleton) {
  const std::string text = write_verilog(small_design());
  EXPECT_NE(text.find("module demo"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
  EXPECT_NE(text.find("input a"), std::string::npos);
  EXPECT_NE(text.find("output q"), std::string::npos);
  EXPECT_NE(text.find("AND2"), std::string::npos);
  EXPECT_NE(text.find("DFFR"), std::string::npos);
  EXPECT_NE(text.find("TIE1"), std::string::npos);
  // Hierarchical names use escaped identifiers.
  EXPECT_NE(text.find("\\m/u_x "), std::string::npos);
  // Tags ride in comments.
  EXPECT_NE(text.find("// tag: addr:data:0"), std::string::npos);
}

TEST(VerilogRoundTrip, PreservesStructureAndTags) {
  const Netlist orig = small_design();
  const Netlist back = parse_verilog(write_verilog(orig));
  EXPECT_TRUE(back.validate().empty());
  const auto s1 = orig.stats();
  const auto s2 = back.stats();
  EXPECT_EQ(s1.cells, s2.cells);
  EXPECT_EQ(s1.nets, s2.nets);
  EXPECT_EQ(s1.inputs, s2.inputs);
  EXPECT_EQ(s1.outputs, s2.outputs);
  EXPECT_EQ(s1.flops, s2.flops);
  EXPECT_EQ(s1.pins, s2.pins);
  const CellId ff = back.find_cell("m/u_r_q_0_reg");
  ASSERT_NE(ff, kInvalidId);
  EXPECT_EQ(back.cell(ff).tag, "addr:data:0");
}

TEST(VerilogRoundTrip, SimulationEquivalent) {
  const Netlist orig = small_design();
  const Netlist back = parse_verilog(write_verilog(orig));
  PackedSim p1(orig), p2(back);
  Rng rng(5);
  const NetId a1 = orig.find_input("a"), b1 = orig.find_input("b"),
              r1 = orig.find_input("rstn");
  const NetId a2 = back.find_input("a"), b2 = back.find_input("b"),
              r2 = back.find_input("rstn");
  for (int cyc = 0; cyc < 20; ++cyc) {
    const bool av = rng.next_bool(), bv = rng.next_bool(), rv = cyc > 1;
    p1.set_input_all(a1, av);
    p1.set_input_all(b1, bv);
    p1.set_input_all(r1, rv);
    p2.set_input_all(a2, av);
    p2.set_input_all(b2, bv);
    p2.set_input_all(r2, rv);
    p1.eval();
    p2.eval();
    for (const char* port : {"q", "comb"}) {
      EXPECT_EQ(p1.observed(orig.find_output(port)) & 1,
                p2.observed(back.find_output(port)) & 1)
          << port << " cycle " << cyc;
    }
    p1.clock();
    p2.clock();
  }
}

TEST(VerilogRoundTrip, FullSocNetlist) {
  // The whole case-study SoC survives a write/parse cycle bit-for-bit in
  // structure. This exercises every cell type the generator emits.
  SocConfig cfg;
  cfg.cpu.btb_entries = 2;
  auto soc = build_soc(cfg);
  const std::string text = write_verilog(soc->netlist);
  const Netlist back = parse_verilog(text);
  EXPECT_TRUE(back.validate().empty());
  const auto s1 = soc->netlist.stats();
  const auto s2 = back.stats();
  EXPECT_EQ(s1.cells, s2.cells);
  EXPECT_EQ(s1.pins, s2.pins);
  EXPECT_EQ(s1.flops, s2.flops);
  // Address tags survive for the memory-map pass.
  EXPECT_FALSE(find_address_registers(back).empty());
}

TEST(VerilogParser, AcceptsBodyDeclarationStyle) {
  const char* text = R"(
module t ();
  input a;
  input b;
  output y;
  wire n1;
  AND2 g1 (.Y(n1), .A(a), .B(b));
  assign y = n1;
endmodule
)";
  const Netlist nl = parse_verilog(text);
  EXPECT_EQ(nl.stats().inputs, 2u);
  EXPECT_EQ(nl.stats().outputs, 1u);
  EXPECT_EQ(nl.stats().gates, 1u);
}

TEST(VerilogParser, ErrorsCarryLineNumbers) {
  const char* text = R"(
module t (input a, output y);
  wire n1;
  FROB g1 (.Y(n1), .A(a));
  assign y = n1;
endmodule
)";
  try {
    parse_verilog(text);
    FAIL() << "expected VerilogError";
  } catch (const VerilogError& e) {
    EXPECT_EQ(e.line(), 4);
    EXPECT_NE(std::string(e.what()).find("unknown cell type"),
              std::string::npos);
  }
}

TEST(VerilogParser, RejectsUndeclaredNet) {
  const char* text = R"(
module t (input a, output y);
  BUF g1 (.Y(mystery), .A(a));
  assign y = mystery;
endmodule
)";
  EXPECT_THROW(parse_verilog(text), VerilogError);
}

TEST(VerilogParser, RejectsMissingOutputAssign) {
  const char* text = R"(
module t (input a, output y);
  wire n1;
  BUF g1 (.Y(n1), .A(a));
endmodule
)";
  EXPECT_THROW(parse_verilog(text), VerilogError);
}

TEST(VerilogParser, RejectsDoubleDriver) {
  const char* text = R"(
module t (input a, output y);
  wire n1;
  BUF g1 (.Y(n1), .A(a));
  BUF g2 (.Y(n1), .A(a));
  assign y = n1;
endmodule
)";
  EXPECT_THROW(parse_verilog(text), VerilogError);
}

TEST(VerilogParser, RejectsUnconnectedPin) {
  const char* text = R"(
module t (input a, output y);
  wire n1;
  AND2 g1 (.Y(n1), .A(a));
  assign y = n1;
endmodule
)";
  EXPECT_THROW(parse_verilog(text), VerilogError);
}

TEST(VerilogParser, EscapedIdentifiersRoundTrip) {
  const char* text =
      "module t (input \\a/b , output \\y[0] );\n"
      "  wire \\n.1 ;\n"
      "  NOT \\u/inv (.Y(\\n.1 ), .A(\\a/b ));\n"
      "  assign \\y[0] = \\n.1 ;\n"
      "endmodule\n";
  const Netlist nl = parse_verilog(text);
  EXPECT_NE(nl.find_input("a/b"), kInvalidId);
  EXPECT_NE(nl.find_cell("u/inv"), kInvalidId);
  // And writing it back keeps the escapes parseable.
  const Netlist again = parse_verilog(write_verilog(nl));
  EXPECT_EQ(again.stats().cells, nl.stats().cells);
}

TEST(VerilogParser, TieCellsAndAllGateArities) {
  const char* text = R"(
module t (input a, input b, input c, input d, output y);
  wire t0; wire t1; wire n1; wire n2; wire n3; wire n4; wire n5;
  TIE0 u_t0 (.Y(t0));
  TIE1 u_t1 (.Y(t1));
  AND4 g1 (.Y(n1), .A(a), .B(b), .C(c), .D(d));
  NOR3 g2 (.Y(n2), .A(n1), .B(t0), .C(t1));
  XNOR2 g3 (.Y(n3), .A(n2), .B(a));
  NAND4 g4 (.Y(n4), .A(n3), .B(b), .C(c), .D(d));
  OR3 g5 (.Y(n5), .A(n4), .B(n3), .C(t0));
  assign y = n5;
endmodule
)";
  const Netlist nl = parse_verilog(text);
  EXPECT_EQ(nl.stats().gates, 5u);
  EXPECT_EQ(nl.stats().ties, 2u);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(VerilogParser, PositionIndependentPinOrder) {
  // Named connections may appear in any order.
  const char* text = R"(
module t (input a, input b, input s, output y);
  wire n1;
  MUX2 g1 (.S(s), .B(b), .Y(n1), .A(a));
  assign y = n1;
endmodule
)";
  const Netlist nl = parse_verilog(text);
  const CellId g = nl.find_cell("g1");
  ASSERT_NE(g, kInvalidId);
  EXPECT_EQ(nl.cell(g).ins[kMuxA], nl.find_input("a"));
  EXPECT_EQ(nl.cell(g).ins[kMuxB], nl.find_input("b"));
  EXPECT_EQ(nl.cell(g).ins[kMuxS], nl.find_input("s"));
}

TEST(VerilogParser, RejectsBadPinName) {
  const char* text = R"(
module t (input a, output y);
  wire n1;
  BUF g1 (.Q(n1), .A(a));
  assign y = n1;
endmodule
)";
  EXPECT_THROW(parse_verilog(text), VerilogError);
}

}  // namespace
}  // namespace olfui
