// E3 — Fig. 2: mux-scan structure and the faults related to scan behaviour.
//
// Per scanned flop, with SE tied to functional mode:
//   SI s-a-0 / s-a-1        -> on-line untestable (never selected)
//   SE s-a-<functional>     -> on-line untestable (tied)
//   SE s-a-<scan value>     -> REMAINS TESTABLE ("the only fault that
//                              needs to be taken into consideration")
//   FI / FO (D, Q)          -> remain testable
//   serial-path buffers     -> on-line untestable
// The bench prints the classification for one flop (the figure) and the
// aggregate over every scanned flop of the SoC (the claim).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analyzer.hpp"
#include "scan/scan.hpp"

namespace {

using namespace olfui;

const char* cls(const FaultList& fl, FaultId f) {
  if (fl.untestable_kind(f) == UntestableKind::kNone) return "testable";
  return "on-line untestable";
}

void print_fig2() {
  auto soc = build_soc({});
  const FaultUniverse u(soc->netlist);
  FaultList fl(u);
  const ScanChains chains = trace_scan(soc->netlist);
  prune_scan_faults(chains, u, fl);

  std::printf("== E3: Fig. 2 mux-scan fault classification =====================\n");
  const ScanElement& e = chains.chains[0].elements[0];
  const Netlist& nl = soc->netlist;
  std::printf("flop %s, scan mux %s (SE functional value = %d):\n",
              nl.cell(e.flop).name.c_str(), nl.cell(e.mux).name.c_str(),
              chains.se_functional_value ? 1 : 0);
  const auto row = [&](Pin pin, const char* label, bool sa1) {
    const FaultId f = u.id_of(pin, sa1);
    std::printf("  %-4s s-a-%d : %s\n", label, sa1 ? 1 : 0, cls(fl, f));
  };
  row({e.mux, kMuxB + 1}, "SI", false);
  row({e.mux, kMuxB + 1}, "SI", true);
  row({e.mux, kMuxS + 1}, "SE", false);
  row({e.mux, kMuxS + 1}, "SE", true);
  row({e.mux, kMuxA + 1}, "FI", false);
  row({e.mux, kMuxA + 1}, "FI", true);
  row({e.flop, 0}, "FO", false);
  row({e.flop, 0}, "FO", true);

  // Aggregate over all scanned flops.
  std::size_t flops = 0, si_pruned = 0, se_func_pruned = 0, se_scan_kept = 0,
              fi_kept = 0;
  for (const ScanChain& chain : chains.chains) {
    for (const ScanElement& el : chain.elements) {
      ++flops;
      const Pin si{el.mux, kMuxB + 1}, se{el.mux, kMuxS + 1},
          fi{el.mux, kMuxA + 1};
      si_pruned +=
          (fl.untestable_kind(u.id_of(si, false)) != UntestableKind::kNone) +
          (fl.untestable_kind(u.id_of(si, true)) != UntestableKind::kNone);
      se_func_pruned += fl.untestable_kind(u.id_of(
                            se, chains.se_functional_value)) != UntestableKind::kNone;
      se_scan_kept += fl.untestable_kind(u.id_of(
                          se, !chains.se_functional_value)) == UntestableKind::kNone;
      fi_kept +=
          (fl.untestable_kind(u.id_of(fi, false)) == UntestableKind::kNone) +
          (fl.untestable_kind(u.id_of(fi, true)) == UntestableKind::kNone);
    }
  }
  std::printf("aggregate over %zu scanned flops:\n", flops);
  std::printf("  SI faults pruned:            %zu / %zu\n", si_pruned, 2 * flops);
  std::printf("  SE s-a-functional pruned:    %zu / %zu\n", se_func_pruned, flops);
  std::printf("  SE s-a-scan kept testable:   %zu / %zu\n", se_scan_kept, flops);
  std::printf("  FI faults kept testable:     %zu / %zu\n", fi_kept, 2 * flops);
  std::printf("  total scan-class faults:     %zu\n\n",
              fl.count_source(OnlineSource::kScan));
}

void BM_TraceScanChains(benchmark::State& state) {
  auto soc = build_soc({});
  for (auto _ : state) benchmark::DoNotOptimize(trace_scan(soc->netlist));
}
BENCHMARK(BM_TraceScanChains)->Unit(benchmark::kMillisecond);

void BM_PruneScanFaults(benchmark::State& state) {
  auto soc = build_soc({});
  const FaultUniverse u(soc->netlist);
  const ScanChains chains = trace_scan(soc->netlist);
  for (auto _ : state) {
    FaultList fl(u);
    benchmark::DoNotOptimize(prune_scan_faults(chains, u, fl));
  }
}
BENCHMARK(BM_PruneScanFaults)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
