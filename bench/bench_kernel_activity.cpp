// Kernel activity: event-driven eval() vs the levelized full sweep on the
// SBST campaign workload.
//
// The event-driven kernel only visits cells whose input words changed, so
// its win is the complement of the workload's activity ratio: on a CPU
// running self-test code most of the netlist is quiet on any given eval
// (idle multiplier rows, untouched BTB tags, stable high address bits).
// This bench grades identical fault batches with both kernels on one
// simulator thread, reports cycles/sec, the measured activity ratio
// (cells evaluated / cells a sweep would have evaluated), and the
// speedup, cross-checks that both kernels detect the bit-identical fault
// set, and writes BENCH_kernel.json for the perf trajectory. CI runs it
// as a smoke test.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <span>
#include <vector>

#include "campaign/json.hpp"
#include "cpu/soc.hpp"
#include "fault/universe.hpp"
#include "fsim/fsim.hpp"
#include "sbst/sbst.hpp"

namespace {

using namespace olfui;

SocConfig lean_config() {
  SocConfig cfg;
  cfg.cpu.with_multiplier = false;
  cfg.cpu.btb_entries = 2;
  cfg.scan.num_chains = 4;
  return cfg;
}

struct KernelRun {
  double wall_seconds = 0;
  double cycles_per_second = 0;
  double activity_ratio = 0;  ///< cells evaluated / sweep-equivalent cells
  /// Scheduler-overhead counters for the graded slice (PackedActivity):
  /// how much bookkeeping the event arena and the dirty-D clock did.
  std::uint64_t events_drained = 0;
  std::uint64_t sched_pushes = 0;
  std::uint64_t flops_latched = 0;
  std::uint64_t flops_skipped = 0;
  std::vector<bool> detections;  ///< per-target flags (cross-check)
};

/// Grades `targets` in (W-1)-fault batches with one kernel on one thread.
template <int W>
KernelRun run_kernel_w(const Soc& soc, const FaultUniverse& universe,
                       SbstProgram& program, int good_cycles,
                       std::span<const FaultId> targets, bool event_driven,
                       bool incremental) {
  const int max_cycles = good_cycles + 8;
  FlashImage flash(soc.config.flash_base, soc.config.flash_size);
  flash.load(program.program.base(), program.program.words());

  SocFsimEnvironmentT<W> trace_env(soc, flash, max_cycles);
  SequentialFaultSimulatorT<W> tracer(
      soc.netlist, universe,
      {.max_cycles = max_cycles,
       .event_driven = event_driven,
       .incremental_clocking = incremental});
  tracer.set_observed(soc.cpu.bus_output_cells);
  const ReferenceTrace trace = tracer.record_reference_trace(trace_env);

  SocFsimEnvironmentT<W> env(soc, flash, max_cycles);
  SequentialFaultSimulatorT<W> fsim(
      soc.netlist, universe,
      {.max_cycles = max_cycles,
       .event_driven = event_driven,
       .incremental_clocking = incremental});
  fsim.set_observed(soc.cpu.bus_output_cells);

  KernelRun run;
  fsim.sim().reset_activity();
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t batch_cycles = 0;
  constexpr std::size_t kBatch = W - 1;
  for (std::size_t i = 0; i < targets.size(); i += kBatch) {
    const std::size_t n = std::min(kBatch, targets.size() - i);
    const LaneMask det = fsim.run_batch(targets.subspan(i, n), env, &trace);
    for (std::size_t j = 0; j < n; ++j)
      run.detections.push_back(det.bit(static_cast<int>(j)));
    batch_cycles += static_cast<std::uint64_t>(trace.cycles);
  }
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const PackedActivity& act = fsim.sim().activity();
  const double sweep_equivalent = static_cast<double>(act.evals) *
                                  static_cast<double>(fsim.sim().comb_cell_count());
  run.activity_ratio =
      sweep_equivalent > 0
          ? static_cast<double>(act.cells_evaluated) / sweep_equivalent
          : 0.0;
  run.events_drained = act.events_drained;
  run.sched_pushes = act.sched_pushes;
  run.flops_latched = act.flops_latched;
  run.flops_skipped = act.flops_skipped;
  run.cycles_per_second = run.wall_seconds > 0
                              ? static_cast<double>(batch_cycles) / run.wall_seconds
                              : 0.0;
  return run;
}

/// Runtime-width front end; `lanes` must be a supported width
/// (lane_width_supported).
KernelRun run_kernel(const Soc& soc, const FaultUniverse& universe,
                     SbstProgram& program, int good_cycles,
                     std::span<const FaultId> targets, bool event_driven,
                     bool incremental = true, int lanes = 64) {
#if OLFUI_HAS_WIDE_LANES
  if (lanes == 128)
    return run_kernel_w<128>(soc, universe, program, good_cycles, targets,
                             event_driven, incremental);
  if (lanes == 256)
    return run_kernel_w<256>(soc, universe, program, good_cycles, targets,
                             event_driven, incremental);
#endif
  (void)lanes;
  return run_kernel_w<64>(soc, universe, program, good_cycles, targets,
                          event_driven, incremental);
}

void run_activity_table() {
  const SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  const FaultUniverse universe(soc->netlist);
  auto suite = build_sbst_suite(cfg);
  const std::vector<int> cycles = run_suite_functional(*soc, suite);

  // A fixed fault slice keeps the bench comparable across runs and fast
  // enough for a CI smoke test.
  std::vector<FaultId> targets;
  for (FaultId f = 0; f < universe.size() && targets.size() < 2048; f += 5)
    targets.push_back(f);

  std::printf("== kernel activity: event-driven vs full sweep ===================\n");
  std::printf("netlist: %zu cells, universe: %zu faults, slice: %zu faults\n\n",
              soc->netlist.num_cells(), universe.size(), targets.size());
  std::printf("%12s %12s %14s %10s %10s %9s\n", "program", "kernel",
              "cycles/sec", "wall [s]", "activity", "speedup");

  Json programs = Json::array();
  bool all_identical = true;
  double speedup_product = 1.0;
  int speedup_count = 0;
  // Two contrasting programs: a straight-line ALU burst and the
  // branch/BTB exerciser (control-heavy, long loops).
  for (const std::size_t pi : {std::size_t{0}, std::size_t{4}}) {
    if (pi >= suite.size()) continue;
    const KernelRun sweep =
        run_kernel(*soc, universe, suite[pi], cycles[pi], targets, false);
    const KernelRun event =
        run_kernel(*soc, universe, suite[pi], cycles[pi], targets, true);
    const bool identical = event.detections == sweep.detections;
    all_identical &= identical;
    const double speedup = sweep.wall_seconds > 0 && event.wall_seconds > 0
                               ? sweep.wall_seconds / event.wall_seconds
                               : 0.0;
    speedup_product *= speedup;
    ++speedup_count;
    std::printf("%12s %12s %14.0f %10.3f %9.1f%% %9s\n",
                suite[pi].name.c_str(), "sweep", sweep.cycles_per_second,
                sweep.wall_seconds, 100.0 * sweep.activity_ratio, "1.00x");
    std::printf("%12s %12s %14.0f %10.3f %9.1f%% %8.2fx  %s\n",
                suite[pi].name.c_str(), "event", event.cycles_per_second,
                event.wall_seconds, 100.0 * event.activity_ratio, speedup,
                identical ? "[detections identical]" : "[MISMATCH!]");

    Json p = Json::object();
    p.set("program", suite[pi].name);
    p.set("good_cycles", cycles[pi]);
    p.set("sweep_cycles_per_second", sweep.cycles_per_second);
    p.set("event_cycles_per_second", event.cycles_per_second);
    p.set("sweep_wall_seconds", sweep.wall_seconds);
    p.set("event_wall_seconds", event.wall_seconds);
    p.set("event_activity_ratio", event.activity_ratio);
    p.set("speedup", speedup);
    p.set("detections_identical", identical);
    programs.push_back(std::move(p));
  }

  // Per-width throughput + scheduler overhead: the same slice through
  // every instantiated packed width (event-driven kernel, program 0),
  // detections cross-checked bit-identical against the 64-lane baseline.
  // The overhead counters (events drained, arena pushes, flops latched /
  // skipped) track the per-cell bookkeeping that dominates at the wide
  // widths — the ROADMAP bottleneck claim — across PRs. Widths the build
  // did not instantiate are reported as skipped, not silently dropped.
  std::printf("\n%6s %12s %9s %7s %11s %11s %9s %9s\n", "width",
              "cycles/sec", "wall [s]", "vs 64", "drained", "pushes",
              "latched", "skipped");
  Json widths = Json::array();
  std::vector<bool> baseline;
  double base_wall = 0;
  for (const int lanes : {64, 128, 256}) {
    Json wj = Json::object();
    wj.set("lanes", lanes);
    if (!lane_width_supported(lanes)) {
      std::printf("%6d %12s\n", lanes, "(not built)");
      wj.set("supported", false);
      widths.push_back(std::move(wj));
      continue;
    }
    const KernelRun r = run_kernel(*soc, universe, suite[0], cycles[0],
                                   targets, true, true, lanes);
    if (lanes == 64) {
      baseline = r.detections;
      base_wall = r.wall_seconds;
    }
    const bool identical = r.detections == baseline;
    all_identical &= identical;
    const double vs64 = base_wall > 0 && r.wall_seconds > 0
                            ? base_wall / r.wall_seconds
                            : 0.0;
    std::printf("%6d %12.0f %9.3f %6.2fx %11llu %11llu %9llu %9llu  %s\n",
                lanes, r.cycles_per_second, r.wall_seconds, vs64,
                static_cast<unsigned long long>(r.events_drained),
                static_cast<unsigned long long>(r.sched_pushes),
                static_cast<unsigned long long>(r.flops_latched),
                static_cast<unsigned long long>(r.flops_skipped),
                identical ? "[detections identical]" : "[MISMATCH!]");
    wj.set("supported", true);
    wj.set("cycles_per_second", r.cycles_per_second);
    wj.set("wall_seconds", r.wall_seconds);
    wj.set("speedup_vs_64", vs64);
    wj.set("events_drained", r.events_drained);
    wj.set("sched_pushes", r.sched_pushes);
    wj.set("flops_latched", r.flops_latched);
    wj.set("flops_skipped", r.flops_skipped);
    wj.set("detections_identical", identical);
    widths.push_back(std::move(wj));
  }

  // Clocking modes: the full-sweep oracle vs the event kernel with the
  // full two-pass latch vs the shipped default (event + dirty-D
  // incremental clocking), all on the same slice. The three detection
  // vectors must be bit-identical — CI greps the flag.
  std::printf("\n%24s %14s %10s %9s %9s\n", "clocking", "cycles/sec",
              "wall [s]", "latched", "skipped");
  const KernelRun ck_sweep =
      run_kernel(*soc, universe, suite[0], cycles[0], targets, false, false);
  const KernelRun ck_full =
      run_kernel(*soc, universe, suite[0], cycles[0], targets, true, false);
  const KernelRun ck_incr =
      run_kernel(*soc, universe, suite[0], cycles[0], targets, true, true);
  const bool clocking_identical = ck_full.detections == ck_sweep.detections &&
                                  ck_incr.detections == ck_sweep.detections;
  all_identical &= clocking_identical;
  const auto print_clocking = [](const char* label, const KernelRun& r) {
    std::printf("%24s %14.0f %10.3f %9llu %9llu\n", label,
                r.cycles_per_second, r.wall_seconds,
                static_cast<unsigned long long>(r.flops_latched),
                static_cast<unsigned long long>(r.flops_skipped));
  };
  print_clocking("sweep oracle", ck_sweep);
  print_clocking("event + full latch", ck_full);
  print_clocking("event + incremental", ck_incr);
  std::printf("%24s %s\n", "",
              clocking_identical ? "[detections identical]" : "[MISMATCH!]");
  const auto clocking_json = [](const KernelRun& r) {
    Json cj = Json::object();
    cj.set("cycles_per_second", r.cycles_per_second);
    cj.set("wall_seconds", r.wall_seconds);
    cj.set("flops_latched", r.flops_latched);
    cj.set("flops_skipped", r.flops_skipped);
    return cj;
  };
  Json clocking = Json::object();
  clocking.set("sweep", clocking_json(ck_sweep));
  clocking.set("event_full_latch", clocking_json(ck_full));
  clocking.set("event_incremental", clocking_json(ck_incr));
  clocking.set("incremental_speedup",
               ck_incr.wall_seconds > 0
                   ? ck_full.wall_seconds / ck_incr.wall_seconds
                   : 0.0);

  Json doc = Json::object();
  doc.set("bench", "kernel_activity");
  doc.set("cells", soc->netlist.num_cells());
  doc.set("universe", universe.size());
  doc.set("fault_slice", targets.size());
  doc.set("programs", std::move(programs));
  doc.set("lane_widths", std::move(widths));
  doc.set("clocking", std::move(clocking));
  doc.set("clocking_detections_identical", clocking_identical);
  doc.set("all_detections_identical", all_identical);
  std::ofstream("BENCH_kernel.json") << doc.dump(2) << "\n";

  std::printf("\n%s; geometric-mean speedup %.2fx; BENCH_kernel.json written.\n\n",
              all_identical ? "detections bit-identical across kernels"
                            : "DETECTION MISMATCH — kernel bug!",
              speedup_count > 0
                  ? std::pow(speedup_product, 1.0 / speedup_count)
                  : 0.0);
}

/// Microbenchmark: one batch through each kernel, for -benchmark_filter use.
void BM_KernelBatch(benchmark::State& state) {
  const bool event_driven = state.range(0) != 0;
  const SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  const FaultUniverse universe(soc->netlist);
  auto suite = build_sbst_suite(cfg);
  const std::vector<int> cycles = run_suite_functional(*soc, suite);
  std::vector<FaultId> targets;
  for (FaultId f = 0; f < universe.size() && targets.size() < 63; f += 11)
    targets.push_back(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_kernel(*soc, universe, suite[0], cycles[0],
                                        targets, event_driven));
  }
}
BENCHMARK(BM_KernelBatch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_activity_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
