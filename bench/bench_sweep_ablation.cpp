// Ablation — constant sweep vs the fault taxonomy.
//
// Structurally untestable faults live in redundant/constant logic that a
// synthesis cleanup would simply delete; on-line functionally untestable
// faults live in logic the chip NEEDS (scan, debug, addressing) that the
// mission environment merely cannot reach. Sweeping the netlist therefore
// collapses the "Original/structural" class while the Table-I rows
// survive almost unchanged — direct evidence for the paper's distinction
// between structural and on-line functional untestability (Fig. 1).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analyzer.hpp"
#include "netlist/sweep.hpp"
#include "util/strings.hpp"

namespace {

using namespace olfui;

/// Rebinds the mission information (debug port names, memory map) onto a
/// swept netlist so the analyzer can run on it.
std::unique_ptr<Soc> rebind_soc(Netlist&& netlist, const SocConfig& cfg) {
  auto soc = std::make_unique<Soc>();
  soc->config = cfg;
  soc->netlist = std::move(netlist);
  const Netlist& nl = soc->netlist;
  const char* kControls[] = {"dbg_en",     "dbg_wen",  "dbg_shift",
                             "jtag_tdi",   "jtag_tms", "jtag_trstn",
                             "dbg_halt",   "dbg_step", "dbg_resume"};
  for (const char* name : kControls) {
    const NetId n = nl.find_input(name);
    if (n == kInvalidId) continue;
    soc->debug.control_inputs.push_back(n);
    soc->debug.control_values.push_back(false);
  }
  for (int i = 0; i < 8; ++i) {
    const NetId n = nl.find_input(format("dbg_sel%d", i));
    if (n == kInvalidId) continue;
    soc->debug.control_inputs.push_back(n);
    soc->debug.control_values.push_back(false);
  }
  for (int i = 0;; ++i) {
    const CellId c = nl.find_output(format("dbg_gpr_out%d", i));
    if (c == kInvalidId) break;
    soc->debug.observe_outputs.push_back(c);
  }
  for (int i = 0;; ++i) {
    const CellId c = nl.find_output(format("dbg_spr_out%d", i));
    if (c == kInvalidId) break;
    soc->debug.observe_outputs.push_back(c);
  }
  soc->map.add_range("flash", cfg.flash_base, cfg.flash_size);
  soc->map.add_range("ram", cfg.ram_base, cfg.ram_size);
  return soc;
}

void print_ablation() {
  const SocConfig cfg;
  auto original = build_soc(cfg);
  SweepStats st;
  Netlist swept_nl = constant_sweep(original->netlist, &st);
  auto swept = rebind_soc(std::move(swept_nl), cfg);

  std::printf("== ablation: constant sweep vs fault taxonomy ====================\n");
  std::printf("sweep: %zu -> %zu cells (%zu constant-folded, %zu simplified, "
              "%zu dead)\n",
              st.cells_in, st.cells_out, st.folded_constant, st.simplified,
              st.dead_removed);

  const auto analyze = [](const Soc& soc) {
    const FaultUniverse u(soc.netlist);
    FaultList fl(u);
    OnlineUntestabilityAnalyzer az(soc, u);
    AnalysisReport rep = az.run(fl);
    return std::make_pair(rep, u.size());
  };
  const auto [orig_rep, orig_n] = analyze(*original);
  const auto [swept_rep, swept_n] = analyze(*swept);

  std::printf("%-18s %14s %14s\n", "", "original", "swept");
  std::printf("%-18s %14zu %14zu\n", "fault universe", orig_n, swept_n);
  std::printf("%-18s %14zu %14zu\n", "structural", orig_rep.structural_baseline,
              swept_rep.structural_baseline);
  std::printf("%-18s %14zu %14zu\n", "scan", orig_rep.scan, swept_rep.scan);
  std::printf("%-18s %14zu %14zu\n", "debug",
              orig_rep.debug_control + orig_rep.debug_observe,
              swept_rep.debug_control + swept_rep.debug_observe);
  std::printf("%-18s %14zu %14zu\n", "memory-map", orig_rep.memmap,
              swept_rep.memmap);
  std::printf("%-18s %13.1f%% %13.1f%%\n", "on-line share", orig_rep.online_pct(),
              swept_rep.online_pct());
  std::printf("structural class shrinks %.0f%%; on-line classes persist.\n\n",
              orig_rep.structural_baseline == 0
                  ? 0.0
                  : 100.0 * (1.0 - static_cast<double>(swept_rep.structural_baseline) /
                                       static_cast<double>(orig_rep.structural_baseline)));
}

void BM_ConstantSweep(benchmark::State& state) {
  auto soc = build_soc({});
  for (auto _ : state)
    benchmark::DoNotOptimize(constant_sweep(soc->netlist));
}
BENCHMARK(BM_ConstantSweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
