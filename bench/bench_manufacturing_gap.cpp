// Ablation — manufacturing coverage vs mission coverage on one netlist.
//
// The gap between what a tester can reach through the scan chains and
// what a mission-mode self-test can reach through the system bus IS the
// paper's subject: the on-line functionally untestable faults live inside
// that gap. This bench measures both coverages on the same (lean) SoC:
//
//   manufacturing = chain test + random full-scan + deterministic PODEM,
//                   all primary outputs observable;
//   mission       = SBST suite, system-bus observability only.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analyzer.hpp"
#include "sbst/sbst.hpp"
#include "scan/scan_atpg.hpp"

namespace {

using namespace olfui;

SocConfig lean_config() {
  SocConfig cfg;
  cfg.cpu.with_multiplier = false;
  cfg.cpu.btb_entries = 2;
  cfg.scan.num_chains = 8;  // short chains keep pattern application fast
  return cfg;
}

void print_gap() {
  const SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  const FaultUniverse universe(soc->netlist);

  // Mission side.
  FaultList mission(universe);
  auto suite = build_sbst_suite(cfg);
  run_sbst_campaign(*soc, suite, mission);
  const double mission_raw = mission.raw_coverage();
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  analyzer.run(mission);
  const double mission_pruned = mission.pruned_coverage();

  // Manufacturing side.
  FaultList manuf(universe);
  ScanAtpgOptions opts;
  opts.random_patterns = 48;
  opts.max_deterministic_targets = 1500;
  opts.pin_constraints = {{soc->cpu.rstn, true}};
  const ScanChains chains = trace_scan(soc->netlist);
  const ScanAtpgResult atpg =
      generate_scan_tests(soc->netlist, chains, universe, manuf, opts);

  std::printf("== ablation: manufacturing vs mission testability ================\n");
  std::printf("universe: %zu faults (lean SoC)\n\n", universe.size());
  std::printf("manufacturing (scan access, all outputs):\n");
  std::printf("  chain test:        %zu faults\n", atpg.detected_by_chain_test);
  std::printf("  random patterns:   %zu faults (%zu kept patterns)\n",
              atpg.detected_by_random, atpg.patterns.size());
  std::printf("  deterministic:     %zu faults, %zu proven redundant, %zu aborted\n",
              atpg.detected_by_deterministic, atpg.proven_untestable,
              atpg.aborted);
  std::printf("  coverage:          %.2f%%\n\n", 100.0 * manuf.raw_coverage());
  std::printf("mission (SBST via system bus):\n");
  std::printf("  raw coverage:      %.2f%%\n", 100.0 * mission_raw);
  std::printf("  pruned coverage:   %.2f%%\n\n", 100.0 * mission_pruned);
  std::printf("gap manufacturing - mission(raw): %.2f points — the habitat of\n"
              "on-line functionally untestable faults.\n\n",
              100.0 * (manuf.raw_coverage() - mission_raw));
}

void BM_ChainTestBatch(benchmark::State& state) {
  const SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  const FaultUniverse universe(soc->netlist);
  const ScanChains chains = trace_scan(soc->netlist);
  ScanTestRunner runner(soc->netlist, chains);
  runner.set_pin_constraint(soc->cpu.rstn, true);
  std::vector<FaultId> batch;
  for (FaultId f = 0; f < 63; ++f)
    batch.push_back(f * 131 % universe.size());
  for (auto _ : state)
    benchmark::DoNotOptimize(runner.run_chain_test(batch, universe));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 63);
}
BENCHMARK(BM_ChainTestBatch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_gap();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
