// E2 — Fig. 1: the containment of fault categories.
//
//   structurally untestable ⊂ functionally untestable
//                           ⊂ on-line functionally untestable ⊂ universe
//
// Operationalization on the reproduction SoC:
//   structural  = untestable with full pin access (tie-cell redundancy);
//   functional  = structural + memory-map restrictions (they constrain
//                 mission operation even with full DfT access);
//   on-line     = functional + scan + debug restrictions.
// The bench prints the set sizes and verifies containment fault by fault.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analyzer.hpp"

namespace {

using namespace olfui;

void print_categories() {
  auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);

  AnalyzerOptions structural_only;
  structural_only.run_scan = structural_only.run_debug_control = false;
  structural_only.run_debug_observe = structural_only.run_memmap = false;
  FaultList structural(universe);
  analyzer.run(structural, structural_only);

  AnalyzerOptions functional_only = structural_only;
  functional_only.run_memmap = true;
  FaultList functional(universe);
  analyzer.run(functional, functional_only);

  FaultList online(universe);
  analyzer.run(online);

  const std::size_t s = structural.count_untestable();
  const std::size_t f = functional.count_untestable();
  const std::size_t o = online.count_untestable();

  bool s_in_f = true, f_in_o = true;
  for (FaultId id = 0; id < universe.size(); ++id) {
    if (structural.untestable_kind(id) != UntestableKind::kNone &&
        functional.untestable_kind(id) == UntestableKind::kNone)
      s_in_f = false;
    if (functional.untestable_kind(id) != UntestableKind::kNone &&
        online.untestable_kind(id) == UntestableKind::kNone)
      f_in_o = false;
  }

  std::printf("== E2: Fig. 1 fault-category containment ========================\n");
  std::printf("%-38s %10s %8s\n", "category", "faults", "share");
  const double total = static_cast<double>(universe.size());
  std::printf("%-38s %10zu %7.1f%%\n", "ON-LINE FAULT UNIVERSE", universe.size(),
              100.0);
  std::printf("%-38s %10zu %7.1f%%\n", "  on-line functionally untestable", o,
              100.0 * static_cast<double>(o) / total);
  std::printf("%-38s %10zu %7.1f%%\n", "    functionally untestable", f,
              100.0 * static_cast<double>(f) / total);
  std::printf("%-38s %10zu %7.1f%%\n", "      structurally untestable", s,
              100.0 * static_cast<double>(s) / total);
  std::printf("%-38s %10zu %7.1f%%\n", "  on-line detectable (upper bound)",
              universe.size() - o, 100.0 * static_cast<double>(universe.size() - o) / total);
  std::printf("containment: structural ⊆ functional: %s, functional ⊆ on-line: %s\n\n",
              s_in_f ? "HOLDS" : "VIOLATED", f_in_o ? "HOLDS" : "VIOLATED");
}

void BM_CategoryClassification(benchmark::State& state) {
  auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  for (auto _ : state) {
    FaultList online(universe);
    benchmark::DoNotOptimize(analyzer.run(online));
  }
}
BENCHMARK(BM_CategoryClassification)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_categories();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
