// E7 — §4: "the identification of on-line untestable faults permitted to
// raise by about 13% the stuck-at fault coverage".
//
// The SBST suite is fault-simulated against the full SoC with the paper's
// observability rule (system bus only). Coverage is then reported twice:
// raw (detected / all faults) and pruned (detected / testable faults after
// removing the on-line functionally untestable ones). The paper's effect
// is the gap between the two.
//
// This is the heavyweight bench (minutes): a full sequential parallel-
// fault campaign over the whole universe.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analyzer.hpp"
#include "sbst/sbst.hpp"

namespace {

using namespace olfui;

void print_coverage_gain() {
  auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  FaultList fl(universe);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  const AnalysisReport rep = analyzer.run(fl);

  std::printf("== E7: SBST coverage before/after pruning =======================\n");
  std::printf("fault universe: %zu; pruned as on-line untestable: %zu (%.1f%%)\n",
              rep.universe, rep.total_online() + rep.structural_baseline,
              100.0 *
                  static_cast<double>(rep.total_online() + rep.structural_baseline) /
                  static_cast<double>(rep.universe));

  auto suite = build_sbst_suite(soc->config);
  const SbstCampaignResult result = run_sbst_campaign(
      *soc, suite, fl, [](const std::string&, std::size_t, std::size_t) {});

  std::printf("%-12s %8s %14s\n", "program", "cycles", "new detections");
  for (const auto& pp : result.programs)
    std::printf("%-12s %8d %14zu\n", pp.name.c_str(), pp.cycles,
                pp.new_detections);
  std::printf("orchestrator: %d threads, %zu batches, %.1f s, "
              "%.0f faults/sec\n",
              result.campaign.stats.threads, result.campaign.stats.batches,
              result.campaign.stats.wall_seconds,
              result.campaign.stats.faults_per_second);

  const double raw = fl.raw_coverage();
  const double pruned = fl.pruned_coverage();
  std::printf("\nfault coverage observing the system bus only:\n");
  std::printf("  before pruning (detected/all):        %6.2f%%\n", 100.0 * raw);
  std::printf("  after pruning (detected/testable):    %6.2f%%\n", 100.0 * pruned);
  std::printf("  gain:                                 %+6.2f points "
              "(paper: ~+13%%)\n\n",
              100.0 * (pruned - raw));
}

// Timing series: cost of one fault-simulation batch per program (the unit
// of the campaign) so throughput regressions show up without re-running
// the full campaign.
void BM_FsimBatch(benchmark::State& state) {
  auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  auto suite = build_sbst_suite(soc->config);
  SbstProgram& sp = suite[0];
  SocSimulator good(*soc);
  good.load_program(sp.program);
  const int cycles = good.run(5000);
  FlashImage flash(soc->config.flash_base, soc->config.flash_size);
  flash.load(sp.program.base(), sp.program.words());
  SequentialFaultSimulator fsim(soc->netlist, universe,
                                {.max_cycles = cycles + 8});
  fsim.set_observed(soc->cpu.bus_output_cells);
  std::vector<FaultId> batch;
  for (FaultId f = 0; f < 63; ++f) batch.push_back(f * 97 % universe.size());
  for (auto _ : state) {
    SocFsimEnvironment env(*soc, flash, cycles + 8);
    benchmark::DoNotOptimize(fsim.run_batch(batch, env));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 63);
}
BENCHMARK(BM_FsimBatch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_coverage_gain();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
