// E4 — Fig. 4 / §3.2: debug circuit fault classification.
//
// With the external debugger disconnected (DE tied inactive, observation
// buses floating):
//   DE s-a-<inactive>  -> on-line untestable     (§3.2.1)
//   DE s-a-<active>    -> REMAINS TESTABLE (would corrupt mission state)
//   DI s-a-0 / s-a-1   -> on-line untestable
//   DO (observation)   -> on-line untestable     (§3.2.2)
// The bench prints one debug write-mux classification and the control /
// observation totals of the case study flow ("4,548+2,357" in the paper).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analyzer.hpp"

namespace {

using namespace olfui;

void print_fig4() {
  auto soc = build_soc({});
  const FaultUniverse u(soc->netlist);
  FaultList fl(u);
  OnlineUntestabilityAnalyzer analyzer(*soc, u);
  const AnalysisReport rep = analyzer.run(fl);
  const Netlist& nl = soc->netlist;

  std::printf("== E4: Fig. 4 debug circuitry fault classification ===============\n");
  // The first debug write-mux of the GPR file (Fig. 4 structure).
  const CellId mux = nl.find_cell("dbg/u_wmux_0_0");
  if (mux != kInvalidId) {
    const auto cls = [&](Pin p, bool sa1) {
      const FaultId f = u.id_of(p, sa1);
      return fl.untestable_kind(f) == UntestableKind::kNone
                 ? "testable"
                 : "on-line untestable";
    };
    std::printf("debug write mux %s (D = DE ? DI : FI):\n", nl.cell(mux).name.c_str());
    std::printf("  DE s-a-0 : %s\n", cls({mux, kMuxS + 1}, false));
    std::printf("  DE s-a-1 : %s\n", cls({mux, kMuxS + 1}, true));
    std::printf("  DI s-a-0 : %s\n", cls({mux, kMuxB + 1}, false));
    std::printf("  DI s-a-1 : %s\n", cls({mux, kMuxB + 1}, true));
    std::printf("  FI s-a-0 : %s\n", cls({mux, kMuxA + 1}, false));
    std::printf("  FI s-a-1 : %s\n", cls({mux, kMuxA + 1}, true));
  }

  // Observation bus ports (Fig. 3's debug read path).
  std::size_t obs_port_faults = 0, obs_port_untestable = 0;
  for (CellId port : soc->debug.observe_outputs) {
    std::vector<FaultId> ids;
    u.faults_of_cell(port, ids);
    for (FaultId f : ids) {
      ++obs_port_faults;
      obs_port_untestable += fl.untestable_kind(f) != UntestableKind::kNone;
    }
  }
  std::printf("observation-bus port faults untestable: %zu / %zu\n",
              obs_port_untestable, obs_port_faults);
  std::printf("paper debug row: 4,548 control + 2,357 observation\n");
  std::printf("ours:            %zu control + %zu observation "
              "(%.1f%% of %zu faults)\n\n",
              rep.debug_control, rep.debug_observe,
              100.0 * static_cast<double>(rep.debug_control + rep.debug_observe) /
                  static_cast<double>(rep.universe),
              rep.universe);
}

void BM_DebugControlPass(benchmark::State& state) {
  auto soc = build_soc({});
  const FaultUniverse u(soc->netlist);
  const StructuralAnalyzer sta(soc->netlist, u);
  const MissionConfig cfg = debug_control_config(soc->debug);
  for (auto _ : state) {
    FaultList fl(u);
    const StaResult r = sta.analyze(cfg);
    benchmark::DoNotOptimize(
        sta.classify_faults(r, fl, OnlineSource::kDebugControl));
  }
}
BENCHMARK(BM_DebugControlPass)->Unit(benchmark::kMillisecond);

void BM_DebugObservePass(benchmark::State& state) {
  auto soc = build_soc({});
  const FaultUniverse u(soc->netlist);
  const StructuralAnalyzer sta(soc->netlist, u);
  MissionConfig cfg = debug_control_config(soc->debug);
  cfg.merge(debug_observe_config(soc->debug));
  for (auto _ : state) {
    FaultList fl(u);
    const StaResult r = sta.analyze(cfg);
    benchmark::DoNotOptimize(
        sta.classify_faults(r, fl, OnlineSource::kDebugObserve));
  }
}
BENCHMARK(BM_DebugObservePass)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
