// Extension — "We are currently working to extend the proposed technique
// to other fault models" (paper §5).
//
// Transition-delay faults (slow-to-rise / slow-to-fall) share the stuck-at
// sites, but launching a transition needs BOTH logic values at the site:
// every mission-constant net loses both of its transition faults, so the
// on-line untestable share for the transition model is strictly larger
// than for stuck-at. This bench reports the side-by-side Table-I rows, and
// then grades an SBST slice for BOTH models through the campaign
// orchestrator — one code path (CampaignEngine + SbstBatchRunner) produces
// the stuck-at and TDF coverage and runtime columns.
// The ReferenceTrace extension: run_tdf_batch used to re-record the good
// machine's site values once per batch (pass 1); with the shared all-net
// ReferenceTrace the launch schedules are read from the checkpoint, so
// only the capture-armed faulty pass runs. print_trace_sharing measures
// that amortization head-to-head and writes BENCH_tdf.json (the ROADMAP
// projected ~1.75x on the SBST workload).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <span>
#include <vector>

#include "campaign/json.hpp"
#include "core/analyzer.hpp"
#include "sbst/sbst.hpp"

namespace {

using namespace olfui;

void print_tdf_comparison() {
  auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);

  FaultList sa(universe), tdf(universe);
  const AnalysisReport sa_rep = analyzer.run(sa);
  AnalyzerOptions topts;
  topts.fault_model = FaultModel::kTransition;
  const AnalysisReport tdf_rep = analyzer.run(tdf, topts);

  std::printf("== extension: stuck-at vs transition-delay untestability ========\n");
  std::printf("(universe: %zu sites -> %zu faults per model)\n",
              universe.size() / 2, universe.size());
  std::printf("%-16s %14s %14s\n", "source", "stuck-at", "transition");
  const auto row = [&](const char* name, std::size_t a, std::size_t b) {
    std::printf("%-16s %14zu %14zu\n", name, a, b);
  };
  row("structural", sa_rep.structural_baseline, tdf_rep.structural_baseline);
  row("scan", sa_rep.scan, tdf_rep.scan);
  row("debug-control", sa_rep.debug_control, tdf_rep.debug_control);
  row("debug-observe", sa_rep.debug_observe, tdf_rep.debug_observe);
  row("memory-map", sa_rep.memmap, tdf_rep.memmap);
  row("TOTAL on-line", sa_rep.total_online(), tdf_rep.total_online());
  std::printf("share of universe: %.1f%% (stuck-at) vs %.1f%% (transition)\n",
              sa_rep.online_pct(), tdf_rep.online_pct());
  std::printf("transition-model pruning is strictly larger: %s\n\n",
              tdf_rep.total_online() + tdf_rep.structural_baseline >
                      sa_rep.total_online() + sa_rep.structural_baseline
                  ? "CONFIRMED"
                  : "VIOLATED");
}

/// Coverage + runtime for one model, suite and analysis pruning included —
/// the end-to-end path the unit tests exercise piecewise.
CampaignResult graded_campaign(FaultModel model) {
  SocConfig cfg;
  cfg.cpu.with_multiplier = false;  // keep the bench in seconds, not minutes
  auto soc = build_soc(cfg);
  auto suite = build_sbst_suite(cfg);
  suite.erase(suite.begin() + 2, suite.end());  // alu_arith + alu_logic
  const FaultUniverse universe(soc->netlist);
  FaultList fl(universe);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  AnalyzerOptions aopts;
  aopts.fault_model = model;
  analyzer.run(fl, aopts);

  CampaignOptions opts;
  opts.fault_model = model;
  return run_sbst_campaign(*soc, suite, fl, {}, opts).campaign;
}

void print_tdf_campaign() {
  std::printf("== extension: SBST slice graded for both models (one engine) ====\n");
  std::printf("%-12s %10s %12s %12s %12s %12s\n", "model", "targeted",
              "detected", "raw cov", "pruned cov", "wall [s]");
  for (const FaultModel model :
       {FaultModel::kStuckAt, FaultModel::kTransition}) {
    const CampaignResult r = graded_campaign(model);
    std::printf("%-12s %10zu %12zu %11.1f%% %11.1f%% %12.3f\n",
                std::string(to_string(model)).c_str(),
                r.tests.empty() ? 0 : r.tests.front().faults_targeted,
                r.total_new_detections, 100.0 * r.raw_coverage,
                100.0 * r.pruned_coverage, r.stats.wall_seconds);
  }
  std::printf("(TDF batches run two passes — a launch-schedule recording of "
              "the good machine, then the capture-armed faulty lanes)\n\n");
}

/// Launch-schedule sharing: identical TDF batches graded with and without
/// the shared ReferenceTrace. The untraced path pays a full good-machine
/// pass per batch (pass 1 never early-exits); the traced path reads the
/// schedules out of the one checkpoint recorded per test.
void print_trace_sharing() {
  SocConfig cfg;
  cfg.cpu.with_multiplier = false;
  auto soc = build_soc(cfg);
  auto suite = build_sbst_suite(cfg);
  SbstProgram& program = suite[0];  // alu_arith
  const FaultUniverse universe(soc->netlist);
  const std::vector<int> cycles = run_suite_functional(*soc, suite);
  const int max_cycles = cycles[0] + 8;

  FlashImage flash(soc->config.flash_base, soc->config.flash_size);
  flash.load(program.program.base(), program.program.words());

  SocFsimEnvironment trace_env(*soc, flash, max_cycles);
  SequentialFaultSimulator tracer(soc->netlist, universe,
                                  {.max_cycles = max_cycles});
  tracer.set_observed(soc->cpu.bus_output_cells);
  const auto trace_t0 = std::chrono::steady_clock::now();
  const ReferenceTrace trace = tracer.record_reference_trace(trace_env);
  const double record_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - trace_t0)
          .count();

  std::vector<FaultId> targets;
  for (FaultId f = 0; f < universe.size() && targets.size() < 1024; f += 7)
    targets.push_back(f);

  const auto grade = [&](const ReferenceTrace* t, double& seconds) {
    SocFsimEnvironment env(*soc, flash, max_cycles);
    SequentialFaultSimulator fsim(soc->netlist, universe,
                                  {.max_cycles = max_cycles});
    fsim.set_observed(soc->cpu.bus_output_cells);
    std::vector<LaneMask> detections;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < targets.size(); i += 63) {
      const std::size_t n = std::min<std::size_t>(63, targets.size() - i);
      detections.push_back(
          fsim.run_tdf_batch(std::span(targets).subspan(i, n), env, t));
    }
    seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return detections;
  };

  double untraced_seconds = 0, traced_seconds = 0;
  const auto untraced = grade(nullptr, untraced_seconds);
  const auto traced = grade(&trace, traced_seconds);
  const bool identical = untraced == traced;
  const double speedup =
      traced_seconds > 0 ? untraced_seconds / traced_seconds : 0.0;

  std::printf("== extension: TDF launch-schedule sharing (ReferenceTrace) ======\n");
  std::printf("%-22s %10s\n", "path", "wall [s]");
  std::printf("%-22s %10.3f   (good pass re-recorded per batch)\n",
              "per-batch pass 1", untraced_seconds);
  std::printf("%-22s %10.3f   (+%.3f s one-time recording per test)\n",
              "shared trace", traced_seconds, record_seconds);
  std::printf("speedup %.2fx, detections %s, trace: %d cycles, %zu runs\n\n",
              speedup, identical ? "identical" : "MISMATCH!", trace.cycles,
              trace.run_count());

  Json doc = Json::object();
  doc.set("bench", "tdf_extension");
  doc.set("program", program.name);
  doc.set("fault_slice", targets.size());
  doc.set("untraced_wall_seconds", untraced_seconds);
  doc.set("traced_wall_seconds", traced_seconds);
  doc.set("trace_record_seconds", record_seconds);
  doc.set("trace_sharing_speedup", speedup);
  doc.set("detections_identical", identical);
  std::ofstream("BENCH_tdf.json") << doc.dump(2) << "\n";
}

void BM_TransitionClassification(benchmark::State& state) {
  auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  AnalyzerOptions topts;
  topts.fault_model = FaultModel::kTransition;
  for (auto _ : state) {
    FaultList fl(universe);
    benchmark::DoNotOptimize(analyzer.run(fl, topts));
  }
}
BENCHMARK(BM_TransitionClassification)->Unit(benchmark::kMillisecond);

void BM_TdfCampaign(benchmark::State& state) {
  const FaultModel model = state.range(0) == 0 ? FaultModel::kStuckAt
                                               : FaultModel::kTransition;
  for (auto _ : state) benchmark::DoNotOptimize(graded_campaign(model));
  state.SetLabel(std::string(to_string(model)));
}
BENCHMARK(BM_TdfCampaign)->DenseRange(0, 1)->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  print_tdf_comparison();
  print_trace_sharing();
  print_tdf_campaign();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
