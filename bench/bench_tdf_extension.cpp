// Extension — "We are currently working to extend the proposed technique
// to other fault models" (paper §5).
//
// Transition-delay faults (slow-to-rise / slow-to-fall) share the stuck-at
// sites, but launching a transition needs BOTH logic values at the site:
// every mission-constant net loses both of its transition faults, so the
// on-line untestable share for the transition model is strictly larger
// than for stuck-at. This bench reports the side-by-side Table-I rows.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analyzer.hpp"

namespace {

using namespace olfui;

void print_tdf_comparison() {
  auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);

  FaultList sa(universe), tdf(universe);
  const AnalysisReport sa_rep = analyzer.run(sa);
  AnalyzerOptions topts;
  topts.fault_model = FaultModel::kTransition;
  const AnalysisReport tdf_rep = analyzer.run(tdf, topts);

  std::printf("== extension: stuck-at vs transition-delay untestability ========\n");
  std::printf("(universe: %zu sites -> %zu faults per model)\n",
              universe.size() / 2, universe.size());
  std::printf("%-16s %14s %14s\n", "source", "stuck-at", "transition");
  const auto row = [&](const char* name, std::size_t a, std::size_t b) {
    std::printf("%-16s %14zu %14zu\n", name, a, b);
  };
  row("structural", sa_rep.structural_baseline, tdf_rep.structural_baseline);
  row("scan", sa_rep.scan, tdf_rep.scan);
  row("debug-control", sa_rep.debug_control, tdf_rep.debug_control);
  row("debug-observe", sa_rep.debug_observe, tdf_rep.debug_observe);
  row("memory-map", sa_rep.memmap, tdf_rep.memmap);
  row("TOTAL on-line", sa_rep.total_online(), tdf_rep.total_online());
  std::printf("share of universe: %.1f%% (stuck-at) vs %.1f%% (transition)\n",
              sa_rep.online_pct(), tdf_rep.online_pct());
  std::printf("transition-model pruning is strictly larger: %s\n\n",
              tdf_rep.total_online() + tdf_rep.structural_baseline >
                      sa_rep.total_online() + sa_rep.structural_baseline
                  ? "CONFIRMED"
                  : "VIOLATED");
}

void BM_TransitionClassification(benchmark::State& state) {
  auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  AnalyzerOptions topts;
  topts.fault_model = FaultModel::kTransition;
  for (auto _ : state) {
    FaultList fl(universe);
    benchmark::DoNotOptimize(analyzer.run(fl, topts));
  }
}
BENCHMARK(BM_TransitionClassification)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tdf_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
