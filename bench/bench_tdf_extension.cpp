// Extension — "We are currently working to extend the proposed technique
// to other fault models" (paper §5).
//
// Transition-delay faults (slow-to-rise / slow-to-fall) share the stuck-at
// sites, but launching a transition needs BOTH logic values at the site:
// every mission-constant net loses both of its transition faults, so the
// on-line untestable share for the transition model is strictly larger
// than for stuck-at. This bench reports the side-by-side Table-I rows, and
// then grades an SBST slice for BOTH models through the campaign
// orchestrator — one code path (CampaignEngine + SbstBatchRunner) produces
// the stuck-at and TDF coverage and runtime columns.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analyzer.hpp"
#include "sbst/sbst.hpp"

namespace {

using namespace olfui;

void print_tdf_comparison() {
  auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);

  FaultList sa(universe), tdf(universe);
  const AnalysisReport sa_rep = analyzer.run(sa);
  AnalyzerOptions topts;
  topts.fault_model = FaultModel::kTransition;
  const AnalysisReport tdf_rep = analyzer.run(tdf, topts);

  std::printf("== extension: stuck-at vs transition-delay untestability ========\n");
  std::printf("(universe: %zu sites -> %zu faults per model)\n",
              universe.size() / 2, universe.size());
  std::printf("%-16s %14s %14s\n", "source", "stuck-at", "transition");
  const auto row = [&](const char* name, std::size_t a, std::size_t b) {
    std::printf("%-16s %14zu %14zu\n", name, a, b);
  };
  row("structural", sa_rep.structural_baseline, tdf_rep.structural_baseline);
  row("scan", sa_rep.scan, tdf_rep.scan);
  row("debug-control", sa_rep.debug_control, tdf_rep.debug_control);
  row("debug-observe", sa_rep.debug_observe, tdf_rep.debug_observe);
  row("memory-map", sa_rep.memmap, tdf_rep.memmap);
  row("TOTAL on-line", sa_rep.total_online(), tdf_rep.total_online());
  std::printf("share of universe: %.1f%% (stuck-at) vs %.1f%% (transition)\n",
              sa_rep.online_pct(), tdf_rep.online_pct());
  std::printf("transition-model pruning is strictly larger: %s\n\n",
              tdf_rep.total_online() + tdf_rep.structural_baseline >
                      sa_rep.total_online() + sa_rep.structural_baseline
                  ? "CONFIRMED"
                  : "VIOLATED");
}

/// Coverage + runtime for one model, suite and analysis pruning included —
/// the end-to-end path the unit tests exercise piecewise.
CampaignResult graded_campaign(FaultModel model) {
  SocConfig cfg;
  cfg.cpu.with_multiplier = false;  // keep the bench in seconds, not minutes
  auto soc = build_soc(cfg);
  auto suite = build_sbst_suite(cfg);
  suite.erase(suite.begin() + 2, suite.end());  // alu_arith + alu_logic
  const FaultUniverse universe(soc->netlist);
  FaultList fl(universe);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  AnalyzerOptions aopts;
  aopts.fault_model = model;
  analyzer.run(fl, aopts);

  CampaignOptions opts;
  opts.fault_model = model;
  return run_sbst_campaign(*soc, suite, fl, {}, opts).campaign;
}

void print_tdf_campaign() {
  std::printf("== extension: SBST slice graded for both models (one engine) ====\n");
  std::printf("%-12s %10s %12s %12s %12s %12s\n", "model", "targeted",
              "detected", "raw cov", "pruned cov", "wall [s]");
  for (const FaultModel model :
       {FaultModel::kStuckAt, FaultModel::kTransition}) {
    const CampaignResult r = graded_campaign(model);
    std::printf("%-12s %10zu %12zu %11.1f%% %11.1f%% %12.3f\n",
                std::string(to_string(model)).c_str(),
                r.tests.empty() ? 0 : r.tests.front().faults_targeted,
                r.total_new_detections, 100.0 * r.raw_coverage,
                100.0 * r.pruned_coverage, r.stats.wall_seconds);
  }
  std::printf("(TDF batches run two passes — a launch-schedule recording of "
              "the good machine, then the capture-armed faulty lanes)\n\n");
}

void BM_TransitionClassification(benchmark::State& state) {
  auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  AnalyzerOptions topts;
  topts.fault_model = FaultModel::kTransition;
  for (auto _ : state) {
    FaultList fl(universe);
    benchmark::DoNotOptimize(analyzer.run(fl, topts));
  }
}
BENCHMARK(BM_TransitionClassification)->Unit(benchmark::kMillisecond);

void BM_TdfCampaign(benchmark::State& state) {
  const FaultModel model = state.range(0) == 0 ? FaultModel::kStuckAt
                                               : FaultModel::kTransition;
  for (auto _ : state) benchmark::DoNotOptimize(graded_campaign(model));
  state.SetLabel(std::string(to_string(model)));
}
BENCHMARK(BM_TdfCampaign)->DenseRange(0, 1)->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  print_tdf_comparison();
  print_tdf_campaign();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
