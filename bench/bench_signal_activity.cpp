// E9 — §4: the signal-activity screening that selected the suspects.
//
// "We resorted to a preliminary analysis based on high-level code coverage
// metrics ... any signal still showing no activity was identified as
// suspect. The result has been the selection of 17 signals, related to the
// debug functionalities." The bench runs the mature SBST suite with a
// toggle recorder and lists the quiet input ports, checking that the
// screening recovers exactly the debug access port (plus the quiet scan
// pins, which the scan tracer already handles separately).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "debug/debug.hpp"
#include "sbst/sbst.hpp"

namespace {

using namespace olfui;

void print_activity() {
  auto soc = build_soc({});
  auto suite = build_sbst_suite(soc->config);
  ToggleRecorder rec(soc->netlist);
  run_suite_functional(*soc, suite, 5000, &rec);

  const auto quiet = find_quiet_inputs(soc->netlist, rec);
  std::printf("== E9: quiet-signal screening over the SBST suite ===============\n");
  std::printf("suite cycles recorded: %llu\n",
              static_cast<unsigned long long>(rec.cycles()));
  std::printf("input ports: %zu total, %zu quiet\n",
              soc->netlist.input_cells().size(), quiet.size());

  std::size_t debug_quiet = 0, scan_quiet = 0, other_quiet = 0;
  for (NetId n : quiet) {
    const std::string& name = soc->netlist.net(n).name;
    const bool is_debug =
        std::find(soc->debug.control_inputs.begin(),
                  soc->debug.control_inputs.end(),
                  n) != soc->debug.control_inputs.end();
    if (is_debug)
      ++debug_quiet;
    else if (name.rfind("scan_", 0) == 0)
      ++scan_quiet;
    else
      ++other_quiet;
    std::printf("  quiet: %-12s (%s)\n", name.c_str(),
                is_debug ? "debug access port"
                         : name.rfind("scan_", 0) == 0 ? "scan pin" : "other");
  }
  std::printf("debug signals found quiet: %zu / %zu  (paper: 17 suspects, "
              "including an entire JTAG port)\n",
              debug_quiet, soc->debug.control_inputs.size());
  std::printf("scan pins quiet: %zu, non-DfT quiet inputs: %zu\n\n", scan_quiet,
              other_quiet);
}

void BM_ToggleRecordingRun(benchmark::State& state) {
  auto soc = build_soc({});
  auto suite = build_sbst_suite(soc->config);
  suite.erase(suite.begin() + 1, suite.end());
  for (auto _ : state) {
    ToggleRecorder rec(soc->netlist);
    benchmark::DoNotOptimize(run_suite_functional(*soc, suite, 5000, &rec));
  }
}
BENCHMARK(BM_ToggleRecordingRun)->Unit(benchmark::kMillisecond);

void BM_QuietInputScan(benchmark::State& state) {
  auto soc = build_soc({});
  auto suite = build_sbst_suite(soc->config);
  suite.erase(suite.begin() + 1, suite.end());
  ToggleRecorder rec(soc->netlist);
  run_suite_functional(*soc, suite, 5000, &rec);
  for (auto _ : state)
    benchmark::DoNotOptimize(find_quiet_inputs(soc->netlist, rec));
}
BENCHMARK(BM_QuietInputScan);

}  // namespace

int main(int argc, char** argv) {
  print_activity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
