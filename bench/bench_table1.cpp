// E1 — Table I: per-source on-line functionally untestable fault counts.
//
// Paper (e200z0-class industrial core, 214,930 faults):
//   Scan 19,142 (8.9%) | Debug 4,548+2,357 (3.2%) | Memory 3,610 (1.7%)
//   TOTAL 29,657 (13.8%)
// Expected reproduction shape: scan is the dominant class, debug next,
// memory smallest; total in the low-to-mid teens percent.
//
// Also includes the ablation sweeps DESIGN.md calls out: scan-path
// buffering and BTB size, which move the Scan / Memory rows.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analyzer.hpp"

namespace {

using namespace olfui;

void print_table1() {
  auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  FaultList fl(universe);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  const AnalysisReport rep = analyzer.run(fl);

  std::printf("== E1: Table I reproduction =====================================\n");
  std::printf("paper:  Scan 19,142 (8.9%%)  Debug 4,548+2,357 (3.2%%)  "
              "Memory 3,610 (1.7%%)  TOTAL 29,657 (13.8%%)\n");
  std::printf("ours:\n%s\n", rep.table1().c_str());

  std::printf("-- ablation: scan-path buffers per link -------------------------\n");
  std::printf("%8s %12s %10s %8s\n", "buffers", "universe", "scan", "scan%");
  for (int bufs : {0, 1, 2, 3}) {
    SocConfig cfg;
    cfg.scan.buffers_per_link = bufs;
    auto s = build_soc(cfg);
    const FaultUniverse u(s->netlist);
    FaultList f(u);
    OnlineUntestabilityAnalyzer az(*s, u);
    const AnalysisReport r = az.run(f);
    std::printf("%8d %12zu %10zu %7.1f%%\n", bufs, r.universe, r.scan,
                100.0 * static_cast<double>(r.scan) /
                    static_cast<double>(r.universe));
  }

  std::printf("-- ablation: BTB entries (memory-map row) -----------------------\n");
  std::printf("%8s %12s %10s %8s\n", "entries", "universe", "memory", "mem%");
  for (int entries : {1, 2, 4, 8}) {
    SocConfig cfg;
    cfg.cpu.btb_entries = entries;
    auto s = build_soc(cfg);
    const FaultUniverse u(s->netlist);
    FaultList f(u);
    OnlineUntestabilityAnalyzer az(*s, u);
    const AnalysisReport r = az.run(f);
    std::printf("%8d %12zu %10zu %7.1f%%\n", entries, r.universe, r.memmap,
                100.0 * static_cast<double>(r.memmap) /
                    static_cast<double>(r.universe));
  }
  std::printf("\n");
}

void BM_FullIdentificationFlow(benchmark::State& state) {
  auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  for (auto _ : state) {
    FaultList fl(universe);
    benchmark::DoNotOptimize(analyzer.run(fl));
  }
}
BENCHMARK(BM_FullIdentificationFlow)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
