// E6 — Fig. 6: tying the flip-flop output propagates the constant into the
// downstream logic cone.
//
// The paper ties both the input AND the output of constant-value address
// flops so that "structural untestable faults are identified by just
// looking at the structural properties of the connected circuit portion",
// even when the analysis tool "stops the untestable identification process
// at flip flops". Our engine propagates constants through flops natively;
// this bench quantifies the difference: D-net ties only vs D+Q ties vs
// full flop-transparent propagation, measured inside the SoC's address
// manipulation cones (branch adder, PC incrementer, AGU, BTB).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/analyzer.hpp"
#include "memmap/memmap.hpp"

namespace {

using namespace olfui;

std::size_t untestable_in_addr_cones(const FaultUniverse& u,
                                     const FaultList& fl) {
  std::size_t n = 0;
  for (FaultId f = 0; f < u.size(); ++f) {
    if (fl.untestable_kind(f) == UntestableKind::kNone) continue;
    const std::string name = u.fault_name(f);
    if (name.find("core/agu/") != std::string::npos ||
        name.find("core/if/pc4") != std::string::npos ||
        name.find("core/btb/") != std::string::npos)
      ++n;
  }
  return n;
}

void print_fig6() {
  auto soc = build_soc({});
  const FaultUniverse u(soc->netlist);
  const StructuralAnalyzer sta(soc->netlist, u);
  const AddressBitInfo info = soc->map.analyze(32);

  // Variant A: tie only the D nets of constant address-register bits
  // (what a naive flow would do).
  MissionConfig d_only;
  // Variant B: the paper's recipe — tie D and Q.
  const MissionConfig d_and_q = memmap_config(soc->netlist, soc->map, 32);
  for (const AddrRegBit& reg : find_address_registers(soc->netlist)) {
    if (info.varying[static_cast<std::size_t>(reg.bit)]) continue;
    const Cell& c = soc->netlist.cell(reg.flop);
    d_only.tie(c.ins[kDffD], info.value[static_cast<std::size_t>(reg.bit)]);
  }

  FaultList fl_a(u), fl_b(u);
  sta.classify_faults(sta.analyze(d_only), fl_a, OnlineSource::kMemoryMap);
  sta.classify_faults(sta.analyze(d_and_q), fl_b, OnlineSource::kMemoryMap);

  std::printf("== E6: Fig. 6 tie propagation through flip-flops =================\n");
  std::printf("%-44s %12s %18s\n", "manipulation", "untestable",
              "in address cones");
  std::printf("%-44s %12zu %18zu\n", "tie D nets only", fl_a.count_untestable(),
              untestable_in_addr_cones(u, fl_a));
  std::printf("%-44s %12zu %18zu\n", "tie D and Q nets (paper Figs. 5/6)",
              fl_b.count_untestable(), untestable_in_addr_cones(u, fl_b));
  // Note: because the engine propagates constants through flops (D const
  // => Q const at the mission fixpoint), both variants converge — that is
  // exactly the capability the paper emulates by tying Q explicitly for
  // tools that stop at flip-flop boundaries.
  std::printf("equal counts mean the engine already propagates through flops,\n"
              "which is what the paper's Q-tie workaround buys on commercial "
              "tools.\n\n");
}

void BM_MemmapPassDOnly(benchmark::State& state) {
  auto soc = build_soc({});
  const FaultUniverse u(soc->netlist);
  const StructuralAnalyzer sta(soc->netlist, u);
  const AddressBitInfo info = soc->map.analyze(32);
  MissionConfig d_only;
  for (const AddrRegBit& reg : find_address_registers(soc->netlist)) {
    if (info.varying[static_cast<std::size_t>(reg.bit)]) continue;
    const Cell& c = soc->netlist.cell(reg.flop);
    d_only.tie(c.ins[kDffD], info.value[static_cast<std::size_t>(reg.bit)]);
  }
  for (auto _ : state) {
    FaultList fl(u);
    const StaResult r = sta.analyze(d_only);
    benchmark::DoNotOptimize(sta.classify_faults(r, fl, OnlineSource::kMemoryMap));
  }
}
BENCHMARK(BM_MemmapPassDOnly)->Unit(benchmark::kMillisecond);

void BM_MemmapPassDAndQ(benchmark::State& state) {
  auto soc = build_soc({});
  const FaultUniverse u(soc->netlist);
  const StructuralAnalyzer sta(soc->netlist, u);
  const MissionConfig cfg = memmap_config(soc->netlist, soc->map, 32);
  for (auto _ : state) {
    FaultList fl(u);
    const StaResult r = sta.analyze(cfg);
    benchmark::DoNotOptimize(sta.classify_faults(r, fl, OnlineSource::kMemoryMap));
  }
}
BENCHMARK(BM_MemmapPassDAndQ)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
