// E8 — §4: engineering cost of the flow.
//
// "From the CPU time point of view, the modified circuit is analyzed by
// Tetramax in less than 1 second." The manual part (finding the
// untestability sources) took the paper's engineer about a week; here it
// is automated (scan tracing + quiet-input screening + tag scan), so the
// bench reports both the structural-analysis time and the source-search
// time across netlist sizes.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "core/analyzer.hpp"
#include "sbst/sbst.hpp"

namespace {

using namespace olfui;

SocConfig sized_config(int size_class) {
  SocConfig cfg;
  switch (size_class) {
    case 0:  // lean: no multiplier, small BTB
      cfg.cpu.with_multiplier = false;
      cfg.cpu.btb_entries = 1;
      break;
    case 1:  // mid: no multiplier
      cfg.cpu.with_multiplier = false;
      break;
    case 2:  // full case study
      break;
    case 3:  // enlarged: bigger BTB, more chains/buffers
      cfg.cpu.btb_entries = 8;
      cfg.scan.num_chains = 8;
      cfg.scan.buffers_per_link = 2;
      break;
    default:
      break;
  }
  return cfg;
}

/// Returns true when the paper's "<1 s" structural-analysis claim holds on
/// the full case-study configuration. The unit suite deliberately does NOT
/// assert this (wall-clock checks flake under `ctest -j` on loaded
/// machines — see core_test); this bench owns the claim, asserted in its
/// own isolated process.
bool print_runtime_table() {
  bool under_one_second = true;
  std::printf("== E8: analysis runtime vs netlist size ==========================\n");
  std::printf("paper: structural analysis < 1 s; source search ~1 engineer week "
              "(manual)\n");
  std::printf("%-10s %10s %10s %14s %16s\n", "config", "cells", "faults",
              "analysis [s]", "source search [s]");
  for (int size_class = 0; size_class < 4; ++size_class) {
    const SocConfig cfg = sized_config(size_class);
    auto soc = build_soc(cfg);
    const FaultUniverse universe(soc->netlist);
    FaultList fl(universe);
    OnlineUntestabilityAnalyzer analyzer(*soc, universe);

    // Source search: trace scan chains + run the quiet-input screening
    // over a short functional window + collect address-register tags.
    const auto t0 = std::chrono::steady_clock::now();
    (void)trace_scan(soc->netlist);
    auto suite = build_sbst_suite(cfg);
    suite.erase(suite.begin() + 1, suite.end());
    ToggleRecorder rec(soc->netlist);
    run_suite_functional(*soc, suite, 500, &rec);
    (void)find_quiet_inputs(soc->netlist, rec);
    (void)find_address_registers(soc->netlist);
    const double search_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const AnalysisReport rep = analyzer.run(fl);
    if (size_class == 2 && rep.analysis_seconds >= 1.0)
      under_one_second = false;
    static const char* kNames[] = {"lean", "mid", "full", "large"};
    std::printf("%-10s %10zu %10zu %14.3f %16.3f\n", kNames[size_class],
                soc->netlist.stats().cells, universe.size(),
                rep.analysis_seconds, search_s);
  }
  std::printf("paper claim (<1 s on the full config): %s\n\n",
              under_one_second ? "HOLDS" : "VIOLATED");
  return under_one_second;
}

void BM_AnalysisAtSize(benchmark::State& state) {
  const SocConfig cfg = sized_config(static_cast<int>(state.range(0)));
  auto soc = build_soc(cfg);
  const FaultUniverse universe(soc->netlist);
  OnlineUntestabilityAnalyzer analyzer(*soc, universe);
  for (auto _ : state) {
    FaultList fl(universe);
    benchmark::DoNotOptimize(analyzer.run(fl));
  }
  state.SetLabel("faults=" + std::to_string(universe.size()));
}
BENCHMARK(BM_AnalysisAtSize)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_BuildSoc(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(build_soc({}));
}
BENCHMARK(BM_BuildSoc)->Unit(benchmark::kMillisecond);

void BM_FaultUniverseConstruction(benchmark::State& state) {
  auto soc = build_soc({});
  for (auto _ : state) benchmark::DoNotOptimize(FaultUniverse(soc->netlist));
}
BENCHMARK(BM_FaultUniverseConstruction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool ok = print_runtime_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
