// E5 — Fig. 5: on-line functionally untestable faults in a DFF with
// active-low reset whose value is constant 0.
//
// "The structural analysis returns only 2 testable faults, stuck-at-1 on D
// and stuck-at-1 on Q." The bench rebuilds the exact figure circuit,
// prints all 10 fault classifications, then reports how the same pattern
// plays out across the SoC's memory-map-constant address-register bits.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analyzer.hpp"
#include "memmap/memmap.hpp"
#include "netlist/wordops.hpp"

namespace {

using namespace olfui;

void print_fig5() {
  std::printf("== E5: Fig. 5 constant-value DFFR fault classification ===========\n");
  Netlist nl("fig5");
  WordOps w(nl, "m");
  const NetId d = nl.add_input("d");
  const NetId rstn = nl.add_input("rstn");
  RegWord reg = w.reg_declare(1, "ff", rstn);
  w.reg_connect(reg, {d});
  nl.add_output("q", reg.q[0]);

  const FaultUniverse u(nl);
  const StructuralAnalyzer sta(nl, u);
  FaultList fl(u);
  MissionConfig cfg;
  cfg.tie(d, false);         // paper: tie the flop input ...
  cfg.tie(reg.q[0], false);  // ... and its output to ground
  sta.classify_faults(sta.analyze(cfg), fl, OnlineSource::kMemoryMap);

  const CellId ff = reg.flops[0];
  std::size_t testable = 0;
  const auto row = [&](Pin pin, const char* label, bool sa1) {
    const FaultId f = u.id_of(pin, sa1);
    const bool t = fl.untestable_kind(f) == UntestableKind::kNone;
    testable += t ? 1 : 0;
    std::printf("  %-4s s-a-%d : %s\n", label, sa1 ? 1 : 0,
                t ? "TESTABLE" : "untestable");
  };
  row({ff, 1}, "D", false);
  row({ff, 1}, "D", true);
  row({ff, 2}, "RST", false);
  row({ff, 2}, "RST", true);
  row({ff, 0}, "Q", false);
  row({ff, 0}, "Q", true);
  std::printf("paper: exactly 2 testable faults remain (D s-a-1, Q s-a-1)\n");
  std::printf("ours:  %zu testable faults remain on the flop pins\n\n", testable);

  // SoC-wide: every address register bit the memory map proves constant.
  auto soc = build_soc({});
  const FaultUniverse su(soc->netlist);
  const StructuralAnalyzer ssta(soc->netlist, su);
  FaultList sfl(su);
  const MissionConfig mcfg = memmap_config(soc->netlist, soc->map, 32);
  ssta.classify_faults(ssta.analyze(mcfg), sfl, OnlineSource::kMemoryMap);
  const AddressBitInfo info = soc->map.analyze(32);
  std::size_t const_bits = 0, d_sa1_testable = 0, q_sa1_testable = 0,
              sa0_untestable = 0;
  for (const AddrRegBit& reg_bit : find_address_registers(soc->netlist)) {
    if (info.varying[static_cast<std::size_t>(reg_bit.bit)]) continue;
    ++const_bits;
    const CellId flop = reg_bit.flop;
    d_sa1_testable +=
        sfl.untestable_kind(su.id_of({flop, 1}, true)) == UntestableKind::kNone;
    q_sa1_testable +=
        sfl.untestable_kind(su.id_of({flop, 0}, true)) == UntestableKind::kNone;
    sa0_untestable +=
        (sfl.untestable_kind(su.id_of({flop, 1}, false)) != UntestableKind::kNone) +
        (sfl.untestable_kind(su.id_of({flop, 0}, false)) != UntestableKind::kNone);
  }
  std::printf("SoC address registers: %zu constant bits under the map %s\n",
              const_bits, info.to_string().c_str());
  std::printf("  D s-a-1 kept testable:  %zu / %zu\n", d_sa1_testable, const_bits);
  std::printf("  Q s-a-1 kept testable:  %zu / %zu\n", q_sa1_testable, const_bits);
  std::printf("  s-a-0 pruned:           %zu / %zu\n\n", sa0_untestable,
              2 * const_bits);
}

void BM_Fig5Classification(benchmark::State& state) {
  Netlist nl("fig5");
  WordOps w(nl, "m");
  const NetId d = nl.add_input("d");
  const NetId rstn = nl.add_input("rstn");
  RegWord reg = w.reg_declare(1, "ff", rstn);
  w.reg_connect(reg, {d});
  nl.add_output("q", reg.q[0]);
  const FaultUniverse u(nl);
  const StructuralAnalyzer sta(nl, u);
  MissionConfig cfg;
  cfg.tie(d, false);
  cfg.tie(reg.q[0], false);
  for (auto _ : state) {
    FaultList fl(u);
    const StaResult r = sta.analyze(cfg);
    benchmark::DoNotOptimize(
        sta.classify_faults(r, fl, OnlineSource::kMemoryMap));
  }
}
BENCHMARK(BM_Fig5Classification);

}  // namespace

int main(int argc, char** argv) {
  print_fig5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
