// Campaign orchestrator scaling + batch-scheduler comparison on the SBST
// workload. Writes BENCH_campaign.json; CI runs it as a smoke step.
//
// Sections:
//  * scheduler comparison — the same fault slice graded under the fixed,
//    cone-aware, and (profile-guided) adaptive batch policies. All three
//    must produce the bit-identical detection BitVec (the merge is
//    order-independent); the numbers show whether cone grouping pays on
//    the event-driven kernel (smaller active sets, more uniform early
//    exit). Runs single-thread so the comparison measures batch quality,
//    not scheduling luck.
//  * cone packing — greedy union-popcount clustering vs the raw
//    signature sort, with per-batch cone-overlap stats (mean/max union
//    popcount) and the bit-identical detection cross-check.
//  * thread scaling — the slice graded at 1/2/4/8 worker threads with the
//    determinism cross-check (every thread count must produce the same
//    detections). NOTE: on a 1-core container every speedup degenerates
//    to ~1.0x; on an N-core host expect near-linear scaling to min(N, 8).
//  * kernel cross-check — event-driven vs full-sweep detections.
//  * executor comparison — the slice graded on the in-process pool vs
//    coordinator + 2 subprocess workers (olfui_cli --worker), with the
//    bit-identical cross-check; skipped (and flagged in the JSON) when
//    ./olfui_cli is not in the working directory. Runs on the default SoC
//    configuration — the one workers rebuild — not the lean one.
//  * chaos recovery — the same campaign with deterministically crashing
//    workers (--chaos); recovery must converge to byte-identical
//    deterministic JSON, and the wall-time gap is the recovery overhead.
//  * tracing overhead — the same grade with observability off vs fully
//    on (tracer + metrics), with the side-band cross-check (identical
//    detections) and the overhead ratio recorded in the JSON.
//  * result cache — the same campaign cold (miss + store), warm (full
//    hit: zero shards executed, byte-identical deterministic payload),
//    and as a partial-hit incremental re-grade, with the
//    "incremental_detections_identical" splice-correctness flag.
//  * full-universe scaling table — the original whole-suite campaign at
//    1/2/4/8 threads; minutes of work, so it only runs with
//    OLFUI_BENCH_FULL=1 (CI smoke skips it).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <thread>

#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "campaign/json.hpp"
#include "campaign/report.hpp"
#include "campaign/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sbst/sbst.hpp"

namespace {

using namespace olfui;

SocConfig lean_config() {
  SocConfig cfg;
  cfg.cpu.with_multiplier = false;
  cfg.cpu.btb_entries = 2;
  cfg.scan.num_chains = 4;
  return cfg;
}

/// A fixed fault slice keeps runs comparable and fast enough for CI.
std::vector<FaultId> fault_slice(const FaultUniverse& universe,
                                 std::size_t count, FaultId stride) {
  std::vector<FaultId> targets;
  for (FaultId f = 0; f < universe.size() && targets.size() < count;
       f += stride)
    targets.push_back(f);
  return targets;
}

struct PolicyRun {
  double seconds = 0;
  std::size_t batches = 0;
  BitVec detected;
};

/// Grades `targets` against every test under one policy, timing the whole
/// sweep and collecting per-shard times (the adaptive profile input).
PolicyRun grade_policy(const FaultUniverse& universe,
                       std::span<const CampaignTest> tests,
                       std::span<const FaultId> targets,
                       std::shared_ptr<const BatchScheduler> scheduler,
                       int threads, CampaignResult* profile_out = nullptr) {
  CampaignOptions opts;
  opts.threads = threads;
  opts.scheduler = std::move(scheduler);
  const CampaignEngine engine(universe, opts);

  PolicyRun run;
  run.detected = BitVec(targets.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const CampaignTest& test : tests) {
    std::vector<double> shard_seconds;
    const BitVec det = engine.grade(targets, test, {}, &shard_seconds);
    for (std::size_t i = det.find_first(); i < det.size();
         i = det.find_next(i + 1))
      run.detected.set(i, true);
    run.batches += shard_seconds.size();
    if (profile_out) {
      CampaignResult::PerTest pt;
      pt.name = test.name;
      pt.faults_targeted = targets.size();
      pt.batches = shard_seconds.size();
      profile_out->tests.push_back(std::move(pt));
      profile_out->stats.shard_seconds.insert(
          profile_out->stats.shard_seconds.end(), shard_seconds.begin(),
          shard_seconds.end());
    }
  }
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return run;
}

void run_scheduler_comparison(const Soc& soc, const FaultUniverse& universe,
                              Json& doc) {
  auto suite = build_sbst_suite(soc.config);
  suite.erase(suite.begin() + 2, suite.end());  // alu_arith + alu_logic
  const std::vector<CampaignTest> tests =
      build_sbst_campaign_tests(soc, suite, universe);
  const std::vector<FaultId> targets = fault_slice(universe, 2048, 5);

  std::printf("== batch-scheduler comparison: %zu faults x %zu programs =====\n",
              targets.size(), tests.size());
  std::printf("%10s %10s %10s %10s %10s\n", "policy", "wall [s]", "batches",
              "detected", "speedup");

  // Fixed first: its shard times are the adaptive profile.
  CampaignResult profile;
  const PolicyRun fixed =
      grade_policy(universe, tests, targets, nullptr, 1, &profile);
  const PolicyRun cone = grade_policy(
      universe, tests, targets, std::make_shared<const ConeScheduler>(universe),
      1);
  const PolicyRun adaptive = grade_policy(
      universe, tests, targets,
      std::make_shared<const AdaptiveScheduler>(profile), 1);

  const bool identical =
      fixed.detected == cone.detected && fixed.detected == adaptive.detected;
  Json policies = Json::array();
  const auto row = [&](const char* name, const PolicyRun& run) {
    const double speedup =
        run.seconds > 0 ? fixed.seconds / run.seconds : 0.0;
    std::printf("%10s %10.3f %10zu %10zu %9.2fx\n", name, run.seconds,
                run.batches, run.detected.count(), speedup);
    Json p = Json::object();
    p.set("policy", name);
    p.set("wall_seconds", run.seconds);
    p.set("batches", run.batches);
    p.set("detected", run.detected.count());
    p.set("speedup_vs_fixed", speedup);
    policies.push_back(std::move(p));
  };
  row("fixed", fixed);
  row("cone", cone);
  row("adaptive", adaptive);
  std::printf("detection sets %s across policies\n\n",
              identical ? "bit-identical" : "DIFFER — scheduler bug!");

  doc.set("slice", targets.size());
  doc.set("policies", std::move(policies));
  doc.set("policy_detections_identical", identical);
  doc.set("cone_speedup_vs_fixed",
          cone.seconds > 0 ? fixed.seconds / cone.seconds : 0.0);
  // "No slower than default" with a 5% measurement-noise allowance.
  doc.set("cone_no_slower", cone.seconds <= fixed.seconds * 1.05);
}

/// Greedy union-popcount cone packing vs the raw signature sort it
/// replaced. Wall time shows whether tighter batches pay on the event
/// kernel; the per-batch union-popcount stats (mean/max bits set in the
/// OR of a batch's cone signatures — lower = the batch shares cones) are
/// the direct measure of packing quality, independent of timing noise.
/// Both packings must grade the bit-identical detection set.
void run_packing_comparison(const Soc& soc, const FaultUniverse& universe,
                            Json& doc) {
  auto suite = build_sbst_suite(soc.config);
  suite.erase(suite.begin() + 2, suite.end());  // alu_arith + alu_logic
  const std::vector<CampaignTest> tests =
      build_sbst_campaign_tests(soc, suite, universe);
  const std::vector<FaultId> targets = fault_slice(universe, 2048, 5);

  const auto greedy = std::make_shared<const ConeScheduler>(universe);
  const auto raw = std::make_shared<const ConeScheduler>(
      universe, nullptr, ConePacking::kRawSort);

  std::printf("== cone packing: greedy union-popcount vs raw sort ==========\n");
  std::printf("%10s %10s %10s %12s %10s\n", "packing", "wall [s]", "batches",
              "mean union", "max union");

  const PolicyRun greedy_run = grade_policy(universe, tests, targets, greedy, 1);
  const PolicyRun raw_run = grade_policy(universe, tests, targets, raw, 1);
  const bool identical = greedy_run.detected == raw_run.detected;

  // Overlap stats straight off each packing's plan (the same numbers
  // --dump-schedule reports): per batch, popcount of the OR of its
  // members' cone signatures.
  const std::vector<ConeSig> sigs = greedy->signatures(targets);
  const auto overlap_stats = [&](const ConeScheduler& s, const PolicyRun& run,
                                 const char* label) {
    const BatchPlan plan =
        s.plan(targets, {.batch_size = 63, .test_name = "bench"});
    double mean = 0;
    int max = 0;
    for (std::size_t b = 0; b < plan.batches(); ++b) {
      ConeSig u;
      for (std::uint32_t i = plan.batch_start[b]; i < plan.batch_start[b + 1];
           ++i)
        u |= sigs[plan.order[i]];
      const int bits = u.popcount();
      mean += bits;
      max = std::max(max, bits);
    }
    if (plan.batches()) mean /= static_cast<double>(plan.batches());
    std::printf("%10s %10.3f %10zu %12.1f %10d\n", label, run.seconds,
                run.batches, mean, max);
    Json p = Json::object();
    p.set("wall_seconds", run.seconds);
    p.set("batches", run.batches);
    p.set("mean_union_popcount", mean);
    p.set("max_union_popcount", max);
    return p;
  };
  Json packing = Json::object();
  packing.set("greedy", overlap_stats(*greedy, greedy_run, "greedy"));
  packing.set("raw_sort", overlap_stats(*raw, raw_run, "raw-sort"));
  packing.set("greedy_speedup_vs_raw",
              greedy_run.seconds > 0 ? raw_run.seconds / greedy_run.seconds
                                     : 0.0);
  std::printf("detection sets %s across packings\n\n",
              identical ? "bit-identical" : "DIFFER — packing bug!");
  doc.set("packing", std::move(packing));
  doc.set("packing_detections_identical", identical);
}

void run_thread_scaling(const Soc& soc, const FaultUniverse& universe,
                        Json& doc) {
  auto suite = build_sbst_suite(soc.config);
  suite.erase(suite.begin() + 1, suite.end());
  const std::vector<CampaignTest> tests =
      build_sbst_campaign_tests(soc, suite, universe);
  const std::vector<FaultId> targets = fault_slice(universe, 2048, 5);

  std::printf("== thread scaling: one program, %zu faults (host: %u cores) ==\n",
              targets.size(), std::thread::hardware_concurrency());
  std::printf("%8s %10s %10s %10s\n", "threads", "wall [s]", "speedup",
              "detected");
  Json rows = Json::array();
  double base_seconds = 0;
  BitVec reference;
  bool deterministic = true;
  for (const int threads : {1, 2, 4, 8}) {
    const PolicyRun run = grade_policy(universe, tests, targets, nullptr,
                                       threads);
    if (threads == 1) {
      base_seconds = run.seconds;
      reference = run.detected;
    } else if (!(run.detected == reference)) {
      deterministic = false;
      std::printf("DETERMINISM VIOLATION at %d threads!\n", threads);
    }
    const double speedup = run.seconds > 0 ? base_seconds / run.seconds : 0.0;
    std::printf("%8d %10.3f %9.2fx %10zu\n", threads, run.seconds, speedup,
                run.detected.count());
    Json r = Json::object();
    r.set("threads", threads);
    r.set("wall_seconds", run.seconds);
    r.set("speedup", speedup);
    rows.push_back(std::move(r));
  }
  std::printf("%s\n\n", deterministic
                            ? "detection sets bit-identical across all "
                              "thread counts."
                            : "DETERMINISM VIOLATION!");
  doc.set("threads", std::move(rows));
  doc.set("thread_detections_identical", deterministic);
}

/// Cross-check: the campaign graded with the event-driven kernel and with
/// the full-sweep oracle must produce the bit-identical detection BitVec —
/// the kernel is a work-skipping optimisation, never an approximation.
void run_kernel_cross_check(const Soc& soc, const FaultUniverse& universe,
                            Json& doc) {
  auto suite = build_sbst_suite(soc.config);
  suite.erase(suite.begin() + 2, suite.end());

  const std::vector<FaultId> targets = fault_slice(universe, 2048, 5);
  const CampaignEngine engine(universe, {.threads = 2});

  std::printf("== kernel cross-check: event-driven vs full sweep ================\n");
  bool identical = true;
  for (std::size_t p = 0; p < suite.size(); ++p) {
    std::vector<SbstProgram> one{suite[p]};
    const std::vector<CampaignTest> event_tests =
        build_sbst_campaign_tests(soc, one, universe, 8, /*event_driven=*/true);
    const std::vector<CampaignTest> sweep_tests =
        build_sbst_campaign_tests(soc, one, universe, 8, /*event_driven=*/false);
    const BitVec ev = engine.grade(targets, event_tests[0]);
    const BitVec sw = engine.grade(targets, sweep_tests[0]);
    identical &= ev == sw;
    std::printf("%12s: %5zu detected, kernels %s\n", one[0].name.c_str(),
                ev.count(), ev == sw ? "identical" : "DIFFER!");
  }
  std::printf(identical
                  ? "detection BitVecs bit-identical with the kernel switched "
                    "either way.\n\n"
                  : "KERNEL MISMATCH — event-driven kernel bug!\n\n");
  doc.set("kernel_detections_identical", identical);
}

/// Executor comparison: the same slice graded on the in-process pool and
/// on coordinator + 2 subprocess workers. The wall-time gap is the
/// protocol + worker-state-rebuild overhead a multi-host deployment pays
/// once per worker; the detection cross-check is the point.
void run_executor_comparison(Json& doc) {
  if (access("./olfui_cli", X_OK) != 0) {
    std::printf("== executor comparison skipped (./olfui_cli not here) =====\n\n");
    doc.set("executor_skipped", true);
    return;
  }
  // Workers rebuild the default SoC configuration, so the coordinator
  // must grade the same one (the lean bench SoC would fingerprint-fail).
  const auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  auto suite = build_sbst_suite(soc->config);
  suite.erase(suite.begin() + 1, suite.end());
  const std::vector<CampaignTest> tests =
      build_sbst_campaign_tests(*soc, suite, universe);
  const std::vector<FaultId> targets = fault_slice(universe, 1024, 7);

  std::printf("== executor comparison: %zu faults, inproc vs 2 workers ====\n",
              targets.size());
  const auto t0 = std::chrono::steady_clock::now();
  const BitVec inproc =
      CampaignEngine(universe, {.threads = 2}).grade(targets, tests[0]);
  const double inproc_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  CampaignOptions opts;
  opts.threads = 2;
  opts.executor = std::make_shared<SubprocessExecutor>(
      std::vector<std::string>{"./olfui_cli", "--worker"}, 2);
  const CampaignEngine sub_engine(universe, opts);
  const auto t1 = std::chrono::steady_clock::now();
  const BitVec cold = sub_engine.grade(targets, tests[0]);
  const double cold_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();
  // Second pass on the now-warm workers: the steady-state cost once the
  // per-worker state rebuild is amortized.
  const auto t2 = std::chrono::steady_clock::now();
  const BitVec warm = sub_engine.grade(targets, tests[0]);
  const double warm_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t2)
          .count();

  const bool identical = inproc == cold && inproc == warm;
  std::printf("%12s %10.3f s\n%12s %10.3f s (cold: spawn + state rebuild)\n"
              "%12s %10.3f s (warm workers)\n",
              "inproc", inproc_seconds, "subprocess", cold_seconds,
              "subprocess", warm_seconds);
  std::printf("detection BitVecs %s across executors\n\n",
              identical ? "bit-identical" : "DIFFER — executor bug!");
  Json e = Json::object();
  e.set("inproc_seconds", inproc_seconds);
  e.set("subprocess_cold_seconds", cold_seconds);
  e.set("subprocess_warm_seconds", warm_seconds);
  e.set("workers", 2);
  doc.set("executor", std::move(e));
  doc.set("executor_detections_identical", identical);
}

/// Chaos recovery check: the same campaign run with deterministically
/// crashing workers (every worker SIGKILLs itself on its second shard;
/// respawns recover) must converge to the byte-identical deterministic
/// result. The wall-time gap is the price of one worker generation lost
/// and rebuilt — the recovery overhead a deployment should budget for.
void run_chaos_comparison(Json& doc) {
  if (access("./olfui_cli", X_OK) != 0) {
    std::printf("== chaos recovery skipped (./olfui_cli not here) ==========\n\n");
    doc.set("chaos_skipped", true);
    return;
  }
  const auto soc = build_soc({});
  const FaultUniverse universe(soc->netlist);
  auto suite = build_sbst_suite(soc->config);
  suite.erase(suite.begin() + 1, suite.end());
  const std::vector<CampaignTest> tests =
      build_sbst_campaign_tests(*soc, suite, universe);
  const CampaignOptions base{.threads = 2, .target_limit = 1024};

  std::printf("== chaos recovery: crashing workers vs clean campaign ======\n");
  FaultList fl_clean(universe);
  const auto t0 = std::chrono::steady_clock::now();
  const CampaignResult clean =
      CampaignEngine(universe, base).run(fl_clean, tests);
  const double clean_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  FleetOptions fleet;
  fleet.workers = 2;
  fleet.backoff_base = 0.01;
  CampaignOptions chaos = base;
  chaos.executor = std::make_shared<SubprocessExecutor>(
      std::vector<std::string>{"./olfui_cli", "--worker", "--chaos",
                               "11:crash@2"},
      fleet);
  FaultList fl_chaos(universe);
  const auto t1 = std::chrono::steady_clock::now();
  const CampaignResult recovered =
      CampaignEngine(universe, chaos).run(fl_chaos, tests);
  const double chaos_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();

  const bool identical =
      recovered == clean &&
      campaign_result_to_json_string(recovered, 2, false) ==
          campaign_result_to_json_string(clean, 2, false);
  std::printf("%12s %10.3f s\n%12s %10.3f s (%zu respawns, %zu shards "
              "reissued)\n",
              "clean", clean_seconds, "chaos", chaos_seconds,
              recovered.stats.respawns, recovered.stats.shard_reissues);
  std::printf("deterministic JSON %s after recovery\n\n",
              identical ? "byte-identical" : "DIFFERS — recovery bug!");
  Json c = Json::object();
  c.set("clean_seconds", clean_seconds);
  c.set("chaos_seconds", chaos_seconds);
  c.set("respawns", recovered.stats.respawns);
  c.set("shard_reissues", recovered.stats.shard_reissues);
  c.set("degraded_shards", recovered.stats.degraded_shards);
  doc.set("chaos", std::move(c));
  doc.set("chaos_detections_identical", identical);
}

/// Tracing overhead: the same inproc grade with observability off and
/// fully on (tracer + metrics). The off run is the hot path shipped to
/// users — its only cost is the enabled() branch — so the ratio should
/// hover near 1.0; a regression here means an instrumentation site
/// started doing work outside its enabled() guard.
void run_tracing_overhead(const Soc& soc, const FaultUniverse& universe,
                          Json& doc) {
  auto suite = build_sbst_suite(soc.config);
  suite.erase(suite.begin() + 1, suite.end());
  const std::vector<CampaignTest> tests =
      build_sbst_campaign_tests(soc, suite, universe);
  const std::vector<FaultId> targets = fault_slice(universe, 1024, 7);
  const CampaignEngine engine(universe, {.threads = 2});

  std::printf("== tracing overhead: %zu faults, observability off vs on ====\n",
              targets.size());
  const auto t0 = std::chrono::steady_clock::now();
  const BitVec off = engine.grade(targets, tests[0]);
  const double off_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  obs::tracer().set_enabled(true);
  obs::metrics().set_enabled(true);
  const auto t1 = std::chrono::steady_clock::now();
  const BitVec on = engine.grade(targets, tests[0]);
  const double on_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();
  const std::size_t spans = obs::tracer().event_count();
  obs::tracer().set_enabled(false);
  obs::tracer().clear();
  obs::metrics().set_enabled(false);
  obs::metrics().reset_values();

  const bool identical = off == on;
  std::printf("%12s %10.3f s\n%12s %10.3f s (%zu spans recorded)\n",
              "tracing off", off_seconds, "tracing on", on_seconds, spans);
  std::printf("overhead %.2fx; detection BitVecs %s\n\n",
              off_seconds > 0 ? on_seconds / off_seconds : 0.0,
              identical ? "bit-identical" : "DIFFER — side-band violation!");
  Json t = Json::object();
  t.set("off_seconds", off_seconds);
  t.set("on_seconds", on_seconds);
  t.set("overhead_ratio", off_seconds > 0 ? on_seconds / off_seconds : 0.0);
  t.set("spans_recorded", spans);
  doc.set("tracing", std::move(t));
  doc.set("tracing_detections_identical", identical);
}

/// Result-cache section: the same campaign graded cold (miss + store),
/// warm (full hit — zero shards executed, payload byte-identical to the
/// cold run's deterministic JSON), and as a partial-hit incremental
/// re-grade seeded from the cold result. The incremental pass runs with
/// env_feedback off — an open-loop measurement; the netlist is genuinely
/// unchanged, so the spliced + re-graded detection set must be
/// bit-identical to the cold one. That flag
/// ("incremental_detections_identical") is the splice/mask correctness
/// check CI greps for.
void run_cache_comparison(const Soc& soc, const FaultUniverse& universe,
                          Json& doc) {
  auto suite = build_sbst_suite(soc.config);
  suite.erase(suite.begin() + 1, suite.end());
  const std::vector<CampaignTest> tests =
      build_sbst_campaign_tests(soc, suite, universe);

  CampaignOptions opts;
  opts.threads = 2;
  opts.target_limit = 1024;
  opts.cache = std::make_shared<ResultCache>(8);

  std::printf("== result cache: cold vs warm vs partial ===================\n");
  FaultList fl_cold(universe);
  const auto t0 = std::chrono::steady_clock::now();
  const CampaignResult cold =
      CampaignEngine(universe, opts).run(fl_cold, tests);
  const double cold_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  FaultList fl_warm(universe);
  const auto t1 = std::chrono::steady_clock::now();
  const CampaignResult warm =
      CampaignEngine(universe, opts).run(fl_warm, tests);
  const double warm_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();
  const bool warm_hit = warm.stats.cache == "hit" && warm.stats.batches == 0;
  const bool byte_identical =
      campaign_result_to_json_string(warm, 2, false) ==
      campaign_result_to_json_string(cold, 2, false);

  CampaignOptions plain = opts;
  plain.cache = nullptr;
  FaultList fl_part(universe);
  const std::vector<NetId> poked{
      static_cast<NetId>(universe.netlist().num_nets() / 2)};
  const auto t2 = std::chrono::steady_clock::now();
  const CampaignResult partial =
      seed_from_previous(universe, plain, fl_part, tests, cold, poked,
                         nullptr, /*env_feedback=*/false);
  const double partial_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t2)
          .count();
  const bool incremental_identical = partial.detected == cold.detected;

  std::printf("%12s %10.3f s (%s)\n", "cold", cold_seconds,
              cold.stats.cache.c_str());
  std::printf("%12s %10.3f s (%s, %zu batches executed)\n", "warm",
              warm_seconds, warm.stats.cache.c_str(), warm.stats.batches);
  std::printf("%12s %10.3f s (%zu spliced, %zu re-graded, %.1f%% of "
              "eligible)\n",
              "partial", partial_seconds, partial.stats.cache_spliced,
              partial.stats.regraded_faults,
              100.0 * partial.stats.regrade_fraction);
  std::printf("warm speedup %.1fx; payload %s; incremental detections %s\n\n",
              warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0,
              byte_identical ? "byte-identical" : "DIFFERS — cache bug!",
              incremental_identical ? "bit-identical"
                                    : "DIFFER — splice bug!");

  const ResultCacheStats cs = opts.cache->stats();
  Json c = Json::object();
  c.set("cold_seconds", cold_seconds);
  c.set("warm_seconds", warm_seconds);
  c.set("partial_seconds", partial_seconds);
  c.set("warm_speedup", warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0);
  c.set("warm_zero_shards", warm_hit);
  c.set("hits", cs.hits);
  c.set("misses", cs.misses);
  c.set("stores", cs.stores);
  c.set("spliced", partial.stats.cache_spliced);
  c.set("regraded_faults", partial.stats.regraded_faults);
  c.set("regrade_fraction", partial.stats.regrade_fraction);
  doc.set("cache", std::move(c));
  doc.set("cache_payload_identical", byte_identical);
  doc.set("incremental_detections_identical", incremental_identical);
}

/// The original whole-suite, whole-universe campaign at every thread
/// count — minutes of simulation, gated out of the CI smoke run.
void print_full_scaling_table() {
  const SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  const FaultUniverse universe(soc->netlist);
  auto suite = build_sbst_suite(cfg);

  std::printf("== campaign scaling: full-universe SBST campaign =================\n");
  std::printf("universe: %zu faults, %zu programs, host concurrency: %u\n\n",
              universe.size(), suite.size(),
              std::thread::hardware_concurrency());
  std::printf("%8s %10s %12s %10s %10s\n", "threads", "wall [s]", "faults/sec",
              "speedup", "detected");

  double base_seconds = 0;
  BitVec reference;
  for (const int threads : {1, 2, 4, 8}) {
    FaultList fl(universe);
    const SbstCampaignResult result = run_sbst_campaign(
        *soc, suite, fl, {}, CampaignOptions{.threads = threads});
    const auto& stats = result.campaign.stats;
    if (threads == 1) {
      base_seconds = stats.wall_seconds;
      reference = result.campaign.detected;
    } else if (!(result.campaign.detected == reference)) {
      std::printf("DETERMINISM VIOLATION at %d threads!\n", threads);
    }
    std::printf("%8d %10.2f %12.0f %9.2fx %10zu\n", threads,
                stats.wall_seconds, stats.faults_per_second,
                stats.wall_seconds > 0 ? base_seconds / stats.wall_seconds : 0.0,
                result.campaign.detected.count());
  }
  std::printf("\ndetection sets bit-identical across all thread counts: the\n"
              "orchestrator's deterministic-merge guarantee.\n\n");
}

/// Microbenchmark: one program's grade() fan-out at a fixed thread count,
/// so scheduler-level regressions show up without the full campaign.
void BM_CampaignGrade(benchmark::State& state) {
  const SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  const FaultUniverse universe(soc->netlist);
  auto suite = build_sbst_suite(cfg);
  suite.erase(suite.begin() + 1, suite.end());
  const std::vector<CampaignTest> tests =
      build_sbst_campaign_tests(*soc, suite, universe);
  const CampaignEngine engine(
      universe, {.threads = static_cast<int>(state.range(0))});
  const std::vector<FaultId> targets = fault_slice(universe, 1024, 7);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.grade(targets, tests[0]));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(targets.size()));
}
BENCHMARK(BM_CampaignGrade)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // One SoC + universe serves every smoke section (the dominant setup
  // cost on the 1-core CI runner); sections build their own suite
  // subsets and campaign tests.
  const auto soc = build_soc(lean_config());
  const FaultUniverse universe(soc->netlist);
  Json doc = Json::object();
  doc.set("bench", "campaign_scaling");
  run_scheduler_comparison(*soc, universe, doc);
  run_packing_comparison(*soc, universe, doc);
  run_thread_scaling(*soc, universe, doc);
  run_kernel_cross_check(*soc, universe, doc);
  run_executor_comparison(doc);
  run_chaos_comparison(doc);
  run_tracing_overhead(*soc, universe, doc);
  run_cache_comparison(*soc, universe, doc);
  std::ofstream("BENCH_campaign.json") << doc.dump(2) << "\n";
  std::printf("BENCH_campaign.json written.\n\n");
  if (const char* full = std::getenv("OLFUI_BENCH_FULL"); full && *full == '1')
    print_full_scaling_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
