// Campaign orchestrator scaling: the full-universe SBST campaign at
// 1/2/4/8 worker threads.
//
// The campaign is embarrassingly parallel — 63-fault shards are
// independent parallel-fault simulator passes — so throughput should
// scale with cores until the shard queue runs dry. This bench grades the
// whole suite against the whole stuck-at universe per thread count and
// reports wall time, faults/sec, and speedup over the 1-thread run. It
// also cross-checks the orchestrator's determinism guarantee: every
// thread count must produce the bit-identical detection set.
//
// NOTE: speedup is bounded by the machine — on a 1-core container every
// row degenerates to ~1.0x; on an N-core host expect near-linear scaling
// to min(N, 8).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "campaign/campaign.hpp"
#include "sbst/sbst.hpp"

namespace {

using namespace olfui;

SocConfig lean_config() {
  SocConfig cfg;
  cfg.cpu.with_multiplier = false;
  cfg.cpu.btb_entries = 2;
  cfg.scan.num_chains = 4;
  return cfg;
}

void print_scaling_table() {
  const SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  const FaultUniverse universe(soc->netlist);
  auto suite = build_sbst_suite(cfg);

  std::printf("== campaign scaling: full-universe SBST campaign =================\n");
  std::printf("universe: %zu faults, %zu programs, host concurrency: %u\n\n",
              universe.size(), suite.size(),
              std::thread::hardware_concurrency());
  std::printf("%8s %10s %12s %10s %10s\n", "threads", "wall [s]", "faults/sec",
              "speedup", "detected");

  double base_seconds = 0;
  BitVec reference;
  for (const int threads : {1, 2, 4, 8}) {
    FaultList fl(universe);
    const SbstCampaignResult result = run_sbst_campaign(
        *soc, suite, fl, {}, CampaignOptions{.threads = threads});
    const auto& stats = result.campaign.stats;
    if (threads == 1) {
      base_seconds = stats.wall_seconds;
      reference = result.campaign.detected;
    } else if (!(result.campaign.detected == reference)) {
      std::printf("DETERMINISM VIOLATION at %d threads!\n", threads);
    }
    std::printf("%8d %10.2f %12.0f %9.2fx %10zu\n", threads,
                stats.wall_seconds, stats.faults_per_second,
                stats.wall_seconds > 0 ? base_seconds / stats.wall_seconds : 0.0,
                result.campaign.detected.count());
  }
  std::printf("\ndetection sets bit-identical across all thread counts: the\n"
              "orchestrator's deterministic-merge guarantee.\n\n");
}

/// Cross-check: the campaign graded with the event-driven kernel and with
/// the full-sweep oracle must produce the bit-identical detection BitVec —
/// the kernel is a work-skipping optimisation, never an approximation.
void print_kernel_cross_check() {
  const SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  const FaultUniverse universe(soc->netlist);
  auto suite = build_sbst_suite(cfg);
  suite.erase(suite.begin() + 2, suite.end());

  std::vector<FaultId> targets;
  for (FaultId f = 0; f < universe.size() && targets.size() < 2048; f += 5)
    targets.push_back(f);
  const CampaignEngine engine(universe, {.threads = 2});

  std::printf("== kernel cross-check: event-driven vs full sweep ================\n");
  bool identical = true;
  for (std::size_t p = 0; p < suite.size(); ++p) {
    std::vector<SbstProgram> one{suite[p]};
    const std::vector<CampaignTest> event_tests =
        build_sbst_campaign_tests(*soc, one, universe, 8, /*event_driven=*/true);
    const std::vector<CampaignTest> sweep_tests =
        build_sbst_campaign_tests(*soc, one, universe, 8, /*event_driven=*/false);
    const BitVec ev = engine.grade(targets, event_tests[0]);
    const BitVec sw = engine.grade(targets, sweep_tests[0]);
    identical &= ev == sw;
    std::printf("%12s: %5zu detected, kernels %s\n", one[0].name.c_str(),
                ev.count(), ev == sw ? "identical" : "DIFFER!");
  }
  std::printf(identical
                  ? "detection BitVecs bit-identical with the kernel switched "
                    "either way.\n\n"
                  : "KERNEL MISMATCH — event-driven kernel bug!\n\n");
}

/// Microbenchmark: one program's grade() fan-out at a fixed thread count,
/// so scheduler-level regressions show up without the full campaign.
void BM_CampaignGrade(benchmark::State& state) {
  const SocConfig cfg = lean_config();
  auto soc = build_soc(cfg);
  const FaultUniverse universe(soc->netlist);
  auto suite = build_sbst_suite(cfg);
  suite.erase(suite.begin() + 1, suite.end());
  const std::vector<CampaignTest> tests =
      build_sbst_campaign_tests(*soc, suite, universe);
  const CampaignEngine engine(
      universe, {.threads = static_cast<int>(state.range(0))});
  // A fixed 1024-fault slice keeps iterations comparable across runs.
  std::vector<FaultId> targets;
  for (FaultId f = 0; f < universe.size() && targets.size() < 1024; f += 7)
    targets.push_back(f);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.grade(targets, tests[0]));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(targets.size()));
}
BENCHMARK(BM_CampaignGrade)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_scaling_table();
  print_kernel_cross_check();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
