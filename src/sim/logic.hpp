// olfui/sim: 4-valued logic (0, 1, X, Z) and ternary gate evaluation.
//
// X is "unknown"; Z is "floating / disconnected" and behaves as X when
// consumed by a gate. The constant-propagation engine of olfui_sta relies
// on the monotonicity of eval_ternary: refining an input from X to a
// definite value never flips a definite output value.
#pragma once

#include <cstdint>

#include "netlist/cell.hpp"

namespace olfui {

enum class Logic : std::uint8_t { V0 = 0, V1 = 1, VX = 2, VZ = 3 };

inline bool is_known(Logic v) { return v == Logic::V0 || v == Logic::V1; }
inline Logic from_bool(bool b) { return b ? Logic::V1 : Logic::V0; }
inline char logic_char(Logic v) {
  constexpr char kChars[] = {'0', '1', 'X', 'Z'};
  return kChars[static_cast<int>(v)];
}

Logic logic_not(Logic a);
Logic logic_and(Logic a, Logic b);
Logic logic_or(Logic a, Logic b);
Logic logic_xor(Logic a, Logic b);

/// Ternary evaluation of a combinational cell (not valid for flops/ports).
/// MUX with unknown select returns the data value if both data inputs agree.
Logic eval_ternary(CellType t, const Logic* in, int n);

/// Next-state function of a flop at a clock edge given current D/RSTN.
/// DFFR resets to 0 when RSTN is 0; an unknown RSTN yields 0 only if D is
/// also 0 (both branches agree), else X.
Logic flop_next(CellType t, Logic d, Logic rstn);

}  // namespace olfui
