// olfui/sim: cycle-accurate 4-valued good-machine simulator, plus a
// toggle-activity recorder used by the debug-suspect finder (paper §4:
// "signals still showing no activity" under the mature SBST suite).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/wordops.hpp"
#include "sim/logic.hpp"

namespace olfui {

/// Levelized 4-valued simulator over a single-clock netlist.
///
/// Usage per cycle: set_input(...) for every changed PI, eval() to settle
/// the combinational logic, read values, then clock() for the edge.
class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  /// Sets all flops and inputs to X (power-on state before reset).
  void power_on();
  void set_input(NetId net, Logic v);
  void set_input(NetId net, bool v) { set_input(net, from_bool(v)); }
  /// Drives bus[i] from bit i of value.
  void set_input_word(const Bus& bus, std::uint64_t value);

  /// Settles combinational logic from the current PI / flop values.
  void eval();
  /// Clock edge: latches flop next-states, then re-evaluates.
  void clock();

  Logic value(NetId net) const { return values_[net]; }
  /// Packs a bus of known bits into a word; unknown bits read as 0 and set
  /// *any_x if provided.
  std::uint64_t read_word(const Bus& bus, bool* any_x = nullptr) const;

  const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_;
  std::vector<CellId> order_;
  std::vector<Logic> values_;       // per net
  std::vector<Logic> flop_state_;   // per cell (only flop entries used)
  std::vector<CellId> flop_cells_;
};

/// Counts 0->1 / 1->0 transitions per net across sampled cycles.
/// sample() is expected once per clock after eval(); X/Z-involved changes
/// are not counted as toggles (matching gate-level toggle coverage tools).
class ToggleRecorder {
 public:
  explicit ToggleRecorder(const Netlist& nl);

  void sample(const Simulator& sim);

  std::uint64_t toggles(NetId net) const { return toggles_[net]; }
  std::uint64_t cycles() const { return cycles_; }
  /// Nets with zero recorded activity (never changed between known values
  /// and, if `include_constant_known`, also never left a single value).
  std::vector<NetId> quiet_nets() const;

 private:
  std::vector<std::uint64_t> toggles_;
  std::vector<Logic> last_;
  std::uint64_t cycles_ = 0;
};

}  // namespace olfui
