#include "sim/logic.hpp"

#include <cassert>

namespace olfui {

namespace {
inline Logic as_xz(Logic v) { return v == Logic::VZ ? Logic::VX : v; }
}  // namespace

Logic logic_not(Logic a) {
  a = as_xz(a);
  if (a == Logic::VX) return Logic::VX;
  return a == Logic::V0 ? Logic::V1 : Logic::V0;
}

Logic logic_and(Logic a, Logic b) {
  a = as_xz(a);
  b = as_xz(b);
  if (a == Logic::V0 || b == Logic::V0) return Logic::V0;
  if (a == Logic::V1 && b == Logic::V1) return Logic::V1;
  return Logic::VX;
}

Logic logic_or(Logic a, Logic b) {
  a = as_xz(a);
  b = as_xz(b);
  if (a == Logic::V1 || b == Logic::V1) return Logic::V1;
  if (a == Logic::V0 && b == Logic::V0) return Logic::V0;
  return Logic::VX;
}

Logic logic_xor(Logic a, Logic b) {
  a = as_xz(a);
  b = as_xz(b);
  if (!is_known(a) || !is_known(b)) return Logic::VX;
  return from_bool(a != b);
}

Logic eval_ternary(CellType t, const Logic* in, int n) {
  switch (t) {
    case CellType::kTie0:
      return Logic::V0;
    case CellType::kTie1:
      return Logic::V1;
    case CellType::kBuf:
      return as_xz(in[0]);
    case CellType::kNot:
      return logic_not(in[0]);
    case CellType::kAnd2:
    case CellType::kAnd3:
    case CellType::kAnd4: {
      Logic v = in[0];
      for (int i = 1; i < n; ++i) v = logic_and(v, in[i]);
      return as_xz(v);
    }
    case CellType::kOr2:
    case CellType::kOr3:
    case CellType::kOr4: {
      Logic v = in[0];
      for (int i = 1; i < n; ++i) v = logic_or(v, in[i]);
      return as_xz(v);
    }
    case CellType::kNand2:
    case CellType::kNand3:
    case CellType::kNand4: {
      Logic v = in[0];
      for (int i = 1; i < n; ++i) v = logic_and(v, in[i]);
      return logic_not(v);
    }
    case CellType::kNor2:
    case CellType::kNor3:
    case CellType::kNor4: {
      Logic v = in[0];
      for (int i = 1; i < n; ++i) v = logic_or(v, in[i]);
      return logic_not(v);
    }
    case CellType::kXor2:
      return logic_xor(in[0], in[1]);
    case CellType::kXnor2:
      return logic_not(logic_xor(in[0], in[1]));
    case CellType::kMux2: {
      const Logic s = as_xz(in[kMuxS]);
      const Logic a = as_xz(in[kMuxA]);
      const Logic b = as_xz(in[kMuxB]);
      if (s == Logic::V0) return a;
      if (s == Logic::V1) return b;
      return (is_known(a) && a == b) ? a : Logic::VX;
    }
    default:
      assert(false && "eval_ternary on non-combinational cell");
      return Logic::VX;
  }
}

Logic flop_next(CellType t, Logic d, Logic rstn) {
  d = as_xz(d);
  if (t == CellType::kDff) return d;
  assert(t == CellType::kDffR);
  rstn = as_xz(rstn);
  if (rstn == Logic::V0) return Logic::V0;
  if (rstn == Logic::V1) return d;
  return d == Logic::V0 ? Logic::V0 : Logic::VX;
}

}  // namespace olfui
