#include "sim/sim.hpp"

#include <cassert>
#include <stdexcept>

namespace olfui {

Simulator::Simulator(const Netlist& nl) : nl_(&nl) {
  if (!nl.levelize(order_))
    throw std::runtime_error("Simulator: combinational loop in netlist");
  values_.assign(nl.num_nets(), Logic::VX);
  flop_state_.assign(nl.num_cells(), Logic::VX);
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const Cell& c = nl.cell(id);
    if (is_sequential(c.type)) flop_cells_.push_back(id);
    if (c.type == CellType::kTie0) values_[c.out] = Logic::V0;
    if (c.type == CellType::kTie1) values_[c.out] = Logic::V1;
  }
}

void Simulator::power_on() {
  for (auto& v : values_) v = Logic::VX;
  for (auto& v : flop_state_) v = Logic::VX;
  for (CellId id = 0; id < nl_->num_cells(); ++id) {
    const Cell& c = nl_->cell(id);
    if (c.type == CellType::kTie0) values_[c.out] = Logic::V0;
    if (c.type == CellType::kTie1) values_[c.out] = Logic::V1;
  }
}

void Simulator::set_input(NetId net, Logic v) {
  assert(nl_->net(net).driver != kInvalidId &&
         nl_->cell(nl_->net(net).driver).type == CellType::kInput);
  values_[net] = v;
}

void Simulator::set_input_word(const Bus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    set_input(bus[i], from_bool((value >> i) & 1));
}

void Simulator::eval() {
  // Expose current flop states on their Q nets, then sweep in level order.
  for (CellId id : flop_cells_) values_[nl_->cell(id).out] = flop_state_[id];
  Logic in[4];
  for (CellId id : order_) {
    const Cell& c = nl_->cell(id);
    if (c.type == CellType::kOutput) continue;
    const int n = static_cast<int>(c.ins.size());
    for (int i = 0; i < n; ++i) in[i] = values_[c.ins[i]];
    values_[c.out] = eval_ternary(c.type, in, n);
  }
}

void Simulator::clock() {
  for (CellId id : flop_cells_) {
    const Cell& c = nl_->cell(id);
    const Logic d = values_[c.ins[kDffD]];
    const Logic rstn =
        c.type == CellType::kDffR ? values_[c.ins[kDffRstn]] : Logic::V1;
    flop_state_[id] = flop_next(c.type, d, rstn);
  }
  eval();
}

std::uint64_t Simulator::read_word(const Bus& bus, bool* any_x) const {
  std::uint64_t v = 0;
  if (any_x) *any_x = false;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const Logic b = values_[bus[i]];
    if (b == Logic::V1) v |= 1ULL << i;
    if (!is_known(b) && any_x) *any_x = true;
  }
  return v;
}

ToggleRecorder::ToggleRecorder(const Netlist& nl)
    : toggles_(nl.num_nets(), 0), last_(nl.num_nets(), Logic::VX) {}

void ToggleRecorder::sample(const Simulator& sim) {
  for (NetId n = 0; n < toggles_.size(); ++n) {
    const Logic v = sim.value(n);
    if (is_known(v) && is_known(last_[n]) && v != last_[n]) ++toggles_[n];
    last_[n] = v;
  }
  ++cycles_;
}

std::vector<NetId> ToggleRecorder::quiet_nets() const {
  std::vector<NetId> out;
  for (NetId n = 0; n < toggles_.size(); ++n)
    if (toggles_[n] == 0) out.push_back(n);
  return out;
}

}  // namespace olfui
