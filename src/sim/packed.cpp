#include "sim/packed.hpp"

#include <cassert>
#include <stdexcept>

namespace olfui {

PackedSim::PackedSim(const Netlist& nl) : nl_(&nl) {
  std::vector<CellId> order;
  if (!nl.levelize(order))
    throw std::runtime_error("PackedSim: combinational loop in netlist");
  for (CellId id : order) {
    const Cell& c = nl.cell(id);
    if (c.type == CellType::kOutput) continue;
    FlatCell fc;
    fc.type = c.type;
    fc.n = static_cast<std::uint8_t>(c.ins.size());
    fc.out = c.out;
    fc.id = id;
    for (std::size_t i = 0; i < c.ins.size(); ++i) fc.in[i] = c.ins[i];
    order_.push_back(fc);
  }
  values_.assign(nl.num_nets(), 0);
  flop_state_.assign(nl.num_cells(), 0);
  input_hold_.assign(nl.num_cells(), 0);
  has_inj_.assign(nl.num_cells(), 0);
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const CellType t = nl.cell(id).type;
    if (is_sequential(t))
      flop_cells_.push_back(id);
    else if (t == CellType::kInput || is_tie(t))
      source_cells_.push_back(id);
  }
}

void PackedSim::clear_injections() {
  inj_.clear();
  std::fill(has_inj_.begin(), has_inj_.end(), 0);
}

void PackedSim::add_injection(const PackedInjection& inj) {
  inj_[inj.cell].push_back(inj);
  has_inj_[inj.cell] = 1;
}

void PackedSim::power_on() {
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(flop_state_.begin(), flop_state_.end(), 0);
  std::fill(input_hold_.begin(), input_hold_.end(), 0);
}

void PackedSim::set_input_all(NetId net, bool v) {
  const CellId drv = nl_->net(net).driver;
  assert(drv != kInvalidId && nl_->cell(drv).type == CellType::kInput);
  input_hold_[drv] = v ? ~0ULL : 0;
}

void PackedSim::set_input_lanes(NetId net, std::uint64_t lanes) {
  const CellId drv = nl_->net(net).driver;
  assert(drv != kInvalidId && nl_->cell(drv).type == CellType::kInput);
  input_hold_[drv] = lanes;
}

void PackedSim::set_input_word(const Bus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    set_input_all(bus[i], (value >> i) & 1);
}

std::uint64_t PackedSim::apply_inj(CellId id, std::uint64_t* tmp,
                                   std::uint64_t out_val,
                                   bool apply_output) const {
  for (const PackedInjection& j : inj_.at(id)) {
    if (j.pin == 0) {
      if (apply_output)
        out_val = j.sa1 ? (out_val | j.lanes) : (out_val & ~j.lanes);
    } else if (tmp != nullptr) {
      std::uint64_t& w = tmp[j.pin - 1];
      w = j.sa1 ? (w | j.lanes) : (w & ~j.lanes);
    }
  }
  return out_val;
}

void PackedSim::eval() {
  // Sources: primary inputs hold their driven value; ties their constant.
  for (CellId id : source_cells_) {
    const Cell& c = nl_->cell(id);
    std::uint64_t v = c.type == CellType::kTie1   ? ~0ULL
                      : c.type == CellType::kTie0 ? 0
                                                  : input_hold_[id];
    if (has_inj_[id]) v = apply_inj(id, nullptr, v, true);
    values_[c.out] = v;
  }
  // Expose flop state (with Q-pin faults).
  for (CellId id : flop_cells_) {
    std::uint64_t v = flop_state_[id];
    if (has_inj_[id]) v = apply_inj(id, nullptr, v, true);
    values_[nl_->cell(id).out] = v;
  }
  // Levelized sweep over the flattened combinational cells.
  const std::uint64_t* vals = values_.data();
  for (const FlatCell& fc : order_) {
    std::uint64_t out;
    if (__builtin_expect(has_inj_[fc.id], 0)) {
      std::uint64_t tmp[4];
      for (int i = 0; i < fc.n; ++i) tmp[i] = vals[fc.in[i]];
      std::uint64_t raw = apply_inj(fc.id, tmp, 0, false);
      (void)raw;
      out = eval_packed(fc.type, tmp, fc.n);
      out = apply_inj(fc.id, nullptr, out, true);
    } else {
      // Hot path: inline the common gates, fall back for the rest.
      switch (fc.type) {
        case CellType::kAnd2:
          out = vals[fc.in[0]] & vals[fc.in[1]];
          break;
        case CellType::kOr2:
          out = vals[fc.in[0]] | vals[fc.in[1]];
          break;
        case CellType::kXor2:
          out = vals[fc.in[0]] ^ vals[fc.in[1]];
          break;
        case CellType::kMux2: {
          const std::uint64_t s = vals[fc.in[kMuxS]];
          out = (s & vals[fc.in[kMuxB]]) | (~s & vals[fc.in[kMuxA]]);
          break;
        }
        case CellType::kNot:
          out = ~vals[fc.in[0]];
          break;
        case CellType::kBuf:
          out = vals[fc.in[0]];
          break;
        default: {
          std::uint64_t tmp[4];
          for (int i = 0; i < fc.n; ++i) tmp[i] = vals[fc.in[i]];
          out = eval_packed(fc.type, tmp, fc.n);
          break;
        }
      }
    }
    values_[fc.out] = out;
  }
}

void PackedSim::clock() {
  std::uint64_t tmp[4];
  for (CellId id : flop_cells_) {
    const Cell& c = nl_->cell(id);
    const int n = static_cast<int>(c.ins.size());
    for (int i = 0; i < n; ++i) tmp[i] = values_[c.ins[i]];
    if (has_inj_[id]) apply_inj(id, tmp, 0, false);
    // DFF: q' = d. DFFR (active-low reset to 0): q' = d & rstn.
    flop_state_[id] =
        c.type == CellType::kDff ? tmp[kDffD] : (tmp[kDffD] & tmp[kDffRstn]);
  }
  eval();
}

std::uint64_t PackedSim::observed(CellId output_cell) const {
  const Cell& c = nl_->cell(output_cell);
  assert(c.type == CellType::kOutput);
  std::uint64_t v = values_[c.ins[0]];
  if (has_inj_[output_cell]) {
    for (const PackedInjection& j : inj_.at(output_cell)) {
      if (j.pin != 1) continue;
      v = j.sa1 ? (v | j.lanes) : (v & ~j.lanes);
    }
  }
  return v;
}

}  // namespace olfui
