#include "sim/packed.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace olfui {

std::shared_ptr<const PackedTopology> PackedTopology::build(const Netlist& nl) {
  auto topo = std::make_shared<PackedTopology>();
  topo->nl = &nl;

  std::vector<CellId> order;
  if (!nl.levelize(order))
    throw std::runtime_error("PackedSim: combinational loop in netlist");
  topo->order_index.assign(nl.num_cells(), kInvalidId);
  for (CellId id : order) {
    const Cell& c = nl.cell(id);
    if (c.type == CellType::kOutput) continue;
    FlatCell fc;
    fc.type = c.type;
    fc.n = static_cast<std::uint8_t>(c.ins.size());
    fc.out = c.out;
    fc.id = id;
    for (std::size_t i = 0; i < c.ins.size(); ++i) fc.in[i] = c.ins[i];
    topo->order_index[id] = static_cast<std::uint32_t>(topo->order.size());
    topo->order.push_back(fc);
  }

  // Logic levels: producers (sources, ties, flop Qs) sit at level 0, so a
  // combinational cell's level is strictly above every input's producer and
  // the event drain can process level buckets in ascending order.
  std::vector<std::uint32_t> net_level(nl.num_nets(), 0);
  topo->level.resize(topo->order.size());
  std::uint32_t max_level = 0;
  for (std::size_t i = 0; i < topo->order.size(); ++i) {
    const FlatCell& fc = topo->order[i];
    std::uint32_t lvl = 0;
    for (int k = 0; k < fc.n; ++k) lvl = std::max(lvl, net_level[fc.in[k]]);
    ++lvl;
    topo->level[i] = lvl;
    net_level[fc.out] = lvl;
    max_level = std::max(max_level, lvl);
  }
  topo->num_levels = max_level + 1;

  // Flat event-arena offsets: a cell is pending at most once, so each
  // level's segment capacity is exactly its population.
  topo->level_start.assign(topo->num_levels + 1, 0);
  for (const std::uint32_t lvl : topo->level) ++topo->level_start[lvl + 1];
  for (std::uint32_t l = 0; l < topo->num_levels; ++l)
    topo->level_start[l + 1] += topo->level_start[l];

  // CSR fanout graph: for each net, the order indexes of its combinational
  // readers (kOutput ports are read through observed(), flops at clock()).
  topo->fanout_start.assign(nl.num_nets() + 1, 0);
  for (const FlatCell& fc : topo->order)
    for (int k = 0; k < fc.n; ++k) ++topo->fanout_start[fc.in[k] + 1];
  for (std::size_t n = 0; n < nl.num_nets(); ++n)
    topo->fanout_start[n + 1] += topo->fanout_start[n];
  topo->fanout.resize(topo->fanout_start.back());
  std::vector<std::uint32_t> cursor(topo->fanout_start.begin(),
                                    topo->fanout_start.end() - 1);
  for (std::size_t i = 0; i < topo->order.size(); ++i) {
    const FlatCell& fc = topo->order[i];
    for (int k = 0; k < fc.n; ++k)
      topo->fanout[cursor[fc.in[k]]++] = static_cast<std::uint32_t>(i);
  }

  topo->flop_index.assign(nl.num_cells(), kInvalidId);
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const CellType t = nl.cell(id).type;
    if (is_sequential(t)) {
      topo->flop_index[id] = static_cast<std::uint32_t>(topo->flop_cells.size());
      topo->flop_cells.push_back(id);
    } else if (t == CellType::kInput) {
      topo->source_cells.push_back(id);
      topo->input_cells.push_back(id);
    } else if (is_tie(t)) {
      topo->source_cells.push_back(id);
    }
  }

  // CSR flop fanout: for each net, the flop_cells indexes of the flops
  // reading it (D or reset pin) — the dirty-D marking map of incremental
  // clocking. A flop reading one net on two pins appears twice; the mark
  // is idempotent.
  topo->flop_fanout_start.assign(nl.num_nets() + 1, 0);
  for (const CellId id : topo->flop_cells)
    for (const NetId in : nl.cell(id).ins) ++topo->flop_fanout_start[in + 1];
  for (std::size_t n = 0; n < nl.num_nets(); ++n)
    topo->flop_fanout_start[n + 1] += topo->flop_fanout_start[n];
  topo->flop_fanout.resize(topo->flop_fanout_start.back());
  std::vector<std::uint32_t> fcursor(topo->flop_fanout_start.begin(),
                                     topo->flop_fanout_start.end() - 1);
  for (std::size_t fi = 0; fi < topo->flop_cells.size(); ++fi)
    for (const NetId in : nl.cell(topo->flop_cells[fi]).ins)
      topo->flop_fanout[fcursor[in]++] = static_cast<std::uint32_t>(fi);
  return topo;
}

ConeAnalysis ConeAnalysis::build(const PackedTopology& topo, int sig_bits) {
  if (!width_supported(sig_bits))
    throw std::invalid_argument("ConeAnalysis: sig_bits must be 64, 128 or 256");
  const Netlist& nl = *topo.nl;
  ConeAnalysis ca;
  ca.sig_bits = sig_bits;
  ca.net_sig.assign(nl.num_nets(), ConeSig{});

  // Seed: output ports mark the nets they read (cones end at observation,
  // and a port's own bit lets faults on the port cell group with its cone).
  for (CellId oc : nl.output_cells()) {
    const Cell& c = nl.cell(oc);
    if (!c.ins.empty()) ca.net_sig[c.ins[0]] |= cone_bit(oc, sig_bits);
  }

  // Alternate a flop back-propagation pass (D-side nets inherit the Q
  // cone: fault effects latch across the edge) with a reverse-topological
  // combinational pass (one pass settles the whole combinational closure
  // given the current flop/port seeds) until nothing changes. Signatures
  // only gain bits, so the fixpoint exists and every reachable cell's bit
  // is present in it.
  const auto merge = [&](NetId net, const ConeSig& contrib) {
    const ConeSig merged = ca.net_sig[net] | contrib;
    if (merged == ca.net_sig[net]) return false;
    ca.net_sig[net] = merged;
    return true;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    ++ca.rounds;
    for (CellId id : topo.flop_cells) {
      const Cell& c = nl.cell(id);
      const ConeSig contrib = cone_bit(id, sig_bits) | ca.net_sig[c.out];
      for (NetId in : c.ins) changed |= merge(in, contrib);
    }
    for (std::size_t i = topo.order.size(); i-- > 0;) {
      const PackedTopology::FlatCell& fc = topo.order[i];
      const ConeSig contrib = cone_bit(fc.id, sig_bits) | ca.net_sig[fc.out];
      for (int k = 0; k < fc.n; ++k) changed |= merge(fc.in[k], contrib);
    }
  }
  return ca;
}

ConeSig changed_net_signature(const ConeAnalysis& cones, const Netlist& nl,
                              std::span<const NetId> changed_nets) {
  ConeSig diff;
  for (const NetId n : changed_nets) {
    if (n >= nl.num_nets())
      throw std::invalid_argument("changed_net_signature: net id out of range");
    diff |= cones.net_sig[n];
    const CellId driver = nl.net(n).driver;
    if (driver != kInvalidId)
      diff |= ConeAnalysis::cone_bit(driver, cones.sig_bits);
  }
  return diff;
}

template <int W>
PackedSimT<W>::PackedSimT(const Netlist& nl)
    : PackedSimT(PackedTopology::build(nl)) {}

template <int W>
PackedSimT<W>::PackedSimT(std::shared_ptr<const PackedTopology> topo)
    : topo_(std::move(topo)) {
  const Netlist& nl = *topo_->nl;
  values_.assign(nl.num_nets(), Word{});
  flop_state_.assign(nl.num_cells(), Word{});
  input_hold_.assign(nl.num_cells(), Word{});
  inj_start_.assign(nl.num_cells(), 0);
  has_inj_.assign(nl.num_cells(), 0);
  arena_.assign(topo_->order.size(), 0);
  level_count_.assign(topo_->num_levels, 0);
  event_stamp_.assign(topo_->order.size(), 0);
  flop_stamp_.assign(topo_->flop_cells.size(), 0);
}

template <int W>
void PackedSimT<W>::clear_injections() {
  inj_flat_.clear();
  inj_pos_.clear();
  active_comb_.clear();
  active_flops_.clear();
  std::fill(has_inj_.begin(), has_inj_.end(), 0);
  inj_dirty_ = false;
  needs_full_ = true;
}

template <int W>
void PackedSimT<W>::add_injection(const Injection& inj) {
  inj_pos_.push_back(static_cast<std::uint32_t>(inj_flat_.size()));
  inj_flat_.push_back(inj);
  inj_dirty_ = true;
  needs_full_ = true;
}

template <int W>
void PackedSimT<W>::set_injection_lanes(std::size_t index, Word lanes) {
  assert(index < inj_pos_.size());
  Injection& inj = inj_flat_[inj_pos_[index]];
  if (!lane_neq(inj.lanes, lanes)) return;
  inj.lanes = lanes;
  // A pending full sweep (or full-sweep mode) re-applies every injection
  // from scratch, so nothing is stale.
  if (needs_full_ || inj_dirty_ || mode_ == PackedEvalMode::kFullSweep) return;
  const Cell& c = topo_->nl->cell(inj.cell);
  if (topo_->order_index[inj.cell] != kInvalidId)
    return;  // combinational: permanently event-active, next eval recomputes
  switch (c.type) {
    case CellType::kOutput:
      return;  // applied live at observed()
    case CellType::kInput:
      return;  // source scan applies injections every event eval
    default:
      break;
  }
  if (is_sequential(c.type)) {
    // D/reset-pin faults apply at the next clock(); a Q-pin fault changes
    // the exposed value mid-cycle, so mirror clock()'s pass 2 for this one
    // flop: re-apply injections over the latched state and seed fanout.
    Word v = flop_state_[inj.cell];
    v = apply_inj(inj.cell, nullptr, v, true);
    if (lane_neq(v, values_[c.out])) {
      values_[c.out] = v;
      propagate_change(c.out);
    }
    return;
  }
  // Ties (and any future source kind) are not re-scanned per eval; fall
  // back to one full sweep rather than risk a stale constant.
  needs_full_ = true;
}

template <int W>
void PackedSimT<W>::prepare_injections() {
  // Group by cell; stable so per-cell application order stays insertion
  // order (masking is order-sensitive when lanes overlap). The permutation
  // is tracked so set_injection_lanes handles survive the sort.
  std::vector<std::uint32_t> perm(inj_flat_.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return inj_flat_[a].cell < inj_flat_[b].cell;
                   });
  std::vector<Injection> sorted;
  sorted.reserve(inj_flat_.size());
  std::vector<std::uint32_t> inverse(inj_flat_.size());
  for (std::uint32_t k = 0; k < perm.size(); ++k) {
    inverse[perm[k]] = k;
    sorted.push_back(inj_flat_[perm[k]]);
  }
  inj_flat_ = std::move(sorted);
  for (std::uint32_t& pos : inj_pos_) pos = inverse[pos];
  active_comb_.clear();
  active_flops_.clear();
  for (std::size_t i = 0; i < inj_flat_.size();) {
    const CellId c = inj_flat_[i].cell;
    std::size_t j = i;
    while (j < inj_flat_.size() && inj_flat_[j].cell == c) ++j;
    if (j - i > 0xFF)  // count must fit has_inj_; silent wrap would drop faults
      throw std::runtime_error("PackedSim: more than 255 injections on one cell");
    inj_start_[c] = static_cast<std::uint32_t>(i);
    has_inj_[c] = static_cast<std::uint8_t>(j - i);
    const std::uint32_t oi = topo_->order_index[c];
    if (oi != kInvalidId) active_comb_.push_back(oi);
    const std::uint32_t fi = topo_->flop_index[c];
    if (fi != kInvalidId) active_flops_.push_back(fi);
    i = j;
  }
  inj_dirty_ = false;
}

template <int W>
void PackedSimT<W>::power_on() {
  std::fill(values_.begin(), values_.end(), Word{});
  std::fill(flop_state_.begin(), flop_state_.end(), Word{});
  std::fill(input_hold_.begin(), input_hold_.end(), Word{});
  needs_full_ = true;
  all_flops_dirty_ = true;
}

template <int W>
void PackedSimT<W>::set_input_all(NetId net, bool v) {
  const CellId drv = topo_->nl->net(net).driver;
  assert(drv != kInvalidId && topo_->nl->cell(drv).type == CellType::kInput);
  input_hold_[drv] = lane_broadcast<Word>(v);
}

template <int W>
void PackedSimT<W>::set_input_lanes(NetId net, Word lanes) {
  const CellId drv = topo_->nl->net(net).driver;
  assert(drv != kInvalidId && topo_->nl->cell(drv).type == CellType::kInput);
  input_hold_[drv] = lanes;
}

template <int W>
void PackedSimT<W>::set_input_word(const Bus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    set_input_all(bus[i], (value >> i) & 1);
}

template <int W>
typename PackedSimT<W>::Word PackedSimT<W>::apply_inj(
    CellId id, Word* tmp, Word out_val, bool apply_output) const {
  const Injection* j = inj_flat_.data() + inj_start_[id];
  const Injection* const end = j + has_inj_[id];
  for (; j != end; ++j) {
    if (j->pin == 0) {
      if (apply_output)
        out_val = j->sa1 ? (out_val | j->lanes) : (out_val & ~j->lanes);
    } else if (tmp != nullptr) {
      Word& w = tmp[j->pin - 1];
      w = j->sa1 ? (w | j->lanes) : (w & ~j->lanes);
    }
  }
  return out_val;
}

template <int W>
typename PackedSimT<W>::Word PackedSimT<W>::compute_cell(
    const PackedTopology::FlatCell& fc) const {
  const Word* vals = values_.data();
  if (__builtin_expect(has_inj_[fc.id], 0)) {
    Word tmp[4];
    for (int i = 0; i < fc.n; ++i) tmp[i] = vals[fc.in[i]];
    apply_inj(fc.id, tmp, Word{}, false);
    const Word out = eval_packed(fc.type, tmp, fc.n);
    return apply_inj(fc.id, nullptr, out, true);
  }
  // Hot path: inline the common gates, fall back for the rest.
  switch (fc.type) {
    case CellType::kAnd2:
      return vals[fc.in[0]] & vals[fc.in[1]];
    case CellType::kOr2:
      return vals[fc.in[0]] | vals[fc.in[1]];
    case CellType::kXor2:
      return vals[fc.in[0]] ^ vals[fc.in[1]];
    case CellType::kMux2: {
      const Word s = vals[fc.in[kMuxS]];
      return (s & vals[fc.in[kMuxB]]) | (~s & vals[fc.in[kMuxA]]);
    }
    case CellType::kNot:
      return ~vals[fc.in[0]];
    case CellType::kBuf:
      return vals[fc.in[0]];
    default: {
      Word tmp[4];
      for (int i = 0; i < fc.n; ++i) tmp[i] = vals[fc.in[i]];
      return eval_packed(fc.type, tmp, fc.n);
    }
  }
}

template <int W>
void PackedSimT<W>::push_event(std::uint32_t order_idx) {
  if (event_stamp_[order_idx] == event_epoch_) return;
  event_stamp_[order_idx] = event_epoch_;
  const std::uint32_t lvl = topo_->level[order_idx];
  arena_[topo_->level_start[lvl] + level_count_[lvl]++] = order_idx;
  ++activity_.sched_pushes;
}

template <int W>
void PackedSimT<W>::mark_flop_dirty(std::uint32_t flop_idx) {
  if (flop_stamp_[flop_idx] == flop_epoch_) return;
  flop_stamp_[flop_idx] = flop_epoch_;
  dirty_flops_.push_back(flop_idx);
}

template <int W>
void PackedSimT<W>::propagate_change(NetId net) {
  const PackedTopology& t = *topo_;
  for (std::uint32_t j = t.fanout_start[net]; j < t.fanout_start[net + 1]; ++j)
    push_event(t.fanout[j]);
  for (std::uint32_t j = t.flop_fanout_start[net];
       j < t.flop_fanout_start[net + 1]; ++j)
    mark_flop_dirty(t.flop_fanout[j]);
}

template <int W>
void PackedSimT<W>::bump_event_epoch() {
  if (++event_epoch_ == 0) {  // wrap: stale stamps from the old era alias
    std::fill(event_stamp_.begin(), event_stamp_.end(), 0u);
    event_epoch_ = 1;
  }
}

template <int W>
void PackedSimT<W>::bump_flop_epoch() {
  if (++flop_epoch_ == 0) {
    std::fill(flop_stamp_.begin(), flop_stamp_.end(), 0u);
    flop_epoch_ = 1;
  }
}

template <int W>
void PackedSimT<W>::run_full_sweep() {
  const PackedTopology& t = *topo_;
  // Sources: primary inputs hold their driven value; ties their constant.
  for (CellId id : t.source_cells) {
    const Cell& c = t.nl->cell(id);
    Word v = c.type == CellType::kTie1   ? ~Word{}
             : c.type == CellType::kTie0 ? Word{}
                                         : input_hold_[id];
    if (has_inj_[id]) v = apply_inj(id, nullptr, v, true);
    values_[c.out] = v;
  }
  // Expose flop state (with Q-pin faults).
  for (CellId id : t.flop_cells) {
    Word v = flop_state_[id];
    if (has_inj_[id]) v = apply_inj(id, nullptr, v, true);
    values_[t.nl->cell(id).out] = v;
  }
  // Levelized sweep over the flattened combinational cells. Both kernels
  // share compute_cell, so the sweep oracle and the event path can never
  // diverge on gate semantics.
  for (const PackedTopology::FlatCell& fc : t.order)
    values_[fc.out] = compute_cell(fc);
  // The sweep recomputed everything: retire pending arena entries by
  // zeroing the per-level counts and bumping the membership epoch. The
  // writes above were untracked, so dirty-D state is invalid — the next
  // edge must latch every flop before incremental clocking can resume.
  std::fill(level_count_.begin(), level_count_.end(), 0u);
  bump_event_epoch();
  dirty_flops_.clear();
  all_flops_dirty_ = true;
  needs_full_ = false;
  ++activity_.full_sweeps;
  activity_.cells_evaluated += t.order.size();
}

template <int W>
void PackedSimT<W>::run_event_sweep() {
  const PackedTopology& t = *topo_;
  // Seed: primary inputs whose held word changed since the last eval.
  // (Ties are constant and flop Qs are seeded by clock(), so neither needs
  // a per-eval scan.)
  for (CellId id : t.input_cells) {
    Word v = input_hold_[id];
    if (has_inj_[id]) v = apply_inj(id, nullptr, v, true);
    const NetId out = t.nl->cell(id).out;
    if (lane_neq(v, values_[out])) {
      values_[out] = v;
      propagate_change(out);
    }
  }
  // Injected cells are permanently active, so fault effects propagate even
  // when no input event reaches them this eval.
  for (std::uint32_t k : active_comb_) push_event(k);
  // Drain the arena's level segments in ascending order. Every fanout edge
  // strictly increases the level, so a cell processed here cannot be
  // re-scheduled within the same eval, and a segment cannot grow while it
  // drains.
  std::uint64_t touched = 0;
  std::uint64_t quiet = 0;
  for (std::uint32_t lvl = 1; lvl < t.num_levels; ++lvl) {
    const std::uint32_t n = level_count_[lvl];
    if (n == 0) continue;
    ++activity_.levels_touched;
    const std::uint32_t* seg = arena_.data() + t.level_start[lvl];
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t k = seg[i];
      const PackedTopology::FlatCell& fc = t.order[k];
      const Word out = compute_cell(fc);
      if (lane_neq(out, values_[fc.out])) {
        values_[fc.out] = out;
        propagate_change(fc.out);
      } else {
        ++quiet;
      }
    }
    level_count_[lvl] = 0;
    touched += n;
  }
  // Retire membership stamps so the next eval's pushes start clean.
  bump_event_epoch();
  activity_.cells_evaluated += touched;
  activity_.events_drained += touched;
  activity_.quiet_cells += quiet;
}

template <int W>
void PackedSimT<W>::eval() {
  ++activity_.evals;
  if (inj_dirty_) prepare_injections();
  if (mode_ == PackedEvalMode::kFullSweep || needs_full_) {
    run_full_sweep();
    return;
  }
  run_event_sweep();
}

template <int W>
void PackedSimT<W>::full_eval() {
  ++activity_.evals;
  if (inj_dirty_) prepare_injections();
  run_full_sweep();
}

template <int W>
void PackedSimT<W>::clock() {
  if (inj_dirty_) prepare_injections();
  const PackedTopology& t = *topo_;
  Word tmp[4];
  const bool incremental = clock_mode_ == PackedClockMode::kIncremental &&
                           mode_ == PackedEvalMode::kEventDriven &&
                           !needs_full_ && !all_flops_dirty_;
  if (incremental) {
    // Injected flops always latch: set_injection_lanes re-arms D/reset
    // faults without touching any net, so the latched value can change
    // even when the D input was provably quiet.
    for (const std::uint32_t fi : active_flops_) mark_flop_dirty(fi);
    dirty_scratch_.swap(dirty_flops_);
    dirty_flops_.clear();
    // Bump BEFORE pass 2 so its change marks seed the NEXT edge.
    bump_flop_epoch();
    // Pass 1: latch only the dirty flops. flop_state_ is never read here,
    // so flop-to-flop paths latch pre-edge values; a skipped flop's D
    // (and reset) words are unchanged since its last latch, so re-latching
    // it would be a no-op.
    for (const std::uint32_t fi : dirty_scratch_) {
      const CellId id = t.flop_cells[fi];
      const Cell& c = t.nl->cell(id);
      const int n = static_cast<int>(c.ins.size());
      for (int i = 0; i < n; ++i) tmp[i] = values_[c.ins[i]];
      if (has_inj_[id]) apply_inj(id, tmp, Word{}, false);
      // DFF: q' = d. DFFR (active-low reset to 0): q' = d & rstn.
      flop_state_[id] =
          c.type == CellType::kDff ? tmp[kDffD] : (tmp[kDffD] & tmp[kDffRstn]);
    }
    activity_.flops_latched += dirty_scratch_.size();
    activity_.flops_skipped += t.flop_cells.size() - dirty_scratch_.size();
    // Pass 2: expose changed Qs of the latched flops only — a skipped
    // flop's state is unchanged, so its exposed Q (a fixed Q-pin fault
    // over an unchanged word) is unchanged too.
    for (const std::uint32_t fi : dirty_scratch_) {
      const CellId id = t.flop_cells[fi];
      Word v = flop_state_[id];
      if (has_inj_[id]) v = apply_inj(id, nullptr, v, true);
      const NetId out = t.nl->cell(id).out;
      if (lane_neq(v, values_[out])) {
        values_[out] = v;
        propagate_change(out);
      }
    }
    eval();
    return;
  }
  // Full latch: the oracle path, and the re-arming edge after any
  // untracked state (full sweep, power-on, injection change).
  dirty_flops_.clear();
  bump_flop_epoch();
  // Re-arm dirty-D tracking before eval(): pass 2 and the event drain
  // below mark against the fresh epoch; if eval() falls back to a full
  // sweep it re-invalidates, keeping this edge's writes conservative.
  all_flops_dirty_ = false;
  // Pass 1: latch every flop from the settled net values. flop_state_ is
  // never read here, so flop-to-flop paths latch pre-edge values.
  for (CellId id : t.flop_cells) {
    const Cell& c = t.nl->cell(id);
    const int n = static_cast<int>(c.ins.size());
    for (int i = 0; i < n; ++i) tmp[i] = values_[c.ins[i]];
    if (has_inj_[id]) apply_inj(id, tmp, Word{}, false);
    // DFF: q' = d. DFFR (active-low reset to 0): q' = d & rstn.
    flop_state_[id] =
        c.type == CellType::kDff ? tmp[kDffD] : (tmp[kDffD] & tmp[kDffRstn]);
  }
  activity_.flops_latched += t.flop_cells.size();
  // Pass 2 (event mode): expose changed Q values (with Q-pin faults) and
  // seed their fanout, replacing the per-eval scan over every flop.
  if (mode_ == PackedEvalMode::kEventDriven && !needs_full_) {
    for (CellId id : t.flop_cells) {
      Word v = flop_state_[id];
      if (has_inj_[id]) v = apply_inj(id, nullptr, v, true);
      const NetId out = t.nl->cell(id).out;
      if (lane_neq(v, values_[out])) {
        values_[out] = v;
        propagate_change(out);
      }
    }
  }
  eval();
}

template <int W>
typename PackedSimT<W>::Word PackedSimT<W>::observed(
    CellId output_cell) const {
  const Cell& c = topo_->nl->cell(output_cell);
  assert(c.type == CellType::kOutput);
  // Injections are grouped lazily; observing between add_injection() and
  // the next eval()/clock() would silently miss port faults.
  assert(!inj_dirty_ && "call eval() after changing injections");
  Word v = values_[c.ins[0]];
  if (has_inj_[output_cell]) {
    const Injection* j = inj_flat_.data() + inj_start_[output_cell];
    const Injection* const end = j + has_inj_[output_cell];
    for (; j != end; ++j) {
      if (j->pin != 1) continue;
      v = j->sa1 ? (v | j->lanes) : (v & ~j->lanes);
    }
  }
  return v;
}

// The scalar kernel exists everywhere; the wide kernels ride vector
// extensions and exist only where the compiler provides them.
template class PackedSimT<64>;
#if OLFUI_HAS_WIDE_LANES
template class PackedSimT<128>;
template class PackedSimT<256>;
#endif

}  // namespace olfui
