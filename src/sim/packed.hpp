// olfui/sim: W-lane bit-parallel 2-valued simulation kernel.
//
// Each net carries one packed lane word (util/lanes.hpp) = W independent
// machines; W is a compile-time parameter instantiated at 64 (scalar
// uint64_t, the default) and — where the compiler has vector extensions —
// 128 and 256. The fault simulator (olfui_fsim) packs a good machine plus
// up to W-1 faulty machines per pass and injects stuck-at values at
// (cell, pin) sites per lane — the classic parallel-fault scheme.
// Simulation is 2-valued: callers must apply an explicit reset sequence
// so that no X state matters.
//
// Evaluation is event-driven: the netlist is flattened once into a
// PackedTopology (levelized cells, per-cell levels, CSR fanout graph) and
// eval() visits only cells whose input words actually changed — sources
// and flops seed events when their value differs from the previous one, a
// cell whose output word is unchanged schedules no fanout, and injected
// cells are permanently active so fault effects always propagate. A
// full_eval() levelized sweep is retained for power-on/reset, injection
// changes, and as a cross-check oracle; both paths compute bit-identical
// values (the event path is a pure work-skipping optimisation, never an
// approximation). Events flow through a flat preallocated arena (per-level
// segments of one index array, epoch-stamped membership) rather than
// per-level vectors, and clock() is incremental by default: only flops
// whose D input changed since their last latch — the dirty-D set seeded
// by the same event drain — are latched, with the full two-pass latch
// retained as the oracle (PackedClockMode).
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/wordops.hpp"
#include "util/lanes.hpp"

namespace olfui {

/// A stuck-at value injected at a pin for a subset of lanes.
template <int W>
struct PackedInjectionT {
  using Word = LaneWord<W>;
  CellId cell = kInvalidId;
  std::uint8_t pin = 0;  ///< 0 = output pin, 1.. = input pins
  bool sa1 = false;
  Word lanes{};  ///< lane mask where the fault is active
};

/// The scalar 64-lane injection every pre-width-parametric caller uses.
using PackedInjection = PackedInjectionT<64>;

/// Immutable evaluation structures shared by every PackedSim over the same
/// netlist: the flattened levelized cell array, per-cell logic levels, and
/// the CSR fanout graph used for event scheduling. Building it is O(cells
/// + edges); flows that simulate one netlist many times (scan patterns,
/// campaign workers) build it once and share it across simulators.
struct PackedTopology {
  /// Flattened cell record for the hot evaluation loop.
  struct FlatCell {
    CellType type;
    std::uint8_t n;
    NetId out;
    CellId id;
    NetId in[4];
  };

  const Netlist* nl = nullptr;
  /// Combinational cells in topological order (kOutput excluded).
  std::vector<FlatCell> order;
  /// Logic level of order[i]: 1 + max level of its producers (sources and
  /// flop outputs are level 0), so every fanout edge strictly increases.
  std::vector<std::uint32_t> level;
  std::uint32_t num_levels = 0;  ///< max level + 1
  /// CSR fanout: combinational readers (order indexes) of each net.
  std::vector<std::uint32_t> fanout_start;  // size num_nets + 1
  std::vector<std::uint32_t> fanout;
  /// Arena offsets for the flat event scheduler: pending cells of level L
  /// live in [level_start[L], level_start[L+1]) of one preallocated index
  /// array. A cell is pending at most once, so each level's capacity is
  /// exactly its population.
  std::vector<std::uint32_t> level_start;  // size num_levels + 1
  /// CSR flop fanout: sequential readers of each net, as indexes into
  /// flop_cells — the dirty-D seed map of incremental clocking (a net
  /// change marks exactly the flops whose D/reset pins read it).
  std::vector<std::uint32_t> flop_fanout_start;  // size num_nets + 1
  std::vector<std::uint32_t> flop_fanout;
  /// Order index of each cell, or kInvalidId for non-combinational cells.
  std::vector<std::uint32_t> order_index;
  /// flop_cells index of each cell, or kInvalidId for non-flops.
  std::vector<std::uint32_t> flop_index;
  std::vector<CellId> flop_cells;
  std::vector<CellId> source_cells;  ///< kInput + ties (full-sweep order)
  std::vector<CellId> input_cells;   ///< kInput only (per-eval change scan)

  /// Throws std::runtime_error on a combinational loop.
  static std::shared_ptr<const PackedTopology> build(const Netlist& nl);
};

/// Width-parametric Bloom signature word set: up to kMaxWords x 64 = 256
/// cone buckets. Width 64 populates only w[0] and reproduces the
/// historical scalar signature bit for bit (same multiplicative hash, same
/// bucket for every cell), so existing 64-bit plans are unchanged; 128/256
/// spread the buckets finer for the CPU-wide cones that saturate the
/// 64-bit filter (mean union popcount near 64 on the SBST slice).
struct ConeSig {
  static constexpr int kMaxWords = 4;
  std::uint64_t w[kMaxWords]{};

  bool any() const { return (w[0] | w[1] | w[2] | w[3]) != 0; }
  bool intersects(const ConeSig& o) const {
    return ((w[0] & o.w[0]) | (w[1] & o.w[1]) | (w[2] & o.w[2]) |
            (w[3] & o.w[3])) != 0;
  }
  int popcount() const {
    return std::popcount(w[0]) + std::popcount(w[1]) + std::popcount(w[2]) +
           std::popcount(w[3]);
  }
  ConeSig& operator|=(const ConeSig& o) {
    for (int k = 0; k < kMaxWords; ++k) w[k] |= o.w[k];
    return *this;
  }
  friend ConeSig operator|(ConeSig a, const ConeSig& b) { return a |= b; }
  friend ConeSig operator&(ConeSig a, const ConeSig& b) {
    for (int k = 0; k < kMaxWords; ++k) a.w[k] &= b.w[k];
    return a;
  }
  bool operator==(const ConeSig&) const = default;
  /// Total order matching plain uint64 comparison when only w[0] is
  /// populated (width 64), so raw-sort cone plans are width-stable.
  bool operator<(const ConeSig& o) const {
    for (int k = kMaxWords; k-- > 0;)
      if (w[k] != o.w[k]) return w[k] < o.w[k];
    return false;
  }
};

/// Static fanout-cone signatures over a topology. `net_sig[n]` is a Bloom
/// approximation (sig_bits buckets: 64, 128 or 256) of the set of cells
/// reachable from net `n` — through combinational logic, across flops
/// (next-cycle propagation), and into output ports. A reachable cell's
/// cone_bit() is ALWAYS set in the signature (no false negatives, checked
/// against a brute-force BFS oracle in tests/scheduler_test.cpp);
/// unrelated cells may collide onto the same bit, which is fine for both
/// consumers — the cone-aware batch scheduler (groups faults whose
/// signatures overlap so a batch's event-driven active set stays small)
/// and the incremental re-grade planner (a collision only widens the
/// re-grade set, never shrinks it). Built once per topology by iterating a
/// reverse-topological combinational pass with a flop back-propagation
/// pass to the sequential fixpoint (signatures grow monotonically, so
/// termination is guaranteed; rounds scale with sequential depth).
struct ConeAnalysis {
  std::vector<ConeSig> net_sig;  ///< per net
  int sig_bits = 64;  ///< Bloom filter width this analysis was built at
  int rounds = 0;  ///< passes needed to reach the sequential fixpoint

  static bool width_supported(int bits) {
    return bits == 64 || bits == 128 || bits == 256;
  }

  /// The Bloom bit of one cell at signature width `bits` (dense ids mixed
  /// so neighbours spread across all buckets instead of aliasing onto the
  /// same few). At 64 the bucket index is the historical high-6-bit value,
  /// so width-64 signatures equal the pre-width scalar ones exactly.
  static ConeSig cone_bit(CellId id, int bits = 64) {
    const std::uint64_t h = id * 0x9E3779B97F4A7C15ULL;
    const unsigned idx = static_cast<unsigned>(
        h >> (64 - std::countr_zero(static_cast<unsigned>(bits))));
    ConeSig sig;
    sig.w[idx >> 6] = 1ULL << (idx & 63);
    return sig;
  }

  /// Throws std::invalid_argument unless width_supported(sig_bits).
  static ConeAnalysis build(const PackedTopology& topo, int sig_bits = 64);
};

/// Cone-vs-diff intersection seed for incremental re-grade: the union
/// signature of everything a set of changed nets can influence — each
/// changed net contributes its full cone (every cell transitively reading
/// it, across flops and into output ports) plus its driver cell's own bit
/// (the changed logic itself). A fault's outcome can differ only if its
/// effect-net signature intersects this union (the diff reaches the
/// fault's propagation cone, including side inputs) or the diff reaches
/// the fault's own cell (activation change) — Bloom collisions only ever
/// widen the re-grade set. Throws std::invalid_argument on a net id out
/// of range.
ConeSig changed_net_signature(const ConeAnalysis& cones, const Netlist& nl,
                              std::span<const NetId> changed_nets);

/// eval() strategy; both produce bit-identical values.
enum class PackedEvalMode : std::uint8_t {
  kEventDriven,  ///< dirty-set scheduling over the fanout graph (default)
  kFullSweep,    ///< levelized sweep over every cell (the oracle/baseline)
};

/// clock() strategy; both produce bit-identical values.
enum class PackedClockMode : std::uint8_t {
  /// Latch only flops whose D/reset input changed since their last latch
  /// (the dirty-D set seeded by the event drain) plus flops carrying
  /// injections. Effective only in event mode with valid tracked state;
  /// any untracked eval (full sweep, power-on) falls back to one full
  /// latch and re-arms the tracking. The default.
  kIncremental,
  /// Latch every flop on every edge (the oracle/baseline).
  kFullLatch,
};

/// Work counters for the activity benches and the obs metrics bridge
/// (fsim publishes per-batch deltas as kernel.* counters): how much of
/// the netlist the kernel actually touched. Plain counters, no locks —
/// the kernel itself stays observability-free.
struct PackedActivity {
  std::uint64_t evals = 0;            ///< eval() calls
  std::uint64_t full_sweeps = 0;      ///< evals resolved by a full sweep
  std::uint64_t cells_evaluated = 0;  ///< combinational cells computed
  std::uint64_t events_drained = 0;   ///< cells drained from the event arena
  std::uint64_t levels_touched = 0;   ///< non-empty level segments drained
  /// Drained cells whose output word was unchanged — their fanout was
  /// never scheduled (the event path's work-skipping payoff).
  std::uint64_t quiet_cells = 0;
  std::uint64_t sched_pushes = 0;     ///< cells pushed into the event arena
  std::uint64_t flops_latched = 0;    ///< flops latched across clock() edges
  /// Flops skipped by incremental clocking (their D input provably
  /// unchanged since their last latch) — the dirty-D payoff.
  std::uint64_t flops_skipped = 0;
};

template <int W>
class PackedSimT {
 public:
  using Word = LaneWord<W>;
  using Injection = PackedInjectionT<W>;
  static constexpr int kLanes = W;

  explicit PackedSimT(const Netlist& nl);
  /// Shares a prebuilt topology (cheap: only per-net/per-cell state is
  /// allocated). The netlist behind `topo` must outlive the simulator.
  explicit PackedSimT(std::shared_ptr<const PackedTopology> topo);

  void clear_injections();
  void add_injection(const Injection& inj);
  /// Rewrites the lane mask of an existing injection; `index` is the
  /// insertion order of add_injection calls since the last
  /// clear_injections(). Unlike add_injection this does NOT invalidate the
  /// event state: the injected cell set is unchanged, injected
  /// combinational cells are permanently event-active, source cells are
  /// re-scanned every eval, port faults apply at observed(), flop D/reset
  /// faults apply at clock() — only a flop Q fault needs (and gets) an
  /// explicit re-expose. This is the per-cycle arming primitive of the
  /// transition-delay flow, where a fault is live only on capture cycles.
  void set_injection_lanes(std::size_t index, Word lanes);

  /// Zeroes all state (flops and nets). 2-valued power-on; drive a reset
  /// sequence afterwards for circuits that need one.
  void power_on();

  /// Drives the same value on all W lanes of a primary input.
  void set_input_all(NetId net, bool v);
  /// Drives an explicit per-lane word on a primary input.
  void set_input_lanes(NetId net, Word lanes);
  /// Drives bit i of `value` on all lanes of bus[i].
  void set_input_word(const Bus& bus, std::uint64_t value);

  /// Settles combinational logic (applies injections). Event-driven unless
  /// the mode is kFullSweep or the state was invalidated (power-on,
  /// injection change), in which case it falls back to one full sweep.
  void eval();
  /// Unconditional levelized sweep over every cell — the reference kernel.
  void full_eval();
  /// Clock edge then eval.
  void clock();

  void set_eval_mode(PackedEvalMode mode) { mode_ = mode; }
  PackedEvalMode eval_mode() const { return mode_; }
  void set_clock_mode(PackedClockMode mode) { clock_mode_ = mode; }
  PackedClockMode clock_mode() const { return clock_mode_; }

  const PackedActivity& activity() const { return activity_; }
  void reset_activity() { activity_ = {}; }
  std::size_t comb_cell_count() const { return topo_->order.size(); }

  Word value(NetId net) const { return values_[net]; }
  /// Value seen by a top-level output port, including any injection on the
  /// port cell's input pin (PO stuck-at faults).
  Word observed(CellId output_cell) const;

  const Netlist& netlist() const { return *topo_->nl; }
  const PackedTopology& topology() const { return *topo_; }

 private:
  Word apply_inj(CellId id, Word* tmp, Word out_val, bool apply_output) const;
  void prepare_injections();
  void run_full_sweep();
  void run_event_sweep();
  void push_event(std::uint32_t order_idx);
  void mark_flop_dirty(std::uint32_t flop_idx);
  /// A net's settled value changed: schedule its combinational readers
  /// and mark its flop readers dirty for the next clock edge. The single
  /// change-tracking entry point — every values_[] write outside a full
  /// sweep routes through it, so the dirty-D set can never miss a flop.
  void propagate_change(NetId net);
  void bump_event_epoch();
  void bump_flop_epoch();
  Word compute_cell(const PackedTopology::FlatCell& fc) const;

  std::shared_ptr<const PackedTopology> topo_;
  PackedEvalMode mode_ = PackedEvalMode::kEventDriven;
  PackedClockMode clock_mode_ = PackedClockMode::kIncremental;
  std::vector<Word> values_;       // per net
  std::vector<Word> flop_state_;   // per cell (flop entries only)
  std::vector<Word> input_hold_;   // per cell: driven PI value

  // Flat injection storage: inj_flat_ grouped by cell; cell c owns
  // inj_flat_[inj_start_[c] .. inj_start_[c] + has_inj_[c]). Rebuilt
  // lazily (inj_dirty_) by a stable sort, so per-cell application order
  // matches insertion order. inj_pos_[i] tracks where insertion i landed
  // after grouping (the set_injection_lanes handle).
  std::vector<Injection> inj_flat_;
  std::vector<std::uint32_t> inj_pos_;
  std::vector<std::uint32_t> inj_start_;  // per cell
  std::vector<std::uint8_t> has_inj_;     // per cell: injection count
  std::vector<std::uint32_t> active_comb_;  // order indexes of injected cells
  std::vector<std::uint32_t> active_flops_; // flop indexes of injected flops
  bool inj_dirty_ = false;

  // Flat event scheduler: one preallocated index arena segmented by level
  // (topology level_start offsets + per-level pending counts) with
  // epoch-stamped membership words — a drain or full sweep retires every
  // pending entry by bumping the epoch instead of clearing per-cell
  // flags. needs_full_ marks states (power-on, injection change,
  // construction) whose net values are stale beyond what events track.
  std::vector<std::uint32_t> arena_;        // order.size() slots
  std::vector<std::uint32_t> level_count_;  // per level: pending entries
  std::vector<std::uint32_t> event_stamp_;  // per order index
  std::uint32_t event_epoch_ = 1;
  bool needs_full_ = true;

  // Dirty-D clocking: flop indexes whose D/reset input changed since
  // their last latch, with the same epoch-stamp membership scheme.
  // all_flops_dirty_ is the untracked-state fallback — any full sweep
  // rewrites nets without change tracking, so the next edge must latch
  // everything before incremental clocking can resume.
  std::vector<std::uint32_t> dirty_flops_;
  std::vector<std::uint32_t> dirty_scratch_;  // swap target during clock()
  std::vector<std::uint32_t> flop_stamp_;     // per flop index
  std::uint32_t flop_epoch_ = 1;
  bool all_flops_dirty_ = true;

  PackedActivity activity_;
};

/// The scalar 64-lane simulator — the default, and the only width
/// guaranteed on every compiler. Wider instantiations (128/256) exist
/// when OLFUI_HAS_WIDE_LANES is set; see resolve_lane_width().
using PackedSim = PackedSimT<64>;

}  // namespace olfui
