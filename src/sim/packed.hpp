// olfui/sim: 64-lane bit-parallel 2-valued simulation kernel.
//
// Each net carries one 64-bit word = 64 independent machines. The fault
// simulator (olfui_fsim) packs a good machine plus up to 63 faulty machines
// per pass and injects stuck-at values at (cell, pin) sites per lane — the
// classic parallel-fault scheme. Simulation is 2-valued: callers must
// apply an explicit reset sequence so that no X state matters.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/wordops.hpp"

namespace olfui {

/// A stuck-at value injected at a pin for a subset of lanes.
struct PackedInjection {
  CellId cell = kInvalidId;
  std::uint8_t pin = 0;  ///< 0 = output pin, 1.. = input pins
  bool sa1 = false;
  std::uint64_t lanes = 0;  ///< lane mask where the fault is active
};

class PackedSim {
 public:
  explicit PackedSim(const Netlist& nl);

  void clear_injections();
  void add_injection(const PackedInjection& inj);

  /// Zeroes all state (flops and nets). 2-valued power-on; drive a reset
  /// sequence afterwards for circuits that need one.
  void power_on();

  /// Drives the same value on all 64 lanes of a primary input.
  void set_input_all(NetId net, bool v);
  /// Drives an explicit per-lane word on a primary input.
  void set_input_lanes(NetId net, std::uint64_t lanes);
  /// Drives bit i of `value` on all lanes of bus[i].
  void set_input_word(const Bus& bus, std::uint64_t value);

  /// Settles combinational logic (applies injections).
  void eval();
  /// Clock edge then eval.
  void clock();

  std::uint64_t value(NetId net) const { return values_[net]; }
  /// Value seen by a top-level output port, including any injection on the
  /// port cell's input pin (PO stuck-at faults).
  std::uint64_t observed(CellId output_cell) const;

  const Netlist& netlist() const { return *nl_; }

 private:
  /// Flattened cell record for the hot evaluation loop.
  struct FlatCell {
    CellType type;
    std::uint8_t n;
    NetId out;
    CellId id;
    NetId in[4];
  };

  std::uint64_t apply_inj(CellId id, std::uint64_t* tmp, std::uint64_t out_val,
                          bool apply_output) const;

  const Netlist* nl_;
  std::vector<FlatCell> order_;
  std::vector<CellId> flop_cells_;
  std::vector<CellId> source_cells_;  // kInput + ties
  std::vector<std::uint64_t> values_;       // per net
  std::vector<std::uint64_t> flop_state_;   // per cell (flop entries only)
  std::vector<std::uint64_t> input_hold_;   // per cell: driven PI value
  std::vector<std::uint8_t> has_inj_;       // per cell
  std::unordered_map<CellId, std::vector<PackedInjection>> inj_;
};

}  // namespace olfui
