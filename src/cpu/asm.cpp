#include "cpu/asm.hpp"

#include <cctype>
#include <optional>
#include <vector>

#include "util/strings.hpp"

namespace olfui {
namespace {

std::string_view strip_comment(std::string_view line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == ';' || line[i] == '#' ||
        (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/'))
      return line.substr(0, i);
  }
  return line;
}

struct Operand {
  enum Kind { kReg, kImm, kMem, kLabel } kind;
  int reg = 0;        // kReg / kMem base register
  std::int64_t imm = 0;  // kImm / kMem offset
  std::string label;  // kLabel
};

class LineParser {
 public:
  LineParser(std::string_view text, int line) : text_(text), line_(line) {}

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  std::string take_word() {
    skip_ws();
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '_' || text_[end] == '.'))
      ++end;
    if (end == pos_) fail("expected identifier");
    std::string w(text_.substr(pos_, end - pos_));
    pos_ = end;
    return w;
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool try_take(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::int64_t take_int() {
    skip_ws();
    bool neg = try_take('-');
    skip_ws();
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '_'))
      ++end;
    const auto v = parse_uint(text_.substr(pos_, end - pos_));
    if (!v) fail("expected integer");
    pos_ = end;
    return neg ? -static_cast<std::int64_t>(*v) : static_cast<std::int64_t>(*v);
  }

  Operand take_operand() {
    skip_ws();
    if (pos_ >= text_.size()) fail("expected operand");
    const char c = text_[pos_];
    if ((c == 'r' || c == 'R') && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      pos_ += 1;
      const std::int64_t r = take_int();
      if (r < 0 || r > 7) fail("register out of range (r0..r7)");
      return {Operand::kReg, static_cast<int>(r), 0, {}};
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      const std::int64_t v = take_int();
      if (try_take('(')) {  // mem operand: imm(rN)
        Operand base = take_operand();
        if (base.kind != Operand::kReg) fail("expected base register");
        expect(')');
        return {Operand::kMem, base.reg, v, {}};
      }
      return {Operand::kImm, 0, v, {}};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Operand op{Operand::kLabel, 0, 0, take_word()};
      return op;
    }
    fail("unrecognized operand");
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw AsmError(msg, line_);
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
};

}  // namespace

Program assemble(const std::string& source, std::uint32_t default_base) {
  // Two passes would be needed for a .org after code; we simply require
  // .org first, which lets us assemble in one pass on top of Program's
  // own label fixups.
  std::optional<Program> prog;
  bool emitted_any = false;
  const auto program = [&]() -> Program& {
    if (!prog) prog.emplace(default_base);
    return *prog;
  };

  int line_no = 0;
  for (std::string_view raw : split(source, "\n")) {
    ++line_no;
    std::string_view line = trim(strip_comment(raw));
    if (line.empty()) continue;
    LineParser p(line, line_no);

    std::string word = p.take_word();
    // Labels (possibly several per line).
    while (p.try_take(':')) {
      program().label(word);
      if (p.at_end()) {
        word.clear();
        break;
      }
      word = p.take_word();
    }
    if (word.empty()) continue;

    if (word == ".org") {
      if (emitted_any) p.fail(".org must precede all instructions");
      const std::int64_t base = p.take_int();
      if (prog && prog->size() > 0) p.fail(".org must precede all instructions");
      prog.emplace(static_cast<std::uint32_t>(base));
      continue;
    }
    if (word == ".word") {
      program().raw(static_cast<std::uint32_t>(p.take_int()));
      emitted_any = true;
      continue;
    }

    const auto reg = [&](const Operand& o) {
      if (o.kind != Operand::kReg) p.fail("expected register operand");
      return o.reg;
    };
    const auto imm = [&](const Operand& o) {
      if (o.kind != Operand::kImm) p.fail("expected immediate operand");
      if (o.imm < -32768 || o.imm > 65535) p.fail("immediate out of range");
      return static_cast<std::int32_t>(o.imm);
    };
    const auto label = [&](const Operand& o) {
      if (o.kind != Operand::kLabel) p.fail("expected label operand");
      return o.label;
    };
    const auto next = [&] {
      const Operand o = p.take_operand();
      p.try_take(',');
      return o;
    };

    Program& pr = program();
    emitted_any = true;
    if (word == "nop") {
      pr.nop();
    } else if (word == "halt") {
      pr.halt();
    } else if (word == "add" || word == "sub" || word == "and" ||
               word == "or" || word == "xor" || word == "sltu" ||
               word == "sll" || word == "srl" || word == "mul") {
      const int rd = reg(next()), rs1 = reg(next()), rs2 = reg(next());
      if (word == "add") pr.add(rd, rs1, rs2);
      else if (word == "sub") pr.sub(rd, rs1, rs2);
      else if (word == "and") pr.and_(rd, rs1, rs2);
      else if (word == "or") pr.or_(rd, rs1, rs2);
      else if (word == "xor") pr.xor_(rd, rs1, rs2);
      else if (word == "sltu") pr.sltu(rd, rs1, rs2);
      else if (word == "sll") pr.sll(rd, rs1, rs2);
      else if (word == "srl") pr.srl(rd, rs1, rs2);
      else pr.mul(rd, rs1, rs2);
    } else if (word == "addi" || word == "andi" || word == "ori" ||
               word == "xori") {
      const int rd = reg(next()), rs1 = reg(next());
      const std::int32_t v = imm(next());
      if (word == "addi") pr.addi(rd, rs1, v);
      else if (word == "andi") pr.andi(rd, rs1, v);
      else if (word == "ori") pr.ori(rd, rs1, v);
      else pr.xori(rd, rs1, v);
    } else if (word == "lui") {
      const int rd = reg(next());
      pr.lui(rd, imm(next()));
    } else if (word == "li") {
      const int rd = reg(next());
      const Operand o = next();
      if (o.kind != Operand::kImm) p.fail("expected immediate operand");
      pr.li(rd, static_cast<std::uint32_t>(o.imm));
    } else if (word == "lw" || word == "sw") {
      const Operand r1 = next();
      const Operand mem = next();
      if (mem.kind != Operand::kMem) p.fail("expected imm(reg) operand");
      if (mem.imm < -32768 || mem.imm > 32767) p.fail("offset out of range");
      if (word == "lw")
        pr.lw(reg(r1), mem.reg, static_cast<std::int32_t>(mem.imm));
      else
        pr.sw(reg(r1), mem.reg, static_cast<std::int32_t>(mem.imm));
    } else if (word == "beq" || word == "bne") {
      const int rs1 = reg(next()), rs2 = reg(next());
      const std::string target = label(next());
      if (word == "beq") pr.beq(rs1, rs2, target);
      else pr.bne(rs1, rs2, target);
    } else if (word == "jal") {
      const int rd = reg(next());
      pr.jal(rd, label(next()));
    } else if (word == "jr") {
      pr.jr(reg(next()));
    } else {
      p.fail("unknown mnemonic '" + word + "'");
    }
    if (!p.at_end()) p.fail("trailing characters");
  }

  Program& pr = program();
  try {
    pr.words();  // resolve fixups now so errors surface here
  } catch (const std::runtime_error& e) {
    throw AsmError(e.what(), line_no);
  }
  return pr;
}

}  // namespace olfui
