// olfui/cpu: gate-level generator for the MiniRISC32 core.
//
// The generator expands a two-stage (fetch | execute) pipelined 32-bit
// RISC core into library gates using WordOps. Everything the DATE'13
// analysis needs is present as real logic:
//  * address generation: PC+4 incrementer, branch-target adder, link
//    adder and the load/store AGU (the paper's "adder used in a branch
//    address calculation");
//  * a branch target buffer whose valid/tag/target registers are tagged
//    "addr:code:<bit>" (the paper's §3.3 explicitly includes the BTB);
//  * a registered bus unit (address / write-data / strobes) tagged
//    "addr:data:<bit>" — the mission memory map constrains what these
//    registers can ever hold;
//  * register file, ALU, barrel shifter, pipeline control.
//
// Scan chains and the debug unit are NOT generated here; the scan and
// debug insertion passes are applied on top (see soc.hpp), mirroring a
// real implementation flow.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/wordops.hpp"

namespace olfui {

struct CpuConfig {
  int btb_entries = 4;  ///< power of two, >= 1
  std::uint32_t reset_vector = 0x0007'8000;
  /// Include the 32x32 array multiplier (MUL instruction). Disable for
  /// lean unit-test netlists.
  bool with_multiplier = true;
};

struct BtbEntryHandles {
  RegWord valid;   // 1 bit
  RegWord tag;     // 32 bits, tagged addr:code
  RegWord target;  // 32 bits, tagged addr:code
};

/// Handles into the generated core: ports for the simulation environment,
/// register words for the debug-insertion pass.
struct CpuHandles {
  // ---- input ports ----
  NetId rstn = kInvalidId;
  Bus instr_in;  ///< instruction fetched from code memory (combinational)
  Bus rdata_in;  ///< load data, valid the cycle after brd asserts

  // ---- output ports: the system bus (mission-observable) ----
  Bus iaddr;    ///< instruction fetch address (= PC)
  Bus baddr;    ///< registered data address
  Bus bwdata;   ///< registered store data
  NetId bwr = kInvalidId;    ///< store strobe
  NetId brd = kInvalidId;    ///< load strobe
  NetId halted = kInvalidId; ///< HALT executed
  std::vector<CellId> bus_output_cells;  ///< all of the above as port cells

  // ---- architected registers (debug-insertion targets) ----
  std::vector<RegWord> gprs;  ///< r0..r7
  RegWord pc;                 ///< tagged addr:code
  RegWord ir;
  RegWord ir_pc;              ///< tagged addr:code
  RegWord bus_addr_reg;       ///< tagged addr:data
  std::vector<BtbEntryHandles> btb;
};

CpuHandles generate_cpu(Netlist& nl, const CpuConfig& cfg);

}  // namespace olfui
