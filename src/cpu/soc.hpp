// olfui/cpu: the system-on-chip around the MiniRISC32 core.
//
// build_soc() reproduces the case-study configuration: the core, the
// Nexus-style debug unit (insert_debug), full scan (insert_scan, so the
// debug unit's own flops are scanned too), and the mission memory map —
// Flash at 0x0007_8000-0x0007_FFFF, RAM at 0x4000_0000-0x4001_FFFF on a
// 32-bit address bus. Memories are behavioural models (the paper's
// 214,930-fault universe is the processor core only; memory cores are
// outside it).
//
// Two execution environments drive the netlist:
//  * SocSimulator — 4-valued single-machine functional runner (program
//    bring-up, architectural tests, toggle-activity recording);
//  * SocFsimEnvironment — the packed W-lane environment for the fault
//    simulator (64 scalar by default, 128/256 over vector extensions),
//    with per-lane RAM so faulty machines that stray to wrong addresses
//    read what real silicon would read.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cpu/cpu.hpp"
#include "cpu/isa.hpp"
#include "debug/debug.hpp"
#include "fsim/fsim.hpp"
#include "memmap/memmap.hpp"
#include "netlist/netlist.hpp"
#include "scan/scan.hpp"
#include "sim/sim.hpp"

namespace olfui {

struct SocConfig {
  CpuConfig cpu;
  bool with_debug = true;
  bool with_scan = true;
  ScanConfig scan{.num_chains = 4, .buffers_per_link = 1,
                  .se_functional_value = false};
  std::uint64_t flash_base = 0x0007'8000;
  std::uint64_t flash_size = 0x0'8000;   // 32 KiB code flash
  std::uint64_t ram_base = 0x4000'0000;
  std::uint64_t ram_size = 0x2'0000;     // 128 KiB SRAM
};

struct Soc {
  SocConfig config;
  Netlist netlist{"minirisc_soc"};
  CpuHandles cpu;
  DebugPorts debug;    // empty if !with_debug
  ScanChains scan;     // empty if !with_scan
  MemoryMap map;
};

std::unique_ptr<Soc> build_soc(const SocConfig& cfg = {});

/// Code image resident in the behavioural flash.
class FlashImage {
 public:
  FlashImage(std::uint64_t base, std::uint64_t size) : base_(base), size_(size) {}
  void load(std::uint32_t addr, const std::vector<std::uint32_t>& words);
  /// Word at byte address `addr`; 0 (NOP) outside the image.
  std::uint32_t read(std::uint64_t addr) const;
  std::uint64_t base() const { return base_; }

 private:
  std::uint64_t base_, size_;
  std::unordered_map<std::uint64_t, std::uint32_t> words_;
};

/// Single-machine 4-valued functional runner.
class SocSimulator {
 public:
  explicit SocSimulator(const Soc& soc);

  FlashImage& flash() { return flash_; }
  /// Assembles `p` (resolving labels) and loads it at its base address.
  void load_program(Program& p);

  /// Applies reset and runs until HALT or `max_cycles`. Returns the number
  /// of executed cycles. An optional recorder samples toggle activity.
  int run(int max_cycles, ToggleRecorder* recorder = nullptr);

  bool halted() const;
  std::uint32_t gpr(int r) const;
  std::uint32_t pc() const;
  std::uint32_t ram_word(std::uint64_t addr) const;
  const std::unordered_map<std::uint64_t, std::uint32_t>& ram() const {
    return ram_;
  }
  Simulator& sim() { return sim_; }

 private:
  void drive_mission_inputs(bool rstn_value);

  const Soc* soc_;
  Simulator sim_;
  FlashImage flash_;
  std::unordered_map<std::uint64_t, std::uint32_t> ram_;
};

/// Packed fault-simulation environment with per-lane data memory.
template <int W>
class SocFsimEnvironmentT : public FsimEnvironmentT<W> {
 public:
  SocFsimEnvironmentT(const Soc& soc, const FlashImage& flash, int run_cycles);

  void reset(PackedSimT<W>& sim) override;
  bool step(PackedSimT<W>& sim, int cycle) override;

 private:
  void drive_mission_inputs(PackedSimT<W>& sim, bool rstn_value);
  std::uint64_t mem_read(int lane, std::uint64_t addr) const;

  const Soc* soc_;
  const FlashImage* flash_;
  int run_cycles_;
  bool halt_seen_ = false;
  std::array<std::unordered_map<std::uint64_t, std::uint32_t>, W> ram_;
  // Cached port-cell groups for observed reads.
  std::vector<CellId> iaddr_cells_, baddr_cells_, bwdata_cells_;
  CellId bwr_cell_, brd_cell_, halted_cell_;
};

/// The scalar 64-lane environment every pre-width-parametric caller uses.
using SocFsimEnvironment = SocFsimEnvironmentT<64>;

/// Per-lane observed read of a port-cell bus (applies PO-pin injections).
template <int W>
std::array<std::uint64_t, W> read_observed_bus_lanes(
    const PackedSimT<W>& sim, const std::vector<CellId>& cells) {
  constexpr int K = W / 64;
  using Word = LaneWord<W>;
  std::array<std::uint64_t, static_cast<std::size_t>(W) * K> m{};
  for (std::size_t b = 0; b < cells.size(); ++b) {
    const Word v = sim.observed(cells[b]);
    for (int k = 0; k < K; ++k) m[b * K + k] = word_of(v, k);
  }
  transpose_bits<W>(m.data());
  std::array<std::uint64_t, W> out{};
  for (int l = 0; l < W; ++l) out[l] = m[static_cast<std::size_t>(l) * K];
  return out;
}

}  // namespace olfui
