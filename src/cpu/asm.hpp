// olfui/cpu: textual assembler for MiniRISC32.
//
// The Program builder is convenient from C++; SBST engineers write .s
// files. This assembler accepts the obvious syntax:
//
//     .org 0x78000          ; base address (before any instruction)
//   start:
//     li   r7, 0x40000000   ; pseudo-instruction (expands to lui/ori)
//     addi r1, r0, 5
//   loop:
//     addi r1, r1, -1
//     bne  r1, r0, loop
//     sw   r1, 0(r7)
//     lw   r2, 4(r7)
//     halt
//     .word 0xDEADBEEF      ; literal data word
//
// Comments start with ';', '#' or '//'. Registers are r0..r7. Immediates
// are decimal or 0x hex, optionally negative. Branch/jal targets are
// labels. Errors carry 1-based line numbers.
#pragma once

#include <stdexcept>
#include <string>

#include "cpu/isa.hpp"

namespace olfui {

class AsmError : public std::runtime_error {
 public:
  AsmError(const std::string& msg, int line)
      : std::runtime_error("asm:" + std::to_string(line) + ": " + msg),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Assembles `source` into a Program with all labels resolved.
/// `default_base` applies when the source has no .org directive.
Program assemble(const std::string& source, std::uint32_t default_base = 0);

}  // namespace olfui
