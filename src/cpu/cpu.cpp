#include "cpu/cpu.hpp"

#include <cassert>

#include "cpu/isa.hpp"
#include "util/strings.hpp"

namespace olfui {

namespace {
constexpr int kWidth = 32;
constexpr int kNumGprs = 8;
}  // namespace

CpuHandles generate_cpu(Netlist& nl, const CpuConfig& cfg) {
  assert(cfg.btb_entries >= 1 && (cfg.btb_entries & (cfg.btb_entries - 1)) == 0);
  WordOps w(nl, "core");
  CpuHandles h;

  // ---- ports -------------------------------------------------------------
  h.rstn = nl.add_input("rstn");
  h.instr_in.resize(kWidth);
  h.rdata_in.resize(kWidth);
  for (int i = 0; i < kWidth; ++i) {
    h.instr_in[i] = nl.add_input(format("instr_i%d", i));
    h.rdata_in[i] = nl.add_input(format("rdata_i%d", i));
  }
  const NetId rst = w.not_(h.rstn, "rst");

  // ---- architected state ---------------------------------------------------
  h.pc = w.reg_declare(kWidth, "pc");
  w.tag_reg(h.pc, "addr:code");
  h.ir = w.reg_declare(kWidth, "ir");
  h.ir_pc = w.reg_declare(kWidth, "ir_pc");
  w.tag_reg(h.ir_pc, "addr:code");
  RegWord ir_valid = w.reg_declare(1, "ir_valid", h.rstn);
  RegWord halt = w.reg_declare(1, "halt", h.rstn);
  RegWord mem_wait = w.reg_declare(1, "mem_wait", h.rstn);
  for (int r = 0; r < kNumGprs; ++r)
    h.gprs.push_back(w.reg_declare(kWidth, format("rf/r%d", r)));
  h.bus_addr_reg = w.reg_declare(kWidth, "bus/baddr");
  w.tag_reg(h.bus_addr_reg, "addr:data");
  RegWord bwdata = w.reg_declare(kWidth, "bus/bwdata");
  RegWord bwr = w.reg_declare(1, "bus/bwr", h.rstn);
  RegWord brd = w.reg_declare(1, "bus/brd", h.rstn);
  const int ptr_bits = cfg.btb_entries > 1 ? [&] {
    int b = 0;
    while ((1 << b) < cfg.btb_entries) ++b;
    return b;
  }() : 1;
  RegWord btb_ptr = w.reg_declare(ptr_bits, "btb/ptr", h.rstn);
  for (int e = 0; e < cfg.btb_entries; ++e) {
    BtbEntryHandles ent;
    ent.valid = w.reg_declare(1, format("btb/v%d", e), h.rstn);
    ent.tag = w.reg_declare(kWidth, format("btb/tag%d", e));
    w.tag_reg(ent.tag, "addr:code");
    ent.target = w.reg_declare(kWidth, format("btb/tgt%d", e));
    w.tag_reg(ent.target, "addr:code");
    h.btb.push_back(std::move(ent));
  }

  // ---- IF stage ---------------------------------------------------------
  // PC+4 incrementer (address manipulation module #1).
  const Bus pc4 = w.add_word(h.pc.q, w.constant(4, kWidth), w.lit(false),
                             "if/pc4").sum;
  // BTB lookup: hit when a valid entry's tag matches the fetch PC.
  std::vector<NetId> hits;
  Bus btb_tgt = w.constant(0, kWidth);
  for (int e = 0; e < cfg.btb_entries; ++e) {
    const NetId teq = w.eq_word(h.btb[e].tag.q, h.pc.q, format("btb/eq%d", e));
    hits.push_back(w.and2(teq, h.btb[e].valid.q[0], format("btb/hit%d", e)));
  }
  const NetId btb_hit = w.reduce_or(hits, "btb/hit_any");
  {
    std::vector<Bus> tgts;
    for (int e = 0; e < cfg.btb_entries; ++e) tgts.push_back(h.btb[e].target.q);
    Bus hit_bus = hits;
    btb_tgt = w.onehot_mux(hit_bus, tgts, "btb/tgt_mux");
  }
  const Bus pnpc = w.mux_word(btb_hit, pc4, btb_tgt, "if/pnpc");

  // ---- EX stage: decode ---------------------------------------------------
  const Bus& irq = h.ir.q;
  const Bus op_bus(irq.begin() + 27, irq.end());
  const Bus rd_bus(irq.begin() + 24, irq.begin() + 27);
  const Bus rs1_bus(irq.begin() + 21, irq.begin() + 24);
  const Bus rs2_bus(irq.begin() + 18, irq.begin() + 21);
  const Bus imm16(irq.begin(), irq.begin() + 16);

  const auto is_op = [&](Opcode o) {
    return w.eq_const(op_bus, static_cast<std::uint64_t>(o),
                      format("dec/is_%s", std::string(opcode_name(o)).c_str()));
  };
  const NetId is_add = is_op(Opcode::kAdd), is_sub = is_op(Opcode::kSub);
  const NetId is_and = is_op(Opcode::kAnd), is_or = is_op(Opcode::kOr);
  const NetId is_xor = is_op(Opcode::kXor), is_sltu = is_op(Opcode::kSltu);
  const NetId is_sll = is_op(Opcode::kSll), is_srl = is_op(Opcode::kSrl);
  const NetId is_addi = is_op(Opcode::kAddi), is_andi = is_op(Opcode::kAndi);
  const NetId is_ori = is_op(Opcode::kOri), is_xori = is_op(Opcode::kXori);
  const NetId is_lui = is_op(Opcode::kLui), is_lw = is_op(Opcode::kLw);
  const NetId is_sw = is_op(Opcode::kSw), is_beq = is_op(Opcode::kBeq);
  const NetId is_bne = is_op(Opcode::kBne), is_jal = is_op(Opcode::kJal);
  const NetId is_jr = is_op(Opcode::kJr), is_halt_op = is_op(Opcode::kHalt);
  const NetId is_mul = cfg.with_multiplier ? is_op(Opcode::kMul) : kInvalidId;

  // Gating: an instruction has side effects only when IR is valid, the
  // core is not halted, and no load is completing this cycle.
  const NetId not_halt = w.not_(halt.q[0], "ctl/not_halt");
  const NetId not_wait = w.not_(mem_wait.q[0], "ctl/not_wait");
  const NetId exec1 =
      w.reduce_and({ir_valid.q[0], not_halt, not_wait}, "ctl/exec1");

  // ---- register file read ---------------------------------------------------
  std::vector<Bus> gpr_q;
  for (int r = 0; r < kNumGprs; ++r) gpr_q.push_back(h.gprs[r].q);
  const Bus rs1_onehot = w.decode(rs1_bus, "rf/rs1_dec");
  const Bus rs2_onehot = w.decode(rs2_bus, "rf/rs2_dec");
  const Bus rs1_val = w.onehot_mux(rs1_onehot, gpr_q, "rf/rs1_val");
  const Bus rs2_val = w.onehot_mux(rs2_onehot, gpr_q, "rf/rs2_val");

  // ---- immediates ------------------------------------------------------------
  Bus imm_sx(kWidth), imm_zx(kWidth), lui_val(kWidth);
  for (int i = 0; i < kWidth; ++i) {
    imm_sx[i] = i < 16 ? imm16[i] : imm16[15];
    imm_zx[i] = i < 16 ? imm16[i] : w.lit(false);
    lui_val[i] = i < 16 ? w.lit(false) : imm16[i - 16];
  }
  const NetId use_zx = w.reduce_or({is_andi, is_ori, is_xori}, "dec/use_zx");
  const Bus imm_ext = w.mux_word(use_zx, imm_sx, imm_zx, "dec/imm_ext");

  // ---- ALU -------------------------------------------------------------------
  const NetId is_imm_alu =
      w.reduce_or({is_addi, is_andi, is_ori, is_xori}, "dec/is_imm_alu");
  const Bus alu_b = w.mux_word(is_imm_alu, rs2_val, imm_ext, "alu/b");
  const NetId sub_sel = w.or2(is_sub, is_sltu, "alu/sub_sel");
  Bus b2(kWidth);
  for (int i = 0; i < kWidth; ++i)
    b2[i] = w.xor2(alu_b[i], sub_sel, format("alu/b2_%d", i));
  const WordOps::AddResult addr_res = w.add_word(rs1_val, b2, sub_sel, "alu/adder");
  const Bus& sum = addr_res.sum;
  const Bus and_val = w.and_word(rs1_val, alu_b, "alu/and");
  const Bus or_val = w.or_word(rs1_val, alu_b, "alu/or");
  const Bus xor_val = w.xor_word(rs1_val, alu_b, "alu/xor");
  Bus sltu_val = w.constant(0, kWidth);
  sltu_val[0] = w.not_(addr_res.carry_out, "alu/sltu0");
  const Bus amount(rs2_val.begin(), rs2_val.begin() + 5);
  const Bus sll_val = w.shift_word(rs1_val, amount, /*left=*/true, "alu/sll");
  const Bus srl_val = w.shift_word(rs1_val, amount, /*left=*/false, "alu/srl");

  // ---- address generation (the §3.3 manipulation targets) -----------------
  // Link address = IR_PC + 4 (address manipulation module #2).
  const Bus link = w.add_word(h.ir_pc.q, w.constant(4, kWidth), w.lit(false),
                              "agu/link").sum;
  // Branch target = link + (sx(imm) << 2)  (module #3: "the adder used in
  // a branch address calculation").
  Bus br_off(kWidth);
  for (int i = 0; i < kWidth; ++i)
    br_off[i] = i < 2 ? w.lit(false) : imm_sx[i - 2];
  const Bus br_tgt = w.add_word(link, br_off, w.lit(false), "agu/brtgt").sum;
  // Load/store address (module #4).
  const Bus agu = w.add_word(rs1_val, imm_sx, w.lit(false), "agu/mem").sum;

  // ---- result selection -----------------------------------------------------
  const NetId sel_and = w.or2(is_and, is_andi, "res/sel_and");
  const NetId sel_or = w.or2(is_or, is_ori, "res/sel_or");
  const NetId sel_xor = w.or2(is_xor, is_xori, "res/sel_xor");
  Bus result = sum;
  result = w.mux_word(sel_and, result, and_val, "res/m_and");
  result = w.mux_word(sel_or, result, or_val, "res/m_or");
  result = w.mux_word(sel_xor, result, xor_val, "res/m_xor");
  result = w.mux_word(is_sltu, result, sltu_val, "res/m_sltu");
  result = w.mux_word(is_sll, result, sll_val, "res/m_sll");
  result = w.mux_word(is_srl, result, srl_val, "res/m_srl");
  result = w.mux_word(is_lui, result, lui_val, "res/m_lui");
  result = w.mux_word(is_jal, result, link, "res/m_jal");
  if (cfg.with_multiplier) {
    const Bus mul_val = w.mul_word(rs1_val, rs2_val, "mul/p");
    result = w.mux_word(is_mul, result, mul_val, "res/m_mul");
  }

  // ---- control flow ----------------------------------------------------------
  const NetId rs_eq = w.eq_word(rs1_val, rs2_val, "ctl/rs_eq");
  const NetId rs_ne = w.not_(rs_eq, "ctl/rs_ne");
  const NetId t_beq = w.and2(is_beq, rs_eq, "ctl/t_beq");
  const NetId t_bne = w.and2(is_bne, rs_ne, "ctl/t_bne");
  const NetId taken = w.reduce_or({t_beq, t_bne, is_jal, is_jr}, "ctl/taken");
  const NetId taken_eff = w.and2(taken, exec1, "ctl/taken_eff");
  const Bus actual_target = w.mux_word(is_jr, br_tgt, rs1_val, "ctl/atgt");
  const Bus correct_next =
      w.mux_word(taken_eff, link, actual_target, "ctl/cnext");
  const NetId next_ok = w.eq_word(h.pc.q, correct_next, "ctl/next_ok");
  const NetId next_bad = w.not_(next_ok, "ctl/next_bad");
  const NetId redirect = w.and2(exec1, next_bad, "ctl/redirect");

  const NetId lw_issue = w.and2(exec1, is_lw, "ctl/lw_issue");
  const NetId stall = lw_issue;

  // ---- next-state: PC / IR / flags -------------------------------------------
  const Bus pc_hold_or_pred = w.mux_word(stall, pnpc, h.pc.q, "ctl/pc_hp");
  const Bus pc_next = w.mux_word(redirect, pc_hold_or_pred, correct_next,
                                 "ctl/pc_next");
  const Bus pc_run = w.mux_word(halt.q[0], pc_next, h.pc.q, "ctl/pc_run");
  const Bus pc_d = w.mux_word(
      rst, pc_run, w.constant(cfg.reset_vector, kWidth), "ctl/pc_d");
  w.reg_connect(h.pc, pc_d);

  const NetId hold_ir = w.or2(stall, halt.q[0], "ctl/hold_ir");
  w.reg_connect(h.ir, w.mux_word(hold_ir, h.instr_in, h.ir.q, "ctl/ir_d"));
  w.reg_connect(h.ir_pc, w.mux_word(hold_ir, h.pc.q, h.ir_pc.q, "ctl/irpc_d"));
  const NetId not_redirect = w.not_(redirect, "ctl/not_redirect");
  Bus ir_valid_d{w.mux(hold_ir, not_redirect, ir_valid.q[0], "ctl/irv_d")};
  w.reg_connect(ir_valid, ir_valid_d);

  const NetId do_halt = w.and2(exec1, is_halt_op, "ctl/do_halt");
  Bus halt_d{w.or2(halt.q[0], do_halt, "ctl/halt_d")};
  w.reg_connect(halt, halt_d);
  Bus mem_wait_d{w.buf(lw_issue, "ctl/mem_wait_d")};
  w.reg_connect(mem_wait, mem_wait_d);

  // ---- bus unit ---------------------------------------------------------------
  const NetId sw_issue = w.and2(exec1, is_sw, "bus/sw_issue");
  const NetId mem_op = w.or2(lw_issue, sw_issue, "bus/mem_op");
  w.reg_connect(h.bus_addr_reg,
                w.mux_word(mem_op, h.bus_addr_reg.q, agu, "bus/baddr_d"));
  w.reg_connect(bwdata, w.mux_word(sw_issue, bwdata.q, rs2_val, "bus/bwdata_d"));
  Bus bwr_d{w.buf(sw_issue, "bus/bwr_d")};
  w.reg_connect(bwr, bwr_d);
  Bus brd_d{w.buf(lw_issue, "bus/brd_d")};
  w.reg_connect(brd, brd_d);

  // ---- register file write -----------------------------------------------------
  std::vector<NetId> wr_ops = {is_add, is_sub,  is_and, is_or,  is_xor,
                               is_sltu, is_sll, is_srl, is_addi, is_andi,
                               is_ori, is_xori, is_lui, is_jal};
  if (cfg.with_multiplier) wr_ops.push_back(is_mul);
  const NetId writes_rd = w.reduce_or(std::move(wr_ops), "rf/writes_rd");
  const NetId wen_ex = w.and2(exec1, writes_rd, "rf/wen_ex");
  const NetId wen = w.or2(wen_ex, mem_wait.q[0], "rf/wen");
  const Bus wdata = w.mux_word(mem_wait.q[0], result, h.rdata_in, "rf/wdata");
  const Bus wdec = w.decode(rd_bus, "rf/wdec");
  for (int r = 0; r < kNumGprs; ++r) {
    const NetId we = w.and2(wen, wdec[r], format("rf/we%d", r));
    w.reg_connect(h.gprs[r],
                  w.mux_word(we, h.gprs[r].q, wdata, format("rf/wd%d", r)));
  }

  // ---- BTB update ---------------------------------------------------------------
  const NetId btb_we = w.and2(redirect, taken_eff, "btb/we");
  const Bus wsel = w.decode(btb_ptr.q, "btb/wsel");
  for (int e = 0; e < cfg.btb_entries; ++e) {
    const NetId we = w.and2(btb_we, wsel[e], format("btb/we%d", e));
    Bus valid_d{w.or2(h.btb[e].valid.q[0], we, format("btb/vd%d", e))};
    w.reg_connect(h.btb[e].valid, valid_d);
    w.reg_connect(h.btb[e].tag,
                  w.mux_word(we, h.btb[e].tag.q, h.ir_pc.q, format("btb/tagd%d", e)));
    w.reg_connect(h.btb[e].target,
                  w.mux_word(we, h.btb[e].target.q, actual_target,
                             format("btb/tgtd%d", e)));
  }
  const Bus ptr_inc =
      w.add_word(btb_ptr.q, w.constant(1, ptr_bits), w.lit(false), "btb/ptr_inc").sum;
  w.reg_connect(btb_ptr, w.mux_word(btb_we, btb_ptr.q, ptr_inc, "btb/ptr_d"));

  // ---- system-bus output ports ---------------------------------------------------
  h.iaddr = h.pc.q;
  h.baddr = h.bus_addr_reg.q;
  h.bwdata = bwdata.q;
  h.bwr = bwr.q[0];
  h.brd = brd.q[0];
  h.halted = halt.q[0];
  for (int i = 0; i < kWidth; ++i)
    h.bus_output_cells.push_back(nl.add_output(format("iaddr_o%d", i), h.iaddr[i]));
  for (int i = 0; i < kWidth; ++i)
    h.bus_output_cells.push_back(nl.add_output(format("baddr_o%d", i), h.baddr[i]));
  for (int i = 0; i < kWidth; ++i)
    h.bus_output_cells.push_back(nl.add_output(format("bwdata_o%d", i), h.bwdata[i]));
  h.bus_output_cells.push_back(nl.add_output("bwr_o", h.bwr));
  h.bus_output_cells.push_back(nl.add_output("brd_o", h.brd));
  h.bus_output_cells.push_back(nl.add_output("halted_o", h.halted));

  return h;
}

}  // namespace olfui
