#include "cpu/isa.hpp"

#include <cassert>
#include <stdexcept>

#include "util/strings.hpp"

namespace olfui {

std::string_view opcode_name(Opcode op) {
  constexpr std::string_view kNames[kNumOpcodes] = {
      "nop", "add",  "sub",  "and", "or",  "xor", "sltu", "sll", "srl", "addi",
      "andi", "ori", "xori", "lui", "lw",  "sw",  "beq",  "bne", "jal", "jr",
      "halt", "mul"};
  const int i = static_cast<int>(op);
  return i < kNumOpcodes ? kNames[i] : "???";
}

std::uint32_t encode(const Instr& i) {
  assert(i.rd >= 0 && i.rd < 8 && i.rs1 >= 0 && i.rs1 < 8 && i.rs2 >= 0 &&
         i.rs2 < 8);
  return (static_cast<std::uint32_t>(i.op) << 27) |
         (static_cast<std::uint32_t>(i.rd) << 24) |
         (static_cast<std::uint32_t>(i.rs1) << 21) |
         (static_cast<std::uint32_t>(i.rs2) << 18) |
         (static_cast<std::uint32_t>(i.imm) & 0xFFFFu);
}

Instr decode(std::uint32_t word) {
  Instr i;
  i.op = static_cast<Opcode>((word >> 27) & 0x1F);
  i.rd = static_cast<int>((word >> 24) & 7);
  i.rs1 = static_cast<int>((word >> 21) & 7);
  i.rs2 = static_cast<int>((word >> 18) & 7);
  i.imm = static_cast<std::int32_t>(word & 0xFFFFu);
  return i;
}

std::string disassemble(std::uint32_t word) {
  const Instr i = decode(word);
  switch (i.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
      return std::string(opcode_name(i.op));
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kSltu:
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kMul:
      return format("%s r%d, r%d, r%d", std::string(opcode_name(i.op)).c_str(),
                    i.rd, i.rs1, i.rs2);
    case Opcode::kAddi:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
      return format("%s r%d, r%d, %d", std::string(opcode_name(i.op)).c_str(),
                    i.rd, i.rs1, i.imm);
    case Opcode::kLui:
      return format("lui r%d, 0x%x", i.rd, i.imm);
    case Opcode::kLw:
      return format("lw r%d, %d(r%d)", i.rd, i.imm, i.rs1);
    case Opcode::kSw:
      return format("sw r%d, %d(r%d)", i.rs2, i.imm, i.rs1);
    case Opcode::kBeq:
    case Opcode::kBne:
      return format("%s r%d, r%d, %d", std::string(opcode_name(i.op)).c_str(),
                    i.rs1, i.rs2, static_cast<std::int16_t>(i.imm));
    case Opcode::kJal:
      return format("jal r%d, %d", i.rd, static_cast<std::int16_t>(i.imm));
    case Opcode::kJr:
      return format("jr r%d", i.rs1);
  }
  return "???";
}

void Program::li(int rd, std::uint32_t value) {
  // LUI first in all cases: it overwrites rd without reading it, so the
  // sequence also initializes registers whose power-on state is unknown.
  lui(rd, static_cast<std::int32_t>(value >> 16));
  if ((value & 0xFFFFu) != 0)
    ori(rd, rd, static_cast<std::int32_t>(value & 0xFFFFu));
}

void Program::label(const std::string& name) {
  if (!labels_.emplace(name, pc()).second)
    throw std::runtime_error("duplicate label: " + name);
}

void Program::branch_to(Opcode op, int rd, int rs1, int rs2,
                        const std::string& label) {
  fixups_.push_back({words_.size(), label});
  emit({op, rd, rs1, rs2, 0});
}

void Program::beq(int rs1, int rs2, const std::string& label) {
  branch_to(Opcode::kBeq, 0, rs1, rs2, label);
}
void Program::bne(int rs1, int rs2, const std::string& label) {
  branch_to(Opcode::kBne, 0, rs1, rs2, label);
}
void Program::jal(int rd, const std::string& label) {
  branch_to(Opcode::kJal, rd, 0, 0, label);
}

const std::vector<std::uint32_t>& Program::words() {
  for (const Fixup& fx : fixups_) {
    const auto it = labels_.find(fx.label);
    if (it == labels_.end())
      throw std::runtime_error("undefined label: " + fx.label);
    const std::uint32_t insn_pc = base_ + static_cast<std::uint32_t>(fx.index) * 4;
    const std::int64_t delta =
        (static_cast<std::int64_t>(it->second) - (insn_pc + 4)) / 4;
    if (delta < -32768 || delta > 32767)
      throw std::runtime_error("branch offset out of range to " + fx.label);
    words_[fx.index] =
        (words_[fx.index] & ~0xFFFFu) | (static_cast<std::uint32_t>(delta) & 0xFFFFu);
  }
  fixups_.clear();
  return words_;
}

}  // namespace olfui
