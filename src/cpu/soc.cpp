#include "cpu/soc.hpp"

#include <cassert>

#include "util/bits.hpp"
#include "util/strings.hpp"

namespace olfui {

std::unique_ptr<Soc> build_soc(const SocConfig& cfg) {
  auto soc = std::make_unique<Soc>();
  soc->config = cfg;
  soc->cpu = generate_cpu(soc->netlist, cfg.cpu);

  if (cfg.with_debug) {
    // The Nexus-style unit exposes half the register file for write access
    // and both observation buses (GPR window + PC/IR), comparable in area
    // ratio to production debug IP on a core of this size.
    DebugSpec spec;
    for (int r = 0; r < 4; ++r)
      spec.writable_regs.push_back(&soc->cpu.gprs[static_cast<std::size_t>(r)]);
    for (int r = 0; r < 4; ++r)
      spec.bus_a_words.push_back(soc->cpu.gprs[static_cast<std::size_t>(r)].q);
    spec.bus_b_words.push_back(soc->cpu.pc.q);
    spec.bus_b_words.push_back(soc->cpu.ir.q);
    spec.hold_reg = &soc->cpu.pc;
    soc->debug = insert_debug(soc->netlist, spec);
  }
  if (cfg.with_scan) {
    soc->scan = insert_scan(soc->netlist, cfg.scan);
  }
  soc->map.add_range("flash", cfg.flash_base, cfg.flash_size);
  soc->map.add_range("ram", cfg.ram_base, cfg.ram_size);
  return soc;
}

void FlashImage::load(std::uint32_t addr, const std::vector<std::uint32_t>& words) {
  for (std::size_t i = 0; i < words.size(); ++i)
    words_[addr + 4 * i] = words[i];
}

std::uint32_t FlashImage::read(std::uint64_t addr) const {
  const auto it = words_.find(addr & ~3ULL);
  return it == words_.end() ? 0u : it->second;
}

SocSimulator::SocSimulator(const Soc& soc)
    : soc_(&soc),
      sim_(soc.netlist),
      flash_(soc.config.flash_base, soc.config.flash_size) {}

void SocSimulator::load_program(Program& p) {
  flash_.load(p.base(), p.words());
}

void SocSimulator::drive_mission_inputs(bool rstn_value) {
  sim_.set_input(soc_->cpu.rstn, rstn_value);
  if (soc_->config.with_scan) {
    sim_.set_input(soc_->scan.se_net, soc_->scan.se_functional_value);
    for (const ScanChain& c : soc_->scan.chains)
      sim_.set_input(c.scan_in_net, false);
  }
  if (soc_->config.with_debug) {
    for (std::size_t i = 0; i < soc_->debug.control_inputs.size(); ++i)
      sim_.set_input(soc_->debug.control_inputs[i],
                     soc_->debug.control_values[i]);
  }
}

int SocSimulator::run(int max_cycles, ToggleRecorder* recorder) {
  sim_.power_on();
  // Reset sequence: two cycles with rstn low; data inputs quiet.
  drive_mission_inputs(false);
  sim_.set_input_word(soc_->cpu.instr_in, 0);
  sim_.set_input_word(soc_->cpu.rdata_in, 0);
  sim_.eval();
  sim_.clock();
  sim_.clock();

  int cycle = 0;
  for (; cycle < max_cycles; ++cycle) {
    drive_mission_inputs(true);
    sim_.eval();
    // Serve the instruction fetch (combinational flash read).
    const std::uint64_t iaddr = sim_.read_word(soc_->cpu.iaddr);
    sim_.set_input_word(soc_->cpu.instr_in, flash_.read(iaddr));
    sim_.eval();
    // Bus transactions (registered address/strobes, data this cycle).
    const std::uint64_t baddr = sim_.read_word(soc_->cpu.baddr);
    if (sim_.value(soc_->cpu.bwr) == Logic::V1) {
      if (soc_->map.contains(baddr))
        ram_[baddr & ~3ULL] =
            static_cast<std::uint32_t>(sim_.read_word(soc_->cpu.bwdata));
    }
    std::uint64_t rdata = 0;
    if (sim_.value(soc_->cpu.brd) == Logic::V1) {
      const auto it = ram_.find(baddr & ~3ULL);
      rdata = it != ram_.end() ? it->second : flash_.read(baddr);
    }
    sim_.set_input_word(soc_->cpu.rdata_in, rdata);
    sim_.eval();
    if (recorder) recorder->sample(sim_);
    if (sim_.value(soc_->cpu.halted) == Logic::V1) break;
    sim_.clock();
  }
  return cycle;
}

bool SocSimulator::halted() const {
  return sim_.value(soc_->cpu.halted) == Logic::V1;
}

std::uint32_t SocSimulator::gpr(int r) const {
  return static_cast<std::uint32_t>(sim_.read_word(soc_->cpu.gprs[r].q));
}

std::uint32_t SocSimulator::pc() const {
  return static_cast<std::uint32_t>(sim_.read_word(soc_->cpu.pc.q));
}

std::uint32_t SocSimulator::ram_word(std::uint64_t addr) const {
  const auto it = ram_.find(addr & ~3ULL);
  return it == ram_.end() ? 0u : it->second;
}

template <int W>
SocFsimEnvironmentT<W>::SocFsimEnvironmentT(const Soc& soc,
                                            const FlashImage& flash,
                                            int run_cycles)
    : soc_(&soc), flash_(&flash), run_cycles_(run_cycles) {
  const Netlist& nl = soc.netlist;
  for (int i = 0; i < 32; ++i) {
    iaddr_cells_.push_back(nl.find_output(format("iaddr_o%d", i)));
    baddr_cells_.push_back(nl.find_output(format("baddr_o%d", i)));
    bwdata_cells_.push_back(nl.find_output(format("bwdata_o%d", i)));
  }
  bwr_cell_ = nl.find_output("bwr_o");
  brd_cell_ = nl.find_output("brd_o");
  halted_cell_ = nl.find_output("halted_o");
}

template <int W>
void SocFsimEnvironmentT<W>::drive_mission_inputs(PackedSimT<W>& sim,
                                                  bool rstn_value) {
  sim.set_input_all(soc_->cpu.rstn, rstn_value);
  if (soc_->config.with_scan) {
    sim.set_input_all(soc_->scan.se_net, soc_->scan.se_functional_value);
    for (const ScanChain& c : soc_->scan.chains)
      sim.set_input_all(c.scan_in_net, false);
  }
  if (soc_->config.with_debug) {
    for (std::size_t i = 0; i < soc_->debug.control_inputs.size(); ++i)
      sim.set_input_all(soc_->debug.control_inputs[i],
                        soc_->debug.control_values[i]);
  }
}

template <int W>
std::uint64_t SocFsimEnvironmentT<W>::mem_read(int lane,
                                               std::uint64_t addr) const {
  const auto it = ram_[static_cast<std::size_t>(lane)].find(addr & ~3ULL);
  if (it != ram_[static_cast<std::size_t>(lane)].end()) return it->second;
  return flash_->read(addr);
}

template <int W>
void SocFsimEnvironmentT<W>::reset(PackedSimT<W>& sim) {
  for (auto& r : ram_) r.clear();
  halt_seen_ = false;
  drive_mission_inputs(sim, false);
  sim.set_input_word(soc_->cpu.instr_in, 0);
  sim.set_input_word(soc_->cpu.rdata_in, 0);
  sim.eval();
  sim.clock();
  sim.clock();
}

template <int W>
bool SocFsimEnvironmentT<W>::step(PackedSimT<W>& sim, int cycle) {
  using Word = LaneWord<W>;
  if (cycle >= run_cycles_ || halt_seen_) return false;
  drive_mission_inputs(sim, true);
  sim.eval();
  // Per-lane instruction fetch: a faulty machine that wanders to a wrong
  // address fetches whatever the flash holds there (NOP outside).
  const auto iaddr = read_observed_bus_lanes(sim, iaddr_cells_);
  std::array<std::uint64_t, W> instr{};
  for (int l = 0; l < W; ++l) instr[l] = flash_->read(iaddr[l]);
  drive_bus_lanes(sim, soc_->cpu.instr_in, instr);
  sim.eval();
  // Bus transactions, per lane.
  const auto baddr = read_observed_bus_lanes(sim, baddr_cells_);
  const auto bwdata = read_observed_bus_lanes(sim, bwdata_cells_);
  const Word wr = sim.observed(bwr_cell_);
  const Word rd = sim.observed(brd_cell_);
  std::array<std::uint64_t, W> rdata{};
  for (int l = 0; l < W; ++l) {
    if (lane_test(wr, l)) {
      if (soc_->map.contains(baddr[l]))
        ram_[static_cast<std::size_t>(l)][baddr[l] & ~3ULL] =
            static_cast<std::uint32_t>(bwdata[l]);
    }
    if (lane_test(rd, l)) rdata[l] = mem_read(l, baddr[l]);
  }
  drive_bus_lanes(sim, soc_->cpu.rdata_in, rdata);
  sim.eval();
  // Let the comparison see the halting cycle, then stop on the next one.
  if (lane_test(sim.observed(halted_cell_), 0)) halt_seen_ = true;
  return true;
}

template class SocFsimEnvironmentT<64>;
#if OLFUI_HAS_WIDE_LANES
template class SocFsimEnvironmentT<128>;
template class SocFsimEnvironmentT<256>;
#endif

}  // namespace olfui
