// olfui/cpu: the MiniRISC32 instruction set.
//
// MiniRISC32 is the 32-bit embedded core used as the reproduction's
// equivalent of the case study's e200z0-class processor: 32-bit address /
// data parallelism, eight general-purpose registers, a two-stage pipeline
// with a branch target buffer, a load/store bus unit, plus scan and debug
// circuitry added by the corresponding insertion passes.
//
// Encoding (32 bits):
//   [31:27] opcode   [26:24] rd   [23:21] rs1   [20:18] rs2   [15:0] imm16
//
// Branch/JAL offsets are in words, relative to the *following* instruction
// (target = pc + 4 + imm*4).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace olfui {

enum class Opcode : std::uint8_t {
  kNop = 0,
  kAdd = 1,    // rd = rs1 + rs2
  kSub = 2,    // rd = rs1 - rs2
  kAnd = 3,
  kOr = 4,
  kXor = 5,
  kSltu = 6,   // rd = (rs1 < rs2) unsigned
  kSll = 7,    // rd = rs1 << rs2[4:0]
  kSrl = 8,    // rd = rs1 >> rs2[4:0]
  kAddi = 9,   // rd = rs1 + sx(imm)
  kAndi = 10,  // rd = rs1 & zx(imm)
  kOri = 11,
  kXori = 12,
  kLui = 13,   // rd = imm << 16
  kLw = 14,    // rd = mem[rs1 + sx(imm)]
  kSw = 15,    // mem[rs1 + sx(imm)] = rs2
  kBeq = 16,   // if rs1 == rs2: pc += 4 + sx(imm)*4
  kBne = 17,
  kJal = 18,   // rd = pc + 4; pc += 4 + sx(imm)*4
  kJr = 19,    // pc = rs1
  kHalt = 20,
  kMul = 21,   // rd = (rs1 * rs2) low 32 bits
};
inline constexpr int kNumOpcodes = 22;

std::string_view opcode_name(Opcode op);

struct Instr {
  Opcode op = Opcode::kNop;
  int rd = 0;
  int rs1 = 0;
  int rs2 = 0;
  std::int32_t imm = 0;  // 16-bit field, sign interpretation per opcode
};

std::uint32_t encode(const Instr& i);
Instr decode(std::uint32_t word);
std::string disassemble(std::uint32_t word);

/// Convenience program builder with labels and branch fixups.
///
///   Program p(0x78000);
///   p.addi(1, 0, 5);
///   p.label("loop");
///   p.addi(1, 1, -1);
///   p.bne(1, 0, "loop");
///   p.halt();
class Program {
 public:
  explicit Program(std::uint32_t base) : base_(base) {}

  std::uint32_t base() const { return base_; }
  std::uint32_t pc() const {
    return base_ + static_cast<std::uint32_t>(words_.size()) * 4;
  }
  std::size_t size() const { return words_.size(); }

  void emit(const Instr& i) { words_.push_back(encode(i)); }
  void raw(std::uint32_t w) { words_.push_back(w); }

  void nop() { emit({Opcode::kNop}); }
  void add(int rd, int rs1, int rs2) { emit({Opcode::kAdd, rd, rs1, rs2}); }
  void sub(int rd, int rs1, int rs2) { emit({Opcode::kSub, rd, rs1, rs2}); }
  void and_(int rd, int rs1, int rs2) { emit({Opcode::kAnd, rd, rs1, rs2}); }
  void or_(int rd, int rs1, int rs2) { emit({Opcode::kOr, rd, rs1, rs2}); }
  void xor_(int rd, int rs1, int rs2) { emit({Opcode::kXor, rd, rs1, rs2}); }
  void sltu(int rd, int rs1, int rs2) { emit({Opcode::kSltu, rd, rs1, rs2}); }
  void sll(int rd, int rs1, int rs2) { emit({Opcode::kSll, rd, rs1, rs2}); }
  void srl(int rd, int rs1, int rs2) { emit({Opcode::kSrl, rd, rs1, rs2}); }
  void mul(int rd, int rs1, int rs2) { emit({Opcode::kMul, rd, rs1, rs2}); }
  void addi(int rd, int rs1, std::int32_t imm) { emit({Opcode::kAddi, rd, rs1, 0, imm}); }
  void andi(int rd, int rs1, std::int32_t imm) { emit({Opcode::kAndi, rd, rs1, 0, imm}); }
  void ori(int rd, int rs1, std::int32_t imm) { emit({Opcode::kOri, rd, rs1, 0, imm}); }
  void xori(int rd, int rs1, std::int32_t imm) { emit({Opcode::kXori, rd, rs1, 0, imm}); }
  void lui(int rd, std::int32_t imm) { emit({Opcode::kLui, rd, 0, 0, imm}); }
  void lw(int rd, int rs1, std::int32_t imm) { emit({Opcode::kLw, rd, rs1, 0, imm}); }
  void sw(int rs2, int rs1, std::int32_t imm) { emit({Opcode::kSw, 0, rs1, rs2, imm}); }
  void jr(int rs1) { emit({Opcode::kJr, 0, rs1, 0, 0}); }
  void halt() { emit({Opcode::kHalt}); }

  /// Loads a full 32-bit constant via LUI/ORI (2 instructions, or 1 when
  /// the value fits 16 bits).
  void li(int rd, std::uint32_t value);

  void label(const std::string& name);
  void beq(int rs1, int rs2, const std::string& label);
  void bne(int rs1, int rs2, const std::string& label);
  void jal(int rd, const std::string& label);

  /// Resolves pending label references; throws on unknown labels.
  /// Must be called before words().
  const std::vector<std::uint32_t>& words();

 private:
  void branch_to(Opcode op, int rd, int rs1, int rs2, const std::string& label);

  struct Fixup {
    std::size_t index;
    std::string label;
  };
  std::uint32_t base_;
  std::vector<std::uint32_t> words_;
  std::unordered_map<std::string, std::uint32_t> labels_;  // label -> address
  std::vector<Fixup> fixups_;
};

}  // namespace olfui
