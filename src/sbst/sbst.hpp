// olfui/sbst: the software-based self-test suite.
//
// The paper's case study measures coverage of "a software-based self-test
// library with high fault coverage capabilities" whose results are
// observed on the system bus. This module provides the equivalent for
// MiniRISC32: a suite of self-test programs (ALU arithmetic/logic,
// shifter, register-file march, branch/BTB exercisers, load/store walks),
// a functional runner that measures each program's cycle count and toggle
// activity, and the fault-simulation campaign that grades the suite
// against the stuck-at universe.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "cpu/isa.hpp"
#include "cpu/soc.hpp"
#include "fault/fault_list.hpp"
#include "fsim/fsim.hpp"
#include "sim/sim.hpp"

namespace olfui {

struct SbstProgram {
  std::string name;
  Program program;
};

/// Builds the full suite, each program based at the SoC reset vector.
std::vector<SbstProgram> build_sbst_suite(const SocConfig& cfg);

/// Functionally runs every program (good machine), returning per-program
/// cycle counts. If `recorder` is given it accumulates toggle activity
/// across the whole suite (the §4 signal-activity screening input).
std::vector<int> run_suite_functional(const Soc& soc,
                                      std::vector<SbstProgram>& suite,
                                      int max_cycles_per_program = 5000,
                                      ToggleRecorder* recorder = nullptr);

struct SbstCampaignResult {
  struct PerProgram {
    std::string name;
    int cycles = 0;
    std::size_t new_detections = 0;
  };
  std::vector<PerProgram> programs;
  std::size_t total_detected = 0;
  /// Full orchestrator result: per-class coverage, runtime stats, JSON-able.
  CampaignResult campaign;
};

/// Converts the suite into orchestrator tests: runs each program on the
/// good machine (cycle counts + the campaign's good-trace checkpoints) and
/// wraps the system-bus fault-simulation kernel in per-worker runners; all
/// runners share one PackedTopology of the SoC netlist. `soc` and
/// `universe` are captured by reference and must outlive every campaign
/// run over the returned tests. `margin` cycles past the good machine's
/// HALT let slow faulty lanes diverge on the halted pin. `event_driven`
/// selects the kernel (false = full-sweep oracle; results are
/// bit-identical either way — the switch exists for cross-checks and
/// benches). `fault_model` selects the grading kernel: kStuckAt wraps
/// run_batch, kTransition wraps the launch/capture run_tdf_batch over the
/// same fault ids (fault/tdf.hpp).
/// Margin default shared by build_sbst_campaign_tests' declaration and
/// run_sbst_campaign's explicit call, so the two paths cannot drift.
inline constexpr int kSbstCampaignMargin = 8;

std::vector<CampaignTest> build_sbst_campaign_tests(
    const Soc& soc, std::vector<SbstProgram>& suite,
    const FaultUniverse& universe, int margin = kSbstCampaignMargin,
    bool event_driven = true, FaultModel fault_model = FaultModel::kStuckAt);

/// Fault-simulates the suite with system-bus observability through the
/// campaign orchestrator, updating `fl` (already-detected and untestable
/// faults are skipped — fault dropping). `opts` controls threading,
/// sharding, dropping, and the fault model (opts.fault_model ==
/// kTransition grades the suite for TDF coverage; pair it with
/// classify_transition_faults-based pruning in `fl` for the pruned
/// figures).
SbstCampaignResult run_sbst_campaign(
    const Soc& soc, std::vector<SbstProgram>& suite, FaultList& fl,
    std::function<void(const std::string&, std::size_t, std::size_t)> progress = {},
    const CampaignOptions& opts = {});

}  // namespace olfui
