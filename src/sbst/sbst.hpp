// olfui/sbst: the software-based self-test suite.
//
// The paper's case study measures coverage of "a software-based self-test
// library with high fault coverage capabilities" whose results are
// observed on the system bus. This module provides the equivalent for
// MiniRISC32: a suite of self-test programs (ALU arithmetic/logic,
// shifter, register-file march, branch/BTB exercisers, load/store walks),
// a functional runner that measures each program's cycle count and toggle
// activity, and the fault-simulation campaign that grades the suite
// against the stuck-at universe.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "cpu/isa.hpp"
#include "cpu/soc.hpp"
#include "fault/fault_list.hpp"
#include "fsim/fsim.hpp"
#include "sim/sim.hpp"

namespace olfui {

struct SbstProgram {
  std::string name;
  Program program;
};

/// Builds the full suite, each program based at the SoC reset vector.
std::vector<SbstProgram> build_sbst_suite(const SocConfig& cfg);

/// Cycle budget for one program's good-machine functional run, shared by
/// run_suite_functional's default and the campaign-test builders so the
/// two paths cannot drift.
inline constexpr int kSbstFunctionalCycleCap = 5000;

/// Functionally runs every program (good machine), returning per-program
/// cycle counts. If `recorder` is given it accumulates toggle activity
/// across the whole suite (the §4 signal-activity screening input).
std::vector<int> run_suite_functional(
    const Soc& soc, std::vector<SbstProgram>& suite,
    int max_cycles_per_program = kSbstFunctionalCycleCap,
    ToggleRecorder* recorder = nullptr);

struct SbstCampaignResult {
  struct PerProgram {
    std::string name;
    int cycles = 0;
    std::size_t new_detections = 0;
  };
  std::vector<PerProgram> programs;
  std::size_t total_detected = 0;
  /// Full orchestrator result: per-class coverage, runtime stats, JSON-able.
  CampaignResult campaign;
};

/// Converts the suite into orchestrator tests: runs each program on the
/// good machine (cycle counts + the campaign's good-trace checkpoints) and
/// wraps the system-bus fault-simulation kernel in per-worker runners; all
/// runners share one PackedTopology of the SoC netlist. `soc` and
/// `universe` are captured by reference and must outlive every campaign
/// run over the returned tests. `margin` cycles past the good machine's
/// HALT let slow faulty lanes diverge on the halted pin. `event_driven`
/// selects the kernel (false = full-sweep oracle; results are
/// bit-identical either way — the switch exists for cross-checks and
/// benches). `fault_model` selects the grading kernel: kStuckAt wraps
/// run_batch, kTransition wraps the launch/capture run_tdf_batch over the
/// same fault ids (fault/tdf.hpp). `lanes` selects the packed kernel
/// width (64/128/256; unsupported widths fall back to 64) — a pure
/// throughput knob, detection sets are bit-identical at every width.
/// `incremental_clocking` selects the dirty-D clock path (false = full
/// two-pass latch oracle; bit-identical either way).
/// Margin default shared by build_sbst_campaign_tests' declaration and
/// run_sbst_campaign's explicit call, so the two paths cannot drift.
inline constexpr int kSbstCampaignMargin = 8;

std::vector<CampaignTest> build_sbst_campaign_tests(
    const Soc& soc, std::vector<SbstProgram>& suite,
    const FaultUniverse& universe, int margin = kSbstCampaignMargin,
    bool event_driven = true, FaultModel fault_model = FaultModel::kStuckAt,
    int lanes = 64, bool incremental_clocking = true);

/// One program's campaign test plus the recorded good-machine checkpoint
/// (exposed so subprocess workers can fingerprint their rebuilt state —
/// the trace hash is the strongest cheap witness that two processes built
/// the same grading state from the same netlist).
struct SbstCampaignTest {
  CampaignTest test;
  std::shared_ptr<const ReferenceTrace> trace;
};

/// Builds one program's campaign test: runs the program functionally for
/// its cycle count, records the reference trace, and wraps the grading
/// kernel in per-worker runners (build_sbst_campaign_tests is a loop over
/// this). The returned test carries a wire spec
/// ({"workload":"sbst","program":NAME,"fsim":{...},"state_fp":HEX}) so a
/// subprocess worker can rebuild the same state from its own SoC —
/// see rebuild_sbst_campaign_test. `topo` must be a PackedTopology over
/// soc.netlist (shared across the suite's tests and workers).
SbstCampaignTest build_sbst_campaign_test(
    const Soc& soc, SbstProgram& program, const FaultUniverse& universe,
    std::shared_ptr<const PackedTopology> topo,
    int margin = kSbstCampaignMargin, bool event_driven = true,
    FaultModel fault_model = FaultModel::kStuckAt, int lanes = 64,
    bool incremental_clocking = true);

/// The worker half: reconstructs the campaign test a spec (produced by
/// build_sbst_campaign_test on the coordinator) describes, over the
/// worker's own soc/universe. The program is looked up by name in
/// `suite`, the kernel options come from the spec's "fsim" object, and
/// the rebuilt trace's fingerprint must match the spec's "state_fp" when
/// present — a drifted rebuild (different SoC configuration, changed
/// program) throws std::runtime_error instead of grading garbage.
/// Throws std::invalid_argument on unknown programs or malformed specs.
SbstCampaignTest rebuild_sbst_campaign_test(
    const Soc& soc, std::vector<SbstProgram>& suite,
    const FaultUniverse& universe, std::shared_ptr<const PackedTopology> topo,
    const Json& spec, FaultModel fault_model);

/// Fault-simulates the suite with system-bus observability through the
/// campaign orchestrator, updating `fl` (already-detected and untestable
/// faults are skipped — fault dropping). `opts` controls threading,
/// sharding, dropping, the packed kernel width (opts.lane_width, threaded
/// into every runner), and the fault model (opts.fault_model ==
/// kTransition grades the suite for TDF coverage; pair it with
/// classify_transition_faults-based pruning in `fl` for the pruned
/// figures).
SbstCampaignResult run_sbst_campaign(
    const Soc& soc, std::vector<SbstProgram>& suite, FaultList& fl,
    std::function<void(const std::string&, std::size_t, std::size_t)> progress = {},
    const CampaignOptions& opts = {});

}  // namespace olfui
