#include "sbst/sbst.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

#include "campaign/report.hpp"
#include "obs/trace.hpp"

namespace olfui {

namespace {

/// ALU arithmetic: adder carry chains, subtract borrow, unsigned compare.
Program prog_alu_arith(const SocConfig& cfg) {
  Program p(cfg.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(cfg.ram_base);
  p.li(0, 0);
  p.li(7, ram);
  p.li(1, 0x0000'00FF);
  p.li(2, 0xAAAA'5555);
  p.add(3, 1, 2);
  p.sw(3, 7, 0);
  p.sub(4, 2, 1);
  p.sw(4, 7, 4);
  p.li(5, 0xFFFF'FFFF);
  p.add(6, 5, 5);  // carry out of every bit
  p.sw(6, 7, 8);
  p.sub(3, 1, 2);  // negative result
  p.sw(3, 7, 12);
  p.sltu(4, 1, 2);
  p.sw(4, 7, 16);
  p.sltu(4, 2, 1);
  p.sw(4, 7, 20);
  p.sltu(4, 2, 2);  // equal operands
  p.sw(4, 7, 24);
  // Walking-one accumulation: doubles r1 until it wraps to zero.
  p.li(1, 1);
  p.li(2, 0);
  p.label("loop");
  p.add(2, 2, 1);
  p.add(1, 1, 1);
  p.bne(1, 0, "loop");
  p.sw(2, 7, 28);
  // Alternating-carry patterns.
  p.li(1, 0x5555'5555);
  p.li(2, 0x3333'3333);
  p.add(3, 1, 2);
  p.sw(3, 7, 32);
  p.addi(3, 3, -1);
  p.sw(3, 7, 36);
  p.halt();
  return p;
}

/// Bitwise unit: AND/OR/XOR plus their immediate forms.
Program prog_alu_logic(const SocConfig& cfg) {
  Program p(cfg.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(cfg.ram_base) + 0x100;
  p.li(0, 0);
  p.li(7, ram);
  p.li(1, 0xFF00'FF00);
  p.li(2, 0x0F0F'0F0F);
  p.and_(3, 1, 2);
  p.sw(3, 7, 0);
  p.or_(3, 1, 2);
  p.sw(3, 7, 4);
  p.xor_(3, 1, 2);
  p.sw(3, 7, 8);
  p.li(4, 0xFFFF'FFFF);
  p.xor_(5, 1, 4);  // complement
  p.sw(5, 7, 12);
  p.and_(5, 1, 4);  // identity
  p.sw(5, 7, 16);
  p.or_(5, 2, 0);   // identity with zero
  p.sw(5, 7, 20);
  p.andi(3, 1, 0x5A5A);
  p.sw(3, 7, 24);
  p.ori(3, 2, 0x1248);
  p.sw(3, 7, 28);
  p.xori(3, 1, 0xFFFF);
  p.sw(3, 7, 32);
  p.lui(3, 0x8421);
  p.sw(3, 7, 36);
  p.halt();
  return p;
}

/// Barrel shifter: all 32 amounts in both directions.
Program prog_shift(const SocConfig& cfg) {
  Program p(cfg.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(cfg.ram_base) + 0x200;
  p.li(0, 0);
  p.li(7, ram);
  p.li(1, 0x8000'0003);  // ones at both ends survive shifting
  p.li(2, 0);            // amount
  p.li(3, 32);           // bound
  p.label("sh");
  p.sll(4, 1, 2);
  p.srl(5, 1, 2);
  p.xor_(6, 4, 5);
  p.sw(6, 7, 0);
  p.addi(7, 7, 4);
  p.addi(2, 2, 1);
  p.bne(2, 3, "sh");
  p.halt();
  return p;
}

/// Register-file march: unique patterns per register, then complements;
/// every value leaves through the store port.
Program prog_regfile(const SocConfig& cfg) {
  Program p(cfg.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(cfg.ram_base) + 0x400;
  p.li(7, ram);
  const std::uint32_t patterns[6] = {0x0101'0101, 0x0202'0404, 0x1010'2020,
                                     0x4040'8080, 0xFFFF'0000, 0x5A5A'A5A5};
  for (int r = 1; r <= 6; ++r) p.li(r, patterns[r - 1]);
  for (int r = 1; r <= 6; ++r) p.sw(r, 7, 4 * (r - 1));
  p.li(0, 0xFFFF'FFFF);
  for (int r = 1; r <= 6; ++r) p.xor_(r, r, 0);
  for (int r = 1; r <= 6; ++r) p.sw(r, 7, 4 * (5 + r));
  // r0 and r7 themselves: swap roles so both get a non-address pattern.
  p.li(1, static_cast<std::uint32_t>(cfg.ram_base) + 0x400 + 64);
  p.li(0, 0x1357'9BDF);
  p.sw(0, 1, 0);
  p.li(0, 0);
  p.li(7, ram);
  p.halt();
  return p;
}

/// Control flow: trains the BTB with calls/returns and loop branches,
/// includes not-taken paths and re-dispatch through JR.
Program prog_branch_btb(const SocConfig& cfg) {
  Program p(cfg.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(cfg.ram_base) + 0x600;
  p.li(0, 0);
  p.li(7, ram);
  p.li(1, 8);  // outer trip count
  p.li(2, 0);  // accumulator
  p.label("outer");
  p.jal(5, "sub1");
  p.addi(2, 2, 1);
  p.addi(1, 1, -1);
  p.bne(1, 0, "outer");
  p.sw(2, 7, 0);
  // Not-taken conditional branches.
  p.beq(1, 2, "skip1");  // r1 == 0, r2 == 16 -> not taken
  p.addi(2, 2, 7);
  p.label("skip1");
  p.bne(1, 0, "skip2");  // r1 == 0 -> not taken
  p.addi(2, 2, 100);
  p.label("skip2");
  p.sw(2, 7, 4);
  // Calling the same subroutine from distinct sites makes JR return to
  // different targets (and re-trains the BTB entry for the JR).
  p.jal(5, "sub1");
  p.jal(5, "sub1");
  p.sw(2, 7, 8);
  // Backward-taken BEQ loop (BNE loops above are the taken-BNE case).
  p.li(3, 2);
  p.li(6, 0);
  p.label("bl");
  p.addi(6, 6, 1);
  p.beq(6, 3, "bldone");
  p.beq(0, 0, "bl");  // unconditional backward branch
  p.label("bldone");
  p.sw(6, 7, 12);
  p.halt();
  p.label("sub1");
  p.addi(2, 2, 1);
  p.jr(5);
  return p;
}

/// Load/store walks: address bit walking inside the RAM range, read-back
/// accumulation, and a flash (code memory) data read.
Program prog_loadstore(const SocConfig& cfg) {
  Program p(cfg.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(cfg.ram_base);
  p.li(0, 0);
  p.li(7, ram);
  p.li(1, 0xDEAD'BEEF);
  p.li(4, static_cast<std::uint32_t>(cfg.ram_size));
  p.li(2, 4);
  p.label("wr");
  p.add(3, 7, 2);
  p.sw(1, 3, 0);
  p.add(1, 1, 2);  // vary the stored data with the address
  p.add(2, 2, 2);
  p.bne(2, 4, "wr");
  p.li(2, 4);
  p.li(5, 0);
  p.label("rd");
  p.add(3, 7, 2);
  p.lw(6, 3, 0);
  p.add(5, 5, 6);
  p.add(2, 2, 2);
  p.bne(2, 4, "rd");
  p.sw(5, 7, 0);
  // Offset-form addressing (positive and negative immediates).
  p.li(3, ram + 0x80);
  p.sw(5, 3, 0x40);
  p.sw(5, 3, -0x40);
  p.lw(6, 3, 0x40);
  p.sw(6, 3, 4);
  // Read a code word from flash as data.
  p.li(3, static_cast<std::uint32_t>(cfg.flash_base));
  p.lw(6, 3, 0);
  p.sw(6, 7, 8);
  p.halt();
  return p;
}

/// Multiplier: partial-product rows and carry chains of the 32x32 array.
Program prog_mul(const SocConfig& cfg) {
  Program p(cfg.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(cfg.ram_base) + 0x700;
  p.li(0, 0);
  p.li(7, ram);
  p.li(1, 3);
  p.li(2, 5);
  p.mul(3, 1, 2);
  p.sw(3, 7, 0);
  p.li(1, 0xFFFF'FFFF);
  p.mul(3, 1, 1);  // (-1)^2 wraps to 1
  p.sw(3, 7, 4);
  p.li(1, 0x0001'0001);
  p.li(2, 0x0000'FFFF);
  p.mul(3, 1, 2);
  p.sw(3, 7, 8);
  // Walking-one times walking-one sweeps every partial-product row.
  p.li(1, 1);
  p.li(4, 0);
  p.label("mloop");
  p.mul(3, 1, 1);
  p.add(4, 4, 3);
  p.add(1, 1, 1);
  p.bne(1, 0, "mloop");
  p.sw(4, 7, 12);
  // Alternating patterns stress the adder rows.
  p.li(1, 0xAAAA'AAAA);
  p.li(2, 0x5555'5555);
  p.mul(3, 1, 2);
  p.sw(3, 7, 16);
  p.mul(3, 2, 2);
  p.sw(3, 7, 20);
  p.halt();
  return p;
}

/// Decode sweep: every opcode executes at least once with fresh operands.
Program prog_decode(const SocConfig& cfg) {
  Program p(cfg.cpu.reset_vector);
  const std::uint32_t ram = static_cast<std::uint32_t>(cfg.ram_base) + 0x800;
  p.li(0, 0);
  p.li(7, ram);
  p.nop();
  p.li(1, 0x0000'1234);
  p.li(2, 0x4321'0000);
  p.add(3, 1, 2);
  p.sub(3, 3, 1);
  p.and_(4, 3, 2);
  p.or_(4, 4, 1);
  p.xor_(4, 4, 3);
  p.sltu(5, 1, 2);
  p.li(6, 5);
  p.sll(5, 1, 6);
  p.srl(5, 5, 6);
  p.addi(5, 5, 0x7FF);
  p.andi(5, 5, 0x0FF0);
  p.ori(5, 5, 0x8001);
  p.xori(5, 5, 0x00FF);
  p.lui(6, 0x00C0);
  p.sw(4, 7, 0);
  p.sw(5, 7, 4);
  p.sw(6, 7, 8);
  p.lw(3, 7, 0);
  p.add(3, 3, 5);
  p.sw(3, 7, 12);
  p.jal(5, "fwd");
  p.addi(3, 3, 1);  // executed after return-to-link+? (skipped by jal)
  p.label("fwd");
  p.sw(3, 7, 16);
  p.halt();
  return p;
}

}  // namespace

std::vector<SbstProgram> build_sbst_suite(const SocConfig& cfg) {
  std::vector<SbstProgram> suite;
  suite.push_back({"alu_arith", prog_alu_arith(cfg)});
  suite.push_back({"alu_logic", prog_alu_logic(cfg)});
  suite.push_back({"shift", prog_shift(cfg)});
  suite.push_back({"regfile", prog_regfile(cfg)});
  suite.push_back({"branch_btb", prog_branch_btb(cfg)});
  suite.push_back({"loadstore", prog_loadstore(cfg)});
  if (cfg.cpu.with_multiplier) suite.push_back({"mul", prog_mul(cfg)});
  suite.push_back({"decode", prog_decode(cfg)});
  return suite;
}

std::vector<int> run_suite_functional(const Soc& soc,
                                      std::vector<SbstProgram>& suite,
                                      int max_cycles_per_program,
                                      ToggleRecorder* recorder) {
  std::vector<int> cycles;
  for (SbstProgram& sp : suite) {
    SocSimulator runner(soc);
    runner.load_program(sp.program);
    cycles.push_back(runner.run(max_cycles_per_program, recorder));
  }
  return cycles;
}

namespace {

/// One worker's private kernel: a packed simulator plus a per-lane memory
/// environment, grading batches against the program's good-trace
/// checkpoint. Shared immutable state (flash image, checkpoint) rides on
/// shared_ptrs so every worker's runner references one copy. The width
/// parameter picks the packed word (64 = scalar, 128/256 = vector
/// extensions); the checkpoint is lane-0-only and so width-independent.
template <int W>
class SbstBatchRunnerT final : public FaultBatchRunner {
 public:
  SbstBatchRunnerT(const Soc& soc, const FaultUniverse& universe,
                   std::shared_ptr<const FlashImage> flash,
                   std::shared_ptr<const ReferenceTrace> trace,
                   std::shared_ptr<const PackedTopology> topo,
                   const SeqFsimOptions& opts, FaultModel fault_model)
      : flash_(std::move(flash)),
        trace_(std::move(trace)),
        env_(soc, *flash_, opts.max_cycles),
        fsim_(soc.netlist, universe, opts, std::move(topo)),
        fault_model_(fault_model) {
    fsim_.set_observed(soc.cpu.bus_output_cells);
  }

  LaneMask run_batch(std::span<const FaultId> faults) override {
    return fault_model_ == FaultModel::kTransition
               ? fsim_.run_tdf_batch(faults, env_, trace_.get())
               : fsim_.run_batch(faults, env_, trace_.get());
  }

 private:
  std::shared_ptr<const FlashImage> flash_;
  std::shared_ptr<const ReferenceTrace> trace_;
  SocFsimEnvironmentT<W> env_;
  SequentialFaultSimulatorT<W> fsim_;
  FaultModel fault_model_;
};

}  // namespace

namespace {

/// Constructs one width instantiation of the runner (the compile-time
/// half of the opts.lanes dispatch below).
template <int W>
std::unique_ptr<FaultBatchRunner> make_sbst_runner(
    const Soc& soc, const FaultUniverse& universe,
    const std::shared_ptr<const FlashImage>& flash,
    const std::shared_ptr<const ReferenceTrace>& trace,
    const std::shared_ptr<const PackedTopology>& topo,
    const SeqFsimOptions& opts, FaultModel fault_model) {
  return std::make_unique<SbstBatchRunnerT<W>>(soc, universe, flash, trace,
                                               topo, opts, fault_model);
}

/// The shared trailing half of build/rebuild: checkpoint the good machine
/// under `opts` and wrap the grading kernel in per-worker runners. The
/// trace is recorded here exactly once per (program, options) — both the
/// coordinator and every subprocess worker derive their state through
/// this one function, so the two sides can only agree or fingerprint-fail.
SbstCampaignTest make_sbst_campaign_test(const Soc& soc, SbstProgram& program,
                                         const FaultUniverse& universe,
                                         std::shared_ptr<const PackedTopology> topo,
                                         SeqFsimOptions opts, int good_cycles,
                                         FaultModel fault_model) {
  // Resolve the width before it lands in the spec, so a worker rebuilds
  // at exactly the width the coordinator graded with.
  opts.lanes = resolve_lane_width(opts.lanes);
  auto flash = std::make_shared<FlashImage>(soc.config.flash_base,
                                            soc.config.flash_size);
  flash->load(program.program.base(), program.program.words());

  // Checkpoint the good machine once; every batch of every worker then
  // replays this trace as its reference (and, under the TDF model, reads
  // its launch schedules from it instead of re-running a good pass). The
  // trace only sees lane 0, so the scalar tracer serves every width.
  SocFsimEnvironment trace_env(soc, *flash, opts.max_cycles);
  SequentialFaultSimulator tracer(soc.netlist, universe, opts, topo);
  tracer.set_observed(soc.cpu.bus_output_cells);
  auto trace_span = obs::tracer().span("record_trace", "campaign");
  trace_span.arg("program", Json(program.name));
  auto trace = std::make_shared<const ReferenceTrace>(
      tracer.record_reference_trace(trace_env));
  trace_span.end();

  SbstCampaignTest out;
  out.trace = trace;
  out.test.name = program.name;
  out.test.good_cycles = good_cycles;
  Json spec = Json::object();
  spec.set("workload", "sbst");
  spec.set("program", program.name);
  spec.set("fsim", seq_fsim_options_to_json(opts));
  spec.set("state_fp", word_to_hex(trace->fingerprint()));
  out.test.spec = std::move(spec);
  out.test.make_runner = [&soc, &universe, flash = std::move(flash), trace,
                          topo = std::move(topo), opts, fault_model]() {
#if OLFUI_HAS_WIDE_LANES
    if (opts.lanes == 128)
      return make_sbst_runner<128>(soc, universe, flash, trace, topo, opts,
                                   fault_model);
    if (opts.lanes == 256)
      return make_sbst_runner<256>(soc, universe, flash, trace, topo, opts,
                                   fault_model);
#endif
    return make_sbst_runner<64>(soc, universe, flash, trace, topo, opts,
                                fault_model);
  };
  return out;
}

}  // namespace

SbstCampaignTest build_sbst_campaign_test(
    const Soc& soc, SbstProgram& program, const FaultUniverse& universe,
    std::shared_ptr<const PackedTopology> topo, int margin, bool event_driven,
    FaultModel fault_model, int lanes, bool incremental_clocking) {
  SocSimulator runner(soc);
  runner.load_program(program.program);
  const int cycles = runner.run(kSbstFunctionalCycleCap);
  // `margin` cycles past the good machine's HALT let slow faulty lanes
  // diverge on the halted pin; the budget travels in the spec as a plain
  // max_cycles so a worker needs no functional pre-run of its own.
  const SeqFsimOptions opts{.max_cycles = cycles + margin,
                            .event_driven = event_driven,
                            .incremental_clocking = incremental_clocking,
                            .lanes = lanes};
  return make_sbst_campaign_test(soc, program, universe, std::move(topo), opts,
                                 cycles, fault_model);
}

SbstCampaignTest rebuild_sbst_campaign_test(
    const Soc& soc, std::vector<SbstProgram>& suite,
    const FaultUniverse& universe, std::shared_ptr<const PackedTopology> topo,
    const Json& spec, FaultModel fault_model) {
  if (!spec.is_object() || !spec.contains("workload") ||
      spec.at("workload").as_string() != "sbst")
    throw std::invalid_argument(
        "sbst worker: spec does not describe an sbst test");
  const std::string& name = spec.at("program").as_string();
  SbstProgram* program = nullptr;
  for (SbstProgram& sp : suite)
    if (sp.name == name) program = &sp;
  if (!program)
    throw std::invalid_argument("sbst worker: unknown program '" + name +
                                "' (SoC configuration mismatch?)");
  const SeqFsimOptions opts = seq_fsim_options_from_json(spec.at("fsim"));
  SbstCampaignTest rebuilt = make_sbst_campaign_test(
      soc, *program, universe, std::move(topo), opts, 0, fault_model);
  if (spec.contains("state_fp") &&
      word_from_hex(spec.at("state_fp").as_string()) !=
          rebuilt.trace->fingerprint())
    throw std::runtime_error(
        "sbst worker: rebuilt state for '" + name +
        "' does not match the coordinator's (SoC configuration drift?)");
  return rebuilt;
}

std::vector<CampaignTest> build_sbst_campaign_tests(
    const Soc& soc, std::vector<SbstProgram>& suite,
    const FaultUniverse& universe, int margin, bool event_driven,
    FaultModel fault_model, int lanes, bool incremental_clocking) {
  // One topology (levelized order + fanout CSR) serves every tracer and
  // every worker's simulator across the whole suite.
  const auto topo = PackedTopology::build(soc.netlist);
  std::vector<CampaignTest> tests;
  tests.reserve(suite.size());
  for (SbstProgram& sp : suite)
    tests.push_back(build_sbst_campaign_test(soc, sp, universe, topo, margin,
                                             event_driven, fault_model, lanes,
                                             incremental_clocking)
                        .test);
  return tests;
}

SbstCampaignResult run_sbst_campaign(
    const Soc& soc, std::vector<SbstProgram>& suite, FaultList& fl,
    std::function<void(const std::string&, std::size_t, std::size_t)> progress,
    const CampaignOptions& opts) {
  // Always the event kernel here (the fast path; the full-sweep oracle is
  // reachable through build_sbst_campaign_tests for cross-checks). The
  // engine resolves the same width below, so kernel and batch bound agree.
  const std::vector<CampaignTest> tests = build_sbst_campaign_tests(
      soc, suite, fl.universe(), kSbstCampaignMargin, /*event_driven=*/true,
      opts.fault_model, resolve_lane_width(opts.lane_width),
      opts.incremental_clocking);
  const CampaignEngine engine(fl.universe(), opts);
  SbstCampaignResult result;
  result.campaign = engine.run(fl, tests, progress);
  for (const CampaignResult::PerTest& pt : result.campaign.tests) {
    result.programs.push_back(
        {pt.name, pt.good_cycles, pt.new_detections});
    result.total_detected += pt.new_detections;
  }
  return result;
}

}  // namespace olfui
