// olfui/sta: structural testability analysis — the engine the paper
// delegates to a commercial tool ("run any EDA tool able to identify
// structural untestable faults").
//
// The paper's circuit manipulations — "connect to ground or Vdd" selected
// nets, "unconnect (leave floating)" debug outputs — are expressed here as
// a MissionConfig overlay instead of a destructive netlist edit, keeping
// fault ids stable across passes:
//
//  * constants: nets that carry a fixed logic value in fault-free mission
//    operation (tied debug inputs, scan-enable, constant address-register
//    bits). The *fault-free* value is fixed; faults on the net itself can
//    still flip it, which is why s-a-1 on a grounded scan-enable remains
//    testable (Fig. 2) while s-a-0 on it is pruned.
//  * unobserved_outputs: top-level outputs nobody reads in mission mode
//    (floating debug/observation buses, scan-out).
//
// analyze() runs a ternary constant fixpoint (propagating through flops —
// the native equivalent of the paper's tie-both-FF-input-and-output
// workaround of Figs. 5/6) and a backward observability pass with
// controlling-side-input blocking. classify_faults() then labels each
// fault UT (tied/unexcitable) or UO (unobservable), the two structural
// untestability classes the flow prunes.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "netlist/netlist.hpp"
#include "sim/logic.hpp"

namespace olfui {

/// Mission-mode circuit configuration (the paper's §3 manipulations).
struct MissionConfig {
  /// Fault-free constant-value assumptions per net.
  std::vector<std::pair<NetId, bool>> constants;
  /// kOutput port cells whose value is never read in mission mode.
  std::vector<CellId> unobserved_outputs;

  void tie(NetId net, bool value) { constants.emplace_back(net, value); }
  void unobserve(CellId output_cell) { unobserved_outputs.push_back(output_cell); }
  /// Merges another configuration (used when stacking passes).
  void merge(const MissionConfig& other);
};

/// Result of one structural analysis run.
struct StaResult {
  /// Fault-free value of each net at the mission fixpoint (V0/V1/VX).
  std::vector<Logic> net_value;
  /// Per-pin observability, indexed by pin ordinal (see pin_ordinal()).
  /// This is the fast structural approximation; classification verifies
  /// every unobservable candidate with the sound per-fault check below.
  std::vector<std::uint8_t> pin_observable;
  /// Per top-level-output-cell flag: 1 if read in mission mode.
  std::vector<std::uint8_t> port_observed;

  bool net_const(NetId n, bool v) const {
    return net_value[n] == (v ? Logic::V1 : Logic::V0);
  }
};

class StructuralAnalyzer {
 public:
  /// Both references must outlive the analyzer.
  StructuralAnalyzer(const Netlist& nl, const FaultUniverse& universe);

  /// Dense index of a pin: FaultUniverse stores the two stuck-at faults of
  /// a pin adjacently, so ordinal == id_of(pin, false) / 2.
  std::uint32_t pin_ordinal(Pin p) const;
  std::size_t num_pins() const { return universe_->size() / 2; }

  StaResult analyze(const MissionConfig& config) const;

  /// Marks faults proven untestable by `r` into `fl` with source label `s`:
  /// fault s-a-v at a pin whose fault-free value is v  -> kTied;
  /// fault at a pin with no sensitizable path to an observed output -> kUnobservable.
  /// Returns the number of *newly* marked faults.
  std::size_t classify_faults(const StaResult& r, FaultList& fl,
                              OnlineSource s) const;

  /// Extension (the paper's conclusion: "extend the proposed technique to
  /// other fault models"): transition-delay fault classification. The
  /// universe sites are shared with stuck-at faults: id 2k is the
  /// slow-to-rise fault of pin k, id 2k+1 the slow-to-fall fault.
  /// A transition fault needs BOTH logic values at its site (launch and
  /// capture), so any site with a constant mission value loses both
  /// transition faults — strictly more pruning than stuck-at, matching
  /// the literature on functionally untestable delay faults.
  std::size_t classify_transition_faults(const StaResult& r, FaultList& fl,
                                         OnlineSource s) const;

  /// Sound per-fault observability proof. Propagates a "possibly differs
  /// between good and faulty machine" marker forward from the fault pin;
  /// a side input blocks propagation only when it carries a controlling
  /// fault-free constant AND is itself provably unaffected by the fault
  /// (otherwise reconvergent fault effects could unblock the path — the
  /// classic multi-path sensitization trap of static blocking rules).
  /// Returns false only when no observed output can ever differ.
  bool fault_possibly_observable(const StaResult& r, Pin pin) const;

 private:
  void propagate_constants(StaResult& r) const;
  void propagate_observability(const MissionConfig& config, StaResult& r) const;
  /// True if input pin `pin` (1-based) of cell `c` is blocked by the
  /// fault-free constants on the cell's other inputs.
  bool pin_blocked(const Cell& c, int pin, const StaResult& r) const;

  const Netlist* nl_;
  const FaultUniverse* universe_;
  std::vector<CellId> order_;  // levelized combinational order
};

}  // namespace olfui
