#include "sta/sta.hpp"

#include <cassert>
#include <stdexcept>

namespace olfui {

void MissionConfig::merge(const MissionConfig& other) {
  constants.insert(constants.end(), other.constants.begin(), other.constants.end());
  unobserved_outputs.insert(unobserved_outputs.end(),
                            other.unobserved_outputs.begin(),
                            other.unobserved_outputs.end());
}

StructuralAnalyzer::StructuralAnalyzer(const Netlist& nl,
                                       const FaultUniverse& universe)
    : nl_(&nl), universe_(&universe) {
  if (!nl.levelize(order_))
    throw std::runtime_error("StructuralAnalyzer: combinational loop");
}

std::uint32_t StructuralAnalyzer::pin_ordinal(Pin p) const {
  return universe_->id_of(p, false) / 2;
}

StaResult StructuralAnalyzer::analyze(const MissionConfig& config) const {
  StaResult r;
  r.net_value.assign(nl_->num_nets(), Logic::VX);
  r.pin_observable.assign(num_pins(), 0);

  // Assumption overlay: these nets keep their fixed fault-free value.
  std::vector<std::uint8_t> assumed(nl_->num_nets(), 0);
  for (auto [net, v] : config.constants) {
    assumed[net] = 1;
    r.net_value[net] = from_bool(v);
  }
  for (CellId id = 0; id < nl_->num_cells(); ++id) {
    const Cell& c = nl_->cell(id);
    if (is_tie(c.type) && !assumed[c.out])
      r.net_value[c.out] = from_bool(c.type == CellType::kTie1);
  }
  propagate_constants(r);

  // Observed-port flags.
  r.port_observed.assign(nl_->num_cells(), 0);
  for (CellId oc : nl_->output_cells()) r.port_observed[oc] = 1;
  for (CellId c : config.unobserved_outputs) r.port_observed[c] = 0;

  // Observability.
  propagate_observability(config, r);
  return r;
}

void StructuralAnalyzer::propagate_constants(StaResult& r) const {
  std::vector<std::uint8_t> assumed(nl_->num_nets(), 0);
  // Re-derive the assumption set from values fixed before first sweep:
  // only nets whose value is already known and that have no evaluable
  // driver sweep (ties and config constants) must be preserved. Simpler:
  // remember them now.
  for (NetId n = 0; n < nl_->num_nets(); ++n)
    if (r.net_value[n] != Logic::VX) assumed[n] = 1;

  // Monotone ternary fixpoint: combinational sweep + flop steady-state
  // update, repeated until stable. Ternary evaluation is monotone in the
  // information order, so values only ever refine X -> {0,1}.
  Logic in[4];
  bool changed = true;
  std::size_t guard = nl_->num_cells() + 2;
  while (changed && guard-- > 0) {
    changed = false;
    for (CellId id : order_) {
      const Cell& c = nl_->cell(id);
      if (c.type == CellType::kOutput || assumed[c.out]) continue;
      const int n = static_cast<int>(c.ins.size());
      for (int i = 0; i < n; ++i) in[i] = r.net_value[c.ins[i]];
      const Logic v = eval_ternary(c.type, in, n);
      if (v != r.net_value[c.out]) {
        r.net_value[c.out] = v;
        changed = true;
      }
    }
    for (CellId id = 0; id < nl_->num_cells(); ++id) {
      const Cell& c = nl_->cell(id);
      if (!is_sequential(c.type) || assumed[c.out]) continue;
      const Logic d = r.net_value[c.ins[kDffD]];
      const Logic rstn = c.type == CellType::kDffR
                             ? r.net_value[c.ins[kDffRstn]]
                             : Logic::V1;
      // Steady-state: if the data input settles to a constant, the flop
      // output is that constant in mission operation (paper Figs. 5/6).
      const Logic v = flop_next(c.type, d, rstn);
      if (v != r.net_value[c.out]) {
        r.net_value[c.out] = v;
        changed = true;
      }
    }
  }
}

bool StructuralAnalyzer::pin_blocked(const Cell& c, int pin,
                                     const StaResult& r) const {
  const auto is_const = [&](NetId n, bool v) { return r.net_const(n, v); };
  switch (c.type) {
    case CellType::kAnd2:
    case CellType::kAnd3:
    case CellType::kAnd4:
    case CellType::kNand2:
    case CellType::kNand3:
    case CellType::kNand4:
      for (std::size_t i = 0; i < c.ins.size(); ++i)
        if (static_cast<int>(i) != pin - 1 && is_const(c.ins[i], false))
          return true;
      return false;
    case CellType::kOr2:
    case CellType::kOr3:
    case CellType::kOr4:
    case CellType::kNor2:
    case CellType::kNor3:
    case CellType::kNor4:
      for (std::size_t i = 0; i < c.ins.size(); ++i)
        if (static_cast<int>(i) != pin - 1 && is_const(c.ins[i], true))
          return true;
      return false;
    case CellType::kMux2: {
      const int data_pin = pin - 1;
      if (data_pin == kMuxA) return is_const(c.ins[kMuxS], true);
      if (data_pin == kMuxB) return is_const(c.ins[kMuxS], false);
      // Select pin: blocked only when both data inputs carry the same
      // known constant (toggling the select cannot change the output).
      const Logic a = r.net_value[c.ins[kMuxA]];
      const Logic b = r.net_value[c.ins[kMuxB]];
      return is_known(a) && a == b;
    }
    case CellType::kDffR:
      if (pin - 1 == kDffD) return is_const(c.ins[kDffRstn], false);
      // RSTN pin: releasing/asserting reset is invisible if D is already 0.
      return is_const(c.ins[kDffD], false);
    default:
      return false;  // BUF/NOT/XOR/XNOR/DFF/OUTPUT never block
  }
}

void StructuralAnalyzer::propagate_observability(const MissionConfig& config,
                                                 StaResult& r) const {
  std::vector<std::uint8_t> unobserved(nl_->num_cells(), 0);
  for (CellId c : config.unobserved_outputs) unobserved[c] = 1;

  std::vector<std::uint8_t> net_obs(nl_->num_nets(), 0);
  std::vector<NetId> worklist;

  for (CellId oc : nl_->output_cells()) {
    if (unobserved[oc]) continue;
    const Cell& c = nl_->cell(oc);
    r.pin_observable[pin_ordinal({oc, 1})] = 1;
    if (!net_obs[c.ins[0]]) {
      net_obs[c.ins[0]] = 1;
      worklist.push_back(c.ins[0]);
    }
  }

  while (!worklist.empty()) {
    const NetId n = worklist.back();
    worklist.pop_back();
    const CellId drv = nl_->net(n).driver;
    if (drv == kInvalidId) continue;
    const Cell& c = nl_->cell(drv);
    r.pin_observable[pin_ordinal({drv, 0})] = 1;
    for (std::size_t i = 0; i < c.ins.size(); ++i) {
      const int pin = static_cast<int>(i) + 1;
      if (pin_blocked(c, pin, r)) continue;
      r.pin_observable[pin_ordinal({drv, static_cast<std::uint8_t>(pin)})] = 1;
      const NetId in = c.ins[i];
      if (!net_obs[in]) {
        net_obs[in] = 1;
        worklist.push_back(in);
      }
    }
  }
}

std::size_t StructuralAnalyzer::classify_faults(const StaResult& r, FaultList& fl,
                                                OnlineSource s) const {
  std::size_t newly = 0;
  // Per-pin verification results are shared between the two stuck-at
  // polarities of a pin (observability does not depend on polarity).
  std::vector<std::int8_t> verified(num_pins(), -1);
  for (FaultId f = 0; f < universe_->size(); ++f) {
    if (fl.untestable_kind(f) != UntestableKind::kNone) continue;
    const Fault& fault = universe_->fault(f);
    const NetId n = nl_->pin_net(fault.pin);
    const Logic v = r.net_value[n];
    if (is_known(v) && (v == Logic::V1) == fault.sa1) {
      // Unexcitable: the faulty value equals the mission value, so good
      // and faulty machines are identical. Sound unconditionally.
      fl.mark_untestable(f, UntestableKind::kTied, s);
      ++newly;
      continue;
    }
    const std::uint32_t ord = pin_ordinal(fault.pin);
    if (r.pin_observable[ord]) continue;  // fast filter: maybe testable
    if (verified[ord] < 0)
      verified[ord] = fault_possibly_observable(r, fault.pin) ? 1 : 0;
    if (verified[ord] == 0) {
      fl.mark_untestable(f, UntestableKind::kUnobservable, s);
      ++newly;
    }
  }
  return newly;
}

std::size_t StructuralAnalyzer::classify_transition_faults(
    const StaResult& r, FaultList& fl, OnlineSource s) const {
  std::size_t newly = 0;
  std::vector<std::int8_t> verified(num_pins(), -1);
  for (FaultId f = 0; f < universe_->size(); ++f) {
    if (fl.untestable_kind(f) != UntestableKind::kNone) continue;
    const Fault& fault = universe_->fault(f);
    const NetId n = nl_->pin_net(fault.pin);
    // Launching a transition requires both values at the site; a mission
    // constant of EITHER polarity kills both transition faults.
    if (is_known(r.net_value[n])) {
      fl.mark_untestable(f, UntestableKind::kTied, s);
      ++newly;
      continue;
    }
    const std::uint32_t ord = pin_ordinal(fault.pin);
    if (r.pin_observable[ord]) continue;
    if (verified[ord] < 0)
      verified[ord] = fault_possibly_observable(r, fault.pin) ? 1 : 0;
    if (verified[ord] == 0) {
      fl.mark_untestable(f, UntestableKind::kUnobservable, s);
      ++newly;
    }
  }
  return newly;
}

bool StructuralAnalyzer::fault_possibly_observable(const StaResult& r,
                                                   Pin pin) const {
  const Netlist& nl = *nl_;
  // div[n] == 1: net n may differ between the good and the faulty machine.
  std::vector<std::uint8_t> div(nl.num_nets(), 0);

  // A side input blocks only with a controlling constant that is itself
  // provably fault-independent (non-divergent).
  const auto is_blocking = [&](NetId side, bool controlling) {
    return !div[side] && r.net_const(side, controlling);
  };
  // Divergence transfer of cell `c` given per-input divergence flags.
  const auto cell_div = [&](const Cell& c, const auto& in_div) -> bool {
    switch (c.type) {
      case CellType::kAnd2:
      case CellType::kAnd3:
      case CellType::kAnd4:
      case CellType::kNand2:
      case CellType::kNand3:
      case CellType::kNand4:
      case CellType::kOr2:
      case CellType::kOr3:
      case CellType::kOr4:
      case CellType::kNor2:
      case CellType::kNor3:
      case CellType::kNor4: {
        const bool and_like =
            c.type == CellType::kAnd2 || c.type == CellType::kAnd3 ||
            c.type == CellType::kAnd4 || c.type == CellType::kNand2 ||
            c.type == CellType::kNand3 || c.type == CellType::kNand4;
        const bool ctrl = !and_like;  // OR-family controlled by 1
        for (std::size_t i = 0; i < c.ins.size(); ++i) {
          if (!in_div(i)) continue;
          bool blocked = false;
          for (std::size_t j = 0; j < c.ins.size(); ++j)
            if (j != i && is_blocking(c.ins[j], ctrl)) blocked = true;
          if (!blocked) return true;
        }
        return false;
      }
      case CellType::kMux2: {
        if (in_div(kMuxA) && !is_blocking(c.ins[kMuxS], true)) return true;
        if (in_div(kMuxB) && !is_blocking(c.ins[kMuxS], false)) return true;
        if (in_div(kMuxS)) {
          // Blocked only if both data inputs carry the same fault-free
          // constant and neither can diverge.
          const Logic a = r.net_value[c.ins[kMuxA]];
          const Logic b = r.net_value[c.ins[kMuxB]];
          const bool same_const = is_known(a) && a == b &&
                                  !div[c.ins[kMuxA]] && !div[c.ins[kMuxB]];
          if (!same_const) return true;
        }
        return false;
      }
      case CellType::kDff:
        return in_div(kDffD);
      case CellType::kDffR: {
        if (in_div(kDffRstn)) {
          // A diverging reset is masked only by a constant-0 non-diverging D.
          if (!is_blocking(c.ins[kDffD], false)) return true;
        }
        if (in_div(kDffD) && !is_blocking(c.ins[kDffRstn], false)) return true;
        return false;
      }
      default: {  // BUF/NOT/XOR/XNOR: any diverging input passes
        for (std::size_t i = 0; i < c.ins.size(); ++i)
          if (in_div(i)) return true;
        return false;
      }
    }
  };

  // Seed. A branch fault diverges only inside its own cell's view; handle
  // the first cell specially, then net-level propagation takes over.
  const Cell& fcell = nl.cell(pin.cell);
  if (pin.pin == 0) {
    div[fcell.out] = 1;
  } else {
    if (fcell.type == CellType::kOutput)
      return r.port_observed[pin.cell] != 0;  // PO pin fault: directly read?
    const std::size_t fpin = static_cast<std::size_t>(pin.pin - 1);
    const auto seed_in = [&](std::size_t i) { return i == fpin; };
    if (fcell.out != kInvalidId && cell_div(fcell, seed_in)) div[fcell.out] = 1;
    if (!div[fcell.out]) return false;
  }

  // Monotone fixpoint: levelized combinational sweeps interleaved with
  // flop-edge transfers until stable (flop edges make the graph cyclic).
  bool changed = true;
  while (changed) {
    changed = false;
    for (CellId id : order_) {
      const Cell& c = nl.cell(id);
      if (c.type == CellType::kOutput || div[c.out]) continue;
      const auto in_div = [&](std::size_t i) { return div[c.ins[i]] != 0; };
      if (cell_div(c, in_div)) {
        div[c.out] = 1;
        changed = true;
      }
    }
    for (CellId id = 0; id < nl.num_cells(); ++id) {
      const Cell& c = nl.cell(id);
      if (!is_sequential(c.type) || div[c.out]) continue;
      const auto in_div = [&](std::size_t i) { return div[c.ins[i]] != 0; };
      if (cell_div(c, in_div)) {
        div[c.out] = 1;
        changed = true;
      }
    }
  }

  for (CellId oc : nl.output_cells()) {
    if (r.port_observed[oc] && div[nl.cell(oc).ins[0]]) return true;
  }
  return false;
}

}  // namespace olfui
