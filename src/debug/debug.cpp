#include "debug/debug.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace olfui {

namespace {
[[maybe_unused]] bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t log2_size(std::size_t n) {
  std::size_t k = 0;
  while ((1ULL << k) < n) ++k;
  return k;
}
}  // namespace

DebugPorts insert_debug(Netlist& nl, const DebugSpec& spec) {
  assert(is_power_of_two(spec.bus_a_words.size()));
  assert(is_power_of_two(spec.bus_b_words.size()));
  WordOps w(nl, "dbg");
  DebugPorts ports;

  const auto add_ctl = [&](std::string_view name, bool mission_value) {
    const NetId n = nl.add_input(name);
    ports.control_inputs.push_back(n);
    ports.control_values.push_back(mission_value);
    return n;
  };

  // The debug access port: 9 discrete controls + an 8-bit select bus = the
  // "17 signals" of the paper's case study, including a JTAG-like port.
  const NetId dbg_en = add_ctl("dbg_en", false);
  const NetId dbg_wen = add_ctl("dbg_wen", false);
  const NetId dbg_shift = add_ctl("dbg_shift", false);
  const NetId dbg_tdi = add_ctl("jtag_tdi", false);
  const NetId dbg_tms = add_ctl("jtag_tms", false);
  const NetId dbg_trstn = add_ctl("jtag_trstn", false);
  const NetId dbg_halt = add_ctl("dbg_halt", false);
  const NetId dbg_step = add_ctl("dbg_step", false);
  const NetId dbg_resume = add_ctl("dbg_resume", false);
  Bus sel(8);
  for (int i = 0; i < 8; ++i) sel[i] = add_ctl(format("dbg_sel%d", i), false);
  ports.dbg_en = dbg_en;

  // TAP state machine: a TMS shift register with asynchronous TRSTN;
  // the TAP is "active" once four consecutive ones have been shifted in.
  RegWord tap = w.reg_declare(4, "tap_state", dbg_trstn);
  Bus tap_d(4);
  tap_d[0] = w.buf(dbg_tms, "tap_d0");
  for (int i = 1; i < 4; ++i) tap_d[i] = w.buf(tap.q[i - 1], format("tap_d%d", i));
  w.reg_connect(tap, tap_d);
  const NetId tap_active = w.reduce_and({tap.q[0], tap.q[1], tap.q[2], tap.q[3]},
                                        "tap_active");

  // Command decode: the upper select bits arm shifting (gives the spare
  // select lines real logic, as on production debug IP).
  Bus sel_hi(sel.begin() + 4, sel.end());
  const NetId shift_armed = w.eq_const(sel_hi, 0x5, "shift_armed");
  const NetId shift_en =
      w.reduce_and({dbg_shift, tap_active, shift_armed}, "shift_en");

  // 32-bit data shift register fed by TDI.
  RegWord sr = w.reg_declare(spec.width, "shift_reg");
  Bus sr_d(spec.width);
  for (int i = 0; i < spec.width; ++i) {
    const NetId next = i + 1 < spec.width ? sr.q[i + 1] : dbg_tdi;
    sr_d[i] = w.mux(shift_en, sr.q[i], next, format("sr_d_%d", i));
  }
  w.reg_connect(sr, sr_d);

  // Per-register debug-write enables.
  const std::size_t nregs = spec.writable_regs.size();
  if (nregs > 0) {
    const std::size_t sel_bits = std::max<std::size_t>(1, log2_size(nregs));
    Bus sel_lo(sel.begin(), sel.begin() + static_cast<long>(sel_bits));
    Bus onehot = w.decode(sel_lo, "wsel");
    for (std::size_t r = 0; r < nregs; ++r) {
      const NetId en = w.reduce_and({dbg_en, dbg_wen, tap_active, onehot[r]},
                                    format("wr_en_%zu", r));
      RegWord& reg = *spec.writable_regs[r];
      // Fig. 4: D = DE ? DI : FI, one mux per flop bit.
      for (std::size_t b = 0; b < reg.flops.size(); ++b) {
        const NetId fi = nl.cell(reg.flops[b]).ins[kDffD];
        const NetId di = sr.q[b % sr.q.size()];
        const NetId md = w.mux(en, fi, di, format("wmux_%zu_%zu", r, b));
        nl.rewire_input(reg.flops[b], kDffD, md);
      }
    }
  }

  // Run control: halted latch + hold mux on the PC (controlled execution:
  // "step by step, run until breakpoint" per §3.2).
  const NetId not_resume = w.not_(dbg_resume, "not_resume");
  RegWord halted = w.reg_declare(1, "halted");
  const NetId keep = w.and2(halted.q[0], not_resume, "halt_keep");
  const NetId want = w.or2(dbg_halt, keep, "halt_want");
  Bus halted_d{w.and2(dbg_en, want, "halted_d")};
  w.reg_connect(halted, halted_d);
  const NetId not_step = w.not_(dbg_step, "not_step");
  const NetId hold = w.reduce_and({halted.q[0], not_step, dbg_en}, "hold");
  if (spec.hold_reg != nullptr) {
    RegWord& reg = *spec.hold_reg;
    for (std::size_t b = 0; b < reg.flops.size(); ++b) {
      const NetId fi = nl.cell(reg.flops[b]).ins[kDffD];
      const NetId md = w.mux(hold, fi, reg.q[b], format("holdmux_%zu", b));
      nl.rewire_input(reg.flops[b], kDffD, md);
    }
  }

  // Observation buses (§3.2.2): register values muxed to dedicated ports,
  // "directly providing general and special purpose register values to be
  // only captured along debug sessions".
  const auto build_bus = [&](const std::vector<Bus>& words, std::size_t sel_base,
                             const char* name) {
    if (words.empty()) return;
    const std::size_t bits = log2_size(words.size());
    Bus obs;
    if (bits == 0) {
      obs = words[0];
    } else {
      Bus s(sel.begin() + static_cast<long>(sel_base),
            sel.begin() + static_cast<long>(sel_base + bits));
      obs = w.onehot_mux(w.decode(s, format("%s_dec", name)), words,
                         format("%s_mux", name));
    }
    for (std::size_t b = 0; b < obs.size(); ++b) {
      ports.observe_outputs.push_back(
          nl.add_output(format("%s_out%zu", name, b), obs[b]));
    }
  };
  build_bus(spec.bus_a_words, 0, "dbg_gpr");
  build_bus(spec.bus_b_words, 3, "dbg_spr");

  return ports;
}

std::vector<NetId> find_quiet_inputs(const Netlist& nl, const ToggleRecorder& rec) {
  std::vector<NetId> out;
  for (CellId c : nl.input_cells()) {
    const NetId n = nl.cell(c).out;
    if (rec.toggles(n) == 0) out.push_back(n);
  }
  return out;
}

MissionConfig debug_control_config(const DebugPorts& ports) {
  MissionConfig cfg;
  for (std::size_t i = 0; i < ports.control_inputs.size(); ++i)
    cfg.tie(ports.control_inputs[i], ports.control_values[i]);
  return cfg;
}

MissionConfig debug_observe_config(const DebugPorts& ports) {
  MissionConfig cfg;
  for (CellId c : ports.observe_outputs) cfg.unobserve(c);
  return cfg;
}

}  // namespace olfui
