// olfui/debug: design-for-debug insertion and the §3.2 identification
// passes.
//
// insert_debug() grafts a Nexus-style debug unit onto a core:
//  * control side (§3.2.1 / Fig. 4): a JTAG-like access port (TDI/TMS/
//    TRSTN + TAP state machine), a 32-bit shift register, and per-flop
//    debug-write muxes (D = DE ? DI : FI) on every architected register,
//    plus halt/step/resume run control that can freeze the PC;
//  * observation side (§3.2.2): two word-wide observation buses that mux
//    architected register values out to dedicated top-level ports, read
//    only by an external debugger.
//
// In mission mode the external debugger is absent: the control inputs are
// tied to constants and the observation ports float. debug_control_config()
// and debug_observe_config() express exactly those two manipulations; the
// quiet-input finder reproduces the paper's toggle-activity screening that
// selected the "17 signals" of the case study.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/wordops.hpp"
#include "sim/sim.hpp"
#include "sta/sta.hpp"

namespace olfui {

struct DebugSpec {
  /// Registers that get Fig.-4 debug-write muxes (e.g. the GPR file).
  std::vector<RegWord*> writable_regs;
  /// Words multiplexed onto the first observation bus ("GPR bus");
  /// size must be a power of two.
  std::vector<Bus> bus_a_words;
  /// Words multiplexed onto the second observation bus ("SPR bus");
  /// size must be a power of two.
  std::vector<Bus> bus_b_words;
  /// Register frozen while halted (the PC), or nullptr.
  RegWord* hold_reg = nullptr;
  int width = 32;
};

struct DebugPorts {
  /// Every debug-related input port net (the case study's "17 signals",
  /// including the entire JTAG-like access port).
  std::vector<NetId> control_inputs;
  /// Values the control inputs take in mission mode (tie targets).
  std::vector<bool> control_values;
  /// The observation bus output port cells.
  std::vector<CellId> observe_outputs;
  NetId dbg_en = kInvalidId;
};

DebugPorts insert_debug(Netlist& nl, const DebugSpec& spec);

/// Toggle-activity screening (§4): input-port nets that never toggled
/// during the reference SBST run — the suspects for debug-only controls.
std::vector<NetId> find_quiet_inputs(const Netlist& nl, const ToggleRecorder& rec);

/// §3.2.1 manipulation: "connect to ground or Vdd all CPU inputs related
/// to debug and showing a constant value".
MissionConfig debug_control_config(const DebugPorts& ports);

/// §3.2.2 manipulation: "unconnect (leave floating) all CPU outputs
/// related to debug".
MissionConfig debug_observe_config(const DebugPorts& ports);

}  // namespace olfui
