// olfui/verilog: structural Verilog subset writer and parser.
//
// The supported subset is exactly what gate-level netlists from synthesis
// look like after mapping to the olfui cell library:
//
//   module <name> ( <ports> );
//     input  a; output y; wire n1;
//     AND2 u1 (.Y(n1), .A(a), .B(n2));
//     DFFR r0 (.Q(q), .D(d), .RSTN(rstn));
//     assign y = n1;        // output port connections
//   endmodule
//
// Hierarchical instance names ("core/alu/u_sum_3") are emitted as Verilog
// escaped identifiers (\core/alu/u_sum_3 ). Round-tripping a netlist
// through write_verilog/parse_verilog preserves structure, names and tags
// are preserved where representable (tags travel in a trailing
// "// tag: ..." comment).
#pragma once

#include <stdexcept>
#include <string>

#include "netlist/netlist.hpp"

namespace olfui {

std::string write_verilog(const Netlist& nl);

class VerilogError : public std::runtime_error {
 public:
  VerilogError(const std::string& msg, int line)
      : std::runtime_error("verilog:" + std::to_string(line) + ": " + msg),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses the subset; throws VerilogError on malformed input.
Netlist parse_verilog(const std::string& text);

}  // namespace olfui
