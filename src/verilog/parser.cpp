#include <cctype>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/strings.hpp"
#include "verilog/verilog.hpp"

namespace olfui {
namespace {

struct Token {
  enum Kind { kIdent, kPunct, kTag, kEnd } kind = kEnd;
  std::string text;
  char punct = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  const Token& peek() const { return tok_; }
  Token take() {
    Token t = tok_;
    advance();
    return t;
  }
  int line() const { return tok_.line; }

 private:
  void advance() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        // Comment: "// tag: X" is significant, everything else is skipped.
        std::size_t eol = text_.find('\n', pos_);
        if (eol == std::string::npos) eol = text_.size();
        std::string_view body =
            trim(std::string_view(text_).substr(pos_ + 2, eol - pos_ - 2));
        if (starts_with(body, "tag: ")) {
          tok_ = {Token::kTag, std::string(body.substr(5)), 0, line_};
          pos_ = eol;
          return;
        }
        pos_ = eol;
      } else {
        break;
      }
    }
    if (pos_ >= text_.size()) {
      tok_ = {Token::kEnd, "", 0, line_};
      return;
    }
    const char c = text_[pos_];
    if (c == '\\') {
      // Escaped identifier: up to the next whitespace.
      std::size_t end = pos_ + 1;
      while (end < text_.size() &&
             !std::isspace(static_cast<unsigned char>(text_[end])))
        ++end;
      tok_ = {Token::kIdent, text_.substr(pos_ + 1, end - pos_ - 1), 0, line_};
      pos_ = end;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '_' || text_[end] == '$'))
        ++end;
      tok_ = {Token::kIdent, text_.substr(pos_, end - pos_), 0, line_};
      pos_ = end;
      return;
    }
    tok_ = {Token::kPunct, std::string(1, c), c, line_};
    ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token tok_;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  Netlist parse() {
    expect_ident("module");
    Netlist nl(take_ident("module name"));
    expect_punct('(');
    if (!at_punct(')')) {
      parse_port_decl(nl);
      while (at_punct(',')) {
        lex_.take();
        parse_port_decl(nl);
      }
    }
    expect_punct(')');
    expect_punct(';');

    while (!at_ident("endmodule")) {
      const Token t = lex_.take();
      if (t.kind != Token::kIdent) fail("expected declaration or instance");
      if (t.text == "input") {
        declare_input(nl, take_ident("port name"));
        expect_punct(';');
      } else if (t.text == "output") {
        declare_output(take_ident("port name"));
        expect_punct(';');
      } else if (t.text == "wire") {
        declare_wire(nl, take_ident("wire name"));
        expect_punct(';');
      } else if (t.text == "assign") {
        const std::string lhs = take_ident("assign target");
        expect_punct('=');
        const std::string rhs = take_ident("assign source");
        expect_punct(';');
        assigns_.emplace_back(lhs, rhs);
      } else {
        parse_instance(nl, t.text);
      }
    }
    lex_.take();  // endmodule

    // Connect output ports via their assigns.
    for (const std::string& name : output_order_) {
      const auto it = assign_map().find(name);
      if (it == assign_map().end())
        fail("output '" + name + "' has no assign");
      nl.add_output(name, net_of(it->second));
    }
    const auto problems = nl.validate();
    if (!problems.empty()) fail("invalid netlist: " + problems.front());
    return nl;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw VerilogError(msg, lex_.peek().line);
  }
  bool at_punct(char c) const {
    return lex_.peek().kind == Token::kPunct && lex_.peek().punct == c;
  }
  bool at_ident(const std::string& s) const {
    return lex_.peek().kind == Token::kIdent && lex_.peek().text == s;
  }
  void expect_punct(char c) {
    if (!at_punct(c)) fail(std::string("expected '") + c + "'");
    lex_.take();
  }
  void expect_ident(const std::string& s) {
    if (!at_ident(s)) fail("expected '" + s + "'");
    lex_.take();
  }
  std::string take_ident(const std::string& what) {
    if (lex_.peek().kind != Token::kIdent) fail("expected " + what);
    return lex_.take().text;
  }

  void parse_port_decl(Netlist& nl) {
    const std::string dir = take_ident("port direction");
    const std::string name = take_ident("port name");
    if (dir == "input")
      declare_input(nl, name);
    else if (dir == "output")
      declare_output(name);
    else
      fail("bad port direction '" + dir + "'");
  }

  void declare_input(Netlist& nl, const std::string& name) {
    if (nets_.contains(name)) fail("duplicate net '" + name + "'");
    nets_[name] = nl.add_input(name);
  }
  void declare_output(const std::string& name) { output_order_.push_back(name); }
  void declare_wire(Netlist& nl, const std::string& name) {
    if (nets_.contains(name)) fail("duplicate net '" + name + "'");
    nets_[name] = nl.add_net(name);
  }
  NetId net_of(const std::string& name) {
    const auto it = nets_.find(name);
    if (it == nets_.end()) fail("undeclared net '" + name + "'");
    return it->second;
  }

  void parse_instance(Netlist& nl, const std::string& type_name_str) {
    CellType type;
    if (!type_from_name(type_name_str, type) || is_port(type))
      fail("unknown cell type '" + type_name_str + "'");
    const std::string inst = take_ident("instance name");
    expect_punct('(');
    NetId out = kInvalidId;
    std::vector<NetId> ins(static_cast<std::size_t>(num_inputs(type)), kInvalidId);
    bool first = true;
    while (!at_punct(')')) {
      if (!first) expect_punct(',');
      first = false;
      expect_punct('.');
      const std::string pin = take_ident("pin name");
      expect_punct('(');
      const NetId net = net_of(take_ident("net name"));
      expect_punct(')');
      bool found = false;
      for (int p = 0; p <= num_inputs(type); ++p) {
        if (p == 0 && !has_output(type)) continue;
        if (pin_name(type, p) == pin) {
          if (p == 0)
            out = net;
          else
            ins[static_cast<std::size_t>(p - 1)] = net;
          found = true;
          break;
        }
      }
      if (!found) fail("cell " + type_name_str + " has no pin '" + pin + "'");
    }
    expect_punct(')');
    expect_punct(';');
    if (has_output(type) && out == kInvalidId)
      fail("instance '" + inst + "' missing output pin");
    for (NetId n : ins)
      if (n == kInvalidId) fail("instance '" + inst + "' has unconnected input");
    const CellId cell = nl.add_cell(type, inst, out, std::move(ins));
    if (lex_.peek().kind == Token::kTag) nl.set_tag(cell, lex_.take().text);
  }

  const std::unordered_map<std::string, std::string>& assign_map() {
    if (assign_map_.empty() && !assigns_.empty())
      for (const auto& [lhs, rhs] : assigns_) assign_map_[lhs] = rhs;
    return assign_map_;
  }

  Lexer lex_;
  std::unordered_map<std::string, NetId> nets_;
  std::vector<std::string> output_order_;
  std::vector<std::pair<std::string, std::string>> assigns_;
  std::unordered_map<std::string, std::string> assign_map_;
};

}  // namespace

Netlist parse_verilog(const std::string& text) { return Parser(text).parse(); }

}  // namespace olfui
