// olfui/atpg: PODEM test generation with untestability proof.
//
// The structural engine (olfui_sta) proves faults untestable from tied
// values and lost observability; PODEM completes the picture for faults
// that are redundant for deeper logical reasons ("UR" class), and doubles
// as the validation oracle used by the test suite: a fault PODEM proves
// untestable must never be detected by any pattern, and a generated test
// must actually detect its target fault.
//
// The search runs on the full-scan combinational frame: primary inputs and
// flop Q nets are controllable (pseudo-PIs); primary outputs and flop
// data-side input pins are observable (pseudo-POs). An optional
// MissionConfig fixes assumed-constant nets (they become non-decidable),
// restricting the frame to the mission configuration of the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fault/universe.hpp"
#include "netlist/netlist.hpp"
#include "sim/logic.hpp"
#include "sta/sta.hpp"

namespace olfui {

enum class AtpgOutcome : std::uint8_t {
  kTestFound,
  kUntestable,  ///< search space exhausted: proven redundant
  kAborted,     ///< backtrack limit hit: unresolved
};

/// A combinational test pattern: values for every controllable point
/// (primary inputs and flop outputs), keyed by net id. Unassigned points
/// are don't-care and default to 0.
struct AtpgPattern {
  std::unordered_map<NetId, bool> assignment;
};

struct AtpgResult {
  AtpgOutcome outcome = AtpgOutcome::kAborted;
  std::optional<AtpgPattern> pattern;  ///< set when outcome == kTestFound
  std::size_t backtracks = 0;
};

struct PodemOptions {
  std::size_t backtrack_limit = 20000;
  /// Mission overlay: assumed-constant nets are fixed and undecidable,
  /// unobserved outputs are removed from the pseudo-PO set.
  const MissionConfig* mission = nullptr;
};

class Podem {
 public:
  using Options = PodemOptions;

  Podem(const Netlist& nl, const FaultUniverse& universe,
        Options opts = Options{});

  /// Attempts to generate a test for `fault` on the full-scan frame.
  AtpgResult run(const Fault& fault);
  AtpgResult run(FaultId f) { return run(universe_->fault(f)); }

  /// The controllable points of the frame (PI and flop-Q nets).
  const std::vector<NetId>& controllable() const { return controllable_; }

 private:
  struct V5 {
    Logic g = Logic::VX;  // good value
    Logic f = Logic::VX;  // faulty value
  };

  void imply(const Fault& fault);
  bool detected() const;
  /// Value of cell input pin i, honouring a branch fault on that pin.
  V5 pin_view(const Fault& fault, CellId cell, std::size_t i) const;
  /// Divergence of that pin view (a D or D-bar literal).
  bool pin_divergent(const Fault& fault, CellId cell, std::size_t i) const;
  /// Fault definitely unexcitable or unpropagatable under current assignment.
  bool dead_end(const Fault& fault) const;
  /// Next objective (net, value) or nullopt when none exists.
  std::optional<std::pair<NetId, bool>> objective(const Fault& fault) const;
  /// Maps an objective to an unassigned controllable point + value.
  std::optional<std::pair<NetId, bool>> backtrace(NetId net, bool value) const;

  const Netlist* nl_;
  const FaultUniverse* universe_;
  Options opts_;
  std::vector<CellId> order_;
  std::vector<NetId> controllable_;
  std::vector<std::uint8_t> is_controllable_;    // per net
  std::vector<std::uint8_t> fixed_;              // per net: mission constant
  std::vector<Logic> fixed_value_;               // per net
  std::vector<Pin> observable_pins_;
  std::vector<V5> value_;                        // per net
  std::vector<Logic> assigned_;                  // per net: decision/X
  std::vector<V5> obs_value_;                    // per observable pin index
};

}  // namespace olfui
