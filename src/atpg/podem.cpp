#include "atpg/podem.hpp"

#include <cassert>
#include <stdexcept>

namespace olfui {

namespace {
/// True when both halves are known and differ (a D or D-bar literal).
bool divergent(Logic g, Logic f) {
  return is_known(g) && is_known(f) && g != f;
}
}  // namespace

Podem::Podem(const Netlist& nl, const FaultUniverse& universe, Options opts)
    : nl_(&nl), universe_(&universe), opts_(opts) {
  if (!nl.levelize(order_))
    throw std::runtime_error("Podem: combinational loop");

  is_controllable_.assign(nl.num_nets(), 0);
  fixed_.assign(nl.num_nets(), 0);
  fixed_value_.assign(nl.num_nets(), Logic::VX);
  std::vector<std::uint8_t> unobserved(nl.num_cells(), 0);
  if (opts_.mission) {
    for (auto [net, v] : opts_.mission->constants) {
      fixed_[net] = 1;
      fixed_value_[net] = from_bool(v);
    }
    for (CellId c : opts_.mission->unobserved_outputs) unobserved[c] = 1;
  }
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.type == CellType::kInput || is_sequential(c.type)) {
      // Pseudo-PI (full-scan frame). Mission constants stay fixed.
      if (!fixed_[c.out]) {
        is_controllable_[c.out] = 1;
        controllable_.push_back(c.out);
      }
      if (is_sequential(c.type)) {
        observable_pins_.push_back({id, 1});  // D pin is a pseudo-PO
        if (c.type == CellType::kDffR) observable_pins_.push_back({id, 2});
      }
    } else if (c.type == CellType::kOutput && !unobserved[id]) {
      observable_pins_.push_back({id, 1});
    } else if (is_tie(c.type)) {
      fixed_[c.out] = 1;
      fixed_value_[c.out] = from_bool(c.type == CellType::kTie1);
    }
  }
  value_.assign(nl.num_nets(), {});
  assigned_.assign(nl.num_nets(), Logic::VX);
  obs_value_.assign(observable_pins_.size(), {});
}

void Podem::imply(const Fault& fault) {
  const Cell& fcell = nl_->cell(fault.pin.cell);
  const Logic sa = from_bool(fault.sa1);

  // Source values: controllable nets take their decision value, fixed nets
  // their constant; everything else X until swept.
  for (NetId n = 0; n < nl_->num_nets(); ++n) {
    Logic v = Logic::VX;
    if (fixed_[n])
      v = fixed_value_[n];
    else if (is_controllable_[n])
      v = assigned_[n];
    value_[n] = {v, v};
  }
  // Output-pin fault on a source (PI, flop Q, tie): faulty half forced.
  if (fault.pin.pin == 0 &&
      (fcell.type == CellType::kInput || is_sequential(fcell.type) ||
       is_tie(fcell.type))) {
    value_[fcell.out].f = sa;
  }

  Logic gin[4], fin[4];
  for (CellId id : order_) {
    const Cell& c = nl_->cell(id);
    if (c.type == CellType::kOutput) continue;
    const int n = static_cast<int>(c.ins.size());
    for (int i = 0; i < n; ++i) {
      gin[i] = value_[c.ins[i]].g;
      fin[i] = value_[c.ins[i]].f;
    }
    if (id == fault.pin.cell && fault.pin.pin >= 1)
      fin[fault.pin.pin - 1] = sa;  // branch fault: this cell's view only
    V5 out;
    out.g = eval_ternary(c.type, gin, n);
    out.f = eval_ternary(c.type, fin, n);
    if (id == fault.pin.cell && fault.pin.pin == 0) out.f = sa;
    value_[c.out] = out;
  }

  // Observable pin values, applying branch faults sitting on pseudo-POs.
  for (std::size_t i = 0; i < observable_pins_.size(); ++i) {
    const Pin p = observable_pins_[i];
    const NetId n = nl_->pin_net(p);
    V5 v = value_[n];
    if (p == Pin{fault.pin.cell, fault.pin.pin}) v.f = sa;
    obs_value_[i] = v;
  }
}

bool Podem::detected() const {
  for (const V5& v : obs_value_)
    if (divergent(v.g, v.f)) return true;
  return false;
}

Podem::V5 Podem::pin_view(const Fault& fault, CellId cell, std::size_t i) const {
  V5 v = value_[nl_->cell(cell).ins[i]];
  // A branch fault diverges only within its own cell's view of the net.
  if (cell == fault.pin.cell && static_cast<int>(i) + 1 == fault.pin.pin)
    v.f = from_bool(fault.sa1);
  return v;
}

bool Podem::pin_divergent(const Fault& fault, CellId cell, std::size_t i) const {
  const V5 v = pin_view(fault, cell, i);
  return divergent(v.g, v.f);
}

bool Podem::dead_end(const Fault& fault) const {
  const NetId site = nl_->pin_net(fault.pin);
  const Logic g = value_[site].g;
  const Logic sa = from_bool(fault.sa1);
  if (is_known(g) && g == sa) return true;  // definitely unexcitable
  if (!is_known(g)) return false;           // excitation still open
  if (detected()) return false;
  // Excited: dead end iff the D-frontier is empty.
  for (CellId id : order_) {
    const Cell& c = nl_->cell(id);
    if (c.type == CellType::kOutput) continue;
    const V5 out = value_[c.out];
    if (is_known(out.g) && is_known(out.f)) continue;
    for (std::size_t i = 0; i < c.ins.size(); ++i) {
      if (pin_divergent(fault, id, i)) return false;
    }
  }
  return true;
}

std::optional<std::pair<NetId, bool>> Podem::objective(const Fault& fault) const {
  const NetId site = nl_->pin_net(fault.pin);
  if (!is_known(value_[site].g))
    return std::make_pair(site, !fault.sa1);  // excite the fault
  // Propagate: pick a D-frontier cell and set an unknown side input to the
  // cell's non-controlling value.
  for (CellId id : order_) {
    const Cell& c = nl_->cell(id);
    if (c.type == CellType::kOutput) continue;
    const V5 out = value_[c.out];
    if (is_known(out.g) && is_known(out.f)) continue;
    int div_pin = -1;
    for (std::size_t i = 0; i < c.ins.size(); ++i) {
      if (pin_divergent(fault, id, i)) {
        div_pin = static_cast<int>(i);
        break;
      }
    }
    if (div_pin < 0) continue;
    switch (c.type) {
      case CellType::kAnd2:
      case CellType::kAnd3:
      case CellType::kAnd4:
      case CellType::kNand2:
      case CellType::kNand3:
      case CellType::kNand4:
        for (std::size_t i = 0; i < c.ins.size(); ++i)
          if (!is_known(value_[c.ins[i]].g))
            return std::make_pair(c.ins[i], true);
        break;
      case CellType::kOr2:
      case CellType::kOr3:
      case CellType::kOr4:
      case CellType::kNor2:
      case CellType::kNor3:
      case CellType::kNor4:
        for (std::size_t i = 0; i < c.ins.size(); ++i)
          if (!is_known(value_[c.ins[i]].g))
            return std::make_pair(c.ins[i], false);
        break;
      case CellType::kXor2:
      case CellType::kXnor2:
        for (std::size_t i = 0; i < c.ins.size(); ++i)
          if (!is_known(value_[c.ins[i]].g))
            return std::make_pair(c.ins[i], false);
        break;
      case CellType::kMux2: {
        const V5 a = pin_view(fault, id, kMuxA);
        const V5 b = pin_view(fault, id, kMuxB);
        const V5 s = pin_view(fault, id, kMuxS);
        if (divergent(s.g, s.f)) {
          // out.g reads the s.g-selected input, out.f the s.f-selected one;
          // propagation needs those two values to differ.
          const int gsel = s.g == Logic::V1 ? kMuxB : kMuxA;
          const int fsel = s.f == Logic::V1 ? kMuxB : kMuxA;
          const Logic gv = (gsel == kMuxA ? a : b).g;
          const Logic fv = (fsel == kMuxA ? a : b).f;
          if (!is_known(gv) && is_known(fv))
            return std::make_pair(c.ins[gsel], fv == Logic::V0);
          if (is_known(gv) && !is_known(fv))
            return std::make_pair(c.ins[fsel], gv == Logic::V0);
          if (!is_known(gv) && !is_known(fv))
            return std::make_pair(c.ins[gsel], true);
          // Both known: either already propagating or blocked here.
        } else if (!is_known(s.g)) {
          if (divergent(a.g, a.f)) return std::make_pair(c.ins[kMuxS], false);
          if (divergent(b.g, b.f)) return std::make_pair(c.ins[kMuxS], true);
        }
        // Select known and equal: a divergent unselected input is blocked.
        break;
      }
      default:
        break;  // BUF/NOT propagate unconditionally: no objective needed
    }
  }
  return std::nullopt;
}

std::optional<std::pair<NetId, bool>> Podem::backtrace(NetId net, bool value) const {
  bool v = value;
  NetId n = net;
  for (std::size_t guard = 0; guard < nl_->num_nets() + 1; ++guard) {
    if (is_controllable_[n]) {
      if (is_known(assigned_[n])) return std::nullopt;  // already decided
      return std::make_pair(n, v);
    }
    const CellId drv = nl_->net(n).driver;
    if (drv == kInvalidId) return std::nullopt;
    const Cell& c = nl_->cell(drv);
    // Pick an input with unknown good value and the target it must take.
    int pick = -1;
    bool target = v;
    switch (c.type) {
      case CellType::kBuf:
        pick = 0;
        target = v;
        break;
      case CellType::kNot:
        pick = 0;
        target = !v;
        break;
      case CellType::kAnd2:
      case CellType::kAnd3:
      case CellType::kAnd4:
      case CellType::kNand2:
      case CellType::kNand3:
      case CellType::kNand4: {
        const bool and_target =
            (c.type == CellType::kAnd2 || c.type == CellType::kAnd3 ||
             c.type == CellType::kAnd4)
                ? v
                : !v;
        for (std::size_t i = 0; i < c.ins.size(); ++i)
          if (!is_known(value_[c.ins[i]].g)) {
            pick = static_cast<int>(i);
            target = and_target;
            break;
          }
        break;
      }
      case CellType::kOr2:
      case CellType::kOr3:
      case CellType::kOr4:
      case CellType::kNor2:
      case CellType::kNor3:
      case CellType::kNor4: {
        const bool or_target =
            (c.type == CellType::kOr2 || c.type == CellType::kOr3 ||
             c.type == CellType::kOr4)
                ? v
                : !v;
        for (std::size_t i = 0; i < c.ins.size(); ++i)
          if (!is_known(value_[c.ins[i]].g)) {
            pick = static_cast<int>(i);
            target = or_target;
            break;
          }
        break;
      }
      case CellType::kXor2:
      case CellType::kXnor2: {
        const bool invert = c.type == CellType::kXnor2;
        const V5 a = value_[c.ins[0]];
        const V5 b = value_[c.ins[1]];
        if (!is_known(a.g)) {
          pick = 0;
          target = is_known(b.g) ? (v != (b.g == Logic::V1)) != invert
                                 : v != invert;
        } else if (!is_known(b.g)) {
          pick = 1;
          target = (v != (a.g == Logic::V1)) != invert;
        }
        break;
      }
      case CellType::kMux2: {
        const V5 s = value_[c.ins[kMuxS]];
        if (is_known(s.g)) {
          pick = s.g == Logic::V1 ? kMuxB : kMuxA;
          target = v;
        } else {
          const V5 a = value_[c.ins[kMuxA]];
          const V5 b = value_[c.ins[kMuxB]];
          if (is_known(a.g) && a.g == from_bool(v)) {
            pick = kMuxS;
            target = false;
          } else if (is_known(b.g) && b.g == from_bool(v)) {
            pick = kMuxS;
            target = true;
          } else if (!is_known(a.g)) {
            pick = kMuxA;
            target = v;
          } else {
            pick = kMuxB;
            target = v;
          }
        }
        break;
      }
      default:
        return std::nullopt;  // flop/tie/port reached: nothing to decide
    }
    if (pick < 0) return std::nullopt;
    n = c.ins[static_cast<std::size_t>(pick)];
    v = target;
  }
  return std::nullopt;
}

AtpgResult Podem::run(const Fault& fault) {
  AtpgResult result;
  for (NetId n : controllable_) assigned_[n] = Logic::VX;

  struct Decision {
    NetId pi;
    bool flipped;
  };
  std::vector<Decision> stack;

  while (true) {
    imply(fault);
    if (detected()) {
      result.outcome = AtpgOutcome::kTestFound;
      AtpgPattern pat;
      for (NetId n : controllable_)
        if (is_known(assigned_[n]))
          pat.assignment[n] = assigned_[n] == Logic::V1;
      result.pattern = std::move(pat);
      return result;
    }
    bool need_backtrack = dead_end(fault);
    if (!need_backtrack) {
      const auto obj = objective(fault);
      if (!obj) {
        need_backtrack = true;
      } else {
        const auto decision = backtrace(obj->first, obj->second);
        if (!decision) {
          need_backtrack = true;
        } else {
          assigned_[decision->first] = from_bool(decision->second);
          stack.push_back({decision->first, false});
          continue;
        }
      }
    }
    // Backtrack: flip the deepest unflipped decision.
    ++result.backtracks;
    if (result.backtracks > opts_.backtrack_limit) {
      result.outcome = AtpgOutcome::kAborted;
      return result;
    }
    while (!stack.empty() && stack.back().flipped) {
      assigned_[stack.back().pi] = Logic::VX;
      stack.pop_back();
    }
    if (stack.empty()) {
      result.outcome = AtpgOutcome::kUntestable;  // search space exhausted
      return result;
    }
    Decision& d = stack.back();
    assigned_[d.pi] = logic_not(assigned_[d.pi]);
    d.flipped = true;
  }
}

}  // namespace olfui
