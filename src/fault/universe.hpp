// olfui/fault: the stuck-at fault universe.
//
// Following commercial practice (and the paper's fault accounting, e.g.
// "214,930 stuck-at faults" for the e200z0-class core), the universe holds
// two faults (s-a-0 / s-a-1) on EVERY cell pin: gate output pins (stems),
// gate input pins (fanout branches), and top-level port pins via the
// kInput/kOutput pseudo-cells. Fault ids are dense and stable for a given
// netlist, so analysis passes can exchange BitVec fault sets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"

namespace olfui {

using FaultId = std::uint32_t;

struct Fault {
  Pin pin;
  bool sa1 = false;
};

class FaultUniverse {
 public:
  explicit FaultUniverse(const Netlist& nl);

  std::size_t size() const { return faults_.size(); }
  const Fault& fault(FaultId id) const { return faults_[id]; }
  /// Dense id of the stuck-at-`sa1` fault at `pin`.
  FaultId id_of(Pin pin, bool sa1) const;
  /// Both fault ids at a pin, s-a-0 first.
  std::pair<FaultId, FaultId> ids_at(Pin pin) const;

  /// "u_alu/u_sum_3/A s-a-1" style name for reports.
  std::string fault_name(FaultId id) const;

  /// Cone metadata: the net where the fault's effect enters the circuit.
  /// Stem and branch faults of a cell share it — a branch fault corrupts
  /// only its own cell's evaluation, so the effect surfaces on the cell's
  /// output net just like a stem fault's. Output-port cells (which drive
  /// nothing) map to the net they read; kInvalidId only for a cell with
  /// neither. The cone-aware batch scheduler keys fault grouping on this
  /// net's ConeAnalysis signature (sim/packed.hpp).
  NetId effect_net(FaultId id) const;

  const Netlist& netlist() const { return *nl_; }

  /// Structural equivalence collapsing (BUF/NOT transparency, AND/NAND/
  /// OR/NOR controlling-input classes, single-fanout wire equivalence).
  /// Returns for each fault the id of its class representative.
  std::vector<FaultId> collapse_map() const;
  /// Number of distinct representatives under collapse_map().
  std::size_t collapsed_count() const;

  /// Set of all fault ids lying on pins of `cell`.
  void faults_of_cell(CellId cell, std::vector<FaultId>& out) const;

 private:
  const Netlist* nl_;
  std::vector<Fault> faults_;
  std::vector<std::uint32_t> cell_base_;  // first fault id of each cell
};

}  // namespace olfui
