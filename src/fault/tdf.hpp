// olfui/fault: the transition-delay (TDF) view of the fault universe.
//
// The paper's §5 extension ("extend the proposed technique to other fault
// models") reuses the stuck-at site enumeration: every pin carries two
// transition faults on the same dense ids as its stuck-at pair — the
// s-a-0 slot (even id within the pin) is read as slow-to-rise, the s-a-1
// slot as slow-to-fall. Sharing ids means FaultList bookkeeping, BitVec
// exchanges, collapse maps, and the campaign orchestrator's sharding all
// work for either model; only injection semantics and report labels
// change, and sta.hpp's classify_transition_faults prunes the sites that
// cannot launch (a mission constant of either polarity kills both
// transition faults of its pin).
//
// Simulation semantics (the launch/capture pair graded by
// SequentialFaultSimulator::run_tdf_batch): a slow-to-rise fault misses
// the capture clock edge after the good machine launches a 0->1 at the
// site, so during that capture cycle the site still carries the
// pre-transition value 0 — which is exactly the stuck value of the fault's
// shared stuck-at slot. Slow-to-fall is the 1->0 dual.
#pragma once

#include <string>
#include <string_view>

#include "fault/universe.hpp"

namespace olfui {

/// True if `f`'s shared slot reads as slow-to-rise under kTransition
/// (the s-a-0 slot: the capture cycle holds the site at 0).
inline bool tdf_slow_to_rise(const Fault& f) { return !f.sa1; }

/// The stuck value forced at the site during a capture cycle: the
/// pre-transition value, which coincides with the shared stuck-at slot's
/// polarity (slow-to-rise holds 0, slow-to-fall holds 1).
inline bool tdf_capture_value(const Fault& f) { return f.sa1; }

/// Report label of a transition class: "str" / "stf" (the TDF analogue of
/// the campaign's "sa0" / "sa1" polarity classes).
std::string_view tdf_class_name(const Fault& f);

/// "u_alu/u_sum_3/A slow-to-rise" style name for reports — the transition
/// reading of FaultUniverse::fault_name.
std::string tdf_fault_name(const FaultUniverse& universe, FaultId id);

/// Net whose good-machine value is watched for the launch transition: the
/// output net for stem (pin 0) faults, the driving net for branch faults.
NetId tdf_site_net(const Netlist& nl, const Fault& f);

}  // namespace olfui
