#include "fault/universe.hpp"

#include <cassert>
#include <numeric>

#include "util/strings.hpp"

namespace olfui {

FaultUniverse::FaultUniverse(const Netlist& nl) : nl_(&nl) {
  cell_base_.resize(nl.num_cells());
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    cell_base_[id] = static_cast<std::uint32_t>(faults_.size());
    const Cell& c = nl.cell(id);
    if (has_output(c.type)) {
      faults_.push_back({{id, 0}, false});
      faults_.push_back({{id, 0}, true});
    }
    for (std::size_t i = 0; i < c.ins.size(); ++i) {
      faults_.push_back({{id, static_cast<std::uint8_t>(i + 1)}, false});
      faults_.push_back({{id, static_cast<std::uint8_t>(i + 1)}, true});
    }
  }
}

FaultId FaultUniverse::id_of(Pin pin, bool sa1) const {
  const Cell& c = nl_->cell(pin.cell);
  std::uint32_t ofs = 0;
  if (pin.pin == 0) {
    assert(has_output(c.type));
  } else {
    ofs = (has_output(c.type) ? 2u : 0u) + 2u * (pin.pin - 1);
  }
  return cell_base_[pin.cell] + ofs + (sa1 ? 1u : 0u);
}

std::pair<FaultId, FaultId> FaultUniverse::ids_at(Pin pin) const {
  const FaultId f0 = id_of(pin, false);
  return {f0, f0 + 1};
}

std::string FaultUniverse::fault_name(FaultId id) const {
  const Fault& f = faults_[id];
  const Cell& c = nl_->cell(f.pin.cell);
  return format("%s/%s s-a-%d", c.name.c_str(),
                std::string(pin_name(c.type, f.pin.pin)).c_str(), f.sa1 ? 1 : 0);
}

NetId FaultUniverse::effect_net(FaultId id) const {
  const Cell& c = nl_->cell(faults_[id].pin.cell);
  if (c.out != kInvalidId) return c.out;
  return c.ins.empty() ? kInvalidId : c.ins[0];
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

std::vector<FaultId> FaultUniverse::collapse_map() const {
  UnionFind uf(faults_.size());
  const Netlist& nl = *nl_;
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const Cell& c = nl.cell(id);
    // Gate-local input/output equivalences.
    for (std::size_t i = 0; i < c.ins.size(); ++i) {
      const Pin in_pin{id, static_cast<std::uint8_t>(i + 1)};
      switch (c.type) {
        case CellType::kBuf:
          uf.unite(id_of(in_pin, false), id_of({id, 0}, false));
          uf.unite(id_of(in_pin, true), id_of({id, 0}, true));
          break;
        case CellType::kNot:
          uf.unite(id_of(in_pin, false), id_of({id, 0}, true));
          uf.unite(id_of(in_pin, true), id_of({id, 0}, false));
          break;
        case CellType::kAnd2:
        case CellType::kAnd3:
        case CellType::kAnd4:
          uf.unite(id_of(in_pin, false), id_of({id, 0}, false));
          break;
        case CellType::kNand2:
        case CellType::kNand3:
        case CellType::kNand4:
          uf.unite(id_of(in_pin, false), id_of({id, 0}, true));
          break;
        case CellType::kOr2:
        case CellType::kOr3:
        case CellType::kOr4:
          uf.unite(id_of(in_pin, true), id_of({id, 0}, true));
          break;
        case CellType::kNor2:
        case CellType::kNor3:
        case CellType::kNor4:
          uf.unite(id_of(in_pin, true), id_of({id, 0}, false));
          break;
        default:
          break;  // XOR/XNOR/MUX/flops: no structural equivalence
      }
    }
  }
  // Single-fanout wire equivalence: stem fault == sole branch fault.
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    if (net.driver == kInvalidId || net.fanout.size() != 1) continue;
    if (!has_output(nl.cell(net.driver).type)) continue;
    const Pin stem{net.driver, 0};
    const Pin branch = net.fanout[0];
    uf.unite(id_of(stem, false), id_of(branch, false));
    uf.unite(id_of(stem, true), id_of(branch, true));
  }
  std::vector<FaultId> map(faults_.size());
  for (FaultId f = 0; f < faults_.size(); ++f) map[f] = uf.find(f);
  return map;
}

std::size_t FaultUniverse::collapsed_count() const {
  const auto map = collapse_map();
  std::size_t n = 0;
  for (FaultId f = 0; f < map.size(); ++f)
    if (map[f] == f) ++n;
  return n;
}

void FaultUniverse::faults_of_cell(CellId cell, std::vector<FaultId>& out) const {
  const Cell& c = nl_->cell(cell);
  const std::uint32_t base = cell_base_[cell];
  const std::uint32_t count =
      2u * ((has_output(c.type) ? 1u : 0u) + static_cast<std::uint32_t>(c.ins.size()));
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(base + i);
}

}  // namespace olfui
