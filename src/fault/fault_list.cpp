#include "fault/fault_list.hpp"

#include "util/strings.hpp"

namespace olfui {

std::string_view to_string(UntestableKind k) {
  switch (k) {
    case UntestableKind::kNone: return "none";
    case UntestableKind::kTied: return "tied";
    case UntestableKind::kUnobservable: return "unobservable";
    case UntestableKind::kRedundant: return "redundant";
  }
  return "?";
}

std::string_view to_string(OnlineSource s) {
  switch (s) {
    case OnlineSource::kNone: return "none";
    case OnlineSource::kStructural: return "structural";
    case OnlineSource::kScan: return "scan";
    case OnlineSource::kDebugControl: return "debug-control";
    case OnlineSource::kDebugObserve: return "debug-observe";
    case OnlineSource::kMemoryMap: return "memory-map";
  }
  return "?";
}

std::string_view to_string(FaultModel m) {
  switch (m) {
    case FaultModel::kStuckAt: return "stuck_at";
    case FaultModel::kTransition: return "transition";
  }
  return "?";
}

FaultList::FaultList(const FaultUniverse& universe)
    : universe_(&universe),
      detect_(universe.size(), DetectState::kUndetected),
      kind_(universe.size(), UntestableKind::kNone),
      source_(universe.size(), OnlineSource::kNone) {}

void FaultList::mark_untestable(FaultId f, UntestableKind k, OnlineSource s) {
  if (kind_[f] == UntestableKind::kNone) kind_[f] = k;
  if (source_[f] == OnlineSource::kNone) source_[f] = s;
}

BitVec FaultList::untestable_mask() const {
  BitVec m(size());
  for (FaultId f = 0; f < size(); ++f)
    if (kind_[f] != UntestableKind::kNone) m.set(f, true);
  return m;
}

BitVec FaultList::source_mask(OnlineSource s) const {
  BitVec m(size());
  for (FaultId f = 0; f < size(); ++f)
    if (source_[f] == s) m.set(f, true);
  return m;
}

std::size_t FaultList::count_untestable() const {
  std::size_t n = 0;
  for (auto k : kind_)
    if (k != UntestableKind::kNone) ++n;
  return n;
}

std::size_t FaultList::count_source(OnlineSource s) const {
  std::size_t n = 0;
  for (auto v : source_)
    if (v == s) ++n;
  return n;
}

std::size_t FaultList::count_detected() const {
  std::size_t n = 0;
  for (auto d : detect_)
    if (d == DetectState::kDetected) ++n;
  return n;
}

double FaultList::raw_coverage() const {
  return size() == 0 ? 0.0
                     : static_cast<double>(count_detected()) /
                           static_cast<double>(size());
}

double FaultList::pruned_coverage() const {
  std::size_t detected = 0, testable = 0;
  for (FaultId f = 0; f < size(); ++f) {
    if (kind_[f] != UntestableKind::kNone) continue;
    ++testable;
    if (detect_[f] == DetectState::kDetected) ++detected;
  }
  return testable == 0 ? 1.0
                       : static_cast<double>(detected) /
                             static_cast<double>(testable);
}

std::string FaultList::summary() const {
  const double total = static_cast<double>(size());
  std::string out;
  out += format("fault universe: %s faults\n", with_commas(size()).c_str());
  for (OnlineSource s :
       {OnlineSource::kStructural, OnlineSource::kScan, OnlineSource::kDebugControl,
        OnlineSource::kDebugObserve, OnlineSource::kMemoryMap}) {
    const std::size_t n = count_source(s);
    out += format("  %-14s %8s  (%.1f%%)\n", std::string(to_string(s)).c_str(),
                  with_commas(n).c_str(), total > 0 ? 100.0 * n / total : 0.0);
  }
  const std::size_t u = count_untestable();
  out += format("  %-14s %8s  (%.1f%%)\n", "TOTAL", with_commas(u).c_str(),
                total > 0 ? 100.0 * u / total : 0.0);
  return out;
}

}  // namespace olfui
