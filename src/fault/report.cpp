#include "fault/report.hpp"

#include <algorithm>
#include <map>

#include "campaign/report.hpp"
#include "util/strings.hpp"

namespace olfui {

std::string to_csv(const FaultList& fl, bool untestable_only) {
  const FaultUniverse& u = fl.universe();
  const Netlist& nl = u.netlist();
  std::string out = "fault_id,cell,pin,stuck_at,detected,untestable_kind,online_source\n";
  for (FaultId f = 0; f < u.size(); ++f) {
    const UntestableKind kind = fl.untestable_kind(f);
    if (untestable_only && kind == UntestableKind::kNone) continue;
    const Fault& fault = u.fault(f);
    const Cell& c = nl.cell(fault.pin.cell);
    out += format(
        "%u,%s,%s,%d,%d,%s,%s\n", f, c.name.c_str(),
        std::string(pin_name(c.type, fault.pin.pin)).c_str(), fault.sa1 ? 1 : 0,
        fl.detect_state(f) == DetectState::kDetected ? 1 : 0,
        std::string(to_string(kind)).c_str(),
        std::string(to_string(fl.online_source(f))).c_str());
  }
  return out;
}

std::string to_json_summary(const FaultList& fl) {
  // Thin compatibility shim: the schema (and the document model behind
  // it) is owned by campaign/report's fault_summary_to_json, so the two
  // report stacks cannot drift.
  return fault_summary_to_json(fl).dump(2) + "\n";
}

std::vector<ModuleBreakdownRow> module_breakdown(const FaultList& fl) {
  const FaultUniverse& u = fl.universe();
  const Netlist& nl = u.netlist();
  std::map<std::string, ModuleBreakdownRow> rows;
  for (FaultId f = 0; f < u.size(); ++f) {
    const Cell& c = nl.cell(u.fault(f).pin.cell);
    const auto slash = c.name.find('/');
    std::string key =
        slash == std::string::npos ? std::string("<top>") : c.name.substr(0, slash);
    // Use two levels for the core ("core/rf", "core/btb", ...).
    if (slash != std::string::npos) {
      const auto slash2 = c.name.find('/', slash + 1);
      if (slash2 != std::string::npos) key = c.name.substr(0, slash2);
    }
    ModuleBreakdownRow& row = rows[key];
    row.module = key;
    ++row.faults;
    if (fl.untestable_kind(f) != UntestableKind::kNone) ++row.untestable;
    if (fl.detect_state(f) == DetectState::kDetected) ++row.detected;
  }
  std::vector<ModuleBreakdownRow> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.untestable != b.untestable ? a.untestable > b.untestable
                                        : a.module < b.module;
  });
  return out;
}

std::string module_breakdown_table(const FaultList& fl) {
  std::string out =
      format("%-28s %10s %12s %10s %8s\n", "module", "faults", "untestable",
             "detected", "unt%");
  for (const ModuleBreakdownRow& row : module_breakdown(fl)) {
    out += format("%-28s %10zu %12zu %10zu %7.1f%%\n", row.module.c_str(),
                  row.faults, row.untestable, row.detected,
                  row.faults ? 100.0 * static_cast<double>(row.untestable) /
                                   static_cast<double>(row.faults)
                             : 0.0);
  }
  return out;
}

}  // namespace olfui
