// olfui/fault: fault-list reporting and export.
//
// The outputs a test team actually consumes from this flow:
//  * a CSV fault dossier (one row per fault: location, polarity, status,
//    untestability class, Table-I source) for diffing against other tools;
//  * a JSON summary for dashboards / CI trend tracking;
//  * a per-module breakdown showing WHERE the untestable faults live
//    (scan wrapper, debug unit, BTB, ...), the practical view the paper's
//    engineer used when hunting untestability sources.
#pragma once

#include <string>
#include <vector>

#include "fault/fault_list.hpp"

namespace olfui {

/// CSV: "fault_id,cell,pin,stuck_at,detected,untestable_kind,online_source".
/// `untestable_only` drops testable faults to keep dossiers small.
std::string to_csv(const FaultList& fl, bool untestable_only = false);

/// JSON object with universe size, per-source counts, per-kind counts and
/// both coverage figures. Thin shim over campaign/report.hpp's
/// fault_summary_to_json — the campaign module owns the schema.
std::string to_json_summary(const FaultList& fl);

struct ModuleBreakdownRow {
  std::string module;        ///< top-level hierarchy prefix
  std::size_t faults = 0;    ///< fault sites in the module
  std::size_t untestable = 0;
  std::size_t detected = 0;
};

/// Per-module statistics, sorted by untestable count (descending).
std::vector<ModuleBreakdownRow> module_breakdown(const FaultList& fl);

/// Formats module_breakdown() as an aligned text table.
std::string module_breakdown_table(const FaultList& fl);

}  // namespace olfui
