#include "fault/tdf.hpp"

#include "util/strings.hpp"

namespace olfui {

std::string_view tdf_class_name(const Fault& f) {
  return tdf_slow_to_rise(f) ? "str" : "stf";
}

std::string tdf_fault_name(const FaultUniverse& universe, FaultId id) {
  const Fault& f = universe.fault(id);
  const Cell& c = universe.netlist().cell(f.pin.cell);
  return format("%s/%s %s", c.name.c_str(),
                std::string(pin_name(c.type, f.pin.pin)).c_str(),
                tdf_slow_to_rise(f) ? "slow-to-rise" : "slow-to-fall");
}

NetId tdf_site_net(const Netlist& nl, const Fault& f) {
  return nl.pin_net(f.pin);
}

}  // namespace olfui
