// olfui/fault: fault status bookkeeping and the Fig.-1 taxonomy.
//
// Every fault carries two orthogonal labels:
//  * UntestableKind — *why* the structural engine proved it untestable
//    (tied / unobservable / ATPG-redundant), mirroring the UT/UU/UR
//    classes of commercial tools;
//  * OnlineSource — *which mission-mode restriction* produced it (scan,
//    debug control, debug observation, memory map), i.e. the rows of the
//    paper's Table I, or kStructural for faults untestable even with full
//    access.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/universe.hpp"
#include "util/bitvec.hpp"

namespace olfui {

enum class DetectState : std::uint8_t { kUndetected, kDetected };

/// The fault model a flow grades against. Both models share the universe's
/// site enumeration: under kTransition, the s-a-0 slot of a pin is read as
/// its slow-to-rise fault and the s-a-1 slot as slow-to-fall (see
/// fault/tdf.hpp), so fault ids, BitVec exchanges, and FaultList
/// bookkeeping work unchanged for either model.
enum class FaultModel : std::uint8_t {
  kStuckAt,     ///< the paper's model
  kTransition,  ///< extension: slow-to-rise / slow-to-fall on the same sites
};

std::string_view to_string(FaultModel m);

enum class UntestableKind : std::uint8_t {
  kNone,           ///< not proven untestable
  kTied,           ///< unexcitable: site carries a constant ("UT" class)
  kUnobservable,   ///< no sensitizable path to an observed output ("UU/UB")
  kRedundant,      ///< ATPG exhausted the search space ("UR")
};

enum class OnlineSource : std::uint8_t {
  kNone,          ///< testable (or not yet classified)
  kStructural,    ///< untestable in the original, fully accessible circuit
  kScan,          ///< §3.1  — scan-chain circuitry
  kDebugControl,  ///< §3.2.1 — unused debug control logic
  kDebugObserve,  ///< §3.2.2 — unused debug observation logic
  kMemoryMap,     ///< §3.3  — addressing resources under the mission map
};

std::string_view to_string(UntestableKind k);
std::string_view to_string(OnlineSource s);

/// Per-fault status array over a FaultUniverse, with the set algebra the
/// identification flow needs (prune, merge, count, report).
class FaultList {
 public:
  explicit FaultList(const FaultUniverse& universe);

  const FaultUniverse& universe() const { return *universe_; }
  std::size_t size() const { return detect_.size(); }

  DetectState detect_state(FaultId f) const { return detect_[f]; }
  UntestableKind untestable_kind(FaultId f) const { return kind_[f]; }
  OnlineSource online_source(FaultId f) const { return source_[f]; }

  void set_detected(FaultId f) { detect_[f] = DetectState::kDetected; }

  /// Marks `f` untestable. An already-classified fault keeps its first
  /// source label (the flow runs scan -> debug -> memory, so earlier,
  /// more specific sources win — matching the paper's disjoint Table I rows).
  void mark_untestable(FaultId f, UntestableKind k, OnlineSource s);

  /// All faults currently marked untestable (any kind).
  BitVec untestable_mask() const;
  /// Faults from one Table-I source.
  BitVec source_mask(OnlineSource s) const;

  std::size_t count_untestable() const;
  std::size_t count_source(OnlineSource s) const;
  std::size_t count_detected() const;

  /// Fault coverage with no pruning: detected / all.
  double raw_coverage() const;
  /// Coverage after removing untestable faults from the denominator —
  /// the paper's "raise the fault coverage by ~13%" effect.
  double pruned_coverage() const;

  /// Plain-text classification summary (one line per source, Table-I style).
  std::string summary() const;

 private:
  const FaultUniverse* universe_;
  std::vector<DetectState> detect_;
  std::vector<UntestableKind> kind_;
  std::vector<OnlineSource> source_;
};

}  // namespace olfui
