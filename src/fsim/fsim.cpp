#include "fsim/fsim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "fault/tdf.hpp"
#include "obs/metrics.hpp"
#include "util/bits.hpp"

namespace olfui {

bool ReferenceTrace::net_bit(int cycle, NetId net) const {
  const Column& col = columns[net / 64];
  // Last run starting at or before `cycle` (the first run starts at 0).
  const auto it = std::upper_bound(col.cycle.begin(), col.cycle.end(),
                                   static_cast<std::uint32_t>(cycle));
  const std::size_t r = static_cast<std::size_t>(it - col.cycle.begin()) - 1;
  return (col.value[r] >> (net % 64)) & 1ULL;
}

void ReferenceTrace::net_history(NetId net,
                                 std::vector<std::uint64_t>& packed) const {
  const std::size_t n = static_cast<std::size_t>(cycles);
  packed.assign((n + 63) / 64, 0);
  const Column& col = columns[net / 64];
  const int bit = static_cast<int>(net % 64);
  for (std::size_t r = 0; r < col.cycle.size(); ++r) {
    if (!((col.value[r] >> bit) & 1ULL)) continue;
    const std::size_t hi = r + 1 < col.cycle.size() ? col.cycle[r + 1] : n;
    for (std::size_t c = col.cycle[r]; c < hi; ++c)
      packed[c / 64] |= 1ULL << (c % 64);
  }
}

void ReferenceTrace::reset(std::size_t nets) {
  cycles = 0;
  num_nets = nets;
  columns.assign((nets + 63) / 64, {});
}

void ReferenceTrace::append_cycle(const std::uint64_t* words) {
  for (std::size_t o = 0; o < columns.size(); ++o) {
    Column& col = columns[o];
    if (col.value.empty() || col.value.back() != words[o]) {
      col.cycle.push_back(static_cast<std::uint32_t>(cycles));
      col.value.push_back(words[o]);
    }
  }
  ++cycles;
}

void ReferenceTrace::validate() const {
  if (cycles < 0) throw std::runtime_error("ReferenceTrace: negative cycles");
  if (columns.size() != (num_nets + 63) / 64)
    throw std::runtime_error("ReferenceTrace: column count mismatch");
  for (const Column& col : columns) {
    if (col.cycle.size() != col.value.size())
      throw std::runtime_error("ReferenceTrace: run arrays disagree");
    if (cycles == 0) {
      if (!col.cycle.empty())
        throw std::runtime_error("ReferenceTrace: runs in an empty trace");
      continue;
    }
    if (col.cycle.empty() || col.cycle[0] != 0)
      throw std::runtime_error("ReferenceTrace: first run must start at 0");
    for (std::size_t r = 1; r < col.cycle.size(); ++r) {
      if (col.cycle[r] <= col.cycle[r - 1] ||
          col.cycle[r] >= static_cast<std::uint32_t>(cycles))
        throw std::runtime_error(
            "ReferenceTrace: run starts not increasing in range");
    }
  }
}

std::size_t ReferenceTrace::run_count() const {
  std::size_t n = 0;
  for (const Column& col : columns) n += col.value.size();
  return n;
}

std::uint64_t ReferenceTrace::fingerprint() const {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(cycles));
  mix(num_nets);
  for (const Column& col : columns) {
    mix(col.cycle.size());
    for (std::size_t r = 0; r < col.cycle.size(); ++r) {
      mix(col.cycle[r]);
      mix(col.value[r]);
    }
  }
  return h;
}

template <int W>
SequentialFaultSimulatorT<W>::SequentialFaultSimulatorT(
    const Netlist& nl, const FaultUniverse& universe, SeqFsimOptions opts,
    std::shared_ptr<const PackedTopology> topo)
    : nl_(&nl),
      universe_(&universe),
      opts_(opts),
      sim_(topo ? std::move(topo) : PackedTopology::build(nl)) {
  // A topology for a different netlist is a caller bug; silently
  // rebuilding would also quietly forfeit the sharing optimisation.
  if (sim_.topology().nl != &nl)
    throw std::invalid_argument(
        "SequentialFaultSimulator: topology is for a different netlist");
  if (!opts_.event_driven) sim_.set_eval_mode(PackedEvalMode::kFullSweep);
  if (!opts_.incremental_clocking)
    sim_.set_clock_mode(PackedClockMode::kFullLatch);
  // Default: observe every top-level output.
  observed_ = nl.output_cells();
}

template <int W>
void SequentialFaultSimulatorT<W>::set_observed(std::vector<CellId> output_cells) {
  observed_ = std::move(output_cells);
  prepared_trace_ = nullptr;  // cached columns follow the observed set
}

template <int W>
ReferenceTrace SequentialFaultSimulatorT<W>::record_reference_trace(
    Environment& env) {
  ReferenceTrace trace;
  const std::size_t nets = nl_->num_nets();
  trace.reset(nets);
  std::vector<std::uint64_t> words(trace.columns.size());
  sim_.clear_injections();
  sim_.power_on();
  env.reset(sim_);
  for (int cycle = 0; cycle < opts_.max_cycles; ++cycle) {
    if (!env.step(sim_, cycle)) break;
    std::fill(words.begin(), words.end(), 0);
    for (NetId n = 0; n < nets; ++n)
      words[n / 64] |= (word_of(sim_.value(n), 0) & 1ULL) << (n % 64);
    trace.append_cycle(words.data());
    sim_.clock();
  }
  return trace;
}

template <int W>
void SequentialFaultSimulatorT<W>::prepare_trace(const ReferenceTrace* trace) {
  if (trace == prepared_trace_ &&
      (!trace || (trace->cycles == prepared_cycles_ &&
                  trace->num_nets == prepared_nets_ &&
                  trace->run_count() == prepared_runs_))) {
    if (trace && obs::metrics().enabled())
      obs::metrics().counter("fsim.trace_cache_hits").add();
    return;
  }
  prepared_trace_ = trace;
  observed_history_.clear();
  if (!trace) return;
  if (obs::metrics().enabled())
    obs::metrics().counter("fsim.trace_cache_misses").add();
  prepared_cycles_ = trace->cycles;
  prepared_nets_ = trace->num_nets;
  prepared_runs_ = trace->run_count();
  observed_history_.resize(observed_.size());
  for (std::size_t k = 0; k < observed_.size(); ++k) {
    // The good machine runs without injections, so an output port's
    // observed value is exactly the value of the net it reads.
    const Cell& c = nl_->cell(observed_[k]);
    trace->net_history(c.ins[0], observed_history_[k]);
  }
}

template <int W>
typename SequentialFaultSimulatorT<W>::Word
SequentialFaultSimulatorT<W>::observe_divergence(
    int cycle, const ReferenceTrace* trace) const {
  Word diverged{};
  const std::size_t c = static_cast<std::size_t>(cycle);
  for (std::size_t k = 0; k < observed_.size(); ++k) {
    const Word w = sim_.observed(observed_[k]);
    // Reference value: the checkpoint column if we have one, else a
    // broadcast of the good machine's (lane 0) bit.
    const bool good_bit =
        trace ? ((observed_history_[k][c / 64] >> (c % 64)) & 1ULL) != 0
              : (word_of(w, 0) & 1ULL) != 0;
    const Word good = lane_broadcast<Word>(good_bit);
    diverged |= (w ^ good);
  }
  return diverged;
}

template <int W>
LaneMask SequentialFaultSimulatorT<W>::unpack_detected(const Word& diverged,
                                                       std::size_t n) {
  LaneMask detected;
  for (std::size_t i = 0; i < n; ++i)
    if (lane_test(diverged, static_cast<int>(i) + 1)) detected.set_bit(i);
  return detected;
}

template <int W>
LaneMask SequentialFaultSimulatorT<W>::run_batch(std::span<const FaultId> faults,
                                                 Environment& env,
                                                 const ReferenceTrace* trace) {
  assert(faults.size() < static_cast<std::size_t>(W));
  prepare_trace(trace);
  sim_.clear_injections();
  Word fault_lanes{};
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = universe_->fault(faults[i]);
    const Word lane = lane_bit<Word>(static_cast<int>(i) + 1);
    fault_lanes |= lane;
    sim_.add_injection({f.pin.cell, f.pin.pin, f.sa1, lane});
  }

  sim_.power_on();
  env.reset(sim_);

  const int bound = trace ? trace->cycles : opts_.max_cycles;
  Word diverged{};
  for (int cycle = 0; cycle < bound; ++cycle) {
    if (!env.step(sim_, cycle)) break;
    diverged = (diverged | observe_divergence(cycle, trace)) & fault_lanes;
    if (opts_.early_exit && !lane_neq(diverged, fault_lanes)) break;
    sim_.clock();
  }
  publish_activity();
  return unpack_detected(diverged, faults.size());
}

template <int W>
LaneMask SequentialFaultSimulatorT<W>::run_tdf_batch(
    std::span<const FaultId> faults, Environment& env,
    const ReferenceTrace* trace) {
  assert(faults.size() < static_cast<std::size_t>(W));
  prepare_trace(trace);
  const int bound = trace ? trace->cycles : opts_.max_cycles;

  std::vector<NetId> site(faults.size());
  LaneMask rise;  // bit i: faults[i] is slow-to-rise
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = universe_->fault(faults[i]);
    site[i] = tdf_site_net(*nl_, f);
    if (tdf_slow_to_rise(f)) rise.set_bit(i);
  }

  // Launch schedules — bit i of site_good[c] is faults[i]'s site value
  // during cycle c. With a checkpoint they come straight out of the
  // shared all-net trace (no good-machine pass per batch); without one, a
  // pass 1 replays the good machine and records them (lane 0 carries the
  // good machine; no injections exist). Both paths read the identical
  // values, so detection cannot depend on which one ran.
  std::vector<LaneMask> site_good;
  if (trace) {
    site_good.assign(static_cast<std::size_t>(std::max(bound, 0)), LaneMask{});
    std::vector<std::uint64_t> hist;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      trace->net_history(site[i], hist);
      for (int c = 0; c < bound; ++c)
        if ((hist[static_cast<std::size_t>(c) / 64] >> (c % 64)) & 1ULL)
          site_good[static_cast<std::size_t>(c)].set_bit(i);
    }
  } else {
    sim_.clear_injections();
    sim_.power_on();
    env.reset(sim_);
    site_good.reserve(static_cast<std::size_t>(std::max(bound, 0)));
    for (int cycle = 0; cycle < bound; ++cycle) {
      if (!env.step(sim_, cycle)) break;
      LaneMask w;
      for (std::size_t i = 0; i < faults.size(); ++i)
        if (word_of(sim_.value(site[i]), 0) & 1ULL) w.set_bit(i);
      site_good.push_back(w);
      sim_.clock();
    }
  }
  const int cycles = static_cast<int>(site_good.size());

  // Pass 2 — faulty machines: fault i rides lane i+1, armed per capture
  // cycle. The capture value coincides with the shared stuck-at slot's
  // polarity (slow-to-rise holds the site at 0), so the injection record
  // is the stuck-at one with a cycle-varying lane mask.
  sim_.clear_injections();
  Word fault_lanes{};
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = universe_->fault(faults[i]);
    fault_lanes |= lane_bit<Word>(static_cast<int>(i) + 1);
    sim_.add_injection({f.pin.cell, f.pin.pin, f.sa1, Word{}});
  }
  sim_.power_on();
  env.reset(sim_);

  Word diverged{};
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Launch detection needs a previous clocked cycle, so cycle 0 never
    // captures; afterwards fault i is live iff its site made the
    // transition across the edge into this cycle.
    const LaneMask cur = site_good[static_cast<std::size_t>(cycle)];
    const LaneMask prev =
        cycle > 0 ? site_good[static_cast<std::size_t>(cycle) - 1] : cur;
    const LaneMask launched =
        ((~prev & cur) & rise) | ((prev & ~cur) & ~rise);
    for (std::size_t i = 0; i < faults.size(); ++i)
      sim_.set_injection_lanes(
          i, launched.bit(i) ? lane_bit<Word>(static_cast<int>(i) + 1) : Word{});
    if (!env.step(sim_, cycle)) break;
    diverged = (diverged | observe_divergence(cycle, trace)) & fault_lanes;
    if (opts_.early_exit && !lane_neq(diverged, fault_lanes)) break;
    sim_.clock();
  }
  publish_activity();
  return unpack_detected(diverged, faults.size());
}

template <int W>
void SequentialFaultSimulatorT<W>::publish_activity() {
  if (!obs::metrics().enabled()) return;
  const PackedActivity& a = sim_.activity();
  PackedActivity& base = published_activity_;
  // A caller-side sim().reset_activity() rewinds the counters; restart the
  // delta base rather than wrapping the unsigned subtraction.
  if (a.evals < base.evals) base = {};
  obs::metrics().counter("kernel.evals").add(a.evals - base.evals);
  obs::metrics().counter("kernel.full_sweeps")
      .add(a.full_sweeps - base.full_sweeps);
  obs::metrics().counter("kernel.cells_evaluated")
      .add(a.cells_evaluated - base.cells_evaluated);
  obs::metrics().counter("kernel.events_drained")
      .add(a.events_drained - base.events_drained);
  obs::metrics().counter("kernel.levels_touched")
      .add(a.levels_touched - base.levels_touched);
  obs::metrics().counter("kernel.quiet_cells")
      .add(a.quiet_cells - base.quiet_cells);
  obs::metrics().counter("kernel.sched_pushes")
      .add(a.sched_pushes - base.sched_pushes);
  obs::metrics().counter("kernel.flops_latched")
      .add(a.flops_latched - base.flops_latched);
  obs::metrics().counter("kernel.flops_skipped")
      .add(a.flops_skipped - base.flops_skipped);
  base = a;
}

template <int W>
std::size_t SequentialFaultSimulatorT<W>::run_campaign(
    FaultList& fl, Environment& env,
    std::function<void(std::size_t, std::size_t)> progress) {
  std::vector<FaultId> targets;
  for (FaultId f = 0; f < fl.size(); ++f) {
    if (fl.detect_state(f) == DetectState::kUndetected &&
        fl.untestable_kind(f) == UntestableKind::kNone)
      targets.push_back(f);
  }
  constexpr std::size_t kBatch = W - 1;
  std::size_t new_detections = 0;
  for (std::size_t i = 0; i < targets.size(); i += kBatch) {
    const std::size_t n = std::min<std::size_t>(kBatch, targets.size() - i);
    const LaneMask det = run_batch(std::span(targets).subspan(i, n), env);
    for (std::size_t j = 0; j < n; ++j) {
      if (det.bit(j)) {
        fl.set_detected(targets[i + j]);
        ++new_detections;
      }
    }
    if (progress) progress(i + n, targets.size());
  }
  return new_detections;
}

template class SequentialFaultSimulatorT<64>;
#if OLFUI_HAS_WIDE_LANES
template class SequentialFaultSimulatorT<128>;
template class SequentialFaultSimulatorT<256>;
#endif

bool comb_detects(const Netlist& nl, const FaultUniverse& universe, FaultId fault,
                  std::span<const std::vector<std::pair<NetId, bool>>> patterns,
                  const std::vector<CellId>& observed) {
  assert(patterns.size() <= 64);
  PackedSim good(nl), bad(nl);
  const Fault& f = universe.fault(fault);
  bad.add_injection({f.pin.cell, f.pin.pin, f.sa1, ~0ULL});

  // Build per-net lane words; inputs not mentioned by any pattern stay 0.
  std::unordered_map<NetId, std::uint64_t> words;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    for (auto [net, v] : patterns[p]) {
      auto [it, _] = words.try_emplace(net, 0);
      if (v) it->second |= 1ULL << p;
    }
  }

  for (auto [net, w] : words) {
    good.set_input_lanes(net, w);
    bad.set_input_lanes(net, w);
  }
  good.eval();
  bad.eval();

  const std::uint64_t used =
      patterns.size() == 64 ? ~0ULL : ((1ULL << patterns.size()) - 1);
  for (CellId oc : observed) {
    if ((good.observed(oc) ^ bad.observed(oc)) & used) return true;
  }
  return false;
}

}  // namespace olfui
