#include "fsim/fsim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "fault/tdf.hpp"
#include "util/bits.hpp"

namespace olfui {

void GoodTrace::reserve_cycles(std::size_t n) {
  cycle_run.reserve(n);
  // Runs grow with bus activity, not cycle count; a modest floor avoids
  // the first few doublings without committing cycle-proportional memory.
  run_start.reserve(std::min<std::size_t>(n, 1024));
  run_value.reserve(std::min<std::size_t>(n, 1024));
}

void GoodTrace::append_cycle(const std::uint64_t* words) {
  if (words_per_cycle == 0) {  // nothing observed: only the bound matters
    ++cycles;
    return;
  }
  const std::size_t base =
      static_cast<std::size_t>(cycles) * words_per_cycle;
  for (std::size_t j = 0; j < words_per_cycle; ++j) {
    if (run_value.empty() || run_value.back() != words[j]) {
      run_start.push_back(base + j);
      run_value.push_back(words[j]);
    }
    if (j == 0)
      cycle_run.push_back(static_cast<std::uint32_t>(run_value.size() - 1));
  }
  ++cycles;
}

void GoodTrace::rebuild_index() {
  if (run_start.size() != run_value.size())
    throw std::runtime_error("GoodTrace: run arrays disagree");
  if (total_words() > 0 && (run_start.empty() || run_start[0] != 0))
    throw std::runtime_error("GoodTrace: first run must start at word 0");
  for (std::size_t r = 0; r < run_start.size(); ++r) {
    if (run_start[r] >= total_words() ||
        (r > 0 && run_start[r] <= run_start[r - 1]))
      throw std::runtime_error("GoodTrace: run starts not increasing in range");
  }
  cycle_run.clear();
  if (words_per_cycle == 0) return;
  cycle_run.reserve(static_cast<std::size_t>(cycles));
  std::size_t r = 0;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    const std::size_t w = static_cast<std::size_t>(cycle) * words_per_cycle;
    while (r + 1 < run_start.size() && run_start[r + 1] <= w) ++r;
    cycle_run.push_back(static_cast<std::uint32_t>(r));
  }
}

void drive_bus_lanes(PackedSim& sim, const Bus& bus,
                     const std::array<std::uint64_t, 64>& lane_values) {
  // Row l = lane l's value; after the transpose row b bit l = lane l's
  // bit b, i.e. exactly the per-bit lane word.
  std::array<std::uint64_t, 64> m = lane_values;
  transpose64(m.data());
  for (std::size_t b = 0; b < bus.size(); ++b) sim.set_input_lanes(bus[b], m[b]);
}

std::array<std::uint64_t, 64> read_bus_lanes(const PackedSim& sim, const Bus& bus) {
  std::array<std::uint64_t, 64> m{};
  for (std::size_t b = 0; b < bus.size(); ++b) m[b] = sim.value(bus[b]);
  transpose64(m.data());
  return m;
}

SequentialFaultSimulator::SequentialFaultSimulator(
    const Netlist& nl, const FaultUniverse& universe, SeqFsimOptions opts,
    std::shared_ptr<const PackedTopology> topo)
    : nl_(&nl),
      universe_(&universe),
      opts_(opts),
      sim_(topo ? std::move(topo) : PackedTopology::build(nl)) {
  // A topology for a different netlist is a caller bug; silently
  // rebuilding would also quietly forfeit the sharing optimisation.
  if (sim_.topology().nl != &nl)
    throw std::invalid_argument(
        "SequentialFaultSimulator: topology is for a different netlist");
  if (!opts_.event_driven) sim_.set_eval_mode(PackedEvalMode::kFullSweep);
  // Default: observe every top-level output.
  observed_ = nl.output_cells();
}

void SequentialFaultSimulator::set_observed(std::vector<CellId> output_cells) {
  observed_ = std::move(output_cells);
}

GoodTrace SequentialFaultSimulator::record_good_trace(FsimEnvironment& env) {
  GoodTrace trace;
  trace.words_per_cycle = (observed_.size() + 63) / 64;
  // Size for the worst case up front: long programs previously paid a
  // per-cycle resize on a flat bit array.
  trace.reserve_cycles(static_cast<std::size_t>(std::max(opts_.max_cycles, 0)));
  std::vector<std::uint64_t> words(trace.words_per_cycle);
  sim_.clear_injections();
  sim_.power_on();
  env.reset(sim_);
  for (int cycle = 0; cycle < opts_.max_cycles; ++cycle) {
    if (!env.step(sim_, cycle)) break;
    std::fill(words.begin(), words.end(), 0);
    for (std::size_t k = 0; k < observed_.size(); ++k)
      words[k / 64] |= (sim_.observed(observed_[k]) & 1ULL) << (k % 64);
    trace.append_cycle(words.data());
    sim_.clock();
  }
  return trace;
}

std::uint64_t SequentialFaultSimulator::observe_divergence(
    int cycle, const GoodTrace* trace) const {
  std::uint64_t diverged = 0;
  for (std::size_t k = 0; k < observed_.size(); ++k) {
    const std::uint64_t w = sim_.observed(observed_[k]);
    // Reference value: the checkpoint if we have one, else a broadcast
    // of the good machine's (lane 0) bit.
    const bool good_bit = trace ? trace->bit(cycle, k) : (w & 1ULL);
    const std::uint64_t good = good_bit ? ~0ULL : 0ULL;
    diverged |= (w ^ good);
  }
  return diverged;
}

std::uint64_t SequentialFaultSimulator::unpack_detected(std::uint64_t diverged,
                                                        std::size_t n) {
  std::uint64_t detected = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (diverged & (1ULL << (i + 1))) detected |= 1ULL << i;
  return detected;
}

std::uint64_t SequentialFaultSimulator::run_batch(std::span<const FaultId> faults,
                                                  FsimEnvironment& env,
                                                  const GoodTrace* trace) {
  assert(faults.size() <= 63);
  sim_.clear_injections();
  std::uint64_t fault_lanes = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = universe_->fault(faults[i]);
    const std::uint64_t lane = 1ULL << (i + 1);
    fault_lanes |= lane;
    sim_.add_injection({f.pin.cell, f.pin.pin, f.sa1, lane});
  }

  sim_.power_on();
  env.reset(sim_);

  const int bound = trace ? trace->cycles : opts_.max_cycles;
  std::uint64_t diverged = 0;
  for (int cycle = 0; cycle < bound; ++cycle) {
    if (!env.step(sim_, cycle)) break;
    diverged = (diverged | observe_divergence(cycle, trace)) & fault_lanes;
    if (opts_.early_exit && diverged == fault_lanes) break;
    sim_.clock();
  }
  return unpack_detected(diverged, faults.size());
}

std::uint64_t SequentialFaultSimulator::run_tdf_batch(
    std::span<const FaultId> faults, FsimEnvironment& env,
    const GoodTrace* trace) {
  assert(faults.size() <= 63);
  const int bound = trace ? trace->cycles : opts_.max_cycles;

  std::vector<NetId> site(faults.size());
  std::uint64_t rise = 0;  // bit i: faults[i] is slow-to-rise
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = universe_->fault(faults[i]);
    site[i] = tdf_site_net(*nl_, f);
    if (tdf_slow_to_rise(f)) rise |= 1ULL << i;
  }

  // Pass 1 — good machine: bit i of site_good[c] is faults[i]'s site value
  // during cycle c (lane 0 carries the good machine; no injections exist).
  sim_.clear_injections();
  sim_.power_on();
  env.reset(sim_);
  std::vector<std::uint64_t> site_good;
  site_good.reserve(static_cast<std::size_t>(std::max(bound, 0)));
  for (int cycle = 0; cycle < bound; ++cycle) {
    if (!env.step(sim_, cycle)) break;
    std::uint64_t w = 0;
    for (std::size_t i = 0; i < faults.size(); ++i)
      w |= (sim_.value(site[i]) & 1ULL) << i;
    site_good.push_back(w);
    sim_.clock();
  }
  const int cycles = static_cast<int>(site_good.size());

  // Pass 2 — faulty machines: fault i rides lane i+1, armed per capture
  // cycle. The capture value coincides with the shared stuck-at slot's
  // polarity (slow-to-rise holds the site at 0), so the injection record
  // is the stuck-at one with a cycle-varying lane mask.
  sim_.clear_injections();
  std::uint64_t fault_lanes = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = universe_->fault(faults[i]);
    fault_lanes |= 1ULL << (i + 1);
    sim_.add_injection({f.pin.cell, f.pin.pin, f.sa1, 0});
  }
  sim_.power_on();
  env.reset(sim_);

  std::uint64_t diverged = 0;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Launch detection needs a previous clocked cycle, so cycle 0 never
    // captures; afterwards fault i is live iff its site made the
    // transition across the edge into this cycle.
    const std::uint64_t cur = site_good[static_cast<std::size_t>(cycle)];
    const std::uint64_t prev =
        cycle > 0 ? site_good[static_cast<std::size_t>(cycle) - 1] : cur;
    const std::uint64_t launched =
        ((~prev & cur) & rise) | ((prev & ~cur) & ~rise);
    for (std::size_t i = 0; i < faults.size(); ++i)
      sim_.set_injection_lanes(
          i, (launched >> i) & 1ULL ? (1ULL << (i + 1)) : 0);
    if (!env.step(sim_, cycle)) break;
    diverged = (diverged | observe_divergence(cycle, trace)) & fault_lanes;
    if (opts_.early_exit && diverged == fault_lanes) break;
    sim_.clock();
  }
  return unpack_detected(diverged, faults.size());
}

std::size_t SequentialFaultSimulator::run_campaign(
    FaultList& fl, FsimEnvironment& env,
    std::function<void(std::size_t, std::size_t)> progress) {
  std::vector<FaultId> targets;
  for (FaultId f = 0; f < fl.size(); ++f) {
    if (fl.detect_state(f) == DetectState::kUndetected &&
        fl.untestable_kind(f) == UntestableKind::kNone)
      targets.push_back(f);
  }
  std::size_t new_detections = 0;
  for (std::size_t i = 0; i < targets.size(); i += 63) {
    const std::size_t n = std::min<std::size_t>(63, targets.size() - i);
    const std::uint64_t det =
        run_batch(std::span(targets).subspan(i, n), env);
    for (std::size_t j = 0; j < n; ++j) {
      if (det & (1ULL << j)) {
        fl.set_detected(targets[i + j]);
        ++new_detections;
      }
    }
    if (progress) progress(i + n, targets.size());
  }
  return new_detections;
}

bool comb_detects(const Netlist& nl, const FaultUniverse& universe, FaultId fault,
                  std::span<const std::vector<std::pair<NetId, bool>>> patterns,
                  const std::vector<CellId>& observed) {
  assert(patterns.size() <= 64);
  PackedSim good(nl), bad(nl);
  const Fault& f = universe.fault(fault);
  bad.add_injection({f.pin.cell, f.pin.pin, f.sa1, ~0ULL});

  // Build per-net lane words; inputs not mentioned by any pattern stay 0.
  std::unordered_map<NetId, std::uint64_t> words;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    for (auto [net, v] : patterns[p]) {
      auto [it, _] = words.try_emplace(net, 0);
      if (v) it->second |= 1ULL << p;
    }
  }

  for (auto [net, w] : words) {
    good.set_input_lanes(net, w);
    bad.set_input_lanes(net, w);
  }
  good.eval();
  bad.eval();

  const std::uint64_t used =
      patterns.size() == 64 ? ~0ULL : ((1ULL << patterns.size()) - 1);
  for (CellId oc : observed) {
    if ((good.observed(oc) ^ bad.observed(oc)) & used) return true;
  }
  return false;
}

}  // namespace olfui
