// olfui/fsim: stuck-at fault simulation.
//
// Two engines share the W-lane packed kernel (W = 64 scalar by default;
// 128/256 over vector extensions — see util/lanes.hpp):
//
//  * SequentialFaultSimulator — parallel-fault: lane 0 runs the good
//    machine, lanes 1..W-1 run faulty machines, the whole test program is
//    simulated cycle by cycle, and a fault counts as DETECTED only when a
//    faulty lane diverges from the good lane on one of the *observed*
//    outputs. Matching the paper's rule, the SBST flow observes only the
//    system-bus ports ("the evaluation of the fault coverage ... is
//    obtained by only observing the system bus").
//    The environment callback makes stimuli reactive: the memory model
//    answers per-lane, so a faulty machine that issues a wrong address
//    reads wrong data, exactly as on silicon.
//
//  * parallel-pattern combinational simulation (PPSF) — 64 patterns per
//    pass for one fault; used for ATPG validation and property tests.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "netlist/netlist.hpp"
#include "sim/packed.hpp"
#include "util/bits.hpp"
#include "util/bitvec.hpp"
#include "util/lanes.hpp"

namespace olfui {

/// Drives the design-under-test's inputs each cycle. Implementations may
/// call sim.eval() internally (e.g. to serve combinational memory reads
/// that depend on freshly computed addresses).
template <int W>
class FsimEnvironmentT {
 public:
  virtual ~FsimEnvironmentT() = default;
  /// Called once per batch after power_on(); applies the reset sequence.
  virtual void reset(PackedSimT<W>& sim) = 0;
  /// Drives inputs for one cycle and settles the logic. Returns false to
  /// end the run early (e.g. the good machine executed HALT).
  virtual bool step(PackedSimT<W>& sim, int cycle) = 0;
};

/// The scalar 64-lane environment interface (the pre-width-parametric name).
using FsimEnvironment = FsimEnvironmentT<64>;

/// Transposes W per-lane values (buses are at most 64 bits wide) onto the
/// per-bit lane words of a bus.
template <int W>
void drive_bus_lanes(
    PackedSimT<W>& sim, const Bus& bus,
    const std::array<std::uint64_t, static_cast<std::size_t>(W)>& lane_values) {
  // Row l = lane l's value; after the transpose row b bit l = lane l's
  // bit b, i.e. exactly the per-bit lane word.
  constexpr int K = W / 64;
  using Word = LaneWord<W>;
  std::array<std::uint64_t, static_cast<std::size_t>(W) * K> m{};
  for (int l = 0; l < W; ++l) m[static_cast<std::size_t>(l) * K] = lane_values[l];
  transpose_bits<W>(m.data());
  for (std::size_t b = 0; b < bus.size(); ++b) {
    Word w{};
    for (int k = 0; k < K; ++k) set_word_of(w, k, m[b * K + k]);
    sim.set_input_lanes(bus[b], w);
  }
}

/// Reads a bus back into per-lane values.
template <int W>
std::array<std::uint64_t, W> read_bus_lanes(const PackedSimT<W>& sim,
                                            const Bus& bus) {
  constexpr int K = W / 64;
  using Word = LaneWord<W>;
  std::array<std::uint64_t, static_cast<std::size_t>(W) * K> m{};
  for (std::size_t b = 0; b < bus.size(); ++b) {
    const Word v = sim.value(bus[b]);
    for (int k = 0; k < K; ++k) m[b * K + k] = word_of(v, k);
  }
  transpose_bits<W>(m.data());
  std::array<std::uint64_t, W> out{};
  for (int l = 0; l < W; ++l) out[l] = m[static_cast<std::size_t>(l) * K];
  return out;
}

struct SeqFsimOptions {
  int max_cycles = 100000;
  /// Stop a batch as soon as every faulty lane has diverged.
  bool early_exit = true;
  /// Use the event-driven packed kernel; false forces the levelized
  /// full-sweep oracle. Both produce bit-identical results.
  bool event_driven = true;
  /// Use dirty-D incremental clocking (latch only flops whose D input
  /// changed since their last edge); false forces the full two-pass latch
  /// oracle. Both produce bit-identical results.
  bool incremental_clocking = true;
  /// Requested packed width (64/128/256). The simulator's width is its
  /// template parameter; this field lets width travel with the options
  /// through specs and CLI plumbing (resolve_lane_width applies the
  /// build's fallback rule). Detection sets are bit-identical at every
  /// width.
  int lanes = 64;
};

/// Checkpoint of one fault-free run: the executed cycle count plus the
/// per-cycle lane-0 value of EVERY net. A campaign records the good
/// machine once per test program; every batch of every worker then reads
/// its reference from the checkpoint instead of re-deriving good values —
/// the stuck-at path replays the observed-output columns, the TDF path
/// reads each fault site's launch schedule straight out of the trace
/// (eliminating the per-batch good-machine pass 1), and an incremental
/// re-grade can diff any net's history against a previous run.
///
/// Storage is column-oriented RLE: nets are packed 64 to a word column,
/// and each column stores (start cycle, word value) runs — a cycle that
/// changes none of a column's nets appends nothing, so the trace grows
/// with bus activity, not with cycles * nets. (A positional RLE over the
/// concatenated per-cycle words — what the old observed-only GoodTrace
/// used — degenerates once a cycle spans hundreds of words: an unchanged
/// cycle still re-emits every distinct adjacent word.)
struct ReferenceTrace {
  /// One 64-net word column: run r holds `value[r]` from `cycle[r]` until
  /// the next run's start (or the end of the trace).
  struct Column {
    std::vector<std::uint32_t> cycle;  ///< run starts, increasing, first 0
    std::vector<std::uint64_t> value;
  };

  int cycles = 0;
  std::size_t num_nets = 0;
  std::vector<Column> columns;  ///< ceil(num_nets / 64)

  /// Lane-0 value of `net` during `cycle` (binary search in the column).
  bool net_bit(int cycle, NetId net) const;

  /// One net's whole history, packed by cycle (bit c of packed[c / 64]).
  /// Walks the net's column once — the bulk form every per-batch consumer
  /// uses instead of per-cycle net_bit() scans.
  void net_history(NetId net, std::vector<std::uint64_t>& packed) const;

  /// Clears and sizes the columns for a netlist with `nets` nets.
  void reset(std::size_t nets);
  /// Appends one cycle's net words (columns.size() of them). Cycles must
  /// be appended in order; increments `cycles`.
  void append_cycle(const std::uint64_t* words);
  /// Checks the column invariants (after deserialization). Throws
  /// std::runtime_error on malformed runs.
  void validate() const;

  /// Total stored runs across all columns (the compression measure).
  std::size_t run_count() const;

  /// Order-sensitive FNV-1a over the shape and every run: equal
  /// fingerprints mean bit-identical checkpoints. Subprocess campaign
  /// workers rebuild their reference traces from the netlist and hash
  /// them, so the coordinator can reject a worker whose rebuilt state
  /// drifted (wrong SoC configuration, different program) instead of
  /// merging garbage masks — see campaign/executor.hpp.
  std::uint64_t fingerprint() const;
};

template <int W>
class SequentialFaultSimulatorT {
 public:
  using Word = LaneWord<W>;
  using Environment = FsimEnvironmentT<W>;
  static constexpr int kLanes = W;

  /// `topo`, if given, must be a PackedTopology over `nl`; campaign
  /// workers pass a shared one so per-worker construction stops re-running
  /// levelization and fanout-graph building.
  SequentialFaultSimulatorT(const Netlist& nl, const FaultUniverse& universe,
                            SeqFsimOptions opts = {},
                            std::shared_ptr<const PackedTopology> topo = nullptr);

  /// Observed output ports (system bus). Detection compares these only.
  void set_observed(std::vector<CellId> output_cells);

  /// Runs the good machine once with no injections, recording every net
  /// each cycle. The returned checkpoint is tied to `env`'s stimulus (not
  /// to the observed set — it carries all nets, so one recording serves
  /// stuck-at references, TDF launch schedules, and future re-grades).
  /// Lane-0-only, so checkpoints are identical across widths.
  ReferenceTrace record_reference_trace(Environment& env);

  /// Simulates one batch of up to W-1 faults against the good machine.
  /// Returns a bit per batch entry: detected or not. With `trace`, the
  /// reference values come from the checkpoint (recorded by
  /// record_reference_trace) instead of lane 0, and the run is bounded by
  /// the checkpoint's cycle count. The trace must stay alive (and
  /// unmodified) across the batches that pass it: the simulator caches
  /// per-observed-output history columns keyed on the trace pointer.
  LaneMask run_batch(std::span<const FaultId> faults, Environment& env,
                     const ReferenceTrace* trace = nullptr);

  /// Transition-delay batch (the TDF reading of the same fault ids — see
  /// fault/tdf.hpp): launch/capture over the test program. The launch
  /// schedule of each fault site (the cycles where the site's good value
  /// makes the fault's transition, 0->1 for slow-to-rise, 1->0 for
  /// slow-to-fall) comes from the shared ReferenceTrace when one is given
  /// — the trace already holds every net's good history, so the per-batch
  /// good-machine pass 1 disappears and only the capture-armed faulty
  /// pass runs (the launch-schedule-sharing speedup measured by
  /// bench_tdf_extension). Without a trace, a pass 1 replays the good
  /// machine and records the site values first (the self-contained
  /// oracle path). Either way the faulty pass arms each fault only on its
  /// capture cycles — the site held at its pre-transition value for
  /// exactly the cycle after each launch — and grades divergence on the
  /// observed outputs like run_batch. Launches are read from the good
  /// machine (the standard parallel-TDF approximation), so results are
  /// deterministic, kernel-independent, and identical with or without the
  /// trace; the env must replay identical stimulus across passes (true of
  /// every FsimEnvironment whose reset() fully rewinds it, which reuse
  /// across batches already requires).
  LaneMask run_tdf_batch(std::span<const FaultId> faults, Environment& env,
                         const ReferenceTrace* trace = nullptr);

  /// Runs all faults of `fl` that are neither detected nor untestable,
  /// marking newly detected faults. Returns the number of new detections.
  /// `progress`, if set, is called after each batch with (done, total).
  /// This is the single-threaded kernel-level loop; campaign-shaped
  /// workloads should go through campaign::CampaignEngine, which shards
  /// batches across a worker pool with identical results.
  std::size_t run_campaign(FaultList& fl, Environment& env,
                           std::function<void(std::size_t, std::size_t)> progress = {});

  const SeqFsimOptions& options() const { return opts_; }

  /// The underlying packed simulator (activity counters, eval-mode probes).
  PackedSimT<W>& sim() { return sim_; }
  const PackedSimT<W>& sim() const { return sim_; }

 private:
  /// One cycle's observed-output divergence word against the reference
  /// (checkpoint bit when `trace` is given, else a lane-0 broadcast).
  /// Shared by the stuck-at and TDF batch loops so the two models can
  /// never drift on observation semantics.
  Word observe_divergence(int cycle, const ReferenceTrace* trace) const;
  /// Repacks per-lane divergence (lane i+1 = faults[i]) into per-fault bits.
  static LaneMask unpack_detected(const Word& diverged, std::size_t n);
  /// Extracts each observed output's history column from `trace` once per
  /// trace (cached on the pointer), so observe_divergence is a packed-bit
  /// read per output instead of a per-cycle run scan.
  void prepare_trace(const ReferenceTrace* trace);
  /// Side-band metrics bridge (obs): publishes the PackedSim activity
  /// accumulated since the last publish as kernel.* counter deltas. Called
  /// once per batch (cold path); a branch when metrics are disabled.
  void publish_activity();

  const Netlist* nl_;
  const FaultUniverse* universe_;
  SeqFsimOptions opts_;
  PackedSimT<W> sim_;
  std::vector<CellId> observed_;
  /// prepare_trace cache: per observed output, cycle-packed good bits.
  /// Keyed on the trace pointer plus a shape fingerprint (cycles, nets,
  /// run count), so a different trace that happens to land at a freed
  /// trace's address still triggers a rebuild.
  const ReferenceTrace* prepared_trace_ = nullptr;
  int prepared_cycles_ = -1;
  std::size_t prepared_nets_ = 0;
  std::size_t prepared_runs_ = 0;
  std::vector<std::vector<std::uint64_t>> observed_history_;
  /// Activity already published to the metrics registry (delta base).
  PackedActivity published_activity_;
};

/// The scalar 64-lane fault simulator — the default, and the only width
/// guaranteed on every compiler. Wider instantiations (128/256) exist when
/// OLFUI_HAS_WIDE_LANES is set; see resolve_lane_width().
using SequentialFaultSimulator = SequentialFaultSimulatorT<64>;

/// Parallel-pattern single-fault combinational simulation: returns true if
/// any of the patterns (one per lane, values keyed by controllable net)
/// detects `fault` on the observed outputs. For pure combinational netlists.
bool comb_detects(const Netlist& nl, const FaultUniverse& universe, FaultId fault,
                  std::span<const std::vector<std::pair<NetId, bool>>> patterns,
                  const std::vector<CellId>& observed);

}  // namespace olfui
