// olfui/fsim: stuck-at fault simulation.
//
// Two engines share the 64-lane packed kernel:
//
//  * SequentialFaultSimulator — parallel-fault: lane 0 runs the good
//    machine, lanes 1..63 run faulty machines, the whole test program is
//    simulated cycle by cycle, and a fault counts as DETECTED only when a
//    faulty lane diverges from the good lane on one of the *observed*
//    outputs. Matching the paper's rule, the SBST flow observes only the
//    system-bus ports ("the evaluation of the fault coverage ... is
//    obtained by only observing the system bus").
//    The environment callback makes stimuli reactive: the memory model
//    answers per-lane, so a faulty machine that issues a wrong address
//    reads wrong data, exactly as on silicon.
//
//  * parallel-pattern combinational simulation (PPSF) — 64 patterns per
//    pass for one fault; used for ATPG validation and property tests.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "netlist/netlist.hpp"
#include "sim/packed.hpp"
#include "util/bitvec.hpp"

namespace olfui {

/// Drives the design-under-test's inputs each cycle. Implementations may
/// call sim.eval() internally (e.g. to serve combinational memory reads
/// that depend on freshly computed addresses).
class FsimEnvironment {
 public:
  virtual ~FsimEnvironment() = default;
  /// Called once per batch after power_on(); applies the reset sequence.
  virtual void reset(PackedSim& sim) = 0;
  /// Drives inputs for one cycle and settles the logic. Returns false to
  /// end the run early (e.g. the good machine executed HALT).
  virtual bool step(PackedSim& sim, int cycle) = 0;
};

/// Transposes 64 per-lane values onto the per-bit lane words of a bus.
void drive_bus_lanes(PackedSim& sim, const Bus& bus,
                     const std::array<std::uint64_t, 64>& lane_values);
/// Reads a bus back into per-lane values.
std::array<std::uint64_t, 64> read_bus_lanes(const PackedSim& sim, const Bus& bus);

struct SeqFsimOptions {
  int max_cycles = 100000;
  /// Stop a batch as soon as every faulty lane has diverged.
  bool early_exit = true;
  /// Use the event-driven packed kernel; false forces the levelized
  /// full-sweep oracle. Both produce bit-identical results.
  bool event_driven = true;
};

/// Checkpoint of one fault-free run: the executed cycle count plus the
/// per-cycle values of every observed output. A campaign records the good
/// machine once per test program and replays the checkpoint as the
/// reference in every batch, so detection no longer re-derives the good
/// values from lane 0 and the cycle bound is exact instead of a guess.
///
/// Storage is run-length compressed over the 64-bit observed words
/// (conceptual word index w = cycle * words_per_cycle + word-in-cycle):
/// run r covers [run_start[r], run_start[r+1]) with the constant word
/// run_value[r]. Observed buses idle for most cycles, so million-cycle
/// checkpoints collapse to a handful of runs; `cycle_run` indexes the run
/// holding each cycle's first word, bounding bit() to a scan of at most
/// words_per_cycle runs.
struct GoodTrace {
  int cycles = 0;
  std::size_t words_per_cycle = 0;  ///< ceil(observed_count / 64)
  std::vector<std::uint64_t> run_start;  ///< first word index of each run
  std::vector<std::uint64_t> run_value;
  std::vector<std::uint32_t> cycle_run;  ///< run of cycle's first word

  bool bit(int cycle, std::size_t observed_index) const {
    const std::size_t w =
        static_cast<std::size_t>(cycle) * words_per_cycle + observed_index / 64;
    std::size_t r = cycle_run[static_cast<std::size_t>(cycle)];
    while (r + 1 < run_start.size() && run_start[r + 1] <= w) ++r;
    return (run_value[r] >> (observed_index % 64)) & 1ULL;
  }

  /// Reserves for an expected cycle count (avoids per-cycle reallocation
  /// on long programs; runs stay demand-allocated).
  void reserve_cycles(std::size_t n);
  /// Appends one cycle's observed words (words_per_cycle of them). Cycles
  /// must be appended in order; increments `cycles`.
  void append_cycle(const std::uint64_t* words);
  /// Recomputes cycle_run from run_start (after deserialization). Throws
  /// std::runtime_error if the runs do not tile [0, cycles*words_per_cycle).
  void rebuild_index();

  std::size_t total_words() const {
    return static_cast<std::size_t>(cycles) * words_per_cycle;
  }
};

class SequentialFaultSimulator {
 public:
  /// `topo`, if given, must be a PackedTopology over `nl`; campaign
  /// workers pass a shared one so per-worker construction stops re-running
  /// levelization and fanout-graph building.
  SequentialFaultSimulator(const Netlist& nl, const FaultUniverse& universe,
                           SeqFsimOptions opts = {},
                           std::shared_ptr<const PackedTopology> topo = nullptr);

  /// Observed output ports (system bus). Detection compares these only.
  void set_observed(std::vector<CellId> output_cells);

  /// Runs the good machine once with no injections, recording the observed
  /// outputs each cycle. The returned checkpoint is tied to this
  /// simulator's observed set and to `env`'s stimulus.
  GoodTrace record_good_trace(FsimEnvironment& env);

  /// Simulates one batch of up to 63 faults against the good machine.
  /// Returns a bit per batch entry: detected or not. With `trace`, the
  /// reference values come from the checkpoint (recorded by
  /// record_good_trace) instead of lane 0, and the run is bounded by the
  /// checkpoint's cycle count.
  std::uint64_t run_batch(std::span<const FaultId> faults, FsimEnvironment& env,
                          const GoodTrace* trace = nullptr);

  /// Transition-delay batch (the TDF reading of the same fault ids — see
  /// fault/tdf.hpp): two passes over the test program. Pass 1 replays the
  /// good machine and records each fault site's launch schedule (the
  /// cycles where the site's good value makes the fault's transition,
  /// 0->1 for slow-to-rise, 1->0 for slow-to-fall). Pass 2 runs the
  /// faulty machines with each fault armed only on its capture cycles —
  /// the site held at its pre-transition value for exactly the cycle
  /// after each launch — and grades divergence on the observed outputs
  /// like run_batch. Launches are read from the good machine (the
  /// standard parallel-TDF approximation), so results are deterministic
  /// and kernel-independent. `trace` bounds the run and supplies the
  /// reference exactly as in run_batch; the env must replay identical
  /// stimulus across both passes (true of every FsimEnvironment whose
  /// reset() fully rewinds it, which reuse across batches already
  /// requires).
  std::uint64_t run_tdf_batch(std::span<const FaultId> faults,
                              FsimEnvironment& env,
                              const GoodTrace* trace = nullptr);

  /// Runs all faults of `fl` that are neither detected nor untestable,
  /// marking newly detected faults. Returns the number of new detections.
  /// `progress`, if set, is called after each batch with (done, total).
  /// This is the single-threaded kernel-level loop; campaign-shaped
  /// workloads should go through campaign::CampaignEngine, which shards
  /// batches across a worker pool with identical results.
  std::size_t run_campaign(FaultList& fl, FsimEnvironment& env,
                           std::function<void(std::size_t, std::size_t)> progress = {});

  const SeqFsimOptions& options() const { return opts_; }

  /// The underlying packed simulator (activity counters, eval-mode probes).
  PackedSim& sim() { return sim_; }
  const PackedSim& sim() const { return sim_; }

 private:
  /// One cycle's observed-output divergence word against the reference
  /// (checkpoint bit when `trace` is given, else a lane-0 broadcast).
  /// Shared by the stuck-at and TDF batch loops so the two models can
  /// never drift on observation semantics.
  std::uint64_t observe_divergence(int cycle, const GoodTrace* trace) const;
  /// Repacks per-lane divergence (lane i+1 = faults[i]) into per-fault bits.
  static std::uint64_t unpack_detected(std::uint64_t diverged, std::size_t n);

  const Netlist* nl_;
  const FaultUniverse* universe_;
  SeqFsimOptions opts_;
  PackedSim sim_;
  std::vector<CellId> observed_;
};

/// Parallel-pattern single-fault combinational simulation: returns true if
/// any of the patterns (one per lane, values keyed by controllable net)
/// detects `fault` on the observed outputs. For pure combinational netlists.
bool comb_detects(const Netlist& nl, const FaultUniverse& universe, FaultId fault,
                  std::span<const std::vector<std::pair<NetId, bool>>> patterns,
                  const std::vector<CellId>& observed);

}  // namespace olfui
