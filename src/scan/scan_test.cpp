#include "scan/scan_test.hpp"

#include <cassert>

namespace olfui {

ScanPattern scan_pattern_from_atpg(const Netlist& nl, const ScanChains& chains,
                                   const AtpgPattern& atpg) {
  ScanPattern out;
  // Map flop output nets to (chain, position).
  std::unordered_map<NetId, std::pair<std::size_t, std::size_t>> flop_pos;
  for (std::size_t c = 0; c < chains.chains.size(); ++c) {
    const ScanChain& chain = chains.chains[c];
    out.chain_state.emplace_back(chain.elements.size(), false);
    for (std::size_t k = 0; k < chain.elements.size(); ++k)
      flop_pos[nl.cell(chain.elements[k].flop).out] = {c, k};
  }
  for (const auto& [net, value] : atpg.assignment) {
    const auto it = flop_pos.find(net);
    if (it != flop_pos.end()) {
      out.chain_state[it->second.first][it->second.second] = value;
    } else {
      out.pi[net] = value;
    }
  }
  return out;
}

ScanTestRunner::ScanTestRunner(const Netlist& nl, const ScanChains& chains)
    : nl_(&nl), chains_(&chains), topo_(PackedTopology::build(nl)) {}

void ScanTestRunner::inject(PackedSim& sim, std::span<const FaultId> faults,
                            const FaultUniverse& universe) const {
  assert(faults.size() <= 63);
  sim.clear_injections();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = universe.fault(faults[i]);
    sim.add_injection({f.pin.cell, f.pin.pin, f.sa1, 1ULL << (i + 1)});
  }
}

void ScanTestRunner::set_pin_constraint(NetId net, bool value) {
  constraints_.emplace_back(net, value);
}

void ScanTestRunner::drive_quiet_inputs(PackedSim& sim) const {
  for (CellId c : nl_->input_cells()) sim.set_input_all(nl_->cell(c).out, false);
  for (auto [net, value] : constraints_) sim.set_input_all(net, value);
}

std::size_t ScanTestRunner::max_chain_length() const {
  std::size_t n = 0;
  for (const ScanChain& c : chains_->chains) n = std::max(n, c.elements.size());
  return n;
}

std::uint64_t ScanTestRunner::run_pattern(std::span<const FaultId> faults,
                                          const FaultUniverse& universe,
                                          const ScanPattern& pattern) const {
  PackedSim sim(topo_);
  // Shifting toggles every chain flop every cycle — the whole netlist is
  // active, so dirty-set scheduling is pure overhead here. The levelized
  // sweep is the faster kernel for scan workloads.
  sim.set_eval_mode(PackedEvalMode::kFullSweep);
  inject(sim, faults, universe);
  sim.power_on();
  drive_quiet_inputs(sim);

  // Lanes 1..n carry faults; a full 63-fault batch needs all of ~1ULL,
  // which (1 << 64) - 2 cannot express without UB on the shift.
  const std::uint64_t fault_lanes =
      faults.empty()       ? 0
      : faults.size() < 63 ? ((1ULL << (faults.size() + 1)) - 2)
                           : ~1ULL;
  std::uint64_t diverged = 0;

  // Shift-in: SE active, serial data such that after max_len cycles each
  // element k of chain c holds chain_state[c][k] (element n-1 loads first).
  const bool scan_value = !chains_->se_functional_value;
  sim.set_input_all(chains_->se_net, scan_value);
  const std::size_t len = max_chain_length();
  for (std::size_t t = 0; t < len; ++t) {
    for (std::size_t c = 0; c < chains_->chains.size(); ++c) {
      const ScanChain& chain = chains_->chains[c];
      const std::size_t n = chain.elements.size();
      bool bit = false;
      // After (len - t - 1) more shifts the value fed now sits at element
      // len - 1 - t ... clamp for shorter chains.
      if (t >= len - n) {
        const std::size_t pos = n - 1 - (t - (len - n));
        bit = pattern.chain_state[c][pos];
      }
      sim.set_input_all(chain.scan_in_net, bit);
    }
    sim.eval();
    sim.clock();
  }

  // Functional capture: SE inactive, apply the pattern's primary inputs,
  // observe every primary output (tester visibility).
  sim.set_input_all(chains_->se_net, chains_->se_functional_value);
  drive_quiet_inputs(sim);
  sim.set_input_all(chains_->se_net, chains_->se_functional_value);
  for (const auto& [net, value] : pattern.pi) sim.set_input_all(net, value);
  sim.eval();
  for (CellId oc : nl_->output_cells()) {
    const std::uint64_t w = sim.observed(oc);
    const std::uint64_t good = (w & 1ULL) ? ~0ULL : 0ULL;
    diverged |= (w ^ good);
  }
  sim.clock();  // capture

  // Shift-out: compare the unloaded state stream on every scan-out port.
  sim.set_input_all(chains_->se_net, scan_value);
  for (std::size_t t = 0; t < len; ++t) {
    sim.eval();
    for (const ScanChain& chain : chains_->chains) {
      const std::uint64_t w = sim.observed(chain.scan_out_port);
      const std::uint64_t good = (w & 1ULL) ? ~0ULL : 0ULL;
      diverged |= (w ^ good);
    }
    sim.clock();
  }

  diverged &= fault_lanes;
  std::uint64_t detected = 0;
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (diverged & (1ULL << (i + 1))) detected |= 1ULL << i;
  return detected;
}

std::uint64_t ScanTestRunner::run_chain_test(std::span<const FaultId> faults,
                                             const FaultUniverse& universe) const {
  PackedSim sim(topo_);
  sim.set_eval_mode(PackedEvalMode::kFullSweep);  // see run_pattern
  inject(sim, faults, universe);
  sim.power_on();
  drive_quiet_inputs(sim);
  const std::uint64_t fault_lanes =
      faults.empty()       ? 0
      : faults.size() < 63 ? ((1ULL << (faults.size() + 1)) - 2)
                           : ~1ULL;  // see run_pattern: shift-by-64 is UB
  std::uint64_t diverged = 0;

  const bool scan_value = !chains_->se_functional_value;
  sim.set_input_all(chains_->se_net, scan_value);
  const std::size_t len = max_chain_length();
  // Flush a 0-0-1-1 sequence through: exposes stuck serial links both ways
  // and slow/incomplete chains. Observe continuously.
  for (std::size_t t = 0; t < len + 2 * len; ++t) {
    const bool bit = (t / 2) % 2 == 1;
    for (const ScanChain& chain : chains_->chains)
      sim.set_input_all(chain.scan_in_net, bit);
    sim.eval();
    for (const ScanChain& chain : chains_->chains) {
      const std::uint64_t w = sim.observed(chain.scan_out_port);
      const std::uint64_t good = (w & 1ULL) ? ~0ULL : 0ULL;
      diverged |= (w ^ good);
    }
    sim.clock();
  }

  diverged &= fault_lanes;
  std::uint64_t detected = 0;
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (diverged & (1ULL << (i + 1))) detected |= 1ULL << i;
  return detected;
}

CampaignTest make_chain_test_campaign(const ScanTestRunner& runner,
                                      const FaultUniverse& universe) {
  return make_function_test(
      "chain_test", [&runner, &universe](std::span<const FaultId> faults) {
        return runner.run_chain_test(faults, universe);
      });
}

CampaignTest make_pattern_campaign(const ScanTestRunner& runner,
                                   const FaultUniverse& universe,
                                   const ScanPattern& pattern,
                                   std::string name) {
  return make_function_test(
      std::move(name),
      [&runner, &universe, &pattern](std::span<const FaultId> faults) {
        return runner.run_pattern(faults, universe, pattern);
      });
}

}  // namespace olfui
