#include "scan/scan_atpg.hpp"

#include <unordered_map>

#include "atpg/podem.hpp"
#include "util/rng.hpp"

namespace olfui {
namespace {

/// Equivalence-class helper: grading runs on class representatives only
/// and detection is propagated to every member (equivalent faults are
/// detected by exactly the same tests).
class ClassMap {
 public:
  ClassMap(const FaultUniverse& universe)
      : map_(universe.collapse_map()) {
    for (FaultId f = 0; f < map_.size(); ++f) members_[map_[f]].push_back(f);
  }

  FaultId rep(FaultId f) const { return map_[f]; }

  void mark_class_detected(FaultList& fl, FaultId rep_id,
                           std::size_t& counter) const {
    for (FaultId m : members_.at(rep_id)) {
      if (fl.detect_state(m) == DetectState::kUndetected &&
          fl.untestable_kind(m) == UntestableKind::kNone) {
        fl.set_detected(m);
        ++counter;
      }
    }
  }

 private:
  std::vector<FaultId> map_;
  std::unordered_map<FaultId, std::vector<FaultId>> members_;
};

/// Open (undetected, not untestable) class representatives.
std::vector<FaultId> open_reps(const FaultList& fl, const ClassMap& classes) {
  std::vector<FaultId> out;
  for (FaultId f = 0; f < fl.size(); ++f) {
    if (classes.rep(f) != f) continue;
    if (fl.detect_state(f) == DetectState::kUndetected &&
        fl.untestable_kind(f) == UntestableKind::kNone)
      out.push_back(f);
  }
  return out;
}

ScanPattern random_pattern(const Netlist& nl, const ScanChains& chains,
                           Rng& rng,
                           const std::vector<std::pair<NetId, bool>>& pins) {
  ScanPattern p;
  for (CellId ic : nl.input_cells()) {
    const NetId n = nl.cell(ic).out;
    if (n == chains.se_net) continue;
    p.pi[n] = rng.next_bool();
  }
  for (auto [net, value] : pins) p.pi[net] = value;
  for (const ScanChain& chain : chains.chains) {
    std::vector<bool> state(chain.elements.size());
    for (std::size_t k = 0; k < state.size(); ++k) state[k] = rng.next_bool();
    p.chain_state.push_back(std::move(state));
  }
  return p;
}

}  // namespace

ScanAtpgResult generate_scan_tests(const Netlist& nl, const ScanChains& chains,
                                   const FaultUniverse& universe, FaultList& fl,
                                   const ScanAtpgOptions& opts) {
  ScanAtpgResult result;
  ScanTestRunner runner(nl, chains);
  for (auto [net, value] : opts.pin_constraints)
    runner.set_pin_constraint(net, value);
  Rng rng(opts.seed);
  const ClassMap classes(universe);
  const CampaignEngine engine(universe, opts.campaign);

  // All batch grading goes through the orchestrator; equivalence-class
  // propagation stays here, applied over the deterministic per-target
  // detection flags it returns.
  const auto propagate = [&](std::span<const FaultId> targets,
                             const BitVec& det, std::size_t& counter) {
    for (std::size_t i = det.find_first(); i < det.size();
         i = det.find_next(i + 1))
      classes.mark_class_detected(fl, targets[i], counter);
  };

  const auto grade = [&](const ScanPattern& pattern, std::size_t& counter) {
    std::size_t before = counter;
    const std::vector<FaultId> targets = open_reps(fl, classes);
    const CampaignTest test =
        make_pattern_campaign(runner, universe, pattern, "pattern");
    propagate(targets, engine.grade(targets, test), counter);
    return counter - before;
  };

  // Phase 1: chain integrity test.
  {
    const std::vector<FaultId> targets = open_reps(fl, classes);
    const CampaignTest test = make_chain_test_campaign(runner, universe);
    propagate(targets, engine.grade(targets, test),
              result.detected_by_chain_test);
  }

  // Phase 2: random patterns with fault dropping.
  for (int p = 0; p < opts.random_patterns; ++p) {
    ScanPattern pat = random_pattern(nl, chains, rng, opts.pin_constraints);
    if (grade(pat, result.detected_by_random) > 0)
      result.patterns.push_back(std::move(pat));
  }

  // Phase 3: deterministic PODEM on surviving representatives. Each
  // generated pattern is applied through the chains and graded against
  // its own target class; a full cross-grade is done for every 32nd kept
  // pattern to keep fault dropping effective without quadratic cost.
  Podem podem(nl, universe, {.backtrack_limit = opts.backtrack_limit});
  std::vector<FaultId> targets = open_reps(fl, classes);
  if (targets.size() > opts.max_deterministic_targets)
    targets.resize(opts.max_deterministic_targets);
  std::size_t kept = 0;
  for (FaultId f : targets) {
    if (fl.detect_state(f) == DetectState::kDetected) continue;  // dropped
    const AtpgResult r = podem.run(f);
    if (r.outcome == AtpgOutcome::kUntestable) {
      fl.mark_untestable(f, UntestableKind::kRedundant,
                         OnlineSource::kStructural);
      ++result.proven_untestable;
      continue;
    }
    if (r.outcome == AtpgOutcome::kAborted) {
      ++result.aborted;
      continue;
    }
    ScanPattern pat = scan_pattern_from_atpg(nl, chains, *r.pattern);
    for (auto [net, value] : opts.pin_constraints)
      pat.pi.try_emplace(net, value);
    std::size_t got = 0;
    if (++kept % 32 == 0) {
      got = grade(pat, result.detected_by_deterministic);
    } else {
      const std::uint64_t det =
          runner.run_pattern(std::span(&f, 1), universe, pat);
      if (det & 1)
        classes.mark_class_detected(fl, f, result.detected_by_deterministic);
      got = det & 1;
    }
    if (got > 0) result.patterns.push_back(std::move(pat));
  }
  return result;
}

}  // namespace olfui
