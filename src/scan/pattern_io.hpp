// olfui/scan: scan-pattern file I/O.
//
// A minimal STIL-flavoured text format so generated manufacturing tests
// can be stored, diffed and replayed:
//
//     # olfui scan patterns v1
//     pattern 0
//       pi rstn 1
//       pi instr_i3 0
//       chain 0 01101001
//       chain 1 11100
//     end
//
// Chain strings are listed scan-in-first (element 0 first). Unlisted PIs
// default to 0 on replay.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "scan/scan_test.hpp"

namespace olfui {

class PatternIoError : public std::runtime_error {
 public:
  PatternIoError(const std::string& msg, int line)
      : std::runtime_error("patterns:" + std::to_string(line) + ": " + msg),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Serializes patterns; PI nets are written by name (resolved via `nl`).
std::string write_patterns(const Netlist& nl,
                           const std::vector<ScanPattern>& patterns);

/// Parses the format back; PI names are resolved against `nl` (unknown
/// names raise PatternIoError).
std::vector<ScanPattern> read_patterns(const Netlist& nl,
                                       const std::string& text);

}  // namespace olfui
