// olfui/scan: scan insertion, scan-chain tracing, and the §3.1 pruner.
//
// Insertion replaces every flop's D connection with the mux-scan structure
// of the paper's Fig. 2 (an explicit MUX2 in front of the flop: A = the
// functional input FI, B = the serial input SI, S = the shared scan
// enable SE), stitches the muxed flops into chains, and optionally places
// buffers on the serial path between flops — the paper notes such buffers
// must be pruned "analogously to the faults affecting SO".
//
// The tracer re-discovers chains structurally (it does not trust insertion
// metadata): starting from each scan-in port it follows the serial path
// through buffers/inverters into the B-input of scan muxes, mirroring the
// paper's "ad-hoc tool able to trace the chain and directly select the
// on-line functionally untestable faults".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_list.hpp"
#include "fault/universe.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace olfui {

struct ScanConfig {
  int num_chains = 1;
  /// Buffers inserted on each serial link (flop Q -> next SI).
  int buffers_per_link = 1;
  /// Logic value of SE selecting functional mode (mission value).
  bool se_functional_value = false;
};

/// One scanned flop: its mux, flop, and the buffers on the serial link
/// *feeding* this element (or feeding scan-out for the trailing buffers).
struct ScanElement {
  CellId mux = kInvalidId;
  CellId flop = kInvalidId;
  std::vector<CellId> link_buffers;
};

struct ScanChain {
  NetId scan_in_net = kInvalidId;
  CellId scan_out_port = kInvalidId;
  std::vector<ScanElement> elements;
  /// Buffers between the last flop and the scan-out port.
  std::vector<CellId> tail_buffers;
};

struct ScanChains {
  NetId se_net = kInvalidId;
  bool se_functional_value = false;
  std::vector<ScanChain> chains;

  std::size_t num_flops() const;
};

/// Inserts mux-scan structures and stitches chains over all flops of `nl`
/// (in flop id order, split contiguously across chains). Adds ports
/// "scan_en", "scan_in<k>", "scan_out<k>".
ScanChains insert_scan(Netlist& nl, const ScanConfig& config);

/// Structurally traces all scan chains of a netlist given its SE / scan
/// port names. Throws std::runtime_error if a chain cannot be followed.
ScanChains trace_scan(const Netlist& nl, const std::string& se_port = "scan_en",
                      const std::string& scan_in_prefix = "scan_in",
                      const std::string& scan_out_prefix = "scan_out");

/// §3.1 direct pruning (Fig. 2): marks as on-line functionally untestable
///  * both stuck-at faults on each SI branch (mux B pin),
///  * the stuck-at-<functional value> fault on each SE branch (mux S pin)
///    and on the SE stem,
///  * every fault of serial-path buffers, of the scan-in stems and of the
///    scan-out ports.
/// SE stuck-at-<scan value> is deliberately left testable ("the only fault
/// that needs to be taken into consideration"). Returns #newly marked.
std::size_t prune_scan_faults(const ScanChains& chains, const FaultUniverse& universe,
                              FaultList& fl);

/// Mission configuration equivalent of the scan restrictions (SE tied to
/// its functional value, scan-out ports unread) for cross-checking the
/// direct pruner against the structural engine.
MissionConfig scan_mission_config(const Netlist& nl, const ScanChains& chains);

}  // namespace olfui
