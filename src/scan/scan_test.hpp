// olfui/scan: manufacturing-mode scan test application.
//
// The paper's premise is that scan/debug faults are *testable until the
// structures they belong to are used, but not in the final environment*.
// This module provides the manufacturing side of that statement so it can
// be demonstrated, not just asserted:
//
//  * chain (flush) tests — shift a 0011-style pattern through every chain
//    and compare what comes out; this catches the serial-path faults
//    (SI/SE/buffer/scan-out) that the on-line flow prunes;
//  * full-scan pattern application — load a PODEM-generated full-scan
//    pattern through the chains, apply primary inputs, evaluate, observe
//    the primary outputs, capture, and shift the captured state out.
//
// Together with the mission-mode fault simulator this closes the loop:
// a fault the flow prunes is detected here (tester access) and never
// detected there (mission access).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "atpg/podem.hpp"
#include "campaign/campaign.hpp"
#include "fault/universe.hpp"
#include "scan/scan.hpp"
#include "sim/packed.hpp"

namespace olfui {

/// One full-scan test: primary-input values plus the state to load into
/// every chain (chain_state[c][k] is the value for chain c's k-th element,
/// counted from scan-in).
struct ScanPattern {
  std::unordered_map<NetId, bool> pi;
  std::vector<std::vector<bool>> chain_state;
};

/// Converts a PODEM full-scan pattern (values on PI nets and flop Q nets)
/// into shift data for the given chains. Unassigned bits default to 0.
ScanPattern scan_pattern_from_atpg(const Netlist& nl, const ScanChains& chains,
                                   const AtpgPattern& atpg);

class ScanTestRunner {
 public:
  ScanTestRunner(const Netlist& nl, const ScanChains& chains);

  /// Holds a primary input at a fixed value during testing (e.g. rstn = 1
  /// so chain flops with asynchronous reset can hold shifted data). A
  /// pattern's own PI assignment overrides the constraint during capture.
  void set_pin_constraint(NetId net, bool value);

  /// Applies one full-scan pattern to up to 63 faults (lane 0 is the good
  /// machine): shift-in, functional capture with PO observation, shift-out
  /// with scan-out observation. Returns the per-fault detection mask.
  /// Builds its own PackedSim per call (over the runner's shared
  /// topology), so concurrent calls are safe — which is what lets the
  /// campaign orchestrator fan batches out.
  std::uint64_t run_pattern(std::span<const FaultId> faults,
                            const FaultUniverse& universe,
                            const ScanPattern& pattern) const;

  /// Chain integrity (flush) test: shifts a 00110011... sequence through
  /// all chains with SE held active and compares scan-out streams against
  /// the good machine. Detects serial-path faults without any ATPG.
  /// Thread-safe like run_pattern.
  std::uint64_t run_chain_test(std::span<const FaultId> faults,
                               const FaultUniverse& universe) const;

 private:
  void inject(PackedSim& sim, std::span<const FaultId> faults,
              const FaultUniverse& universe) const;
  void drive_quiet_inputs(PackedSim& sim) const;
  std::size_t max_chain_length() const;

  const Netlist* nl_;
  const ScanChains* chains_;
  /// Levelized order + fanout CSR, built once and shared by the per-call
  /// simulators instead of being rebuilt for every pattern x batch.
  std::shared_ptr<const PackedTopology> topo_;
  std::vector<std::pair<NetId, bool>> constraints_;
};

/// Campaign adapters: the manufacturing-test kernels as orchestrator
/// tests. `runner`, `universe`, and (for patterns) `pattern` must outlive
/// the campaign that grades the test.
CampaignTest make_chain_test_campaign(const ScanTestRunner& runner,
                                      const FaultUniverse& universe);
CampaignTest make_pattern_campaign(const ScanTestRunner& runner,
                                   const FaultUniverse& universe,
                                   const ScanPattern& pattern,
                                   std::string name);

}  // namespace olfui
