// olfui/scan: full-scan manufacturing test generation.
//
// A compact production-style ATPG flow over the scan infrastructure:
//   1. chain integrity test (flush);
//   2. random-pattern phase: random full-scan patterns graded by parallel
//      fault simulation through the scan-test runner (fault dropping);
//   3. deterministic phase: PODEM targets the survivors, each generated
//      pattern is applied through the chains and re-graded.
//
// Its purpose in this reproduction: measure the *manufacturing* stuck-at
// coverage of the very same netlist whose *mission* coverage the SBST
// campaign measures — the two coverages whose gap is the paper's subject.
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/campaign.hpp"
#include "fault/fault_list.hpp"
#include "scan/scan_test.hpp"

namespace olfui {

struct ScanAtpgOptions {
  int random_patterns = 64;
  std::uint64_t seed = 1;
  /// Cap on PODEM targets in the deterministic phase (collapsed
  /// representatives are targeted first).
  std::size_t max_deterministic_targets = 4000;
  std::size_t backtrack_limit = 2000;
  /// Primary inputs to hold at fixed values during test (e.g. rstn).
  std::vector<std::pair<NetId, bool>> pin_constraints;
  /// Pattern grading runs through the campaign orchestrator; this controls
  /// its threading and sharding (results are thread-count independent).
  CampaignOptions campaign;
};

struct ScanAtpgResult {
  std::vector<ScanPattern> patterns;  ///< kept patterns (detected something)
  std::size_t detected_by_chain_test = 0;
  std::size_t detected_by_random = 0;
  std::size_t detected_by_deterministic = 0;
  std::size_t proven_untestable = 0;  ///< PODEM redundancy proofs
  std::size_t aborted = 0;

  std::size_t total_detected() const {
    return detected_by_chain_test + detected_by_random +
           detected_by_deterministic;
  }
};

/// Runs the flow, marking detections (and PODEM-proven redundancies) in
/// `fl`. Faults already detected or untestable in `fl` are skipped, so the
/// flow composes with prior campaigns.
ScanAtpgResult generate_scan_tests(const Netlist& nl, const ScanChains& chains,
                                   const FaultUniverse& universe, FaultList& fl,
                                   const ScanAtpgOptions& opts = {});

}  // namespace olfui
