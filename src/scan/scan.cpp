#include "scan/scan.hpp"

#include <cassert>
#include <stdexcept>

#include "util/strings.hpp"

namespace olfui {

std::size_t ScanChains::num_flops() const {
  std::size_t n = 0;
  for (const ScanChain& c : chains) n += c.elements.size();
  return n;
}

ScanChains insert_scan(Netlist& nl, const ScanConfig& config) {
  ScanChains out;
  out.se_functional_value = config.se_functional_value;
  out.se_net = nl.add_input("scan_en");

  const std::vector<CellId> flops = nl.flops();
  if (flops.empty()) return out;
  const int nchains = std::max(1, config.num_chains);
  const std::size_t per_chain = (flops.size() + nchains - 1) / nchains;

  std::size_t idx = 0;
  for (int ch = 0; ch < nchains && idx < flops.size(); ++ch) {
    ScanChain chain;
    chain.scan_in_net = nl.add_input(format("scan_in%d", ch));
    NetId serial = chain.scan_in_net;
    const std::size_t end = std::min(flops.size(), idx + per_chain);
    for (std::size_t k = idx; k < end; ++k) {
      const CellId flop = flops[k];
      ScanElement elem;
      elem.flop = flop;
      // Optional buffers on the serial link feeding this element.
      for (int b = 0; b < config.buffers_per_link; ++b) {
        const NetId bnet =
            nl.add_net(format("scan/link%d_%zu_b%d", ch, k - idx, b));
        elem.link_buffers.push_back(nl.add_cell(
            CellType::kBuf, format("scan/u_link%d_%zu_b%d", ch, k - idx, b),
            bnet, {serial}));
        serial = bnet;
      }
      // Fig. 2 mux-scan structure: A = functional input, B = SI, S = SE.
      const NetId fi = nl.cell(flop).ins[kDffD];
      const NetId md = nl.add_net(format("scan/md%d_%zu", ch, k - idx));
      elem.mux = nl.add_cell(CellType::kMux2,
                             format("scan/u_smux%d_%zu", ch, k - idx), md,
                             {fi, serial, out.se_net});
      nl.rewire_input(flop, kDffD, md);
      serial = nl.cell(flop).out;  // Q continues the chain (SO)
      chain.elements.push_back(std::move(elem));
    }
    // Trailing buffers + scan-out port.
    for (int b = 0; b < config.buffers_per_link; ++b) {
      const NetId bnet = nl.add_net(format("scan/tail%d_b%d", ch, b));
      chain.tail_buffers.push_back(
          nl.add_cell(CellType::kBuf, format("scan/u_tail%d_b%d", ch, b), bnet,
                      {serial}));
      serial = bnet;
    }
    chain.scan_out_port = nl.add_output(format("scan_out%d", ch), serial);
    out.chains.push_back(std::move(chain));
    idx = end;
  }
  return out;
}

namespace {

/// Follows a serial net through BUF/NOT cells until it reaches the B pin of
/// a scan mux (a MUX2 whose S input is `se_net`) or an OUTPUT port.
/// Returns the buffers traversed; sets exactly one of `mux` / `port`.
void follow_serial(const Netlist& nl, NetId serial, NetId se_net,
                   std::vector<CellId>& buffers, CellId& mux, CellId& port) {
  mux = kInvalidId;
  port = kInvalidId;
  std::size_t guard = nl.num_cells() + 1;
  while (guard-- > 0) {
    // Prefer a direct scan-mux / port consumer on this net.
    CellId next_buf = kInvalidId;
    for (const Pin& p : nl.net(serial).fanout) {
      const Cell& c = nl.cell(p.cell);
      if (c.type == CellType::kMux2 && p.pin == kMuxB + 1 &&
          c.ins[kMuxS] == se_net) {
        mux = p.cell;
        return;
      }
      if (c.type == CellType::kOutput && starts_with(c.name, "scan_out")) {
        port = p.cell;
        return;
      }
      if ((c.type == CellType::kBuf || c.type == CellType::kNot) &&
          starts_with(c.name, "scan/"))
        next_buf = p.cell;
    }
    if (next_buf == kInvalidId)
      throw std::runtime_error("trace_scan: serial path broken at net '" +
                               nl.net(serial).name + "'");
    buffers.push_back(next_buf);
    serial = nl.cell(next_buf).out;
  }
  throw std::runtime_error("trace_scan: serial path loop");
}

}  // namespace

ScanChains trace_scan(const Netlist& nl, const std::string& se_port,
                      const std::string& scan_in_prefix,
                      const std::string& scan_out_prefix) {
  ScanChains out;
  out.se_net = nl.find_input(se_port);
  if (out.se_net == kInvalidId)
    throw std::runtime_error("trace_scan: no scan-enable port '" + se_port + "'");
  for (int ch = 0;; ++ch) {
    const NetId si = nl.find_input(scan_in_prefix + std::to_string(ch));
    if (si == kInvalidId) break;
    ScanChain chain;
    chain.scan_in_net = si;
    NetId serial = si;
    while (true) {
      std::vector<CellId> buffers;
      CellId mux = kInvalidId, port = kInvalidId;
      follow_serial(nl, serial, out.se_net, buffers, mux, port);
      if (port != kInvalidId) {
        chain.tail_buffers = std::move(buffers);
        chain.scan_out_port = port;
        break;
      }
      ScanElement elem;
      elem.link_buffers = std::move(buffers);
      elem.mux = mux;
      // The scanned flop is the (unique) flop fed by the mux output.
      const NetId md = nl.cell(mux).out;
      for (const Pin& p : nl.net(md).fanout) {
        if (is_sequential(nl.cell(p.cell).type) && p.pin == kDffD + 1) {
          elem.flop = p.cell;
          break;
        }
      }
      if (elem.flop == kInvalidId)
        throw std::runtime_error("trace_scan: scan mux '" + nl.cell(mux).name +
                                 "' does not feed a flop");
      serial = nl.cell(elem.flop).out;
      chain.elements.push_back(std::move(elem));
    }
    out.chains.push_back(std::move(chain));
  }
  (void)scan_out_prefix;  // ports are recognized by name inside follow_serial
  return out;
}

std::size_t prune_scan_faults(const ScanChains& chains,
                              const FaultUniverse& universe, FaultList& fl) {
  std::size_t newly = 0;
  const auto mark = [&](FaultId f, UntestableKind k) {
    if (fl.untestable_kind(f) == UntestableKind::kNone) {
      fl.mark_untestable(f, k, OnlineSource::kScan);
      ++newly;
    }
  };
  const auto mark_cell = [&](CellId cell, UntestableKind k) {
    std::vector<FaultId> ids;
    universe.faults_of_cell(cell, ids);
    for (FaultId f : ids) mark(f, k);
  };
  const Netlist& nl = universe.netlist();
  const bool func = chains.se_functional_value;

  // SE stem: the stuck-at-<functional value> on the scan-enable port pin.
  if (chains.se_net != kInvalidId) {
    const CellId se_drv = nl.net(chains.se_net).driver;
    mark(universe.id_of({se_drv, 0}, func), UntestableKind::kTied);
  }
  for (const ScanChain& chain : chains.chains) {
    // Scan-in stem feeds only the serial path: unread in mission mode.
    const CellId si_drv = nl.net(chain.scan_in_net).driver;
    mark_cell(si_drv, UntestableKind::kUnobservable);
    for (const ScanElement& e : chain.elements) {
      for (CellId buf : e.link_buffers)
        mark_cell(buf, UntestableKind::kUnobservable);
      // SI branch (mux B pin): never selected -> both faults untestable.
      const Pin si_pin{e.mux, static_cast<std::uint8_t>(kMuxB + 1)};
      mark(universe.id_of(si_pin, false), UntestableKind::kUnobservable);
      mark(universe.id_of(si_pin, true), UntestableKind::kUnobservable);
      // SE branch (mux S pin): stuck-at-<functional value> only; the
      // opposite fault corrupts mission behaviour and stays testable.
      const Pin se_pin{e.mux, static_cast<std::uint8_t>(kMuxS + 1)};
      mark(universe.id_of(se_pin, func), UntestableKind::kTied);
    }
    for (CellId buf : chain.tail_buffers)
      mark_cell(buf, UntestableKind::kUnobservable);
    if (chain.scan_out_port != kInvalidId)
      mark_cell(chain.scan_out_port, UntestableKind::kUnobservable);
  }
  return newly;
}

MissionConfig scan_mission_config(const Netlist& nl, const ScanChains& chains) {
  MissionConfig cfg;
  if (chains.se_net != kInvalidId)
    cfg.tie(chains.se_net, chains.se_functional_value);
  for (const ScanChain& chain : chains.chains) {
    if (chain.scan_out_port != kInvalidId) cfg.unobserve(chain.scan_out_port);
  }
  (void)nl;
  return cfg;
}

}  // namespace olfui
