#include "scan/pattern_io.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace olfui {

std::string write_patterns(const Netlist& nl,
                           const std::vector<ScanPattern>& patterns) {
  std::string out = "# olfui scan patterns v1\n";
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    out += format("pattern %zu\n", p);
    // Deterministic order: sort PI assignments by net name.
    std::vector<std::pair<std::string, bool>> pis;
    for (const auto& [net, value] : patterns[p].pi)
      pis.emplace_back(nl.net(net).name, value);
    std::sort(pis.begin(), pis.end());
    for (const auto& [name, value] : pis)
      out += format("  pi %s %d\n", name.c_str(), value ? 1 : 0);
    for (std::size_t c = 0; c < patterns[p].chain_state.size(); ++c) {
      out += format("  chain %zu ", c);
      for (bool b : patterns[p].chain_state[c]) out += b ? '1' : '0';
      out += '\n';
    }
    out += "end\n";
  }
  return out;
}

std::vector<ScanPattern> read_patterns(const Netlist& nl,
                                       const std::string& text) {
  std::vector<ScanPattern> out;
  ScanPattern current;
  bool in_pattern = false;
  int line_no = 0;
  for (std::string_view raw : split(text, "\n")) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto words = split(line, " \t");
    if (words[0] == "pattern") {
      if (in_pattern) throw PatternIoError("nested pattern", line_no);
      in_pattern = true;
      current = ScanPattern{};
    } else if (words[0] == "end") {
      if (!in_pattern) throw PatternIoError("stray end", line_no);
      out.push_back(std::move(current));
      in_pattern = false;
    } else if (words[0] == "pi") {
      if (!in_pattern || words.size() != 3)
        throw PatternIoError("malformed pi line", line_no);
      const NetId net = nl.find_input(words[1]);
      if (net == kInvalidId)
        throw PatternIoError("unknown input '" + std::string(words[1]) + "'",
                             line_no);
      current.pi[net] = words[2] == "1";
    } else if (words[0] == "chain") {
      if (!in_pattern || words.size() != 3)
        throw PatternIoError("malformed chain line", line_no);
      const auto idx = parse_uint(words[1]);
      if (!idx) throw PatternIoError("bad chain index", line_no);
      if (current.chain_state.size() <= *idx) current.chain_state.resize(*idx + 1);
      std::vector<bool> bits;
      for (char c : words[2]) {
        if (c != '0' && c != '1')
          throw PatternIoError("chain data must be 0/1", line_no);
        bits.push_back(c == '1');
      }
      current.chain_state[*idx] = std::move(bits);
    } else {
      throw PatternIoError("unknown keyword '" + std::string(words[0]) + "'",
                           line_no);
    }
  }
  if (in_pattern) throw PatternIoError("missing end", line_no);
  return out;
}

}  // namespace olfui
