// olfui/util: deterministic PRNG (xoshiro256**) for pattern generation.
// A fixed, documented generator keeps ATPG / fault-simulation results
// reproducible across platforms, unlike std::default_random_engine.
#pragma once

#include <cstdint>

namespace olfui {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  std::uint64_t next_u64();
  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }
  bool next_bool() { return (next_u64() >> 63) != 0; }

 private:
  std::uint64_t s_[4];
};

}  // namespace olfui
