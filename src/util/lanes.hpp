// olfui/util: width-parametric packed lane words.
//
// Parallel-pattern fault grading packs one good machine (lane 0) plus
// W-1 faulty machines into every net value. The packed word was
// hard-wired to uint64_t; this header makes the width a template
// parameter so the kernel can be instantiated at 128/256 lanes over
// GCC/Clang vector extensions while the scalar uint64_t path stays the
// W=64 specialization (and the only one guaranteed on every compiler).
#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>

namespace olfui {

// Vector extensions are a GNU dialect (Clang implements it too). Without
// them only the scalar 64-lane kernel exists and resolve_lane_width
// falls back to 64.
#if defined(__GNUC__) || defined(__clang__)
#define OLFUI_HAS_WIDE_LANES 1
#else
#define OLFUI_HAS_WIDE_LANES 0
#endif

template <int W>
struct LaneWordTraits;

template <>
struct LaneWordTraits<64> {
  using Word = std::uint64_t;
  static constexpr int kWords = 1;
};

#if OLFUI_HAS_WIDE_LANES
template <>
struct LaneWordTraits<128> {
  typedef std::uint64_t Word __attribute__((vector_size(16)));
  static constexpr int kWords = 2;
};

template <>
struct LaneWordTraits<256> {
  typedef std::uint64_t Word __attribute__((vector_size(32)));
  static constexpr int kWords = 4;
};

inline constexpr int kMaxLaneWidth = 256;
#else
inline constexpr int kMaxLaneWidth = 64;
#endif

/// The packed word at width W: uint64_t at 64, a vector of W/64 such
/// words above. Bitwise &,|,^,~ and subscripting work on both; scalar
/// comparison and scalar initialization do NOT work on the vector types
/// — use the lane_* helpers below.
template <int W>
using LaneWord = typename LaneWordTraits<W>::Word;

constexpr bool lane_width_supported(int w) {
  return w == 64 || ((w == 128 || w == 256) && kMaxLaneWidth >= 256);
}

/// The width this build will actually grade at: the request when an
/// instantiated kernel exists for it, else the scalar 64-lane fallback.
constexpr int resolve_lane_width(int w) {
  return lane_width_supported(w) ? w : 64;
}

// --- uniform helpers over scalar and vector words --------------------------
// The non-template uint64 overloads win overload resolution at W=64, so
// the scalar kernel compiles to exactly the pre-refactor code.

inline constexpr std::uint64_t word_of(std::uint64_t v, int) { return v; }
inline constexpr void set_word_of(std::uint64_t& v, int, std::uint64_t x) {
  v = x;
}
inline constexpr bool lane_any(std::uint64_t v) { return v != 0; }

template <class Word>
inline std::uint64_t word_of(const Word& v, int k) {
  return v[k];
}

template <class Word>
inline void set_word_of(Word& v, int k, std::uint64_t x) {
  v[k] = x;
}

template <class Word>
inline bool lane_any(const Word& v) {
  std::uint64_t acc = 0;
  for (int k = 0; k < static_cast<int>(sizeof(Word) / 8); ++k) acc |= v[k];
  return acc != 0;
}

/// a != b in any lane. Vector != yields a vector, so every scalar
/// comparison in the kernels routes through this instead.
template <class Word>
inline bool lane_neq(const Word& a, const Word& b) {
  return lane_any(a ^ b);
}

/// All lanes set / all lanes clear from one bit (vector words cannot be
/// initialized from a scalar).
template <class Word>
inline Word lane_broadcast(bool bit) {
  return bit ? ~Word{} : Word{};
}

/// A word with only `lane` set.
template <class Word>
inline Word lane_bit(int lane) {
  Word w{};
  set_word_of(w, lane / 64, 1ULL << (lane % 64));
  return w;
}

/// Bit `lane` of a packed word.
template <class Word>
inline bool lane_test(const Word& v, int lane) {
  return (word_of(v, lane / 64) >> (lane % 64)) & 1ULL;
}

/// Per-batch detection mask: bit i set = fault i of the batch detected.
/// Storage is fixed at kMaxLaneWidth-capable size (4 x 64 bits, enough
/// for a 256-lane batch's 255 faults) no matter the active width, so the
/// campaign merge, wire protocol, and report code stay width-agnostic.
/// The uint64 constructor is deliberately one-way: legacy 63-lane
/// kernels (and literals like 0) widen into a mask, but a mask never
/// narrows back implicitly.
class LaneMask {
 public:
  static constexpr int kWords = 4;

  constexpr LaneMask() = default;
  constexpr LaneMask(std::uint64_t low) : words_{low, 0, 0, 0} {}

  constexpr bool bit(int i) const { return (words_[i / 64] >> (i % 64)) & 1ULL; }
  constexpr void set_bit(int i) { words_[i / 64] |= 1ULL << (i % 64); }
  constexpr std::uint64_t word(int k) const { return words_[k]; }
  constexpr void set_word(int k, std::uint64_t v) { words_[k] = v; }

  constexpr bool any() const {
    return (words_[0] | words_[1] | words_[2] | words_[3]) != 0;
  }
  constexpr bool none() const { return !any(); }
  constexpr explicit operator bool() const { return any(); }

  constexpr bool operator==(const LaneMask&) const = default;

  friend constexpr LaneMask operator&(const LaneMask& a, const LaneMask& b) {
    LaneMask r;
    for (int k = 0; k < kWords; ++k) r.words_[k] = a.words_[k] & b.words_[k];
    return r;
  }
  friend constexpr LaneMask operator|(const LaneMask& a, const LaneMask& b) {
    LaneMask r;
    for (int k = 0; k < kWords; ++k) r.words_[k] = a.words_[k] | b.words_[k];
    return r;
  }
  friend constexpr LaneMask operator^(const LaneMask& a, const LaneMask& b) {
    LaneMask r;
    for (int k = 0; k < kWords; ++k) r.words_[k] = a.words_[k] ^ b.words_[k];
    return r;
  }
  friend constexpr LaneMask operator~(const LaneMask& a) {
    LaneMask r;
    for (int k = 0; k < kWords; ++k) r.words_[k] = ~a.words_[k];
    return r;
  }
  LaneMask& operator&=(const LaneMask& o) { return *this = *this & o; }
  LaneMask& operator|=(const LaneMask& o) { return *this = *this | o; }
  LaneMask& operator^=(const LaneMask& o) { return *this = *this ^ o; }

  friend std::ostream& operator<<(std::ostream& os, const LaneMask& m) {
    os << "LaneMask{";
    for (int k = kWords - 1; k >= 0; --k) {
      char buf[17];
      std::snprintf(buf, sizeof buf, "%016llx",
                    static_cast<unsigned long long>(m.words_[k]));
      os << buf << (k ? "'" : "");
    }
    return os << "}";
  }

 private:
  std::uint64_t words_[kWords] = {0, 0, 0, 0};
};

}  // namespace olfui
