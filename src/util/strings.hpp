// olfui/util: small string helpers shared by the parser and report writers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace olfui {

/// Splits on any character in `seps`, dropping empty pieces.
std::vector<std::string_view> split(std::string_view s, std::string_view seps);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a decimal or 0x-prefixed hexadecimal unsigned integer.
std::optional<std::uint64_t> parse_uint(std::string_view s);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "12,345" style thousands grouping for report tables.
std::string with_commas(std::uint64_t v);

}  // namespace olfui
