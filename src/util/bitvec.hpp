// olfui/util: dynamically sized bit vector used for pattern storage,
// fault masks and packed-simulation bookkeeping.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace olfui {

/// A fixed-length sequence of bits with word-level access.
///
/// Bits are stored little-endian within 64-bit words: bit i lives in
/// word i/64 at position i%64. Unused tail bits of the last word are
/// kept at zero (class invariant, restored by every mutator).
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits, bool value = false);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool v);
  void set_all(bool v);
  void resize(std::size_t nbits, bool value = false);

  /// Number of set bits.
  std::size_t count() const;
  /// Index of the first set bit, or size() if none.
  std::size_t find_first() const;
  /// Index of the first set bit at or after `from`, or size() if none.
  std::size_t find_next(std::size_t from) const;

  BitVec& operator|=(const BitVec& o);
  BitVec& operator&=(const BitVec& o);
  BitVec& operator^=(const BitVec& o);
  /// Clears every bit that is set in `o` (set difference).
  BitVec& subtract(const BitVec& o);
  void flip();

  bool any() const;
  bool none() const { return !any(); }

  bool operator==(const BitVec& o) const = default;

  /// Raw word access for packed kernels. Words beyond size() bits are zero.
  std::uint64_t word(std::size_t w) const { return words_[w]; }
  std::size_t word_count() const { return words_.size(); }

  /// "101001..." MSB-last rendering (bit 0 first), for diagnostics.
  std::string to_string() const;

 private:
  void mask_tail();

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace olfui
