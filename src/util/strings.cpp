#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace olfui {

std::vector<std::string_view> split(std::string_view s, std::string_view seps) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || seps.find(s[i]) != std::string_view::npos) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<std::uint64_t> parse_uint(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  int base = 10;
  if (starts_with(s, "0x") || starts_with(s, "0X")) {
    base = 16;
    s.remove_prefix(2);
    if (s.empty()) return std::nullopt;
  }
  std::uint64_t v = 0;
  for (char c : s) {
    if (c == '_') continue;  // allow 0x0007_8000 style literals from configs
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else if (base == 16 && c >= 'A' && c <= 'F')
      digit = c - 'A' + 10;
    else
      return std::nullopt;
    v = v * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
  }
  return v;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - first) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace olfui
