#include "util/rng.hpp"

namespace olfui {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the full 256-bit state from splitmix64 as recommended by the authors.
  for (auto& s : s_) s = splitmix64(seed);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;  // all-zero state is absorbing
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace olfui
