// olfui/util: EINTR-hardened POSIX wrappers.
//
// The distributed executor talks to its worker fleet over pipes and reaps
// children with waitpid; any of those calls can be interrupted by a stray
// signal (a profiler's SIGPROF, a debugger attach, SIGCHLD from an
// unrelated child). Before these wrappers a signal delivered during a
// long grade surfaced as a spurious "short read" crash error and failed
// the whole campaign. Every worker-pipe read/write and every wait goes
// through here instead: EINTR means "retry", never "worker died".
#pragma once

#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>

namespace olfui::posix {

/// read(2), retried on EINTR. Returns the usual read result otherwise
/// (0 = EOF, -1 = error with errno set, e.g. EAGAIN on a nonblocking fd).
inline ssize_t read_retry(int fd, void* buf, std::size_t count) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, count);
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// Writes the whole buffer, retrying on EINTR and resuming after partial
/// writes. Returns false on any other error (errno set; EPIPE = the
/// worker on the far end is gone).
inline bool write_all(int fd, const void* buf, std::size_t count) {
  const char* p = static_cast<const char*>(buf);
  while (count > 0) {
    const ssize_t n = ::write(fd, p, count);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    count -= static_cast<std::size_t>(n);
  }
  return true;
}

/// waitpid(2), retried on EINTR (SIGCHLD itself can interrupt the wait).
inline pid_t waitpid_retry(pid_t pid, int* status, int options) {
  for (;;) {
    const pid_t r = ::waitpid(pid, status, options);
    if (r >= 0 || errno != EINTR) return r;
  }
}

/// poll(2), retried on EINTR. The timeout is not recomputed across
/// retries — callers run poll inside a deadline loop and re-derive the
/// timeout themselves, so the worst case is one early wakeup.
inline int poll_retry(struct pollfd* fds, nfds_t nfds, int timeout_ms) {
  for (;;) {
    const int r = ::poll(fds, nfds, timeout_ms);
    if (r >= 0 || errno != EINTR) return r;
  }
}

}  // namespace olfui::posix
