// olfui/util: bit-matrix helpers for the packed simulation kernels.
#pragma once

#include <cstdint>

namespace olfui {

/// In-place 64x64 bit-matrix transpose (Hacker's Delight fig. 7-3,
/// recursive block swap): after the call, bit j of a[i] is the old bit i
/// of a[j]. The packed fault simulator uses it to flip between per-lane
/// values (one word per machine) and per-net lane words (one word per bus
/// bit) in ~6*64 word ops instead of a 64*64 single-bit loop.
inline void transpose64(std::uint64_t a[64]) {
  // LSB-first convention: column j of row i is bit j of a[i] (the classic
  // figure is MSB-first; the block swap is mirrored accordingly).
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k | j]) & m;
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

/// In-place W x W bit-matrix transpose, stored row-major as W rows of
/// W/64 words each: column c of row r is bit c%64 of a[r * (W/64) + c/64]
/// (same LSB-first convention as transpose64, which is the W == 64 case).
/// Wider widths decompose into 64x64 tiles: tile (J,I) of the result is
/// the transpose of tile (I,J) of the input, so diagonal tiles transpose
/// in place and off-diagonal pairs transpose-and-swap — K*K runs of
/// transpose64 instead of a W*W single-bit loop.
template <int W>
inline void transpose_bits(std::uint64_t* a) {
  static_assert(W > 0 && W % 64 == 0, "lane widths are multiples of 64");
  constexpr int K = W / 64;
  if constexpr (K == 1) {
    transpose64(a);
  } else {
    std::uint64_t ti[64], tj[64];
    for (int I = 0; I < K; ++I) {
      for (int r = 0; r < 64; ++r) ti[r] = a[(I * 64 + r) * K + I];
      transpose64(ti);
      for (int r = 0; r < 64; ++r) a[(I * 64 + r) * K + I] = ti[r];
      for (int J = I + 1; J < K; ++J) {
        for (int r = 0; r < 64; ++r) {
          ti[r] = a[(I * 64 + r) * K + J];
          tj[r] = a[(J * 64 + r) * K + I];
        }
        transpose64(ti);
        transpose64(tj);
        for (int r = 0; r < 64; ++r) {
          a[(I * 64 + r) * K + J] = tj[r];
          a[(J * 64 + r) * K + I] = ti[r];
        }
      }
    }
  }
}

}  // namespace olfui
