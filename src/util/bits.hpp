// olfui/util: bit-matrix helpers for the packed simulation kernels.
#pragma once

#include <cstdint>

namespace olfui {

/// In-place 64x64 bit-matrix transpose (Hacker's Delight fig. 7-3,
/// recursive block swap): after the call, bit j of a[i] is the old bit i
/// of a[j]. The packed fault simulator uses it to flip between per-lane
/// values (one word per machine) and per-net lane words (one word per bus
/// bit) in ~6*64 word ops instead of a 64*64 single-bit loop.
inline void transpose64(std::uint64_t a[64]) {
  // LSB-first convention: column j of row i is bit j of a[i] (the classic
  // figure is MSB-first; the block swap is mirrored accordingly).
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k | j]) & m;
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

}  // namespace olfui
