#include "util/bitvec.hpp"

#include <bit>
#include <cassert>

namespace olfui {

BitVec::BitVec(std::size_t nbits, bool value) { resize(nbits, value); }

void BitVec::resize(std::size_t nbits, bool value) {
  nbits_ = nbits;
  words_.assign((nbits + 63) / 64, value ? ~0ULL : 0ULL);
  mask_tail();
}

bool BitVec::get(std::size_t i) const {
  assert(i < nbits_);
  return (words_[i >> 6] >> (i & 63)) & 1ULL;
}

void BitVec::set(std::size_t i, bool v) {
  assert(i < nbits_);
  const std::uint64_t m = 1ULL << (i & 63);
  if (v)
    words_[i >> 6] |= m;
  else
    words_[i >> 6] &= ~m;
}

void BitVec::set_all(bool v) {
  for (auto& w : words_) w = v ? ~0ULL : 0ULL;
  mask_tail();
}

std::size_t BitVec::count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitVec::find_first() const { return find_next(0); }

std::size_t BitVec::find_next(std::size_t from) const {
  if (from >= nbits_) return nbits_;
  std::size_t w = from >> 6;
  std::uint64_t cur = words_[w] & (~0ULL << (from & 63));
  while (true) {
    if (cur != 0) {
      const std::size_t bit = (w << 6) + static_cast<std::size_t>(std::countr_zero(cur));
      return bit < nbits_ ? bit : nbits_;
    }
    if (++w >= words_.size()) return nbits_;
    cur = words_[w];
  }
}

BitVec& BitVec::operator|=(const BitVec& o) {
  assert(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& o) {
  assert(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& o) {
  assert(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

BitVec& BitVec::subtract(const BitVec& o) {
  assert(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

void BitVec::flip() {
  for (auto& w : words_) w = ~w;
  mask_tail();
}

bool BitVec::any() const {
  for (auto w : words_)
    if (w != 0) return true;
  return false;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(nbits_);
  for (std::size_t i = 0; i < nbits_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

void BitVec::mask_tail() {
  if (nbits_ % 64 != 0 && !words_.empty())
    words_.back() &= (1ULL << (nbits_ % 64)) - 1;
}

}  // namespace olfui
