#include "netlist/cell.hpp"

#include <array>
#include <cassert>

namespace olfui {
namespace {

struct TypeInfo {
  std::string_view name;
  int num_inputs;
};

constexpr std::array<TypeInfo, kNumCellTypes> kInfo = {{
    {"INPUT", 0},  {"OUTPUT", 1}, {"TIE0", 0},  {"TIE1", 0},  {"BUF", 1},
    {"NOT", 1},    {"AND2", 2},   {"AND3", 3},  {"AND4", 4},  {"OR2", 2},
    {"OR3", 3},    {"OR4", 4},    {"NAND2", 2}, {"NAND3", 3}, {"NAND4", 4},
    {"NOR2", 2},   {"NOR3", 3},   {"NOR4", 4},  {"XOR2", 2},  {"XNOR2", 2},
    {"MUX2", 3},   {"DFF", 1},    {"DFFR", 2},
}};

}  // namespace

int num_inputs(CellType t) { return kInfo[static_cast<int>(t)].num_inputs; }

bool is_sequential(CellType t) { return t == CellType::kDff || t == CellType::kDffR; }

bool is_port(CellType t) { return t == CellType::kInput || t == CellType::kOutput; }

bool is_tie(CellType t) { return t == CellType::kTie0 || t == CellType::kTie1; }

bool has_output(CellType t) { return t != CellType::kOutput; }

std::string_view type_name(CellType t) { return kInfo[static_cast<int>(t)].name; }

bool type_from_name(std::string_view name, CellType& out) {
  for (int i = 0; i < kNumCellTypes; ++i) {
    if (kInfo[i].name == name) {
      out = static_cast<CellType>(i);
      return true;
    }
  }
  return false;
}

std::string_view pin_name(CellType t, int pin) {
  assert(pin >= 0 && pin <= num_inputs(t));
  if (pin == 0) return t == CellType::kDff || t == CellType::kDffR ? "Q" : "Y";
  switch (t) {
    case CellType::kOutput:
      return "A";
    case CellType::kMux2: {
      constexpr std::array<std::string_view, 3> names = {"A", "B", "S"};
      return names[pin - 1];
    }
    case CellType::kDff:
      return "D";
    case CellType::kDffR: {
      constexpr std::array<std::string_view, 2> names = {"D", "RSTN"};
      return names[pin - 1];
    }
    default: {
      constexpr std::array<std::string_view, 4> names = {"A", "B", "C", "D"};
      return names[pin - 1];
    }
  }
}

}  // namespace olfui
