// olfui/netlist: word-level construction helpers.
//
// WordOps is the structural "RTL" layer used by the CPU generator: it
// expands word-wide operators (adders, muxes, comparators, shifters,
// registers) into library gates, producing realistic gate-level cones for
// the testability analysis to chew on. All cells created through a WordOps
// instance are named under its hierarchical prefix.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace olfui {

/// A little-endian bus: element 0 is bit 0.
using Bus = std::vector<NetId>;

/// A register word: per-bit flop cells plus their Q nets. Flops may be
/// declared before their D cone exists (feedback paths) and connected later.
struct RegWord {
  std::vector<CellId> flops;
  Bus q;
};

class WordOps {
 public:
  /// All cells/nets are created inside `nl` under "<prefix>/".
  WordOps(Netlist& nl, std::string prefix);

  Netlist& netlist() { return *nl_; }
  const std::string& prefix() const { return prefix_; }

  // ---- constants ----------------------------------------------------------

  /// Net tied to 0/1. One tie cell per WordOps instance is shared, matching
  /// how synthesis shares tie cells within a module.
  NetId lit(bool v);
  /// Width-bit constant bus built from lit().
  Bus constant(std::uint64_t value, int width);

  // ---- single gates --------------------------------------------------------

  NetId gate(CellType t, std::string_view name, const std::vector<NetId>& ins);
  NetId buf(NetId a, std::string_view name) { return gate(CellType::kBuf, name, {a}); }
  NetId not_(NetId a, std::string_view name) { return gate(CellType::kNot, name, {a}); }
  NetId and2(NetId a, NetId b, std::string_view name) { return gate(CellType::kAnd2, name, {a, b}); }
  NetId or2(NetId a, NetId b, std::string_view name) { return gate(CellType::kOr2, name, {a, b}); }
  NetId xor2(NetId a, NetId b, std::string_view name) { return gate(CellType::kXor2, name, {a, b}); }
  NetId xnor2(NetId a, NetId b, std::string_view name) { return gate(CellType::kXnor2, name, {a, b}); }
  /// out = s ? b : a
  NetId mux(NetId s, NetId a, NetId b, std::string_view name) {
    return gate(CellType::kMux2, name, {a, b, s});
  }

  // ---- word-wide combinational ops ----------------------------------------

  Bus not_word(const Bus& a, std::string_view name);
  Bus and_word(const Bus& a, const Bus& b, std::string_view name);
  Bus or_word(const Bus& a, const Bus& b, std::string_view name);
  Bus xor_word(const Bus& a, const Bus& b, std::string_view name);
  /// Bitwise AND of every bus bit with a single enable net.
  Bus mask_word(const Bus& a, NetId en, std::string_view name);
  /// Per-bit 2:1 mux: s==0 selects a, s==1 selects b.
  Bus mux_word(NetId s, const Bus& a, const Bus& b, std::string_view name);

  struct AddResult {
    Bus sum;
    NetId carry_out;
  };
  /// Ripple-carry adder; `cin` may be lit(0).
  AddResult add_word(const Bus& a, const Bus& b, NetId cin, std::string_view name);
  /// a - b via two's complement (inverted b, cin=1).
  AddResult sub_word(const Bus& a, const Bus& b, std::string_view name);

  /// AND / OR reduction trees.
  NetId reduce_and(std::vector<NetId> nets, std::string_view name);
  NetId reduce_or(std::vector<NetId> nets, std::string_view name);
  /// 1 iff a == b (XNOR + AND tree).
  NetId eq_word(const Bus& a, const Bus& b, std::string_view name);
  /// 1 iff a == constant (NOT on zero bits + AND tree).
  NetId eq_const(const Bus& a, std::uint64_t value, std::string_view name);

  /// Full binary decoder: returns 2^sel.size() one-hot outputs.
  Bus decode(const Bus& sel, std::string_view name);
  /// One-hot word mux: sum over i of (onehot[i] & words[i]).
  Bus onehot_mux(const Bus& onehot, const std::vector<Bus>& words,
                 std::string_view name);

  /// Logical barrel shifter, `left` chooses direction; amount bus is
  /// little-endian (amount[i] shifts by 2^i).
  Bus shift_word(const Bus& a, const Bus& amount, bool left, std::string_view name);

  /// Array multiplier returning the low |a| bits of a*b (row-by-row
  /// partial-product accumulation with ripple adders).
  Bus mul_word(const Bus& a, const Bus& b, std::string_view name);

  // ---- registers ------------------------------------------------------------

  /// Declares `width` flops with unconnected D. If `rstn` is valid the flops
  /// are DFFR (active-low reset to 0), else plain DFF.
  RegWord reg_declare(int width, std::string_view name, NetId rstn = kInvalidId);
  /// Connects the D pins of a declared register to `d`.
  void reg_connect(RegWord& r, const Bus& d);
  /// Declare-and-connect convenience for feed-forward registers.
  RegWord reg_word(const Bus& d, std::string_view name, NetId rstn = kInvalidId);
  /// Tags every flop of `r` with "<tag>:<bit>" for the analysis passes.
  void tag_reg(const RegWord& r, std::string_view tag);

 private:
  std::string name(std::string_view base) const;
  std::string bit_name(std::string_view base, std::size_t i) const;

  Netlist* nl_;
  std::string prefix_;
  NetId tie0_ = kInvalidId;
  NetId tie1_ = kInvalidId;
};

/// Converts a bus sampled as uint64 (e.g. from simulation) — helper for tests.
std::uint64_t bus_value(const Bus& bus, const std::vector<int>& bit_values);

}  // namespace olfui
