#include "netlist/sweep.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

#include "sim/logic.hpp"

namespace olfui {
namespace {

/// Tie-derived constant value of every net, combinational cells only
/// (flop outputs stay X so the pass remains cycle-accurate).
std::vector<Logic> comb_constants(const Netlist& nl,
                                  const std::vector<CellId>& order) {
  std::vector<Logic> value(nl.num_nets(), Logic::VX);
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.type == CellType::kTie0) value[c.out] = Logic::V0;
    if (c.type == CellType::kTie1) value[c.out] = Logic::V1;
  }
  Logic in[4];
  for (CellId id : order) {
    const Cell& c = nl.cell(id);
    if (c.type == CellType::kOutput || is_tie(c.type)) continue;
    const int n = static_cast<int>(c.ins.size());
    for (int i = 0; i < n; ++i) in[i] = value[c.ins[i]];
    value[c.out] = eval_ternary(c.type, in, n);
  }
  return value;
}

/// Nets that (transitively) feed an output port, not descending into the
/// drivers of constant nets (those get replaced by ties).
std::vector<std::uint8_t> live_nets(const Netlist& nl,
                                    const std::vector<Logic>& value) {
  std::vector<std::uint8_t> live(nl.num_nets(), 0);
  std::vector<NetId> worklist;
  const auto need = [&](NetId n) {
    if (!live[n]) {
      live[n] = 1;
      worklist.push_back(n);
    }
  };
  for (CellId oc : nl.output_cells()) need(nl.cell(oc).ins[0]);
  while (!worklist.empty()) {
    const NetId n = worklist.back();
    worklist.pop_back();
    if (is_known(value[n])) continue;  // replaced by a tie, cone is dead
    const CellId drv = nl.net(n).driver;
    if (drv == kInvalidId) continue;
    for (NetId in : nl.cell(drv).ins) need(in);
  }
  return live;
}

bool is_and_family(CellType t) {
  return t == CellType::kAnd2 || t == CellType::kAnd3 || t == CellType::kAnd4 ||
         t == CellType::kNand2 || t == CellType::kNand3 || t == CellType::kNand4;
}
bool is_or_family(CellType t) {
  return t == CellType::kOr2 || t == CellType::kOr3 || t == CellType::kOr4 ||
         t == CellType::kNor2 || t == CellType::kNor3 || t == CellType::kNor4;
}
bool is_inverting(CellType t) {
  return t == CellType::kNand2 || t == CellType::kNand3 ||
         t == CellType::kNand4 || t == CellType::kNor2 ||
         t == CellType::kNor3 || t == CellType::kNor4;
}
CellType nary(bool and_family, bool inverting, std::size_t n) {
  if (and_family)
    return n == 2 ? (inverting ? CellType::kNand2 : CellType::kAnd2)
           : n == 3 ? (inverting ? CellType::kNand3 : CellType::kAnd3)
                    : (inverting ? CellType::kNand4 : CellType::kAnd4);
  return n == 2 ? (inverting ? CellType::kNor2 : CellType::kOr2)
         : n == 3 ? (inverting ? CellType::kNor3 : CellType::kOr3)
                  : (inverting ? CellType::kNor4 : CellType::kOr4);
}

}  // namespace

Netlist constant_sweep(const Netlist& nl, SweepStats* stats) {
  std::vector<CellId> order;
  if (!nl.levelize(order)) throw std::runtime_error("constant_sweep: loop");
  const std::vector<Logic> value = comb_constants(nl, order);
  const std::vector<std::uint8_t> live = live_nets(nl, value);

  SweepStats st;
  st.cells_in = nl.num_cells();

  Netlist out(nl.name());
  std::vector<NetId> net_map(nl.num_nets(), kInvalidId);
  NetId tie0_net = kInvalidId, tie1_net = kInvalidId;
  const auto tie_net = [&](bool v) {
    NetId& cache = v ? tie1_net : tie0_net;
    if (cache == kInvalidId) {
      cache = out.add_net(v ? "sweep_tie1" : "sweep_tie0");
      out.add_cell(v ? CellType::kTie1 : CellType::kTie0,
                   v ? "u_sweep_tie1" : "u_sweep_tie0", cache, {});
    }
    return cache;
  };
  // Maps an original net to its replacement (tie net for constants).
  const auto mapped = [&](NetId n) -> NetId {
    if (is_known(value[n])) return tie_net(value[n] == Logic::V1);
    assert(net_map[n] != kInvalidId);
    return net_map[n];
  };

  // Input ports (interface is preserved even if unused).
  for (CellId ic : nl.input_cells()) {
    const Cell& c = nl.cell(ic);
    const NetId n = out.add_input(c.name);
    if (!is_known(value[c.out])) net_map[c.out] = n;
  }
  // Flop shells first (their Q nets are combinational sources).
  std::vector<std::pair<CellId, CellId>> flop_fixups;  // (old, new)
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const Cell& c = nl.cell(id);
    if (!is_sequential(c.type)) continue;
    if (!live[c.out]) {
      ++st.dead_removed;
      continue;
    }
    const NetId q = out.add_net(nl.net(c.out).name);
    net_map[c.out] = q;
    const CellId nc = out.add_cell(
        c.type, c.name, q,
        std::vector<NetId>(static_cast<std::size_t>(num_inputs(c.type)),
                           kInvalidId));
    out.set_tag(nc, c.tag);
    flop_fixups.emplace_back(id, nc);
  }

  // Combinational cells in topological order.
  for (CellId id : order) {
    const Cell& c = nl.cell(id);
    if (c.type == CellType::kOutput) continue;
    if (is_tie(c.type)) continue;  // re-created on demand
    if (!live[c.out]) {
      ++st.dead_removed;
      continue;
    }
    if (is_known(value[c.out])) {
      ++st.folded_constant;
      continue;  // readers are redirected to the shared tie
    }
    // Substitute constant inputs and simplify the gate.
    CellType type = c.type;
    std::vector<NetId> ins;
    if (is_and_family(type) || is_or_family(type)) {
      const bool and_fam = is_and_family(type);
      const Logic absorbed = and_fam ? Logic::V1 : Logic::V0;
      for (NetId in : c.ins)
        if (value[in] != absorbed) ins.push_back(mapped(in));
      // No controlling constant can remain (output would be constant).
      if (ins.size() != c.ins.size()) ++st.simplified;
      if (ins.size() == 1) {
        type = is_inverting(c.type) ? CellType::kNot : CellType::kBuf;
      } else if (ins.size() != c.ins.size()) {
        type = nary(and_fam, is_inverting(c.type), ins.size());
      }
    } else if (type == CellType::kXor2 || type == CellType::kXnor2) {
      const Logic a = value[c.ins[0]], b = value[c.ins[1]];
      if (is_known(a) || is_known(b)) {
        ++st.simplified;
        const bool cval = (is_known(a) ? a : b) == Logic::V1;
        const NetId var = mapped(is_known(a) ? c.ins[1] : c.ins[0]);
        const bool invert = (type == CellType::kXnor2) != cval;
        type = invert ? CellType::kNot : CellType::kBuf;
        ins = {var};
      } else {
        ins = {mapped(c.ins[0]), mapped(c.ins[1])};
      }
    } else if (type == CellType::kMux2) {
      const Logic s = value[c.ins[kMuxS]];
      if (is_known(s)) {
        ++st.simplified;
        type = CellType::kBuf;
        ins = {mapped(s == Logic::V1 ? c.ins[kMuxB] : c.ins[kMuxA])};
      } else if (c.ins[kMuxA] == c.ins[kMuxB]) {
        ++st.simplified;
        type = CellType::kBuf;
        ins = {mapped(c.ins[kMuxA])};
      } else {
        ins = {mapped(c.ins[kMuxA]), mapped(c.ins[kMuxB]), mapped(c.ins[kMuxS])};
      }
    } else {  // BUF / NOT
      ins = {mapped(c.ins[0])};
    }
    const NetId y = out.add_net(nl.net(c.out).name);
    net_map[c.out] = y;
    const CellId nc = out.add_cell(type, c.name, y, std::move(ins));
    out.set_tag(nc, c.tag);
  }

  // Connect flop inputs.
  for (auto [old_id, new_id] : flop_fixups) {
    const Cell& c = nl.cell(old_id);
    for (std::size_t i = 0; i < c.ins.size(); ++i)
      out.connect_input(new_id, static_cast<int>(i), mapped(c.ins[i]));
  }
  // Output ports.
  for (CellId oc : nl.output_cells())
    out.add_output(nl.cell(oc).name, mapped(nl.cell(oc).ins[0]));

  st.cells_out = out.num_cells();
  if (stats) *stats = st;
  return out;
}

}  // namespace olfui
