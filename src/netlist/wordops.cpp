#include "netlist/wordops.hpp"

#include <cassert>

#include "util/strings.hpp"

namespace olfui {

WordOps::WordOps(Netlist& nl, std::string prefix)
    : nl_(&nl), prefix_(std::move(prefix)) {}

std::string WordOps::name(std::string_view base) const {
  return prefix_.empty() ? std::string(base) : prefix_ + "/" + std::string(base);
}

std::string WordOps::bit_name(std::string_view base, std::size_t i) const {
  // Unprefixed: callers pass the result to gate(), which applies the prefix.
  return std::string(base) + "_" + std::to_string(i);
}

NetId WordOps::lit(bool v) {
  NetId& cache = v ? tie1_ : tie0_;
  if (cache == kInvalidId) {
    cache = nl_->add_net(name(v ? "tie1" : "tie0"));
    nl_->add_cell(v ? CellType::kTie1 : CellType::kTie0,
                  name(v ? "u_tie1" : "u_tie0"), cache, {});
  }
  return cache;
}

Bus WordOps::constant(std::uint64_t value, int width) {
  Bus out(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) out[i] = lit((value >> i) & 1);
  return out;
}

NetId WordOps::gate(CellType t, std::string_view gname, const std::vector<NetId>& ins) {
  const NetId out = nl_->add_net(name(gname));
  nl_->add_cell(t, name("u_" + std::string(gname)), out, ins);
  return out;
}

Bus WordOps::not_word(const Bus& a, std::string_view n) {
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = not_(a[i], bit_name(n, i));
  return out;
}

Bus WordOps::and_word(const Bus& a, const Bus& b, std::string_view n) {
  assert(a.size() == b.size());
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = and2(a[i], b[i], bit_name(n, i));
  return out;
}

Bus WordOps::or_word(const Bus& a, const Bus& b, std::string_view n) {
  assert(a.size() == b.size());
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = or2(a[i], b[i], bit_name(n, i));
  return out;
}

Bus WordOps::xor_word(const Bus& a, const Bus& b, std::string_view n) {
  assert(a.size() == b.size());
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = xor2(a[i], b[i], bit_name(n, i));
  return out;
}

Bus WordOps::mask_word(const Bus& a, NetId en, std::string_view n) {
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = and2(a[i], en, bit_name(n, i));
  return out;
}

Bus WordOps::mux_word(NetId s, const Bus& a, const Bus& b, std::string_view n) {
  assert(a.size() == b.size());
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = mux(s, a[i], b[i], bit_name(n, i));
  return out;
}

WordOps::AddResult WordOps::add_word(const Bus& a, const Bus& b, NetId cin,
                                     std::string_view n) {
  assert(a.size() == b.size());
  AddResult r;
  r.sum.resize(a.size());
  NetId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Full adder: sum = a^b^c; carry = a&b | c&(a^b).
    const NetId axb = xor2(a[i], b[i], bit_name(std::string(n) + "_axb", i));
    r.sum[i] = xor2(axb, carry, bit_name(std::string(n) + "_sum", i));
    const NetId ab = and2(a[i], b[i], bit_name(std::string(n) + "_ab", i));
    const NetId cx = and2(carry, axb, bit_name(std::string(n) + "_cx", i));
    carry = or2(ab, cx, bit_name(std::string(n) + "_co", i));
  }
  r.carry_out = carry;
  return r;
}

WordOps::AddResult WordOps::sub_word(const Bus& a, const Bus& b, std::string_view n) {
  const Bus nb = not_word(b, std::string(n) + "_nb");
  return add_word(a, nb, lit(true), n);
}

NetId WordOps::reduce_and(std::vector<NetId> nets, std::string_view n) {
  assert(!nets.empty());
  int round = 0;
  while (nets.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i < nets.size(); i += 4) {
      const std::size_t take = std::min<std::size_t>(4, nets.size() - i);
      const std::string gn =
          std::string(n) + "_r" + std::to_string(round) + "_" + std::to_string(i / 4);
      if (take == 1) {
        next.push_back(nets[i]);
      } else {
        const CellType t = take == 2   ? CellType::kAnd2
                           : take == 3 ? CellType::kAnd3
                                       : CellType::kAnd4;
        next.push_back(gate(t, gn, {nets.begin() + static_cast<long>(i),
                                    nets.begin() + static_cast<long>(i + take)}));
      }
    }
    nets = std::move(next);
    ++round;
  }
  return nets[0];
}

NetId WordOps::reduce_or(std::vector<NetId> nets, std::string_view n) {
  assert(!nets.empty());
  int round = 0;
  while (nets.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i < nets.size(); i += 4) {
      const std::size_t take = std::min<std::size_t>(4, nets.size() - i);
      const std::string gn =
          std::string(n) + "_r" + std::to_string(round) + "_" + std::to_string(i / 4);
      if (take == 1) {
        next.push_back(nets[i]);
      } else {
        const CellType t = take == 2   ? CellType::kOr2
                           : take == 3 ? CellType::kOr3
                                       : CellType::kOr4;
        next.push_back(gate(t, gn, {nets.begin() + static_cast<long>(i),
                                    nets.begin() + static_cast<long>(i + take)}));
      }
    }
    nets = std::move(next);
    ++round;
  }
  return nets[0];
}

NetId WordOps::eq_word(const Bus& a, const Bus& b, std::string_view n) {
  assert(a.size() == b.size());
  std::vector<NetId> bits(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    bits[i] = xnor2(a[i], b[i], bit_name(std::string(n) + "_xn", i));
  return reduce_and(std::move(bits), std::string(n) + "_all");
}

NetId WordOps::eq_const(const Bus& a, std::uint64_t value, std::string_view n) {
  std::vector<NetId> bits(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits[i] = ((value >> i) & 1) ? a[i]
                                 : not_(a[i], bit_name(std::string(n) + "_inv", i));
  }
  return reduce_and(std::move(bits), std::string(n) + "_all");
}

Bus WordOps::decode(const Bus& sel, std::string_view n) {
  const std::size_t count = 1ULL << sel.size();
  // Precompute inverted selects once.
  Bus inv(sel.size());
  for (std::size_t i = 0; i < sel.size(); ++i)
    inv[i] = not_(sel[i], bit_name(std::string(n) + "_ninv", i));
  Bus out(count);
  for (std::size_t v = 0; v < count; ++v) {
    std::vector<NetId> terms(sel.size());
    for (std::size_t i = 0; i < sel.size(); ++i)
      terms[i] = ((v >> i) & 1) ? sel[i] : inv[i];
    out[v] = terms.size() == 1
                 ? terms[0]
                 : reduce_and(std::move(terms),
                              std::string(n) + "_d" + std::to_string(v));
  }
  return out;
}

Bus WordOps::onehot_mux(const Bus& onehot, const std::vector<Bus>& words,
                        std::string_view n) {
  assert(onehot.size() == words.size());
  assert(!words.empty());
  const std::size_t width = words[0].size();
  Bus out(width);
  for (std::size_t bit = 0; bit < width; ++bit) {
    std::vector<NetId> terms(words.size());
    for (std::size_t w = 0; w < words.size(); ++w) {
      terms[w] = and2(onehot[w], words[w][bit],
                      name(std::string(n) + "_t" + std::to_string(w) + "_" +
                           std::to_string(bit)));
    }
    out[bit] = reduce_or(std::move(terms),
                         std::string(n) + "_or" + std::to_string(bit));
  }
  return out;
}

Bus WordOps::shift_word(const Bus& a, const Bus& amount, bool left,
                        std::string_view n) {
  Bus cur = a;
  for (std::size_t stage = 0; stage < amount.size(); ++stage) {
    const std::size_t dist = 1ULL << stage;
    Bus shifted(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      if (left) {
        shifted[i] = i >= dist ? cur[i - dist] : lit(false);
      } else {
        shifted[i] = i + dist < cur.size() ? cur[i + dist] : lit(false);
      }
    }
    cur = mux_word(amount[stage], cur, shifted,
                   std::string(n) + "_s" + std::to_string(stage));
  }
  return cur;
}

Bus WordOps::mul_word(const Bus& a, const Bus& b, std::string_view n) {
  assert(a.size() == b.size());
  const std::size_t width = a.size();
  // acc holds the running sum of partial products; row i contributes
  // (a & b[i]) << i, of which only bits i..width-1 land in the result.
  Bus acc(width, kInvalidId);
  for (std::size_t i = 0; i < width; ++i) acc[i] = lit(false);
  for (std::size_t row = 0; row < width; ++row) {
    // Partial product bits pp[j] = a[j] & b[row] for j < width-row.
    const std::size_t cols = width - row;
    Bus pp(cols);
    for (std::size_t j = 0; j < cols; ++j) {
      pp[j] = and2(a[j], b[row],
                   bit_name(std::string(n) + "_pp" + std::to_string(row), j));
    }
    if (row == 0) {
      for (std::size_t j = 0; j < cols; ++j) acc[j] = pp[j];
      continue;
    }
    // acc[row..] += pp (ripple; carry beyond the top bit is discarded).
    Bus hi(acc.begin() + static_cast<long>(row), acc.end());
    const AddResult r =
        add_word(hi, pp, lit(false), std::string(n) + "_r" + std::to_string(row));
    for (std::size_t j = 0; j < cols; ++j) acc[row + j] = r.sum[j];
  }
  return acc;
}

RegWord WordOps::reg_declare(int width, std::string_view n, NetId rstn) {
  RegWord r;
  r.flops.resize(static_cast<std::size_t>(width));
  r.q.resize(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const std::string base = std::string(n) + "_q_" + std::to_string(i);
    r.q[i] = nl_->add_net(name(base));
    if (rstn == kInvalidId) {
      r.flops[i] = nl_->add_cell(CellType::kDff, name("u_" + base + "_reg"),
                                 r.q[i], {kInvalidId});
    } else {
      r.flops[i] = nl_->add_cell(CellType::kDffR, name("u_" + base + "_reg"),
                                 r.q[i], {kInvalidId, rstn});
    }
  }
  return r;
}

void WordOps::reg_connect(RegWord& r, const Bus& d) {
  assert(r.flops.size() == d.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    nl_->connect_input(r.flops[i], kDffD, d[i]);
}

RegWord WordOps::reg_word(const Bus& d, std::string_view n, NetId rstn) {
  RegWord r = reg_declare(static_cast<int>(d.size()), n, rstn);
  reg_connect(r, d);
  return r;
}

void WordOps::tag_reg(const RegWord& r, std::string_view tag) {
  for (std::size_t i = 0; i < r.flops.size(); ++i)
    nl_->set_tag(r.flops[i], std::string(tag) + ":" + std::to_string(i));
}

std::uint64_t bus_value(const Bus& bus, const std::vector<int>& bit_values) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i)
    if (bit_values[bus[i]]) v |= 1ULL << i;
  return v;
}

}  // namespace olfui
