// olfui/netlist: the gate-level cell library.
//
// The library is the minimal industrial-style set needed by the DATE'13
// flow: combinational gates, 2:1 muxes (used both functionally and as the
// scan / debug muxes of the paper's Figs. 2 and 4), tie cells (the paper's
// "connect to ground or Vdd" manipulation), D flip-flops with and without
// an active-low reset (Fig. 5), and pseudo-cells for top-level ports.
#pragma once

#include <cassert>
#include <cstdint>
#include <string_view>

namespace olfui {

enum class CellType : std::uint8_t {
  // Pseudo-cells representing top-level ports. kInput drives a net and has
  // no inputs; kOutput consumes a net and drives nothing.
  kInput,
  kOutput,
  // Constant drivers ("tied'0 / tied'1" in the paper).
  kTie0,
  kTie1,
  // Combinational gates.
  kBuf,
  kNot,
  kAnd2,
  kAnd3,
  kAnd4,
  kOr2,
  kOr3,
  kOr4,
  kNand2,
  kNand3,
  kNand4,
  kNor2,
  kNor3,
  kNor4,
  kXor2,
  kXnor2,
  // 2:1 multiplexer: out = S ? B : A. Input order {A, B, S}.
  kMux2,
  // Positive-edge D flip-flop. Input order {D}.
  kDff,
  // Positive-edge D flip-flop with active-low reset to 0. Input order
  // {D, RSTN} — the structure of the paper's Fig. 5.
  kDffR,
};

/// Number of distinct cell types (for table sizing).
inline constexpr int kNumCellTypes = static_cast<int>(CellType::kDffR) + 1;

/// Number of input pins of a cell of this type.
int num_inputs(CellType t);

/// True for kDff / kDffR: cells that cut combinational levelization.
bool is_sequential(CellType t);

/// True for kInput / kOutput pseudo-cells.
bool is_port(CellType t);

/// True for kTie0 / kTie1.
bool is_tie(CellType t);

/// True if the cell drives a net (everything except kOutput).
bool has_output(CellType t);

/// Human/Verilog name of the cell type ("AND2", "DFFR", ...).
std::string_view type_name(CellType t);

/// Inverse of type_name(); returns false if the name is unknown.
bool type_from_name(std::string_view name, CellType& out);

/// Name of pin `pin` (0 = output, 1.. = inputs) of a cell of type `t`,
/// e.g. MUX2 pins are "Y", "A", "B", "S"; DFFR pins are "Q", "D", "RSTN".
std::string_view pin_name(CellType t, int pin);

/// MUX2 input pin indices (within the `ins` array, i.e. 0-based data order).
inline constexpr int kMuxA = 0;
inline constexpr int kMuxB = 1;
inline constexpr int kMuxS = 2;
/// DFF/DFFR input pin indices.
inline constexpr int kDffD = 0;
inline constexpr int kDffRstn = 1;

/// Two-valued evaluation of a combinational cell given packed input words.
/// `Word` is a lane word (util/lanes.hpp): std::uint64_t carries 64
/// independent simulation lanes, the vector-extension words carry 128 or
/// 256. Pure bitwise logic, so one definition serves every width.
/// Not valid for sequential/port cells.
template <class Word>
Word eval_packed(CellType t, const Word* in, int n) {
  switch (t) {
    case CellType::kTie0:
      return Word{};
    case CellType::kTie1:
      return ~Word{};
    case CellType::kBuf:
      return in[0];
    case CellType::kNot:
      return ~in[0];
    case CellType::kAnd2:
    case CellType::kAnd3:
    case CellType::kAnd4: {
      Word v = in[0];
      for (int i = 1; i < n; ++i) v &= in[i];
      return v;
    }
    case CellType::kOr2:
    case CellType::kOr3:
    case CellType::kOr4: {
      Word v = in[0];
      for (int i = 1; i < n; ++i) v |= in[i];
      return v;
    }
    case CellType::kNand2:
    case CellType::kNand3:
    case CellType::kNand4: {
      Word v = in[0];
      for (int i = 1; i < n; ++i) v &= in[i];
      return ~v;
    }
    case CellType::kNor2:
    case CellType::kNor3:
    case CellType::kNor4: {
      Word v = in[0];
      for (int i = 1; i < n; ++i) v |= in[i];
      return ~v;
    }
    case CellType::kXor2:
      return in[0] ^ in[1];
    case CellType::kXnor2:
      return ~(in[0] ^ in[1]);
    case CellType::kMux2:
      return (in[kMuxS] & in[kMuxB]) | (~in[kMuxS] & in[kMuxA]);
    default:
      assert(false && "eval_packed called on non-combinational cell");
      return Word{};
  }
}

}  // namespace olfui
