// olfui/netlist: flat gate-level netlist graph.
//
// A Netlist is a set of cells connected by single-driver nets. Top-level
// ports are modelled as pseudo-cells (kInput / kOutput) so that every
// fault site in the design — including port faults — is uniformly a
// (cell, pin) pair. Hierarchy is expressed through '/'-separated instance
// names ("u_core/u_btb/tag0_q_reg_17"), which the analysis passes use to
// attribute faults to modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/cell.hpp"

namespace olfui {

using CellId = std::uint32_t;
using NetId = std::uint32_t;
inline constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

/// A connection endpoint: pin 0 is the cell's output, pins 1..n its inputs.
struct Pin {
  CellId cell = kInvalidId;
  std::uint8_t pin = 0;

  bool operator==(const Pin&) const = default;
};

struct Cell {
  CellType type = CellType::kBuf;
  std::string name;
  /// Driven net (kInvalidId for kOutput cells, which drive nothing).
  NetId out = kInvalidId;
  /// Input nets, in the pin order defined by the cell library.
  std::vector<NetId> ins;
  /// Free-form analysis tag, e.g. "addr_reg:pc:17" set by the generator,
  /// consumed by the memory-map pass (DESIGN.md E1/E5).
  std::string tag;
};

struct Net {
  std::string name;
  CellId driver = kInvalidId;
  /// All input pins reading this net (pin values are >= 1).
  std::vector<Pin> fanout;
};

struct NetlistStats {
  std::size_t cells = 0;       ///< all cells including port pseudo-cells
  std::size_t gates = 0;       ///< combinational gates (excl. ports/ties)
  std::size_t flops = 0;       ///< kDff + kDffR
  std::size_t ties = 0;        ///< tie cells
  std::size_t nets = 0;
  std::size_t inputs = 0;      ///< top-level input ports
  std::size_t outputs = 0;     ///< top-level output ports
  std::size_t pins = 0;        ///< total fault-site pins (see fault module)
};

/// Flat single-clock gate-level netlist.
///
/// Invariants (checked by validate()):
///  * every net has exactly one driver;
///  * every cell input is connected;
///  * the combinational part is acyclic (loops must be cut by flops).
class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -----------------------------------------------------

  /// Creates a named net. Names must be unique; a duplicate gets a
  /// "__<k>" suffix appended.
  NetId add_net(std::string_view name);

  /// Creates a cell driving `out` (pass kInvalidId for kOutput cells).
  /// `ins.size()` must equal num_inputs(type). Input nets may be kInvalidId
  /// at creation and connected later via connect_input().
  CellId add_cell(CellType type, std::string_view name, NetId out,
                  std::vector<NetId> ins);

  /// Declares a top-level input port: creates the net and its kInput cell.
  NetId add_input(std::string_view port_name);
  /// Declares a top-level output port reading `net`.
  CellId add_output(std::string_view port_name, NetId net);

  void connect_input(CellId cell, int input_pin, NetId net);

  /// Rewires input pin `pin` (>=1) of `cell` from its current net to
  /// `new_net`, updating both fanout lists. Used by the scan / debug
  /// insertion passes.
  void rewire_input(CellId cell, int input_pin, NetId new_net);

  /// Replaces the driver of `net` with `new_driver` (whose `out` is updated).
  /// The previous driver, if any, is left driving nothing (used by the
  /// paper's tie-off manipulation when done destructively).
  void replace_driver(NetId net, CellId new_driver);

  void set_tag(CellId cell, std::string tag) { cells_[cell].tag = std::move(tag); }

  // ---- access -----------------------------------------------------------

  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  const Cell& cell(CellId id) const { return cells_[id]; }
  const Net& net(NetId id) const { return nets_[id]; }

  /// Net connected to (cell, pin): the output net for pin 0, else the input.
  NetId pin_net(Pin p) const;

  /// Top-level ports in declaration order.
  const std::vector<CellId>& input_cells() const { return input_cells_; }
  const std::vector<CellId>& output_cells() const { return output_cells_; }

  /// Net of the input port with this name, or kInvalidId.
  NetId find_input(std::string_view port_name) const;
  /// Output port cell with this name, or kInvalidId.
  CellId find_output(std::string_view port_name) const;
  NetId find_net(std::string_view name) const;
  CellId find_cell(std::string_view name) const;

  /// All sequential cells (kDff/kDffR), in id order.
  std::vector<CellId> flops() const;

  // ---- analysis support ---------------------------------------------------

  /// Topological order of combinational cells (ties and kInput excluded,
  /// flop outputs treated as sources, kOutput cells included last at their
  /// level). Fails (returns false) on a combinational loop.
  bool levelize(std::vector<CellId>& order) const;

  /// Checks all structural invariants; returns a list of human-readable
  /// problems (empty == valid).
  std::vector<std::string> validate() const;

  NetlistStats stats() const;

  /// Per-module (top name prefix before first '/') cell counts.
  std::unordered_map<std::string, std::size_t> module_histogram() const;

 private:
  std::string unique_name(std::string_view base,
                          std::unordered_map<std::string, std::uint32_t>& used);

  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<CellId> input_cells_;
  std::vector<CellId> output_cells_;
  std::unordered_map<std::string, std::uint32_t> net_names_;
  std::unordered_map<std::string, std::uint32_t> cell_names_;
  std::unordered_map<std::string, NetId> net_index_;
  std::unordered_map<std::string, CellId> cell_index_;
};

}  // namespace olfui
