// olfui/netlist: constant sweep — a synthesis-lite cleanup pass.
//
// Rebuilds a netlist with tie-derived constants folded through the
// combinational logic and dead cells (driving no path to any output port)
// removed. Flops are kept verbatim: the pass never assumes steady state,
// so the swept netlist is cycle-accurate equivalent to the original from
// power-on (a property test checks exactly that).
//
// Why it exists here: structurally untestable faults live in redundant or
// constant logic that synthesis would remove; on-line functionally
// untestable faults live in logic the chip NEEDS (scan, debug, address
// handling) that mission mode merely cannot reach. Sweeping makes that
// distinction measurable — see bench_sweep_ablation.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace olfui {

struct SweepStats {
  std::size_t cells_in = 0;
  std::size_t cells_out = 0;
  std::size_t folded_constant = 0;  ///< cells whose output became a tie
  std::size_t simplified = 0;       ///< gates reduced (e.g. AND(a,1) -> BUF)
  std::size_t dead_removed = 0;     ///< cells with no path to any output
};

/// Returns the swept netlist; original is untouched. Cell and net names of
/// surviving logic are preserved (tags included).
Netlist constant_sweep(const Netlist& nl, SweepStats* stats = nullptr);

}  // namespace olfui
