#include "netlist/netlist.hpp"

#include <cassert>
#include <queue>

#include "util/strings.hpp"

namespace olfui {

std::string Netlist::unique_name(std::string_view base,
                                 std::unordered_map<std::string, std::uint32_t>& used) {
  std::string name(base);
  auto [it, inserted] = used.try_emplace(name, 0);
  if (inserted) return name;
  while (true) {
    std::string candidate = name + "__" + std::to_string(++it->second);
    if (!used.contains(candidate)) {
      used.emplace(candidate, 0);
      return candidate;
    }
  }
}

NetId Netlist::add_net(std::string_view name) {
  const NetId id = static_cast<NetId>(nets_.size());
  Net n;
  n.name = unique_name(name, net_names_);
  net_index_.emplace(n.name, id);
  nets_.push_back(std::move(n));
  return id;
}

CellId Netlist::add_cell(CellType type, std::string_view name, NetId out,
                         std::vector<NetId> ins) {
  assert(static_cast<int>(ins.size()) == num_inputs(type));
  assert((out == kInvalidId) == !has_output(type));
  const CellId id = static_cast<CellId>(cells_.size());
  Cell c;
  c.type = type;
  c.name = unique_name(name, cell_names_);
  c.out = out;
  c.ins = std::move(ins);
  cell_index_.emplace(c.name, id);
  if (out != kInvalidId) {
    assert(nets_[out].driver == kInvalidId && "net already driven");
    nets_[out].driver = id;
  }
  for (std::size_t i = 0; i < c.ins.size(); ++i) {
    if (c.ins[i] != kInvalidId)
      nets_[c.ins[i]].fanout.push_back({id, static_cast<std::uint8_t>(i + 1)});
  }
  cells_.push_back(std::move(c));
  return id;
}

NetId Netlist::add_input(std::string_view port_name) {
  const NetId net = add_net(port_name);
  const CellId cell = add_cell(CellType::kInput, port_name, net, {});
  input_cells_.push_back(cell);
  return net;
}

CellId Netlist::add_output(std::string_view port_name, NetId net) {
  const CellId cell = add_cell(CellType::kOutput, port_name, kInvalidId, {net});
  output_cells_.push_back(cell);
  return cell;
}

void Netlist::connect_input(CellId cell, int input_pin, NetId net) {
  Cell& c = cells_[cell];
  assert(input_pin >= 0 && input_pin < static_cast<int>(c.ins.size()));
  assert(c.ins[input_pin] == kInvalidId && "pin already connected");
  c.ins[input_pin] = net;
  nets_[net].fanout.push_back({cell, static_cast<std::uint8_t>(input_pin + 1)});
}

void Netlist::rewire_input(CellId cell, int input_pin, NetId new_net) {
  Cell& c = cells_[cell];
  assert(input_pin >= 0 && input_pin < static_cast<int>(c.ins.size()));
  const NetId old_net = c.ins[input_pin];
  if (old_net == new_net) return;
  if (old_net != kInvalidId) {
    auto& fo = nets_[old_net].fanout;
    const Pin p{cell, static_cast<std::uint8_t>(input_pin + 1)};
    for (std::size_t i = 0; i < fo.size(); ++i) {
      if (fo[i] == p) {
        fo[i] = fo.back();
        fo.pop_back();
        break;
      }
    }
  }
  c.ins[input_pin] = new_net;
  nets_[new_net].fanout.push_back({cell, static_cast<std::uint8_t>(input_pin + 1)});
}

void Netlist::replace_driver(NetId net, CellId new_driver) {
  Net& n = nets_[net];
  if (n.driver != kInvalidId) cells_[n.driver].out = kInvalidId;
  n.driver = new_driver;
  cells_[new_driver].out = net;
}

NetId Netlist::pin_net(Pin p) const {
  const Cell& c = cells_[p.cell];
  return p.pin == 0 ? c.out : c.ins[p.pin - 1];
}

NetId Netlist::find_input(std::string_view port_name) const {
  for (CellId c : input_cells_)
    if (cells_[c].name == port_name) return cells_[c].out;
  return kInvalidId;
}

CellId Netlist::find_output(std::string_view port_name) const {
  for (CellId c : output_cells_)
    if (cells_[c].name == port_name) return c;
  return kInvalidId;
}

NetId Netlist::find_net(std::string_view name) const {
  auto it = net_index_.find(std::string(name));
  return it == net_index_.end() ? kInvalidId : it->second;
}

CellId Netlist::find_cell(std::string_view name) const {
  auto it = cell_index_.find(std::string(name));
  return it == cell_index_.end() ? kInvalidId : it->second;
}

std::vector<CellId> Netlist::flops() const {
  std::vector<CellId> out;
  for (CellId i = 0; i < cells_.size(); ++i)
    if (is_sequential(cells_[i].type)) out.push_back(i);
  return out;
}

bool Netlist::levelize(std::vector<CellId>& order) const {
  // Kahn's algorithm over combinational cells. Sources: nets driven by
  // kInput, ties and flop outputs.
  order.clear();
  std::vector<std::uint32_t> pending(cells_.size(), 0);
  std::queue<CellId> ready;
  std::size_t num_comb = 0;
  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    if (is_sequential(c.type) || is_tie(c.type) || c.type == CellType::kInput)
      continue;
    ++num_comb;
    std::uint32_t deps = 0;
    for (NetId in : c.ins) {
      if (in == kInvalidId) continue;
      const CellId drv = nets_[in].driver;
      if (drv == kInvalidId) continue;
      const CellType dt = cells_[drv].type;
      if (!is_sequential(dt) && !is_tie(dt) && dt != CellType::kInput) ++deps;
    }
    pending[id] = deps;
    if (deps == 0) ready.push(id);
  }
  while (!ready.empty()) {
    const CellId id = ready.front();
    ready.pop();
    order.push_back(id);
    const Cell& c = cells_[id];
    if (c.out == kInvalidId) continue;
    for (const Pin& p : nets_[c.out].fanout) {
      const Cell& sink = cells_[p.cell];
      if (is_sequential(sink.type) || is_tie(sink.type) ||
          sink.type == CellType::kInput)
        continue;
      if (--pending[p.cell] == 0) ready.push(p.cell);
    }
  }
  return order.size() == num_comb;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  for (NetId id = 0; id < nets_.size(); ++id) {
    if (nets_[id].driver == kInvalidId)
      problems.push_back(format("net '%s' has no driver", nets_[id].name.c_str()));
  }
  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    for (std::size_t i = 0; i < c.ins.size(); ++i) {
      if (c.ins[i] == kInvalidId)
        problems.push_back(format("cell '%s' pin %s unconnected", c.name.c_str(),
                                  std::string(pin_name(c.type, static_cast<int>(i) + 1)).c_str()));
    }
    if (c.out != kInvalidId && nets_[c.out].driver != id)
      problems.push_back(format("cell '%s' output driver mismatch", c.name.c_str()));
  }
  std::vector<CellId> order;
  if (!levelize(order)) problems.push_back("combinational loop detected");
  return problems;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.cells = cells_.size();
  s.nets = nets_.size();
  s.inputs = input_cells_.size();
  s.outputs = output_cells_.size();
  for (const Cell& c : cells_) {
    if (is_sequential(c.type))
      ++s.flops;
    else if (is_tie(c.type))
      ++s.ties;
    else if (!is_port(c.type))
      ++s.gates;
    s.pins += (has_output(c.type) ? 1u : 0u) + c.ins.size();
  }
  return s;
}

std::unordered_map<std::string, std::size_t> Netlist::module_histogram() const {
  std::unordered_map<std::string, std::size_t> hist;
  for (const Cell& c : cells_) {
    const auto slash = c.name.find('/');
    std::string key = slash == std::string::npos ? std::string("<top>")
                                                 : c.name.substr(0, slash);
    ++hist[key];
  }
  return hist;
}

}  // namespace olfui
