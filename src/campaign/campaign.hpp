// olfui/campaign: the parallel fault-campaign orchestrator.
//
// The paper's core experiment — grade a test suite against the full
// stuck-at universe under a mission observation policy — is a *campaign*:
// an embarrassingly parallel sweep of (test, fault-batch) work items with
// bookkeeping between tests. Before this subsystem every caller (sbst,
// scan ATPG, the fig benches) hand-rolled its own single-threaded loop
// over 63-fault batches; this engine is the single entry point for all of
// them:
//
//  * scheduling — the target fault list is cut into up-to-(lanes-1)-fault
//    batches (one parallel-fault simulator pass each; 63 at the default
//    64-lane width) by a pluggable
//    BatchScheduler (scheduler.hpp: fixed spans by default, cone-aware
//    grouping, profile-guided adaptive splitting);
//  * execution — the planned shards run on a pluggable ShardExecutor
//    (executor.hpp: the in-process work-stealing worker pool by default,
//    or subprocess workers speaking a JSON line protocol — the seam any
//    future socket/multi-host backend plugs into);
//  * fault dropping — a fault detected by test k leaves the queue before
//    test k+1, so late tests grade ever-shrinking target lists;
//  * good-machine checkpointing — each test's fault-free run is recorded
//    once (fsim::ReferenceTrace, all nets) and every batch replays the
//    checkpoint as its reference instead of re-deriving good values from
//    lane 0 (TDF batches also read their launch schedules from it);
//  * deterministic merge — batch boundaries depend only on the target
//    list, each worker writes its batches' detection masks to dedicated
//    slots, and the merge walks shards in index order, so the
//    CampaignResult is bit-identical for any thread count.
//
// Workloads plug in through FaultBatchRunner: the SBST campaign wraps
// SequentialFaultSimulator + SocFsimEnvironment, the scan flow wraps
// ScanTestRunner, and ad-hoc sweeps can wrap anything that grades a
// 63-fault span.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "campaign/json.hpp"
#include "fault/fault_list.hpp"
#include "util/bitvec.hpp"
#include "util/lanes.hpp"

namespace olfui {

class BatchScheduler;  // campaign/scheduler.hpp
class ShardExecutor;   // campaign/executor.hpp
class ResultCache;     // campaign/cache.hpp

/// One worker's private grading kernel: simulator + environment state.
/// Instances are confined to a single worker thread; the factory that
/// creates them must be callable from any thread.
class FaultBatchRunner {
 public:
  virtual ~FaultBatchRunner() = default;
  /// Grades up to lanes-1 faults; bit i of the result = faults[i]
  /// detected. The mask type holds kMaxLaneWidth-1 faults regardless of
  /// the runner's actual width.
  virtual LaneMask run_batch(std::span<const FaultId> faults) = 0;
};

/// One test in a campaign: a name for reporting plus a thread-safe factory
/// producing per-worker runners. `good_cycles` is reporting metadata (the
/// good machine's functional cycle count, 0 where meaningless, e.g. scan
/// patterns).
struct CampaignTest {
  std::string name;
  int good_cycles = 0;
  std::function<std::unique_ptr<FaultBatchRunner>()> make_runner;
  /// Optional wire description of this test for remote executors: an
  /// opaque JSON document a worker-side workload uses to rebuild the
  /// grading state make_runner captures (program id, fsim options, state
  /// fingerprint — see build_sbst_campaign_tests). Null for local-only
  /// tests; a remote executor handed a null spec fails the campaign.
  Json spec;
};

struct CampaignOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  int threads = 0;
  /// Packed kernel width (64/128/256); unsupported requests fall back to
  /// 64 (resolve_lane_width). Pure throughput knob: detection sets are
  /// bit-identical at every width.
  int lane_width = 64;
  /// Dirty-D incremental clocking in the packed kernel (false = full
  /// two-pass latch oracle). Pure work-skipping knob: detection sets are
  /// bit-identical in both modes.
  bool incremental_clocking = true;
  /// Faults per shard; clamped to [1, lane_width - 1] (lane 0 is the good
  /// machine). The default tracks the resolved width: lanes - 1.
  int batch_size = 0;
  /// Detected faults leave the target queue before the next test. Off, every
  /// test grades the full testable universe (the regression baseline).
  bool fault_dropping = true;
  /// How the shared fault ids are read (fault/tdf.hpp): labels the result's
  /// polarity classes (sa0/sa1 vs str/stf) and the JSON report. The tests'
  /// runners must grade the matching model — the engine only shards and
  /// merges, it never reinterprets a batch.
  FaultModel fault_model = FaultModel::kStuckAt;
  /// Batch-formation policy (scheduler.hpp); null grades with the fixed
  /// contiguous-span policy. Policies only regroup and resize batches —
  /// every policy produces the identical detection set (the merge is
  /// order-independent), so this is purely a performance knob.
  std::shared_ptr<const BatchScheduler> scheduler;
  /// Shard-execution backend (executor.hpp); null runs shards on the
  /// engine's in-process worker pool. Executors only decide where planned
  /// shards run — the merge is slot-indexed by shard id, so every backend
  /// produces the identical detection set.
  std::shared_ptr<ShardExecutor> executor;
  /// Grade only the first N eligible targets per test (0 = all): the
  /// smoke/CI slicing knob. Deterministic — the slice is a prefix of the
  /// id-ordered target list — but coverage figures then describe the
  /// slice, not the universe.
  std::size_t target_limit = 0;
  /// Per-shard liveness deadline in seconds for distributed executors
  /// (forwarded as ShardWork::shard_timeout): a worker that neither
  /// replies nor heartbeats for this long is declared dead and its
  /// in-flight shards are re-issued. 0 derives a deadline from profiled
  /// shard times with a generous floor. Purely a liveness knob — the
  /// detection payload is identical whichever deadline fires.
  double shard_timeout = 0;
  /// Grade-result cache (cache.hpp). Before planning anything, run()
  /// looks the whole campaign up by CacheKey — a hit decodes the stored
  /// deterministic payload and returns with ZERO shards executed; a miss
  /// grades normally and stores. Null = off. Runs that are not cacheable
  /// (a target_mask is set, or any test lacks a wire spec) bypass the
  /// cache (stats.cache = "bypass").
  std::shared_ptr<ResultCache> cache;
  /// Restricts grading to the set bits of this fault mask (on top of the
  /// usual testable/undetected filtering) — the incremental re-grade
  /// seam: seed_from_previous splices unaffected detections and re-grades
  /// only the masked set. Null = all faults. Masked runs bypass the cache
  /// (their result does not describe the full campaign).
  std::shared_ptr<const BitVec> target_mask;
};

/// Campaign-wide outcome. Everything except `stats` is a pure function of
/// (universe, fault list, tests, batch_size, scheduling policy) — thread
/// count never shows through, which operator== checks (it deliberately
/// ignores the nondeterministic runtime stats). The scheduling policy
/// shows through only via tests[].batches (policies regroup work); the
/// detection payload (`detected`, classes, coverage) is policy-invariant.
struct CampaignResult {
  struct PerTest {
    std::string name;
    int good_cycles = 0;
    std::size_t faults_targeted = 0;  ///< queue length when the test ran
    std::size_t batches = 0;
    std::size_t new_detections = 0;
    bool operator==(const PerTest&) const = default;
  };

  /// Coverage bucketed by fault class (polarity, module, Table-I source).
  struct ClassCoverage {
    std::string name;
    std::size_t total = 0;
    std::size_t detected = 0;
    double coverage() const {
      return total ? static_cast<double>(detected) / static_cast<double>(total)
                   : 0.0;
    }
    bool operator==(const ClassCoverage&) const = default;
  };

  struct RuntimeStats {
    /// Sum of per-test grading time, each test measured by one monotonic
    /// (steady_clock) pair bracketing its grade() call — per-test
    /// bookkeeping and final class tallies are excluded, and every
    /// shard_seconds slot nests inside one bracket.
    double wall_seconds = 0;
    /// The engine's configured in-process parallelism (resolved_threads).
    /// With a custom executor this is what the default backend would have
    /// used, not what ran the shards — see `executor` for the backend.
    int threads = 0;
    std::size_t faults_simulated = 0;  ///< fault x test pairs graded
    std::size_t batches = 0;
    double faults_per_second = 0;
    /// BatchScheduler::name() of the policy that formed the batches.
    std::string schedule_policy = "fixed";
    /// ShardExecutor::name() of the backend that ran the shards.
    std::string executor = "inproc";
    /// Wall time of every shard, all tests concatenated in shard index
    /// order (test boundaries recoverable from tests[].batches). Early
    /// exit skews shard cost, so this is the profile input for
    /// AdaptiveScheduler's hot-shard splitting (scheduler.hpp).
    std::vector<double> shard_seconds;
    // Executor recovery odometer for this run (ExecutorHealth delta
    // around run()): how the result was obtained, never what it is — all
    // zero on an undisturbed campaign.
    std::size_t respawns = 0;        ///< worker processes relaunched
    std::size_t shard_reissues = 0;  ///< shards re-queued off dead workers
    std::size_t timeouts = 0;        ///< deadline/progress-rule expiries
    std::size_t degraded_shards = 0; ///< shards graded by the fallback
    /// Result-cache disposition of this run: "off" (no cache configured),
    /// "bypass" (cache configured but the run is not cacheable: masked
    /// targets or a spec-less test), "miss" (graded and stored), "hit"
    /// (decoded from the cache, zero shards executed), or "partial"
    /// (incremental re-grade via seed_from_previous).
    std::string cache = "off";
    /// campaign_options_hash() of the payload-affecting options (also the
    /// cache key's options component).
    std::uint64_t options_hash = 0;
    /// Partial-hit bookkeeping (zero outside "partial" runs): detections
    /// spliced from the previous result without simulating, faults
    /// re-graded, and re-graded share of the eligible universe.
    std::size_t cache_spliced = 0;
    std::size_t regraded_faults = 0;
    double regrade_fraction = 0;
  };

  std::size_t universe = 0;
  /// The model the campaign graded (copied from CampaignOptions).
  FaultModel fault_model = FaultModel::kStuckAt;
  std::size_t total_new_detections = 0;
  /// Detection state over the whole universe at campaign end (includes
  /// faults already detected before the campaign started).
  BitVec detected;
  std::vector<PerTest> tests;
  std::vector<ClassCoverage> classes;
  double raw_coverage = 0;
  double pruned_coverage = 0;
  RuntimeStats stats;  ///< nondeterministic; excluded from operator==

  bool operator==(const CampaignResult& o) const;
};

/// Wraps a stateless, thread-safe grading function (e.g. a const
/// ScanTestRunner kernel) as a CampaignTest: every worker's runner calls
/// the one shared function. State referenced by `kernel` must outlive the
/// campaign.
CampaignTest make_function_test(
    std::string name,
    std::function<LaneMask(std::span<const FaultId>)> kernel,
    int good_cycles = 0);

/// Progress callback: (test name, faults graded so far, faults targeted).
using CampaignProgress =
    std::function<void(const std::string&, std::size_t, std::size_t)>;

class CampaignEngine {
 public:
  explicit CampaignEngine(const FaultUniverse& universe,
                          CampaignOptions opts = {});

  const CampaignOptions& options() const { return opts_; }
  /// Worker count after resolving threads == 0.
  int resolved_threads() const;

  /// The deterministic parallel grading primitive, an explicit
  /// plan -> execute -> merge pipeline: forms batches through the
  /// configured BatchScheduler, hands the validated plan and every shard
  /// id to the configured ShardExecutor, and merges the returned masks
  /// back to target order, returning per-target detection flags (aligned
  /// with `targets`). Flows with their own between-test bookkeeping
  /// (e.g. scan ATPG's equivalence-class propagation) build on this
  /// directly. With `shard_seconds`, each shard's wall time is appended
  /// in shard index order.
  BitVec grade(std::span<const FaultId> targets, const CampaignTest& test,
               const CampaignProgress& progress = {},
               std::vector<double>* shard_seconds = nullptr) const;

  /// Runs the full campaign: for each test in order, grades the remaining
  /// targets (fault dropping permitting), marks detections in `fl`, and
  /// accumulates the result.
  CampaignResult run(FaultList& fl, std::span<const CampaignTest> tests,
                     const CampaignProgress& progress = {}) const;

 private:
  const BatchScheduler& scheduler() const;
  ShardExecutor& executor() const;

  const FaultUniverse* universe_;
  CampaignOptions opts_;
  /// Default backend when opts_.executor is null: an InProcessExecutor
  /// over the resolved thread count, created lazily under exec_mu_ (its
  /// worker pool parks between grade() calls — see executor.hpp).
  /// Executors synchronize execute() internally, so a const engine stays
  /// safe to share across threads.
  mutable std::mutex exec_mu_;
  mutable std::shared_ptr<ShardExecutor> default_executor_;
};

}  // namespace olfui
