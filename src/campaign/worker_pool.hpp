// olfui/campaign: persistent condition-variable-parked worker pool.
//
// CampaignEngine::grade used to spawn and join a fresh std::thread pool on
// every call. Campaign-per-test workloads barely noticed, but scan ATPG
// grades once per pattern — thousands of grade() calls — so pool
// construction (thread create + join + stack setup) dominated small
// grades. This pool is created once per engine: workers park on a
// condition variable between jobs and a job dispatch is one lock + one
// notify_all, which on many-core hosts cuts per-pattern overhead from
// milliseconds to microseconds.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace olfui {

class WorkerPool {
 public:
  /// Spawns `threads` parked worker threads (0 is valid: run() then
  /// executes everything on the caller).
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Parked worker threads (the caller adds one more participant).
  std::size_t size() const { return threads_.size(); }

  /// Runs job(0) on the caller and job(1..participants-1) on parked
  /// workers, blocking until every participant returns. participants is
  /// clamped to size() + 1. The first exception thrown by any participant
  /// is rethrown on the caller after all participants finish, its message
  /// prefixed with the throwing participant's index (callers dispatching
  /// sharded work add the shard/test context — see InProcessExecutor).
  /// Not re-entrant: one run() at a time per pool.
  void run(std::size_t participants,
           const std::function<void(std::size_t)>& job);

 private:
  void worker_main(std::size_t index);

  std::mutex mu_;
  std::condition_variable cv_work_;  ///< workers park here
  std::condition_variable cv_done_;  ///< caller waits for active_ == 0
  std::uint64_t generation_ = 0;     ///< bumped per dispatched job
  std::size_t participants_ = 0;     ///< current job's participant count
  std::size_t active_ = 0;           ///< pool workers still in the job
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::vector<std::exception_ptr> errors_;  ///< per participant
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace olfui
