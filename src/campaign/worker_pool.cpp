#include "campaign/worker_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace olfui {

namespace {

/// Captures the in-flight exception, prefixing std::exception messages
/// with the participant index (shard/test context is the dispatcher's —
/// see InProcessExecutor — but which lane died is only known here).
/// Non-std exceptions are kept as-is rather than losing their type.
std::exception_ptr capture_with_context(std::size_t participant) {
  try {
    throw;
  } catch (const std::exception& e) {
    return std::make_exception_ptr(std::runtime_error(
        "worker pool participant " + std::to_string(participant) + ": " +
        e.what()));
  } catch (...) {
    return std::current_exception();
  }
}

}  // namespace

WorkerPool::WorkerPool(std::size_t threads) {
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    threads_.emplace_back([this, i] { worker_main(i + 1); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::worker_main(std::size_t index) {
  // Pin the trace lane to the participant index so spans recorded on this
  // thread land on the row matching the dispatcher's worker numbering
  // (the caller is participant 0 on its own lane).
  obs::set_thread_lane(static_cast<int>(index));
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (index >= participants_) continue;  // not needed this job
      job = job_;
    }
    std::exception_ptr error;
    try {
      (*job)(index);
    } catch (...) {
      error = capture_with_context(index);
    }
    {
      std::lock_guard lock(mu_);
      if (error) errors_[index] = error;
      if (--active_ == 0) cv_done_.notify_one();
    }
    // Side-band: one park per job completion (the thread is about to go
    // back to the CV), profiling how often the pool cycles.
    if (obs::metrics().enabled())
      obs::metrics().counter("campaign.pool_parks").add();
  }
}

void WorkerPool::run(std::size_t participants,
                     const std::function<void(std::size_t)>& job) {
  participants = std::min(participants, threads_.size() + 1);
  if (participants == 0) return;
  const std::size_t pool_participants = participants - 1;
  {
    std::lock_guard lock(mu_);
    job_ = &job;
    participants_ = participants;
    active_ = pool_participants;
    errors_.assign(participants, nullptr);
    ++generation_;
  }
  if (pool_participants > 0) cv_work_.notify_all();
  // The caller is participant 0 — it does real work instead of idling on
  // the join, so a 1-participant run never touches a thread.
  try {
    job(0);
  } catch (...) {
    std::lock_guard lock(mu_);
    errors_[0] = capture_with_context(0);
  }
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    job_ = nullptr;
  }
  for (const std::exception_ptr& e : errors_)
    if (e) std::rethrow_exception(e);
}

}  // namespace olfui
