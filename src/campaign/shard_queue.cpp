#include "campaign/shard_queue.hpp"

#include "obs/metrics.hpp"

namespace olfui {

/// Side-band depth/steal telemetry; one enabled() branch when metrics are
/// off. Depth is the sum of the per-lane heuristic counts — approximate
/// under concurrency, exact enough for a load profile.
void ShardQueue::note_pop(bool stolen) const {
  if (!obs::metrics().enabled()) return;
  if (stolen) obs::metrics().counter("campaign.shard_steals").add();
  std::size_t depth = 0;
  for (const Lane& lane : lanes_)
    depth += lane.count.load(std::memory_order_relaxed);
  obs::metrics().gauge("campaign.queue_depth")
      .set(static_cast<std::int64_t>(depth));
}

ShardQueue::ShardQueue(std::size_t shards, std::size_t workers)
    : lanes_(workers == 0 ? 1 : workers) {
  for (std::size_t s = 0; s < shards; ++s)
    lanes_[s % lanes_.size()].work.push_back(s);
  for (Lane& lane : lanes_)
    lane.count.store(lane.work.size(), std::memory_order_relaxed);
}

bool ShardQueue::pop(std::size_t worker, std::size_t& shard) {
  {
    Lane& own = lanes_[worker];
    std::lock_guard lock(own.mu);
    if (!own.work.empty()) {
      shard = own.work.front();
      own.work.pop_front();
      own.count.store(own.work.size(), std::memory_order_relaxed);
      note_pop(/*stolen=*/false);
      return true;
    }
  }
  // Steal from the victim with the most remaining work. The atomic count
  // is only a heuristic; the actual steal re-checks under the victim's
  // lock. No shard is ever re-enqueued, so an empty scan means the
  // campaign is dry.
  while (true) {
    std::size_t victim = lanes_.size();
    std::size_t best = 0;
    for (std::size_t v = 0; v < lanes_.size(); ++v) {
      if (v == worker) continue;
      const std::size_t n = lanes_[v].count.load(std::memory_order_relaxed);
      if (n > best) {
        best = n;
        victim = v;
      }
    }
    if (victim == lanes_.size()) return false;
    Lane& lane = lanes_[victim];
    std::lock_guard lock(lane.mu);
    if (lane.work.empty()) continue;  // raced with the owner; rescan
    shard = lane.work.back();
    lane.work.pop_back();
    lane.count.store(lane.work.size(), std::memory_order_relaxed);
    note_pop(/*stolen=*/true);
    return true;
  }
}

}  // namespace olfui
