// olfui/campaign: work-stealing shard distribution.
//
// A campaign slices its target fault list into fixed 63-lane shards; the
// queue's only job is to hand every shard index to exactly one worker with
// good load balance. Shards are striped across per-worker deques up front
// (worker w seeds with shards w, w+W, w+2W, ...), each worker pops from
// the front of its own deque, and a worker whose deque runs dry steals
// from the *back* of the busiest victim — the classic split that keeps
// owner and thief on opposite ends. Batch results are written to
// per-shard slots, so the queue needs no result synchronisation and the
// merge order (shard 0, 1, 2, ...) is independent of who ran what.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace olfui {

class ShardQueue {
 public:
  /// Distributes shard indices [0, shards) across `workers` deques.
  ShardQueue(std::size_t shards, std::size_t workers);

  /// Next shard for `worker`: its own front, else stolen from the victim
  /// with the most remaining work. Returns false when the campaign is dry.
  bool pop(std::size_t worker, std::size_t& shard);

  std::size_t workers() const { return lanes_.size(); }

 private:
  struct Lane {
    std::mutex mu;
    std::deque<std::size_t> work;
    /// Lock-free view of work.size() for victim selection.
    std::atomic<std::size_t> count{0};
  };

  /// Side-band steal/depth telemetry after a successful pop (obs).
  void note_pop(bool stolen) const;

  std::vector<Lane> lanes_;
};

}  // namespace olfui
