// olfui/campaign: the shard-execution seam (plan -> execute -> merge).
//
// CampaignEngine::grade used to hard-wire shard execution onto its own
// worker pool; the executor turns "who runs a planned shard, where" into a
// policy behind one interface, the same move the scheduler made for batch
// formation. The engine plans (BatchScheduler), hands the validated plan
// plus shard ids to a ShardExecutor, and merges the returned per-shard
// 64-bit masks back to target order — the merge is slot-indexed by shard
// id, so the result is bit-identical no matter where (or in what order)
// the shards actually ran.
//
// Two executors ship:
//  * InProcessExecutor — the pre-seam behaviour: a persistent CV-parked
//    WorkerPool draining a work-stealing ShardQueue in this process;
//  * SubprocessExecutor — spawns worker child processes (olfui_cli
//    --worker) and speaks a JSON line protocol over their stdin/stdout.
//    Shards are striped across workers up front (deterministic), each
//    worker rebuilds the test's grading state from CampaignTest::spec,
//    and a worker that crashes or under-reports is detected and reported,
//    never silently dropped. This is the coordinator shape any future
//    socket/multi-host backend plugs into: the wire format is the
//    executor's, not the transport's.
//
// Wire protocol (one JSON document per line, both directions):
//
//   worker -> coordinator on spawn:
//     {"type":"hello","protocol":1,"ts_us":T}
//   coordinator -> worker, one per grade() call per worker:
//     {"type":"grade","test":NAME,"fault_model":"stuck_at"|"transition",
//      "spec":<CampaignTest::spec>,"plan":<batch_plan_to_json>,
//      "targets":[fault ids in target order],"shards":[shard ids],
//      "telemetry":true?}
//   worker -> coordinator, one per requested shard, then a summary:
//     {"type":"shard","shard":ID,"mask":"16-hex-word","seconds":S}
//     {"type":"done","test":NAME,"universe":N,"state_fp":"16-hex-word",
//      "telemetry":{"spans":[...],"counters":{...}}?}
//   worker -> coordinator on any failure (the worker then exits 1):
//     {"type":"error","message":TEXT}
//
// Fields marked "?" are optional and strictly side-band (obs/trace.hpp):
// "ts_us" is the worker's monotonic clock at hello (the coordinator
// derives a per-worker clock offset so merged spans share its timeline),
// "telemetry" on a grade request asks the worker to attach its spans and
// counters to the "done" line. Absent fields are fully compatible both
// directions — the protocol version stays 1 — and none of them ever
// influences grading, so the detection payload is bit-identical with
// telemetry on or off.
//
// Determinism contract: a worker grades exactly the fault spans the plan
// dictates (it re-gathers targets through batch_plan_from_json), lane
// semantics are the runner's, and the coordinator re-merges by shard id —
// so coordinator + N subprocess workers produce the same detection set as
// the in-process pool, bit for bit. The "done" line carries the worker's
// rebuilt universe size (and state fingerprint, cross-checked against
// spec.state_fp on the worker) so a workload mismatch fails loudly
// instead of grading garbage.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/worker_pool.hpp"

namespace olfui {

/// Wire-format revision; bumped on any incompatible protocol change.
inline constexpr int kWorkerProtocolVersion = 1;

/// One shard's outcome: detection mask (bit i = i-th fault of the batch
/// detected) plus the grading wall time (the adaptive-profile input).
struct ShardResult {
  std::uint64_t mask = 0;
  double seconds = 0;
};

/// Everything one grade() call hands its executor. References and spans
/// point into the engine's frame and stay valid for the execute() call.
struct ShardWork {
  const BatchPlan& plan;              ///< validated by the engine
  std::span<const FaultId> targets;   ///< in original target order
  std::span<const FaultId> planned;   ///< planned[i] = targets[plan.order[i]]
  std::span<const std::uint32_t> shards;  ///< shard ids to execute
  const CampaignTest& test;
  FaultModel fault_model = FaultModel::kStuckAt;
  std::size_t universe = 0;  ///< remote-worker cross-check
  /// Thread-safe completion callback, called with each finished shard's
  /// batch size (may be empty).
  std::function<void(std::size_t)> progress;
};

class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;
  /// Backend label for reports ("inproc" / "subprocess").
  virtual std::string_view name() const = 0;
  /// Executes the requested shards; result[i] belongs to work.shards[i]
  /// regardless of completion order. Throws on any shard failure (a lost
  /// shard must fail the campaign loudly, never shrink the merge).
  /// Internally synchronized: safe to call through a shared const engine.
  virtual std::vector<ShardResult> execute(const ShardWork& work) = 0;
};

/// The default backend — a persistent WorkerPool draining a work-stealing
/// ShardQueue in this process. An engine without an explicit executor
/// behaves exactly like an engine holding one of these.
class InProcessExecutor final : public ShardExecutor {
 public:
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  explicit InProcessExecutor(int threads = 0);

  std::string_view name() const override { return "inproc"; }
  std::vector<ShardResult> execute(const ShardWork& work) override;

  /// Thread count after resolving threads == 0.
  int resolved_threads() const;

 private:
  WorkerPool& pool();

  int threads_;
  /// Workers park between execute() calls (see worker_pool.hpp); created
  /// lazily on the first multi-threaded execute. The mutex also
  /// serializes concurrent execute() calls onto the one pool.
  std::mutex mu_;
  std::unique_ptr<WorkerPool> pool_;
};

/// Distributed backend: `workers` child processes launched from
/// `worker_command` (argv of one worker, e.g. {"./olfui_cli","--worker"}),
/// each speaking the line protocol above on stdin/stdout. Children are
/// spawned lazily on the first execute() and persist across grade() calls
/// (workers cache rebuilt per-test state), shutting down on destruction.
class SubprocessExecutor final : public ShardExecutor {
 public:
  SubprocessExecutor(std::vector<std::string> worker_command, int workers);
  ~SubprocessExecutor() override;

  SubprocessExecutor(const SubprocessExecutor&) = delete;
  SubprocessExecutor& operator=(const SubprocessExecutor&) = delete;

  std::string_view name() const override { return "subprocess"; }
  std::vector<ShardResult> execute(const ShardWork& work) override;

  int workers() const { return workers_; }

 private:
  struct Worker {
    long pid = -1;
    std::FILE* to = nullptr;    ///< worker's stdin
    std::FILE* from = nullptr;  ///< worker's stdout
    /// The worker's stderr, captured to an unlinked temp file so a crash
    /// report can quote the child's own diagnostics (stderr_tail).
    std::FILE* err = nullptr;
    /// Coordinator tracer time minus worker tracer time, measured at the
    /// hello handshake; shifts merged worker spans onto our timeline.
    std::int64_t clock_offset_us = 0;
  };

  void spawn_all();                     // under mu_
  void shutdown_all();                  // under mu_
  [[noreturn]] void fail(std::size_t worker, const std::string& what);
  /// Last few lines the worker wrote to stderr ("" when silent/unknown).
  std::string stderr_tail(std::size_t worker) const;
  /// Folds a done reply's telemetry object into the process-wide tracer
  /// and metrics registry (worker pid lane, clock-offset-shifted spans).
  void merge_worker_telemetry(std::size_t worker, const Json& telemetry);

  std::vector<std::string> command_;
  int workers_;
  std::mutex mu_;
  std::vector<Worker> procs_;
};

// ---------------------------------------------------------------------------
// Wire format helpers (exposed for the worker side and for tests).

/// One decoded coordinator->worker grade request.
struct ShardRequest {
  std::string test;
  FaultModel fault_model = FaultModel::kStuckAt;
  Json spec;  ///< CampaignTest::spec, opaque to the protocol
  BatchPlan plan;
  std::vector<FaultId> targets;          ///< original target order
  std::vector<std::uint32_t> shards;     ///< shard ids to grade
  /// Targets gathered through the plan (filled by shard_request_from_json
  /// after validating the plan): planned[i] = targets[plan.order[i]].
  std::vector<FaultId> planned;
  /// Coordinator asked for spans/counters on the done reply (side-band;
  /// never influences grading).
  bool telemetry = false;
};

Json shard_request_to_json(const ShardWork& work);
/// Parses and validates a grade request (plan validated against the
/// target count, shard ids bounds-checked); fills `planned`. Throws
/// JsonError on malformed documents.
ShardRequest shard_request_from_json(const Json& doc);

// ---------------------------------------------------------------------------
// Worker side.

/// The worker half's workload: rebuilds per-test grading state from a
/// request (a subprocess worker owns its own netlist/universe copies and
/// must reconstruct state the coordinator's CampaignTest::spec describes).
class WorkerWorkload {
 public:
  virtual ~WorkerWorkload() = default;
  /// Universe size of the rebuilt workload (reported on "done" lines so
  /// the coordinator can reject a mismatched worker).
  virtual std::size_t universe_size() = 0;
  /// Grades one batch of the request's test; bit i = faults[i] detected.
  /// Batches arrive gathered in plan order. Implementations should cache
  /// per-test state across requests — workers are persistent.
  virtual std::uint64_t run_batch(const ShardRequest& request,
                                  std::span<const FaultId> faults) = 0;
  /// Fingerprint of the rebuilt per-test state (e.g.
  /// ReferenceTrace::fingerprint()); cross-checked against the spec's
  /// state_fp when present. 0 opts out.
  virtual std::uint64_t state_fingerprint(const ShardRequest& request) = 0;
};

/// Serves the worker half of the protocol on (in, out) until EOF: hello,
/// then one reply stream per request. Returns 0 on clean shutdown, 1
/// after answering a failure with an "error" document. olfui_cli --worker
/// is a thin wrapper around this; tests drive it over memory streams.
int serve_worker(std::FILE* in, std::FILE* out, WorkerWorkload& workload);

}  // namespace olfui
