// olfui/campaign: the shard-execution seam (plan -> execute -> merge).
//
// CampaignEngine::grade used to hard-wire shard execution onto its own
// worker pool; the executor turns "who runs a planned shard, where" into a
// policy behind one interface, the same move the scheduler made for batch
// formation. The engine plans (BatchScheduler), hands the validated plan
// plus shard ids to a ShardExecutor, and merges the returned per-shard
// detection masks (LaneMask — up to kMaxLaneWidth-1 faults per shard)
// back to target order — the merge is slot-indexed by shard id, so the
// result is bit-identical no matter where (or in what order) the shards
// actually ran.
//
// Two executors ship:
//  * InProcessExecutor — the pre-seam behaviour: a persistent CV-parked
//    WorkerPool draining a work-stealing ShardQueue in this process;
//  * SubprocessExecutor — a *supervised* fleet of worker child processes
//    (olfui_cli --worker) speaking a JSON line protocol over their
//    stdin/stdout. Shards are dispatched pull-based from a
//    coordinator-side queue (the distributed mirror of the in-process
//    ShardQueue): each worker holds a small grant window and receives the
//    next shard as it drains one, so slow workers absorb less work.
//    Worker failure is detected three ways — exit/EOF, a per-shard
//    deadline (ShardWork::shard_timeout), and a progress rule on the
//    reply stream (any shard reply or heartbeat resets the deadline) —
//    and a failed worker's in-flight shards are re-queued and regraded
//    elsewhere, never lost and never failing the campaign. Crashed
//    workers are respawned with capped exponential backoff up to a fleet
//    respawn budget; if the fleet still collapses below
//    FleetOptions::min_workers the remaining shards degrade to an
//    in-process fallback with a loud warning. Because the merge is
//    placement-independent, every recovery path is bit-identical to an
//    undisturbed run by construction. This is the coordinator shape any
//    future socket/multi-host backend plugs into: the wire format is the
//    executor's, not the transport's.
//
// Wire protocol v2 (one JSON document per line, both directions):
//
//   worker -> coordinator on spawn:
//     {"type":"hello","protocol":2,"ts_us":T,"max_lanes":W?}
//   coordinator -> worker, once per grade() call per worker:
//     {"type":"grade","test":NAME,"fault_model":"stuck_at"|"transition",
//      "spec":<CampaignTest::spec>,"plan":<batch_plan_to_json>,
//      "targets":[fault ids in target order],"shards":[initial grant],
//      "lanes":W?,"dynamic":true?,"heartbeat":true?,"telemetry":true?}
//   coordinator -> worker while dynamic (pull dispatch):
//     {"type":"grant","shards":[shard ids]}        more work
//     {"type":"grant","shards":[],"final":true}    no more work -> reply done
//   worker -> coordinator per granted shard (heartbeat first when asked):
//     {"type":"heartbeat","shard":ID}
//     {"type":"shard","shard":ID,"mask":["16-hex-word",...],"seconds":S}
//   worker -> coordinator once per grade request, after the final grant
//   (immediately, in non-dynamic mode):
//     {"type":"done","test":NAME,"universe":N,"state_fp":"16-hex-word",
//      "telemetry":{"spans":[...],"counters":{...}}?}
//   worker -> coordinator on any failure (the worker then exits 1):
//     {"type":"error","message":TEXT}
//
// Fields marked "?" are optional. "max_lanes" is the widest packed kernel
// the worker binary instantiates (absent = 64, the pre-width build);
// "lanes" is the width the coordinator graded its plan for (absent = 64) —
// a coordinator rejects, as deterministic misconfiguration, any worker
// whose max_lanes is below the campaign's lane width, exactly like a
// universe-size mismatch, and a worker rejects a request whose lanes
// exceed what it instantiates or whose plan carries batches over lanes-1
// faults. "mask" is a fixed-order array of 16-hex-digit words, least
// significant word first, LaneMask::kWords long (a lone string is
// accepted on parse for pre-width senders). "dynamic" switches the request to
// grant-driven dispatch; absent, the request is self-contained v1 style
// (grade the listed shards, reply done) — tests and one-shot tools keep
// that simpler shape. "heartbeat" asks the worker to announce each shard
// before grading it, which is what lets the coordinator tell "slow shard,
// still alive" from "wedged"; "telemetry" asks for side-band
// spans/counters on done; "ts_us" is the worker's monotonic clock at
// hello (the coordinator derives a per-worker clock offset so merged
// spans share its timeline). None of the optional fields ever influences
// grading, so the detection payload is bit-identical with them on or off.
//
// Determinism contract: a worker grades exactly the fault spans the plan
// dictates (it re-gathers targets through batch_plan_from_json), lane
// semantics are the runner's, and the coordinator re-merges by shard id —
// so coordinator + N subprocess workers produce the same detection set as
// the in-process pool, bit for bit, *including* runs where workers
// crashed, stalled, or were killed mid-shard: a re-executed shard grades
// the same faults with the same kernel and lands in the same slot. The
// "done" line carries the worker's rebuilt universe size (and state
// fingerprint, cross-checked against spec.state_fp on the worker) so a
// workload mismatch fails loudly instead of grading garbage — that class
// of error is deterministic misconfiguration, not an infrastructure
// fault, and is never retried.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/worker_pool.hpp"

namespace olfui {

/// Wire-format revision; bumped on any incompatible protocol change.
/// v2 added pull-based dispatch (dynamic grants) and heartbeats.
inline constexpr int kWorkerProtocolVersion = 2;

/// One shard's outcome: detection mask (bit i = i-th fault of the batch
/// detected) plus the grading wall time (the adaptive-profile input).
struct ShardResult {
  LaneMask mask;
  double seconds = 0;
};

/// Everything one grade() call hands its executor. References and spans
/// point into the engine's frame and stay valid for the execute() call.
struct ShardWork {
  const BatchPlan& plan;              ///< validated by the engine
  std::span<const FaultId> targets;   ///< in original target order
  std::span<const FaultId> planned;   ///< planned[i] = targets[plan.order[i]]
  std::span<const std::uint32_t> shards;  ///< shard ids to execute
  const CampaignTest& test;
  FaultModel fault_model = FaultModel::kStuckAt;
  std::size_t universe = 0;  ///< remote-worker cross-check
  /// Thread-safe completion callback, called with each finished shard's
  /// batch size (may be empty). A re-executed shard reports once — on the
  /// grade that actually completed.
  std::function<void(std::size_t)> progress;
  /// Per-shard deadline in seconds for distributed backends
  /// (CampaignOptions::shard_timeout). 0 = derive from the shards this
  /// executor has already seen complete, with a generous floor — see
  /// SubprocessExecutor. Strictly a liveness knob: results are
  /// bit-identical whatever deadline fires.
  double shard_timeout = 0;
  /// Packed kernel width the plan was formed for (CampaignOptions::
  /// lane_width, already resolved). Bounds batch sizes at lane_width - 1
  /// and is forwarded to remote workers as the request's "lanes" field.
  int lane_width = 64;
};

/// Recovery-path odometer, cumulative over an executor's lifetime. The
/// engine snapshots it around run() and reports the delta in
/// RuntimeStats; the obs registry gets the same increments live (counters
/// executor.respawns / shard_reissues / timeouts / degraded). All zero on
/// an undisturbed campaign — and nonzero values never change the
/// detection payload, only explain how it was obtained.
struct ExecutorHealth {
  std::size_t respawns = 0;        ///< worker processes relaunched
  std::size_t shard_reissues = 0;  ///< in-flight shards re-queued on failure
  std::size_t timeouts = 0;        ///< deadline/progress-rule expiries
  std::size_t degraded_shards = 0; ///< shards graded by the in-process fallback
};

class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;
  /// Backend label for reports ("inproc" / "subprocess").
  virtual std::string_view name() const = 0;
  /// Executes the requested shards; result[i] belongs to work.shards[i]
  /// regardless of completion order. Throws on any shard failure a
  /// recovery path cannot absorb (a lost shard must fail the campaign
  /// loudly, never shrink the merge).
  /// Internally synchronized: safe to call through a shared const engine.
  virtual std::vector<ShardResult> execute(const ShardWork& work) = 0;
  /// Recovery-path counters, cumulative over this executor's lifetime
  /// (zero for backends with no failure modes of their own).
  virtual ExecutorHealth health() const { return {}; }
};

/// The default backend — a persistent WorkerPool draining a work-stealing
/// ShardQueue in this process. An engine without an explicit executor
/// behaves exactly like an engine holding one of these.
class InProcessExecutor final : public ShardExecutor {
 public:
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  explicit InProcessExecutor(int threads = 0);

  std::string_view name() const override { return "inproc"; }
  std::vector<ShardResult> execute(const ShardWork& work) override;

  /// Thread count after resolving threads == 0.
  int resolved_threads() const;

 private:
  WorkerPool& pool();

  int threads_;
  /// Workers park between execute() calls (see worker_pool.hpp); created
  /// lazily on the first multi-threaded execute. The mutex also
  /// serializes concurrent execute() calls onto the one pool.
  std::mutex mu_;
  std::unique_ptr<WorkerPool> pool_;
};

/// Supervision knobs for the subprocess fleet. Defaults are production
/// shaped: generous deadlines (grading shards are normally sub-second;
/// the floor must also cover a worker's one-time per-test state rebuild),
/// a respawn budget that tolerates sporadic crashes without masking a
/// systematically broken worker binary, and degradation preferred over
/// failing a campaign that the coordinator could finish alone.
struct FleetOptions {
  int workers = 2;
  /// Fleet-wide respawn budget (not per slot). 0 = never respawn.
  int max_respawns = 8;
  /// Degrade to the in-process fallback when fewer than this many workers
  /// are live or pending respawn (clamped to [1, workers]).
  int min_workers = 1;
  /// Seconds a freshly spawned worker gets to complete the hello
  /// handshake before it is treated as crashed.
  double hello_timeout = 10.0;
  /// Respawn backoff: base * 2^(consecutive failures of that slot),
  /// capped. Keeps a crash-looping worker from burning CPU while still
  /// recovering quickly from a one-off kill.
  double backoff_base = 0.1;
  double backoff_cap = 2.0;
};

/// Distributed backend: a supervised fleet of `opts.workers` child
/// processes launched from `worker_command` (argv of one worker, e.g.
/// {"./olfui_cli","--worker"}), each speaking the line protocol above on
/// stdin/stdout. Children are spawned lazily on the first execute() and
/// persist across grade() calls (workers cache rebuilt per-test state),
/// shutting down on destruction. See the header comment for the failure
/// model; fatal (non-recoverable) errors are deterministic
/// misconfigurations only — null spec, protocol version mismatch,
/// universe/fingerprint mismatch, a worker's own "error" reply.
class SubprocessExecutor final : public ShardExecutor {
 public:
  SubprocessExecutor(std::vector<std::string> worker_command,
                     FleetOptions opts);
  SubprocessExecutor(std::vector<std::string> worker_command, int workers)
      : SubprocessExecutor(std::move(worker_command),
                           FleetOptions{.workers = workers}) {}
  ~SubprocessExecutor() override;

  SubprocessExecutor(const SubprocessExecutor&) = delete;
  SubprocessExecutor& operator=(const SubprocessExecutor&) = delete;

  std::string_view name() const override { return "subprocess"; }
  std::vector<ShardResult> execute(const ShardWork& work) override;
  ExecutorHealth health() const override;

  int workers() const { return opts_.workers; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Worker {
    enum class State {
      kDead,   ///< no process (never spawned, or failed; may await respawn)
      kHello,  ///< spawned, handshake not yet complete
      kReady,  ///< greeted; eligible for grants
    };

    long pid = -1;
    int to_fd = -1;    ///< worker's stdin (blocking; EINTR-retried writes)
    int from_fd = -1;  ///< worker's stdout (nonblocking; poll-driven)
    /// The worker's stderr, captured to an unlinked temp file so failure
    /// reports can quote the child's own diagnostics (stderr_tail). The
    /// capture is bounded: oversized files are truncated back to a tail
    /// on read-back.
    std::FILE* err = nullptr;
    /// Coordinator tracer time minus worker tracer time, measured at the
    /// hello handshake; shifts merged worker spans onto our timeline.
    std::int64_t clock_offset_us = 0;

    State state = State::kDead;
    std::string rbuf;  ///< bytes read but not yet '\n'-terminated
    /// Tail saved before an oversized stderr capture was truncated;
    /// prefixed to stderr_tail so the last pre-truncation diagnostics
    /// survive.
    std::string saved_tail;
    std::deque<std::uint32_t> inflight;  ///< granted, unanswered shard ids
    bool preamble_sent = false;  ///< grade doc sent for current execute()
    bool done_received = false;
    bool final_sent = false;  ///< final grant sent for current execute()
    /// Liveness deadline: hello completion (kHello) or next progress
    /// (kReady with in-flight work). Reset by any reply line.
    Clock::time_point deadline{};
    bool deadline_armed = false;
    int incarnation = 0;     ///< respawn generation of this slot
    int failures = 0;        ///< consecutive failures (backoff exponent)
    Clock::time_point respawn_at{};
    bool respawn_scheduled = false;
    /// Widest packed kernel the worker announced at hello (absent = 64).
    /// A worker narrower than the campaign's lane width is rejected as
    /// deterministic misconfiguration before any grant.
    int max_lanes = 64;
  };

  // All private methods below run under mu_ (execute() holds it).
  bool spawn_worker(std::size_t i);
  void shutdown_all();
  void fail_worker(std::size_t i, const std::string& what, bool timed_out,
                   std::deque<std::uint32_t>& pending);
  [[noreturn]] void fatal(std::size_t worker, const std::string& what);
  /// Last few lines the worker wrote to stderr ("" when silent/unknown),
  /// including any tail saved before a truncation. When the capture file
  /// has grown past the bound, truncates it back (the read-back is the
  /// bounding point — see bound_stderr).
  std::string stderr_tail(std::size_t worker);
  /// Caps the stderr capture file: keeps the last few KiB in
  /// saved_tail and truncates the file so a chatty long-running worker
  /// cannot grow it without bound.
  void bound_stderr(Worker& w);
  void reap(Worker& w, int* status);
  /// Folds a done reply's telemetry object into the process-wide tracer
  /// and metrics registry (worker pid lane, clock-offset-shifted spans).
  void merge_worker_telemetry(std::size_t worker, const Json& telemetry);
  double effective_timeout(const ShardWork& work) const;

  std::vector<std::string> command_;
  FleetOptions opts_;
  mutable std::mutex mu_;
  std::vector<Worker> procs_;
  ExecutorHealth health_;
  int respawns_left_ = 0;
  /// Longest completed-shard grading time seen over this executor's
  /// lifetime — the profile input for the derived deadline when
  /// ShardWork::shard_timeout is 0.
  double observed_max_seconds_ = 0;
  /// Most recent worker-failure warning, quoted by the fleet-collapse
  /// error so the root cause is not lost in a stderr scroll.
  std::string last_failure_;
  /// Lazy in-process fallback for the degradation ladder.
  std::unique_ptr<InProcessExecutor> fallback_;
};

// ---------------------------------------------------------------------------
// Wire format helpers (exposed for the worker side and for tests).

/// One decoded coordinator->worker grade request.
struct ShardRequest {
  std::string test;
  FaultModel fault_model = FaultModel::kStuckAt;
  Json spec;  ///< CampaignTest::spec, opaque to the protocol
  BatchPlan plan;
  std::vector<FaultId> targets;          ///< original target order
  std::vector<std::uint32_t> shards;     ///< shard ids to grade (first grant)
  /// Targets gathered through the plan (filled by shard_request_from_json
  /// after validating the plan): planned[i] = targets[plan.order[i]].
  std::vector<FaultId> planned;
  /// Coordinator asked for spans/counters on the done reply (side-band;
  /// never influences grading).
  bool telemetry = false;
  /// Pull dispatch: after the initial shards, await grant lines until a
  /// final one, then reply done.
  bool dynamic = false;
  /// Announce each shard with a heartbeat line before grading it.
  bool heartbeat = false;
  /// Packed width the coordinator graded its plan for (absent = 64). The
  /// parse rejects requests wider than this build instantiates and plans
  /// whose batches exceed lanes - 1 faults.
  int lanes = 64;
};

Json shard_request_to_json(const ShardWork& work);
/// Parses and validates a grade request (plan validated against the
/// target count, shard ids bounds-checked); fills `planned`. Throws
/// JsonError on malformed documents, with the offending field's byte
/// offset in the request line.
ShardRequest shard_request_from_json(const Json& doc);

// ---------------------------------------------------------------------------
// Deterministic chaos (fault injection for the worker side).
//
// OLFUI_CHAOS="<seed>:<mode>[@N][:all]" makes a worker process fail on
// the N-th shard it starts grading, reproducibly:
//   crash  — raise(SIGKILL) before grading the shard (the mid-campaign
//            worker-death scenario);
//   stall  — announce the shard, then sleep far past any deadline (the
//            wedged-worker scenario; the coordinator's SIGKILL ends it);
//   trunc  — emit a truncated shard reply line and exit 0 (the
//            corrupted-stream scenario).
// N defaults to a value drawn from the seeded RNG, so "7:crash" is as
// reproducible as "7:crash@3". By default chaos arms only in a worker's
// first incarnation (OLFUI_WORKER_INCARNATION, set by the coordinator on
// respawn) so a respawned worker recovers and the campaign completes;
// ":all" arms every incarnation, which is how tests drive the fleet all
// the way down the degradation ladder. Chaos never changes what a
// *surviving* grade computes — recovery must produce detection sets and
// deterministic JSON byte-identical to an undisturbed run.

struct ChaosSpec {
  enum class Mode { kNone, kCrash, kStall, kTrunc };
  Mode mode = Mode::kNone;
  std::uint64_t seed = 0;
  /// 1-based index of the fatal shard among those this process starts.
  int shard = 0;
  bool all_incarnations = false;
  double stall_seconds = 3600.0;
};

/// Parses "<seed>:<mode>[@N][:all]"; throws std::invalid_argument on any
/// other shape. Empty text returns an inert spec (Mode::kNone).
ChaosSpec chaos_spec_from_string(std::string_view text);

// ---------------------------------------------------------------------------
// Worker side.

/// The worker half's workload: rebuilds per-test grading state from a
/// request (a subprocess worker owns its own netlist/universe copies and
/// must reconstruct state the coordinator's CampaignTest::spec describes).
class WorkerWorkload {
 public:
  virtual ~WorkerWorkload() = default;
  /// Universe size of the rebuilt workload (reported on "done" lines so
  /// the coordinator can reject a mismatched worker).
  virtual std::size_t universe_size() = 0;
  /// Grades one batch of the request's test; bit i = faults[i] detected.
  /// Batches arrive gathered in plan order. Implementations should cache
  /// per-test state across requests — workers are persistent.
  virtual LaneMask run_batch(const ShardRequest& request,
                             std::span<const FaultId> faults) = 0;
  /// Fingerprint of the rebuilt per-test state (e.g.
  /// ReferenceTrace::fingerprint()); cross-checked against the spec's
  /// state_fp when present. 0 opts out.
  virtual std::uint64_t state_fingerprint(const ShardRequest& request) = 0;
};

/// Serves the worker half of the protocol on (in, out) until EOF: hello,
/// then one reply stream per request (grant-driven when the request is
/// dynamic). Returns 0 on clean shutdown, 1 after answering a failure
/// with an "error" document. `chaos` injects deterministic failures (see
/// ChaosSpec); null reads OLFUI_CHAOS from the environment, so chaos
/// reaches subprocess workers without any argv plumbing. olfui_cli
/// --worker is a thin wrapper around this; tests drive it over memory
/// streams.
int serve_worker(std::FILE* in, std::FILE* out, WorkerWorkload& workload,
                 const ChaosSpec* chaos = nullptr);

}  // namespace olfui
