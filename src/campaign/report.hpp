// olfui/campaign: campaign-result JSON exchange.
//
// A campaign's outcome outlives the process that ran it: CI tracks
// coverage trends, ablation sweeps diff results between configurations,
// and an incremental re-grade wants the previous run's detection state as
// its starting point. Both directions are provided — export and a strict
// import that round-trips every deterministic field (the detection BitVec
// travels as packed hex words, not a fault-id list, so a full-universe
// result stays compact).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "campaign/campaign.hpp"
#include "campaign/json.hpp"
#include "campaign/scheduler.hpp"
#include "fsim/fsim.hpp"

namespace olfui {

/// Full document. With include_stats = false the nondeterministic "stats"
/// object is omitted, leaving exactly the deterministic payload
/// (operator=='s view) — the form two runs of one campaign can be
/// byte-compared on, which is how the distributed smoke asserts
/// subprocess == in-process.
Json campaign_result_to_json(const CampaignResult& result,
                             bool include_stats = true);
std::string campaign_result_to_json_string(const CampaignResult& result,
                                           int indent = 2,
                                           bool include_stats = true);

/// Inverse of campaign_result_to_json. Throws JsonError on malformed or
/// incomplete documents.
CampaignResult campaign_result_from_json(const Json& doc);
CampaignResult campaign_result_from_json_string(std::string_view text);

/// Packed little-endian hex rendering of a BitVec ("size:words...").
std::string bitvec_to_hex(const BitVec& bits);
BitVec bitvec_from_hex(std::string_view text);

/// Fixed-width (16 char) lowercase hex of one 64-bit word, and its strict
/// inverse (throws JsonError on any other shape) — the wire form of
/// fingerprints (and of legacy single-word masks) throughout the campaign
/// JSON.
std::string word_to_hex(std::uint64_t w);
std::uint64_t word_from_hex(std::string_view text);

/// Wire form of a shard detection mask: a fixed-order array of
/// LaneMask::kWords 16-hex-digit words, least significant first —
/// width-agnostic, so a 63-fault and a 255-fault shard serialize the same
/// shape. The strict inverse accepts a lone hex string as the legacy
/// single-word form (pre-width senders) and throws JsonError anchored at
/// the malformed word's byte offset otherwise: wrong array length, wrong
/// digit count, non-hex digits.
Json lane_mask_to_json(const LaneMask& mask);
LaneMask lane_mask_from_json(const Json& doc);

/// Reference-trace checkpoint exchange: each 64-net column's RLE runs
/// travel as (start cycle, hex word) pairs, so a million-cycle checkpoint
/// serializes in proportion to its net activity, not cycles * nets.
/// Import validates the runs; throws JsonError / std::runtime_error on
/// malformed documents.
Json reference_trace_to_json(const ReferenceTrace& trace);
ReferenceTrace reference_trace_from_json(const Json& doc);

/// Batch-plan exchange: policy, the full target permutation ("order"),
/// batch sizes, and — when per-target cone signatures are supplied —
/// per-batch cone-overlap stats (popcount of the batch's signature union:
/// the estimated share of the filter's cone buckets one simulator pass
/// activates). Doubles as the CLI's --dump-schedule document and as the
/// subprocess worker protocol's plan payload.
Json batch_plan_to_json(const BatchPlan& plan, std::string_view policy,
                        std::span<const ConeSig> cone_sigs = {});

/// Per-width Bloom-saturation view of a plan: for each supported filter
/// width (64/128/256) the per-batch union popcounts are recomputed from a
/// fresh ConeAnalysis at that width and summarized as mean/max union bits
/// plus the count of saturated batches (union popcount == width, i.e. the
/// filter stopped discriminating). Feeds --dump-schedule's "saturation"
/// key; the fault→net mapping comes from `universe` (targets with no
/// effect net contribute an empty signature).
Json cone_saturation_to_json(const BatchPlan& plan,
                             std::span<const FaultId> targets,
                             const FaultUniverse& universe,
                             const PackedTopology& topo);

/// Inverse of batch_plan_to_json: rebuilds the plan from "order" +
/// "batch_sizes" and validates it (full permutation, batches tiling the
/// targets in [1, max_batch] — lanes - 1 for the width the plan rides
/// with; the default is the scalar 64-lane bound). Throws JsonError on
/// malformed or inconsistent documents — a worker must refuse a plan that
/// would drop faults or overflow its lanes.
BatchPlan batch_plan_from_json(const Json& doc, std::size_t max_batch = 63);

/// Simulator-option exchange (the fsim half of a CampaignTest::spec):
/// subprocess workers rebuild their grading kernels from the netlist plus
/// these options, so the coordinator's kernel choice travels with the
/// test instead of being a per-host accident. Import rejects unknown
/// shapes (JsonError) and nonpositive cycle budgets.
Json seq_fsim_options_to_json(const SeqFsimOptions& opts);
SeqFsimOptions seq_fsim_options_from_json(const Json& doc);

/// Classification summary of a fault list — the JSON schema shared with
/// fault/report.hpp's to_json_summary shim (one schema for both report
/// stacks): universe/detected/untestable counts, by_source and by_kind
/// objects, both coverage figures, plus the same rows expressed as
/// campaign ClassCoverage entries under "classes".
Json fault_summary_to_json(const FaultList& fl);

}  // namespace olfui
