// olfui/campaign: campaign-result JSON exchange.
//
// A campaign's outcome outlives the process that ran it: CI tracks
// coverage trends, ablation sweeps diff results between configurations,
// and an incremental re-grade wants the previous run's detection state as
// its starting point. Both directions are provided — export and a strict
// import that round-trips every deterministic field (the detection BitVec
// travels as packed hex words, not a fault-id list, so a full-universe
// result stays compact).
#pragma once

#include <string>
#include <string_view>

#include "campaign/campaign.hpp"
#include "campaign/json.hpp"
#include "fsim/fsim.hpp"

namespace olfui {

/// Full document, runtime stats included.
Json campaign_result_to_json(const CampaignResult& result);
std::string campaign_result_to_json_string(const CampaignResult& result,
                                           int indent = 2);

/// Inverse of campaign_result_to_json. Throws JsonError on malformed or
/// incomplete documents.
CampaignResult campaign_result_from_json(const Json& doc);
CampaignResult campaign_result_from_json_string(std::string_view text);

/// Packed little-endian hex rendering of a BitVec ("size:words...").
std::string bitvec_to_hex(const BitVec& bits);
BitVec bitvec_from_hex(std::string_view text);

/// Good-trace checkpoint exchange: the RLE runs travel as (start, hex
/// word) pairs, so a million-cycle checkpoint serializes in proportion to
/// its bus activity, not its cycle count. Import validates the runs and
/// rebuilds the cycle index; throws JsonError / std::runtime_error on
/// malformed documents.
Json good_trace_to_json(const GoodTrace& trace);
GoodTrace good_trace_from_json(const Json& doc);

}  // namespace olfui
