#include "campaign/report.hpp"

#include <cstdio>
#include <limits>

namespace olfui {

namespace {

/// Fixed-width (16 char) lowercase hex of one 64-bit word.
void append_hex_word(std::string& out, std::uint64_t w) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(w));
  out += buf;
}

/// One hex digit; throws JsonError (at `offset`) on anything else.
unsigned hex_nibble(char c, std::size_t offset) {
  if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
  throw JsonError("bad hex digit", offset);
}

}  // namespace

std::string bitvec_to_hex(const BitVec& bits) {
  std::string out = std::to_string(bits.size());
  out += ':';
  for (std::size_t w = 0; w < bits.word_count(); ++w)
    append_hex_word(out, bits.word(w));
  return out;
}

BitVec bitvec_from_hex(std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos)
    throw JsonError("bitvec: missing ':' separator", 0);
  std::size_t nbits = 0;
  if (colon == 0) throw JsonError("bitvec: bad size", 0);
  for (char c : text.substr(0, colon)) {
    if (c < '0' || c > '9') throw JsonError("bitvec: bad size", 0);
    if (nbits > (std::numeric_limits<std::size_t>::max() - 9) / 10)
      throw JsonError("bitvec: size overflows", 0);
    nbits = nbits * 10 + static_cast<std::size_t>(c - '0');
  }
  // Validate the length before allocating: a corrupt size field must
  // throw, not attempt a giant allocation.
  const std::string_view hex = text.substr(colon + 1);
  const std::size_t words = nbits / 64 + (nbits % 64 != 0);
  if (hex.size() % 16 != 0 || hex.size() / 16 != words)
    throw JsonError("bitvec: word count does not match size", colon);
  BitVec bits(nbits);
  for (std::size_t i = 0; i < hex.size(); ++i) {
    const unsigned nibble = hex_nibble(hex[i], colon + 1 + i);
    // Word w occupies hex chars [16w, 16w+16), most significant first.
    const std::size_t word = i / 16;
    const std::size_t shift = (15 - i % 16) * 4;
    for (unsigned b = 0; b < 4; ++b) {
      if (!(nibble & (1u << b))) continue;
      const std::size_t bit = word * 64 + shift + b;
      if (bit >= nbits) throw JsonError("bitvec: set bit past size", i);
      bits.set(bit, true);
    }
  }
  return bits;
}

Json campaign_result_to_json(const CampaignResult& result) {
  Json doc = Json::object();
  doc.set("universe", result.universe);
  doc.set("fault_model", std::string(to_string(result.fault_model)));
  doc.set("total_new_detections", result.total_new_detections);
  doc.set("raw_coverage", result.raw_coverage);
  doc.set("pruned_coverage", result.pruned_coverage);
  doc.set("detected_bits", bitvec_to_hex(result.detected));

  Json tests = Json::array();
  for (const CampaignResult::PerTest& pt : result.tests) {
    Json t = Json::object();
    t.set("name", pt.name);
    t.set("good_cycles", pt.good_cycles);
    t.set("faults_targeted", pt.faults_targeted);
    t.set("batches", pt.batches);
    t.set("new_detections", pt.new_detections);
    tests.push_back(std::move(t));
  }
  doc.set("tests", std::move(tests));

  Json classes = Json::array();
  for (const CampaignResult::ClassCoverage& cc : result.classes) {
    Json c = Json::object();
    c.set("name", cc.name);
    c.set("total", cc.total);
    c.set("detected", cc.detected);
    classes.push_back(std::move(c));
  }
  doc.set("classes", std::move(classes));

  Json stats = Json::object();
  stats.set("wall_seconds", result.stats.wall_seconds);
  stats.set("threads", result.stats.threads);
  stats.set("faults_simulated", result.stats.faults_simulated);
  stats.set("batches", result.stats.batches);
  stats.set("faults_per_second", result.stats.faults_per_second);
  Json shard_seconds = Json::array();
  for (double s : result.stats.shard_seconds) shard_seconds.push_back(s);
  stats.set("shard_seconds", std::move(shard_seconds));
  doc.set("stats", std::move(stats));
  return doc;
}

std::string campaign_result_to_json_string(const CampaignResult& result,
                                           int indent) {
  return campaign_result_to_json(result).dump(indent);
}

CampaignResult campaign_result_from_json(const Json& doc) {
  CampaignResult result;
  result.universe = doc.at("universe").as_size();
  if (doc.contains("fault_model")) {  // absent in pre-TDF dumps: stuck-at
    const std::string model = doc.at("fault_model").as_string();
    if (model == to_string(FaultModel::kTransition))
      result.fault_model = FaultModel::kTransition;
    else if (model != to_string(FaultModel::kStuckAt))
      throw JsonError("campaign: unknown fault_model '" + model + "'", 0);
  }
  result.total_new_detections = doc.at("total_new_detections").as_size();
  result.raw_coverage = doc.at("raw_coverage").as_number();
  result.pruned_coverage = doc.at("pruned_coverage").as_number();
  result.detected = bitvec_from_hex(doc.at("detected_bits").as_string());

  const Json& tests = doc.at("tests");
  for (std::size_t i = 0; i < tests.size(); ++i) {
    const Json& t = tests.at(i);
    CampaignResult::PerTest pt;
    pt.name = t.at("name").as_string();
    pt.good_cycles = t.at("good_cycles").as_int();
    pt.faults_targeted = t.at("faults_targeted").as_size();
    pt.batches = t.at("batches").as_size();
    pt.new_detections = t.at("new_detections").as_size();
    result.tests.push_back(std::move(pt));
  }

  const Json& classes = doc.at("classes");
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const Json& c = classes.at(i);
    CampaignResult::ClassCoverage cc;
    cc.name = c.at("name").as_string();
    cc.total = c.at("total").as_size();
    cc.detected = c.at("detected").as_size();
    result.classes.push_back(std::move(cc));
  }

  const Json& stats = doc.at("stats");
  result.stats.wall_seconds = stats.at("wall_seconds").as_number();
  result.stats.threads = stats.at("threads").as_int();
  result.stats.faults_simulated = stats.at("faults_simulated").as_size();
  result.stats.batches = stats.at("batches").as_size();
  result.stats.faults_per_second = stats.at("faults_per_second").as_number();
  if (stats.contains("shard_seconds")) {  // absent in pre-shard-stat dumps
    const Json& shard_seconds = stats.at("shard_seconds");
    for (std::size_t i = 0; i < shard_seconds.size(); ++i)
      result.stats.shard_seconds.push_back(shard_seconds.at(i).as_number());
  }
  return result;
}

CampaignResult campaign_result_from_json_string(std::string_view text) {
  return campaign_result_from_json(Json::parse(text));
}

namespace {

std::string word_to_hex(std::uint64_t w) {
  std::string out;
  append_hex_word(out, w);
  return out;
}

std::uint64_t word_from_hex(const std::string& s) {
  if (s.size() != 16) throw JsonError("good_trace: bad word length", 0);
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < s.size(); ++i) w = (w << 4) | hex_nibble(s[i], i);
  return w;
}

}  // namespace

Json good_trace_to_json(const GoodTrace& trace) {
  Json doc = Json::object();
  doc.set("cycles", trace.cycles);
  doc.set("words_per_cycle", trace.words_per_cycle);
  Json starts = Json::array();
  for (std::uint64_t s : trace.run_start)
    starts.push_back(static_cast<std::size_t>(s));
  doc.set("run_start", std::move(starts));
  // 64-bit words exceed the exact-double range, so they travel as hex.
  Json values = Json::array();
  for (std::uint64_t v : trace.run_value) values.push_back(word_to_hex(v));
  doc.set("run_value", std::move(values));
  return doc;
}

GoodTrace good_trace_from_json(const Json& doc) {
  GoodTrace trace;
  trace.cycles = doc.at("cycles").as_int();
  if (trace.cycles < 0) throw JsonError("good_trace: negative cycles", 0);
  trace.words_per_cycle = doc.at("words_per_cycle").as_size();
  const Json& starts = doc.at("run_start");
  const Json& values = doc.at("run_value");
  if (starts.size() != values.size())
    throw JsonError("good_trace: run arrays disagree", 0);
  for (std::size_t i = 0; i < starts.size(); ++i) {
    trace.run_start.push_back(starts.at(i).as_size());
    trace.run_value.push_back(word_from_hex(values.at(i).as_string()));
  }
  trace.rebuild_index();  // validates run coverage
  return trace;
}

}  // namespace olfui
