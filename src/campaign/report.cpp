#include "campaign/report.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>
#include <map>
#include <stdexcept>

namespace olfui {

namespace {

/// Fixed-width (16 char) lowercase hex of one 64-bit word.
void append_hex_word(std::string& out, std::uint64_t w) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(w));
  out += buf;
}

/// One hex digit; throws JsonError (at `offset`) on anything else.
unsigned hex_nibble(char c, std::size_t offset) {
  if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
  throw JsonError("bad hex digit", offset);
}

}  // namespace

std::string bitvec_to_hex(const BitVec& bits) {
  std::string out = std::to_string(bits.size());
  out += ':';
  for (std::size_t w = 0; w < bits.word_count(); ++w)
    append_hex_word(out, bits.word(w));
  return out;
}

BitVec bitvec_from_hex(std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos)
    throw JsonError("bitvec: missing ':' separator", 0);
  std::size_t nbits = 0;
  if (colon == 0) throw JsonError("bitvec: bad size", 0);
  for (char c : text.substr(0, colon)) {
    if (c < '0' || c > '9') throw JsonError("bitvec: bad size", 0);
    if (nbits > (std::numeric_limits<std::size_t>::max() - 9) / 10)
      throw JsonError("bitvec: size overflows", 0);
    nbits = nbits * 10 + static_cast<std::size_t>(c - '0');
  }
  // Validate the length before allocating: a corrupt size field must
  // throw, not attempt a giant allocation.
  const std::string_view hex = text.substr(colon + 1);
  const std::size_t words = nbits / 64 + (nbits % 64 != 0);
  if (hex.size() % 16 != 0 || hex.size() / 16 != words)
    throw JsonError("bitvec: word count does not match size", colon);
  BitVec bits(nbits);
  for (std::size_t i = 0; i < hex.size(); ++i) {
    const unsigned nibble = hex_nibble(hex[i], colon + 1 + i);
    // Word w occupies hex chars [16w, 16w+16), most significant first.
    const std::size_t word = i / 16;
    const std::size_t shift = (15 - i % 16) * 4;
    for (unsigned b = 0; b < 4; ++b) {
      if (!(nibble & (1u << b))) continue;
      const std::size_t bit = word * 64 + shift + b;
      if (bit >= nbits) throw JsonError("bitvec: set bit past size", i);
      bits.set(bit, true);
    }
  }
  return bits;
}

std::string word_to_hex(std::uint64_t w) {
  std::string out;
  append_hex_word(out, w);
  return out;
}

std::uint64_t word_from_hex(std::string_view text) {
  if (text.size() != 16) throw JsonError("hex word: bad length", 0);
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < text.size(); ++i)
    w = (w << 4) | hex_nibble(text[i], i);
  return w;
}

Json lane_mask_to_json(const LaneMask& mask) {
  Json arr = Json::array();
  for (int k = 0; k < LaneMask::kWords; ++k)
    arr.push_back(word_to_hex(mask.word(k)));
  return arr;
}

LaneMask lane_mask_from_json(const Json& doc) {
  LaneMask mask;
  if (doc.kind() == Json::Kind::kString) {
    // Legacy single-word form: the low word only (a 63-fault shard).
    const std::string& text = doc.as_string();
    if (text.size() != 16)
      throw JsonError("lane mask: bad word length", doc.source_offset());
    std::uint64_t w = 0;
    for (std::size_t i = 0; i < text.size(); ++i)
      w = (w << 4) | hex_nibble(text[i], doc.source_offset() + i);
    mask.set_word(0, w);
    return mask;
  }
  if (doc.size() != static_cast<std::size_t>(LaneMask::kWords))
    throw JsonError("lane mask: expected " +
                        std::to_string(LaneMask::kWords) + " hex words",
                    doc.source_offset());
  for (int k = 0; k < LaneMask::kWords; ++k) {
    const Json& wdoc = doc.at(static_cast<std::size_t>(k));
    const std::string& text = wdoc.as_string();
    if (text.size() != 16)
      throw JsonError("lane mask: bad word length", wdoc.source_offset());
    std::uint64_t w = 0;
    for (std::size_t i = 0; i < text.size(); ++i)
      w = (w << 4) | hex_nibble(text[i], wdoc.source_offset() + i);
    mask.set_word(k, w);
  }
  return mask;
}

Json campaign_result_to_json(const CampaignResult& result,
                             bool include_stats) {
  Json doc = Json::object();
  doc.set("universe", result.universe);
  doc.set("fault_model", std::string(to_string(result.fault_model)));
  doc.set("total_new_detections", result.total_new_detections);
  doc.set("raw_coverage", result.raw_coverage);
  doc.set("pruned_coverage", result.pruned_coverage);
  doc.set("detected_bits", bitvec_to_hex(result.detected));

  Json tests = Json::array();
  for (const CampaignResult::PerTest& pt : result.tests) {
    Json t = Json::object();
    t.set("name", pt.name);
    t.set("good_cycles", pt.good_cycles);
    t.set("faults_targeted", pt.faults_targeted);
    t.set("batches", pt.batches);
    t.set("new_detections", pt.new_detections);
    tests.push_back(std::move(t));
  }
  doc.set("tests", std::move(tests));

  Json classes = Json::array();
  for (const CampaignResult::ClassCoverage& cc : result.classes) {
    Json c = Json::object();
    c.set("name", cc.name);
    c.set("total", cc.total);
    c.set("detected", cc.detected);
    classes.push_back(std::move(c));
  }
  doc.set("classes", std::move(classes));

  if (include_stats) {
    Json stats = Json::object();
    stats.set("wall_seconds", result.stats.wall_seconds);
    stats.set("threads", result.stats.threads);
    stats.set("faults_simulated", result.stats.faults_simulated);
    stats.set("batches", result.stats.batches);
    stats.set("faults_per_second", result.stats.faults_per_second);
    stats.set("schedule_policy", result.stats.schedule_policy);
    stats.set("executor", result.stats.executor);
    stats.set("respawns", result.stats.respawns);
    stats.set("shard_reissues", result.stats.shard_reissues);
    stats.set("timeouts", result.stats.timeouts);
    stats.set("degraded_shards", result.stats.degraded_shards);
    Json shard_seconds = Json::array();
    for (double s : result.stats.shard_seconds) shard_seconds.push_back(s);
    stats.set("shard_seconds", std::move(shard_seconds));
    // Cache provenance: how this result was produced ("off" / "bypass" /
    // "miss" / "hit" / "partial"), the canonical options hash it was keyed
    // under, and — for partial (incremental) runs — the splice/regrade
    // accounting.
    Json cache = Json::object();
    cache.set("state", result.stats.cache);
    cache.set("options_hash", word_to_hex(result.stats.options_hash));
    cache.set("spliced", result.stats.cache_spliced);
    cache.set("regraded_faults", result.stats.regraded_faults);
    cache.set("regrade_fraction", result.stats.regrade_fraction);
    stats.set("cache", std::move(cache));
    doc.set("stats", std::move(stats));
  }
  return doc;
}

std::string campaign_result_to_json_string(const CampaignResult& result,
                                           int indent, bool include_stats) {
  return campaign_result_to_json(result, include_stats).dump(indent);
}

CampaignResult campaign_result_from_json(const Json& doc) {
  CampaignResult result;
  result.universe = doc.at("universe").as_size();
  if (doc.contains("fault_model")) {  // absent in pre-TDF dumps: stuck-at
    const std::string model = doc.at("fault_model").as_string();
    if (model == to_string(FaultModel::kTransition))
      result.fault_model = FaultModel::kTransition;
    else if (model != to_string(FaultModel::kStuckAt))
      throw JsonError("campaign: unknown fault_model '" + model + "'", 0);
  }
  result.total_new_detections = doc.at("total_new_detections").as_size();
  result.raw_coverage = doc.at("raw_coverage").as_number();
  result.pruned_coverage = doc.at("pruned_coverage").as_number();
  result.detected = bitvec_from_hex(doc.at("detected_bits").as_string());

  const Json& tests = doc.at("tests");
  for (std::size_t i = 0; i < tests.size(); ++i) {
    const Json& t = tests.at(i);
    CampaignResult::PerTest pt;
    pt.name = t.at("name").as_string();
    pt.good_cycles = t.at("good_cycles").as_int();
    pt.faults_targeted = t.at("faults_targeted").as_size();
    pt.batches = t.at("batches").as_size();
    pt.new_detections = t.at("new_detections").as_size();
    result.tests.push_back(std::move(pt));
  }

  const Json& classes = doc.at("classes");
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const Json& c = classes.at(i);
    CampaignResult::ClassCoverage cc;
    cc.name = c.at("name").as_string();
    cc.total = c.at("total").as_size();
    cc.detected = c.at("detected").as_size();
    result.classes.push_back(std::move(cc));
  }

  if (doc.contains("stats")) {  // omitted by deterministic-payload dumps
    const Json& stats = doc.at("stats");
    result.stats.wall_seconds = stats.at("wall_seconds").as_number();
    result.stats.threads = stats.at("threads").as_int();
    result.stats.faults_simulated = stats.at("faults_simulated").as_size();
    result.stats.batches = stats.at("batches").as_size();
    result.stats.faults_per_second = stats.at("faults_per_second").as_number();
    if (stats.contains("schedule_policy"))  // absent in pre-scheduler dumps
      result.stats.schedule_policy = stats.at("schedule_policy").as_string();
    if (stats.contains("executor"))  // absent in pre-executor dumps
      result.stats.executor = stats.at("executor").as_string();
    // Recovery counters: absent in pre-supervision dumps.
    if (stats.contains("respawns"))
      result.stats.respawns = stats.at("respawns").as_size();
    if (stats.contains("shard_reissues"))
      result.stats.shard_reissues = stats.at("shard_reissues").as_size();
    if (stats.contains("timeouts"))
      result.stats.timeouts = stats.at("timeouts").as_size();
    if (stats.contains("degraded_shards"))
      result.stats.degraded_shards = stats.at("degraded_shards").as_size();
    if (stats.contains("shard_seconds")) {  // absent in pre-shard-stat dumps
      const Json& shard_seconds = stats.at("shard_seconds");
      for (std::size_t i = 0; i < shard_seconds.size(); ++i)
        result.stats.shard_seconds.push_back(shard_seconds.at(i).as_number());
    }
    if (stats.contains("cache")) {  // absent in pre-cache dumps
      const Json& cache = stats.at("cache");
      result.stats.cache = cache.at("state").as_string();
      result.stats.options_hash =
          word_from_hex(cache.at("options_hash").as_string());
      result.stats.cache_spliced = cache.at("spliced").as_size();
      result.stats.regraded_faults = cache.at("regraded_faults").as_size();
      result.stats.regrade_fraction = cache.at("regrade_fraction").as_number();
    }
  }
  return result;
}

CampaignResult campaign_result_from_json_string(std::string_view text) {
  return campaign_result_from_json(Json::parse(text));
}

Json reference_trace_to_json(const ReferenceTrace& trace) {
  Json doc = Json::object();
  doc.set("cycles", trace.cycles);
  doc.set("num_nets", trace.num_nets);
  Json columns = Json::array();
  for (const ReferenceTrace::Column& col : trace.columns) {
    Json c = Json::object();
    Json cycles = Json::array();
    for (std::uint32_t s : col.cycle)
      cycles.push_back(static_cast<std::size_t>(s));
    c.set("cycle", std::move(cycles));
    // 64-bit words exceed the exact-double range, so they travel as hex.
    Json values = Json::array();
    for (std::uint64_t v : col.value) values.push_back(word_to_hex(v));
    c.set("value", std::move(values));
    columns.push_back(std::move(c));
  }
  doc.set("columns", std::move(columns));
  return doc;
}

ReferenceTrace reference_trace_from_json(const Json& doc) {
  ReferenceTrace trace;
  trace.cycles = doc.at("cycles").as_int();
  trace.num_nets = doc.at("num_nets").as_size();
  const Json& columns = doc.at("columns");
  for (std::size_t o = 0; o < columns.size(); ++o) {
    const Json& c = columns.at(o);
    const Json& cycles = c.at("cycle");
    const Json& values = c.at("value");
    if (cycles.size() != values.size())
      throw JsonError("reference_trace: run arrays disagree", 0);
    ReferenceTrace::Column col;
    for (std::size_t i = 0; i < cycles.size(); ++i) {
      const std::size_t start = cycles.at(i).as_size();
      if (start > 0xFFFFFFFFull)
        throw JsonError("reference_trace: run start overflows", 0);
      col.cycle.push_back(static_cast<std::uint32_t>(start));
      col.value.push_back(word_from_hex(values.at(i).as_string()));
    }
    trace.columns.push_back(std::move(col));
  }
  trace.validate();  // column count, run ordering and range
  return trace;
}

namespace {

/// Per-batch signature-union popcounts under `plan` — the shared core of
/// the cone-overlap dump and the per-width saturation view.
std::vector<std::size_t> batch_union_bits(const BatchPlan& plan,
                                          std::span<const ConeSig> sigs) {
  std::vector<std::size_t> unions;
  unions.reserve(plan.batches());
  for (std::size_t b = 0; b < plan.batches(); ++b) {
    ConeSig u;
    for (std::size_t i = plan.batch_start[b]; i < plan.batch_start[b + 1]; ++i)
      u |= sigs[plan.order[i]];
    unions.push_back(static_cast<std::size_t>(u.popcount()));
  }
  return unions;
}

}  // namespace

Json batch_plan_to_json(const BatchPlan& plan, std::string_view policy,
                        std::span<const ConeSig> cone_sigs) {
  Json doc = Json::object();
  doc.set("policy", std::string(policy));
  doc.set("targets", plan.order.size());
  doc.set("batches", plan.batches());
  Json order = Json::array();
  for (std::uint32_t idx : plan.order)
    order.push_back(static_cast<std::size_t>(idx));
  doc.set("order", std::move(order));
  Json sizes = Json::array();
  for (std::size_t b = 0; b < plan.batches(); ++b)
    sizes.push_back(plan.batch_size(b));
  doc.set("batch_sizes", std::move(sizes));
  if (!cone_sigs.empty()) {
    // Cone-overlap view: the union popcount is (a Bloom estimate of) how
    // many of the filter's cone buckets one simulator pass activates —
    // lower is a tighter batch.
    const std::vector<std::size_t> unions = batch_union_bits(plan, cone_sigs);
    Json per_batch = Json::array();
    double total_bits = 0;
    std::size_t max_bits = 0;
    for (std::size_t bits : unions) {
      per_batch.push_back(bits);
      total_bits += static_cast<double>(bits);
      max_bits = std::max(max_bits, bits);
    }
    Json cone = Json::object();
    cone.set("mean_union_bits",
             plan.batches() ? total_bits / static_cast<double>(plan.batches())
                            : 0.0);
    cone.set("max_union_bits", max_bits);
    cone.set("per_batch_union_bits", std::move(per_batch));
    doc.set("cone", std::move(cone));
  }
  return doc;
}

Json cone_saturation_to_json(const BatchPlan& plan,
                             std::span<const FaultId> targets,
                             const FaultUniverse& universe,
                             const PackedTopology& topo) {
  Json doc = Json::object();
  for (const int width : {64, 128, 256}) {
    const ConeAnalysis cones = ConeAnalysis::build(topo, width);
    std::vector<ConeSig> sigs(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const NetId net = universe.effect_net(targets[i]);
      if (net != kInvalidId) sigs[i] = cones.net_sig[net];
    }
    const std::vector<std::size_t> unions = batch_union_bits(plan, sigs);
    double total_bits = 0;
    std::size_t max_bits = 0, saturated = 0;
    for (std::size_t bits : unions) {
      total_bits += static_cast<double>(bits);
      max_bits = std::max(max_bits, bits);
      saturated += bits == static_cast<std::size_t>(width);
    }
    Json row = Json::object();
    row.set("mean_union_bits",
            unions.empty() ? 0.0
                           : total_bits / static_cast<double>(unions.size()));
    row.set("max_union_bits", max_bits);
    row.set("saturated_batches", saturated);
    doc.set(std::to_string(width), std::move(row));
  }
  return doc;
}

BatchPlan batch_plan_from_json(const Json& doc, std::size_t max_batch) {
  BatchPlan plan;
  const Json& order = doc.at("order");
  const std::size_t targets = doc.at("targets").as_size();
  if (order.size() != targets)
    throw JsonError("batch_plan: order length disagrees with targets", 0);
  plan.order.reserve(targets);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t idx = order.at(i).as_size();
    if (idx > 0xFFFFFFFFull)
      throw JsonError("batch_plan: order index overflows", 0);
    plan.order.push_back(static_cast<std::uint32_t>(idx));
  }
  const Json& sizes = doc.at("batch_sizes");
  if (doc.at("batches").as_size() != sizes.size())
    throw JsonError("batch_plan: batches disagrees with batch_sizes", 0);
  plan.batch_start.push_back(0);
  std::size_t pos = 0;
  for (std::size_t b = 0; b < sizes.size(); ++b) {
    pos += sizes.at(b).as_size();
    if (pos > targets) throw JsonError("batch_plan: batches overrun targets", 0);
    plan.batch_start.push_back(static_cast<std::uint32_t>(pos));
  }
  try {
    // Structural validation (full permutation, batches of [1, max_batch]
    // tiling the targets) — a malformed plan must never reach a grading
    // loop, and a plan sized for more lanes than the reader has must be
    // refused, not truncated.
    plan.validate(targets, max_batch);
  } catch (const std::invalid_argument& e) {
    throw JsonError(std::string("batch_plan: ") + e.what(), 0);
  }
  return plan;
}

Json seq_fsim_options_to_json(const SeqFsimOptions& opts) {
  Json doc = Json::object();
  doc.set("max_cycles", opts.max_cycles);
  doc.set("early_exit", opts.early_exit);
  doc.set("event_driven", opts.event_driven);
  // The default width is left implicit so pre-width readers keep
  // accepting specs from width-64 campaigns unchanged.
  if (opts.lanes != 64) doc.set("lanes", opts.lanes);
  // Same back-compat rule: the default (incremental) is left implicit so
  // pre-clocking readers keep accepting default-mode specs.
  if (!opts.incremental_clocking) doc.set("clocking", "full");
  return doc;
}

SeqFsimOptions seq_fsim_options_from_json(const Json& doc) {
  SeqFsimOptions opts;
  opts.max_cycles = doc.at("max_cycles").as_int();
  if (opts.max_cycles <= 0)
    throw JsonError("fsim options: max_cycles must be positive", 0);
  opts.early_exit = doc.at("early_exit").as_bool();
  opts.event_driven = doc.at("event_driven").as_bool();
  if (doc.contains("lanes")) {  // absent in pre-width specs: 64
    opts.lanes = doc.at("lanes").as_int();
    if (opts.lanes != 64 && opts.lanes != 128 && opts.lanes != 256)
      throw JsonError("fsim options: lanes must be 64, 128 or 256",
                      doc.at("lanes").source_offset());
  }
  if (doc.contains("clocking")) {  // absent in pre-clocking specs: incremental
    const std::string& mode = doc.at("clocking").as_string();
    if (mode == "full")
      opts.incremental_clocking = false;
    else if (mode != "incremental")
      throw JsonError("fsim options: clocking must be full or incremental",
                      doc.at("clocking").source_offset());
  }
  return opts;
}

Json fault_summary_to_json(const FaultList& fl) {
  Json doc = Json::object();
  doc.set("universe", fl.size());
  doc.set("detected", fl.count_detected());
  doc.set("untestable", fl.count_untestable());

  // The Table-I rows, kept as the legacy by_source/by_kind objects AND
  // re-expressed as campaign ClassCoverage rows under "classes" (with
  // real per-class detected counts), so both report stacks speak one
  // schema.
  std::size_t tied = 0, unobs = 0, redundant = 0;
  std::size_t tied_det = 0, unobs_det = 0, redundant_det = 0;
  std::map<OnlineSource, std::size_t> source_det;
  for (FaultId f = 0; f < fl.size(); ++f) {
    const bool det = fl.detect_state(f) == DetectState::kDetected;
    if (det) ++source_det[fl.online_source(f)];
    switch (fl.untestable_kind(f)) {
      case UntestableKind::kTied: ++tied; tied_det += det; break;
      case UntestableKind::kUnobservable: ++unobs; unobs_det += det; break;
      case UntestableKind::kRedundant: ++redundant; redundant_det += det; break;
      case UntestableKind::kNone: break;
    }
  }

  std::vector<CampaignResult::ClassCoverage> classes;
  Json by_source = Json::object();
  for (OnlineSource s :
       {OnlineSource::kStructural, OnlineSource::kScan,
        OnlineSource::kDebugControl, OnlineSource::kDebugObserve,
        OnlineSource::kMemoryMap}) {
    const std::size_t n = fl.count_source(s);
    by_source.set(std::string(to_string(s)), n);
    classes.push_back({"source:" + std::string(to_string(s)), n,
                       source_det.count(s) ? source_det[s] : 0});
  }
  doc.set("by_source", std::move(by_source));

  Json by_kind = Json::object();
  by_kind.set("tied", tied);
  by_kind.set("unobservable", unobs);
  by_kind.set("redundant", redundant);
  doc.set("by_kind", std::move(by_kind));
  classes.push_back({"kind:tied", tied, tied_det});
  classes.push_back({"kind:unobservable", unobs, unobs_det});
  classes.push_back({"kind:redundant", redundant, redundant_det});

  doc.set("raw_coverage", fl.raw_coverage());
  doc.set("pruned_coverage", fl.pruned_coverage());

  Json class_rows = Json::array();
  for (const CampaignResult::ClassCoverage& cc : classes) {
    Json c = Json::object();
    c.set("name", cc.name);
    c.set("total", cc.total);
    c.set("detected", cc.detected);
    class_rows.push_back(std::move(c));
  }
  doc.set("classes", std::move(class_rows));
  return doc;
}

}  // namespace olfui
