#include "campaign/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace olfui {

namespace {

const char* kind_name(Json::Kind k) {
  switch (k) {
    case Json::Kind::kNull: return "null";
    case Json::Kind::kBool: return "bool";
    case Json::Kind::kNumber: return "number";
    case Json::Kind::kString: return "string";
    case Json::Kind::kArray: return "array";
    case Json::Kind::kObject: return "object";
  }
  return "?";
}

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double v) {
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  }
}

}  // namespace

/// Named (not anonymous-namespace) so Json can befriend it: parsed values
/// are stamped with their byte offset in the source document, which
/// semantic errors (at(), as_*()) report instead of offset 0.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) { throw JsonError(what, pos_); }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) { ++pos_; return true; }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  Json value() {
    skip_ws();
    const std::size_t at = pos_;
    Json v = value_inner();
    v.src_offset_ = at;
    return v;
  }

  Json value_inner() {
    const char c = peek();
    if (c == '{' || c == '[') {
      // Bound recursion: a corrupt/hostile document of nested brackets
      // must fail cleanly, not overflow the stack.
      if (depth_ >= kMaxDepth) fail("nesting too deep");
      ++depth_;
      Json v = c == '{' ? object() : array();
      --depth_;
      return v;
    }
    if (c == '"') return Json(string());
    if (c == 't') { if (!consume_word("true")) fail("bad literal"); return Json(true); }
    if (c == 'f') { if (!consume_word("false")) fail("bad literal"); return Json(false); }
    if (c == 'n') { if (!consume_word("null")) fail("bad literal"); return Json(); }
    return number();
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), value());
      skip_ws();
      if (consume('}')) return obj;
      expect(',');
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      arr.push_back(value());
      skip_ws();
      if (consume(']')) return arr;
      expect(',');
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') { out += c; continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (surrogate pairs are not recombined; campaign
          // documents only ever carry ASCII identifiers).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number");
    return Json(v);
  }

  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

std::size_t Json::as_size() const {
  const double v = as_number();
  if (!(v >= 0 && v <= 9007199254740992.0) || v != std::floor(v))
    throw JsonError("expected a non-negative integer", src_offset_);
  return static_cast<std::size_t>(v);
}

int Json::as_int() const {
  const double v = as_number();
  if (!(v >= -2147483648.0 && v <= 2147483647.0) || v != std::floor(v))
    throw JsonError("expected an int-range integer", src_offset_);
  return static_cast<int>(v);
}

void Json::require(Kind k) const {
  if (kind_ != k)
    throw JsonError(std::string("expected ") + kind_name(k) + ", got " +
                        kind_name(kind_),
                    src_offset_);
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  require(Kind::kArray);
  return 0;
}

const Json& Json::at(std::size_t i) const {
  require(Kind::kArray);
  if (i >= arr_.size()) throw JsonError("array index out of range", src_offset_);
  return arr_[i];
}

const std::string& Json::key(std::size_t i) const {
  require(Kind::kObject);
  if (i >= obj_.size())
    throw JsonError("object index out of range", src_offset_);
  return obj_[i].first;
}

const Json& Json::value(std::size_t i) const {
  require(Kind::kObject);
  if (i >= obj_.size())
    throw JsonError("object index out of range", src_offset_);
  return obj_[i].second;
}

const Json& Json::at(std::string_view key) const {
  require(Kind::kObject);
  for (const auto& [k, v] : obj_)
    if (k == key) return v;
  throw JsonError("missing key '" + std::string(key) + "'", src_offset_);
}

bool Json::contains(std::string_view key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [k, v] : obj_)
    if (k == key) return true;
  return false;
}

void Json::push_back(Json v) {
  require(Kind::kArray);
  arr_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
  require(Kind::kObject);
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: dump_number(out, num_); break;
    case Kind::kString: dump_string(out, str_); break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        dump_string(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return JsonParser(text).run(); }

}  // namespace olfui
