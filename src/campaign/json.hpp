// olfui/campaign: minimal JSON document model.
//
// Campaign results travel as JSON (CI trend tracking, dashboards, diffing
// two campaign runs), so the subsystem needs both directions: a writer for
// export and a parser for round-tripping results back in. This is a small
// recursive value type, not a general-purpose library: numbers are doubles
// (campaign counts fit exactly up to 2^53), object keys keep insertion
// order so dumps are deterministic, and parse errors throw JsonError with
// a byte offset.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace olfui {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::size_t v) : Json(static_cast<double>(v)) {}
  Json(const char* v) : kind_(Kind::kString), str_(v) {}
  Json(std::string v) : kind_(Kind::kString), str_(std::move(v)) {}

  static Json array() { Json j; j.kind_ = Kind::kArray; return j; }
  static Json object() { Json j; j.kind_ = Kind::kObject; return j; }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool as_bool() const { require(Kind::kBool); return bool_; }
  double as_number() const { require(Kind::kNumber); return num_; }
  /// Non-negative integer (≤ 2^53, the exact-double range); throws
  /// JsonError otherwise — casting an unchecked double would be UB.
  std::size_t as_size() const;
  /// Integer within int's range; throws JsonError otherwise.
  int as_int() const;
  const std::string& as_string() const { require(Kind::kString); return str_; }

  /// Array element count or object member count.
  std::size_t size() const;

  /// Array access (throws on kind/range mismatch).
  const Json& at(std::size_t i) const;
  /// Object access (throws if the key is absent).
  const Json& at(std::string_view key) const;
  bool contains(std::string_view key) const;
  /// Object member key by insertion index (throws on kind/range mismatch).
  const std::string& key(std::size_t i) const;
  /// Object member value by insertion index (throws on kind/range mismatch).
  const Json& value(std::size_t i) const;

  /// Appends to an array (value must already be an array).
  void push_back(Json v);
  /// Sets an object member, keeping first-insertion key order.
  void set(std::string key, Json v);

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parses a complete document (trailing garbage is an error).
  static Json parse(std::string_view text);

  /// Byte offset of this value in the document it was parsed from (0 for
  /// programmatically built values). Semantic errors raised through
  /// at()/as_*() carry it, so a protocol validator rejecting one field of
  /// a long wire line points at the offending bytes, not offset 0.
  std::size_t source_offset() const { return src_offset_; }

 private:
  friend class JsonParser;

  void require(Kind k) const;
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  std::size_t src_offset_ = 0;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace olfui
