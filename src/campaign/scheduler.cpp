#include "campaign/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <numeric>
#include <stdexcept>

#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "obs/metrics.hpp"

namespace olfui {

std::uint64_t BatchScheduler::fingerprint() const { return fnv1a64(name()); }

BatchPlan BatchPlan::fixed(std::size_t targets, std::size_t batch_size) {
  BatchPlan plan;
  plan.order.resize(targets);
  std::iota(plan.order.begin(), plan.order.end(), 0u);
  plan.batch_start.push_back(0);
  for (std::size_t lo = 0; lo < targets; lo += batch_size)
    plan.batch_start.push_back(
        static_cast<std::uint32_t>(std::min(targets, lo + batch_size)));
  return plan;
}

void BatchPlan::validate(std::size_t targets, std::size_t max_batch) const {
  if (order.size() != targets)
    throw std::invalid_argument("BatchPlan: order is not a full permutation");
  std::vector<bool> seen(targets, false);
  for (std::uint32_t idx : order) {
    if (idx >= targets || seen[idx])
      throw std::invalid_argument("BatchPlan: order repeats or escapes range");
    seen[idx] = true;
  }
  if (batch_start.empty() || batch_start.front() != 0 ||
      batch_start.back() != targets)
    throw std::invalid_argument("BatchPlan: batches do not tile the targets");
  for (std::size_t b = 0; b + 1 < batch_start.size(); ++b) {
    const std::size_t n = batch_start[b + 1] - batch_start[b];
    if (batch_start[b + 1] <= batch_start[b] || n > max_batch)
      throw std::invalid_argument("BatchPlan: batch size out of [1, max]");
  }
}

BatchPlan FixedScheduler::plan(std::span<const FaultId> targets,
                               const ScheduleContext& ctx) const {
  return BatchPlan::fixed(targets.size(), ctx.batch_size);
}

ConeScheduler::ConeScheduler(const FaultUniverse& universe,
                             std::shared_ptr<const PackedTopology> topo,
                             ConePacking packing, int sig_bits)
    : universe_(&universe), packing_(packing) {
  if (topo && topo->nl != &universe.netlist())
    throw std::invalid_argument(
        "ConeScheduler: topology is for a different netlist");
  cones_ = ConeAnalysis::build(
      topo ? *topo : *PackedTopology::build(universe.netlist()), sig_bits);
}

std::uint64_t ConeScheduler::fingerprint() const {
  std::uint64_t h = fnv1a64(name());
  h = fnv1a64_word(static_cast<std::uint64_t>(packing_), h);
  h = fnv1a64_word(static_cast<std::uint64_t>(cones_.sig_bits), h);
  return h;
}

ConeSig ConeScheduler::signature(FaultId f) const {
  const NetId net = universe_->effect_net(f);
  return net == kInvalidId ? ConeSig{} : cones_.net_sig[net];
}

std::vector<ConeSig> ConeScheduler::signatures(
    std::span<const FaultId> targets) const {
  std::vector<ConeSig> sigs(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i)
    sigs[i] = signature(targets[i]);
  return sigs;
}

BatchPlan ConeScheduler::plan(std::span<const FaultId> targets,
                              const ScheduleContext& ctx) const {
  const std::vector<ConeSig> sigs = signatures(targets);
  // Every batch fills to the cap, so the fixed boundaries (ceil(n/cap)
  // batches) are kept and only the order is rewritten.
  BatchPlan plan = BatchPlan::fixed(targets.size(), ctx.batch_size);
  if (packing_ == ConePacking::kRawSort) {
    // Stable: equal signatures keep target (= fault id) order, so the plan
    // is a pure function of the target list.
    std::stable_sort(plan.order.begin(), plan.order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return sigs[a] < sigs[b];
                     });
    return plan;
  }

  // Greedy union-popcount clustering. Targets are first grouped by exact
  // signature (groups numbered by first occurrence, members in target
  // order); batches are then built group-at-a-time: seed with the group
  // holding the most unclaimed faults, and repeatedly add the group whose
  // signature shares the most bits with the batch's running union.
  // Groups split across a batch boundary when the cap fills — the
  // remainder seeds later batches. Every choice ties off deterministically
  // (remaining count, then group number), so the plan stays a pure
  // function of the target list.
  struct Group {
    ConeSig sig;
    std::vector<std::uint32_t> members;  // target indices, in target order
    std::uint32_t taken = 0;             // members already placed
  };
  std::vector<Group> groups;
  std::map<ConeSig, std::uint32_t> group_of;
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    const auto [it, inserted] =
        group_of.try_emplace(sigs[i], static_cast<std::uint32_t>(groups.size()));
    if (inserted) groups.push_back({sigs[i], {}, 0});
    groups[it->second].members.push_back(static_cast<std::uint32_t>(i));
  }

  const auto remaining = [&](std::uint32_t g) {
    return groups[g].members.size() - groups[g].taken;
  };
  std::vector<std::uint32_t> live(groups.size());
  std::iota(live.begin(), live.end(), 0u);
  plan.order.clear();
  while (!live.empty()) {
    // Seed: most unclaimed members; tie → lowest group number.
    std::size_t pick = 0;
    for (std::size_t k = 1; k < live.size(); ++k)
      if (remaining(live[k]) > remaining(live[pick]) ||
          (remaining(live[k]) == remaining(live[pick]) &&
           live[k] < live[pick]))
        pick = k;
    ConeSig batch_union;
    std::size_t fill = 0;
    while (fill < ctx.batch_size) {
      Group& g = groups[live[pick]];
      batch_union |= g.sig;
      const std::size_t take =
          std::min(ctx.batch_size - fill, g.members.size() - g.taken);
      for (std::size_t j = 0; j < take; ++j)
        plan.order.push_back(g.members[g.taken++]);
      fill += take;
      if (g.taken == g.members.size()) {
        live[pick] = live.back();  // selection keys on group number, so
        live.pop_back();           // swap-remove order never shows through
      }
      if (live.empty() || fill == ctx.batch_size) break;
      // Next: max signature overlap with the union; tie → most unclaimed
      // members, then lowest group number.
      pick = 0;
      int best_overlap = (groups[live[0]].sig & batch_union).popcount();
      for (std::size_t k = 1; k < live.size(); ++k) {
        const int overlap = (groups[live[k]].sig & batch_union).popcount();
        if (overlap > best_overlap ||
            (overlap == best_overlap &&
             (remaining(live[k]) > remaining(live[pick]) ||
              (remaining(live[k]) == remaining(live[pick]) &&
               live[k] < live[pick])))) {
          pick = k;
          best_overlap = overlap;
        }
      }
    }
  }
  return plan;
}

AdaptiveScheduler::AdaptiveScheduler(const CampaignResult& profile,
                                     double split_factor)
    : split_factor_(split_factor) {
  std::size_t pos = 0;
  for (const CampaignResult::PerTest& pt : profile.tests) {
    TestProfile tp;
    tp.faults_targeted = pt.faults_targeted;
    if (pos + pt.batches <= profile.stats.shard_seconds.size())
      tp.shard_seconds.assign(
          profile.stats.shard_seconds.begin() + static_cast<std::ptrdiff_t>(pos),
          profile.stats.shard_seconds.begin() +
              static_cast<std::ptrdiff_t>(pos + pt.batches));
    pos += pt.batches;
    profiles_.emplace(pt.name, std::move(tp));  // first occurrence wins
  }
}

std::uint64_t AdaptiveScheduler::fingerprint() const {
  std::uint64_t h = fnv1a64(name());
  h = fnv1a64_word(std::bit_cast<std::uint64_t>(split_factor_), h);
  for (const auto& [name, tp] : profiles_) {
    h = fnv1a64(name, h);
    h = fnv1a64_word(tp.faults_targeted, h);
    for (const double s : tp.shard_seconds)
      h = fnv1a64_word(std::bit_cast<std::uint64_t>(s), h);
  }
  return h;
}

BatchPlan AdaptiveScheduler::plan(std::span<const FaultId> targets,
                                  const ScheduleContext& ctx) const {
  BatchPlan plan = BatchPlan::fixed(targets.size(), ctx.batch_size);
  const auto it = profiles_.find(ctx.test_name);
  if (it == profiles_.end() || it->second.faults_targeted != targets.size() ||
      it->second.shard_seconds.size() != plan.batches())
    return plan;

  const std::vector<double>& seconds = it->second.shard_seconds;
  std::vector<double> sorted = seconds;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];

  std::vector<std::uint32_t> starts{0};
  std::size_t splits = 0;
  for (std::size_t b = 0; b < plan.batches(); ++b) {
    const std::uint32_t lo = plan.batch_start[b];
    const std::uint32_t hi = plan.batch_start[b + 1];
    if (seconds[b] > split_factor_ * median && hi - lo >= 2) {
      starts.push_back(lo + (hi - lo) / 2);
      ++splits;
    }
    starts.push_back(hi);
  }
  if (splits && obs::metrics().enabled())
    obs::metrics().counter("scheduler.adaptive_splits").add(splits);
  plan.batch_start = std::move(starts);
  return plan;
}

}  // namespace olfui
