#include "campaign/cache.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "campaign/report.hpp"
#include "campaign/scheduler.hpp"
#include "obs/metrics.hpp"

namespace olfui {

namespace {

void bump(const char* name, std::uint64_t n = 1) {
  if (n && obs::metrics().enabled()) obs::metrics().counter(name).add(n);
}

/// Whole-file read; nullopt when the file cannot be opened or read.
std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::string text;
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool ok = !std::ferror(f);
  std::fclose(f);
  if (!ok) return std::nullopt;
  return text;
}

/// tmp-file + rename so a reader never sees a half-written entry and a
/// crashed writer leaves at most a stray .tmp, never a corrupt entry.
bool write_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fclose(f) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text, std::uint64_t h) {
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

std::uint64_t fnv1a64_word(std::uint64_t v, std::uint64_t h) {
  for (int k = 0; k < 8; ++k) {
    h ^= (v >> (8 * k)) & 0xFF;
    h *= kFnv1aPrime;
  }
  return h;
}

std::string campaign_options_canonical(const CampaignOptions& opts) {
  // Alphabetical by key, every field explicit (a changed default changes
  // the string), one stable "k=v" grammar. Extend by inserting the new
  // field at its sorted position — the test pins the exact format.
  std::string out = "campaign_options/v1";
  const auto field = [&out](std::string_view key, const std::string& value) {
    out += '|';
    out += key;
    out += '=';
    out += value;
  };
  field("batch_size", std::to_string(opts.batch_size));
  field("fault_dropping", opts.fault_dropping ? "1" : "0");
  field("fault_model", std::string(to_string(opts.fault_model)));
  field("lane_width", std::to_string(opts.lane_width));
  field("target_limit", std::to_string(opts.target_limit));
  return out;
}

std::uint64_t campaign_options_hash(const CampaignOptions& opts) {
  return fnv1a64(campaign_options_canonical(opts));
}

std::uint64_t universe_fingerprint(const FaultUniverse& universe) {
  const Netlist& nl = universe.netlist();
  std::uint64_t h = fnv1a64("universe/v1");
  h = fnv1a64_word(universe.size(), h);
  h = fnv1a64_word(nl.num_nets(), h);
  h = fnv1a64_word(nl.num_cells(), h);
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const Cell& c = nl.cell(id);
    h = fnv1a64_word(static_cast<std::uint64_t>(c.type), h);
    h = fnv1a64_word(c.out, h);
    for (const NetId in : c.ins) h = fnv1a64_word(in, h);
  }
  return h;
}

std::uint64_t fault_list_fingerprint(const FaultList& fl) {
  std::uint64_t h = fnv1a64("fault_list/v1");
  h = fnv1a64_word(fl.size(), h);
  for (FaultId f = 0; f < fl.size(); ++f) {
    std::uint64_t state = static_cast<std::uint64_t>(fl.detect_state(f));
    state |= static_cast<std::uint64_t>(fl.untestable_kind(f)) << 8;
    state |= static_cast<std::uint64_t>(fl.online_source(f)) << 16;
    h = fnv1a64_word(state, h);
  }
  return h;
}

std::uint64_t campaign_tests_fingerprint(std::span<const CampaignTest> tests) {
  std::uint64_t h = fnv1a64("tests/v1");
  h = fnv1a64_word(tests.size(), h);
  for (const CampaignTest& test : tests) {
    if (test.spec.is_null()) return 0;
    h = fnv1a64(test.name, h);
    h = fnv1a64_word(static_cast<std::uint64_t>(test.good_cycles), h);
    h = fnv1a64(test.spec.dump(), h);
  }
  return h;
}

std::string CacheKey::canonical() const {
  std::string out = "cache_key/v1";
  const auto field = [&out](std::string_view key, const std::string& value) {
    out += '|';
    out += key;
    out += '=';
    out += value;
  };
  field("universe", word_to_hex(universe_fp));
  field("trace", word_to_hex(trace_fp));
  field("plan", word_to_hex(plan_hash));
  field("options", word_to_hex(options_hash));
  field("model", fault_model);
  field("lanes", std::to_string(lane_width));
  return out;
}

std::uint64_t CacheKey::digest() const { return fnv1a64(canonical()); }

ResultCache::ResultCache(std::size_t capacity, std::string dir)
    : capacity_(std::max<std::size_t>(capacity, 1)), dir_(std::move(dir)) {
  if (!dir_.empty()) ::mkdir(dir_.c_str(), 0777);  // EEXIST is fine
}

void ResultCache::insert_locked(const std::string& canonical,
                                std::string payload) {
  const auto it = index_.find(std::string_view(canonical));
  if (it != index_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(canonical, std::move(payload));
  index_.emplace(std::string_view(lru_.front().first), lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(std::string_view(lru_.back().first));
    lru_.pop_back();
    ++stats_.evictions;
    bump("cache.evictions");
  }
}

std::optional<std::string> ResultCache::disk_load_locked(const CacheKey& key) {
  const std::string path = dir_ + "/" + word_to_hex(key.digest()) + ".json";
  const std::optional<std::string> text = read_file(path);
  if (!text) return std::nullopt;  // absent: a plain miss, not corruption
  try {
    const Json doc = Json::parse(*text);
    if (doc.at("key").as_string() != key.canonical())
      throw JsonError("cache entry: key mismatch", 0);
    return doc.at("payload").as_string();
  } catch (const std::exception&) {
    ++stats_.corrupt;
    bump("cache.corrupt");
    return std::nullopt;
  }
}

void ResultCache::disk_store_locked(const CacheKey& key,
                                    const std::string& payload) {
  Json doc = Json::object();
  doc.set("key", key.canonical());
  doc.set("payload", payload);
  const std::string path = dir_ + "/" + word_to_hex(key.digest()) + ".json";
  write_file_atomic(path, doc.dump(0));
}

std::optional<CampaignResult> ResultCache::lookup(const CacheKey& key) {
  std::lock_guard lock(mu_);
  const std::string canonical = key.canonical();
  std::string payload;
  bool from_disk = false;
  const auto it = index_.find(std::string_view(canonical));
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    payload = it->second->second;
  } else if (!dir_.empty()) {
    std::optional<std::string> disk = disk_load_locked(key);
    if (disk) {
      payload = std::move(*disk);
      from_disk = true;
    }
  }
  if (payload.empty()) {
    ++stats_.misses;
    bump("cache.misses");
    return std::nullopt;
  }
  try {
    CampaignResult result = campaign_result_from_json_string(payload);
    if (from_disk) {
      insert_locked(canonical, std::move(payload));
      ++stats_.disk_hits;
      bump("cache.disk_hits");
    }
    ++stats_.hits;
    bump("cache.hits");
    return result;
  } catch (const std::exception&) {
    // A payload that no longer decodes (however it got damaged) must cost
    // a re-grade, never serve garbage.
    if (it != index_.end()) {
      index_.erase(std::string_view(it->second->first));
      lru_.erase(it->second);
    }
    ++stats_.corrupt;
    bump("cache.corrupt");
    ++stats_.misses;
    bump("cache.misses");
    return std::nullopt;
  }
}

void ResultCache::store(const CacheKey& key, const CampaignResult& result) {
  // The stored value is exactly the byte-comparable deterministic payload
  // (no stats) — what two runs of one campaign can be cmp'd on.
  std::string payload = campaign_result_to_json_string(result, 2, false);
  std::lock_guard lock(mu_);
  insert_locked(key.canonical(), payload);
  if (!dir_.empty()) disk_store_locked(key, payload);
  ++stats_.stores;
  bump("cache.stores");
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

IncrementalPlan plan_incremental_regrade(const FaultUniverse& universe,
                                         const ConeAnalysis& cones,
                                         std::span<const NetId> changed_nets,
                                         bool env_feedback) {
  const Netlist& nl = universe.netlist();
  if (cones.net_sig.size() != nl.num_nets())
    throw std::invalid_argument(
        "plan_incremental_regrade: cone analysis is for a different netlist");
  IncrementalPlan out;
  out.regrade.resize(universe.size());
  out.diff_sig = changed_net_signature(cones, nl, changed_nets);
  if (!out.diff_sig.any()) return out;  // empty diff: splice everything

  if (env_feedback) {
    // Closed-loop environment: stimulus is a function of observed
    // outputs, so a diff that reaches any output port can re-enter the
    // circuit through the environment — a path the cone analysis cannot
    // see. Output-port bits are seeded into every signature they are
    // reachable from, so this is exactly detectable (up to conservative
    // Bloom collisions).
    for (const CellId oc : nl.output_cells()) {
      if (out.diff_sig.intersects(ConeAnalysis::cone_bit(oc, cones.sig_bits))) {
        out.full = true;
        for (FaultId f = 0; f < universe.size(); ++f) out.regrade.set(f, true);
        return out;
      }
    }
  }

  for (FaultId f = 0; f < universe.size(); ++f) {
    // Propagation: the diff touches the fault's cone (including the side
    // inputs of cells on its propagation paths — any such cell is in both
    // cones). Activation: the diff reaches the fault's own cell, changing
    // the values at its fan-in.
    const NetId net = universe.effect_net(f);
    const CellId cell = universe.fault(f).pin.cell;
    if ((net != kInvalidId && cones.net_sig[net].intersects(out.diff_sig)) ||
        out.diff_sig.intersects(ConeAnalysis::cone_bit(cell, cones.sig_bits)))
      out.regrade.set(f, true);
  }
  return out;
}

CampaignResult seed_from_previous(
    const FaultUniverse& universe, CampaignOptions opts, FaultList& fl,
    std::span<const CampaignTest> tests, const CampaignResult& previous,
    std::span<const NetId> changed_nets,
    std::shared_ptr<const PackedTopology> topo, bool env_feedback,
    const CampaignProgress& progress) {
  if (previous.universe != universe.size())
    throw std::invalid_argument(
        "seed_from_previous: previous result is for a different universe");
  if (previous.fault_model != opts.fault_model)
    throw std::invalid_argument(
        "seed_from_previous: previous result graded a different fault model");
  if (topo && topo->nl != &universe.netlist())
    throw std::invalid_argument(
        "seed_from_previous: topology is for a different netlist");
  if (!topo) topo = PackedTopology::build(universe.netlist());

  // The widest filter: collisions only cost re-grades, and 256 buckets
  // keep CPU-wide cones from degenerating to "re-grade everything".
  const ConeAnalysis cones = ConeAnalysis::build(*topo, 256);
  const IncrementalPlan iplan =
      plan_incremental_regrade(universe, cones, changed_nets, env_feedback);

  // regrade_fraction is measured over the faults this campaign would have
  // graded anyway (testable; undetected when dropping), before splicing.
  std::size_t eligible = 0, regraded = 0;
  for (FaultId f = 0; f < fl.size(); ++f) {
    if (fl.untestable_kind(f) != UntestableKind::kNone) continue;
    if (opts.fault_dropping && fl.detect_state(f) == DetectState::kDetected)
      continue;
    ++eligible;
    if (iplan.full || iplan.regrade.get(f)) ++regraded;
  }

  // Splice: every unaffected fault keeps its previous outcome — detected
  // faults are marked without simulating, undetected ones simply stay out
  // of the masked target list.
  std::size_t spliced = 0;
  if (!iplan.full) {
    for (FaultId f = 0; f < fl.size(); ++f) {
      if (iplan.regrade.get(f)) continue;
      if (fl.untestable_kind(f) != UntestableKind::kNone) continue;
      if (!previous.detected.get(f)) continue;
      if (fl.detect_state(f) == DetectState::kDetected) continue;
      fl.set_detected(f);
      ++spliced;
    }
  }

  CampaignOptions run_opts = std::move(opts);
  run_opts.cache = nullptr;  // a masked partial re-grade is never cacheable
  if (!iplan.full)
    run_opts.target_mask = std::make_shared<const BitVec>(iplan.regrade);
  const CampaignEngine engine(universe, std::move(run_opts));
  CampaignResult result = engine.run(fl, tests, progress);
  result.total_new_detections += spliced;
  result.stats.cache = "partial";
  result.stats.cache_spliced = spliced;
  result.stats.regraded_faults = regraded;
  result.stats.regrade_fraction =
      eligible ? static_cast<double>(regraded) / static_cast<double>(eligible)
               : 0.0;
  bump("cache.spliced", spliced);
  return result;
}

}  // namespace olfui
