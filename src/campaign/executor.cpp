#include "campaign/executor.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "campaign/report.hpp"
#include "campaign/shard_queue.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace olfui {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One '\n'-terminated line from `in` (terminator stripped); false on EOF.
bool read_line(std::FILE* in, std::string& line) {
  char* buf = nullptr;
  std::size_t cap = 0;
  const ssize_t n = ::getline(&buf, &cap, in);
  if (n < 0) {
    std::free(buf);
    return false;
  }
  line.assign(buf, static_cast<std::size_t>(n));
  std::free(buf);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  return true;
}

/// Writes one JSON document as a line and flushes (the protocol is
/// line-buffered in both directions). Returns false on a broken pipe.
bool write_line(std::FILE* out, const Json& doc) {
  const std::string text = doc.dump() + "\n";
  if (std::fwrite(text.data(), 1, text.size(), out) != text.size())
    return false;
  return std::fflush(out) == 0;
}

std::string_view fault_model_name(FaultModel m) { return to_string(m); }

FaultModel fault_model_from_name(const std::string& name) {
  if (name == to_string(FaultModel::kStuckAt)) return FaultModel::kStuckAt;
  if (name == to_string(FaultModel::kTransition))
    return FaultModel::kTransition;
  throw JsonError("shard request: unknown fault_model '" + name + "'", 0);
}

std::string describe_exit(int status) {
  if (WIFEXITED(status))
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "killed by signal " + std::to_string(WTERMSIG(status));
  return "ended with wait status " + std::to_string(status);
}

}  // namespace

// ---------------------------------------------------------------------------
// InProcessExecutor

InProcessExecutor::InProcessExecutor(int threads) : threads_(threads) {}

int InProcessExecutor::resolved_threads() const {
  if (threads_ > 0) return threads_;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

WorkerPool& InProcessExecutor::pool() {
  if (!pool_)
    pool_ = std::make_unique<WorkerPool>(
        static_cast<std::size_t>(resolved_threads()) - 1);
  return *pool_;
}

std::vector<ShardResult> InProcessExecutor::execute(const ShardWork& work) {
  std::vector<ShardResult> results(work.shards.size());
  if (work.shards.empty()) return results;

  const bool tracing = obs::tracer().enabled();
  const auto worker = [&](ShardQueue& queue, std::size_t w) {
    std::unique_ptr<FaultBatchRunner> runner;  // created on first shard
    std::size_t idx;
    while (queue.pop(w, idx)) {
      const std::uint32_t shard = work.shards[idx];
      const std::size_t lo = work.plan.batch_start[shard];
      const std::size_t n = work.plan.batch_size(shard);
      try {
        // Runner construction stays outside the timed span: shard_seconds
        // is the adaptive scheduler's profile input and must measure
        // grading cost, not one-time per-worker setup.
        if (!runner) runner = work.test.make_runner();
        const std::int64_t s0 = tracing ? obs::tracer().now_us() : 0;
        const auto t0 = std::chrono::steady_clock::now();
        results[idx].mask = runner->run_batch(work.planned.subspan(lo, n));
        results[idx].seconds = seconds_since(t0);
        if (obs::metrics().enabled())
          obs::metrics()
              .histogram("campaign.shard_seconds",
                         {0.001, 0.01, 0.1, 1.0, 10.0})
              .observe(results[idx].seconds);
        if (tracing) {
          // tid = participant index, so the trace lane matches the worker
          // that actually ran the shard (steals included).
          obs::TraceEvent ev;
          ev.name = "shard";
          ev.cat = "campaign";
          ev.ts_us = s0;
          ev.dur_us = obs::tracer().now_us() - s0;
          ev.tid = static_cast<std::int64_t>(w);
          ev.args.emplace_back("shard", Json(static_cast<std::size_t>(shard)));
          ev.args.emplace_back("test", Json(work.test.name));
          ev.args.emplace_back("faults", Json(n));
          obs::tracer().record(std::move(ev));
        }
      } catch (const std::exception& e) {
        // The runner knows neither which shard it was grading nor for
        // which test — attach both before the pool rethrows on the
        // caller, so a campaign failure names the work item that died.
        throw std::runtime_error("campaign test '" + work.test.name +
                                 "' shard " + std::to_string(shard) + ": " +
                                 e.what());
      }
      if (work.progress) work.progress(n);
    }
  };

  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(resolved_threads()), work.shards.size());
  ShardQueue queue(work.shards.size(), workers);
  if (workers <= 1) {
    worker(queue, 0);
  } else {
    // Fan out over the persistent pool; it captures a throw from any
    // participant and rethrows the first one here, matching the 1-thread
    // path. The lock also keeps a shared executor from dispatching two
    // jobs onto one pool.
    std::lock_guard lock(mu_);
    pool().run(workers, [&](std::size_t w) { worker(queue, w); });
  }
  return results;
}

// ---------------------------------------------------------------------------
// Wire format

Json shard_request_to_json(const ShardWork& work) {
  Json doc = Json::object();
  doc.set("type", "grade");
  doc.set("protocol", kWorkerProtocolVersion);
  doc.set("test", work.test.name);
  doc.set("fault_model", std::string(fault_model_name(work.fault_model)));
  doc.set("spec", work.test.spec);
  doc.set("plan", batch_plan_to_json(work.plan, "wire"));
  Json targets = Json::array();
  for (FaultId f : work.targets)
    targets.push_back(static_cast<std::size_t>(f));
  doc.set("targets", std::move(targets));
  Json shards = Json::array();
  for (std::uint32_t s : work.shards)
    shards.push_back(static_cast<std::size_t>(s));
  doc.set("shards", std::move(shards));
  return doc;
}

ShardRequest shard_request_from_json(const Json& doc) {
  if (doc.at("type").as_string() != "grade")
    throw JsonError("shard request: not a grade document", 0);
  if (doc.at("protocol").as_int() != kWorkerProtocolVersion)
    throw JsonError("shard request: protocol version mismatch", 0);
  ShardRequest req;
  req.test = doc.at("test").as_string();
  req.telemetry = doc.contains("telemetry") && doc.at("telemetry").as_bool();
  req.fault_model = fault_model_from_name(doc.at("fault_model").as_string());
  req.spec = doc.at("spec");
  req.plan = batch_plan_from_json(doc.at("plan"));
  const Json& targets = doc.at("targets");
  req.targets.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::size_t f = targets.at(i).as_size();
    if (f > 0xFFFFFFFFull)
      throw JsonError("shard request: fault id overflows", 0);
    req.targets.push_back(static_cast<FaultId>(f));
  }
  if (req.plan.order.size() != req.targets.size())
    throw JsonError("shard request: plan does not cover the targets", 0);
  const Json& shards = doc.at("shards");
  req.shards.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::size_t s = shards.at(i).as_size();
    if (s >= req.plan.batches())
      throw JsonError("shard request: shard id out of plan range", 0);
    req.shards.push_back(static_cast<std::uint32_t>(s));
  }
  // Gather once here (the plan is validated above, inside
  // batch_plan_from_json): every consumer grades plan-ordered spans.
  req.planned.resize(req.targets.size());
  for (std::size_t i = 0; i < req.targets.size(); ++i)
    req.planned[i] = req.targets[req.plan.order[i]];
  return req;
}

// ---------------------------------------------------------------------------
// Worker side

int serve_worker(std::FILE* in, std::FILE* out, WorkerWorkload& workload) {
  {
    Json hello = Json::object();
    hello.set("type", "hello");
    hello.set("protocol", kWorkerProtocolVersion);
    // Our monotonic clock at hello time: the coordinator pairs it with its
    // own to shift merged telemetry spans onto a common timeline.
    hello.set("ts_us", static_cast<double>(obs::tracer().now_us()));
    if (!write_line(out, hello)) return 1;
  }
  std::string line;
  while (read_line(in, line)) {
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    try {
      const ShardRequest req = shard_request_from_json(Json::parse(line));
      // Telemetry is sticky once requested: state rebuilt during an
      // instrumented campaign stays attributable.
      if (req.telemetry) {
        obs::tracer().set_enabled(true);
        obs::metrics().set_enabled(true);
      }
      // Fingerprinting first forces the workload's one-time state rebuild
      // (netlist, reference trace) before any shard is timed: the
      // per-shard seconds are the adaptive scheduler's profile input and
      // must measure grading, not setup.
      auto rebuild_span = obs::tracer().span("rebuild_state", "worker");
      rebuild_span.arg("test", Json(req.test));
      const std::uint64_t state_fp = workload.state_fingerprint(req);
      rebuild_span.end();
      for (std::uint32_t shard : req.shards) {
        const std::size_t lo = req.plan.batch_start[shard];
        const std::size_t n = req.plan.batch_size(shard);
        auto shard_span = obs::tracer().span("shard", "worker");
        shard_span.arg("shard", Json(static_cast<std::size_t>(shard)));
        shard_span.arg("test", Json(req.test));
        shard_span.arg("faults", Json(n));
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint64_t mask = workload.run_batch(
            req, std::span(req.planned).subspan(lo, n));
        Json reply = Json::object();
        reply.set("type", "shard");
        reply.set("shard", static_cast<std::size_t>(shard));
        reply.set("mask", word_to_hex(mask));
        reply.set("seconds", seconds_since(t0));
        shard_span.end();
        if (!write_line(out, reply)) return 1;
      }
      Json done = Json::object();
      done.set("type", "done");
      done.set("test", req.test);
      done.set("universe", workload.universe_size());
      done.set("state_fp", word_to_hex(state_fp));
      if (req.telemetry) {
        // Ship this request's spans/counters as deltas and zero for the
        // next one; the coordinator owns accumulation.
        Json tel = Json::object();
        tel.set("spans", obs::trace_events_to_json(obs::tracer().drain()));
        tel.set("counters", obs::metrics().counters_to_json());
        done.set("telemetry", std::move(tel));
        obs::metrics().reset_values();
      }
      if (!write_line(out, done)) return 1;
    } catch (const std::exception& e) {
      Json error = Json::object();
      error.set("type", "error");
      error.set("message", std::string(e.what()));
      write_line(out, error);
      return 1;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// SubprocessExecutor

SubprocessExecutor::SubprocessExecutor(std::vector<std::string> worker_command,
                                       int workers)
    : command_(std::move(worker_command)), workers_(std::max(1, workers)) {
  if (command_.empty())
    throw std::invalid_argument("SubprocessExecutor: empty worker command");
  // A worker that dies mid-protocol must surface as an EPIPE write error
  // (reported with context below), not kill the coordinator — but never
  // clobber a handler the embedding application installed.
  const auto prev = std::signal(SIGPIPE, SIG_IGN);
  if (prev != SIG_DFL && prev != SIG_IGN) std::signal(SIGPIPE, prev);
}

SubprocessExecutor::~SubprocessExecutor() {
  std::lock_guard lock(mu_);
  shutdown_all();
}

void SubprocessExecutor::shutdown_all() {
  for (Worker& w : procs_) {
    // Closing stdin is the shutdown signal (serve_worker returns on EOF);
    // closing stdout unblocks a worker mid-write via EPIPE.
    if (w.to) std::fclose(w.to);
    if (w.from) std::fclose(w.from);
    w.to = w.from = nullptr;
    if (w.pid > 0) {
      int status = 0;
      ::waitpid(static_cast<pid_t>(w.pid), &status, 0);
    }
    // Closed last: the wait above guarantees the child wrote its final
    // words, and fail() reads the tail before calling here.
    if (w.err) std::fclose(w.err);
    w.err = nullptr;
  }
  procs_.clear();
}

std::string SubprocessExecutor::stderr_tail(std::size_t worker) const {
  if (worker >= procs_.size() || !procs_[worker].err) return {};
  const int fd = ::fileno(procs_[worker].err);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) return {};
  // pread at an explicit offset: the file description (and its offset) is
  // shared with the child, which may still be appending — don't disturb it.
  constexpr off_t kTailBytes = 4096;
  const off_t start = st.st_size > kTailBytes ? st.st_size - kTailBytes : 0;
  std::string buf(static_cast<std::size_t>(st.st_size - start), '\0');
  const ssize_t n = ::pread(fd, buf.data(), buf.size(), start);
  if (n <= 0) return {};
  buf.resize(static_cast<std::size_t>(n));
  // Keep only the last few lines — the crash is at the end.
  constexpr int kTailLines = 8;
  std::size_t pos = buf.size();
  for (int lines = 0; pos > 0; --pos) {
    if (buf[pos - 1] == '\n' && ++lines > kTailLines) break;
  }
  std::string tail = buf.substr(pos);
  while (!tail.empty() && (tail.back() == '\n' || tail.back() == '\r'))
    tail.pop_back();
  return tail;
}

void SubprocessExecutor::fail(std::size_t worker, const std::string& what) {
  // Quote the child's own last words — the exception names the shard and
  // test, but the diagnostics that explain *why* live on its stderr.
  const std::string tail = stderr_tail(worker);
  // The protocol stream is no longer trustworthy; restart from scratch on
  // the next execute() rather than resynchronising.
  shutdown_all();
  throw std::runtime_error("subprocess executor: worker " +
                           std::to_string(worker) + ": " + what +
                           (tail.empty() ? std::string()
                                         : "; worker stderr: " + tail));
}

void SubprocessExecutor::spawn_all() {
  procs_.resize(static_cast<std::size_t>(workers_));
  std::vector<char*> argv;
  argv.reserve(command_.size() + 1);
  for (const std::string& arg : command_)
    argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  for (std::size_t i = 0; i < procs_.size(); ++i) {
    int to_child[2], from_child[2];
    // CLOEXEC so a later sibling's exec doesn't inherit (and hold open)
    // this worker's pipe ends; dup2 below clears it on the two fds the
    // child actually uses. Error paths close every fd not yet owned by
    // procs_[i] — fail() only cleans up what is recorded there.
    if (::pipe2(to_child, O_CLOEXEC) != 0)
      fail(i, std::string("pipe: ") + std::strerror(errno));
    if (::pipe2(from_child, O_CLOEXEC) != 0) {
      const int err = errno;
      ::close(to_child[0]);
      ::close(to_child[1]);
      fail(i, std::string("pipe: ") + std::strerror(err));
    }
    // Unlinked temp file for the child's stderr (satellite of the crash
    // diagnostics: see stderr_tail). Best-effort — a worker without one
    // just loses the quoted tail. CLOEXEC in the parent copy only; the
    // child's dup2 onto fd 2 clears it there.
    procs_[i].err = std::tmpfile();
    if (procs_[i].err)
      ::fcntl(::fileno(procs_[i].err), F_SETFD, FD_CLOEXEC);
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      fail(i, std::string("fork: ") + std::strerror(err));
    }
    if (pid == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      // Redirect stderr into the capture file so a crash report can quote
      // it; the exec-failure message below lands there too.
      if (procs_[i].err) ::dup2(::fileno(procs_[i].err), STDERR_FILENO);
      ::execvp(argv[0], argv.data());
      std::fprintf(stderr, "worker exec '%s': %s\n", argv[0],
                   std::strerror(errno));
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    procs_[i].pid = pid;
    procs_[i].to = ::fdopen(to_child[1], "w");
    if (!procs_[i].to) {
      // Closing the write end is the child's EOF, so shutdown_all's
      // waitpid (via fail) cannot hang on it.
      ::close(to_child[1]);
      ::close(from_child[0]);
      fail(i, "fdopen failed");
    }
    procs_[i].from = ::fdopen(from_child[0], "r");
    if (!procs_[i].from) {
      ::close(from_child[0]);
      fail(i, "fdopen failed");
    }
  }

  // Handshake: every worker must greet with a matching protocol version
  // before any work is dispatched (catches wrong binaries and immediate
  // crashes at spawn time, not mid-campaign).
  std::string line;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    if (!read_line(procs_[i].from, line)) {
      int status = 0;
      ::waitpid(static_cast<pid_t>(procs_[i].pid), &status, 0);
      procs_[i].pid = -1;
      fail(i, "no hello (" + describe_exit(status) + ")");
    }
    try {
      const Json hello = Json::parse(line);
      if (hello.at("type").as_string() != "hello")
        fail(i, "handshake is not a hello document");
      if (hello.at("protocol").as_int() != kWorkerProtocolVersion)
        fail(i, "protocol version mismatch");
      // Pair the worker's monotonic clock with ours at the same (well,
      // one pipe transit later) instant; merged telemetry spans are
      // shifted by this offset onto the coordinator timeline.
      if (hello.contains("ts_us"))
        procs_[i].clock_offset_us =
            obs::tracer().now_us() -
            static_cast<std::int64_t>(hello.at("ts_us").as_number());
    } catch (const JsonError& e) {
      fail(i, std::string("malformed hello: ") + e.what());
    }
    obs::tracer().set_process_label(procs_[i].pid,
                                    "worker " + std::to_string(i));
  }
}

std::vector<ShardResult> SubprocessExecutor::execute(const ShardWork& work) {
  std::lock_guard lock(mu_);
  std::vector<ShardResult> results(work.shards.size());
  if (work.shards.empty()) return results;
  if (work.test.spec.is_null())
    throw std::runtime_error("subprocess executor: test '" + work.test.name +
                             "' has no spec — it cannot be rebuilt remotely");
  if (procs_.empty()) spawn_all();

  // Deterministic striping: shard i goes to worker i mod active. Which
  // worker runs a shard never matters for the result — replies are
  // slot-indexed by shard id — so this is purely load spreading.
  const std::size_t active = std::min(procs_.size(), work.shards.size());
  std::unordered_map<std::uint32_t, std::size_t> slot;  // shard id -> index
  slot.reserve(work.shards.size());
  for (std::size_t i = 0; i < work.shards.size(); ++i)
    slot.emplace(work.shards[i], i);

  // One request document, its per-worker "shards" field rewritten in
  // place (Json::set overwrites) — the O(targets) payload is built once,
  // not cloned per worker.
  Json request = shard_request_to_json(work);
  // Ask for side-band spans/counters only when someone is listening; the
  // field's absence keeps the wire bytes identical to pre-telemetry runs.
  const bool telemetry =
      obs::tracer().enabled() || obs::metrics().enabled();
  if (telemetry) request.set("telemetry", Json(true));
  const std::string context = " during test '" + work.test.name + "'";
  for (std::size_t w = 0; w < active; ++w) {
    Json shards = Json::array();
    for (std::size_t i = w; i < work.shards.size(); i += active)
      shards.push_back(static_cast<std::size_t>(work.shards[i]));
    request.set("shards", std::move(shards));
    if (!write_line(procs_[w].to, request))
      fail(w, "request write failed (worker gone?)" + context);
  }

  // Workers grade concurrently; replies are drained worker by worker (the
  // pipes buffer). Every assigned shard must be answered exactly once and
  // the stream must end in a matching "done" — anything else, including
  // EOF from a crashed or killed worker, fails the campaign loudly.
  std::string line;
  std::string done_fp;  // first worker's state_fp; siblings must agree
  for (std::size_t w = 0; w < active; ++w) {
    std::size_t pending = 0;
    for (std::size_t i = w; i < work.shards.size(); i += active) ++pending;
    std::vector<bool> answered(work.shards.size(), false);
    const std::size_t assigned = pending;
    bool done = false;
    while (!done) {
      if (!read_line(procs_[w].from, line)) {
        int status = 0;
        ::waitpid(static_cast<pid_t>(procs_[w].pid), &status, 0);
        procs_[w].pid = -1;
        fail(w, "died (" + describe_exit(status) + ") after " +
                    std::to_string(assigned - pending) + "/" +
                    std::to_string(assigned) + " shards" + context);
      }
      Json reply;
      std::string type;
      try {
        reply = Json::parse(line);
        type = reply.at("type").as_string();
      } catch (const JsonError& e) {
        fail(w, std::string("malformed reply: ") + e.what() + context);
      }
      if (type == "error") {
        std::string message = "(error reply without a message)";
        try {
          message = reply.at("message").as_string();
        } catch (const JsonError&) {
        }
        fail(w, "reported: " + message + context);
      } else if (type == "shard") {
        std::uint32_t shard = 0;
        ShardResult r;
        try {
          shard = static_cast<std::uint32_t>(reply.at("shard").as_size());
          r.mask = word_from_hex(reply.at("mask").as_string());
          r.seconds = reply.at("seconds").as_number();
        } catch (const JsonError& e) {
          fail(w, std::string("malformed shard reply: ") + e.what() + context);
        }
        const auto it = slot.find(shard);
        if (it == slot.end() || it->second % active != w ||
            answered[it->second])
          fail(w, "answered shard " + std::to_string(shard) +
                      " it was not asked (or twice)" + context);
        answered[it->second] = true;
        // Worker histograms don't travel the wire (only counter deltas
        // do); the coordinator observes the reported shard time instead,
        // so the distribution covers both executors.
        if (obs::metrics().enabled())
          obs::metrics()
              .histogram("campaign.shard_seconds",
                         {0.001, 0.01, 0.1, 1.0, 10.0})
              .observe(r.seconds);
        results[it->second] = r;
        --pending;
        if (work.progress) work.progress(work.plan.batch_size(shard));
      } else if (type == "done") {
        if (pending != 0)
          fail(w, "finished with " + std::to_string(pending) +
                      " unanswered shards" + context);
        std::string fp;
        try {
          if (reply.at("universe").as_size() != work.universe)
            fail(w, "rebuilt a different universe (" +
                        std::to_string(reply.at("universe").as_size()) +
                        " faults, coordinator has " +
                        std::to_string(work.universe) + ")" + context);
          fp = reply.at("state_fp").as_string();
        } catch (const JsonError& e) {
          fail(w, std::string("malformed done reply: ") + e.what() + context);
        }
        // Siblings rebuilt the same test from the same spec; disagreeing
        // fingerprints mean at least one graded against drifted state
        // (the worker-side spec.state_fp check is the strong guard, but
        // it is opt-in — this one costs nothing and is not).
        if (done_fp.empty())
          done_fp = fp;
        else if (fp != done_fp)
          fail(w, "rebuilt state disagrees with a sibling worker (" + fp +
                      " vs " + done_fp + ")" + context);
        if (reply.contains("telemetry")) {
          try {
            merge_worker_telemetry(w, reply.at("telemetry"));
          } catch (const JsonError& e) {
            fail(w, std::string("malformed telemetry: ") + e.what() + context);
          }
        }
        done = true;
      } else {
        fail(w, "unknown reply type '" + type + "'" + context);
      }
    }
  }
  return results;
}

void SubprocessExecutor::merge_worker_telemetry(std::size_t worker,
                                                const Json& telemetry) {
  const Worker& w = procs_[worker];
  if (telemetry.contains("spans") && obs::tracer().enabled())
    obs::tracer().merge_foreign(
        obs::trace_events_from_json(telemetry.at("spans")), w.pid,
        w.clock_offset_us);
  if (telemetry.contains("counters") && obs::metrics().enabled())
    obs::metrics().merge_counters(telemetry.at("counters"));
}

}  // namespace olfui
